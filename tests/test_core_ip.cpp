// Cycle-accurate IP model: bit-exact conformance against the reference
// cipher for all three device variants, exact cycle counts (50 per block,
// 40 for key setup), bus-protocol behaviour and full-rate streaming.
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

#include "aes/cipher.hpp"
#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"

namespace core = aesip::core;
namespace aes = aesip::aes;
namespace hdl = aesip::hdl;

namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::array<std::uint8_t, 16> random_block(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> out{};
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

struct Bench {
  hdl::Simulator sim;
  core::RijndaelIp ip;
  core::BusDriver bus;
  explicit Bench(core::IpMode mode) : ip(sim, mode), bus(sim, ip) { bus.reset(); }
};

}  // namespace

// --- functional conformance -------------------------------------------------------

TEST(EncryptIp, Fips197AppendixC) {
  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto ct = b.bus.process_block(from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(EncryptIp, Fips197AppendixB) {
  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto ct = b.bus.process_block(from_hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(DecryptIp, Fips197AppendixC) {
  Bench b(core::IpMode::kDecrypt);
  b.bus.load_key(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt =
      b.bus.process_block(from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"), /*encrypt=*/false);
  EXPECT_EQ(to_hex(pt), "00112233445566778899aabbccddeeff");
}

TEST(BothIp, EncryptsAndDecrypts) {
  Bench b(core::IpMode::kBoth);
  b.bus.load_key(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto ct = b.bus.process_block(from_hex("00112233445566778899aabbccddeeff"), true);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  const auto pt = b.bus.process_block(ct, false);
  EXPECT_EQ(to_hex(pt), "00112233445566778899aabbccddeeff");
}

class IpConformance : public ::testing::TestWithParam<int> {};

TEST_P(IpConformance, EncryptMatchesReference) {
  const auto seed = static_cast<std::uint32_t>(GetParam());
  const auto key = random_block(seed);
  const auto pt = random_block(seed + 1000);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.encrypt_block(pt, expected);

  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(key);
  EXPECT_EQ(to_hex(b.bus.process_block(pt)), to_hex(expected)) << "seed " << seed;
}

TEST_P(IpConformance, DecryptMatchesReference) {
  const auto seed = static_cast<std::uint32_t>(GetParam());
  const auto key = random_block(seed + 2000);
  const auto ct = random_block(seed + 3000);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.decrypt_block(ct, expected);

  Bench b(core::IpMode::kDecrypt);
  b.bus.load_key(key);
  EXPECT_EQ(to_hex(b.bus.process_block(ct, false)), to_hex(expected)) << "seed " << seed;
}

TEST_P(IpConformance, BothRoundTripsThroughHardware) {
  const auto seed = static_cast<std::uint32_t>(GetParam());
  const auto key = random_block(seed + 4000);
  const auto pt = random_block(seed + 5000);
  Bench b(core::IpMode::kBoth);
  b.bus.load_key(key);
  const auto ct = b.bus.process_block(pt, true);
  EXPECT_NE(to_hex(ct), to_hex(pt));
  const auto back = b.bus.process_block(ct, false);
  EXPECT_EQ(to_hex(back), to_hex(pt)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, IpConformance, ::testing::Range(0, 20));

// --- cycle accuracy (the numbers behind Table 2) ------------------------------------

TEST(Cycles, EncryptLatencyIsExactly50) {
  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(random_block(1));
  b.bus.process_block(random_block(2));
  EXPECT_EQ(b.bus.last_latency(), 50u) << "latency must be 10 rounds x 5 cycles";
}

TEST(Cycles, DecryptLatencyIsExactly50) {
  Bench b(core::IpMode::kDecrypt);
  b.bus.load_key(random_block(3));
  b.bus.process_block(random_block(4), false);
  EXPECT_EQ(b.bus.last_latency(), 50u);
}

TEST(Cycles, BothLatencyIsExactly50EitherDirection) {
  Bench b(core::IpMode::kBoth);
  b.bus.load_key(random_block(5));
  b.bus.process_block(random_block(6), true);
  EXPECT_EQ(b.bus.last_latency(), 50u);
  b.bus.process_block(random_block(7), false);
  EXPECT_EQ(b.bus.last_latency(), 50u);
}

TEST(Cycles, EncryptKeyLoadIsImmediate) {
  Bench b(core::IpMode::kEncrypt);
  EXPECT_EQ(b.bus.load_key(random_block(8)), 0u)
      << "forward on-the-fly schedule needs no key setup";
}

TEST(Cycles, DecryptKeySetupTakes40Cycles) {
  Bench b(core::IpMode::kDecrypt);
  EXPECT_EQ(b.bus.load_key(random_block(9)), 40u) << "10 rounds x 4 KStran cycles";
}

TEST(Cycles, BothKeySetupTakes40Cycles) {
  Bench b(core::IpMode::kBoth);
  EXPECT_EQ(b.bus.load_key(random_block(10)), 40u);
}

TEST(Cycles, StreamingSustains50CyclesPerBlock) {
  Bench b(core::IpMode::kEncrypt);
  const auto key = random_block(11);
  b.bus.load_key(key);
  std::vector<std::array<std::uint8_t, 16>> blocks;
  for (std::uint32_t i = 0; i < 12; ++i) blocks.push_back(random_block(100 + i));
  const auto results = b.bus.stream(blocks);
  ASSERT_EQ(results.size(), blocks.size());
  // Full-rate: N blocks in N*50 cycles (the decoupled Data_In/Out processes
  // hide all bus traffic behind processing — throughput = 128/latency).
  EXPECT_EQ(b.bus.last_stream_cycles(), blocks.size() * 50);
  aes::Aes128 ref(key);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::array<std::uint8_t, 16> expected{};
    ref.encrypt_block(blocks[i], expected);
    EXPECT_EQ(to_hex(results[i]), to_hex(expected)) << "block " << i;
  }
}

TEST(Cycles, StreamingDecryptAlsoFullRate) {
  Bench b(core::IpMode::kDecrypt);
  const auto key = random_block(12);
  b.bus.load_key(key);
  std::vector<std::array<std::uint8_t, 16>> blocks;
  for (std::uint32_t i = 0; i < 6; ++i) blocks.push_back(random_block(200 + i));
  const auto results = b.bus.stream(blocks, false);
  ASSERT_EQ(results.size(), blocks.size());
  EXPECT_EQ(b.bus.last_stream_cycles(), blocks.size() * 50);
  aes::Aes128 ref(key);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::array<std::uint8_t, 16> expected{};
    ref.decrypt_block(blocks[i], expected);
    EXPECT_EQ(to_hex(results[i]), to_hex(expected)) << "block " << i;
  }
}

// --- protocol behaviour ---------------------------------------------------------------

TEST(Protocol, DataOkIsAOneCycleStrobe) {
  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(random_block(13));
  b.bus.process_block(random_block(14));
  EXPECT_TRUE(b.ip.data_ok.read());
  b.sim.step();
  EXPECT_FALSE(b.ip.data_ok.read()) << "data_ok must strobe for exactly one cycle";
}

TEST(Protocol, DoutHoldsResultAfterStrobe) {
  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(from_hex("000102030405060708090a0b0c0d0e0f"));
  b.bus.process_block(from_hex("00112233445566778899aabbccddeeff"));
  b.sim.run(10);
  EXPECT_EQ(b.ip.dout.read().to_hex(), "69c4e0d86a7b0430d8cdb78070b4c55a")
      << "the Out register holds the result until the next block completes";
}

TEST(Protocol, KeyChangeTakesEffect) {
  Bench b(core::IpMode::kEncrypt);
  const auto key1 = random_block(15);
  const auto key2 = random_block(16);
  const auto pt = random_block(17);
  b.bus.load_key(key1);
  const auto ct1 = b.bus.process_block(pt);
  b.bus.load_key(key2);
  const auto ct2 = b.bus.process_block(pt);
  aes::Aes128 ref2(key2);
  std::array<std::uint8_t, 16> expected{};
  ref2.encrypt_block(pt, expected);
  EXPECT_NE(to_hex(ct1), to_hex(ct2));
  EXPECT_EQ(to_hex(ct2), to_hex(expected));
}

TEST(Protocol, SetupResetsTheCore) {
  Bench b(core::IpMode::kEncrypt);
  b.bus.load_key(random_block(18));
  EXPECT_TRUE(b.ip.key_ready());
  b.bus.reset();
  EXPECT_FALSE(b.ip.key_ready()) << "setup clears configuration";
  EXPECT_FALSE(b.ip.busy());
  // A block written with no valid key must not start processing.
  b.ip.din.write(hdl::Word128::from_hex("00112233445566778899aabbccddeeff"));
  b.ip.wr_data.write(true);
  b.sim.step();
  b.ip.wr_data.write(false);
  b.sim.run(60);
  EXPECT_FALSE(b.ip.data_ok.read());
  EXPECT_EQ(b.ip.blocks_done(), 0u);
}

TEST(Protocol, DataCanLoadWhileBusy) {
  Bench b(core::IpMode::kEncrypt);
  const auto key = random_block(19);
  b.bus.load_key(key);
  const auto blk1 = random_block(20);
  const auto blk2 = random_block(21);

  // Kick off block 1 manually, then write block 2 mid-processing.
  b.ip.din.write(hdl::Word128::from_bytes(blk1));
  b.ip.wr_data.write(true);
  b.sim.step();
  b.ip.wr_data.write(false);
  b.sim.run(10);
  EXPECT_TRUE(b.ip.busy());
  b.ip.din.write(hdl::Word128::from_bytes(blk2));
  b.ip.wr_data.write(true);
  b.sim.step();
  b.ip.wr_data.write(false);
  EXPECT_TRUE(b.ip.data_pending());

  // Both results must appear, 50 cycles apart, in order.
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> exp1{}, exp2{};
  ref.encrypt_block(blk1, exp1);
  ref.encrypt_block(blk2, exp2);
  std::vector<std::string> seen;
  for (int i = 0; i < 120 && seen.size() < 2; ++i) {
    b.sim.step();
    if (b.ip.data_ok.read()) seen.push_back(b.ip.dout.read().to_hex());
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], to_hex(exp1));
  EXPECT_EQ(seen[1], to_hex(exp2));
}

TEST(Protocol, BothDeviceAlternatesDirections) {
  Bench b(core::IpMode::kBoth);
  const auto key = random_block(22);
  b.bus.load_key(key);
  aes::Aes128 ref(key);
  for (std::uint32_t i = 0; i < 6; ++i) {
    const auto blk = random_block(300 + i);
    std::array<std::uint8_t, 16> expected{};
    if (i % 2 == 0) ref.encrypt_block(blk, expected);
    else ref.decrypt_block(blk, expected);
    const auto got = b.bus.process_block(blk, i % 2 == 0);
    EXPECT_EQ(to_hex(got), to_hex(expected)) << "op " << i;
  }
}

// --- structure ------------------------------------------------------------------------

TEST(Structure, SBoxCountsMatchPaperTable2) {
  hdl::Simulator s1, s2, s3;
  core::RijndaelIp enc(s1, core::IpMode::kEncrypt);
  core::RijndaelIp dec(s2, core::IpMode::kDecrypt);
  core::RijndaelIp both(s3, core::IpMode::kBoth);
  EXPECT_EQ(enc.sbox_count(), 8) << "16384 bits of S-box ROM";
  EXPECT_EQ(dec.sbox_count(), 8) << "16384 bits of S-box ROM";
  EXPECT_EQ(both.sbox_count(), 16) << "32768 bits of S-box ROM";
}

TEST(Structure, CycleConstantsMatchPaper) {
  EXPECT_EQ(core::RijndaelIp::kCyclesPerRound, 5);
  EXPECT_EQ(core::RijndaelIp::kCyclesPerBlock, 50);
  EXPECT_EQ(core::RijndaelIp::kCyclesPerRoundAll32, 12);
}
