// Fleet management (src/fleet/): live engine hot-swap, spot-check +
// quarantine-heal, SEU chaos injection, and the wire admin plane — all
// exercised under real traffic. The invariant every test closes on:
// clients never lose a frame and never see corrupted bytes, whatever the
// fleet does to the workers underneath them.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "engine/engine.hpp"
#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"

namespace farm = aesip::farm;
namespace fleet = aesip::fleet;
namespace engine = aesip::engine;
namespace net = aesip::net;
namespace aes = aesip::aes;

namespace {

farm::Request make_request(std::mt19937& rng, std::uint64_t session,
                           const farm::Key128& key) {
  farm::Request req;
  req.session_id = session;
  req.key = key;
  for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
  req.mode = static_cast<farm::Mode>(rng() % 3);
  req.encrypt = (rng() & 1) != 0;
  req.payload.resize((1 + rng() % 4) * 16);
  for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
  return req;
}

std::vector<std::uint8_t> oracle(const farm::Request& req) {
  const aes::Rijndael ref = aes::Rijndael::for_key(req.key.view());
  const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
  switch (req.mode) {
    case farm::Mode::kEcb:
      return req.encrypt ? aes::ecb_encrypt(ref, req.payload)
                         : aes::ecb_decrypt(ref, req.payload);
    case farm::Mode::kCbc:
      return req.encrypt ? aes::cbc_encrypt(ref, iv, req.payload)
                         : aes::cbc_decrypt(ref, iv, req.payload);
    case farm::Mode::kCtr:
      return aes::ctr_crypt(ref, iv, req.payload);
  }
  return {};
}

/// A deliberately corruptible engine: the software reference with a chaos
/// hook that flips the first output byte of every block once injected.
/// Stands in for a netlist engine hit by an SEU, at software speed.
class FaultyEngine final : public engine::CipherEngine {
 public:
  engine::EngineKind kind() const noexcept override { return inner_.kind(); }
  aesip::core::IpMode mode() const noexcept override { return inner_.mode(); }
  std::uint64_t load_key(std::span<const std::uint8_t> key) override {
    return inner_.load_key(key);
  }
  bool key_resident(std::span<const std::uint8_t> key) const override {
    return inner_.key_resident(key);
  }
  std::size_t fault_sites() const noexcept override { return 1; }
  bool inject_fault(std::size_t) override {
    corrupt_ = true;
    return true;
  }
  std::uint64_t cycles() const noexcept override { return inner_.cycles(); }
  std::uint64_t last_latency() const noexcept override { return inner_.last_latency(); }
  aesip::core::IpCounters counters() const override { return inner_.counters(); }

 protected:
  std::array<std::uint8_t, 16> do_process(std::span<const std::uint8_t> block,
                                          bool encrypt) override {
    auto out = inner_.process_block(block, encrypt);
    if (corrupt_) out[0] ^= 0x80;
    return out;
  }

 private:
  engine::SoftwareEngine inner_;
  bool corrupt_ = false;
};

// --- hot-swap ----------------------------------------------------------------

TEST(FleetSwap, SwapUnderLoadLosesNothing) {
  farm::FarmConfig cfg;
  cfg.workers = 4;
  cfg.engine = engine::EngineKind::kBehavioral;
  farm::Farm f(cfg);

  std::mt19937 rng(42);
  std::vector<farm::Key128> keys(4);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());

  std::vector<std::future<farm::Result>> pending;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 48; ++i) {
      auto req = make_request(rng, rng() % keys.size(), keys[rng() % keys.size()]);
      req.key = keys[req.session_id % keys.size()];
      expect.push_back(oracle(req));
      pending.push_back(f.submit(std::move(req)));
    }
    // Rotate every worker's engine mid-stream: behavioral -> sw -> back.
    const auto kind = (round & 1) ? engine::EngineKind::kBehavioral
                                  : engine::EngineKind::kSoftware;
    for (int w = 0; w < cfg.workers; ++w) {
      const auto rep = f.swap_engine(w, kind).get();
      EXPECT_EQ(rep.worker, w);
      EXPECT_EQ(rep.to, engine::kind_name(kind));
    }
  }
  ASSERT_EQ(pending.size(), expect.size());
  for (std::size_t i = 0; i < pending.size(); ++i)
    EXPECT_EQ(pending[i].get().data, expect[i]) << "request " << i;

  const auto st = f.stats();
  EXPECT_EQ(st.swaps, 16u);
  EXPECT_EQ(st.requests, pending.size());
  EXPECT_EQ(st.swap_pause_us.count, 16u);
}

TEST(FleetSwap, SwapReplaysResidentKeyState) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.engine = engine::EngineKind::kBehavioral;
  farm::Farm f(cfg);

  std::mt19937 rng(7);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());

  // First request installs the key (decrypt-capable device: 40 cycles).
  auto r0 = f.process(make_request(rng, 1, key));
  EXPECT_FALSE(r0.key_was_hot);

  // The swap must replay the resident key into the fresh engine.
  const auto rep = f.swap_engine(0, engine::EngineKind::kBehavioral).get();
  EXPECT_TRUE(rep.key_replayed);
  EXPECT_EQ(rep.setup_cycles, 40u);  // the paper's decrypt key-setup cost
  EXPECT_EQ(rep.from, rep.to);

  // So the next request on the same session pays zero setup: the fast
  // path the farm's affinity routing exists for survives the swap.
  auto req = make_request(rng, 1, key);
  const auto expect = oracle(req);
  const auto r1 = f.process(std::move(req));
  EXPECT_EQ(r1.data, expect);
  EXPECT_TRUE(r1.key_was_hot);
  EXPECT_EQ(r1.setup_cycles, 0u);
}

TEST(FleetSwap, BadWorkerIndexThrows) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.engine = engine::EngineKind::kSoftware;
  farm::Farm f(cfg);
  EXPECT_THROW(f.swap_engine(2, engine::EngineKind::kSoftware), std::out_of_range);
  EXPECT_THROW(f.swap_engine(-1, engine::EngineKind::kSoftware), std::out_of_range);
  EXPECT_THROW(f.inject_fault(5, 0), std::out_of_range);
}

TEST(FleetSwap, ControllerSwapAllOverlaps) {
  farm::FarmConfig cfg;
  cfg.workers = 3;
  cfg.engine = engine::EngineKind::kSoftware;
  farm::Farm f(cfg);
  fleet::FleetController ctl(f);

  const auto reports = ctl.swap_all(engine::EngineKind::kBehavioral);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) EXPECT_EQ(r.to, std::string("behavioral"));
  const auto status = ctl.status();
  EXPECT_EQ(status.swaps, 3u);
  for (const auto& w : status.per_worker) EXPECT_EQ(w.engine, "behavioral");
}

// --- spot-check + heal -------------------------------------------------------

TEST(FleetSpotCheck, MismatchReplaysBitExactAndHeals) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.spot_check_fraction = 1.0;
  cfg.heal_on_mismatch = true;
  cfg.engine_factory = [] { return std::make_unique<FaultyEngine>(); };
  farm::Farm f(cfg);

  std::mt19937 rng(3);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());

  // Clean engine: answered by the engine itself, not the oracle.
  auto req = make_request(rng, 1, key);
  auto expect = oracle(req);
  auto res = f.process(std::move(req));
  EXPECT_EQ(res.data, expect);
  EXPECT_FALSE(res.replayed);

  // Corrupt the live engine; the next job's spot-check must catch it,
  // answer from the oracle (bit-exact to the client), and heal inline.
  EXPECT_TRUE(f.inject_fault(0, 0).get());
  req = make_request(rng, 1, key);
  expect = oracle(req);
  res = f.process(std::move(req));
  EXPECT_EQ(res.data, expect) << "client saw corrupted bytes";
  EXPECT_TRUE(res.replayed);

  auto st = f.stats();
  EXPECT_EQ(st.spot_mismatches, 1u);
  EXPECT_EQ(st.replayed_jobs, 1u);
  EXPECT_EQ(st.heals, 1u);

  // The rebuilt engine is clean: no further replays.
  req = make_request(rng, 1, key);
  expect = oracle(req);
  res = f.process(std::move(req));
  EXPECT_EQ(res.data, expect);
  EXPECT_FALSE(res.replayed);
  EXPECT_EQ(f.stats().spot_mismatches, 1u);
}

// The adaptive controller: a mismatch flips the worker to the boosted
// sampling rate; spot_check_decay_jobs consecutive clean checks decay it
// back. Counters surface through FarmStats, FleetStatus and its JSON.
TEST(FleetSpotCheck, AdaptiveBoostRaisesThenDecays) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.spot_check_fraction = 1.0;  // deterministic detection for the test
  cfg.spot_check_boost_fraction = 1.0;
  cfg.spot_check_decay_jobs = 3;
  cfg.heal_on_mismatch = true;
  cfg.engine_factory = [] { return std::make_unique<FaultyEngine>(); };
  farm::Farm f(cfg);
  fleet::FleetController ctl(f);

  std::mt19937 rng(9);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());

  ASSERT_TRUE(f.inject_fault(0, 0).get());
  auto req = make_request(rng, 1, key);
  auto res = f.process(std::move(req));
  EXPECT_TRUE(res.replayed);

  auto st = f.stats();
  EXPECT_EQ(st.spot_boosts, 1u);
  EXPECT_EQ(st.workers_boosted, 1);

  // The heal rebuilt a clean engine: three clean boosted checks, then decay.
  for (int i = 0; i < 3; ++i) {
    auto clean = make_request(rng, 1, key);
    const auto expect = oracle(clean);
    const auto r = f.process(std::move(clean));
    EXPECT_EQ(r.data, expect);
    EXPECT_FALSE(r.replayed);
  }
  st = f.stats();
  EXPECT_EQ(st.spot_boosts, 1u);  // one episode, not re-entered per check
  EXPECT_EQ(st.spot_boost_checks, 3u);
  EXPECT_EQ(st.workers_boosted, 0);

  // A second mismatch opens a second episode.
  ASSERT_TRUE(f.inject_fault(0, 0).get());
  auto again = make_request(rng, 1, key);
  EXPECT_TRUE(f.process(std::move(again)).replayed);
  st = f.stats();
  EXPECT_EQ(st.spot_boosts, 2u);
  EXPECT_EQ(st.workers_boosted, 1);

  // FleetStatus mirrors the counters, in the struct and in the JSON.
  const auto status = ctl.status();
  EXPECT_EQ(status.spot_boosts, 2u);
  EXPECT_EQ(status.spot_boost_checks, 3u);
  EXPECT_EQ(status.workers_boosted, 1);
  std::ostringstream os;
  status.write_json(os);
  EXPECT_NE(os.str().find("\"spot_boosts\": 2"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("\"workers_boosted\": 1"), std::string::npos) << os.str();
}

TEST(FleetSpotCheck, HealOffStillReplaysFromOracle) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.spot_check_fraction = 1.0;
  cfg.heal_on_mismatch = false;
  cfg.engine_factory = [] { return std::make_unique<FaultyEngine>(); };
  farm::Farm f(cfg);

  std::mt19937 rng(5);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  ASSERT_TRUE(f.inject_fault(0, 0).get());

  // Without healing every job keeps mismatching — and every one is still
  // answered bit-exactly from the oracle.
  for (int i = 0; i < 3; ++i) {
    auto req = make_request(rng, 1, key);
    const auto expect = oracle(req);
    const auto res = f.process(std::move(req));
    EXPECT_EQ(res.data, expect);
    EXPECT_TRUE(res.replayed);
  }
  const auto st = f.stats();
  EXPECT_EQ(st.spot_mismatches, 3u);
  EXPECT_EQ(st.heals, 0u);
}

// --- quarantine --------------------------------------------------------------

TEST(FleetQuarantine, MigratesSessionsAndResumes) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.engine = engine::EngineKind::kSoftware;
  farm::Farm f(cfg);

  std::mt19937 rng(11);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());

  const auto r0 = f.process(make_request(rng, 1, key));
  const int home = r0.worker;
  ASSERT_GE(home, 0);

  f.set_worker_enabled(home, false);
  EXPECT_FALSE(f.worker_enabled(home));

  // The session's next request must land on the other worker, bit-exact.
  auto req = make_request(rng, 1, key);
  const auto expect = oracle(req);
  const auto r1 = f.process(std::move(req));
  EXPECT_EQ(r1.data, expect);
  EXPECT_NE(r1.worker, home);

  auto st = f.stats();
  EXPECT_EQ(st.quarantines, 1u);
  EXPECT_GE(st.sessions_migrated, 1u);
  EXPECT_EQ(st.workers_enabled, 1);
  ASSERT_EQ(st.per_worker.size(), 2u);
  EXPECT_FALSE(st.per_worker[static_cast<std::size_t>(home)].enabled);

  f.set_worker_enabled(home, true);
  EXPECT_TRUE(f.worker_enabled(home));
  EXPECT_EQ(f.stats().workers_enabled, 2);
  // Re-enabling is not a second quarantine.
  EXPECT_EQ(f.stats().quarantines, 1u);
}

// --- SEU chaos on the real netlist engine ------------------------------------

TEST(FleetChaos, NetlistInjectionDetectedHealedBitExact) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.engine = engine::EngineKind::kNetlist;
  cfg.spot_check_fraction = 1.0;  // detection window: the very next job
  farm::Farm f(cfg);
  fleet::ChaosInjector chaos(f, /*seed=*/0xc4a05);

  std::mt19937 rng(13);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());

  // Warm the key so injections land on a settled, key-resident engine.
  auto warm = make_request(rng, 1, key);
  warm.mode = farm::Mode::kEcb;
  ASSERT_EQ(f.process(std::move(warm)).worker, 0);

  // Classified standby-corrupting sites are corrupting for *some*
  // stimulus; under this traffic a given flip may still be masked (e.g.
  // overwritten at the next block load). Inject until one is caught —
  // every response must be bit-exact throughout, caught or not.
  bool detected = false;
  for (int attempt = 0; attempt < 12 && !detected; ++attempt) {
    const auto ev = chaos.inject(0);
    ASSERT_TRUE(ev.injected) << "netlist engine refused the flip";
    for (int i = 0; i < 2; ++i) {
      auto req = make_request(rng, 1, key);
      const auto expect = oracle(req);
      const auto res = f.process(std::move(req));
      ASSERT_EQ(res.data, expect) << "corrupted bytes reached the client";
      detected |= res.replayed;
    }
  }
  EXPECT_TRUE(detected) << "no injection was ever caught by the spot-check";

  const auto st = f.stats();
  EXPECT_GE(st.spot_mismatches, 1u);
  EXPECT_GE(st.heals, 1u);
  EXPECT_EQ(st.spot_mismatches, st.replayed_jobs);
  EXPECT_FALSE(chaos.events().empty());
}

// --- the wire admin plane ----------------------------------------------------

net::ServerConfig admin_server_cfg(int workers = 2) {
  net::ServerConfig cfg;
  cfg.farm.workers = workers;
  cfg.farm.engine = engine::EngineKind::kSoftware;
  return cfg;
}

TEST(FleetAdmin, OpcodesOverLoopback) {
  net::LoopbackTransport transport;
  net::Server server(transport, "admin", admin_server_cfg());
  server.start();
  {
    net::Client client(transport, "admin", 1);

    const auto status = client.fleet_status_json();
    EXPECT_NE(status.find("\"workers\": 2"), std::string::npos);
    EXPECT_NE(status.find("\"swaps\": 0"), std::string::npos);

    const auto swapped = client.fleet_swap(0, /*kind=*/1);  // -> behavioral
    EXPECT_NE(swapped.find("swapped 1 worker(s)"), std::string::npos);

    const auto q = client.fleet_quarantine(1, /*resume=*/false);
    EXPECT_NE(q.find("quarantined"), std::string::npos);
    const auto r = client.fleet_quarantine(1, /*resume=*/true);
    EXPECT_NE(r.find("resumed"), std::string::npos);

    // Software engines have no gate-level state: inject reports that.
    const auto inj = client.fleet_inject(0, 0);
    EXPECT_NE(inj.find("no gate-level state"), std::string::npos);

    const auto after = client.fleet_status_json();
    EXPECT_NE(after.find("\"swaps\": 1"), std::string::npos);
    client.bye();
  }
  server.stop();
  EXPECT_EQ(server.stats().admin_frames, 6u);
}

TEST(FleetAdmin, DisabledPlaneRefusesEveryAdminOp) {
  auto cfg = admin_server_cfg();
  cfg.admin = false;
  net::LoopbackTransport transport;
  net::Server server(transport, "noadmin", cfg);
  server.start();
  {
    net::Client client(transport, "noadmin", 1);
    try {
      client.fleet_status_json();
      FAIL() << "admin op succeeded on a server with the plane disabled";
    } catch (const net::WireError& e) {
      EXPECT_EQ(e.code(), net::ErrorCode::kAdminDisabled);
    }
    client.bye();
  }
  server.stop();
}

TEST(FleetAdmin, SwapAllUnderWireTrafficStaysBitExact) {
  net::LoopbackTransport transport;
  net::Server server(transport, "busy", admin_server_cfg(2));
  server.start();

  std::atomic<int> mismatches{0};
  std::thread traffic([&] {
    try {
      net::Client client(transport, "busy", 7);
      std::mt19937 rng(21);
      farm::Key128 key;
      for (auto& b : key) b = static_cast<std::uint8_t>(rng());
      client.set_key(key);
      const aes::Aes128 ref(key);
      for (int i = 0; i < 60; ++i) {
        farm::Key128 iv;
        for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
        const std::span<const std::uint8_t, 16> ivs(iv.data(), 16);
        std::vector<std::uint8_t> data((1 + rng() % 4) * 16);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng());
        const auto expect = aes::cbc_encrypt(ref, ivs, data);
        if (client.enc_blocks(true, iv, std::move(data)) != expect) mismatches.fetch_add(1);
      }
      client.drain();
      client.bye();
    } catch (const std::exception&) {
      mismatches.fetch_add(1000);
    }
  });

  {
    net::Client admin(transport, "busy", 99);
    for (int round = 0; round < 4; ++round) {
      const auto text = admin.fleet_swap(-1, round & 1 ? 0 : 1);
      EXPECT_NE(text.find("swapped 2 worker(s)"), std::string::npos);
    }
    admin.bye();
  }
  traffic.join();
  server.stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.farm_stats().swaps, 8u);
}

}  // namespace
