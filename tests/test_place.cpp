// Placement engine: legality, determinism, wirelength improvement on
// structured circuits, placement of the full mapped IP, and the
// wirelength-backannotated timing mode.
#include <gtest/gtest.h>

#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "place/place.hpp"
#include "sta/sta.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace place = aesip::place;
namespace txm = aesip::techmap;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

/// A shift-register chain: heavily local connectivity that a placer must
/// exploit (HPWL of a good placement is far below random).
Netlist make_chain(int length) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  NetId prev = d;
  for (int i = 0; i < length; ++i) prev = nl.add_dff(prev);
  nl.add_output(prev, "q");
  return nl;
}

}  // namespace

TEST(Place, RejectsUnmappedGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output(nl.gate_not(a), "y");
  EXPECT_THROW(place::anneal(nl), std::invalid_argument);
}

TEST(Place, ChainPlacementImprovesSubstantially) {
  const Netlist nl = make_chain(64);
  place::Options opt;
  opt.seed = 3;
  const auto p = place::anneal(nl, opt);
  EXPECT_EQ(p.cell_count, 64u);
  EXPECT_GT(p.initial_hpwl, 0.0);
  EXPECT_GT(p.improvement(), 0.5)
      << "a 64-stage shift chain must shorten by >50% from a random start: "
      << p.initial_hpwl << " -> " << p.final_hpwl;
}

TEST(Place, DeterministicForASeed) {
  const Netlist nl = make_chain(32);
  place::Options opt;
  opt.seed = 9;
  const auto a = place::anneal(nl, opt);
  const auto b = place::anneal(nl, opt);
  EXPECT_DOUBLE_EQ(a.final_hpwl, b.final_hpwl);
  EXPECT_DOUBLE_EQ(a.initial_hpwl, b.initial_hpwl);
  // (Different seeds usually differ, but near-optimal results can collide
  // on a small chain — determinism is the property worth pinning.)
}

TEST(Place, NetLengthsArePositiveAndBounded) {
  const Netlist nl = make_chain(16);
  const auto p = place::anneal(nl);
  const double bound = static_cast<double>(p.grid_width + p.grid_height + 4);
  double total = 0.0;
  for (const double len : p.net_length) {
    EXPECT_GE(len, 0.0);
    EXPECT_LE(len, bound);
    total += len;
  }
  EXPECT_NEAR(total, p.final_hpwl, 1e-6);
}

TEST(Place, FullEncryptIpPlaces) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  place::Options opt;
  opt.stages = 30;  // keep the suite quick
  opt.moves_per_cell = 4;
  const auto p = place::anneal(mapped.mapped, opt);
  EXPECT_GT(p.cell_count, 1000u);
  EXPECT_GT(p.improvement(), 0.25)
      << "annealing must beat the random start on the real IP: " << p.initial_hpwl << " -> "
      << p.final_hpwl;
  // Grid sized for ~50% fill.
  EXPECT_GE(static_cast<std::size_t>(p.grid_width * p.grid_height), 2 * p.cell_count / 3);
}

TEST(Place, BackannotatedTimingUsesWirelengths) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  place::Options opt;
  opt.stages = 20;
  opt.moves_per_cell = 3;
  const auto p = place::anneal(mapped.mapped, opt);

  // Convert grid units to ns and re-run timing.
  const auto& dm = aesip::fpga::ep1k100fc484_1().timing;
  std::vector<double> extra(p.net_length.size());
  const double ns_per_unit = 0.03;
  for (std::size_t i = 0; i < extra.size(); ++i) extra[i] = ns_per_unit * p.net_length[i];
  const auto statistical = aesip::sta::analyze(mapped.mapped, dm);
  const auto placed = aesip::sta::analyze(mapped.mapped, dm, extra);
  EXPECT_GT(placed.clock_period_ns, statistical.clock_period_ns)
      << "wire delays only add on top of the statistical model";
  EXPECT_LT(placed.clock_period_ns, 2.5 * statistical.clock_period_ns)
      << "but a decent placement keeps the overhead bounded";
}
