// Single-event-upset emulation and TMR hardening: fault-injection
// machinery, the self-healing property of the triplicated design, and
// campaign classification (the methodology of the authors' reference [16]).
#include <gtest/gtest.h>

#include <random>

#include "aes/cipher.hpp"
#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "netlist/eval.hpp"
#include "seu/campaign.hpp"
#include "seu/tmr.hpp"
#include "techmap/techmap.hpp"

namespace aes = aesip::aes;
namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace seu = aesip::seu;
namespace txm = aesip::techmap;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

std::array<std::uint8_t, 16> random_block(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> out{};
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// The mapped encrypt IP, shared across tests (mapping once keeps the
/// suite fast).
const Netlist& mapped_encrypt_ip() {
  static const txm::MapResult r = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  return r.mapped;
}

const seu::TmrResult& tmr_encrypt_ip() {
  static const seu::TmrResult r = seu::harden_tmr(mapped_encrypt_ip());
  return r;
}

}  // namespace

// --- injection primitive -----------------------------------------------------------

TEST(FaultInjection, FlipDffTogglesState) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_dff(d);
  nl.add_output(q, "q");
  nlist::Evaluator ev(nl);
  ev.set(d, false);
  ev.settle();
  ev.clock();
  EXPECT_FALSE(ev.get(q));
  ASSERT_EQ(ev.dff_count(), 1u);
  ev.flip_dff(0);
  ev.settle();
  EXPECT_TRUE(ev.get(q)) << "the upset must be visible immediately";
  ev.clock();
  EXPECT_FALSE(ev.get(q)) << "D=0 rewrites the register at the next edge";
}

TEST(FaultInjection, UpsetInStateRegisterCorruptsTheBlock) {
  // Hit a mid-computation register: the ciphertext must change (AES
  // diffusion makes a silent single-bit state error essentially impossible
  // once it is in the datapath).
  const auto key = random_block(1);
  const auto pt = random_block(2);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);

  core::GateIpDriver drv(mapped_encrypt_ip());
  drv.load_key(key, false);
  drv.set_din(pt);
  drv.set("wr_data", true);
  drv.clock();
  drv.set("wr_data", false);
  for (int c = 0; c < 20; ++c) drv.clock();
  // Find a flip that matters: sweep until one corrupts (most will).
  bool corrupted_found = false;
  for (std::size_t dff = 0; dff < drv.evaluator().dff_count() && !corrupted_found; dff += 97) {
    core::GateIpDriver d2(mapped_encrypt_ip());
    d2.load_key(key, false);
    d2.set_din(pt);
    d2.set("wr_data", true);
    d2.clock();
    d2.set("wr_data", false);
    for (int c = 0; c < 20; ++c) d2.clock();
    d2.evaluator().flip_dff(dff);
    d2.evaluator().settle();
    for (int c = 0; c < 60 && !d2.data_ok(); ++c) d2.clock();
    if (d2.data_ok() && d2.read_dout() != golden) corrupted_found = true;
  }
  EXPECT_TRUE(corrupted_found) << "some register upset must corrupt the output";
}

// --- TMR transform --------------------------------------------------------------------

TEST(Tmr, TriplicatesStateAndAddsVoters) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const std::array<NetId, 1> in{d};
  const NetId l = nl.add_lut(0b10, in);  // buffer
  const NetId q = nl.add_dff(l);
  nl.add_output(q, "q");
  const auto r = seu::harden_tmr(nl);
  EXPECT_EQ(r.stats.original_dffs, 1u);
  EXPECT_EQ(r.stats.voters, 1u);
  const auto st = r.hardened.stats();
  EXPECT_EQ(st.dffs, 3u);
  EXPECT_EQ(st.luts, 2u);  // the buffer + the voter
}

TEST(Tmr, RejectsUnmappedGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output(nl.gate_not(a), "y");
  EXPECT_THROW(seu::harden_tmr(nl), std::invalid_argument);
}

TEST(Tmr, HardenedCounterStillCounts) {
  // Map a counter, harden it, and check both count identically.
  Netlist nl;
  Bus q;
  for (int i = 0; i < 4; ++i) q.push_back(nl.new_net());
  const Bus d = nl.increment(q);
  for (int i = 0; i < 4; ++i)
    nl.add_dff_with_out(q[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(i)]);
  nl.add_output_bus(q, "q");
  const auto mapped = txm::map_to_luts(nl);
  const auto tmr = seu::harden_tmr(mapped.mapped);

  nlist::Evaluator ev(tmr.hardened);
  Bus out;
  for (const auto& po : tmr.hardened.outputs()) out.push_back(po.net);
  ev.settle();
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(ev.get_bus(out), static_cast<std::uint64_t>(v & 0xf));
    ev.clock();
  }
}

TEST(Tmr, HardenedCounterHealsSingleUpsets) {
  Netlist nl;
  Bus q;
  for (int i = 0; i < 4; ++i) q.push_back(nl.new_net());
  const Bus d = nl.increment(q);
  for (int i = 0; i < 4; ++i)
    nl.add_dff_with_out(q[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(i)]);
  nl.add_output_bus(q, "q");
  const auto tmr = seu::harden_tmr(txm::map_to_luts(nl).mapped);

  nlist::Evaluator ev(tmr.hardened);
  Bus out;
  for (const auto& po : tmr.hardened.outputs()) out.push_back(po.net);
  ev.settle();
  std::uint64_t expected = 0;
  for (std::size_t victim = 0; victim < ev.dff_count(); ++victim) {
    EXPECT_EQ(ev.get_bus(out), expected & 0xf) << "before upset " << victim;
    ev.flip_dff(victim);
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), expected & 0xf)
        << "voted output must mask upset in replica " << victim;
    ev.clock();  // replicas resample voted state: healed
    ++expected;
  }
}

TEST(Tmr, HardenedIpStillEncrypts) {
  const auto& tmr = tmr_encrypt_ip();
  core::GateIpDriver drv(tmr.hardened);
  const auto key = random_block(5);
  const auto pt = random_block(6);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  drv.load_key(key, false);
  const auto res = drv.process(pt, true);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->data, golden);
  EXPECT_EQ(res->cycles, 50) << "hardening must not change the schedule";
}

TEST(Tmr, AreaOverheadIsThreeXStatePlusVoters) {
  const auto base_stats = mapped_encrypt_ip().stats();
  const auto& tmr = tmr_encrypt_ip();
  const auto hard_stats = tmr.hardened.stats();
  EXPECT_EQ(hard_stats.dffs, 3 * base_stats.dffs);
  EXPECT_EQ(hard_stats.luts, base_stats.luts + base_stats.dffs);  // one voter per FF
  EXPECT_EQ(hard_stats.rom_bits, base_stats.rom_bits) << "memory is not triplicated";
}

// --- campaigns ---------------------------------------------------------------------------

TEST(Campaign, ClassifiesEveryInjection) {
  const auto stats = seu::run_campaign(mapped_encrypt_ip(), 40, /*seed=*/7);
  EXPECT_EQ(stats.total(), 40u);
  EXPECT_EQ(stats.injections.size(), 40u);
  for (const auto& inj : stats.injections) {
    EXPECT_LT(inj.cycle, 50);
    EXPECT_LT(inj.dff, mapped_encrypt_ip().stats().dffs);
  }
}

TEST(Campaign, IsDeterministicForASeed) {
  const auto a = seu::run_campaign(mapped_encrypt_ip(), 15, 3);
  const auto b = seu::run_campaign(mapped_encrypt_ip(), 15, 3);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.latent, b.latent);
  EXPECT_EQ(a.persistent, b.persistent);
  EXPECT_EQ(a.hang, b.hang);
}

TEST(Campaign, UnprotectedCoreIsSensitive) {
  const auto stats = seu::run_campaign(mapped_encrypt_ip(), 60, 11);
  // Most of the state is live datapath/key registers: a healthy fraction of
  // upsets must corrupt the output (reference [16] reports the same).
  EXPECT_GT(stats.corrupted + stats.latent + stats.persistent + stats.hang, 10u);
  // Key_In-register hits surface as latent corruption — the classification
  // the follow-up block exists to catch.
  EXPECT_GT(stats.latent, 0u);
  // And some upsets land in already-consumed state and are masked.
  EXPECT_GT(stats.masked, 0u);
}

TEST(Campaign, TmrMasksEverything) {
  const auto stats = seu::run_campaign(tmr_encrypt_ip().hardened, 60, 13);
  EXPECT_EQ(stats.masked, stats.total())
      << "a single upset can never escape the voters";
}

TEST(Campaign, OutcomeNames) {
  EXPECT_STREQ(seu::outcome_name(seu::Outcome::kMasked), "masked");
  EXPECT_STREQ(seu::outcome_name(seu::Outcome::kCorrupted), "corrupted");
  EXPECT_STREQ(seu::outcome_name(seu::Outcome::kLatent), "latent");
  EXPECT_STREQ(seu::outcome_name(seu::Outcome::kPersistent), "persistent");
  EXPECT_STREQ(seu::outcome_name(seu::Outcome::kHang), "hang");
}
