// The comparison architectures, measured: the all-32-bit organization
// really takes 12 cycles/round (the paper's Section 4 number), the
// full-128 stored-key organization really takes 10 cycles/block and pays
// for it in S-boxes and key RAM — and both encrypt correctly.
#include <gtest/gtest.h>

#include <random>

#include "aes/cipher.hpp"
#include "arch/alt_ip.hpp"
#include "arch/cycle_model.hpp"
#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"

namespace aes = aesip::aes;
namespace arch = aesip::arch;
namespace core = aesip::core;
namespace hdl = aesip::hdl;

namespace {

std::array<std::uint8_t, 16> random_block(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> out{};
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

template <typename Ip>
struct AltBench {
  hdl::Simulator sim;
  Ip ip;
  core::GenericBusDriver<Ip> bus;
  AltBench() : ip(sim), bus(sim, ip) { bus.reset(); }
};

}  // namespace

// --- all-32-bit organization ---------------------------------------------------------

TEST(All32, EncryptsFipsVector) {
  AltBench<arch::All32Ip> b;
  const auto key = random_block(1);
  const auto pt = random_block(2);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  b.bus.load_key(key);
  EXPECT_EQ(b.bus.process_block(pt), golden);
}

class All32Conformance : public ::testing::TestWithParam<int> {};

TEST_P(All32Conformance, MatchesReference) {
  AltBench<arch::All32Ip> b;
  const auto key = random_block(static_cast<std::uint32_t>(GetParam()) + 10);
  const auto pt = random_block(static_cast<std::uint32_t>(GetParam()) + 20);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  b.bus.load_key(key);
  EXPECT_EQ(b.bus.process_block(pt), golden);
}

INSTANTIATE_TEST_SUITE_P(Vectors, All32Conformance, ::testing::Range(0, 8));

TEST(All32, LatencyIsExactly120Cycles) {
  // The measured form of Section 4's "12 cycles per round" claim.
  AltBench<arch::All32Ip> b;
  b.bus.load_key(random_block(3));
  b.bus.process_block(random_block(4));
  EXPECT_EQ(b.bus.last_latency(), 120u);
  EXPECT_EQ(arch::All32Ip::kCyclesPerBlock,
            10 * arch::cycles_per_round(arch::all32()));
}

TEST(All32, StreamingSustains120PerBlock) {
  AltBench<arch::All32Ip> b;
  b.bus.load_key(random_block(5));
  std::vector<std::array<std::uint8_t, 16>> blocks;
  for (std::uint32_t i = 0; i < 5; ++i) blocks.push_back(random_block(30 + i));
  const auto results = b.bus.stream(blocks);
  ASSERT_EQ(results.size(), blocks.size());
  EXPECT_EQ(b.bus.last_stream_cycles(), blocks.size() * 120);
}

TEST(All32, SameSboxBudgetAsMixedDesign) {
  hdl::Simulator s1, s2;
  arch::All32Ip a32(s1);
  core::RijndaelIp mixed(s2, core::IpMode::kEncrypt);
  EXPECT_EQ(a32.sbox_count(), mixed.sbox_count())
      << "the 128-bit linear section costs cycles, never memory — the "
         "paper's Section 4 argument";
}

// --- full-128-bit stored-key organization ----------------------------------------------

TEST(Full128, EncryptsCorrectly) {
  AltBench<arch::Full128Ip> b;
  const auto key = random_block(6);
  const auto pt = random_block(7);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  b.bus.load_key(key);
  EXPECT_EQ(b.bus.process_block(pt), golden);
}

class Full128Conformance : public ::testing::TestWithParam<int> {};

TEST_P(Full128Conformance, MatchesReference) {
  AltBench<arch::Full128Ip> b;
  const auto key = random_block(static_cast<std::uint32_t>(GetParam()) + 40);
  const auto pt = random_block(static_cast<std::uint32_t>(GetParam()) + 50);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  b.bus.load_key(key);
  EXPECT_EQ(b.bus.process_block(pt), golden);
}

INSTANTIATE_TEST_SUITE_P(Vectors, Full128Conformance, ::testing::Range(0, 8));

TEST(Full128, LatencyIsTenCycles) {
  AltBench<arch::Full128Ip> b;
  b.bus.load_key(random_block(8));
  b.bus.process_block(random_block(9));
  EXPECT_EQ(b.bus.last_latency(), 10u);
}

TEST(Full128, KeyExpansionTakesTenCycles) {
  AltBench<arch::Full128Ip> b;
  EXPECT_EQ(b.bus.load_key(random_block(10)), 10u)
      << "one stored round key per cycle";
}

TEST(Full128, StreamingSustains10PerBlock) {
  AltBench<arch::Full128Ip> b;
  b.bus.load_key(random_block(11));
  std::vector<std::array<std::uint8_t, 16>> blocks;
  for (std::uint32_t i = 0; i < 6; ++i) blocks.push_back(random_block(60 + i));
  const auto results = b.bus.stream(blocks);
  ASSERT_EQ(results.size(), blocks.size());
  EXPECT_EQ(b.bus.last_stream_cycles(), blocks.size() * 10);
  aes::Aes128 ref(random_block(11));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::array<std::uint8_t, 16> golden{};
    ref.encrypt_block(blocks[i], golden);
    EXPECT_EQ(results[i], golden) << i;
  }
}

TEST(Full128, PaysInSboxesAndKeyRam) {
  hdl::Simulator s1, s2;
  arch::Full128Ip f128(s1);
  core::RijndaelIp mixed(s2, core::IpMode::kEncrypt);
  EXPECT_EQ(f128.sbox_count(), 20);
  EXPECT_GT(f128.sbox_count(), 2 * mixed.sbox_count());
  EXPECT_EQ(arch::Full128Ip::kKeyRamBits, 1408);
}

// --- the three-way measured comparison ---------------------------------------------------

TEST(Ablation, MeasuredCycleRatiosMatchSection4) {
  AltBench<arch::All32Ip> a32;
  AltBench<arch::Full128Ip> f128;
  hdl::Simulator sim;
  core::RijndaelIp mixed_ip(sim, core::IpMode::kEncrypt);
  core::BusDriver mixed_bus(sim, mixed_ip);
  mixed_bus.reset();

  const auto key = random_block(70);
  const auto pt = random_block(71);
  a32.bus.load_key(key);
  f128.bus.load_key(key);
  mixed_bus.load_key(key);
  const auto r1 = a32.bus.process_block(pt);
  const auto r2 = f128.bus.process_block(pt);
  const auto r3 = mixed_bus.process_block(pt);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r2, r3) << "three architectures, one cipher";

  EXPECT_EQ(a32.bus.last_latency(), 120u);
  EXPECT_EQ(mixed_bus.last_latency(), 50u);
  EXPECT_EQ(f128.bus.last_latency(), 10u);
  // Section 4: mixed processing cuts the round 12 -> 5.
  EXPECT_EQ(a32.bus.last_latency() / 10, 12u);
  EXPECT_EQ(mixed_bus.last_latency() / 10, 5u);
}
