// Netlist interchange: Verilog emission sanity, BLIF round trips proven
// formally (write -> read -> BDD equivalence), behavioural round trips for
// sequential designs, and reader error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "aes/sbox.hpp"
#include "bdd/netlist_bdd.hpp"
#include "core/ip_synth.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"
#include "netlist/writer.hpp"
#include "techmap/techmap.hpp"

namespace bdd = aesip::bdd;
namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

Netlist roundtrip(const Netlist& nl) {
  std::ostringstream os;
  nlist::write_blif(nl, os, "dut");
  std::istringstream is(os.str());
  return nlist::read_blif(is);
}

}  // namespace

// --- Verilog ---------------------------------------------------------------------

TEST(Verilog, EmitsStructuralModule) {
  const Netlist ip = core::synthesize_ip(IpMode::kEncrypt, true);
  std::ostringstream os;
  nlist::write_verilog(ip, os, "aes_ip_enc");
  const std::string v = os.str();
  EXPECT_NE(v.find("module aes_ip_enc ("), std::string::npos);
  EXPECT_NE(v.find("input [127:0] din;"), std::string::npos);
  EXPECT_NE(v.find("output [127:0] dout;"), std::string::npos);
  EXPECT_NE(v.find("output data_ok;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("function [7:0] rom_0;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // The S-box table appears: S(0) = 0x63.
  EXPECT_NE(v.find("8'd0: rom_0 = 8'h63;"), std::string::npos);
}

TEST(Verilog, MappedNetlistUsesLutExpressions) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  NetId x = nl.gate_xor(in[0], in[1]);
  x = nl.gate_xor(x, in[2]);
  (void)nl.add_dff(x, in[3]);
  nl.add_output(x, "y");
  const auto mapped = txm::map_to_luts(nl);
  std::ostringstream os;
  nlist::write_verilog(mapped.mapped, os, "small");
  const std::string v = os.str();
  EXPECT_NE(v.find("module small (clk, in, y);"), std::string::npos);
  EXPECT_NE(v.find("if ("), std::string::npos) << "clock enable must be emitted";
}

// --- BLIF round trips ---------------------------------------------------------------

TEST(Blif, CombinationalRoundTripSmall) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  nl.add_output(nl.gate_xor(nl.gate_and(in[0], in[1]), nl.gate_or(in[2], in[3])), "y");
  nl.add_output(nl.gate_not(in[0]), "z");
  const Netlist back = roundtrip(nl);
  const auto r = bdd::prove_equivalent(nl, back);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(Blif, MuxAndLutRoundTrip) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  const NetId m = nl.gate_mux(in[0], in[1], in[2]);
  const std::array<NetId, 4> lin{in[0], in[1], in[2], in[3]};
  const NetId l = nl.add_lut(0xbeef & 0xffff, lin);
  nl.add_output(m, "m");
  nl.add_output(l, "l");
  const Netlist back = roundtrip(nl);
  const auto r = bdd::prove_equivalent(nl, back);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(Blif, RomRoundTripIsTheSameFunction) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  nl.add_output_bus(nl.add_rom(aesip::aes::kSBox, addr, "s"), "out");
  const Netlist back = roundtrip(nl);
  EXPECT_EQ(back.stats().roms, 0u) << "BLIF expands the ROM to logic";
  const auto r = bdd::prove_equivalent(nl, back);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(Blif, EnabledRegisterRoundTripsViaHoldMux) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId en = nl.add_input("en");
  const NetId q = nl.add_dff(d, en);
  nl.add_output(q, "q");
  const Netlist back = roundtrip(nl);
  EXPECT_EQ(back.stats().dffs, 1u);
  // Formal: next-state semantics identical despite the mux encoding.
  const auto r = bdd::prove_equivalent(nl, back);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
  // Behavioural double-check.
  nlist::Evaluator ev(back);
  const NetId md = back.inputs()[0].net;
  const NetId men = back.inputs()[1].net;
  const NetId mq = back.outputs()[0].net;
  ev.set(md, true);
  ev.set(men, false);
  ev.settle();
  ev.clock();
  EXPECT_FALSE(ev.get(mq));
  ev.set(men, true);
  ev.settle();
  ev.clock();
  EXPECT_TRUE(ev.get(mq));
}

TEST(Blif, CounterRoundTripCounts) {
  Netlist nl;
  Bus q;
  for (int i = 0; i < 4; ++i) q.push_back(nl.new_net());
  const Bus d = nl.increment(q);
  for (int i = 0; i < 4; ++i)
    nl.add_dff_with_out(q[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(i)]);
  nl.add_output_bus(q, "q");
  const Netlist back = roundtrip(nl);
  nlist::Evaluator ev(back);
  Bus out;
  for (const auto& po : back.outputs()) out.push_back(po.net);
  ev.settle();
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(ev.get_bus(out), static_cast<std::uint64_t>(v & 0xf));
    ev.clock();
  }
}

TEST(Blif, FullEncryptIpRoundTripIsFormallyEquivalent) {
  // The flagship interchange test: the complete mapped encrypt IP survives
  // BLIF emission and re-parsing with provably identical behaviour.
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const Netlist back = roundtrip(mapped.mapped);
  const auto r = bdd::prove_equivalent(mapped.mapped, back);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

// --- reader robustness -----------------------------------------------------------------

TEST(BlifReader, RejectsUndefinedNets) {
  std::istringstream is(".model m\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n");
  EXPECT_THROW(nlist::read_blif(is), std::runtime_error);
}

TEST(BlifReader, RejectsDoubleDefinition) {
  std::istringstream is(
      ".model m\n.inputs a b\n.outputs y\n"
      ".names a y\n1 1\n.names b y\n1 1\n.end\n");
  EXPECT_THROW(nlist::read_blif(is), std::runtime_error);
}

TEST(BlifReader, RejectsBadCoverCharacter) {
  std::istringstream is(".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n");
  EXPECT_THROW(nlist::read_blif(is), std::runtime_error);
}

TEST(BlifReader, HandlesCommentsAndContinuations) {
  std::istringstream is(
      "# a comment\n.model m\n.inputs \\\na b\n.outputs y\n"
      ".names a b y  # trailing comment\n11 1\n.end\n");
  const Netlist nl = nlist::read_blif(is);
  EXPECT_EQ(nl.inputs().size(), 2u);
  nlist::Evaluator ev(nl);
  ev.set(nl.inputs()[0].net, true);
  ev.set(nl.inputs()[1].net, true);
  ev.settle();
  EXPECT_TRUE(ev.get(nl.outputs()[0].net));
}
