// The worked examples from docs/*.md, compiled and executed.  Each test
// is the code block from one page, kept in the same shape so the docs
// cannot drift from the real APIs: if a page's example stops compiling
// or stops holding, this suite fails.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "aes/ttable.hpp"
#include "arch/variant.hpp"
#include "engine/engine.hpp"
#include "core/bfm.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "netlist/batch_eval.hpp"
#include "netlist/eval.hpp"
#include "netlist/synth.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;

namespace {

std::array<std::uint8_t, 16> doc_key() {
  return {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

// --- docs/hdl.md: the Counter worked example ------------------------------

class Counter final : public hdl::Module {
 public:
  hdl::Signal<std::uint8_t> value;
  hdl::Signal<bool> at_max;

  explicit Counter(hdl::Simulator& sim)
      : hdl::Module("counter"), value(sim, "value", 4), at_max(sim, "at_max", 1) {
    sim.add_module(*this);
  }

  void evaluate() override { at_max.write(value.read() == 15); }  // combinational
  void tick() override {                                          // rising edge
    value.write(static_cast<std::uint8_t>((value.read() + 1) & 0xf));
  }
};

TEST(DocsHdl, CounterExampleRunsAsDocumented) {
  hdl::Simulator sim;
  Counter ctr(sim);
  sim.settle();                 // settle the reset state
  sim.run(15);                  // 15 clock cycles
  EXPECT_EQ(ctr.value.read(), 15);
  EXPECT_TRUE(ctr.at_max.read());
  sim.step();                   // wraps
  EXPECT_EQ(ctr.value.read(), 0);
  EXPECT_EQ(sim.cycle(), 16u);
}

// --- docs/core.md: the bus-driver worked example --------------------------

TEST(DocsCore, BusDriverExampleRunsAsDocumented) {
  const auto key = doc_key();
  const std::array<std::uint8_t, 16> pt{};

  hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);

  bus.reset();                                  // the paper's setup period
  bus.load_key(key);                            // 40-cycle decrypt key setup
  auto ct = bus.process_block(pt, true);        // encrypt: data_ok after 50 cycles
  auto rt = bus.process_block(ct, false);       // decrypt round-trips
  EXPECT_EQ(bus.last_latency(), 50u);
  EXPECT_EQ(rt, pt);

  // The live cycle accounting (docs/obs.md):
  const auto& c = ip.counters();
  EXPECT_DOUBLE_EQ(c.cycles_per_round(), 5.0);
  EXPECT_DOUBLE_EQ(c.cycles_per_block(), 50.0);
  EXPECT_EQ(c.key_setup_cycles, 40u);           // one decrypt-capable key load
}

// --- docs/aes.md: CBC + PKCS#7 over both engines, seekable CTR ------------

TEST(DocsAes, SoftwareExampleRunsAsDocumented) {
  const auto key = doc_key();
  const std::array<std::uint8_t, 16> iv{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5,
                                        0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb,
                                        0xfc, 0xfd, 0xfe, 0xff};
  std::vector<std::uint8_t> message(47, 0xa5);  // any byte length

  aes::Aes128 ref(key);
  aes::TTableAes128 fast(key);

  auto padded = aes::pkcs7_pad(message);
  auto ct_ref = aes::cbc_encrypt(ref, iv, padded);
  auto ct_fast = aes::cbc_encrypt(fast, iv, padded);
  EXPECT_EQ(ct_ref, ct_fast);

  auto round_trip = aes::pkcs7_unpad(aes::cbc_decrypt(ref, iv, ct_ref));
  EXPECT_EQ(round_trip, message);

  // CTR is seekable: block i of the keystream starts at ctr_counter_at(iv, i).
  auto stream = aes::ctr_crypt(ref, iv, padded);
  auto tail = aes::ctr_crypt(ref, aes::ctr_counter_at(iv, 1),
                             std::span(padded).subspan(16));
  EXPECT_EQ(tail, std::vector<std::uint8_t>(stream.begin() + 16, stream.end()));
}

// --- docs/backend.md: synthesize -> map -> fit ----------------------------

TEST(DocsBackend, ImplementationFlowRunsAsDocumented) {
  auto netlist = core::synthesize_ip(core::IpMode::kEncrypt, /*sbox_as_rom=*/true);
  auto mapped = techmap::map_to_luts(netlist);
  auto report = fpga::fit(mapped, fpga::ep1k100fc484_1());

  EXPECT_TRUE(report.fits);
  EXPECT_GT(report.logic_elements, 0u);
  EXPECT_GT(report.le_pct, 0.0);
  EXPECT_EQ(report.memory_bits, static_cast<std::size_t>(
                                    core::expected_rom_bits(core::IpMode::kEncrypt)));
  EXPECT_EQ(report.pins, core::expected_pins(core::IpMode::kEncrypt));
  EXPECT_GT(report.timing.clock_period_ns, 0.0);
  EXPECT_DOUBLE_EQ(report.latency_ns(50), 50.0 * report.timing.clock_period_ns);
  EXPECT_GT(report.throughput_mbps(128, 50), 0.0);
}

// --- docs/netlist.md: lanes() simulations through one settle --------------

TEST(DocsNetlist, BatchEvaluatorExampleRunsAsDocumented) {
  aesip::netlist::Netlist nl;
  const auto in = nl.add_input_bus("a", 8);
  const auto out = aesip::netlist::synth_xtime(nl, in);
  nl.add_output_bus(out, "y");

  // The default config auto-detects the widest native backend; force one
  // (or a shard-pool size) with BatchConfig / AESIP_BATCH_BACKEND.
  aesip::netlist::BatchEvaluator batch(nl);     // compiles the tape once
  const std::size_t lanes = batch.lanes();      // 64 .. 512, backend-dependent
  EXPECT_GE(lanes, 64u);
  for (std::size_t lane = 0; lane < lanes; ++lane)
    batch.set_bus(in, lane, lane * 3 % 256);    // every lane a different input
  batch.settle();                               // ONE pass, `lanes` results

  aesip::netlist::Evaluator oracle(nl);         // the scalar oracle agrees
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    oracle.set_bus(in, lane * 3 % 256);
    oracle.settle();
    EXPECT_EQ(oracle.get_bus(out), batch.get_bus(out, lane)) << lane;
  }
}

// --- docs/net.md: the loopback client/server worked example ---------------

TEST(DocsNet, LoopbackExampleRunsAsDocumented) {
  const auto key = doc_key();
  const std::array<std::uint8_t, 16> iv{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5,
                                        0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb,
                                        0xfc, 0xfd, 0xfe, 0xff};
  const auto padded = aes::pkcs7_pad(std::vector<std::uint8_t>(47, 0xa5));

  net::LoopbackTransport transport;        // or TcpTransport + "127.0.0.1:0"

  net::ServerConfig cfg;
  cfg.farm.workers = 2;
  cfg.farm.engine = engine::EngineKind::kSoftware;
  net::Server server(transport, "demo", cfg);
  server.start();                          // serve on a background thread

  net::Client client(transport, "demo", /*session_id=*/7);
  client.set_key(key);
  auto ct = client.enc_blocks(/*cbc=*/true, iv, padded);  // one round trip
  auto rt = client.dec_blocks(/*cbc=*/true, iv, ct);      // rt == padded
  EXPECT_EQ(rt, padded);
  client.drain();                          // barrier: everything answered
  client.bye();
  server.stop();                           // graceful drain + join

  // The wire is a translation layer, not a cipher: same answer as the
  // in-process software reference.
  aes::Aes128 ref(key);
  EXPECT_EQ(ct, aes::cbc_encrypt(ref, iv, padded));
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// --- docs/cluster.md: the two-node sharded cluster worked example ---------

TEST(DocsCluster, TwoNodeExampleRunsAsDocumented) {
  const auto key = doc_key();
  const farm::Key128 iv{};
  const std::vector<std::uint8_t> blocks(32, 0xa5);

  auto transport = net::make_tcp_transport();

  net::ServerConfig cfg;                         // node 0
  cfg.farm.workers = 1;
  cfg.farm.engine = engine::EngineKind::kSoftware;
  cfg.cluster = net::ClusterConfig{.node_id = "n0"};
  cfg.cluster->gossip_interval = std::chrono::milliseconds(20);
  net::Server n0(*transport, "127.0.0.1:0", cfg);
  n0.start();

  cfg.cluster = net::ClusterConfig{              // node 1 seeds off n0
      .node_id = "n1", .seeds = {n0.address()}};
  cfg.cluster->gossip_interval = std::chrono::milliseconds(20);
  net::Server n1(*transport, "127.0.0.1:0", cfg);
  n1.start();

  // ... wait until both directors report alive_count == 2 ...
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (const net::Server* s : {&n0, &n1})
    while (s->director()->alive_count(std::chrono::steady_clock::now()) < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(n0.director()->alive_count(std::chrono::steady_clock::now()), 2u);

  // Dial either node; the ring + kRedirect land the session on its owner.
  net::Client client(*transport, n0.address(), /*session_id=*/42);
  client.set_key(key);
  auto ct = client.enc_blocks(/*cbc=*/false, iv, blocks);  // maybe 1 hop
  client.bye();                       // client.redirects() says how many
  EXPECT_LE(client.redirects(), 1u);

  // The shard move is a routing detail, not a cipher change.
  aes::Aes128 ref(key);
  EXPECT_EQ(ct, aes::ecb_encrypt(ref, blocks));
  n1.stop();
  n0.stop();
  EXPECT_EQ(n0.stats().protocol_errors + n1.stats().protocol_errors, 0u);
}

// --- docs/variants.md: naming a point on the Pareto curve ------------------

TEST(DocsVariants, PipelinedSpecExampleRunsAsDocumented) {
  const auto key = doc_key();
  const std::array<std::uint8_t, 16> pt{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                        0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};

  // Name a point on the curve. "paper" parses as the iterative default.
  const auto spec = arch::VariantSpec::parse("pipe5-xtime").value();
  // 5 stages x 2 rounds: latency 10, a new block admitted every 2 cycles.
  EXPECT_EQ(spec.block_latency_cycles(), 10);
  EXPECT_EQ(spec.issue_interval_cycles(), 2);
  EXPECT_TRUE(arch::VariantSpec::parse("paper").has_value());

  // Same CipherEngine interface as every other kind (engine.md).
  auto e = engine::make_engine(engine::EngineKind::kBehavioral, spec);
  e->load_key(key);                    // 10-cycle stored-key expansion
  const auto ct = e->process_block(pt, /*encrypt=*/true);
  EXPECT_EQ(e->last_latency(), 10u);

  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> want{};
  ref.encrypt_block(pt, want);
  EXPECT_EQ(ct, want);
}

// --- docs/fleet.md: inject, detect, heal — bit-exact throughout -----------

TEST(DocsFleet, ChaosExampleRunsAsDocumented) {
  const auto key = doc_key();
  const std::vector<std::uint8_t> plain(16, 0x3c);
  aes::Aes128 oracle(key);
  std::vector<std::uint8_t> want(16);
  oracle.encrypt_block(plain, want);

  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.engine = engine::EngineKind::kNetlist;
  cfg.spot_check_fraction = 1.0;        // check every job
  farm::Farm f(cfg);
  fleet::ChaosInjector chaos(f, /*seed=*/0xc4a05);

  farm::Request req;
  req.session_id = 1;
  req.mode = farm::Mode::kEcb;
  req.key = key;
  req.payload = plain;

  auto r0 = f.process(req);             // warm: installs the key
  EXPECT_EQ(r0.data, want);

  // A classified-corrupting site can still mask under this traffic, so
  // loop injections until the spot-check fires — bit-exact every time.
  bool detected = false;
  for (int attempt = 0; attempt < 12 && !detected; ++attempt) {
    auto ev = chaos.inject(/*worker=*/0); // flip a corrupting DFF site
    ASSERT_TRUE(ev.injected);
    auto r1 = f.process(req);             // farm catches + heals inline
    EXPECT_EQ(r1.data, want);             // ALWAYS — oracle bytes on mismatch
    detected = r1.replayed;
  }
  EXPECT_TRUE(detected);

  const auto st = fleet::FleetController(f).status();
  EXPECT_EQ(st.spot_mismatches, st.replayed_jobs);
  EXPECT_GE(st.heals, 1u);
}

// --- docs/keysizes.md: AES-256 from reference to RTL to wire --------------

TEST(DocsKeysizes, Aes256ExampleRunsAsDocumented) {
  std::array<std::uint8_t, 32> key{};                  // 00 01 02 ... 1f
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 16> pt{};                   // 00 11 22 ... ff
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<std::uint8_t>(0x11 * i);

  // Software reference: the key length selects the geometry.
  const aes::Rijndael ref = aes::Rijndael::for_key(key);   // Nk=8, Nr=14
  std::array<std::uint8_t, 16> ct{};
  ref.encrypt_block(pt, ct);                // FIPS-197 C.3: 8ea2b7ca...
  const std::array<std::uint8_t, 16> fips_c3{0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf,
                                             0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49, 0x60, 0x89};
  EXPECT_EQ(ct, fips_c3);

  // The paper's core, re-geometried: 5 cycles/round x 14 rounds.
  const auto spec = arch::VariantSpec::parse("paper@256").value();
  EXPECT_EQ(spec.nr(), 14);
  EXPECT_EQ(spec.block_latency_cycles(), 70);
  EXPECT_EQ(spec.key_setup_cycles(core::IpMode::kBoth), 56);
  auto e = engine::make_engine(engine::EngineKind::kBehavioral, spec);
  e->load_key(key);                         // 56-cycle decrypt key setup
  EXPECT_EQ(e->process_block(pt, /*encrypt=*/true), ct);
  EXPECT_EQ(e->last_latency(), 70u);

  // Over the wire: a 32-byte kSetKey payload IS the AES-256 select.
  net::LoopbackTransport transport;
  net::ServerConfig cfg;
  cfg.farm.workers = 1;
  cfg.farm.engine = engine::EngineKind::kSoftware;
  net::Server server(transport, "demo256", cfg);
  server.start();
  net::Client client(transport, "demo256", /*session_id=*/1);
  client.set_key(key);
  const auto wire_ct = client.enc_blocks(/*cbc=*/false, /*iv=*/{},
                                         {pt.begin(), pt.end()});
  client.bye();
  server.stop();
  EXPECT_EQ(wire_ct, std::vector<std::uint8_t>(ct.begin(), ct.end()));
}

}  // namespace
