// Narrow-bus adapter (the paper's "simple interface could be built using
// 32 or 16 data bus"): functional conformance at every width, pin-count
// savings, full-rate sustainability at 32/16 bits, and the quantified
// 8-bit caveat.
#include <gtest/gtest.h>

#include <random>

#include "aes/cipher.hpp"
#include "core/bus_adapter.hpp"
#include "hdl/simulator.hpp"

namespace core = aesip::core;
namespace aes = aesip::aes;
namespace hdl = aesip::hdl;
using core::IpMode;

namespace {

std::array<std::uint8_t, 16> random_block(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> out{};
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

struct NarrowBench {
  hdl::Simulator sim;
  core::NarrowBusIp nb;
  core::NarrowBusDriver bus;
  NarrowBench(IpMode mode, int width) : nb(sim, mode, width), bus(sim, nb) { bus.reset(); }
};

}  // namespace

TEST(NarrowBus, RejectsOddWidths) {
  hdl::Simulator sim;
  EXPECT_THROW(core::NarrowBusIp(sim, IpMode::kEncrypt, 24), std::invalid_argument);
  EXPECT_THROW(core::NarrowBusIp(sim, IpMode::kEncrypt, 64), std::invalid_argument);
}

class NarrowBusWidth : public ::testing::TestWithParam<int> {};

TEST_P(NarrowBusWidth, EncryptsFipsVector) {
  NarrowBench b(IpMode::kEncrypt, GetParam());
  const auto key = random_block(1);
  const auto pt = random_block(2);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  b.bus.load_key(key);
  EXPECT_EQ(b.bus.process_block(pt), golden) << "width " << GetParam();
}

TEST_P(NarrowBusWidth, DecryptRoundTripOnBothDevice) {
  NarrowBench b(IpMode::kBoth, GetParam());
  const auto key = random_block(3);
  const auto pt = random_block(4);
  b.bus.load_key(key);
  const auto ct = b.bus.process_block(pt, true);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(b.bus.process_block(ct, false), pt) << "width " << GetParam();
}

TEST_P(NarrowBusWidth, WordCountMatchesWidth) {
  hdl::Simulator sim;
  core::NarrowBusIp nb(sim, IpMode::kEncrypt, GetParam());
  EXPECT_EQ(nb.words_per_block() * GetParam(), 128);
}

TEST_P(NarrowBusWidth, StreamMatchesReference) {
  NarrowBench b(IpMode::kEncrypt, GetParam());
  const auto key = random_block(5);
  b.bus.load_key(key);
  std::vector<std::array<std::uint8_t, 16>> blocks;
  for (std::uint32_t i = 0; i < 6; ++i) blocks.push_back(random_block(100 + i));
  const auto results = b.bus.stream(blocks);
  ASSERT_EQ(results.size(), blocks.size());
  aes::Aes128 ref(key);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::array<std::uint8_t, 16> expected{};
    ref.encrypt_block(blocks[i], expected);
    EXPECT_EQ(results[i], expected) << "width " << GetParam() << " block " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NarrowBusWidth, ::testing::Values(8, 16, 32),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

TEST(NarrowBus, PinCountsShrinkDramatically) {
  // The whole point: 261 pins -> 69 (32-bit) / 37 (16-bit) / 21 (8-bit).
  EXPECT_EQ(core::NarrowBusIp::pin_count(32, IpMode::kEncrypt), 69);
  EXPECT_EQ(core::NarrowBusIp::pin_count(16, IpMode::kEncrypt), 37);
  EXPECT_EQ(core::NarrowBusIp::pin_count(8, IpMode::kEncrypt), 21);
  EXPECT_EQ(core::NarrowBusIp::pin_count(32, IpMode::kBoth), 70);
  // The 16-bit combined device fits even the 65-I/O EP1C3 package that the
  // full 262-pin interface could not.
  EXPECT_LT(core::NarrowBusIp::pin_count(16, IpMode::kBoth), 65);
}

TEST(NarrowBus, KeySetupStillRunsOnDecryptDevice) {
  NarrowBench b(IpMode::kDecrypt, 32);
  const auto key = random_block(6);
  const auto cycles = b.bus.load_key(key);
  EXPECT_GE(cycles, 40u) << "the 40-cycle key setup is unchanged behind the adapter";
  const auto pt = random_block(7);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> ct{};
  ref.encrypt_block(pt, ct);
  EXPECT_EQ(b.bus.process_block(ct, false), pt);
}

TEST(NarrowBus, FullRateAt32And16Bits) {
  // Loading (128/W) + draining (128/W) words hides inside the 50-cycle
  // computation at 32 and 16 bits: streaming sustains ~50 cycles/block.
  for (const int width : {32, 16}) {
    NarrowBench b(IpMode::kEncrypt, width);
    b.bus.load_key(random_block(8));
    std::vector<std::array<std::uint8_t, 16>> blocks;
    for (std::uint32_t i = 0; i < 10; ++i) blocks.push_back(random_block(200 + i));
    b.bus.stream(blocks);
    const double cpb = static_cast<double>(b.bus.last_stream_cycles()) /
                       static_cast<double>(blocks.size());
    EXPECT_LE(cpb, 52.0) << "width " << width << " must sustain full rate";
  }
}

TEST(NarrowBus, EightBitStillKeepsUpWithDedicatedBuses) {
  // With separate in/out buses even 8 bits fits (16 in + 16 out < 50);
  // the paper's caveat applies to narrower or shared buses.  Quantify:
  NarrowBench b(IpMode::kEncrypt, 8);
  b.bus.load_key(random_block(9));
  std::vector<std::array<std::uint8_t, 16>> blocks;
  for (std::uint32_t i = 0; i < 8; ++i) blocks.push_back(random_block(300 + i));
  b.bus.stream(blocks);
  const double cpb =
      static_cast<double>(b.bus.last_stream_cycles()) / static_cast<double>(blocks.size());
  EXPECT_LE(cpb, 54.0);
  // A shared half-duplex bus would need 16 + 16 = 32 transfer cycles per
  // block; a 4-bit one 64 > 50 — the first width that genuinely cannot
  // keep full rate, matching the paper's "lower bus sizes" remark.
  EXPECT_GT(2 * (128 / 4), 50);
  EXPECT_LT(2 * (128 / 8), 50);
}

TEST(NarrowBus, SetupResetsAssembly) {
  NarrowBench b(IpMode::kEncrypt, 32);
  const auto key = random_block(10);
  b.bus.load_key(key);
  // Write two words of a block, then reset: the partial assembly must not
  // leak into the next block.
  b.nb.ndin.write(0xdeadbeef);
  b.nb.nwr_data.write(true);
  b.sim.step();
  b.sim.step();
  b.nb.nwr_data.write(false);
  b.bus.reset();
  b.bus.load_key(key);  // reset also clears the key
  const auto pt = random_block(11);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  EXPECT_EQ(b.bus.process_block(pt), golden);
}

TEST(NarrowBus, TypeSwitchRestartsAssembly) {
  // Interleaving a key write into a half-assembled data block restarts the
  // assembly instead of mixing words of different kinds.
  NarrowBench b(IpMode::kEncrypt, 32);
  const auto key = random_block(12);
  b.bus.load_key(key);
  // Two data words, then a full key write, then a full data block.
  b.nb.ndin.write(0x11111111);
  b.nb.nwr_data.write(true);
  b.sim.step();
  b.sim.step();
  b.nb.nwr_data.write(false);
  b.bus.load_key(key);
  const auto pt = random_block(13);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(pt, golden);
  EXPECT_EQ(b.bus.process_block(pt), golden);
}
