// Technology mapper: truth-table helpers, cone covering on hand-analyzable
// circuits, constant folding, structural dedup, register packing — and
// mapped-vs-original functional equivalence on randomized circuits.
#include <gtest/gtest.h>

#include <random>

#include "aes/sbox.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"
#include "techmap/techmap.hpp"

namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
namespace aes = aesip::aes;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

/// Drive both netlists by port name and compare all outputs.
void expect_equivalent(const Netlist& a, const Netlist& b, int input_bits,
                       std::uint32_t seeds = 64) {
  nlist::Evaluator ea(a), eb(b);
  std::mt19937 rng(99);
  for (std::uint32_t t = 0; t < seeds; ++t) {
    for (int i = 0; i < input_bits; ++i) {
      const bool v = (rng() & 1) != 0;
      ea.set(a.inputs()[static_cast<std::size_t>(i)].net, v);
      eb.set(b.inputs()[static_cast<std::size_t>(i)].net, v);
    }
    ea.settle();
    eb.settle();
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    for (std::size_t o = 0; o < a.outputs().size(); ++o)
      EXPECT_EQ(ea.get(a.outputs()[o].net), eb.get(b.outputs()[o].net))
          << "output " << a.outputs()[o].name << " trial " << t;
  }
}

}  // namespace

// --- truth-table helpers ----------------------------------------------------------

TEST(LutOps, RestrictFixesAVariable) {
  // f(a,b) = a XOR b has mask 0110.
  EXPECT_EQ(txm::lut_restrict(0b0110, 2, 0, false), 0b10);  // f(0,b) = b
  EXPECT_EQ(txm::lut_restrict(0b0110, 2, 0, true), 0b01);   // f(1,b) = !b
  EXPECT_EQ(txm::lut_restrict(0b0110, 2, 1, false), 0b10);  // f(a,0) = a
}

TEST(LutOps, DependsDetectsSupport) {
  EXPECT_TRUE(txm::lut_depends(0b0110, 2, 0));
  EXPECT_TRUE(txm::lut_depends(0b0110, 2, 1));
  // f(a,b) = a ignores b: mask 1010.
  EXPECT_TRUE(txm::lut_depends(0b1010, 2, 0));
  EXPECT_FALSE(txm::lut_depends(0b1010, 2, 1));
}

// --- covering on known structures ----------------------------------------------------

TEST(Mapper, XorChainOf4FitsOneLut) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  NetId x = nl.gate_xor(in[0], in[1]);
  x = nl.gate_xor(x, in[2]);
  x = nl.gate_xor(x, in[3]);
  nl.add_output(x, "out");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.luts, 1u) << "three XOR2 in a fanout-1 chain cover into one 4-LUT";
  expect_equivalent(nl, r.mapped, 4);
}

TEST(Mapper, XorTreeOf128Needs43Luts) {
  // ceil((128-1)/3) = 43 is the optimal 4-LUT tree for a 128-input XOR.
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 128);
  nl.add_output(nl.xor_tree(in), "out");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.luts, 43u);
}

TEST(Mapper, FanoutBlocksAbsorption) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  const NetId shared = nl.gate_xor(in[0], in[1]);  // fanout 2
  nl.add_output(nl.gate_xor(shared, in[2]), "o1");
  nl.add_output(nl.gate_xor(shared, in[3]), "o2");
  const auto r = txm::map_to_luts(nl);
  // shared cannot fold into both consumers: 3 LUTs (shared, o1, o2) — or
  // fewer only if the mapper duplicated logic, which ours does not.
  EXPECT_EQ(r.stats.luts, 3u);
  expect_equivalent(nl, r.mapped, 4);
}

TEST(Mapper, ConstantsFoldAway) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.gate_and(a, nl.const0());   // == 0
  const NetId y = nl.gate_or(x, nl.const1());    // == 1
  const NetId z = nl.gate_xor(a, nl.const0());   // == a
  nl.add_output(y, "one");
  nl.add_output(z, "ident");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.luts, 0u) << "everything constant-folds or becomes a wire";
  expect_equivalent(nl, r.mapped, 1);
}

TEST(Mapper, XorWithSelfFoldsToZero) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output(nl.gate_xor(a, a), "zero");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.luts, 0u);
  expect_equivalent(nl, r.mapped, 1);
}

TEST(Mapper, DedupMergesIdenticalLuts) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  // Two structurally identical pre-mapped LUTs.
  const NetId l1 = nl.add_lut(0x6, std::span<const NetId>(in.data(), 2));
  const NetId l2 = nl.add_lut(0x6, std::span<const NetId>(in.data(), 2));
  nl.add_output(l1, "o1");
  nl.add_output(l2, "o2");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.luts, 1u);
  EXPECT_EQ(r.stats.deduped_luts, 1u);
  expect_equivalent(nl, r.mapped, 4);
}

TEST(Mapper, ShannonSboxMapsBelowWorstCase) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  const Bus out = nlist::synth_sbox_logic(nl, aes::kSBox, addr);
  nl.add_output_bus(out, "s");
  const auto r = txm::map_to_luts(nl);
  // Worst case is 31 LUTs x 8 outputs = 248.  The AES table is high-entropy
  // enough that no leaf is constant and no subtree dedups, so the bound is
  // met exactly — right at the ~243 LEs/S-box the paper's Cyclone deltas
  // imply ((4057-2114)/8).
  EXPECT_LE(r.stats.luts, 248u);
  EXPECT_GT(r.stats.luts, 200u);
  expect_equivalent(nl, r.mapped, 8, 128);
}

TEST(Mapper, MappedSboxStillComputesTheTable) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  nl.add_output_bus(nlist::synth_sbox_logic(nl, aes::kSBox, addr), "s");
  const auto r = txm::map_to_luts(nl);
  nlist::Evaluator ev(r.mapped);
  Bus maddr;
  for (int i = 0; i < 8; ++i) maddr.push_back(r.mapped.inputs()[static_cast<std::size_t>(i)].net);
  Bus mout;
  for (int i = 0; i < 8; ++i) mout.push_back(r.mapped.outputs()[static_cast<std::size_t>(i)].net);
  for (int a = 0; a < 256; ++a) {
    ev.set_bus(maddr, static_cast<std::uint64_t>(a));
    ev.settle();
    EXPECT_EQ(ev.get_bus(mout), aes::kSBox[static_cast<std::size_t>(a)]) << a;
  }
}

TEST(Mapper, MixColumns128Equivalence) {
  Netlist nl;
  const Bus in = nl.add_input_bus("state", 128);
  nl.add_output_bus(nlist::synth_mix_columns128(nl, in, false), "mc");
  const auto r = txm::map_to_luts(nl);
  EXPECT_GT(r.stats.luts, 100u);
  EXPECT_LT(r.stats.luts, 400u);
  expect_equivalent(nl, r.mapped, 128, 32);
}

TEST(Mapper, InvMixColumnsCostsMoreThanForward) {
  Netlist fwd, inv;
  {
    const Bus in = fwd.add_input_bus("state", 128);
    fwd.add_output_bus(nlist::synth_mix_columns128(fwd, in, false), "mc");
  }
  {
    const Bus in = inv.add_input_bus("state", 128);
    inv.add_output_bus(nlist::synth_mix_columns128(inv, in, true), "imc");
  }
  const auto rf = txm::map_to_luts(fwd);
  const auto ri = txm::map_to_luts(inv);
  EXPECT_GT(ri.stats.luts, rf.stats.luts)
      << "the 09/0b/0d/0e coefficients must cost more than 01/02/03 — this "
         "is why the paper's decrypt device is larger and slower";
}

// --- registers and packing ------------------------------------------------------------

TEST(Mapper, RegistersSurviveWithEnables) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId en = nl.add_input("en");
  const NetId q = nl.add_dff(d, en);
  nl.add_output(q, "q");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.dffs, 1u);
  // Behavioural check through the mapped netlist.
  nlist::Evaluator ev(r.mapped);
  const NetId md = r.mapped.inputs()[0].net;
  const NetId men = r.mapped.inputs()[1].net;
  const NetId mq = r.mapped.outputs()[0].net;
  ev.set(md, true);
  ev.set(men, false);
  ev.settle();
  ev.clock();
  EXPECT_FALSE(ev.get(mq));
  ev.set(men, true);
  ev.settle();
  ev.clock();
  EXPECT_TRUE(ev.get(mq));
}

TEST(Mapper, PacksFfWithItsDrivingLut) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 3);
  const NetId x = nl.gate_xor(nl.gate_xor(in[0], in[1]), in[2]);
  const NetId q = nl.add_dff(x);  // LUT feeds only this FF
  nl.add_output(q, "q");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.luts, 1u);
  EXPECT_EQ(r.stats.dffs, 1u);
  EXPECT_EQ(r.stats.packed, 1u);
  EXPECT_EQ(r.stats.logic_elements, 1u) << "LUT + FF share one logic element";
}

TEST(Mapper, SharedLutCannotPack) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 2);
  const NetId x = nl.gate_xor(in[0], in[1]);
  const NetId q = nl.add_dff(x);
  nl.add_output(q, "q");
  nl.add_output(x, "comb");  // second consumer of the LUT output
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.packed, 0u);
  EXPECT_EQ(r.stats.logic_elements, 2u);
}

TEST(Mapper, SequentialCircuitSurvivesMapping) {
  // 4-bit counter with enable: compare original and mapped cycle by cycle.
  Netlist nl;
  const NetId en = nl.add_input("en");
  Bus q;
  for (int i = 0; i < 4; ++i) q.push_back(nl.new_net());
  const Bus d = nl.increment(q);
  for (int i = 0; i < 4; ++i)
    nl.add_dff_with_out(q[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(i)], en);
  nl.add_output_bus(q, "q");
  const auto r = txm::map_to_luts(nl);

  nlist::Evaluator e1(nl), e2(r.mapped);
  Bus q2;
  for (const auto& po : r.mapped.outputs()) q2.push_back(po.net);
  std::mt19937 rng(5);
  e1.settle();
  e2.settle();
  for (int cycle = 0; cycle < 40; ++cycle) {
    const bool enable = (rng() & 1) != 0;
    e1.set(nl.inputs()[0].net, enable);
    e2.set(r.mapped.inputs()[0].net, enable);
    e1.settle();
    e2.settle();
    EXPECT_EQ(e1.get_bus(q), e2.get_bus(q2)) << "cycle " << cycle;
    e1.clock();
    e2.clock();
  }
}

TEST(Mapper, PreservesPortsAndRoms) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  nl.add_output_bus(nl.add_rom(aes::kSBox, addr, "sbox"), "out");
  const auto r = txm::map_to_luts(nl);
  EXPECT_EQ(r.stats.roms, 1u);
  EXPECT_EQ(r.stats.rom_bits, 2048u);
  EXPECT_EQ(r.stats.pins, 16);
  EXPECT_EQ(r.mapped.inputs().size(), 8u);
  EXPECT_EQ(r.mapped.outputs().size(), 8u);
  EXPECT_EQ(r.mapped.inputs()[0].name, "addr[0]");
}
