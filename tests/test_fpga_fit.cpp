// Device database sanity and the fitter: occupation percentages against
// datasheet capacities, the async-ROM rule (EAB vs M4K), resource limits
// and timing closure.
#include <gtest/gtest.h>

#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace fpga = aesip::fpga;
namespace txm = aesip::techmap;
using core::IpMode;

TEST(Devices, DatasheetCapacities) {
  const auto& acex = fpga::ep1k100fc484_1();
  EXPECT_EQ(acex.logic_elements, 4992);
  EXPECT_EQ(acex.memory_bits, 49152);
  EXPECT_EQ(acex.user_io, 333);
  EXPECT_TRUE(acex.supports_async_rom);

  const auto& cyclone = fpga::ep1c20f400c6();
  EXPECT_EQ(cyclone.logic_elements, 20060);
  EXPECT_EQ(cyclone.memory_bits, 294912);
  EXPECT_EQ(cyclone.user_io, 301);
  EXPECT_FALSE(cyclone.supports_async_rom);
}

TEST(Devices, LookupByName) {
  EXPECT_EQ(fpga::find_device("EP1K100FC484-1"), &fpga::ep1k100fc484_1());
  EXPECT_EQ(fpga::find_device("EP1C20F400C6"), &fpga::ep1c20f400c6());
  EXPECT_EQ(fpga::find_device("no-such-part"), nullptr);
  EXPECT_GE(fpga::all_devices().size(), 6u);
}

TEST(Fitter, PaperPercentagesFallOutOfCapacities) {
  // The paper's Table 2 percentages are consistent with the datasheet
  // capacities we encode: 2114/4992 = 42%, 16384/49152 = 33%,
  // 261/333 = 78%, 261/301 = 87%, 4057/20060 = 20%.
  EXPECT_NEAR(100.0 * 2114 / 4992, 42.0, 0.5);
  EXPECT_NEAR(100.0 * 16384 / 49152, 33.0, 0.5);
  EXPECT_NEAR(100.0 * 261 / 333, 78.0, 0.5);
  EXPECT_NEAR(100.0 * 261 / 301, 87.0, 0.5);
  EXPECT_NEAR(100.0 * 4057 / 20060, 20.0, 0.5);
  EXPECT_NEAR(100.0 * 3222 / 4992, 64.0, 0.6);
  EXPECT_NEAR(100.0 * 7034 / 20060, 35.0, 0.5);
  EXPECT_NEAR(100.0 * 32768 / 49152, 66.0, 0.9);
}

TEST(Fitter, EncryptIpFitsAcex) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const auto fit = fpga::fit(mapped, fpga::ep1k100fc484_1());
  EXPECT_TRUE(fit.fits);
  EXPECT_EQ(fit.pins, 261);
  EXPECT_EQ(fit.memory_bits, 16384u);
  EXPECT_NEAR(fit.memory_pct, 33.3, 0.5);
  EXPECT_NEAR(fit.pin_pct, 78.4, 0.5);
  EXPECT_GT(fit.logic_elements, 500u);
  EXPECT_LT(fit.logic_elements, 4992u);
  EXPECT_GT(fit.timing.clock_period_ns, 5.0);
  EXPECT_LT(fit.timing.clock_period_ns, 30.0);
}

TEST(Fitter, RejectsAsyncRomOnCyclone) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  EXPECT_THROW(fpga::fit(mapped, fpga::ep1c20f400c6()), fpga::FitError)
      << "Cyclone M4K cannot implement the asynchronous S-box ROM";
}

TEST(Fitter, LogicSboxFlavourFitsCycloneWithZeroMemory) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, false));
  const auto fit = fpga::fit(mapped, fpga::ep1c20f400c6());
  EXPECT_TRUE(fit.fits);
  EXPECT_EQ(fit.memory_bits, 0u);
  EXPECT_EQ(fit.memory_blocks, 0);
  EXPECT_NEAR(fit.pin_pct, 86.7, 0.5);
}

TEST(Fitter, MemoryBlockPacking) {
  // 8 S-boxes x 2048 bits pack two-per-EAB: 4 of the EP1K100's 12 EABs.
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const auto fit = fpga::fit(mapped, fpga::ep1k100fc484_1());
  EXPECT_EQ(fit.memory_blocks, 4);
}

TEST(Fitter, BothVariantUsesTwiceTheMemory) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kBoth, true));
  const auto fit = fpga::fit(mapped, fpga::ep1k100fc484_1());
  EXPECT_EQ(fit.memory_bits, 32768u);
  EXPECT_NEAR(fit.memory_pct, 66.7, 0.5);
  EXPECT_EQ(fit.memory_blocks, 8);
  EXPECT_EQ(fit.pins, 262);
}

TEST(Fitter, OverCapacityReportsNoFit) {
  // The Cyclone-flavour Both IP (16 logic S-boxes) cannot fit the smallest
  // Cyclone part's LE budget... it actually might; use the tiny EP1C3 pin
  // budget instead, which 262 pins certainly exceed.
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kBoth, false));
  const auto fit = fpga::fit(mapped, fpga::ep1c3t100c6());
  EXPECT_FALSE(fit.fits) << "262 pins cannot fit a 65-I/O package";
}

TEST(Fitter, ThroughputHelpers) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const auto fit = fpga::fit(mapped, fpga::ep1k100fc484_1());
  const double latency = fit.latency_ns(50);
  EXPECT_DOUBLE_EQ(latency, 50.0 * fit.timing.clock_period_ns);
  EXPECT_NEAR(fit.throughput_mbps(128, 50), 128.0 / latency * 1000.0, 1e-9);
}

TEST(Fitter, CycloneIsFasterThanAcex) {
  // Same architecture, newer process: the paper's Cyclone columns are ~30%
  // faster across the board.
  const auto acex = fpga::fit(txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true)),
                              fpga::ep1k100fc484_1());
  const auto cyc = fpga::fit(txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, false)),
                             fpga::ep1c20f400c6());
  EXPECT_LT(cyc.timing.clock_period_ns, acex.timing.clock_period_ns);
}

TEST(Fitter, BothIsSlowerThanEncryptOnly) {
  // The ~22% throughput drop the paper reports comes from the enc/dec
  // muxing on the critical path.
  const auto enc = fpga::fit(txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true)),
                             fpga::ep1k100fc484_1());
  const auto both = fpga::fit(txm::map_to_luts(core::synthesize_ip(IpMode::kBoth, true)),
                              fpga::ep1k100fc484_1());
  EXPECT_GT(both.timing.clock_period_ns, enc.timing.clock_period_ns);
}
