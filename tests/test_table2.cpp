// The Table 2 reproduction as a test: exact cells (pins, memory bits,
// cycle counts), shape assertions (orderings and ratios the paper calls
// out) and tolerance bands on the calibrated quantities (LCs, clock).
#include <gtest/gtest.h>

#include "core/table2.hpp"

namespace core = aesip::core;
using core::IpMode;
using core::Table2Row;

namespace {

const std::vector<Table2Row>& rows() {
  static const std::vector<Table2Row> r = core::reproduce_table2();
  return r;
}

const Table2Row& cell(IpMode mode, bool cyclone) {
  const std::size_t base = cyclone ? 3 : 0;
  const std::size_t off = mode == IpMode::kEncrypt ? 0 : mode == IpMode::kDecrypt ? 1 : 2;
  return rows()[base + off];
}

}  // namespace

TEST(Table2, SixCellsInPaperOrder) {
  ASSERT_EQ(rows().size(), 6u);
  EXPECT_EQ(rows()[0].device->family, aesip::fpga::Family::kAcex1k);
  EXPECT_EQ(rows()[3].device->family, aesip::fpga::Family::kCyclone);
}

TEST(Table2, EveryCellFitsItsDevice) {
  for (const auto& r : rows())
    EXPECT_TRUE(r.fit.fits) << r.paper.system << " on " << r.device->name;
}

// --- exact cells -------------------------------------------------------------------

TEST(Table2, PinsExactlyMatchPaper) {
  for (const auto& r : rows())
    EXPECT_EQ(r.fit.pins, r.paper.pins) << r.paper.system << " on " << r.paper.device;
}

TEST(Table2, MemoryBitsExactlyMatchPaper) {
  for (const auto& r : rows())
    EXPECT_EQ(static_cast<int>(r.fit.memory_bits), r.paper.memory_bits)
        << r.paper.system << " on " << r.paper.device;
}

TEST(Table2, LatencyIsAlways50Cycles) {
  for (const auto& r : rows()) {
    EXPECT_EQ(r.cycles_per_block, 50);
    EXPECT_DOUBLE_EQ(r.latency_ns, 50.0 * r.fit.timing.clock_period_ns);
    // The paper's cells satisfy the same identity.
    EXPECT_DOUBLE_EQ(r.paper.latency_ns, 50.0 * r.paper.clock_ns);
  }
}

TEST(Table2, ThroughputIsBlockOverLatency) {
  for (const auto& r : rows())
    EXPECT_NEAR(r.throughput_mbps, 128.0 / r.latency_ns * 1000.0, 1e-9);
}

TEST(Table2, PercentagesComputedAgainstDatasheetCapacities) {
  for (const auto& r : rows()) {
    EXPECT_NEAR(r.fit.memory_pct,
                100.0 * static_cast<double>(r.fit.memory_bits) / r.device->memory_bits, 1e-9);
    EXPECT_NEAR(r.fit.pin_pct, 100.0 * r.fit.pins / r.device->user_io, 1e-9);
    // Paper's own percentages agree with the same capacities (+-1%).
    EXPECT_NEAR(100.0 * r.paper.pins / r.device->user_io, r.paper.pin_pct, 1.0);
    if (r.paper.memory_bits > 0) {
      EXPECT_NEAR(100.0 * r.paper.memory_bits / r.device->memory_bits, r.paper.memory_pct, 1.0);
    }
  }
}

// --- shape assertions (the paper's qualitative claims) --------------------------------

TEST(Table2, LogicGrowsEncToDecToBoth) {
  for (const bool cyclone : {false, true}) {
    EXPECT_LT(cell(IpMode::kEncrypt, cyclone).fit.logic_elements,
              cell(IpMode::kDecrypt, cyclone).fit.logic_elements);
    EXPECT_LT(cell(IpMode::kDecrypt, cyclone).fit.logic_elements,
              cell(IpMode::kBoth, cyclone).fit.logic_elements);
  }
}

TEST(Table2, ClockGrowsEncToDecToBoth) {
  for (const bool cyclone : {false, true}) {
    EXPECT_LT(cell(IpMode::kEncrypt, cyclone).fit.timing.clock_period_ns,
              cell(IpMode::kDecrypt, cyclone).fit.timing.clock_period_ns);
    EXPECT_LT(cell(IpMode::kDecrypt, cyclone).fit.timing.clock_period_ns,
              cell(IpMode::kBoth, cyclone).fit.timing.clock_period_ns);
  }
}

TEST(Table2, CycloneFasterThanAcexEveryRow) {
  for (const IpMode m : {IpMode::kEncrypt, IpMode::kDecrypt, IpMode::kBoth})
    EXPECT_LT(cell(m, true).fit.timing.clock_period_ns,
              cell(m, false).fit.timing.clock_period_ns);
}

TEST(Table2, BothCostsRoughly22PercentThroughput) {
  // "the performance drops around 22% when the encrypt and decrypt run at
  // the same device."  Paper: 182->150 (17.6%), 256->197 (23%).  Assert the
  // drop exists and is in a 10-35% band on both families.
  for (const bool cyclone : {false, true}) {
    const double enc = cell(IpMode::kEncrypt, cyclone).throughput_mbps;
    const double both = cell(IpMode::kBoth, cyclone).throughput_mbps;
    const double drop = 100.0 * (enc - both) / enc;
    EXPECT_GT(drop, 10.0) << (cyclone ? "Cyclone" : "Acex");
    EXPECT_LT(drop, 35.0) << (cyclone ? "Cyclone" : "Acex");
  }
}

TEST(Table2, CycloneMovesSboxesIntoLogic) {
  // Memory = 0 on Cyclone; the LC delta vs Acex is ~8 (or 16) S-boxes worth
  // of logic. Paper deltas: (4057-2114)/8 = 243, (7034-3222)/16 = 238.
  for (const IpMode m : {IpMode::kEncrypt, IpMode::kDecrypt, IpMode::kBoth}) {
    const auto& acex = cell(m, false);
    const auto& cyc = cell(m, true);
    EXPECT_EQ(cyc.fit.memory_bits, 0u);
    const int sboxes = m == IpMode::kBoth ? 16 : 8;
    const double per_sbox =
        static_cast<double>(cyc.fit.logic_elements - acex.fit.logic_elements) / sboxes;
    EXPECT_GT(per_sbox, 150.0);
    EXPECT_LT(per_sbox, 260.0);
  }
}

// --- tolerance bands on calibrated quantities ------------------------------------------

TEST(Table2, LogicCellsWithinBandOfPaper) {
  // The LC model is structural, not a copy of Quartus: allow a generous
  // band but demand the right magnitude on every cell.
  for (const auto& r : rows()) {
    const double ratio = static_cast<double>(r.fit.logic_elements) / r.paper.lcs;
    EXPECT_GT(ratio, 0.45) << r.paper.system << " on " << r.paper.device << ": "
                           << r.fit.logic_elements << " vs paper " << r.paper.lcs;
    EXPECT_LT(ratio, 1.40) << r.paper.system << " on " << r.paper.device << ": "
                           << r.fit.logic_elements << " vs paper " << r.paper.lcs;
  }
}

TEST(Table2, ClockPeriodWithinBandOfPaper) {
  for (const auto& r : rows()) {
    const double ratio = r.fit.timing.clock_period_ns / r.paper.clock_ns;
    EXPECT_GT(ratio, 0.6) << r.paper.system << " on " << r.paper.device << ": "
                          << r.fit.timing.clock_period_ns << " ns vs paper "
                          << r.paper.clock_ns;
    EXPECT_LT(ratio, 1.6) << r.paper.system << " on " << r.paper.device << ": "
                          << r.fit.timing.clock_period_ns << " ns vs paper "
                          << r.paper.clock_ns;
  }
}

TEST(Table2, ThroughputWithinBandOfPaper) {
  for (const auto& r : rows()) {
    const double ratio = r.throughput_mbps / r.paper.throughput_mbps;
    EXPECT_GT(ratio, 0.6) << r.paper.system << " on " << r.paper.device;
    EXPECT_LT(ratio, 1.7) << r.paper.system << " on " << r.paper.device;
  }
}
