// Composite-field GF((2^4)^2) machinery: GF(16) arithmetic, the tower
// isomorphism (derived, not transcribed), and the gate-level composite
// S-box — exhaustively checked against the table S-box, mapped, and
// compared with the Shannon network it undercuts.
#include <gtest/gtest.h>

#include "aes/sbox.hpp"
#include "bdd/netlist_bdd.hpp"
#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "gf/composite.hpp"
#include "gf/gf256.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"
#include "sta/sta.hpp"
#include "techmap/techmap.hpp"

namespace aes = aesip::aes;
namespace gf = aesip::gf;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
using nlist::Bus;
using nlist::Netlist;

// --- GF(16) ------------------------------------------------------------------------

TEST(Gf16, FieldAxioms) {
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      const auto aa = static_cast<std::uint8_t>(a);
      const auto bb = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf::gf16::mul(aa, bb), gf::gf16::mul(bb, aa));
      EXPECT_LT(gf::gf16::mul(aa, bb), 16);
    }
    const auto aa = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::gf16::mul(aa, 1), aa);
    if (a != 0) {
      EXPECT_EQ(gf::gf16::mul(aa, gf::gf16::inverse(aa)), 1) << a;
    }
  }
  EXPECT_EQ(gf::gf16::inverse(0), 0);
}

TEST(Gf16, ReductionPolynomial) {
  // y * y^3 = y^4 = y + 1 under y^4 + y + 1.
  EXPECT_EQ(gf::gf16::mul(0x2, 0x8), 0x3);
}

TEST(Gf16, SquareMatrixMatchesSquaring) {
  const auto m = gf::gf16::square_matrix();
  for (int a = 0; a < 16; ++a)
    EXPECT_EQ(m.apply(static_cast<std::uint8_t>(a)),
              gf::gf16::square(static_cast<std::uint8_t>(a)))
        << a;
}

TEST(Gf16, MulMatrixMatchesConstantMultiplication) {
  for (int c = 0; c < 16; ++c) {
    const auto m = gf::gf16::mul_matrix(static_cast<std::uint8_t>(c));
    for (int a = 0; a < 16; ++a)
      EXPECT_EQ(m.apply(static_cast<std::uint8_t>(a)),
                gf::gf16::mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(a)))
          << c << "*" << a;
  }
}

// --- the tower ----------------------------------------------------------------------

TEST(Composite, LambdaMakesExtensionIrreducible) {
  const auto& cf = gf::composite_field();
  for (int t = 0; t < 16; ++t)
    EXPECT_NE(gf::gf16::square(static_cast<std::uint8_t>(t)) ^ t, cf.lambda())
        << "x^2+x+lambda must have no GF(16) root";
}

TEST(Composite, IsomorphismPreservesMultiplication) {
  const auto& cf = gf::composite_field();
  for (int a = 0; a < 256; a += 7)
    for (int b = 0; b < 256; b += 11) {
      const auto aa = static_cast<std::uint8_t>(a);
      const auto bb = static_cast<std::uint8_t>(b);
      EXPECT_EQ(cf.to_composite(gf::mul(aa, bb)),
                cf.mul(cf.to_composite(aa), cf.to_composite(bb)))
          << a << "*" << b;
    }
}

TEST(Composite, IsomorphismRoundTrips) {
  const auto& cf = gf::composite_field();
  for (int a = 0; a < 256; ++a) {
    const auto aa = static_cast<std::uint8_t>(a);
    EXPECT_EQ(cf.from_composite(cf.to_composite(aa)), aa);
  }
  EXPECT_EQ(cf.to_composite(0x01), 0x01) << "the isomorphism fixes 1";
}

TEST(Composite, TowerInverseMatchesFieldInverse) {
  const auto& cf = gf::composite_field();
  for (int a = 0; a < 256; ++a) {
    const auto aa = static_cast<std::uint8_t>(a);
    EXPECT_EQ(cf.from_composite(cf.inverse(cf.to_composite(aa))), gf::inverse(aa)) << a;
  }
}

// --- gate-level composite S-box --------------------------------------------------------

class CompositeSbox : public ::testing::TestWithParam<bool> {};

TEST_P(CompositeSbox, MatchesTableForAll256Inputs) {
  const bool inverse = GetParam();
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  nl.add_output_bus(nlist::synth_sbox_composite(nl, addr, inverse), "s");
  nlist::Evaluator ev(nl);
  const auto& table = inverse ? aes::kInvSBox : aes::kSBox;
  for (int a = 0; a < 256; ++a) {
    ev.set_bus(addr, static_cast<std::uint64_t>(a));
    ev.settle();
    EXPECT_EQ(ev.get_bus(nl.outputs().empty() ? Bus{} : [&] {
      Bus out;
      for (const auto& po : nl.outputs()) out.push_back(po.net);
      return out;
    }()),
              table[static_cast<std::size_t>(a)])
        << (inverse ? "inv " : "fwd ") << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, CompositeSbox, ::testing::Bool(),
                         [](const auto& info) { return info.param ? "inverse" : "forward"; });

TEST(CompositeSboxArea, UndercutsShannonSubstantially) {
  Netlist shannon_nl, composite_nl;
  {
    const Bus addr = shannon_nl.add_input_bus("addr", 8);
    shannon_nl.add_output_bus(nlist::synth_sbox_logic(shannon_nl, aes::kSBox, addr), "s");
  }
  {
    const Bus addr = composite_nl.add_input_bus("addr", 8);
    composite_nl.add_output_bus(nlist::synth_sbox_composite(composite_nl, addr, false), "s");
  }
  const auto shannon = txm::map_to_luts(shannon_nl);
  const auto composite = txm::map_to_luts(composite_nl);
  EXPECT_LT(composite.stats.luts, shannon.stats.luts / 2)
      << "the tower-field S-box must cost less than half the Shannon network";
  EXPECT_GT(composite.stats.luts, 20u) << "but it is not magic";

  // The price is depth: more logic levels than the mux tree.
  constexpr aesip::sta::DelayModel kUnit{1.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  Netlist s2 = std::move(shannon_nl);
  // Levels via STA on mapped nets with outputs as endpoints.
  const auto rs = aesip::sta::analyze(shannon.mapped, kUnit);
  const auto rc = aesip::sta::analyze(composite.mapped, kUnit);
  EXPECT_GE(rc.logic_levels, rs.logic_levels)
      << "area win comes at equal or worse depth";
}

TEST(CompositeIp, FullEncryptIpWorksAtGateLevel) {
  // The whole IP with composite-field S-boxes still encrypts, cycle-exact.
  const Netlist ip =
      aesip::core::synthesize_ip(aesip::core::IpMode::kEncrypt, nlist::SboxStyle::kComposite);
  EXPECT_EQ(ip.stats().rom_bits, 0u);
  aesip::core::GateIpDriver drv(ip);
  const std::array<std::uint8_t, 16> key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                         0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::array<std::uint8_t, 16> pt{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                        0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  drv.load_key(key, false);
  const auto res = drv.process(pt, true);
  ASSERT_TRUE(res.has_value());
  const std::array<std::uint8_t, 16> expected{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                              0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(res->data, expected);
  EXPECT_EQ(res->cycles, 50);
}

TEST(CompositeIp, ShrinksTheCycloneImplementation) {
  // The concrete optimization for the paper's Cyclone problem: the same IP
  // with composite instead of Shannon S-boxes costs far fewer LEs.
  const auto shannon = txm::map_to_luts(
      aesip::core::synthesize_ip(aesip::core::IpMode::kEncrypt, nlist::SboxStyle::kShannon));
  const auto composite = txm::map_to_luts(
      aesip::core::synthesize_ip(aesip::core::IpMode::kEncrypt, nlist::SboxStyle::kComposite));
  EXPECT_LT(composite.stats.logic_elements + 900, shannon.stats.logic_elements)
      << "8 S-boxes x >110 LUTs saved";
  // And the mapped composite IP is formally equivalent to its own source.
  const auto src =
      aesip::core::synthesize_ip(aesip::core::IpMode::kEncrypt, nlist::SboxStyle::kComposite);
  const auto r = aesip::bdd::prove_equivalent(src, txm::map_to_luts(src).mapped);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(CompositeSboxArea, WouldShrinkTheCycloneIp) {
  // Quantify the optimization for the paper's Cyclone problem: 8 S-boxes
  // moved from Shannon (~248 LUTs) to composite (~N LUTs) on the
  // encrypt-only device.
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  nl.add_output_bus(nlist::synth_sbox_composite(nl, addr, false), "s");
  const auto mapped = txm::map_to_luts(nl);
  const std::size_t per_sbox_saving = 248 - mapped.stats.luts;
  EXPECT_GT(per_sbox_saving * 8, 900u)
      << "8 composite S-boxes save over 900 LEs on the Cyclone encrypt IP";
}
