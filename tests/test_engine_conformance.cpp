// Cross-engine conformance: every engine::CipherEngine kind must produce
// the same bytes for the same operation sequence — FIPS-197 vectors, a
// Monte Carlo encryption chain, and CBC/CTR traffic driven through the
// generic aes:: modes via EngineBlockCipher. The behavioral RTL model and
// the synthesized netlist must additionally agree on *time*: identical
// total cycle counts for an identical run, because the netlist was
// synthesized from the same FSM the behavioral model clocks.
//
// Labelled `engine` (ctest -L engine). The netlist engine simulates the
// full gate network per cycle, so its workloads are kept deliberately
// small; byte-equivalence over a few blocks plus cycle parity is the
// contract, not throughput.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "arch/variant.hpp"
#include "engine/conformance.hpp"
#include "engine/engine.hpp"

namespace engine = aesip::engine;
namespace aes = aesip::aes;
namespace arch = aesip::arch;
namespace core = aesip::core;
using engine::EngineKind;

namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{1});
  return v;
}

constexpr std::array<std::uint8_t, 16> kKey{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                            0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                            0x09, 0xcf, 0x4f, 0x3c};
constexpr std::array<std::uint8_t, 16> kIv{0, 1, 2, 3, 4, 5, 6, 7,
                                           8, 9, 10, 11, 12, 13, 14, 15};

}  // namespace

// The full conformance run (FIPS-197 Appendix B + C.1 both directions,
// Monte Carlo chain vs. the software reference) per engine kind.
TEST(EngineConformance, SoftwareEngineFullSuite) {
  const auto e = engine::make_engine(EngineKind::kSoftware);
  const auto r = engine::run_conformance(*e, /*monte_carlo_iters=*/1000);
  EXPECT_TRUE(r.ok()) << (r.messages.empty() ? "" : r.messages.front());
  EXPECT_GT(r.checks, 0);
  EXPECT_EQ(r.total_cycles, 0u);  // zero-cycle functional model
}

TEST(EngineConformance, BehavioralEngineFullSuite) {
  const auto e = engine::make_engine(EngineKind::kBehavioral);
  const auto r = engine::run_conformance(*e, /*monte_carlo_iters=*/1000);
  EXPECT_TRUE(r.ok()) << (r.messages.empty() ? "" : r.messages.front());
  EXPECT_GT(r.total_cycles, 0u);
}

TEST(EngineConformance, NetlistEngineVectors) {
  const auto e = engine::make_engine(EngineKind::kNetlist);
  const auto r = engine::run_conformance(*e, /*monte_carlo_iters=*/4);
  EXPECT_TRUE(r.ok()) << (r.messages.empty() ? "" : r.messages.front());
  EXPECT_GT(r.total_cycles, 0u);
}

// The behavioral model and the synthesized netlist implement the same FSM,
// so an identical operation sequence must cost an identical number of
// clock cycles — not just produce the same bytes.
TEST(EngineConformance, BehavioralNetlistCycleParity) {
  engine::BehavioralEngine behavioral;
  const auto netlist = engine::make_engine(EngineKind::kNetlist);
  const auto rb = engine::run_conformance(behavioral, /*monte_carlo_iters=*/4);
  const auto rn = engine::run_conformance(*netlist, /*monte_carlo_iters=*/4);
  ASSERT_TRUE(rb.ok()) << (rb.messages.empty() ? "" : rb.messages.front());
  ASSERT_TRUE(rn.ok()) << (rn.messages.empty() ? "" : rn.messages.front());
  EXPECT_EQ(rb.checks, rn.checks);
  EXPECT_EQ(rb.total_cycles, rn.total_cycles);
}

// CBC through the generic aes:: modes, with each engine standing in as the
// BlockCipher128 via EngineBlockCipher, against the software reference.
TEST(EngineConformance, CbcModeEquivalenceAcrossEngines) {
  const auto plain = aes::pkcs7_pad(pattern_bytes(41));  // 48 bytes padded
  const aes::Aes128 ref(kKey);
  const auto want = aes::cbc_encrypt(ref, std::span<const std::uint8_t, 16>(kIv), plain);

  for (const auto kind :
       {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto e = engine::make_engine(kind);
    e->load_key(kKey);
    const engine::EngineBlockCipher c(*e);
    const auto got = aes::cbc_encrypt(c, std::span<const std::uint8_t, 16>(kIv), plain);
    EXPECT_EQ(got, want) << "cbc_encrypt mismatch on engine " << e->name();
    const auto back = aes::cbc_decrypt(c, std::span<const std::uint8_t, 16>(kIv), got);
    EXPECT_EQ(back, plain) << "cbc_decrypt mismatch on engine " << e->name();
  }
}

// CTR needs only the forward cipher; any byte length is legal.
TEST(EngineConformance, CtrModeEquivalenceAcrossEngines) {
  const auto plain = pattern_bytes(37);  // deliberately not block-aligned
  const aes::Aes128 ref(kKey);
  const auto want = aes::ctr_crypt(ref, std::span<const std::uint8_t, 16>(kIv), plain);

  for (const auto kind :
       {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto e = engine::make_engine(kind);
    e->load_key(kKey);
    const engine::EngineBlockCipher c(*e);
    const auto got = aes::ctr_crypt(c, std::span<const std::uint8_t, 16>(kIv), plain);
    EXPECT_EQ(got, want) << "ctr_crypt mismatch on engine " << e->name();
    // CTR decrypts with the same forward operation.
    const auto back = aes::ctr_crypt(c, std::span<const std::uint8_t, 16>(kIv), got);
    EXPECT_EQ(back, plain) << "ctr round-trip mismatch on engine " << e->name();
  }
}

// FIPS-197 Appendix B through the batch path: a batch of identical
// plaintext blocks must yield the known ciphertext in every slot, and
// decrypt back, on every engine kind.
TEST(EngineConformance, BatchFipsVectorsAcrossEngines) {
  constexpr std::size_t kBlocks = 5;  // deliberately a partial batch
  for (const auto kind :
       {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto e = engine::make_engine(kind);
    e->load_key(engine::kFipsBKey);
    std::vector<std::uint8_t> in, out(16 * kBlocks), back(16 * kBlocks);
    for (std::size_t i = 0; i < kBlocks; ++i)
      in.insert(in.end(), engine::kFipsBPlain.begin(), engine::kFipsBPlain.end());
    e->process_batch(in, out, /*encrypt=*/true);
    for (std::size_t i = 0; i < kBlocks; ++i)
      EXPECT_TRUE(std::equal(engine::kFipsBCipher.begin(), engine::kFipsBCipher.end(),
                             out.begin() + static_cast<std::ptrdiff_t>(16 * i)))
          << "engine " << e->name() << " block " << i;
    e->process_batch(out, back, /*encrypt=*/false);
    EXPECT_EQ(back, in) << "engine " << e->name();
    EXPECT_EQ(e->batch_stats().blocks, 2 * kBlocks);
    EXPECT_EQ(e->batch_stats().calls, 2u);
  }
}

// process_batch must be indistinguishable from the scalar loop — same
// ciphertexts AND the same cycles() growth — on every engine, at batch
// sizes that cross the netlist engine's lane boundary (64 on the portable
// backend, up to 512 on AVX-512 — sized off batch_lanes() so the test
// crosses it whatever backend the host resolves).
TEST(EngineConformance, BatchMatchesScalarBytesAndCycles) {
  for (const auto kind :
       {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto scalar = engine::make_engine(kind);
    const auto batched = engine::make_engine(kind);
    scalar->load_key(kKey);
    batched->load_key(kKey);

    // lanes + 6 blocks: one full-width pass plus a 6-lane partial for the
    // netlist engine; a plain 70-block loop for the others.
    const std::size_t blocks =
        kind == EngineKind::kNetlist ? batched->batch_lanes() + 6 : 70;
    const auto plain = pattern_bytes(blocks * 16);

    std::vector<std::uint8_t> want(plain.size());
    for (std::size_t i = 0; i < plain.size(); i += 16) {
      const auto r = scalar->process_block(
          std::span<const std::uint8_t>(plain.data() + i, 16), /*encrypt=*/true);
      std::copy(r.begin(), r.end(), want.begin() + static_cast<std::ptrdiff_t>(i));
    }

    std::vector<std::uint8_t> got(plain.size());
    batched->process_batch(plain, got, /*encrypt=*/true);
    EXPECT_EQ(got, want) << "engine " << scalar->name();
    EXPECT_EQ(batched->cycles(), scalar->cycles())
        << "batch path must cost the same simulated cycles on " << scalar->name();

    std::vector<std::uint8_t> back(plain.size());
    batched->process_batch(got, back, /*encrypt=*/false);
    EXPECT_EQ(back, plain) << "engine " << scalar->name();

    const auto& stats = batched->batch_stats();
    EXPECT_EQ(stats.blocks, 2 * blocks);
    if (kind == EngineKind::kNetlist) {
      EXPECT_GE(batched->batch_lanes(), 64u);
      EXPECT_EQ(stats.passes, 4u);  // (lanes + 6) lanes, twice
      EXPECT_NEAR(stats.mean_lanes(), static_cast<double>(blocks) / 2.0, 1e-9);
    } else {
      EXPECT_EQ(stats.passes, 2 * blocks);  // loop engines: one block per pass
    }
  }
}

// Malformed batch spans are rejected up front on every engine.
TEST(EngineConformance, BatchSpanValidation) {
  for (const auto kind :
       {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto e = engine::make_engine(kind);
    e->load_key(kKey);
    std::vector<std::uint8_t> a(32), b(16), c(17);
    EXPECT_THROW(e->process_batch(a, b), std::invalid_argument) << e->name();
    EXPECT_THROW(e->process_batch(c, c), std::invalid_argument) << e->name();
  }
}

// Every member of the round-engine variant family must pass the full
// conformance suite — FIPS-197 Appendix B + C.1 both directions plus the
// Monte Carlo chain — AND honor its own declared schedule (latency, key
// setup, cycles/round), on the behavioral twin.
TEST(EngineConformance, VariantFamilyBehavioralFullSuite) {
  for (const auto& spec : arch::VariantSpec::family()) {
    const auto e = engine::make_engine(EngineKind::kBehavioral, spec);
    const auto expect = engine::timing_for_variant(spec, core::IpMode::kBoth);
    const auto r = engine::run_conformance(*e, expect, /*monte_carlo_iters=*/200);
    EXPECT_TRUE(r.ok()) << spec.name() << ": "
                        << (r.messages.empty() ? "" : r.messages.front());
    EXPECT_GT(r.total_cycles, 0u) << spec.name();
  }
}

// The same contract at gate level: each variant's synthesized netlist,
// driven through GateIpDriver, against the variant's own schedule. The
// pipelined netlists are large, so the Monte Carlo tail is kept short —
// the vectors and the timing invariants are the contract here.
TEST(EngineConformance, VariantFamilyNetlistVectors) {
  for (const auto& spec : arch::VariantSpec::family()) {
    const auto e = engine::make_engine(EngineKind::kNetlist, spec);
    const auto expect = engine::timing_for_variant(spec, core::IpMode::kBoth);
    const auto r = engine::run_conformance(*e, expect, /*monte_carlo_iters=*/2);
    EXPECT_TRUE(r.ok()) << spec.name() << ": "
                        << (r.messages.empty() ? "" : r.messages.front());
    EXPECT_GT(r.total_cycles, 0u) << spec.name();
  }
}

// CBC and CTR traffic through EngineBlockCipher must be variant-invariant:
// every family member computes the same function as the software reference,
// whatever its schedule.
TEST(EngineConformance, VariantCbcCtrEquivalence) {
  const auto cbc_plain = aes::pkcs7_pad(pattern_bytes(41));
  const auto ctr_plain = pattern_bytes(37);
  const aes::Aes128 ref(kKey);
  const auto want_cbc = aes::cbc_encrypt(ref, std::span<const std::uint8_t, 16>(kIv), cbc_plain);
  const auto want_ctr = aes::ctr_crypt(ref, std::span<const std::uint8_t, 16>(kIv), ctr_plain);

  for (const auto& spec : arch::VariantSpec::family()) {
    const auto e = engine::make_engine(EngineKind::kBehavioral, spec);
    e->load_key(kKey);
    const engine::EngineBlockCipher c(*e);
    const auto got_cbc = aes::cbc_encrypt(c, std::span<const std::uint8_t, 16>(kIv), cbc_plain);
    EXPECT_EQ(got_cbc, want_cbc) << "cbc mismatch on variant " << spec.name();
    const auto back = aes::cbc_decrypt(c, std::span<const std::uint8_t, 16>(kIv), got_cbc);
    EXPECT_EQ(back, cbc_plain) << "cbc round-trip mismatch on variant " << spec.name();
    const auto got_ctr = aes::ctr_crypt(c, std::span<const std::uint8_t, 16>(kIv), ctr_plain);
    EXPECT_EQ(got_ctr, want_ctr) << "ctr mismatch on variant " << spec.name();
  }
}

// process_batch must remain indistinguishable from the scalar loop on
// every variant — same bytes, same simulated cycles.
TEST(EngineConformance, VariantBatchMatchesScalar) {
  const auto plain = pattern_bytes(12 * 16);
  for (const auto& spec : arch::VariantSpec::family()) {
    const auto scalar = engine::make_engine(EngineKind::kBehavioral, spec);
    const auto batched = engine::make_engine(EngineKind::kBehavioral, spec);
    scalar->load_key(kKey);
    batched->load_key(kKey);

    std::vector<std::uint8_t> want(plain.size());
    for (std::size_t i = 0; i < plain.size(); i += 16) {
      const auto r = scalar->process_block(
          std::span<const std::uint8_t>(plain.data() + i, 16), /*encrypt=*/true);
      std::copy(r.begin(), r.end(), want.begin() + static_cast<std::ptrdiff_t>(i));
    }
    std::vector<std::uint8_t> got(plain.size());
    batched->process_batch(plain, got, /*encrypt=*/true);
    EXPECT_EQ(got, want) << "variant " << spec.name();
    EXPECT_EQ(batched->cycles(), scalar->cycles()) << "variant " << spec.name();
  }
}

// The gate-level batch path (lane-packed evaluator) on a pipelined variant:
// one pass of lanes, bytes identical to the software reference.
TEST(EngineConformance, VariantNetlistBatchVectors) {
  const arch::VariantSpec spec = *arch::VariantSpec::parse("pipe5-xtime");
  const auto e = engine::make_engine(EngineKind::kNetlist, spec);
  e->load_key(kKey);
  const auto plain = pattern_bytes(9 * 16);  // partial batch, one pass
  const aes::Aes128 ref(kKey);
  std::vector<std::uint8_t> want(plain.size()), got(plain.size()), back(plain.size());
  for (std::size_t i = 0; i < plain.size(); i += 16)
    ref.encrypt_block(std::span(plain).subspan(i, 16), std::span(want).subspan(i, 16));
  e->process_batch(plain, got, /*encrypt=*/true);
  EXPECT_EQ(got, want);
  e->process_batch(got, back, /*encrypt=*/false);
  EXPECT_EQ(back, plain);
}

// FIPS-197 Appendix C.2 (192) / C.3 (256) plus the per-size Monte Carlo
// chain on every engine kind, each held to the iterative core's
// generalized cycle contracts (5*Nr latency, 4*Nr decrypt key setup).
TEST(EngineConformance, WideKeySuitesAcrossEngines) {
  for (const int kb : {192, 256}) {
    arch::VariantSpec spec;  // the paper's iterative core at this key size
    spec.key_bits = kb;
    for (const auto kind :
         {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
      const auto e = engine::make_engine(kind, spec);
      const int mc = kind == EngineKind::kNetlist ? 4 : 1000;
      const auto r = engine::run_conformance(
          *e, engine::timing_for_variant(spec, core::IpMode::kBoth), mc);
      EXPECT_TRUE(r.ok()) << kb << "-bit " << e->name() << ": "
                          << (r.messages.empty() ? "" : r.messages.front());
      EXPECT_GT(r.checks, 0) << kb << "-bit " << e->name();
    }
  }
}

// The behavioral model and the synthesized netlist implement the same FSM
// at every geometry: identical cycle totals for an identical run.
TEST(EngineConformance, WideKeyCycleParity) {
  for (const int kb : {192, 256}) {
    arch::VariantSpec spec;
    spec.key_bits = kb;
    const auto behavioral = engine::make_engine(EngineKind::kBehavioral, spec);
    const auto netlist = engine::make_engine(EngineKind::kNetlist, spec);
    const auto expect = engine::timing_for_variant(spec, core::IpMode::kBoth);
    const auto rb = engine::run_conformance(*behavioral, expect, /*monte_carlo_iters=*/2);
    const auto rn = engine::run_conformance(*netlist, expect, /*monte_carlo_iters=*/2);
    ASSERT_TRUE(rb.ok()) << kb << ": " << (rb.messages.empty() ? "" : rb.messages.front());
    ASSERT_TRUE(rn.ok()) << kb << ": " << (rn.messages.empty() ? "" : rn.messages.front());
    EXPECT_EQ(rb.checks, rn.checks) << kb;
    EXPECT_EQ(rb.total_cycles, rn.total_cycles) << kb;
  }
}

// Batch == scalar (bytes and cycles) at every key size on every engine.
TEST(EngineConformance, WideKeyBatchMatchesScalar) {
  const auto plain = pattern_bytes(9 * 16);  // partial batch, one netlist pass
  for (const int kb : {192, 256}) {
    arch::VariantSpec spec;
    spec.key_bits = kb;
    std::vector<std::uint8_t> key(static_cast<std::size_t>(kb / 8));
    std::iota(key.begin(), key.end(), std::uint8_t{0});
    for (const auto kind :
         {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
      const auto scalar = engine::make_engine(kind, spec);
      const auto batched = engine::make_engine(kind, spec);
      scalar->load_key(key);
      batched->load_key(key);
      std::vector<std::uint8_t> want(plain.size());
      for (std::size_t i = 0; i < plain.size(); i += 16) {
        const auto r = scalar->process_block(
            std::span<const std::uint8_t>(plain.data() + i, 16), /*encrypt=*/true);
        std::copy(r.begin(), r.end(), want.begin() + static_cast<std::ptrdiff_t>(i));
      }
      std::vector<std::uint8_t> got(plain.size()), back(plain.size());
      batched->process_batch(plain, got, /*encrypt=*/true);
      EXPECT_EQ(got, want) << kb << "-bit " << scalar->name();
      EXPECT_EQ(batched->cycles(), scalar->cycles()) << kb << "-bit " << scalar->name();
      batched->process_batch(got, back, /*encrypt=*/false);
      EXPECT_EQ(back, plain) << kb << "-bit " << scalar->name();
    }
  }
}

// Cycle engines are geometry-fixed at construction: a key of any other
// length is a contract violation, not a silent reconfiguration. The
// software engine is geometry-blind and accepts all three.
TEST(EngineConformance, GeometryFixedEnginesRejectMismatchedKeys) {
  arch::VariantSpec spec;
  spec.key_bits = 192;
  const std::vector<std::uint8_t> k16(16), k24(24), k32(32), k20(20);
  for (const auto kind : {EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto e = engine::make_engine(kind, spec);
    EXPECT_NO_THROW(e->load_key(k24)) << e->name();
    EXPECT_THROW(e->load_key(k16), std::invalid_argument) << e->name();
    EXPECT_THROW(e->load_key(k32), std::invalid_argument) << e->name();
    EXPECT_THROW(e->load_key(k20), std::invalid_argument) << e->name();
  }
  const auto sw = engine::make_engine(EngineKind::kSoftware);
  EXPECT_NO_THROW(sw->load_key(k16));
  EXPECT_NO_THROW(sw->load_key(k24));
  EXPECT_NO_THROW(sw->load_key(k32));
  EXPECT_THROW(sw->load_key(k20), std::invalid_argument);
}

// The engine factory's name round-trip, including the CLI aliases.
TEST(EngineConformance, KindNamesRoundTrip) {
  for (const auto kind :
       {EngineKind::kSoftware, EngineKind::kBehavioral, EngineKind::kNetlist}) {
    const auto parsed = engine::kind_from_name(engine::kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(engine::kind_from_name("verilog").has_value());
  EXPECT_EQ(engine::kind_from_name("software"), EngineKind::kSoftware);
  EXPECT_EQ(engine::kind_from_name("ip"), EngineKind::kBehavioral);
  EXPECT_EQ(engine::kind_from_name("gate"), EngineKind::kNetlist);
}
