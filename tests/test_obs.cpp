// The observability layer: IP phase counters (the paper's 4+1 / 50-cycle
// budget as live totals), bus-side accounting, the simulator profiler,
// the lock-free histogram, the trace rings, and the farm's metrics.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "farm/farm.hpp"
#include "hdl/profile.hpp"
#include "hdl/simulator.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace core = aesip::core;
namespace hdl = aesip::hdl;
namespace obs = aesip::obs;
namespace farm = aesip::farm;

namespace {

std::array<std::uint8_t, 16> test_key() {
  return {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
}

struct Rig {
  hdl::Simulator sim;
  core::RijndaelIp ip;
  core::BusDriver bus;
  explicit Rig(core::IpMode mode) : ip(sim, mode), bus(sim, ip) {
    bus.reset();
    bus.load_key(test_key());
  }
};

// --- IP phase counters: the paper's cycle budget as running totals --------

TEST(IpCounters, EncryptBlockCostsExactly40Plus10Cycles) {
  Rig r(core::IpMode::kEncrypt);
  r.ip.reset_counters();
  std::array<std::uint8_t, 16> block{};
  for (int b = 1; b <= 7; ++b) {
    block = r.bus.process_block(block, true);
    const auto& c = r.ip.counters();
    // 4 ByteSub32 slices + 1 SR/MC/AK per round, 10 rounds per block.
    EXPECT_EQ(c.bytesub_cycles, 40u * static_cast<unsigned>(b));
    EXPECT_EQ(c.mix_cycles, 10u * static_cast<unsigned>(b));
    EXPECT_EQ(c.rounds_done, 10u * static_cast<unsigned>(b));
    EXPECT_EQ(c.blocks_enc, static_cast<std::uint64_t>(b));
    EXPECT_EQ(c.blocks_dec, 0u);
  }
}

TEST(IpCounters, DecryptBlockCostsExactly40Plus10Cycles) {
  Rig r(core::IpMode::kDecrypt);
  r.ip.reset_counters();
  std::array<std::uint8_t, 16> block{};
  for (int b = 1; b <= 7; ++b) {
    block = r.bus.process_block(block, false);
    const auto& c = r.ip.counters();
    EXPECT_EQ(c.bytesub_cycles, 40u * static_cast<unsigned>(b));
    EXPECT_EQ(c.mix_cycles, 10u * static_cast<unsigned>(b));
    EXPECT_EQ(c.rounds_done, 10u * static_cast<unsigned>(b));
    EXPECT_EQ(c.blocks_dec, static_cast<std::uint64_t>(b));
    EXPECT_EQ(c.blocks_enc, 0u);
  }
}

TEST(IpCounters, LiveInvariantsHoldOnMixedWorkload) {
  Rig r(core::IpMode::kBoth);
  std::mt19937 rng(7);
  std::array<std::uint8_t, 16> block{};
  for (int i = 0; i < 23; ++i) {
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    const auto ct = r.bus.process_block(block, true);
    const auto pt = r.bus.process_block(ct, false);
    EXPECT_TRUE(std::equal(pt.begin(), pt.end(), block.begin()));
  }
  const auto& c = r.ip.counters();
  EXPECT_EQ(c.blocks(), 46u);
  EXPECT_EQ(c.cycles_per_round(), 5.0);   // exact: 5 = 4 ByteSub32 + 1 mix
  EXPECT_EQ(c.cycles_per_block(), 50.0);  // exact: 10 rounds x 5
  EXPECT_EQ(c.round_cycles(), c.blocks() * core::RijndaelIp::kCyclesPerBlock);
}

TEST(IpCounters, DecryptDeviceSpends40CyclesPerKeySetup) {
  Rig r(core::IpMode::kBoth);
  const auto& c = r.ip.counters();
  EXPECT_EQ(c.key_setup_cycles, 40u);  // the load in Rig's constructor
  auto key2 = test_key();
  key2[0] ^= 0xff;
  r.bus.load_key(key2);
  EXPECT_EQ(c.key_setup_cycles, 80u);
  EXPECT_EQ(c.key_writes, 2u);
}

TEST(IpCounters, EncryptOnlyDeviceSkipsKeySetup) {
  Rig r(core::IpMode::kEncrypt);
  EXPECT_EQ(r.ip.counters().key_setup_cycles, 0u);
  EXPECT_EQ(r.ip.counters().key_writes, 1u);
}

TEST(IpCounters, ResetCountersZeroesEverything) {
  Rig r(core::IpMode::kBoth);
  (void)r.bus.process_block(test_key(), true);
  r.ip.reset_counters();
  const auto& c = r.ip.counters();
  EXPECT_EQ(c.round_cycles(), 0u);
  EXPECT_EQ(c.blocks(), 0u);
  EXPECT_EQ(c.rounds_done, 0u);
  EXPECT_EQ(c.key_setup_cycles, 0u);
}

// --- bus-side accounting ---------------------------------------------------

TEST(BusCounters, AttributesLoadAndComputeCycles) {
  Rig r(core::IpMode::kBoth);
  r.bus.reset_counters();
  std::array<std::uint8_t, 16> block{};
  for (int i = 0; i < 5; ++i) block = r.bus.process_block(block, true);
  const auto& c = r.bus.counters();
  EXPECT_EQ(c.blocks, 5u);
  EXPECT_EQ(c.load_cycles, 5u);
  EXPECT_EQ(c.compute_cycles, 5u * 50u);  // each block: 50 cycles load->data_ok
  EXPECT_EQ(c.rekey_hits, 0u);
}

TEST(BusCounters, RekeyHitIsFreeAndCounted) {
  Rig r(core::IpMode::kBoth);
  r.bus.reset_counters();
  EXPECT_EQ(r.bus.rekey(test_key()), 0u);  // resident from Rig's ctor
  EXPECT_EQ(r.bus.counters().rekey_hits, 1u);
  EXPECT_EQ(r.bus.counters().key_loads, 0u);
  auto other = test_key();
  other[5] ^= 1;
  EXPECT_EQ(r.bus.rekey(other), 40u);  // miss: full 40-cycle setup
  EXPECT_EQ(r.bus.counters().key_loads, 1u);
  EXPECT_EQ(r.bus.counters().key_setup_cycles, 40u);
}

// --- simulator profiler ----------------------------------------------------

TEST(Profiler, CountsMatchKernelActivity) {
  Rig r(core::IpMode::kBoth);
  obs::ScopedProfiler prof(r.sim);
  const auto c0 = r.sim.cycle();
  (void)r.bus.process_block(test_key(), true);
  const auto& p = prof.profile();
  const auto cycles = r.sim.cycle() - c0;
  EXPECT_EQ(p.steps, cycles);
  // Each step settles twice (pre- and post-edge); nothing else settled.
  EXPECT_EQ(p.settles, 2 * cycles);
  // Every module is evaluated once per delta and ticked once per step.
  ASSERT_FALSE(p.modules.empty());
  for (const auto& m : p.modules) {
    EXPECT_EQ(m.evals, p.deltas) << m.name;
    EXPECT_EQ(m.ticks, p.steps) << m.name;
  }
  EXPECT_GE(p.deltas, p.settles);  // at least one delta per settle
  EXPECT_GT(p.total_activity(), 0u);
  EXPECT_LE(p.max_deltas, static_cast<std::uint64_t>(hdl::Simulator::kMaxDeltas));
}

TEST(Profiler, ResultsIdenticalWithAndWithoutProfiler) {
  Rig plain(core::IpMode::kBoth);
  Rig probed(core::IpMode::kBoth);
  obs::ScopedProfiler prof(probed.sim);
  std::mt19937 rng(3);
  std::array<std::uint8_t, 16> block{};
  for (int i = 0; i < 9; ++i) {
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    const auto a = plain.bus.process_block(block, true);
    const auto b2 = probed.bus.process_block(block, true);
    EXPECT_EQ(a, b2);
  }
  EXPECT_EQ(plain.sim.cycle(), probed.sim.cycle());
}

TEST(Profiler, DetachRestoresUninstrumentedPath) {
  Rig r(core::IpMode::kBoth);
  {
    obs::ScopedProfiler prof(r.sim);
    EXPECT_NE(r.sim.profiler(), nullptr);
  }
  EXPECT_EQ(r.sim.profiler(), nullptr);
  (void)r.bus.process_block(test_key(), true);  // must run fine detached
}

TEST(Profiler, ExternalSinkAccumulatesAcrossWindows) {
  Rig r(core::IpMode::kBoth);
  hdl::SimProfile acc;
  {
    obs::ScopedProfiler prof(r.sim, acc);
    (void)r.bus.process_block(test_key(), true);
  }
  const auto after_one = acc.steps;
  EXPECT_GT(after_one, 0u);
  {
    obs::ScopedProfiler prof(r.sim, acc);
    (void)r.bus.process_block(test_key(), true);
  }
  EXPECT_EQ(acc.steps, 2 * after_one);
  for (const auto& m : acc.modules) EXPECT_EQ(m.ticks, acc.steps) << m.name;
}

TEST(Profiler, ReportAndJsonMentionEveryModule) {
  Rig r(core::IpMode::kBoth);
  obs::ScopedProfiler prof(r.sim);
  (void)r.bus.process_block(test_key(), true);
  const std::string text = prof.report();
  std::ostringstream js;
  prof.write_json(js);
  const std::string json = js.str();
  EXPECT_NE(text.find("rijndael_ip"), std::string::npos);
  EXPECT_NE(json.find("\"rijndael_ip\""), std::string::npos);
  EXPECT_NE(json.find("\"signal_toggles\""), std::string::npos);
}

// --- histogram -------------------------------------------------------------

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ull), 64);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(64), ~0ull);
}

TEST(Histogram, ExactTotalsAndBoundedPercentiles) {
  obs::Histogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    h.record(v);
    sum += v;
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.max, 999u);
  EXPECT_DOUBLE_EQ(s.mean(), static_cast<double>(sum) / 1000.0);
  // Percentiles are bucket upper bounds: never below the true value,
  // never above the observed max.
  EXPECT_GE(s.percentile(0.50), 499u);
  EXPECT_LE(s.percentile(0.50), 999u);
  EXPECT_EQ(s.percentile(1.0), 999u);
  EXPECT_LE(s.percentile(0.99), s.max);
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t) * 1000 + (i & 0xff));
    });
  for (auto& th : threads) th.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_EQ(s.max, 3000u + 0xffu);
}

TEST(Histogram, ResetClears) {
  obs::Histogram h;
  h.record(7);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.percentile(0.99), 0u);
}

// --- tracer ----------------------------------------------------------------

TEST(Tracer, KeepsNewestEventsWhenRingWraps) {
  obs::Tracer tr(1, 8);
  for (std::uint64_t i = 0; i < 20; ++i)
    tr.record(0, {/*ts_us=*/i, /*dur_us=*/1, /*name=*/0, /*track=*/0, i, 0});
  EXPECT_EQ(tr.recorded(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);
  const auto ev = tr.events(0);
  ASSERT_EQ(ev.size(), 8u);
  for (std::size_t i = 0; i < ev.size(); ++i)
    EXPECT_EQ(ev[i].ts_us, 12 + i);  // oldest-first, newest retained
}

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  obs::Tracer tr(2, 16);
  tr.record(0, {10, 5, /*name=*/0, /*track=*/0, 3, 0});
  tr.record(1, {20, 7, /*name=*/2, /*track=*/1, 8, 40});
  tr.record(1, {40, 2, /*name=*/9, /*track=*/1, 1, 0});  // out-of-range name
  static constexpr const char* kNames[] = {"ecb", "cbc", "ctr"};
  std::ostringstream os;
  tr.write_chrome_trace(os, kNames, "farm");
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ecb\""), std::string::npos);
  EXPECT_NE(s.find("\"ctr\""), std::string::npos);
  EXPECT_NE(s.find("\"event\""), std::string::npos);  // the fallback label
  EXPECT_NE(s.find("\"farm\""), std::string::npos);
  // Balanced braces/brackets => parses at the structural level.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

// --- farm metrics ----------------------------------------------------------

farm::Request small_request(std::uint64_t session, std::mt19937& rng) {
  farm::Request req;
  req.session_id = session;
  farm::Key128 kb;
  for (auto& b : kb) b = static_cast<std::uint8_t>(session + 1);
  req.key = kb;
  for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
  req.mode = farm::Mode::kCbc;
  req.payload.resize(32);
  for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
  return req;
}

TEST(FarmMetrics, WaitHistogramCountsEveryExecutedJob) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 4;  // small: forces real backpressure waits
  farm::Farm f(cfg);
  std::mt19937 rng(11);
  std::vector<std::future<farm::Result>> futs;
  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i)
    futs.push_back(f.submit(small_request(static_cast<std::uint64_t>(i % 8), rng)));
  for (auto& fu : futs) fu.get();
  const auto st = f.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(kJobs));
  // Every executed job recorded one wait sample and one depth sample;
  // totals are exact (no sampling, no loss).
  std::uint64_t per_worker_requests = 0;
  for (const auto& w : st.per_worker) per_worker_requests += w.requests;
  EXPECT_EQ(st.queue_wait_us.count, per_worker_requests);
  EXPECT_EQ(st.queue_depth.count, per_worker_requests);
  EXPECT_LE(st.queue_depth.max, static_cast<std::uint64_t>(cfg.queue_capacity));
}

TEST(FarmMetrics, ShedLoadIsAccountedNotMeasured) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  farm::Farm f(cfg);
  std::mt19937 rng(13);
  std::vector<std::future<farm::Result>> futs;
  std::uint64_t accepted = 0, rejected = 0;
  constexpr int kAttempts = 300;
  for (int i = 0; i < kAttempts; ++i) {
    auto maybe = f.try_submit(small_request(0, rng));
    if (maybe) {
      futs.push_back(std::move(*maybe));
      ++accepted;
    } else {
      ++rejected;
    }
  }
  for (auto& fu : futs) fu.get();
  const auto st = f.stats();
  EXPECT_EQ(accepted + rejected, static_cast<std::uint64_t>(kAttempts));
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.requests, accepted);
  // Only accepted jobs appear in the wait histogram.
  EXPECT_EQ(st.queue_wait_us.count, accepted);
}

TEST(FarmMetrics, UtilizationIsAFractionPerWorker) {
  farm::FarmConfig cfg;
  cfg.workers = 3;
  farm::Farm f(cfg);
  std::mt19937 rng(17);
  std::vector<std::future<farm::Result>> futs;
  for (int i = 0; i < 60; ++i)
    futs.push_back(f.submit(small_request(static_cast<std::uint64_t>(i % 6), rng)));
  for (auto& fu : futs) fu.get();
  const auto st = f.stats();
  ASSERT_EQ(st.per_worker.size(), 3u);
  double total_busy = 0;
  for (const auto& w : st.per_worker) {
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.0);
    total_busy += static_cast<double>(w.busy_ns);
  }
  EXPECT_GT(total_busy, 0.0);  // someone did the work
}

TEST(FarmMetrics, TracingRecordsOneEventPerJobAndDumps) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.tracing = true;
  cfg.trace_capacity = 1024;
  farm::Farm f(cfg);
  std::mt19937 rng(19);
  std::vector<std::future<farm::Result>> futs;
  constexpr int kJobs = 50;
  for (int i = 0; i < kJobs; ++i)
    futs.push_back(f.submit(small_request(static_cast<std::uint64_t>(i % 4), rng)));
  for (auto& fu : futs) fu.get();
  const auto st = f.stats();
  EXPECT_EQ(st.trace_events, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(st.trace_dropped, 0u);
  std::ostringstream os;
  EXPECT_TRUE(f.write_chrome_trace(os));
  EXPECT_NE(os.str().find("\"cbc\""), std::string::npos);
}

TEST(FarmMetrics, TracingOffMeansNoEventsAndNoDump) {
  farm::Farm f{farm::FarmConfig{}};
  std::ostringstream os;
  EXPECT_FALSE(f.write_chrome_trace(os));
  EXPECT_TRUE(os.str().empty());
  EXPECT_EQ(f.stats().trace_events, 0u);
}

TEST(FarmMetrics, StatsJsonCarriesObservabilityFields) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.tracing = true;
  farm::Farm f(cfg);
  std::mt19937 rng(23);
  std::vector<std::future<farm::Result>> futs;
  for (int i = 0; i < 20; ++i)
    futs.push_back(f.submit(small_request(static_cast<std::uint64_t>(i % 2), rng)));
  for (auto& fu : futs) fu.get();
  std::ostringstream os;
  f.stats().write_json(os, 14.0);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"queue_wait_us\""), std::string::npos);
  EXPECT_NE(s.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(s.find("\"utilization\""), std::string::npos);
  EXPECT_NE(s.find("\"trace_events\""), std::string::npos);
}

}  // namespace
