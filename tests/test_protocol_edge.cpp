// Bus-protocol edge cases on the cycle-accurate model: behaviour around
// key setup, resets mid-setup, direction-pin handling on single-direction
// devices, and power-on state — the corners a host driver would hit.
#include <gtest/gtest.h>

#include <random>

#include "aes/cipher.hpp"
#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"

namespace aes = aesip::aes;
namespace core = aesip::core;
namespace hdl = aesip::hdl;
using core::IpMode;

namespace {

std::array<std::uint8_t, 16> random_block(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> out{};
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

struct Bench {
  hdl::Simulator sim;
  core::RijndaelIp ip;
  core::BusDriver bus;
  explicit Bench(IpMode mode) : ip(sim, mode), bus(sim, ip) { bus.reset(); }
};

}  // namespace

TEST(ProtocolEdge, PowerOnStateIsQuiet) {
  hdl::Simulator sim;
  core::RijndaelIp ip(sim, IpMode::kEncrypt);
  sim.run(20);
  EXPECT_FALSE(ip.data_ok.read());
  EXPECT_FALSE(ip.busy());
  EXPECT_FALSE(ip.key_ready());
  EXPECT_EQ(ip.blocks_done(), 0u);
}

TEST(ProtocolEdge, DataDuringKeySetupIsProcessedAfterwards) {
  // Write a block while the 40-cycle decrypt key setup runs: the Data_In
  // process stages it and the Rijndael process picks it up when ready.
  Bench b(IpMode::kDecrypt);
  const auto key = random_block(1);
  const auto ct = random_block(2);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.decrypt_block(ct, expected);

  b.ip.din.write(hdl::Word128::from_bytes(key));
  b.ip.wr_key.write(true);
  b.sim.step();
  b.ip.wr_key.write(false);
  b.sim.run(5);  // mid key setup
  EXPECT_FALSE(b.ip.key_ready());
  b.ip.din.write(hdl::Word128::from_bytes(ct));
  b.ip.wr_data.write(true);
  b.sim.step();
  b.ip.wr_data.write(false);
  EXPECT_TRUE(b.ip.data_pending());

  std::array<std::uint8_t, 16> got{};
  for (int i = 0; i < 200; ++i) {
    b.sim.step();
    if (b.ip.data_ok.read()) {
      b.ip.dout.read().store(got);
      break;
    }
  }
  EXPECT_EQ(got, expected);
}

TEST(ProtocolEdge, SetupDuringKeySetupAborts) {
  Bench b(IpMode::kBoth);
  b.ip.din.write(hdl::Word128::from_bytes(random_block(3)));
  b.ip.wr_key.write(true);
  b.sim.step();
  b.ip.wr_key.write(false);
  b.sim.run(10);  // mid setup
  b.bus.reset();
  EXPECT_FALSE(b.ip.key_ready());
  b.sim.run(80);
  EXPECT_FALSE(b.ip.key_ready()) << "the aborted setup must not complete later";
}

TEST(ProtocolEdge, RekeyDuringKeySetupRestarts) {
  Bench b(IpMode::kDecrypt);
  const auto key1 = random_block(4);
  const auto key2 = random_block(5);
  b.ip.din.write(hdl::Word128::from_bytes(key1));
  b.ip.wr_key.write(true);
  b.sim.step();
  b.sim.run(7);  // wr_key still low? ensure deassert
  b.ip.wr_key.write(false);
  b.sim.run(3);
  // Second key mid-setup.
  b.ip.din.write(hdl::Word128::from_bytes(key2));
  b.ip.wr_key.write(true);
  b.sim.step();
  b.ip.wr_key.write(false);
  std::uint64_t waited = 0;
  while (!b.ip.key_ready() && waited++ < 100) b.sim.step();
  ASSERT_TRUE(b.ip.key_ready());
  // The live key must be key2.
  const auto ct = random_block(6);
  aes::Aes128 ref(key2);
  std::array<std::uint8_t, 16> expected{};
  ref.decrypt_block(ct, expected);
  EXPECT_EQ(b.bus.process_block(ct, false), expected);
}

TEST(ProtocolEdge, EncdecIgnoredOnSingleDirectionDevices) {
  Bench b(IpMode::kEncrypt);
  const auto key = random_block(7);
  const auto pt = random_block(8);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.encrypt_block(pt, expected);
  b.bus.load_key(key);
  // Drive encdec "decrypt": the encrypt-only device must still encrypt.
  EXPECT_EQ(b.bus.process_block(pt, /*encrypt=*/false), expected);
}

TEST(ProtocolEdge, BackToBackKeyWritesLastOneWins) {
  Bench b(IpMode::kEncrypt);
  const auto key1 = random_block(9);
  const auto key2 = random_block(10);
  b.ip.din.write(hdl::Word128::from_bytes(key1));
  b.ip.wr_key.write(true);
  b.sim.step();
  b.ip.din.write(hdl::Word128::from_bytes(key2));
  b.sim.step();  // wr_key still high: second write
  b.ip.wr_key.write(false);
  const auto pt = random_block(11);
  aes::Aes128 ref(key2);
  std::array<std::uint8_t, 16> expected{};
  ref.encrypt_block(pt, expected);
  EXPECT_EQ(b.bus.process_block(pt), expected);
}

TEST(ProtocolEdge, BlocksDoneCounts) {
  Bench b(IpMode::kEncrypt);
  b.bus.load_key(random_block(12));
  for (std::uint32_t i = 0; i < 3; ++i) b.bus.process_block(random_block(20 + i));
  EXPECT_EQ(b.ip.blocks_done(), 3u);
}

TEST(ProtocolEdge, SetupClearsPendingBlock) {
  Bench b(IpMode::kEncrypt);
  b.bus.load_key(random_block(13));
  // Stage a block and immediately reset before it completes.
  b.ip.din.write(hdl::Word128::from_bytes(random_block(14)));
  b.ip.wr_data.write(true);
  b.sim.step();
  b.ip.wr_data.write(false);
  b.bus.reset();
  b.sim.run(80);
  EXPECT_EQ(b.ip.blocks_done(), 0u);
  EXPECT_FALSE(b.ip.data_ok.read());
}

TEST(ProtocolEdge, DecryptOnBothAfterManyEncrypts) {
  // Direction changes do not need re-keying: the combined device keeps
  // both schedules live from one key setup.
  Bench b(IpMode::kBoth);
  const auto key = random_block(15);
  b.bus.load_key(key);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> last_ct{};
  for (std::uint32_t i = 0; i < 4; ++i) last_ct = b.bus.process_block(random_block(30 + i), true);
  const auto pt = random_block(33);  // the last encrypted block's plaintext
  std::array<std::uint8_t, 16> expected{};
  ref.decrypt_block(last_ct, expected);
  EXPECT_EQ(b.bus.process_block(last_ct, false), expected);
  EXPECT_EQ(expected, pt);
}
