// End-to-end service layer: multi-session traffic through the full stack
// (Client -> wire -> transport -> Server -> farm -> engine) must be
// bit-identical to aes::Aes128, over both the deterministic loopback and
// real localhost TCP, and a graceful drain must answer every accepted
// frame before the server exits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "engine/conformance.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"

namespace net = aesip::net;
namespace farm = aesip::farm;
namespace aes = aesip::aes;

namespace {

net::ServerConfig server_cfg(aesip::engine::EngineKind engine, int workers = 4) {
  net::ServerConfig cfg;
  cfg.farm.workers = workers;
  cfg.farm.engine = engine;
  return cfg;
}

/// One session's worth of mixed verified traffic: every response compared
/// against the aes::Aes128 reference. Returns the number of mismatches.
int run_verified_session(net::Transport& transport, const std::string& address,
                         std::uint64_t sid, int requests, std::uint32_t seed) {
  net::Client client(transport, address, sid);
  std::mt19937 rng(seed);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  client.set_key(key);
  const aes::Aes128 ref(key);

  int mismatches = 0;
  struct Outstanding {
    std::uint32_t seq;
    std::vector<std::uint8_t> expect;
  };
  std::deque<Outstanding> outstanding;
  const auto collect = [&] {
    auto o = std::move(outstanding.front());
    outstanding.pop_front();
    if (client.wait(o.seq) != o.expect) ++mismatches;
  };

  for (int r = 0; r < requests; ++r) {
    farm::Key128 iv;
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
    const std::span<const std::uint8_t, 16> ivs(iv.data(), 16);
    const int mode = static_cast<int>(rng() % 3);
    std::size_t bytes = (1 + rng() % 6) * aes::kBlock;
    if (mode == 2) bytes -= rng() % aes::kBlock;
    std::vector<std::uint8_t> data(bytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());

    Outstanding o;
    if (mode == 2) {
      o.expect = aes::ctr_crypt(ref, ivs, data);
      o.seq = client.submit_ctr(iv, std::move(data));
    } else if (rng() & 1) {
      o.expect = mode ? aes::cbc_encrypt(ref, ivs, data) : aes::ecb_encrypt(ref, data);
      o.seq = client.submit_enc(mode == 1, iv, std::move(data));
    } else {
      o.expect = mode ? aes::cbc_decrypt(ref, ivs, data) : aes::ecb_decrypt(ref, data);
      o.seq = client.submit_dec(mode == 1, iv, std::move(data));
    }
    outstanding.push_back(std::move(o));
    while (outstanding.size() >= client.window()) collect();
  }
  while (!outstanding.empty()) collect();
  client.drain();
  client.bye();
  return mismatches;
}

TEST(NetLoopback, MultiSessionBitExactSw) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware));
  server.start();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 4; ++s)
    threads.emplace_back([&, s] {
      mismatches += run_verified_session(transport, "svc", static_cast<std::uint64_t>(s) + 1,
                                         64, 100 + static_cast<std::uint32_t>(s));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  server.stop();
  const auto st = server.stats();
  EXPECT_EQ(st.connections_accepted, 4u);
  EXPECT_EQ(st.protocol_errors, 0u);
  EXPECT_EQ(st.window_violations, 0u);
  EXPECT_EQ(st.in_flight, 0u);
  EXPECT_GE(st.data_frames, 4u * 64u);
  EXPECT_EQ(st.responses_sent, st.data_frames);  // every data frame answered
}

TEST(NetLoopback, MultiSessionBitExactBehavioral) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kBehavioral));
  server.start();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 4; ++s)
    threads.emplace_back([&, s] {
      mismatches += run_verified_session(transport, "svc", static_cast<std::uint64_t>(s) + 1,
                                         24, 200 + static_cast<std::uint32_t>(s));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(NetLoopback, TinyChunksExerciseShortReadsAndPartialWrites) {
  // 3-byte transport chunks slice every frame across many read/write
  // calls; nothing about the protocol may depend on framing arriving
  // whole. The tiny pipe also forces kWouldBlock on the write side.
  net::LoopbackTransport transport(/*max_chunk=*/3, /*pipe_capacity=*/64);
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 2));
  server.start();
  EXPECT_EQ(run_verified_session(transport, "svc", 1, 16, 7), 0);
  server.stop();
}

TEST(NetLoopback, FipsAppendixBThroughTheStack) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 1));
  server.start();

  net::Client client(transport, "svc", 1);
  farm::Key128 key, iv{};
  std::copy(aesip::engine::kFipsBKey.begin(), aesip::engine::kFipsBKey.end(), key.begin());
  client.set_key(key);
  const auto ct = client.enc_blocks(
      /*cbc=*/false, iv,
      std::vector<std::uint8_t>(aesip::engine::kFipsBPlain.begin(),
                                aesip::engine::kFipsBPlain.end()));
  EXPECT_TRUE(std::equal(ct.begin(), ct.end(), aesip::engine::kFipsBCipher.begin()));
  const auto pt = client.dec_blocks(/*cbc=*/false, iv, ct);
  EXPECT_TRUE(std::equal(pt.begin(), pt.end(), aesip::engine::kFipsBPlain.begin()));
  client.bye();
  server.stop();
}

TEST(NetLoopback, CtrFanoutSizedStreamBitExact) {
  // Payload large enough to take the farm's blocking-submit fan-out path
  // (>= ctr_fanout_min_blocks with multiple workers).
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 4));
  server.start();

  net::Client client(transport, "svc", 1);
  std::mt19937 rng(42);
  farm::Key128 key, iv;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
  client.set_key(key);
  std::vector<std::uint8_t> data(256 * aes::kBlock - 5);  // ragged fan-out stream
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  const aes::Aes128 ref(key);
  const std::span<const std::uint8_t, 16> ivs(iv.data(), 16);
  EXPECT_EQ(client.ctr_stream(iv, data), aes::ctr_crypt(ref, ivs, data));
  client.bye();
  server.stop();
}

TEST(NetLoopback, RekeySwitchesTheSessionKey) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 2));
  server.start();

  net::Client client(transport, "svc", 1);
  const farm::Key128 k1{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}};
  const farm::Key128 k2{{99, 98, 97, 96, 95, 94, 93, 92, 91, 90, 89, 88, 87, 86, 85, 84}};
  const farm::Key128 iv{};
  std::vector<std::uint8_t> block(16, 0x5a);

  client.set_key(k1);
  const auto c1 = client.enc_blocks(false, iv, block);
  client.rekey(k2);
  const auto c2 = client.enc_blocks(false, iv, block);
  EXPECT_EQ(c1, aes::ecb_encrypt(aes::Aes128(k1), block));
  EXPECT_EQ(c2, aes::ecb_encrypt(aes::Aes128(k2), block));
  EXPECT_NE(c1, c2);
  client.bye();
  server.stop();
}

TEST(NetLoopback, StatsOpReturnsFarmJson) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 2));
  server.start();
  net::Client client(transport, "svc", 1);
  const std::string json = client.stats_json();
  EXPECT_NE(json.find("workers"), std::string::npos);
  client.bye();
  server.stop();
}

TEST(NetLoopback, DataErrorSurfacesAsWireError) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 1));
  server.start();
  net::Client client(transport, "svc", 1);
  // No key installed: the server must answer kError/no_key and the client
  // must surface it as a typed exception, not a hang or a garbage result.
  try {
    client.enc_blocks(false, farm::Key128{}, std::vector<std::uint8_t>(16));
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::ErrorCode::kNoKey);
  }
  // Non-fatal: the session recovers.
  client.set_key(farm::Key128{});
  EXPECT_EQ(client.enc_blocks(false, farm::Key128{}, std::vector<std::uint8_t>(16)).size(),
            16u);
  client.bye();
  server.stop();
}

TEST(NetDrain, GracefulDrainLosesNothing) {
  net::LoopbackTransport transport;
  net::ServerConfig cfg = server_cfg(aesip::engine::EngineKind::kBehavioral, 2);
  cfg.window = 64;
  net::Server server(transport, "svc", cfg);
  server.start();

  net::Client client(transport, "svc", 1);
  farm::Key128 key{};
  key[0] = 0x42;
  client.set_key(key);
  const aes::Aes128 ref(key);
  const farm::Key128 iv{};

  // Pipeline a burst without collecting anything, wait until the server
  // has accepted every frame, then pull the rug: request_drain.
  constexpr int kBurst = 32;
  std::vector<std::uint32_t> seqs;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int i = 0; i < kBurst; ++i) {
    std::vector<std::uint8_t> data(8 * aes::kBlock);
    for (auto& b : data) b = static_cast<std::uint8_t>(i * 31 + 7);
    expect.push_back(aes::ecb_encrypt(ref, data));
    seqs.push_back(client.submit_enc(false, iv, std::move(data)));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().data_frames < kBurst &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(server.stats().data_frames, static_cast<std::uint64_t>(kBurst));

  server.request_drain();

  // The zero-loss contract: every accepted frame is answered, correctly,
  // even though the server is shutting down.
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(client.wait(seqs[i]), expect[i]) << i;

  server.stop();
  const auto st = server.stats();
  EXPECT_EQ(st.responses_sent, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(st.in_flight, 0u);
  EXPECT_EQ(st.connections_active, 0u);
}

TEST(NetDrain, DrainBarrierOrdersResponses) {
  net::LoopbackTransport transport;
  net::Server server(transport, "svc", server_cfg(aesip::engine::EngineKind::kSoftware, 2));
  server.start();
  net::Client client(transport, "svc", 1);
  client.set_key(farm::Key128{});
  std::vector<std::uint32_t> seqs;
  for (int i = 0; i < 8; ++i)
    seqs.push_back(client.submit_enc(false, farm::Key128{},
                                     std::vector<std::uint8_t>(16, static_cast<std::uint8_t>(i))));
  client.drain();
  // kDrainOk only comes after every prior frame is answered, and responses
  // are delivered in write order — so all 8 results are already here.
  EXPECT_EQ(client.in_flight(), 0u);
  for (const auto seq : seqs) EXPECT_EQ(client.wait(seq).size(), 16u);
  client.bye();
  server.stop();
}

TEST(NetTcp, MultiSessionBitExactOverLocalhost) {
  auto transport = net::make_tcp_transport();
  std::unique_ptr<net::Server> server;
  try {
    server = std::make_unique<net::Server>(*transport, "127.0.0.1:0",
                                           server_cfg(aesip::engine::EngineKind::kSoftware));
  } catch (const std::exception& e) {
    GTEST_SKIP() << "cannot bind localhost TCP: " << e.what();
  }
  server->start();
  const std::string address = server->address();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 8; ++s)
    threads.emplace_back([&, s] {
      mismatches += run_verified_session(*transport, address,
                                         static_cast<std::uint64_t>(s) + 1, 32,
                                         300 + static_cast<std::uint32_t>(s));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  server->stop();
  const auto st = server->stats();
  EXPECT_EQ(st.connections_accepted, 8u);
  EXPECT_EQ(st.protocol_errors, 0u);
  EXPECT_EQ(st.responses_sent, st.data_frames);
}

TEST(NetTcp, ClientRetriesUntilServerIsUp) {
  auto transport = net::make_tcp_transport();
  // Pick a port by binding, remembering it, and shutting down again.
  std::string address;
  {
    net::Server probe(*transport, "127.0.0.1:0",
                      server_cfg(aesip::engine::EngineKind::kSoftware, 1));
    address = probe.address();
  }

  // Start the server late, on the client's second-or-later attempt.
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    net::Server server(*transport, address,
                       server_cfg(aesip::engine::EngineKind::kSoftware, 1));
    server.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    server.stop();
  });

  try {
    net::ClientConfig ccfg;
    ccfg.connect_attempts = 40;
    net::Client client(*transport, address, 1, ccfg);
    client.set_key(farm::Key128{});
    EXPECT_EQ(client.enc_blocks(false, farm::Key128{}, std::vector<std::uint8_t>(16)).size(),
              16u);
    client.bye();
  } catch (const std::exception& e) {
    late.join();
    GTEST_SKIP() << "localhost race lost: " << e.what();
  }
  late.join();
}

TEST(NetLoopback, LoopbackRefusesWithoutListener) {
  net::LoopbackTransport transport;
  EXPECT_THROW(transport.connect("nobody-home"), std::runtime_error);
}

}  // namespace
