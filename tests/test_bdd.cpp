// BDD engine and formal equivalence checking: manager algebra, netlist
// symbolic semantics, and the headline proofs — the technology-mapped IP
// netlists are *formally* equivalent to the synthesized originals, output
// by output and register by register.
#include <gtest/gtest.h>

#include "aes/sbox.hpp"
#include "bdd/bdd.hpp"
#include "bdd/netlist_bdd.hpp"
#include "core/ip_synth.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"
#include "techmap/techmap.hpp"

namespace bdd = aesip::bdd;
namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

// --- manager algebra ---------------------------------------------------------------

TEST(Bdd, TerminalIdentities) {
  bdd::Manager m;
  EXPECT_EQ(m.constant(false), bdd::kFalse);
  EXPECT_EQ(m.constant(true), bdd::kTrue);
  const auto x = m.var(0);
  EXPECT_EQ(m.apply_and(x, bdd::kTrue), x);
  EXPECT_EQ(m.apply_and(x, bdd::kFalse), bdd::kFalse);
  EXPECT_EQ(m.apply_or(x, bdd::kFalse), x);
  EXPECT_EQ(m.apply_xor(x, x), bdd::kFalse);
  EXPECT_EQ(m.apply_xor(x, bdd::kFalse), x);
  EXPECT_EQ(m.apply_not(m.apply_not(x)), x);
}

TEST(Bdd, CanonicityMakesEqualFunctionsIdentical) {
  bdd::Manager m;
  const auto a = m.var(0);
  const auto b = m.var(1);
  // De Morgan: !(a & b) == !a | !b — same node.
  EXPECT_EQ(m.apply_not(m.apply_and(a, b)), m.apply_or(m.apply_not(a), m.apply_not(b)));
  // XOR both ways.
  EXPECT_EQ(m.apply_xor(a, b), m.apply_xor(b, a));
  // Shannon: f = ite(a, f|a=1, f|a=0).
  const auto f = m.apply_or(m.apply_and(a, b), m.apply_not(a));
  EXPECT_EQ(f, m.ite(a, b, bdd::kTrue));
}

TEST(Bdd, XorChainStaysLinear) {
  bdd::Manager m;
  bdd::Ref x = bdd::kFalse;
  for (std::uint32_t v = 0; v < 64; ++v) x = m.apply_xor(x, m.var(v));
  // Parity is the classic linear-size BDD (2 nodes/level); the manager also
  // retains the 63 intermediate prefixes, so the table stays O(n^2) — far
  // from the 2^64 a bad representation would need.
  EXPECT_LT(m.node_count(), 64u * 64u * 2u);
  EXPECT_DOUBLE_EQ(m.sat_fraction(x), 0.5);
}

TEST(Bdd, SatFraction) {
  bdd::Manager m;
  const auto a = m.var(0);
  const auto b = m.var(1);
  EXPECT_DOUBLE_EQ(m.sat_fraction(m.apply_and(a, b)), 0.25);
  EXPECT_DOUBLE_EQ(m.sat_fraction(m.apply_or(a, b)), 0.75);
  EXPECT_DOUBLE_EQ(m.sat_fraction(bdd::kTrue), 1.0);
}

TEST(Bdd, EvalWalksAssignments) {
  bdd::Manager m;
  const auto f = m.ite(m.var(0), m.var(1), m.var(2));  // v0 ? v1 : v2
  std::vector<std::uint64_t> assign(1, 0);
  auto set = [&](int v, bool val) {
    if (val) assign[0] |= 1ull << v;
    else assign[0] &= ~(1ull << v);
  };
  for (int v0 = 0; v0 < 2; ++v0)
    for (int v1 = 0; v1 < 2; ++v1)
      for (int v2 = 0; v2 < 2; ++v2) {
        set(0, v0);
        set(1, v1);
        set(2, v2);
        EXPECT_EQ(m.eval(f, assign), v0 ? v1 : v2);
      }
}

TEST(Bdd, NodeLimitGuards) {
  bdd::Manager m(/*node_limit=*/16);
  bdd::Ref x = bdd::kFalse;
  EXPECT_THROW(
      {
        for (std::uint32_t v = 0; v < 64; ++v) x = m.apply_xor(x, m.var(v));
      },
      std::runtime_error);
}

// --- netlist semantics -----------------------------------------------------------------

TEST(NetlistBdd, SboxRomAndLogicFlavoursAgree) {
  // The 2048-bit ROM and the Shannon LUT network are the same function —
  // proven symbolically over all 256 addresses at once.
  Netlist rom_nl, logic_nl;
  {
    const Bus addr = rom_nl.add_input_bus("addr", 8);
    rom_nl.add_output_bus(rom_nl.add_rom(aesip::aes::kSBox, addr, "s"), "out");
  }
  {
    const Bus addr = logic_nl.add_input_bus("addr", 8);
    logic_nl.add_output_bus(nlist::synth_sbox_logic(logic_nl, aesip::aes::kSBox, addr), "out");
  }
  const auto r = bdd::prove_equivalent(rom_nl, logic_nl);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(NetlistBdd, SboxOutputsAreBalanced) {
  // Each S-box output bit takes value 1 for exactly half the inputs —
  // a classic property of the Rijndael S-box, read off the BDD.
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  nl.add_output_bus(nl.add_rom(aesip::aes::kSBox, addr, "s"), "out");
  bdd::Manager mgr;
  const auto f = bdd::build(mgr, nl);
  for (const auto& [name, ref] : f.outputs)
    EXPECT_DOUBLE_EQ(mgr.sat_fraction(ref), 0.5) << name;
}

TEST(NetlistBdd, DetectsSingleGateMutation) {
  Netlist good, bad;
  {
    const Bus in = good.add_input_bus("in", 4);
    good.add_output(good.gate_xor(good.gate_and(in[0], in[1]), in[2]), "y");
  }
  {
    const Bus in = bad.add_input_bus("in", 4);
    bad.add_output(bad.gate_xor(bad.gate_or(in[0], in[1]), in[2]), "y");  // AND -> OR
  }
  const auto r = bdd::prove_equivalent(good, bad);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.mismatch.find("'y'"), std::string::npos);
}

TEST(NetlistBdd, SequentialStateIsCompared) {
  // Two 2-bit counters, one with an off-by-one increment: caught via the
  // D functions even though they have identical ports.
  auto make_counter = [](bool broken) {
    Netlist nl;
    Bus q{nl.new_net(), nl.new_net()};
    Bus d = nl.increment(q);
    if (broken) std::swap(d[0], d[1]);
    nl.add_dff_with_out(q[0], d[0]);
    nl.add_dff_with_out(q[1], d[1]);
    nl.add_output_bus(q, "q");
    return nl;
  };
  const auto ok = bdd::prove_equivalent(make_counter(false), make_counter(false));
  EXPECT_TRUE(ok.equivalent) << ok.mismatch;
  const auto broken = bdd::prove_equivalent(make_counter(false), make_counter(true));
  EXPECT_FALSE(broken.equivalent);
  EXPECT_NE(broken.mismatch.find("flip-flop"), std::string::npos);
}

TEST(NetlistBdd, MixColumns128MappingIsFormallyCorrect) {
  Netlist nl;
  const Bus in = nl.add_input_bus("state", 128);
  nl.add_output_bus(nlist::synth_mix_columns128(nl, in, false), "mc");
  const auto mapped = txm::map_to_luts(nl);
  const auto r = bdd::prove_equivalent(nl, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(NetlistBdd, InvMixColumnsMappingIsFormallyCorrect) {
  Netlist nl;
  const Bus in = nl.add_input_bus("state", 128);
  nl.add_output_bus(nlist::synth_mix_columns128(nl, in, true), "imc");
  const auto mapped = txm::map_to_luts(nl);
  const auto r = bdd::prove_equivalent(nl, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

// --- the headline proofs -------------------------------------------------------------

TEST(NetlistBdd, EncryptIpMappingIsFormallyCorrect) {
  // Full sequential equivalence of the complete encrypt IP against its
  // technology-mapped form: every output and every one of the ~800
  // register D/enable functions proven identical.
  const Netlist ip = core::synthesize_ip(IpMode::kEncrypt, true);
  const auto mapped = txm::map_to_luts(ip);
  const auto r = bdd::prove_equivalent(ip, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(NetlistBdd, DecryptIpMappingIsFormallyCorrect) {
  const Netlist ip = core::synthesize_ip(IpMode::kDecrypt, true);
  const auto mapped = txm::map_to_luts(ip);
  const auto r = bdd::prove_equivalent(ip, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}

TEST(NetlistBdd, BothIpMappingIsFormallyCorrect) {
  const Netlist ip = core::synthesize_ip(IpMode::kBoth, true);
  const auto mapped = txm::map_to_luts(ip);
  const auto r = bdd::prove_equivalent(ip, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << r.mismatch;
}
