// Power model: activity probe correctness on hand-analyzable circuits,
// breakdown sanity, and the qualitative effects the paper's future-work
// power analysis would look for (voltage scaling, variant ordering,
// idle-vs-active).
#include <gtest/gtest.h>

#include "core/ip_synth.hpp"
#include "netlist/eval.hpp"
#include "power/power.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace power = aesip::power;
namespace txm = aesip::techmap;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

const Netlist& mapped_encrypt_rom() {
  static const auto r = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  return r.mapped;
}

}  // namespace

TEST(ActivityProbe, CountsCounterToggles) {
  // 2-bit counter: bit0 toggles every cycle, bit1 every second cycle.
  Netlist nl;
  Bus q{nl.new_net(), nl.new_net()};
  const Bus d = nl.increment(q);
  nl.add_dff_with_out(q[0], d[0]);
  nl.add_dff_with_out(q[1], d[1]);
  nl.add_output_bus(q, "q");
  const auto mapped = txm::map_to_luts(nl);

  nlist::Evaluator ev(mapped.mapped);
  power::ActivityProbe probe(mapped.mapped, power::acex1k_power());
  ev.settle();
  probe.sample(ev.net_values());  // baseline
  const auto before = probe.activity().ff_toggles;
  for (int i = 0; i < 8; ++i) {
    ev.clock();
    probe.sample(ev.net_values());
  }
  // 8 cycles: bit0 toggles 8 times, bit1 toggles 4 times = 12 FF toggles.
  EXPECT_EQ(probe.activity().ff_toggles - before, 12u);
  EXPECT_EQ(probe.activity().cycles, 9u);
}

TEST(ActivityProbe, QuietCircuitHasNoToggles) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_dff(d);
  nl.add_output(q, "q");
  nlist::Evaluator ev(nl);
  power::ActivityProbe probe(nl, power::acex1k_power());
  ev.set(d, false);
  ev.settle();
  probe.sample(ev.net_values());
  const auto base = probe.activity().net_toggles;
  for (int i = 0; i < 5; ++i) {
    ev.clock();
    probe.sample(ev.net_values());
  }
  EXPECT_EQ(probe.activity().net_toggles, base) << "constant inputs, no switching";
}

TEST(ActivityProbe, RomReadCountedOnAddressChange) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) table[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  nl.add_output_bus(nl.add_rom(table, addr, "rom"), "q");
  nlist::Evaluator ev(nl);
  power::ActivityProbe probe(nl, power::acex1k_power());
  ev.set_bus(addr, 0);
  ev.settle();
  probe.sample(ev.net_values());
  const auto base = probe.activity().rom_reads;
  ev.set_bus(addr, 0x5a);
  ev.settle();
  probe.sample(ev.net_values());
  EXPECT_EQ(probe.activity().rom_reads - base, 1u);
  // Unchanged address: no new read.
  probe.sample(ev.net_values());
  EXPECT_EQ(probe.activity().rom_reads - base, 1u);
}

TEST(PowerEstimate, ZeroCyclesGivesZero) {
  power::Activity a;
  const auto r = power::estimate(a, power::acex1k_power(), 70.0, 100);
  EXPECT_DOUBLE_EQ(r.total_mw, 0.0);
}

TEST(PowerEstimate, BreakdownSumsToTotal) {
  const auto r = power::profile_ip(mapped_encrypt_rom(), power::acex1k_power(), 71.4);
  EXPECT_NEAR(r.total_mw,
              r.logic_mw + r.routing_mw + r.clock_mw + r.memory_mw + r.io_mw + r.static_mw,
              1e-9);
  EXPECT_GT(r.logic_mw, 0.0);
  EXPECT_GT(r.clock_mw, 0.0);
  EXPECT_GT(r.memory_mw, 0.0) << "the EAB S-boxes are read every ByteSub cycle";
  EXPECT_GT(r.energy_per_block_nj, 0.0);
  EXPECT_NEAR(r.energy_per_bit_pj, r.energy_per_block_nj * 1000.0 / 128.0, 1e-9);
}

TEST(PowerEstimate, ScalesLinearlyWithFrequency) {
  const auto slow = power::profile_ip(mapped_encrypt_rom(), power::acex1k_power(), 35.0);
  const auto fast = power::profile_ip(mapped_encrypt_rom(), power::acex1k_power(), 70.0);
  // Dynamic parts double; static stays.
  EXPECT_NEAR(fast.logic_mw, 2.0 * slow.logic_mw, 1e-6);
  EXPECT_NEAR(fast.clock_mw, 2.0 * slow.clock_mw, 1e-6);
  EXPECT_DOUBLE_EQ(fast.static_mw, slow.static_mw);
}

TEST(PowerEstimate, CycloneEnergyPerBlockIsLower) {
  // The mobile-systems angle of the paper's future-work remark: the 1.5 V
  // Cyclone spends far less switching energy per encrypted block than the
  // 2.5 V Acex, even running faster.
  const auto acex = power::profile_ip(mapped_encrypt_rom(), power::acex1k_power(), 71.4);
  const auto logic_ip = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, false));
  const auto cyclone = power::profile_ip(logic_ip.mapped, power::cyclone_power(), 100.0);
  const double acex_dynamic = acex.energy_per_block_nj -
                              acex.static_mw * 1e-3 * (50.0 / 71.4e6) * 1e9;
  const double cyc_dynamic = cyclone.energy_per_block_nj -
                             cyclone.static_mw * 1e-3 * (50.0 / 100.0e6) * 1e9;
  EXPECT_LT(cyc_dynamic, acex_dynamic);
}

TEST(PowerEstimate, BothVariantBurnsMoreThanEncrypt) {
  const auto enc = power::profile_ip(mapped_encrypt_rom(), power::acex1k_power(), 50.0);
  const auto both_ip = txm::map_to_luts(core::synthesize_ip(IpMode::kBoth, true));
  const auto both = power::profile_ip(both_ip.mapped, power::acex1k_power(), 50.0);
  EXPECT_GT(both.total_mw, enc.total_mw) << "twice the S-boxes, wider muxing";
}

TEST(PowerEstimate, ParamsForSelectsFamily) {
  EXPECT_EQ(&power::params_for(aesip::fpga::ep1k100fc484_1()), &power::acex1k_power());
  EXPECT_EQ(&power::params_for(aesip::fpga::ep1c20f400c6()), &power::cyclone_power());
}
