// Farm correctness: everything the service layer returns must be
// byte-identical to the single-threaded software reference (aes::Aes128
// driving the same mode functions), under randomized sessions and payload
// shapes, out-of-order completion, CTR fan-out reassembly, and the
// queue-full load-shedding path. Labelled `farm` in CTest so the whole
// file can run under TSan (`ctest -L farm`, see docs/farm.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "farm/farm.hpp"
#include "farm/queue.hpp"
#include "farm/session.hpp"

namespace aes = aesip::aes;
namespace engine = aesip::engine;
namespace farm = aesip::farm;

namespace {

farm::Key128 random_key128(std::mt19937& rng) {
  farm::Key128 k;
  for (auto& b : k) b = static_cast<std::uint8_t>(rng());
  return k;
}

std::vector<std::uint8_t> random_payload(std::mt19937& rng, std::size_t bytes) {
  std::vector<std::uint8_t> p(bytes);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

/// What the farm must produce, computed the boring way.
std::vector<std::uint8_t> reference(const farm::Request& req) {
  const aes::Rijndael cipher = aes::Rijndael::for_key(req.key.view());
  const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
  switch (req.mode) {
    case farm::Mode::kEcb:
      return req.encrypt ? aes::ecb_encrypt(cipher, req.payload)
                         : aes::ecb_decrypt(cipher, req.payload);
    case farm::Mode::kCbc:
      return req.encrypt ? aes::cbc_encrypt(cipher, iv, req.payload)
                         : aes::cbc_decrypt(cipher, iv, req.payload);
    case farm::Mode::kCtr:
      return aes::ctr_crypt(cipher, iv, req.payload);
  }
  return {};
}

farm::Request random_request(std::mt19937& rng, std::uint64_t session,
                             const farm::Key128& key) {
  farm::Request req;
  req.session_id = session;
  req.key = key;
  req.iv = random_key128(rng);
  req.mode = static_cast<farm::Mode>(rng() % 3);
  req.encrypt = (rng() & 1) != 0;
  const std::size_t blocks = 1 + rng() % 6;
  std::size_t bytes = blocks * 16;
  if (req.mode == farm::Mode::kCtr && (rng() & 1)) bytes += rng() % 16;  // ragged tail
  req.payload = random_payload(rng, bytes);
  return req;
}

}  // namespace

// --- BoundedQueue -----------------------------------------------------------------

TEST(BoundedQueue, FifoOrderAndHighWater) {
  farm::BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.high_water(), 3u);  // high water survives the drain
}

TEST(BoundedQueue, TryPushRefusesWhenFull) {
  farm::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed, don't block
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  farm::BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));      // no new work after close
  EXPECT_FALSE(q.try_push(9));
  EXPECT_EQ(q.pop(), 7);        // but queued work still drains
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, MpmcConservesItems) {
  farm::BoundedQueue<int> q(8);
  constexpr int kProducers = 3, kConsumers = 3, kEach = 500;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&q, &sum] {
      while (auto v = q.pop()) sum += *v;
    });
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c)
    threads[static_cast<std::size_t>(c)].join();
  const long n = kProducers * kEach;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --- SessionTable -----------------------------------------------------------------

TEST(SessionTable, KeyAffinityRoutesToSameWorker) {
  farm::SessionTable table(4, 16);
  std::mt19937 rng(1);
  const auto key = random_key128(rng);
  const auto first = table.route(1, key);
  EXPECT_FALSE(first.key_hot);
  const auto second = table.route(1, key);
  EXPECT_TRUE(second.key_hot);
  EXPECT_EQ(second.worker, first.worker);
  // A different session with the *same* key also hits the hot slot.
  const auto third = table.route(2, key);
  EXPECT_TRUE(third.key_hot);
  EXPECT_EQ(third.worker, first.worker);
}

TEST(SessionTable, LruSlotEviction) {
  farm::SessionTable table(2, 16);
  std::mt19937 rng(2);
  const auto ka = random_key128(rng), kb = random_key128(rng), kc = random_key128(rng);
  const int wa = table.route(1, ka).worker;
  const int wb = table.route(2, kb).worker;
  EXPECT_NE(wa, wb);  // two keys spread over two slots
  table.route(2, kb);  // touch b: a becomes LRU
  const auto rc = table.route(3, kc);
  EXPECT_FALSE(rc.key_hot);
  EXPECT_EQ(rc.worker, wa);  // c evicted the LRU slot (a's)
  // a's key is gone from its slot: next a request re-keys somewhere.
  EXPECT_FALSE(table.route(1, ka).key_hot);
}

TEST(SessionTable, SessionCapacityEvicts) {
  farm::SessionTable table(2, 2);
  std::mt19937 rng(3);
  for (std::uint64_t s = 0; s < 5; ++s) table.route(s, random_key128(rng));
  const auto c = table.counters();
  EXPECT_EQ(c.sessions_live, 2u);
  EXPECT_EQ(c.session_evictions, 3u);
}

// --- Farm vs reference ------------------------------------------------------------

TEST(Farm, MatchesReferenceAcrossModesDirectionsAndSessions) {
  farm::FarmConfig cfg;
  cfg.workers = 3;
  cfg.max_sessions = 8;
  farm::Farm f(cfg);

  std::mt19937 rng(42);
  constexpr int kSessions = 6;
  std::vector<farm::Key128> keys;
  for (int s = 0; s < kSessions; ++s) keys.push_back(random_key128(rng));

  // Build all requests (and expectations) first, then submit the whole burst
  // so completions genuinely interleave across workers.
  std::vector<farm::Request> reqs;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t session = rng() % kSessions;
    reqs.push_back(random_request(rng, session, keys[session]));
    expect.push_back(reference(reqs.back()));
  }
  std::vector<std::future<farm::Result>> futures;
  for (auto& r : reqs) futures.push_back(f.submit(r));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    EXPECT_EQ(res.data, expect[i]) << "request " << i << " mode "
                                   << farm::mode_name(reqs[i].mode)
                                   << (reqs[i].encrypt ? " enc" : " dec");
  }

  const auto st = f.stats();
  EXPECT_EQ(st.requests, reqs.size());
  EXPECT_GT(st.key_hits, 0u);  // six sessions over three cores must re-hit keys
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_LE(st.queue_high_water, cfg.queue_capacity);
}

// One farm, three geometries: sessions carry 16/24/32-byte keys and every
// job runs on a matching-geometry engine (cycle engines build sibling
// engines lazily per key size), bit-exact against the per-size oracle.
TEST(Farm, MixedKeySizesMatchPerGeometryOracle) {
  for (const auto kind :
       {engine::EngineKind::kSoftware, engine::EngineKind::kBehavioral}) {
    farm::FarmConfig cfg;
    cfg.workers = 2;
    cfg.engine = kind;
    farm::Farm f(cfg);

    std::mt19937 rng(17);
    std::vector<farm::Request> reqs;
    std::vector<std::vector<std::uint8_t>> expect;
    for (int i = 0; i < 18; ++i) {
      const int bits = 128 + 64 * (i % 3);
      std::array<std::uint8_t, 32> raw{};
      for (auto& b : raw) b = static_cast<std::uint8_t>(rng());
      farm::Request req;
      req.session_id = static_cast<std::uint64_t>(i % 6);
      req.key = *farm::KeyBytes::from(
          std::span(raw).first(static_cast<std::size_t>(bits / 8)));
      EXPECT_EQ(req.key.bits(), bits);
      for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
      req.mode = static_cast<farm::Mode>(i % 3);
      req.encrypt = (i % 2) == 0;
      req.payload.resize(req.mode == farm::Mode::kCtr ? 37 : 48);
      for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
      expect.push_back(reference(req));
      reqs.push_back(std::move(req));
    }
    std::vector<std::future<farm::Result>> futures;
    for (auto& r : reqs) futures.push_back(f.submit(r));
    for (std::size_t i = 0; i < futures.size(); ++i)
      EXPECT_EQ(futures[i].get().data, expect[i])
          << engine::kind_name(kind) << " request " << i << " ("
          << reqs[i].key.bits() << "-bit)";
    EXPECT_EQ(f.stats().requests, reqs.size());
  }
}

// KeyBytes itself: length-aware equality and the validating constructor.
TEST(Farm, KeyBytesLengthSemantics) {
  std::array<std::uint8_t, 16> a16{};
  std::array<std::uint8_t, 24> a24{};
  std::array<std::uint8_t, 32> a32{};
  const farm::KeyBytes k16 = a16, k24 = a24, k32 = a32;
  EXPECT_EQ(k16.bits(), 128);
  EXPECT_EQ(k24.bits(), 192);
  EXPECT_EQ(k32.bits(), 256);
  // Same bytes, different lengths: distinct keys (a session table slot
  // holding the zero AES-128 key must not hit for the zero AES-192 key).
  EXPECT_FALSE(k16 == k24);
  EXPECT_FALSE(k24 == k32);
  EXPECT_TRUE(k16 == farm::KeyBytes(a16));
  EXPECT_EQ(k24.view().size(), 24u);
  EXPECT_FALSE(farm::KeyBytes::from(std::vector<std::uint8_t>(20)).has_value());
  EXPECT_FALSE(farm::KeyBytes::from(std::vector<std::uint8_t>(0)).has_value());
  EXPECT_TRUE(farm::KeyBytes::from(std::vector<std::uint8_t>(24)).has_value());
}

TEST(Farm, CtrFanoutIsBitExactIncludingRaggedTail) {
  farm::FarmConfig cfg;
  cfg.workers = 4;
  cfg.ctr_chunk_blocks = 4;
  cfg.ctr_fanout_min_blocks = 8;
  farm::Farm f(cfg);

  std::mt19937 rng(7);
  farm::Request req;
  req.session_id = 1;
  req.mode = farm::Mode::kCtr;
  req.key = random_key128(rng);
  req.iv = random_key128(rng);
  req.payload = random_payload(rng, 40 * 16 + 11);  // 41 blocks, ragged tail
  const auto expect = reference(req);

  const auto res = f.process(req);
  EXPECT_EQ(res.data, expect);
  EXPECT_GT(res.chunks, 1u);
  EXPECT_EQ(res.worker, -1);

  const auto st = f.stats();
  EXPECT_EQ(st.ctr_fanouts, 1u);
  EXPECT_EQ(st.ctr_chunks, 11u);  // ceil(41 / 4)
}

TEST(Farm, CtrFanoutCrossesCounterCarryBoundary) {
  // Initial counter 0x...FFFE: chunk seeds must carry into high bytes.
  farm::FarmConfig cfg;
  cfg.workers = 3;
  cfg.ctr_chunk_blocks = 2;
  cfg.ctr_fanout_min_blocks = 4;
  farm::Farm f(cfg);

  std::mt19937 rng(8);
  farm::Request req;
  req.mode = farm::Mode::kCtr;
  req.key = random_key128(rng);
  req.iv.fill(0xff);
  req.iv[15] = 0xfe;
  req.payload = random_payload(rng, 12 * 16);
  EXPECT_EQ(f.process(req).data, reference(req));
}

TEST(Farm, OutOfOrderCompletionStaysConsistent) {
  // One huge CBC job pins a worker while small jobs on other sessions race
  // past it; every future must still resolve to its own request's bytes.
  farm::FarmConfig cfg;
  cfg.workers = 2;
  farm::Farm f(cfg);

  std::mt19937 rng(21);
  farm::Request big;
  big.session_id = 100;
  big.mode = farm::Mode::kCbc;
  big.key = random_key128(rng);
  big.iv = random_key128(rng);
  big.payload = random_payload(rng, 200 * 16);
  const auto big_expect = reference(big);
  auto big_future = f.submit(big);

  std::vector<farm::Request> small;
  std::vector<std::vector<std::uint8_t>> small_expect;
  std::vector<std::future<farm::Result>> small_futures;
  for (int i = 0; i < 12; ++i) {
    // Distinct keys force the scheduler to spread over both workers.
    const auto key = random_key128(rng);
    small.push_back(random_request(rng, 200 + static_cast<std::uint64_t>(i), key));
    small_expect.push_back(reference(small.back()));
    small_futures.push_back(f.submit(small.back()));
  }
  for (std::size_t i = 0; i < small_futures.size(); ++i)
    EXPECT_EQ(small_futures[i].get().data, small_expect[i]) << "small request " << i;
  EXPECT_EQ(big_future.get().data, big_expect);
}

TEST(Farm, BackpressureShedsAndAcceptedWorkCompletes) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  farm::Farm f(cfg);

  std::mt19937 rng(5);
  const auto key = random_key128(rng);
  std::vector<std::vector<std::uint8_t>> expect;
  std::vector<std::future<farm::Result>> accepted;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 40; ++i) {
    farm::Request req;
    req.session_id = 1;
    req.mode = farm::Mode::kCbc;
    req.key = key;
    req.iv = random_key128(rng);
    req.payload = random_payload(rng, 64 * 16);  // slow enough to outpace submission
    auto exp = reference(req);
    if (auto fut = f.try_submit(std::move(req))) {
      accepted.push_back(std::move(*fut));
      expect.push_back(std::move(exp));
    } else {
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u) << "queue of 2 absorbed 40 back-to-back requests";
  ASSERT_FALSE(accepted.empty());
  for (std::size_t i = 0; i < accepted.size(); ++i)
    EXPECT_EQ(accepted[i].get().data, expect[i]);
  const auto st = f.stats();
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.requests, accepted.size());
}

TEST(Farm, KeyAffinitySkipsSetupCycles) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  farm::Farm f(cfg);

  std::mt19937 rng(11);
  const auto ka = random_key128(rng), kb = random_key128(rng);
  const auto mk_req = [&](std::uint64_t session, const farm::Key128& key) {
    farm::Request req;
    req.session_id = session;
    req.mode = farm::Mode::kEcb;
    req.key = key;
    req.payload = random_payload(rng, 16);
    return req;
  };

  EXPECT_FALSE(f.process(mk_req(1, ka)).key_was_hot);  // cold: bus write + setup
  EXPECT_FALSE(f.process(mk_req(2, kb)).key_was_hot);
  std::uint64_t hot_setup = 0;
  for (int i = 0; i < 10; ++i) {
    const auto ra = f.process(mk_req(1, ka));
    const auto rb = f.process(mk_req(2, kb));
    EXPECT_TRUE(ra.key_was_hot) << i;
    EXPECT_TRUE(rb.key_was_hot) << i;
    hot_setup += ra.setup_cycles + rb.setup_cycles;
  }
  EXPECT_EQ(hot_setup, 0u);  // reuse is free — the point of the affinity table
  const auto st = f.stats();
  EXPECT_EQ(st.key_loads, 2u);
  EXPECT_EQ(st.key_hits, 20u);
}

TEST(Farm, RejectsPartialBlocksForEcbAndCbc) {
  farm::Farm f(farm::FarmConfig{.workers = 1});
  farm::Request req;
  req.mode = farm::Mode::kEcb;
  req.payload.assign(17, 0);
  EXPECT_THROW(f.submit(req), std::invalid_argument);
  req.mode = farm::Mode::kCbc;
  EXPECT_THROW((void)f.try_submit(req), std::invalid_argument);
  req.mode = farm::Mode::kCtr;  // CTR takes any length
  EXPECT_EQ(f.process(req).data.size(), 17u);
}

TEST(Farm, EmptyPayloadCompletes) {
  farm::Farm f(farm::FarmConfig{.workers = 1});
  farm::Request req;
  req.mode = farm::Mode::kEcb;
  const auto res = f.process(req);
  EXPECT_TRUE(res.data.empty());
  EXPECT_EQ(f.stats().requests, 1u);
}

TEST(Farm, EngineKindsProduceIdenticalResults) {
  // The same burst through a farm of each CipherEngine kind — software,
  // behavioral RTL and the synthesized gate netlist — must be
  // byte-identical to the reference and to each other. The netlist
  // workers simulate the full gate network, so the workload is small;
  // this is the concurrency face of tests/test_engine_conformance.cpp.
  std::mt19937 rng(1234);
  const auto key = random_key128(rng);
  std::vector<farm::Request> reqs;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int i = 0; i < 6; ++i) {
    farm::Request req;
    req.session_id = static_cast<std::uint64_t>(i % 2);
    req.key = key;
    req.iv = random_key128(rng);
    req.mode = static_cast<farm::Mode>(i % 3);
    req.encrypt = (i & 1) != 0 || req.mode == farm::Mode::kCtr;
    req.payload = random_payload(rng, 16);
    reqs.push_back(req);
    expect.push_back(reference(req));
  }

  for (const auto kind :
       {aesip::engine::EngineKind::kSoftware, aesip::engine::EngineKind::kBehavioral,
        aesip::engine::EngineKind::kNetlist}) {
    farm::FarmConfig cfg;
    cfg.workers = 2;
    cfg.engine = kind;
    farm::Farm f(cfg);
    std::vector<std::future<farm::Result>> futures;
    for (auto& r : reqs) futures.push_back(f.submit(r));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get().data, expect[i])
          << "engine " << aesip::engine::kind_name(kind) << " request " << i;
    }
    const auto st = f.stats();
    EXPECT_EQ(st.engine, aesip::engine::kind_name(kind));
    EXPECT_EQ(st.requests, reqs.size());
    EXPECT_EQ(st.rejected, 0u);
  }
}
