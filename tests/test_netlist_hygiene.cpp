// Structural hygiene: Netlist::validate() on every construction and
// transformation path in the repository, and the dead-logic sweep pass.
#include <gtest/gtest.h>

#include "core/ip_synth.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "seu/tmr.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

void expect_valid(const Netlist& nl, const char* what) {
  const auto problems = nl.validate();
  EXPECT_TRUE(problems.empty()) << what << ": " << (problems.empty() ? "" : problems.front())
                                << " (" << problems.size() << " problems)";
}

}  // namespace

TEST(Validate, EmptyNetlistIsValid) {
  Netlist nl;
  expect_valid(nl, "empty");
}

TEST(Validate, FlagsUndrivenNet) {
  Netlist nl;
  const NetId floating = nl.new_net();
  const NetId a = nl.add_input("a");
  nl.add_output(nl.gate_and(a, floating), "y");
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("undriven"), std::string::npos);
}

TEST(Validate, FlagsDoubleDriver) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.new_net();
  nl.add_dff_with_out(q, a);
  nl.add_dff_with_out(q, a);  // same output net twice
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("driven twice"), std::string::npos);
}

TEST(Validate, FlagsDuplicatePortNames) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output(a, "y");
  nl.add_output(a, "y");
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("duplicate port"), std::string::npos);
}

TEST(Validate, EveryFlowArtifactIsWellFormed) {
  for (const auto mode : {IpMode::kEncrypt, IpMode::kDecrypt, IpMode::kBoth}) {
    for (const bool rom : {true, false}) {
      const Netlist ip = core::synthesize_ip(mode, rom);
      expect_valid(ip, "synthesized IP");
      const auto mapped = txm::map_to_luts(ip);
      expect_valid(mapped.mapped, "mapped IP");
    }
  }
}

TEST(Validate, TmrAndSweepArtifactsAreWellFormed) {
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  expect_valid(aesip::seu::harden_tmr(mapped.mapped).hardened, "TMR netlist");
  expect_valid(txm::sweep_unused(mapped.mapped).swept, "swept netlist");
}

// --- sweep --------------------------------------------------------------------------

TEST(Sweep, RemovesDanglingLogic) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  const std::array<NetId, 2> used{in[0], in[1]};
  const NetId y = nl.add_lut(0x6, used);
  nl.add_output(y, "y");
  // Dead logic: a LUT and a register nobody reads.
  const std::array<NetId, 2> dead_in{in[2], in[3]};
  const NetId dead = nl.add_lut(0x8, dead_in);
  (void)nl.add_dff(dead);
  const auto r = txm::sweep_unused(nl);
  EXPECT_EQ(r.stats.removed_luts, 1u);
  EXPECT_EQ(r.stats.removed_dffs, 1u);
  EXPECT_EQ(r.swept.stats().luts, 1u);
  EXPECT_EQ(r.swept.stats().dffs, 0u);
}

TEST(Sweep, KeepsFeedbackState) {
  // A counter's registers feed each other and the output: all live.
  Netlist nl;
  Bus q;
  for (int i = 0; i < 3; ++i) q.push_back(nl.new_net());
  const Bus d = nl.increment(q);
  for (int i = 0; i < 3; ++i)
    nl.add_dff_with_out(q[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(i)]);
  nl.add_output(q[2], "msb");  // only the MSB is observed
  const auto mapped = txm::map_to_luts(nl);
  const auto r = txm::sweep_unused(mapped.mapped);
  EXPECT_EQ(r.stats.removed_dffs, 0u)
      << "lower counter bits feed the MSB through the carry chain";
  // Behaviour preserved.
  nlist::Evaluator ev(r.swept);
  ev.settle();
  int msb_changes = 0;
  bool prev = ev.get(r.swept.outputs()[0].net);
  for (int c = 0; c < 16; ++c) {
    ev.clock();
    const bool cur = ev.get(r.swept.outputs()[0].net);
    if (cur != prev) ++msb_changes;
    prev = cur;
  }
  EXPECT_EQ(msb_changes, 4) << "3-bit counter MSB toggles every 4 cycles";
}

TEST(Sweep, DropsWholeDeadRom) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  std::array<std::uint8_t, 256> table{};
  (void)nl.add_rom(table, addr, "dead");
  nl.add_output(addr[0], "y");
  const auto r = txm::sweep_unused(nl);
  EXPECT_EQ(r.stats.removed_roms, 1u);
  EXPECT_EQ(r.swept.stats().roms, 0u);
}

TEST(Sweep, MappedIpLosesOnlyTheDebugRegister) {
  // The encrypt IP carries one unused decode register (first_round is only
  // consumed by decrypt-capable variants); nothing else may be dead.
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const auto r = txm::sweep_unused(mapped.mapped);
  EXPECT_LE(r.stats.removed_dffs, 2u);
  EXPECT_LE(r.stats.removed_luts, 4u);
  EXPECT_EQ(r.stats.removed_roms, 0u);
}

TEST(Sweep, RejectsUnmappedGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output(nl.gate_not(a), "y");
  EXPECT_THROW(txm::sweep_unused(nl), std::invalid_argument);
}
