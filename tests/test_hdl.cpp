// Simulation kernel: two-phase signal semantics, delta settling,
// combinational-cycle detection, synchronous register behaviour and VCD
// output.
#include <gtest/gtest.h>

#include <sstream>

#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/vcd.hpp"
#include "hdl/word128.hpp"

namespace hdl = aesip::hdl;

namespace {

/// A register: q <= d at every tick.
class Reg final : public hdl::Module {
 public:
  Reg(hdl::Simulator& sim, std::string name)
      : hdl::Module(name), d(sim, name + ".d", 8), q(sim, name + ".q", 8) {
    sim.add_module(*this);
  }
  hdl::Signal<std::uint8_t> d, q;
  void tick() override { q.write(d.read()); }
};

/// Combinational +1.
class Inc final : public hdl::Module {
 public:
  Inc(hdl::Simulator& sim, std::string name, hdl::Signal<std::uint8_t>& in,
      hdl::Signal<std::uint8_t>& out)
      : hdl::Module(name), in_(in), out_(out) {
    sim.add_module(*this);
  }
  void evaluate() override { out_.write(static_cast<std::uint8_t>(in_.read() + 1)); }

 private:
  hdl::Signal<std::uint8_t>& in_;
  hdl::Signal<std::uint8_t>& out_;
};

/// Deliberately oscillating process: out = !out.
class Oscillator final : public hdl::Module {
 public:
  Oscillator(hdl::Simulator& sim) : hdl::Module("osc"), out(sim, "osc.out", 1) {
    sim.add_module(*this);
  }
  hdl::Signal<bool> out;
  void evaluate() override { out.write(!out.read()); }
};

}  // namespace

TEST(Hdl, SignalTwoPhaseSemantics) {
  hdl::Simulator sim;
  hdl::Signal<std::uint32_t> s(sim, "s", 32, 5);
  EXPECT_EQ(s.read(), 5u);
  s.write(7);
  EXPECT_EQ(s.read(), 5u) << "write must not be visible before commit";
  EXPECT_TRUE(s.commit());
  EXPECT_EQ(s.read(), 7u);
  EXPECT_FALSE(s.commit()) << "recommit without a new write reports no change";
}

TEST(Hdl, SettlePropagatesThroughChains) {
  hdl::Simulator sim;
  hdl::Signal<std::uint8_t> a(sim, "a", 8);
  hdl::Signal<std::uint8_t> b(sim, "b", 8);
  hdl::Signal<std::uint8_t> c(sim, "c", 8);
  Inc i1(sim, "i1", a, b);
  Inc i2(sim, "i2", b, c);
  a.write(10);
  sim.settle();
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(c.read(), 12);
}

TEST(Hdl, SettleThrowsOnCombinationalCycle) {
  hdl::Simulator sim;
  Oscillator osc(sim);
  EXPECT_THROW(sim.settle(), std::runtime_error);
}

TEST(Hdl, RegistersSamplePreEdgeValues) {
  // Shift chain r1 -> r2: both ticks see pre-edge values, so a value takes
  // two cycles to traverse two registers.
  hdl::Simulator sim;
  Reg r1(sim, "r1");
  Reg r2(sim, "r2");
  Inc wire(sim, "wire", r1.q, r2.d);  // r2.d = r1.q + 1 combinationally
  r1.d.write(41);
  sim.step();
  EXPECT_EQ(r1.q.read(), 41);
  EXPECT_EQ(r2.q.read(), 1) << "r2 sampled the old r1.q (0) + 1 == 1";
  sim.step();
  EXPECT_EQ(r2.q.read(), 42);
}

TEST(Hdl, CycleCounterAdvances) {
  hdl::Simulator sim;
  EXPECT_EQ(sim.cycle(), 0u);
  sim.run(25);
  EXPECT_EQ(sim.cycle(), 25u);
}

TEST(Hdl, Word128HexRoundTrip) {
  const auto w = hdl::Word128::from_hex("00112233445566778899aabbccddeeff");
  EXPECT_EQ(w.to_hex(), "00112233445566778899aabbccddeeff");
  EXPECT_EQ(w.b[0], 0x00);
  EXPECT_EQ(w.b[15], 0xff);
}

TEST(Hdl, Word128ColumnPacking) {
  const auto w = hdl::Word128::from_hex("0123456789abcdef0011223344556677");
  // Column 0 = bytes 01 23 45 67 with byte 0 in the low bits.
  EXPECT_EQ(w.column(0), 0x67452301u);
  hdl::Word128 v = w;
  v.set_column(0, 0x67452301u);
  EXPECT_EQ(v.to_hex(), w.to_hex());
  v.set_column(3, 0xdeadbeefu);
  EXPECT_EQ(v.b[12], 0xef);
  EXPECT_EQ(v.b[15], 0xde);
}

TEST(Hdl, Word128XorAndEquality) {
  const auto a = hdl::Word128::from_hex("ffffffffffffffffffffffffffffffff");
  const auto b = hdl::Word128::from_hex("0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f");
  EXPECT_EQ((a ^ b).to_hex(), "f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0");
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE((a ^ a) == hdl::Word128{});
}

TEST(Hdl, Word128FromHexRejectsBadInput) {
  EXPECT_THROW(hdl::Word128::from_hex("00"), std::invalid_argument);
  EXPECT_THROW(hdl::Word128::from_hex("zz112233445566778899aabbccddeeff"),
               std::invalid_argument);
}

TEST(Hdl, VcdContainsHeaderAndChanges) {
  hdl::Simulator sim;
  Reg r(sim, "r");
  std::ostringstream os;
  hdl::VcdWriter vcd(sim, os, "tb");
  r.d.write(3);
  sim.step();
  sim.step();
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8"), std::string::npos);
  EXPECT_NE(out.find("r.q"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("b00000011"), std::string::npos) << out;
}

TEST(Hdl, VcdOmitsUnchangedSignals) {
  hdl::Simulator sim;
  Reg r(sim, "r");
  std::ostringstream os;
  hdl::VcdWriter vcd(sim, os, "tb");
  const auto header_len = os.str().size();
  sim.run(5);  // nothing changes after the initial sample
  // Only timestamps-with-changes are emitted; no change -> no growth.
  EXPECT_EQ(os.str().size(), header_len);
}
