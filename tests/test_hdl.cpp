// Simulation kernel: two-phase signal semantics, delta settling,
// combinational-cycle detection, synchronous register behaviour and VCD
// output.
#include <gtest/gtest.h>

#include <sstream>

#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/vcd.hpp"
#include "hdl/word128.hpp"

namespace hdl = aesip::hdl;

namespace {

/// A register: q <= d at every tick.
class Reg final : public hdl::Module {
 public:
  Reg(hdl::Simulator& sim, std::string name)
      : hdl::Module(name), d(sim, name + ".d", 8), q(sim, name + ".q", 8) {
    sim.add_module(*this);
  }
  hdl::Signal<std::uint8_t> d, q;
  void tick() override { q.write(d.read()); }
};

/// Combinational +1.
class Inc final : public hdl::Module {
 public:
  Inc(hdl::Simulator& sim, std::string name, hdl::Signal<std::uint8_t>& in,
      hdl::Signal<std::uint8_t>& out)
      : hdl::Module(name), in_(in), out_(out) {
    sim.add_module(*this);
  }
  void evaluate() override { out_.write(static_cast<std::uint8_t>(in_.read() + 1)); }

 private:
  hdl::Signal<std::uint8_t>& in_;
  hdl::Signal<std::uint8_t>& out_;
};

/// Deliberately oscillating process: out = !out.
class Oscillator final : public hdl::Module {
 public:
  Oscillator(hdl::Simulator& sim) : hdl::Module("osc"), out(sim, "osc.out", 1) {
    sim.add_module(*this);
  }
  hdl::Signal<bool> out;
  void evaluate() override { out.write(!out.read()); }
};

}  // namespace

TEST(Hdl, SignalTwoPhaseSemantics) {
  hdl::Simulator sim;
  hdl::Signal<std::uint32_t> s(sim, "s", 32, 5);
  EXPECT_EQ(s.read(), 5u);
  s.write(7);
  EXPECT_EQ(s.read(), 5u) << "write must not be visible before commit";
  EXPECT_TRUE(s.commit());
  EXPECT_EQ(s.read(), 7u);
  EXPECT_FALSE(s.commit()) << "recommit without a new write reports no change";
}

TEST(Hdl, SettlePropagatesThroughChains) {
  hdl::Simulator sim;
  hdl::Signal<std::uint8_t> a(sim, "a", 8);
  hdl::Signal<std::uint8_t> b(sim, "b", 8);
  hdl::Signal<std::uint8_t> c(sim, "c", 8);
  Inc i1(sim, "i1", a, b);
  Inc i2(sim, "i2", b, c);
  a.write(10);
  sim.settle();
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(c.read(), 12);
}

TEST(Hdl, SettleThrowsOnCombinationalCycle) {
  hdl::Simulator sim;
  Oscillator osc(sim);
  EXPECT_THROW(sim.settle(), std::runtime_error);
}

TEST(Hdl, NonConvergenceErrorNamesOffendingModules) {
  hdl::Simulator sim;
  Oscillator osc(sim);          // still driving changes at the delta limit
  Reg innocent(sim, "bystander");  // settled; must NOT be blamed
  try {
    sim.settle();
    FAIL() << "settle() must throw on an oscillating network";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("osc"), std::string::npos) << what;
    EXPECT_EQ(what.find("bystander"), std::string::npos) << what;
  }
}

TEST(Hdl, RegistersSamplePreEdgeValues) {
  // Shift chain r1 -> r2: both ticks see pre-edge values, so a value takes
  // two cycles to traverse two registers.
  hdl::Simulator sim;
  Reg r1(sim, "r1");
  Reg r2(sim, "r2");
  Inc wire(sim, "wire", r1.q, r2.d);  // r2.d = r1.q + 1 combinationally
  r1.d.write(41);
  sim.step();
  EXPECT_EQ(r1.q.read(), 41);
  EXPECT_EQ(r2.q.read(), 1) << "r2 sampled the old r1.q (0) + 1 == 1";
  sim.step();
  EXPECT_EQ(r2.q.read(), 42);
}

TEST(Hdl, CycleCounterAdvances) {
  hdl::Simulator sim;
  EXPECT_EQ(sim.cycle(), 0u);
  sim.run(25);
  EXPECT_EQ(sim.cycle(), 25u);
}

TEST(Hdl, Word128HexRoundTrip) {
  const auto w = hdl::Word128::from_hex("00112233445566778899aabbccddeeff");
  EXPECT_EQ(w.to_hex(), "00112233445566778899aabbccddeeff");
  EXPECT_EQ(w.b[0], 0x00);
  EXPECT_EQ(w.b[15], 0xff);
}

TEST(Hdl, Word128ColumnPacking) {
  const auto w = hdl::Word128::from_hex("0123456789abcdef0011223344556677");
  // Column 0 = bytes 01 23 45 67 with byte 0 in the low bits.
  EXPECT_EQ(w.column(0), 0x67452301u);
  hdl::Word128 v = w;
  v.set_column(0, 0x67452301u);
  EXPECT_EQ(v.to_hex(), w.to_hex());
  v.set_column(3, 0xdeadbeefu);
  EXPECT_EQ(v.b[12], 0xef);
  EXPECT_EQ(v.b[15], 0xde);
}

TEST(Hdl, Word128XorAndEquality) {
  const auto a = hdl::Word128::from_hex("ffffffffffffffffffffffffffffffff");
  const auto b = hdl::Word128::from_hex("0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f");
  EXPECT_EQ((a ^ b).to_hex(), "f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0");
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE((a ^ a) == hdl::Word128{});
}

TEST(Hdl, Word128FromHexRejectsBadInput) {
  EXPECT_THROW(hdl::Word128::from_hex("00"), std::invalid_argument);
  EXPECT_THROW(hdl::Word128::from_hex("zz112233445566778899aabbccddeeff"),
               std::invalid_argument);
}

TEST(Hdl, VcdContainsHeaderAndChanges) {
  hdl::Simulator sim;
  Reg r(sim, "r");
  std::ostringstream os;
  hdl::VcdWriter vcd(sim, os, "tb");
  r.d.write(3);
  sim.step();
  sim.step();
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8"), std::string::npos);
  EXPECT_NE(out.find("r.q"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("b00000011"), std::string::npos) << out;
}

// --- static-schedule settle (docs/hdl.md) ----------------------------------

namespace {

/// Build the same 3-stage pipeline on any simulator: r1 -> +1 -> r2 -> +1
/// -> r3, feedback r3.q + 1 -> r1.d. Schedulable: single writer per
/// signal, no module reads its own output.
struct Pipeline {
  Reg r1, r2, r3;
  Inc i1, i2, fb;
  explicit Pipeline(hdl::Simulator& sim)
      : r1(sim, "r1"),
        r2(sim, "r2"),
        r3(sim, "r3"),
        i1(sim, "i1", r1.q, r2.d),
        i2(sim, "i2", r2.q, r3.d),
        fb(sim, "fb", r3.q, r1.d) {}
};

/// Converging feedback: out = out | in. Settles (idempotent after one
/// delta) but reads its own output, so it must never get a schedule.
class SelfReader final : public hdl::Module {
 public:
  SelfReader(hdl::Simulator& sim, hdl::Signal<std::uint8_t>& in)
      : hdl::Module("selfreader"), out(sim, "selfreader.out", 8), in_(in) {
    sim.add_module(*this);
  }
  hdl::Signal<std::uint8_t> out;
  void evaluate() override {
    const auto v = static_cast<std::uint8_t>(out.read() | in_.read());
    if (v != out.read()) out.write(v);
  }

 private:
  hdl::Signal<std::uint8_t>& in_;
};

}  // namespace

TEST(HdlScheduler, ScheduledRunMatchesDeltaOnlyRun) {
  // Two identical networks, one per strategy; every architectural value
  // must agree on every cycle, across the learn -> scheduled transition.
  hdl::Simulator auto_sim, delta_sim;
  delta_sim.set_settle_strategy(hdl::SettleStrategy::kDeltaOnly);
  Pipeline a(auto_sim), d(delta_sim);
  for (int cycle = 0; cycle < 3 * hdl::Simulator::kLearnSettles; ++cycle) {
    auto_sim.step();
    delta_sim.step();
    ASSERT_EQ(a.r1.q.read(), d.r1.q.read()) << "cycle " << cycle;
    ASSERT_EQ(a.r2.q.read(), d.r2.q.read()) << "cycle " << cycle;
    ASSERT_EQ(a.r3.q.read(), d.r3.q.read()) << "cycle " << cycle;
  }
  const auto& as = auto_sim.scheduler_stats();
  EXPECT_TRUE(as.schedule_built);
  EXPECT_FALSE(as.schedule_disabled);
  EXPECT_EQ(as.learn_settles, static_cast<std::uint64_t>(hdl::Simulator::kLearnSettles));
  EXPECT_GT(as.scheduled_settles, 0u);
  EXPECT_EQ(as.fallbacks, 0u);
  // i1/i2/fb all read only register outputs: a single combinational level.
  EXPECT_EQ(as.levels, 1);

  const auto& ds = delta_sim.scheduler_stats();
  EXPECT_FALSE(ds.schedule_built);
  EXPECT_EQ(ds.scheduled_settles, 0u);
  EXPECT_GT(ds.delta_settles, 0u);
}

TEST(HdlScheduler, ChainedCombinationalLogicLevelizes) {
  // a -> +1 -> b -> +1 -> c is two dependent levels.
  hdl::Simulator sim;
  hdl::Signal<std::uint8_t> a(sim, "a", 8);
  hdl::Signal<std::uint8_t> b(sim, "b", 8);
  hdl::Signal<std::uint8_t> c(sim, "c", 8);
  Inc i1(sim, "i1", a, b);
  Inc i2(sim, "i2", b, c);
  for (int i = 0; i <= hdl::Simulator::kLearnSettles; ++i) {
    a.write(static_cast<std::uint8_t>(i));
    sim.settle();
    ASSERT_EQ(c.read(), static_cast<std::uint8_t>(i + 2));
  }
  ASSERT_TRUE(sim.scheduler_stats().schedule_built);
  EXPECT_EQ(sim.scheduler_stats().levels, 2);
  // Keep driving through the scheduled path: results must not change.
  for (int i = 0; i < 20; ++i) {
    a.write(static_cast<std::uint8_t>(100 + i));
    sim.settle();
    ASSERT_EQ(c.read(), static_cast<std::uint8_t>(102 + i));
  }
  EXPECT_GT(sim.scheduler_stats().scheduled_settles, 0u);
}

TEST(HdlScheduler, SelfReadingModuleStaysOnDeltaLoop) {
  hdl::Simulator sim;
  hdl::Signal<std::uint8_t> in(sim, "in", 8);
  SelfReader sr(sim, in);
  for (int i = 0; i < 2 * hdl::Simulator::kLearnSettles; ++i) {
    in.write(static_cast<std::uint8_t>(1u << (i % 8)));
    sim.settle();
  }
  EXPECT_EQ(sr.out.read(), 0xff);
  EXPECT_FALSE(sim.scheduler_stats().schedule_built);
  EXPECT_TRUE(sim.scheduler_stats().schedule_disabled);
  // Disabled scheduling is still correct scheduling: keep settling.
  in.write(0);
  sim.settle();
  EXPECT_EQ(sr.out.read(), 0xff);
}

TEST(HdlScheduler, StrategySwitchKeepsLearnedSchedule) {
  hdl::Simulator sim;
  Pipeline p(sim);
  sim.run(hdl::Simulator::kLearnSettles);  // 2 settles per step: learned
  ASSERT_TRUE(sim.scheduler_stats().schedule_built);
  const auto scheduled_before = sim.scheduler_stats().scheduled_settles;

  sim.set_settle_strategy(hdl::SettleStrategy::kDeltaOnly);
  sim.run(10);
  EXPECT_EQ(sim.scheduler_stats().scheduled_settles, scheduled_before)
      << "kDeltaOnly must not use the schedule";
  EXPECT_TRUE(sim.scheduler_stats().schedule_built) << "but must keep it";

  sim.set_settle_strategy(hdl::SettleStrategy::kAuto);
  sim.run(10);
  EXPECT_GT(sim.scheduler_stats().scheduled_settles, scheduled_before)
      << "kAuto resumes the learned schedule without re-learning";
}

TEST(HdlScheduler, LateRegistrationDropsScheduleSafely) {
  // Adding a module after the schedule is built invalidates it; the kernel
  // must fall back to correctness, not evaluate a stale order.
  auto sim = std::make_unique<hdl::Simulator>();
  Pipeline p(*sim);
  sim->run(hdl::Simulator::kLearnSettles);
  ASSERT_TRUE(sim->scheduler_stats().schedule_built);
  hdl::Signal<std::uint8_t> tap(*sim, "tap", 8);
  Inc late(*sim, "late", p.r3.q, tap);
  sim->step();
  EXPECT_EQ(tap.read(), static_cast<std::uint8_t>(p.r3.q.read() + 1));
}

TEST(HdlScheduler, VcdOutputIdenticalUnderBothStrategies) {
  // The schedule commits in learned order; committed *values* per cycle
  // must be indistinguishable, so VCD dumps byte-compare equal.
  std::ostringstream auto_os, delta_os;
  {
    hdl::Simulator sim;
    Pipeline p(sim);
    hdl::VcdWriter vcd(sim, auto_os, "tb");
    sim.run(2 * hdl::Simulator::kLearnSettles);
  }
  {
    hdl::Simulator sim;
    sim.set_settle_strategy(hdl::SettleStrategy::kDeltaOnly);
    Pipeline p(sim);
    hdl::VcdWriter vcd(sim, delta_os, "tb");
    sim.run(2 * hdl::Simulator::kLearnSettles);
  }
  EXPECT_EQ(auto_os.str(), delta_os.str());
}

TEST(Hdl, VcdOmitsUnchangedSignals) {
  hdl::Simulator sim;
  Reg r(sim, "r");
  std::ostringstream os;
  hdl::VcdWriter vcd(sim, os, "tb");
  const auto header_len = os.str().size();
  sim.run(5);  // nothing changes after the initial sample
  // Only timestamps-with-changes are emitted; no change -> no growth.
  EXPECT_EQ(os.str().size(), header_len);
}
