// Mapper fuzzing: random gate DAGs (seeded, reproducible) are technology
// mapped and then *proven* equivalent to their sources with the BDD
// engine; random sequential circuits are additionally co-simulated.  This
// generalizes the hand-written covering tests to thousands of structural
// corner cases (shared fanout, constants, deep chains, mux pyramids).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "bdd/netlist_bdd.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "netlist/writer.hpp"
#include "techmap/techmap.hpp"

namespace bdd = aesip::bdd;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

/// Random combinational DAG over `inputs` primary inputs.
Netlist random_comb(std::uint32_t seed, int inputs, int gates, int outputs) {
  std::mt19937 rng(seed);
  Netlist nl;
  std::vector<NetId> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(nl.add_input("in[" + std::to_string(i) + "]"));
  pool.push_back(nl.const0());
  pool.push_back(nl.const1());
  auto pick = [&] { return pool[rng() % pool.size()]; };
  for (int g = 0; g < gates; ++g) {
    NetId out;
    switch (rng() % 6) {
      case 0:
        out = nl.gate_not(pick());
        break;
      case 1:
        out = nl.gate_and(pick(), pick());
        break;
      case 2:
        out = nl.gate_or(pick(), pick());
        break;
      case 3:
        out = nl.gate_xor(pick(), pick());
        break;
      case 4:
        out = nl.gate_mux(pick(), pick(), pick());
        break;
      default: {
        const std::array<NetId, 3> ins{pick(), pick(), pick()};
        out = nl.add_lut(static_cast<std::uint16_t>(rng() & 0xff), ins);
        break;
      }
    }
    pool.push_back(out);
  }
  for (int o = 0; o < outputs; ++o)
    nl.add_output(pool[pool.size() - 1 - static_cast<std::size_t>(o)],
                  "out[" + std::to_string(o) + "]");
  return nl;
}

/// Random sequential circuit: a comb DAG plus registers with feedback.
Netlist random_seq(std::uint32_t seed, int inputs, int regs, int gates) {
  std::mt19937 rng(seed);
  Netlist nl;
  std::vector<NetId> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(nl.add_input("in[" + std::to_string(i) + "]"));
  Bus q;
  for (int r = 0; r < regs; ++r) {
    q.push_back(nl.new_net());
    pool.push_back(q.back());
  }
  auto pick = [&] { return pool[rng() % pool.size()]; };
  for (int g = 0; g < gates; ++g) {
    const int kind = static_cast<int>(rng() % 4);
    NetId out = kind == 0   ? nl.gate_not(pick())
                : kind == 1 ? nl.gate_and(pick(), pick())
                : kind == 2 ? nl.gate_xor(pick(), pick())
                            : nl.gate_mux(pick(), pick(), pick());
    pool.push_back(out);
  }
  for (int r = 0; r < regs; ++r) {
    const bool enabled = (rng() & 1) != 0;
    nl.add_dff_with_out(q[static_cast<std::size_t>(r)], pick(),
                        enabled ? pick() : nlist::kNoNet);
  }
  nl.add_output(q[0], "q0");
  nl.add_output(pool.back(), "comb");
  return nl;
}

}  // namespace

class MapperFuzzComb : public ::testing::TestWithParam<int> {};

TEST_P(MapperFuzzComb, MappedDagIsFormallyEquivalent) {
  const auto seed = static_cast<std::uint32_t>(GetParam());
  const Netlist nl = random_comb(seed, 6 + seed % 5, 40 + static_cast<int>(seed % 60), 6);
  ASSERT_TRUE(nl.validate().empty());
  const auto mapped = txm::map_to_luts(nl);
  ASSERT_TRUE(mapped.mapped.validate().empty());
  const auto r = bdd::prove_equivalent(nl, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << "seed " << seed << ": " << r.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperFuzzComb, ::testing::Range(0, 40));

class MapperFuzzSeq : public ::testing::TestWithParam<int> {};

TEST_P(MapperFuzzSeq, MappedSequentialIsFormallyEquivalent) {
  const auto seed = static_cast<std::uint32_t>(GetParam()) + 1000;
  const Netlist nl = random_seq(seed, 4, 5 + static_cast<int>(seed % 4), 30);
  ASSERT_TRUE(nl.validate().empty());
  const auto mapped = txm::map_to_luts(nl);
  const auto r = bdd::prove_equivalent(nl, mapped.mapped);
  EXPECT_TRUE(r.equivalent) << "seed " << seed << ": " << r.mismatch;
}

TEST_P(MapperFuzzSeq, MappedSequentialCoSimulates) {
  const auto seed = static_cast<std::uint32_t>(GetParam()) + 2000;
  const Netlist nl = random_seq(seed, 4, 6, 25);
  const auto mapped = txm::map_to_luts(nl);
  nlist::Evaluator e1(nl), e2(mapped.mapped);
  std::mt19937 rng(seed ^ 0xabcd);
  e1.settle();
  e2.settle();
  for (int cycle = 0; cycle < 64; ++cycle) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const bool v = (rng() & 1) != 0;
      e1.set(nl.inputs()[i].net, v);
      e2.set(mapped.mapped.inputs()[i].net, v);
    }
    e1.settle();
    e2.settle();
    for (std::size_t o = 0; o < nl.outputs().size(); ++o)
      ASSERT_EQ(e1.get(nl.outputs()[o].net), e2.get(mapped.mapped.outputs()[o].net))
          << "seed " << seed << " cycle " << cycle << " output " << o;
    e1.clock();
    e2.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperFuzzSeq, ::testing::Range(0, 25));

class SweepFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SweepFuzz, SweepNeverChangesObservableBehaviour) {
  // sweep_unused may drop state, so compare by co-simulation (outputs only).
  const auto seed = static_cast<std::uint32_t>(GetParam()) + 3000;
  const Netlist nl = random_seq(seed, 4, 6, 25);
  const auto mapped = txm::map_to_luts(nl);
  const auto swept = txm::sweep_unused(mapped.mapped);
  ASSERT_TRUE(swept.swept.validate().empty());
  nlist::Evaluator e1(mapped.mapped), e2(swept.swept);
  std::mt19937 rng(seed ^ 0x1234);
  e1.settle();
  e2.settle();
  for (int cycle = 0; cycle < 48; ++cycle) {
    for (std::size_t i = 0; i < mapped.mapped.inputs().size(); ++i) {
      const bool v = (rng() & 1) != 0;
      e1.set(mapped.mapped.inputs()[i].net, v);
      e2.set(swept.swept.inputs()[i].net, v);
    }
    e1.settle();
    e2.settle();
    for (std::size_t o = 0; o < mapped.mapped.outputs().size(); ++o)
      ASSERT_EQ(e1.get(mapped.mapped.outputs()[o].net), e2.get(swept.swept.outputs()[o].net))
          << "seed " << seed << " cycle " << cycle;
    e1.clock();
    e2.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepFuzz, ::testing::Range(0, 20));

class BlifFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BlifFuzz, RandomCircuitsSurviveTheBlifRoundTrip) {
  const auto seed = static_cast<std::uint32_t>(GetParam()) + 4000;
  const Netlist nl = random_comb(seed, 5, 35, 4);
  std::ostringstream os;
  nlist::write_blif(nl, os, "fuzz");
  std::istringstream is(os.str());
  const Netlist back = nlist::read_blif(is);
  const auto r = bdd::prove_equivalent(nl, back);
  EXPECT_TRUE(r.equivalent) << "seed " << seed << ": " << r.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifFuzz, ::testing::Range(0, 20));
