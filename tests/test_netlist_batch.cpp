// BatchEvaluator vs. Evaluator: the lane-packed compiled tape must agree
// bit-for-bit with the scalar interpreter on every netlist this repository
// can produce — every synthesized datapath block (all cell kinds, ROMs),
// random LUT networks over every arity, clock-enabled flip-flops with
// per-lane enables, and the full IP through the Table 1 protocol across
// partial batch widths. The scalar evaluator is the oracle; any divergence
// here is a compile bug in the tape, not a netlist bug.
//
// The whole suite runs against whatever backend AESIP_BATCH_BACKEND forces
// (the ctest matrix runs it once per compiled-in backend: u64, avx2,
// avx512, jit — and neon on aarch64).  When the forced backend is not
// supported on this host, every test skips with the reason, mirroring the
// hw<4 skips elsewhere in the suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "aes/sbox.hpp"
#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "netlist/batch_backend.hpp"
#include "netlist/batch_eval.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"

namespace nlist = aesip::netlist;
namespace aes = aesip::aes;
namespace core = aesip::core;
namespace farm = aesip::farm;
namespace fleet = aesip::fleet;
using nlist::BatchEvaluator;
using nlist::Bus;
using nlist::Evaluator;
using nlist::Netlist;

namespace {

/// Base fixture: skip with a reason when AESIP_BATCH_BACKEND forces a
/// backend this host cannot run (the backend-matrix ctest rows rely on
/// this — same shape as the hw<4 conformance skips).
class NetlistBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const auto forced = nlist::env_forced_backend();
        forced && !nlist::backend_supported(*forced))
      GTEST_SKIP() << "batch backend '" << nlist::backend_name(*forced)
                   << "' is not supported on this host";
  }
};

/// Drive every primary input with independent random data in EVERY lane
/// word (so a wide backend's upper words are exercised, not just word 0),
/// then check every primary output in every lane against the scalar
/// evaluator fed the corresponding lane's bits. Combinational only.
void check_comb_parity(const Netlist& nl, std::uint32_t seed, int rounds = 4) {
  Evaluator scalar(nl);
  BatchEvaluator batch(nl);
  std::mt19937_64 rng(seed);
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::pair<nlist::NetId, std::vector<std::uint64_t>>> stim;
    for (const auto& pin : nl.inputs()) {
      std::vector<std::uint64_t> words(batch.stride());
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        words[wi] = rng();
        batch.set_word(pin.net, words[wi], wi);
      }
      stim.emplace_back(pin.net, std::move(words));
    }
    batch.settle();
    for (std::size_t lane = 0; lane < batch.lanes(); ++lane) {
      for (const auto& [net, words] : stim)
        scalar.set(net, (words[lane / 64] >> (lane % 64)) & 1U);
      scalar.settle();
      for (const auto& pout : nl.outputs())
        ASSERT_EQ(scalar.get(pout.net), batch.get(pout.net, lane))
            << "output " << pout.name << " lane " << lane << " round " << r;
    }
  }
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

}  // namespace

// Every synthesized datapath block, lane-for-lane. Exercises every
// combinational cell kind the generators emit: primitive gates (xtime,
// MixColumn), pure wiring (ShiftRows), ROM macros, and the kLut networks of
// the Shannon and composite-field S-boxes.
TEST_F(NetlistBatch, SynthesizedBlocksMatchScalar) {
  struct Block {
    const char* name;
    void (*build)(Netlist&);
  };
  const Block blocks[] = {
      {"xtime",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_xtime(nl, nl.add_input_bus("a", 8)), "y");
       }},
      {"mix_column_fwd",
       [](Netlist& nl) {
         std::array<Bus, 4> in;
         for (int i = 0; i < 4; ++i)
           in[static_cast<std::size_t>(i)] = nl.add_input_bus("a" + std::to_string(i), 8);
         const auto out = nlist::synth_mix_column(nl, in, false);
         for (int i = 0; i < 4; ++i)
           nl.add_output_bus(out[static_cast<std::size_t>(i)], "y" + std::to_string(i));
       }},
      {"mix_column_inv",
       [](Netlist& nl) {
         std::array<Bus, 4> in;
         for (int i = 0; i < 4; ++i)
           in[static_cast<std::size_t>(i)] = nl.add_input_bus("a" + std::to_string(i), 8);
         const auto out = nlist::synth_mix_column(nl, in, true);
         for (int i = 0; i < 4; ++i)
           nl.add_output_bus(out[static_cast<std::size_t>(i)], "y" + std::to_string(i));
       }},
      {"mix_columns128_fwd",
       [](Netlist& nl) {
         nl.add_output_bus(
             nlist::synth_mix_columns128(nl, nl.add_input_bus("state", 128), false), "y");
       }},
      {"mix_columns128_inv",
       [](Netlist& nl) {
         nl.add_output_bus(
             nlist::synth_mix_columns128(nl, nl.add_input_bus("state", 128), true), "y");
       }},
      {"shift_rows128_fwd",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_shift_rows128(nl.add_input_bus("state", 128), false),
                           "y");
       }},
      {"shift_rows128_inv",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_shift_rows128(nl.add_input_bus("state", 128), true),
                           "y");
       }},
      {"sbox_rom",
       [](Netlist& nl) {
         nl.add_output_bus(
             nlist::synth_sbox_rom(nl, aes::kSBox, nl.add_input_bus("addr", 8), "sbox"), "y");
       }},
      {"sbox_logic",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_sbox_logic(nl, aes::kSBox, nl.add_input_bus("addr", 8)),
                           "y");
       }},
      {"sbox_composite_fwd",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_sbox_composite(nl, nl.add_input_bus("addr", 8), false),
                           "y");
       }},
      {"sbox_composite_inv",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_sbox_composite(nl, nl.add_input_bus("addr", 8), true),
                           "y");
       }},
      {"sub_word32_rom",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_sub_word32(nl, aes::kSBox, nl.add_input_bus("w", 32),
                                                   /*as_rom=*/true, "bank"),
                           "y");
       }},
      {"sub_word32_logic",
       [](Netlist& nl) {
         nl.add_output_bus(nlist::synth_sub_word32(nl, aes::kSBox, nl.add_input_bus("w", 32),
                                                   /*as_rom=*/false, "bank"),
                           "y");
       }},
  };
  std::uint32_t seed = 1;
  for (const auto& b : blocks) {
    SCOPED_TRACE(b.name);
    Netlist nl;
    b.build(nl);
    check_comb_parity(nl, seed++);
  }
}

// Random pre-mapped LUT networks across every legal arity (1..4) with
// random truth tables — the Shannon expansion's constant-cofactor collapse
// paths all get hit somewhere in here.
TEST_F(NetlistBatch, RandomLutNetworksMatchScalar) {
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE(seed);
    Netlist nl;
    std::mt19937 rng(1000 + seed);
    std::vector<nlist::NetId> pool = nl.add_input_bus("in", 8);
    pool.push_back(nl.const0());
    pool.push_back(nl.const1());
    Bus outs;
    for (int i = 0; i < 48; ++i) {
      const int arity = 1 + i % 4;
      std::vector<nlist::NetId> in(static_cast<std::size_t>(arity));
      for (auto& n : in) n = pool[rng() % pool.size()];
      // Unmasked masks include constant-0/constant-1 tables, so every
      // Shannon constant-cofactor collapse path gets exercised.
      const auto all = static_cast<std::uint16_t>((1U << (1U << arity)) - 1U);
      const auto mask = static_cast<std::uint16_t>(rng() & all);
      const nlist::NetId q = nl.add_lut(mask, in);
      pool.push_back(q);
      if (i % 4 == 3) outs.push_back(q);
    }
    nl.add_output_bus(outs, "y");
    check_comb_parity(nl, 2000 + seed, /*rounds=*/2);
  }
}

// Sequential parity: flip-flops with and without clock-enables, where the
// enables differ per lane — so lanes genuinely diverge. One BatchEvaluator
// against 64 independent scalar evaluators over several clocks.
TEST_F(NetlistBatch, ClockEnableDffsDivergePerLane) {
  Netlist nl;
  const Bus d = nl.add_input_bus("d", 4);
  const nlist::NetId en0 = nl.add_input("en0");
  const nlist::NetId en1 = nl.add_input("en1");
  const nlist::NetId q0 = nl.add_dff(d[0]);                       // always enabled
  const nlist::NetId q1 = nl.add_dff(d[1], en0);                  // gated
  const nlist::NetId q2 = nl.add_dff(nl.gate_xor(q0, d[2]), en1); // gated, feedback cone
  const nlist::NetId q3 = nl.add_dff(nl.gate_mux(en0, q1, d[3])); // enable used as data
  const Bus q{q0, q1, q2, q3};
  nl.add_output_bus(q, "q");

  BatchEvaluator batch(nl);
  const std::size_t lanes = batch.lanes();
  std::vector<std::unique_ptr<Evaluator>> scalars;
  for (std::size_t lane = 0; lane < lanes; ++lane)
    scalars.push_back(std::make_unique<Evaluator>(nl));

  std::mt19937_64 rng(42);
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::vector<std::pair<nlist::NetId, std::vector<std::uint64_t>>> stim;
    for (const auto& pin : nl.inputs()) {
      std::vector<std::uint64_t> words(batch.stride());
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        words[wi] = rng();
        batch.set_word(pin.net, words[wi], wi);
      }
      stim.emplace_back(pin.net, std::move(words));
    }
    for (std::size_t lane = 0; lane < lanes; ++lane)
      for (const auto& [net, words] : stim)
        scalars[lane]->set(net, (words[lane / 64] >> (lane % 64)) & 1U);
    batch.clock();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      scalars[lane]->clock();
      for (const auto& pout : nl.outputs())
        ASSERT_EQ(scalars[lane]->get(pout.net), batch.get(pout.net, lane))
            << "cycle " << cycle << " lane " << lane << " output " << pout.name;
    }
  }

  // reset() zeroes and publishes Q in every lane without settling — the
  // scalar evaluator's exact contract.
  batch.reset();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    scalars[lane]->reset();
    for (const nlist::NetId n : q) {
      ASSERT_FALSE(batch.get(n, lane)) << "lane " << lane;
      ASSERT_EQ(scalars[lane]->get(n), batch.get(n, lane));
    }
  }
}

// Both evaluators must reject a combinational cycle at construction. The
// normal builder API only produces DAGs; add_lut_with_out (the
// transformation-pass escape hatch) can miswire a loop — x = AND(a, y),
// y = AND(a, x) — and both constructors must refuse it identically.
TEST_F(NetlistBatch, CombinationalCycleRejectionParity) {
  Netlist nl;
  const nlist::NetId a = nl.add_input("a");
  const nlist::NetId x = nl.new_net();
  const nlist::NetId y = nl.new_net();
  const std::array<nlist::NetId, 2> in_x{a, y};
  const std::array<nlist::NetId, 2> in_y{a, x};
  nl.add_lut_with_out(x, 0b1000, in_x);
  nl.add_lut_with_out(y, 0b1000, in_y);
  nl.add_output(y, "y");
  EXPECT_THROW(Evaluator scalar(nl), std::runtime_error);
  EXPECT_THROW(BatchEvaluator batch(nl), std::runtime_error);
}

// The full IP through the Table 1 protocol at every partial batch width
// 1..63 (and 64): ciphertexts must match the software reference bit for
// bit, per-lane latency must match the scalar gate driver, and the cycle
// counter must advance by exactly active-lanes x scalar-cycles-per-block.
TEST_F(NetlistBatch, FullIpPartialBatchesMatchReference) {
  const auto nl = core::synthesize_ip(core::IpMode::kBoth, /*sbox_as_rom=*/true);
  core::GateIpBatchDriver batch(nl);
  core::GateIpDriver scalar(nl);

  const auto key = random_bytes(16, 7);
  const aes::Aes128 ref(std::span<const std::uint8_t, 16>(key.data(), 16));
  batch.reset();
  batch.load_key(key, /*needs_setup=*/true);
  scalar.reset();
  scalar.load_key(key, /*needs_setup=*/true);

  // Scalar oracle latency from one block.
  const auto plain0 = random_bytes(16, 8);
  const auto r0 = scalar.process(plain0, /*encrypt=*/true);
  ASSERT_TRUE(r0.has_value());
  const int scalar_latency = r0->cycles;

  // Every width through 64 (the historical sweep), then a handful of wide
  // widths up to the backend's full lane count.
  std::vector<std::size_t> widths;
  for (std::size_t n = 1; n <= std::min<std::size_t>(64, batch.lanes()); ++n)
    widths.push_back(n);
  if (batch.lanes() > 64)
    for (const std::size_t n :
         {std::size_t{65}, batch.lanes() / 2, batch.lanes() - 1, batch.lanes()})
      widths.push_back(n);
  std::uint32_t seed = 100;
  for (const std::size_t n : widths) {
    const auto plain = random_bytes(16 * n, seed++);
    std::vector<std::uint8_t> got(16 * n);
    const std::uint64_t before = batch.cycles();
    const auto r = batch.process_batch(plain, got, n, /*encrypt=*/true);
    ASSERT_TRUE(r.has_value()) << "n=" << n;
    ASSERT_EQ(r->cycles, scalar_latency) << "n=" << n;
    // Load edge + latency clocks, each weighted by the active lane count.
    ASSERT_EQ(batch.cycles() - before,
              static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(scalar_latency + 1))
        << "n=" << n;
    for (std::size_t blk = 0; blk < n; ++blk) {
      std::array<std::uint8_t, 16> want{};
      ref.encrypt_block(std::span<const std::uint8_t, 16>(plain.data() + 16 * blk, 16), want);
      ASSERT_EQ(std::vector<std::uint8_t>(got.begin() + static_cast<std::ptrdiff_t>(16 * blk),
                                          got.begin() + static_cast<std::ptrdiff_t>(16 * blk + 16)),
                std::vector<std::uint8_t>(want.begin(), want.end()))
          << "n=" << n << " block " << blk;
    }
  }

  // Decrypt parity against the scalar gate driver on a handful of widths.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{17}, batch.lanes()}) {
    const auto cipher = random_bytes(16 * n, seed++);
    std::vector<std::uint8_t> got(16 * n);
    const auto r = batch.process_batch(cipher, got, n, /*encrypt=*/false);
    ASSERT_TRUE(r.has_value()) << "n=" << n;
    for (std::size_t blk = 0; blk < n; ++blk) {
      const auto want = scalar.process(
          std::span<const std::uint8_t>(cipher.data() + 16 * blk, 16), /*encrypt=*/false);
      ASSERT_TRUE(want.has_value());
      ASSERT_EQ(r->cycles, want->cycles) << "n=" << n << " block " << blk;
      ASSERT_TRUE(std::equal(want->data.begin(), want->data.end(), got.begin() + static_cast<std::ptrdiff_t>(16 * blk)))
          << "n=" << n << " block " << blk;
    }
  }
}

// The farm's batched dispatch end to end: 4 netlist workers draining
// multi-job batches, verified against the software reference across
// ECB/CBC/CTR — including a CTR payload large enough to fan out.
TEST_F(NetlistBatch, FarmBatchDispatchMatchesReference) {
  farm::FarmConfig cfg;
  cfg.workers = 4;
  cfg.dispatch_batch = 8;
  cfg.engine = aesip::engine::EngineKind::kNetlist;
  farm::Farm f(cfg);

  std::mt19937 rng(77);
  std::vector<std::pair<farm::Request, std::vector<std::uint8_t>>> cases;
  for (int i = 0; i < 9; ++i) {
    farm::Request req;
    req.session_id = static_cast<std::uint64_t>(i % 3);
    farm::Key128 kb;
    for (auto& b : kb) b = static_cast<std::uint8_t>(rng() + i % 3);
    req.key = kb;
    for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
    const std::size_t blocks = (i == 8) ? 96 : 2 + i;  // the last one fans out
    req.mode = (i % 3 == 0) ? farm::Mode::kEcb : (i % 3 == 1) ? farm::Mode::kCbc
                                                              : farm::Mode::kCtr;
    req.encrypt = (i % 2) == 0;
    if (i == 8) req.mode = farm::Mode::kCtr;
    req.payload = random_bytes(blocks * 16, 500 + static_cast<std::uint32_t>(i));

    const aes::Rijndael ref = aes::Rijndael::for_key(req.key.view());
    const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
    std::vector<std::uint8_t> want;
    switch (req.mode) {
      case farm::Mode::kEcb:
        want = req.encrypt ? aes::ecb_encrypt(ref, req.payload)
                           : aes::ecb_decrypt(ref, req.payload);
        break;
      case farm::Mode::kCbc:
        want = req.encrypt ? aes::cbc_encrypt(ref, iv, req.payload)
                           : aes::cbc_decrypt(ref, iv, req.payload);
        break;
      case farm::Mode::kCtr:
        want = aes::ctr_crypt(ref, iv, req.payload);
        break;
    }
    cases.emplace_back(std::move(req), std::move(want));
  }

  std::vector<std::future<farm::Result>> futures;
  for (auto& [req, want] : cases) futures.push_back(f.submit(req));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto result = futures[i].get();
    EXPECT_EQ(result.data, cases[i].second) << "request " << i;
  }
}

// SEU-injection parity: flipping the same DFF in the scalar evaluator and
// in lane 0 of the BatchEvaluator (lane mask 1) must corrupt — or mask, or
// hang — identically, while the batch's untouched lane 1 keeps producing
// clean ciphertext. This is what lets the fleet's chaos machinery
// (fleet::ChaosInjector, seu/live.hpp) classify sites on the scalar
// evaluator and trust the classification for batch-mode engines.
TEST_F(NetlistBatch, SeuFlipParityScalarVsLaneZero) {
  const auto nl = core::synthesize_ip(core::IpMode::kEncrypt, /*sbox_as_rom=*/true);
  core::GateIpDriver scalar(nl);
  core::GateIpBatchDriver batch(nl);

  const auto key = random_bytes(16, 31);
  const aes::Aes128 ref(std::span<const std::uint8_t, 16>(key.data(), 16));
  const bool setup = scalar.has_input("encdec");
  scalar.reset();
  scalar.load_key(key, setup);
  batch.reset();
  batch.load_key(key, setup);

  const std::size_t n_dffs = scalar.evaluator().dff_count();
  ASSERT_EQ(batch.evaluator().dff_count(), n_dffs);
  ASSERT_GT(n_dffs, 0u);

  std::mt19937 rng(77);
  const auto plain = random_bytes(32, 33);  // lane 0 and lane 1 payloads
  std::array<std::uint8_t, 16> clean1{};
  ref.encrypt_block(std::span<const std::uint8_t, 16>(plain.data() + 16, 16), clean1);

  int corrupting = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t site = rng() % n_dffs;

    // The standby upset, between blocks: scalar and batch lane 0 only.
    scalar.evaluator().flip_dff(site);
    scalar.evaluator().settle();
    batch.evaluator().flip_dff_lane(site, 0);
    batch.evaluator().settle();

    const auto sres =
        scalar.process(std::span<const std::uint8_t>(plain.data(), 16), /*encrypt=*/true);
    std::vector<std::uint8_t> got(32);
    const auto bres = batch.process_batch(plain, got, /*n=*/2, /*encrypt=*/true);

    ASSERT_EQ(sres.has_value(), bres.has_value()) << "site " << site << ": one hung";
    if (!sres) {
      // Both hung identically; resynchronize and keep sampling.
      scalar.reset();
      scalar.load_key(key, setup);
      batch.reset();
      batch.load_key(key, setup);
      continue;
    }
    // Lane 0 tracks the scalar evaluator bit-for-bit, corrupted or not...
    EXPECT_TRUE(std::equal(sres->data.begin(), sres->data.end(), got.begin()))
        << "site " << site << ": lane 0 diverged from the scalar evaluator";
    // ...and the flip never leaks into the untouched lane 1.
    EXPECT_TRUE(std::equal(clean1.begin(), clean1.end(), got.begin() + 16))
        << "site " << site << ": lane mask leaked into lane 1";

    std::array<std::uint8_t, 16> clean0{};
    ref.encrypt_block(std::span<const std::uint8_t, 16>(plain.data(), 16), clean0);
    if (!std::equal(clean0.begin(), clean0.end(), sres->data.begin())) ++corrupting;
  }
  // The sweep must have exercised at least one genuinely corrupting flip,
  // or the parity claim was tested only on masked sites.
  EXPECT_GT(corrupting, 0);
}

// Per-lane SEU isolation at wide widths: a flip targeted at one lane —
// including lanes above 63, in the upper words of a wide backend — may
// corrupt only that lane. Every other lane of a full-width batch must keep
// producing bit-clean ciphertext, or the lane-mask plumbing leaks across
// the 64-lane word boundary.
TEST_F(NetlistBatch, SeuFlipLaneIsolationAtWideWidths) {
  const auto nl = core::synthesize_ip(core::IpMode::kEncrypt, /*sbox_as_rom=*/true);
  core::GateIpBatchDriver batch(nl);
  const std::size_t lanes = batch.lanes();

  const auto key = random_bytes(16, 51);
  const aes::Aes128 ref(std::span<const std::uint8_t, 16>(key.data(), 16));
  const bool setup = batch.has_input("encdec");

  const auto plain = random_bytes(16 * lanes, 52);
  std::vector<std::uint8_t> clean(16 * lanes);
  for (std::size_t blk = 0; blk < lanes; ++blk)
    ref.encrypt_block(std::span<const std::uint8_t, 16>(plain.data() + 16 * blk, 16),
                      std::span<std::uint8_t, 16>(clean.data() + 16 * blk, 16));

  const std::size_t n_dffs = batch.evaluator().dff_count();
  ASSERT_GT(n_dffs, 0u);
  std::mt19937 rng(53);

  // Lane picks that straddle every interesting word boundary.
  std::vector<std::size_t> targets{0, lanes - 1};
  if (lanes > 64) {
    targets.push_back(63);
    targets.push_back(64);  // first lane of word 1
    targets.push_back(lanes / 2);
  }
  int corrupting = 0;
  for (const std::size_t lane : targets) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t site = rng() % n_dffs;
      batch.reset();
      batch.load_key(key, setup);
      batch.evaluator().flip_dff_lane(site, lane);
      batch.evaluator().settle();

      std::vector<std::uint8_t> got(16 * lanes);
      const auto r = batch.process_batch(plain, got, lanes, /*encrypt=*/true);
      if (!r.has_value()) continue;  // flip hung the (shared) FSM; resync next trial
      for (std::size_t blk = 0; blk < lanes; ++blk) {
        if (blk == lane) {
          if (!std::equal(clean.begin() + static_cast<std::ptrdiff_t>(16 * blk),
                          clean.begin() + static_cast<std::ptrdiff_t>(16 * blk + 16),
                          got.begin() + static_cast<std::ptrdiff_t>(16 * blk)))
            ++corrupting;
          continue;  // the targeted lane is allowed to corrupt
        }
        ASSERT_TRUE(std::equal(clean.begin() + static_cast<std::ptrdiff_t>(16 * blk),
                               clean.begin() + static_cast<std::ptrdiff_t>(16 * blk + 16),
                               got.begin() + static_cast<std::ptrdiff_t>(16 * blk)))
            << "site " << site << " flipped in lane " << lane << " leaked into lane " << blk;
      }
    }
  }
  // The sweep must have seen at least one real corruption, or isolation was
  // only ever tested on masked flips.
  EXPECT_GT(corrupting, 0);
}

// flip_dff_mask with a multi-word mask: exactly the selected lanes may
// diverge; lanes whose mask bits are clear stay bit-clean — in every word.
TEST_F(NetlistBatch, SeuFlipMaskSelectsExactLanes) {
  const auto nl = core::synthesize_ip(core::IpMode::kEncrypt, /*sbox_as_rom=*/true);
  core::GateIpBatchDriver batch(nl);
  const std::size_t lanes = batch.lanes();
  const std::size_t words = lanes / 64;

  const auto key = random_bytes(16, 61);
  const aes::Aes128 ref(std::span<const std::uint8_t, 16>(key.data(), 16));
  const bool setup = batch.has_input("encdec");

  const auto plain = random_bytes(16 * lanes, 62);
  std::vector<std::uint8_t> clean(16 * lanes);
  for (std::size_t blk = 0; blk < lanes; ++blk)
    ref.encrypt_block(std::span<const std::uint8_t, 16>(plain.data() + 16 * blk, 16),
                      std::span<std::uint8_t, 16>(clean.data() + 16 * blk, 16));

  // Select lane 5 of the first word and lane 7 of the last word (the same
  // lane twice when the backend is 64 wide).
  std::vector<std::uint64_t> mask(words, 0);
  mask.front() |= std::uint64_t{1} << 5;
  mask.back() |= std::uint64_t{1} << 7;
  std::vector<std::size_t> selected{5, (words - 1) * 64 + 7};

  const std::size_t n_dffs = batch.evaluator().dff_count();
  std::mt19937 rng(63);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t site = rng() % n_dffs;
    batch.reset();
    batch.load_key(key, setup);
    batch.evaluator().flip_dff_mask(site, mask);
    batch.evaluator().settle();

    std::vector<std::uint8_t> got(16 * lanes);
    const auto r = batch.process_batch(plain, got, lanes, /*encrypt=*/true);
    if (!r.has_value()) continue;
    for (std::size_t blk = 0; blk < lanes; ++blk) {
      if (std::find(selected.begin(), selected.end(), blk) != selected.end()) continue;
      ASSERT_TRUE(std::equal(clean.begin() + static_cast<std::ptrdiff_t>(16 * blk),
                             clean.begin() + static_cast<std::ptrdiff_t>(16 * blk + 16),
                             got.begin() + static_cast<std::ptrdiff_t>(16 * blk)))
          << "site " << site << " mask leaked into unselected lane " << blk;
    }
  }
}

// The fleet's chaos machinery against THIS backend: ChaosInjector flips
// every lane of a live wide engine (Farm::inject_fault -> flip_dff), the
// farm's spot-check catches the corruption, and every response stays
// bit-exact. Runs once per backend through the ctest matrix.
TEST_F(NetlistBatch, ChaosInjectionHealsOnWideEngines) {
  farm::FarmConfig cfg;
  cfg.workers = 1;
  cfg.engine = aesip::engine::EngineKind::kNetlist;
  cfg.spot_check_fraction = 1.0;
  farm::Farm f(cfg);
  fleet::ChaosInjector chaos(f, /*seed=*/0x51de);

  std::mt19937 rng(71);
  farm::Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());

  auto fresh_request = [&](std::size_t blocks) {
    farm::Request req;
    req.session_id = 1;
    req.key = key;
    req.mode = farm::Mode::kEcb;
    req.encrypt = true;
    req.payload = random_bytes(blocks * 16, rng());
    return req;
  };
  const aes::Rijndael ref =
      aes::Rijndael::for_key(std::span<const std::uint8_t>(key.data(), key.size()));

  ASSERT_EQ(f.process(fresh_request(1)).worker, 0);  // warm the key

  bool detected = false;
  for (int attempt = 0; attempt < 12 && !detected; ++attempt) {
    const auto ev = chaos.inject(0);
    ASSERT_TRUE(ev.injected) << "netlist engine refused the flip";
    for (int i = 0; i < 2; ++i) {
      auto req = fresh_request(3);
      const auto expect = aes::ecb_encrypt(ref, req.payload);
      const auto res = f.process(std::move(req));
      ASSERT_EQ(res.data, expect) << "corrupted bytes reached the client";
      detected |= res.replayed;
    }
  }
  EXPECT_TRUE(detected) << "no injection was ever caught by the spot-check";
}
