// Reference Rijndael library: FIPS-197 known-answer vectors, algebraic
// S-box pinning, per-transform behaviour and the full Rijndael geometry
// matrix (block 128/192/256 x key 128/192/256).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/key_schedule.hpp"
#include "aes/sbox.hpp"
#include "aes/state.hpp"
#include "aes/transforms.hpp"
#include "aes/ttable.hpp"
#include "gf/bitmatrix.hpp"
#include "gf/gf256.hpp"

namespace aes = aesip::aes;
namespace gf = aesip::gf;

namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

}  // namespace

// --- S-box ---------------------------------------------------------------------

TEST(SBox, PublishedAnchors) {
  // Spot values from the FIPS-197 figure 7 table.
  EXPECT_EQ(aes::kSBox[0x00], 0x63);
  EXPECT_EQ(aes::kSBox[0x01], 0x7c);
  EXPECT_EQ(aes::kSBox[0x10], 0xca);
  EXPECT_EQ(aes::kSBox[0x53], 0xed);
  EXPECT_EQ(aes::kSBox[0xff], 0x16);
  EXPECT_EQ(aes::kSBox[0xc9], 0xdd);
}

TEST(SBox, IsBijective) {
  std::array<bool, 256> seen{};
  for (int i = 0; i < 256; ++i) {
    EXPECT_FALSE(seen[aes::kSBox[static_cast<std::size_t>(i)]]);
    seen[aes::kSBox[static_cast<std::size_t>(i)]] = true;
  }
}

TEST(SBox, InverseComposesToIdentity) {
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    EXPECT_EQ(aes::inv_sub_byte(aes::sub_byte(x)), x);
    EXPECT_EQ(aes::sub_byte(aes::inv_sub_byte(x)), x);
  }
}

TEST(SBox, MatchesAlgebraicDefinition) {
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    EXPECT_EQ(aes::kSBox[x], gf::kSBoxAffine.apply(gf::inverse(x)));
  }
}

TEST(SBox, HasNoFixedPoints) {
  for (int i = 0; i < 256; ++i) {
    EXPECT_NE(aes::kSBox[static_cast<std::size_t>(i)], i);
    // and no "anti-fixed" points either (classic Rijndael property)
    EXPECT_NE(aes::kSBox[static_cast<std::size_t>(i)], i ^ 0xff);
  }
}

TEST(SBox, SubWordAndRotWord) {
  // FIPS-197 Appendix A key expansion, first KStran input of AES-128:
  // RotWord(09cf4f3c) = cf4f3c09, SubWord -> 8a84eb01.
  const std::uint32_t w = 0x3c4fcf09;  // bytes 09 cf 4f 3c little-endian packing
  const std::uint32_t rot = aes::rot_word(w);
  EXPECT_EQ(rot & 0xff, 0xcfU);
  EXPECT_EQ(aes::sub_word(rot), 0x01eb848aU);  // bytes 8a 84 eb 01
}

// --- transforms -----------------------------------------------------------------

TEST(Transforms, ShiftRowsRowOffsets) {
  aes::State s(4);
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) s.set(r, c, static_cast<std::uint8_t>(16 * r + c));
  aes::shift_rows(s);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(s.at(r, c), 16 * r + ((c + r) % 4)) << "row " << r << " col " << c;
}

TEST(Transforms, InvShiftRowsUndoes) {
  auto bytes = random_bytes(16, 1);
  aes::State s(4, bytes);
  aes::State t = s;
  aes::shift_rows(t);
  aes::inv_shift_rows(t);
  EXPECT_TRUE(t == s);
}

TEST(Transforms, MixColumnsKnownVector) {
  // FIPS-197 Appendix B round 1: after ShiftRows the state is
  // d4bf5d30 e0b452ae b84111f1 1e2798e5 (columns), MixColumns gives
  // 046681e5 e0cb199a 48f8d37a 2806264c.
  const auto in = from_hex("d4bf5d30e0b452aeb84111f11e2798e5");
  aes::State s(4, in);
  aes::mix_columns(s);
  EXPECT_EQ(s.to_hex(), "046681e5e0cb199a48f8d37a2806264c");
}

TEST(Transforms, InvMixColumnsUndoes) {
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    auto bytes = random_bytes(16, 100 + seed);
    aes::State s(4, bytes);
    aes::State t = s;
    aes::mix_columns(t);
    aes::inv_mix_columns(t);
    EXPECT_TRUE(t == s) << "seed " << seed;
  }
}

TEST(Transforms, MixColumnWordAgreesWithState) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    auto bytes = random_bytes(16, 200 + seed);
    aes::State s(4, bytes);
    aes::State t = s;
    aes::mix_columns(t);
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(aes::mix_column_word(s.column_word(c)), t.column_word(c));
  }
}

TEST(Transforms, InvMixColumnWordAgreesWithState) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    auto bytes = random_bytes(16, 300 + seed);
    aes::State s(4, bytes);
    aes::State t = s;
    aes::inv_mix_columns(t);
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(aes::inv_mix_column_word(s.column_word(c)), t.column_word(c));
  }
}

TEST(Transforms, AddRoundKeyIsSelfInverse) {
  auto bytes = random_bytes(16, 42);
  auto key = random_bytes(16, 43);
  aes::State s(4, bytes);
  aes::State t = s;
  aes::add_round_key(t, key);
  aes::add_round_key(t, key);
  EXPECT_TRUE(t == s);
}

TEST(Transforms, ShiftOffsetsPerGeometry) {
  // Nb=4 and Nb=6 use 1,2,3; Nb=8 uses 1,3,4 (Rijndael spec).
  for (const int nb : {4, 6}) {
    EXPECT_EQ(aes::shift_offset(nb, 0), 0);
    EXPECT_EQ(aes::shift_offset(nb, 1), 1);
    EXPECT_EQ(aes::shift_offset(nb, 2), 2);
    EXPECT_EQ(aes::shift_offset(nb, 3), 3);
  }
  EXPECT_EQ(aes::shift_offset(8, 1), 1);
  EXPECT_EQ(aes::shift_offset(8, 2), 3);
  EXPECT_EQ(aes::shift_offset(8, 3), 4);
}

// --- key schedule ----------------------------------------------------------------

TEST(KeySchedule, Aes128FirstAndLastWords) {
  // FIPS-197 Appendix A.1 for key 2b7e1516...3c.
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto g = aes::Geometry::make(128, 128);
  const auto w = aes::expand_key(g, key);
  ASSERT_EQ(w.size(), 44u);
  // w[4] = a0fafe17 (bytes a0 fa fe 17 -> little-endian 0x17fefaa0).
  EXPECT_EQ(w[4], 0x17fefaa0U);
  EXPECT_EQ(w[5], 0xb12c5488U);  // 88542cb1
  // w[43] = b6630ca6.
  EXPECT_EQ(w[43], 0xa60c63b6U);
}

TEST(KeySchedule, Aes192ExpansionWords) {
  // FIPS-197 Appendix A.2 for key 8e73b0f7...6b7b (Nk=6: the rcon boundary
  // falls every 6 words, so w[6] is the first generated word).
  const auto key = from_hex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b");
  const auto g = aes::Geometry::make(128, 192);
  const auto w = aes::expand_key(g, key);
  ASSERT_EQ(w.size(), 52u);
  EXPECT_EQ(w[6], 0xf7910cfeU);   // fe0c91f7
  EXPECT_EQ(w[7], 0xa5f50224U);   // 2402f5a5
  EXPECT_EQ(w[50], 0x0472cc8eU);  // 8ecc7204
  EXPECT_EQ(w[51], 0x02220001U);  // 01002202
}

TEST(KeySchedule, Aes256ExpansionWords) {
  // FIPS-197 Appendix A.3 for key 603deb10...dff4 (Nk=8: the extra SubWord
  // lands at i % 8 == 4, exercised by every generated half-stride).
  const auto key = from_hex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const auto g = aes::Geometry::make(128, 256);
  const auto w = aes::expand_key(g, key);
  ASSERT_EQ(w.size(), 60u);
  EXPECT_EQ(w[8], 0x1154a39bU);   // 9ba35411
  EXPECT_EQ(w[9], 0xaf25698eU);   // 8e6925af
  EXPECT_EQ(w[58], 0x44f36d04U);  // 046df344
  EXPECT_EQ(w[59], 0x1e636c70U);  // 706c631e
}

TEST(KeySchedule, KstranMatchesExpansionBoundary) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto g = aes::Geometry::make(128, 128);
  const auto w = aes::expand_key(g, key);
  for (int r = 1; r <= 10; ++r)
    EXPECT_EQ(w[static_cast<std::size_t>(4 * r)],
              w[static_cast<std::size_t>(4 * (r - 1))] ^
                  aes::kstran(w[static_cast<std::size_t>(4 * r - 1)], r))
        << "round " << r;
}

TEST(KeySchedule, GeometryRoundCounts) {
  EXPECT_EQ(aes::Geometry::make(128, 128).nr, 10);
  EXPECT_EQ(aes::Geometry::make(128, 192).nr, 12);
  EXPECT_EQ(aes::Geometry::make(128, 256).nr, 14);
  EXPECT_EQ(aes::Geometry::make(192, 128).nr, 12);
  EXPECT_EQ(aes::Geometry::make(256, 128).nr, 14);
  EXPECT_EQ(aes::Geometry::make(256, 256).nr, 14);
}

TEST(KeySchedule, ScheduleSizes) {
  for (const int block : {128, 192, 256})
    for (const int key_bits : {128, 192, 256}) {
      const auto g = aes::Geometry::make(block, key_bits);
      const auto key = random_bytes(static_cast<std::size_t>(g.key_bytes()), 7);
      EXPECT_EQ(aes::expand_key(g, key).size(),
                static_cast<std::size_t>(g.nb * (g.nr + 1)));
    }
}

// --- cipher known-answer tests ----------------------------------------------------

TEST(Cipher, Fips197Aes128Example) {
  // FIPS-197 Appendix B.
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = from_hex("3243f6a8885a308d313198a2e0370734");
  aes::Aes128 c(key);
  std::array<std::uint8_t, 16> ct{};
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
  std::array<std::uint8_t, 16> back{};
  c.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(back), to_hex(pt));
}

TEST(Cipher, Fips197AppendixC128) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  aes::Aes128 c(key);
  std::array<std::uint8_t, 16> ct{};
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Cipher, Fips197AppendixC192) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  auto c = aes::Rijndael::make(128, 192, key);
  std::array<std::uint8_t, 16> ct{};
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
  std::array<std::uint8_t, 16> back{};
  c.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(back), to_hex(pt));
}

TEST(Cipher, Fips197AppendixC256) {
  const auto key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  auto c = aes::Rijndael::make(128, 256, key);
  std::array<std::uint8_t, 16> ct{};
  c.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
  std::array<std::uint8_t, 16> back{};
  c.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(back), to_hex(pt));
}

TEST(Cipher, ObserverSeesAllRounds) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = from_hex("3243f6a8885a308d313198a2e0370734");
  aes::Aes128 c(key);
  std::array<std::uint8_t, 16> ct{};
  int rounds_seen = 0;
  c.rijndael().encrypt_block(
      pt, ct,
      [](int round, const aes::State&, void* user) {
        auto* n = static_cast<int*>(user);
        EXPECT_EQ(round, *n);
        ++*n;
      },
      &rounds_seen);
  EXPECT_EQ(rounds_seen, 11);  // rounds 0..10
}

TEST(Cipher, ObserverRound1MatchesFips197AppendixB) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = from_hex("3243f6a8885a308d313198a2e0370734");
  aes::Aes128 c(key);
  std::array<std::uint8_t, 16> ct{};
  struct Ctx {
    std::string round0, round1;
  } ctx;
  c.rijndael().encrypt_block(
      pt, ct,
      [](int round, const aes::State& s, void* user) {
        auto* x = static_cast<Ctx*>(user);
        if (round == 0) x->round0 = s.to_hex();
        if (round == 1) x->round1 = s.to_hex();
      },
      &ctx);
  EXPECT_EQ(ctx.round0, "193de3bea0f4e22b9ac68d2ae9f84808");  // after initial AddKey
  EXPECT_EQ(ctx.round1, "a49c7ff2689f352b6b5bea43026a5049");  // start of round 2
}

// --- full Rijndael geometry matrix --------------------------------------------------

struct GeometryCase {
  int block_bits;
  int key_bits;
};

class RijndaelGeometry : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(RijndaelGeometry, EncryptDecryptRoundTrip) {
  const auto [block_bits, key_bits] = GetParam();
  const auto key = random_bytes(static_cast<std::size_t>(key_bits / 8),
                                static_cast<std::uint32_t>(block_bits * 1000 + key_bits));
  auto c = aes::Rijndael::make(block_bits, key_bits, key);
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    const auto pt = random_bytes(static_cast<std::size_t>(block_bits / 8), 900 + seed);
    std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
    c.encrypt_block(pt, ct);
    EXPECT_NE(to_hex(ct), to_hex(pt));
    c.decrypt_block(ct, back);
    EXPECT_EQ(to_hex(back), to_hex(pt));
  }
}

TEST_P(RijndaelGeometry, EncryptionIsKeyDependent) {
  const auto [block_bits, key_bits] = GetParam();
  const auto key1 = random_bytes(static_cast<std::size_t>(key_bits / 8), 1);
  auto key2 = key1;
  key2[0] ^= 1;
  auto c1 = aes::Rijndael::make(block_bits, key_bits, key1);
  auto c2 = aes::Rijndael::make(block_bits, key_bits, key2);
  const auto pt = random_bytes(static_cast<std::size_t>(block_bits / 8), 2);
  std::vector<std::uint8_t> ct1(pt.size()), ct2(pt.size());
  c1.encrypt_block(pt, ct1);
  c2.encrypt_block(pt, ct2);
  EXPECT_NE(to_hex(ct1), to_hex(ct2));
}

INSTANTIATE_TEST_SUITE_P(AllGeometries, RijndaelGeometry,
                         ::testing::Values(GeometryCase{128, 128}, GeometryCase{128, 192},
                                           GeometryCase{128, 256}, GeometryCase{192, 128},
                                           GeometryCase{192, 192}, GeometryCase{192, 256},
                                           GeometryCase{256, 128}, GeometryCase{256, 192},
                                           GeometryCase{256, 256}),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.block_bits) + "k" +
                                  std::to_string(info.param.key_bits);
                         });

// --- T-table engine ------------------------------------------------------------------

TEST(TTable, MatchesReferenceOnFipsVector) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  aes::TTableAes128 t(key);
  std::array<std::uint8_t, 16> ct{};
  t.encrypt_block(pt, ct);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::array<std::uint8_t, 16> back{};
  t.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(back), to_hex(pt));
}

TEST(TTable, MatchesReferenceOnRandomData) {
  for (std::uint32_t seed = 0; seed < 25; ++seed) {
    const auto key = random_bytes(16, 5000 + seed);
    const auto pt = random_bytes(16, 6000 + seed);
    aes::Aes128 ref(key);
    aes::TTableAes128 fast(key);
    std::array<std::uint8_t, 16> a{}, b{}, da{}, db{};
    ref.encrypt_block(pt, a);
    fast.encrypt_block(pt, b);
    EXPECT_EQ(to_hex(a), to_hex(b)) << "seed " << seed;
    ref.decrypt_block(a, da);
    fast.decrypt_block(a, db);
    EXPECT_EQ(to_hex(da), to_hex(db)) << "seed " << seed;
    EXPECT_EQ(to_hex(da), to_hex(pt)) << "seed " << seed;
  }
}
