// Analytical architecture model: the paper's 12-vs-5 cycle claim, S-box
// budgets, key-schedule limiting, and the Table 3 baseline records.
#include <gtest/gtest.h>

#include "arch/baselines.hpp"
#include "arch/cycle_model.hpp"

namespace arch = aesip::arch;

TEST(CycleModel, PaperMixedIs5CyclesPerRound) {
  EXPECT_EQ(arch::cycles_per_round(arch::paper_mixed()), 5);
  EXPECT_EQ(arch::cycles_per_block(arch::paper_mixed()), 50);
}

TEST(CycleModel, All32Is12CyclesPerRound) {
  // Section 4: "decreasing the number of clock cycles needed to execute a
  // round from 12 (in the case of all functions using 32) to 5".
  EXPECT_EQ(arch::cycles_per_round(arch::all32()), 12);
  EXPECT_EQ(arch::cycles_per_block(arch::all32()), 120);
}

TEST(CycleModel, MixedSavesSevenCyclesPerRound) {
  EXPECT_EQ(arch::cycles_per_round(arch::all32()) - arch::cycles_per_round(arch::paper_mixed()),
            7);
}

TEST(CycleModel, SmallerWidthsPayManyCycles) {
  EXPECT_GT(arch::cycles_per_round(arch::serial16()), arch::cycles_per_round(arch::paper_mixed()));
  EXPECT_GT(arch::cycles_per_round(arch::serial8()), arch::cycles_per_round(arch::serial16()));
  // 16 ByteSub passes + 4 MixColumn + 4 AddKey passes at 32-bit linear width.
  EXPECT_EQ(arch::cycles_per_round(arch::serial8()), 16 + 8);
}

TEST(CycleModel, Full128IsKeyScheduleLimited) {
  // Section 6: "A 128 could be limited by the key schedule" — a fused round
  // takes 1 cycle but the 32-bit on-the-fly schedule needs 4.
  auto cfg = arch::full128();
  EXPECT_EQ(arch::cycles_per_round(cfg), 1);
  EXPECT_EQ(arch::effective_cycles_per_round(cfg), 4);
  cfg.stored_keys = true;
  EXPECT_EQ(arch::effective_cycles_per_round(cfg), 1);
}

TEST(CycleModel, MixedIsNotKeyScheduleLimited) {
  // The paper's balance point: 4 KStran cycles hide entirely inside the 4
  // ByteSub cycles of a 5-cycle round.
  EXPECT_EQ(arch::effective_cycles_per_round(arch::paper_mixed()), 5);
}

TEST(CycleModel, SboxBudgets) {
  EXPECT_EQ(arch::sbox_count(arch::paper_mixed()), 8);   // 4 data + 4 KStran
  EXPECT_EQ(arch::rom_bits(arch::paper_mixed()), 16384);
  auto both = arch::paper_mixed();
  both.decrypt_too = true;
  EXPECT_EQ(arch::sbox_count(both), 16);
  EXPECT_EQ(arch::rom_bits(both), 32768);
  EXPECT_EQ(arch::sbox_count(arch::full128()), 20);  // 16 data + 4 KStran
}

TEST(CycleModel, ThroughputFormula) {
  // 128 bits / (50 x 14 ns) = 182.9 Mbps — the paper's Acex encrypt row.
  EXPECT_NEAR(arch::throughput_mbps(arch::paper_mixed(), 14.0), 182.9, 0.1);
  EXPECT_NEAR(arch::throughput_mbps(arch::paper_mixed(), 10.0), 256.0, 0.1);
}

TEST(CycleModel, RejectsBadGeometry) {
  arch::DatapathConfig bad{"bad", 24, 128, false, false, false};
  EXPECT_THROW(arch::cycles_per_round(bad), std::invalid_argument);
  bad = arch::DatapathConfig{"bad", 32, 64, false, false, false};
  EXPECT_THROW(arch::cycles_per_round(bad), std::invalid_argument);
}

TEST(Baselines, TableHasFourRows) {
  const auto& rows = arch::table3_baselines();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NE(rows[0].reference.find("Mroczkowski"), std::string::npos);
  EXPECT_NE(rows[1].reference.find("Zigiotto"), std::string::npos);
  EXPECT_NE(rows[2].reference.find("Panato"), std::string::npos);
  EXPECT_NE(rows[3].reference.find("Hammercores"), std::string::npos);
}

TEST(Baselines, LegibleCellsRecorded) {
  const auto& rows = arch::table3_baselines();
  EXPECT_EQ(rows[1].logic_cells.value(), 1965);
  EXPECT_NEAR(rows[1].throughput_both_mbps.value(), 61.2, 1e-9);
  EXPECT_EQ(rows[3].memory_bits.value(), 57344);
}

TEST(Baselines, LowCostDesignIsSlowerThanPaperIp) {
  // Shape check the Table 3 comparison hinges on: the 8-bit low-cost
  // design's throughput (model and reported) sits far below the paper IP's
  // 150-182 Mbps.
  const auto& zigiotto = arch::table3_baselines()[1];
  const double modeled =
      arch::throughput_mbps(zigiotto.model_config, zigiotto.model_clock_ns);
  EXPECT_LT(modeled, 150.0);
  EXPECT_LT(zigiotto.throughput_both_mbps.value(), 150.0);
}

TEST(Baselines, HighPerfDesignIsFasterThanPaperIp) {
  const auto& panato = arch::table3_baselines()[2];
  const double modeled = arch::throughput_mbps(panato.model_config, panato.model_clock_ns);
  EXPECT_GT(modeled, 256.0) << "the Apex20K full-parallel design outruns the low-area IP";
}
