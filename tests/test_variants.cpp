// The round-engine variant family (src/arch/variant.*, docs/variants.md):
// spec naming and declared schedules, pipelined multi-block-in-flight
// cycle accounting at gate level and on the behavioral twin, the wr_key
// pipeline-flush hazard rule, mixed-variant farms under real traffic, and
// fleet hot-swap between variants (in-process and over the wire admin
// plane).
//
// Labelled `variants farm fleet`: the farm/fleet halves are
// multi-threaded, so `cmake -DAESIP_SANITIZE=thread ..; ctest -L variants`
// is part of the TSan story alongside -L farm / -L fleet.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <set>
#include <span>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "arch/variant.hpp"
#include "core/bfm.hpp"
#include "core/gate_driver.hpp"
#include "engine/engine.hpp"
#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "hdl/simulator.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"

namespace arch = aesip::arch;
namespace core = aesip::core;
namespace engine = aesip::engine;
namespace farm = aesip::farm;
namespace fleet = aesip::fleet;
namespace net = aesip::net;
namespace aes = aesip::aes;
using arch::RoundArch;
using arch::VariantSpec;

namespace {

constexpr std::array<std::uint8_t, 16> kKey{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                            0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                            0x09, 0xcf, 0x4f, 0x3c};

VariantSpec must_parse(std::string_view name) {
  const auto s = VariantSpec::parse(name);
  EXPECT_TRUE(s.has_value()) << name;
  return s.value();
}

}  // namespace

// --- the spec itself ---------------------------------------------------------

TEST(VariantSpec_, NameParseRoundTripAcrossFamily) {
  std::set<std::string> names;
  for (const auto& spec : VariantSpec::family()) {
    const auto parsed = VariantSpec::parse(spec.name());
    ASSERT_TRUE(parsed.has_value()) << spec.name();
    EXPECT_TRUE(*parsed == spec) << spec.name();
    EXPECT_TRUE(names.insert(spec.name()).second) << "duplicate " << spec.name();
  }
  EXPECT_GE(names.size(), 7u);  // the documented Pareto roster
  EXPECT_TRUE(must_parse("paper") == VariantSpec{});  // the alias
  EXPECT_FALSE(VariantSpec::parse("pipe3-xtime").has_value());  // 3 does not divide 10
  EXPECT_FALSE(VariantSpec::parse("systolic").has_value());
}

TEST(VariantSpec_, DeclaredSchedulesAreInternallyConsistent) {
  for (const auto& spec : VariantSpec::family()) {
    // Latency covers all ten rounds; the issue interval divides the work
    // among blocks_in_flight() stages.
    if (spec.is_iterative()) {
      EXPECT_EQ(spec.block_latency_cycles(), 50);
      EXPECT_EQ(spec.issue_interval_cycles(), 50);
      EXPECT_EQ(spec.blocks_in_flight(), 1);
      EXPECT_EQ(spec.key_setup_cycles(core::IpMode::kEncrypt), 0);
      EXPECT_EQ(spec.key_setup_cycles(core::IpMode::kBoth), 40);
    } else {
      EXPECT_EQ(spec.block_latency_cycles(), 10);
      EXPECT_EQ(spec.issue_interval_cycles() * spec.blocks_in_flight(), 10)
          << spec.name();
      EXPECT_EQ(spec.key_setup_cycles(core::IpMode::kBoth), 10);
    }
  }
}

// --- pipelined multi-block-in-flight cycle accounting ------------------------

// The tentpole timing claim at gate level: with N stages, a stream of B
// blocks costs exactly latency + (B-1) * (10/N) cycles from the first load
// edge to the last data_ok — N blocks genuinely in flight, not a faster
// serial core. Bytes must match the software reference block for block.
TEST(VariantPipeline, GateLevelStreamCyclesMatchDeclaredSchedule) {
  constexpr std::size_t kBlocks = 20;
  std::mt19937 rng(7);
  std::vector<std::uint8_t> in(16 * kBlocks), want(16 * kBlocks), out(16 * kBlocks);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng());
  const aes::Aes128 ref(kKey);
  for (std::size_t i = 0; i < kBlocks; ++i)
    ref.encrypt_block(std::span(in).subspan(16 * i, 16), std::span(want).subspan(16 * i, 16));

  for (const char* name : {"pipe2-xtime", "pipe5-xtime", "pipe10-xtime"}) {
    const auto spec = must_parse(name);
    const auto nl = arch::synthesize_variant(spec, core::IpMode::kBoth);
    core::GateIpDriver drv(nl);
    drv.reset();
    drv.load_key(kKey, spec.key_setup_cycles(core::IpMode::kBoth));

    const auto lone = drv.process(std::span(in).first(16), /*encrypt=*/true);
    ASSERT_TRUE(lone.has_value()) << name;
    EXPECT_EQ(lone->cycles, spec.block_latency_cycles()) << name;

    const auto sr = drv.stream(in, out, kBlocks, /*encrypt=*/true);
    ASSERT_TRUE(sr.has_value()) << name;
    EXPECT_EQ(out, want) << name;
    EXPECT_EQ(sr->cycles,
              spec.block_latency_cycles() +
                  static_cast<int>(kBlocks - 1) * spec.issue_interval_cycles())
        << name << ": the pipeline is not keeping " << spec.blocks_in_flight()
        << " blocks in flight";
  }
}

// The behavioral twin keeps the same schedule through the generic bus
// driver's streaming mode (the farm's fast path).
TEST(VariantPipeline, BehavioralTwinStreamsOnSchedule) {
  constexpr std::size_t kBlocks = 20;
  const aes::Aes128 ref(kKey);
  std::vector<std::array<std::uint8_t, 16>> blocks(kBlocks);
  std::mt19937 rng(11);
  for (auto& b : blocks)
    for (auto& v : b) v = static_cast<std::uint8_t>(rng());

  for (const char* name : {"unroll-xtime", "pipe2-xtime", "pipe5-xtime", "pipe10-xtime"}) {
    const auto spec = must_parse(name);
    aesip::hdl::Simulator sim;
    arch::VariantIp ip(sim, spec, core::IpMode::kBoth);
    core::GenericBusDriver<arch::VariantIp> bus(sim, ip);
    bus.reset();
    EXPECT_EQ(bus.load_key(kKey),
              static_cast<std::uint64_t>(spec.key_setup_cycles(core::IpMode::kBoth)))
        << name;

    const auto got = bus.stream(blocks, /*encrypt=*/true);
    ASSERT_EQ(got.size(), kBlocks) << name;
    for (std::size_t i = 0; i < kBlocks; ++i) {
      std::array<std::uint8_t, 16> want{};
      ref.encrypt_block(blocks[i], want);
      EXPECT_EQ(got[i], want) << name << " block " << i;
    }
    EXPECT_EQ(bus.last_stream_cycles(),
              static_cast<std::uint64_t>(spec.block_latency_cycles() +
                                         (kBlocks - 1) * spec.issue_interval_cycles()))
        << name;
  }
}

// The hazard rule (docs/variants.md): wr_key flushes every in-flight
// block — the key schedule is global state, so nothing started under the
// old key may emit. Gate level, raw ports: admit a block, re-key
// mid-flight, and data_ok must stay low until traffic under the NEW key.
TEST(VariantPipeline, WrKeyFlushesBlocksInFlight) {
  const auto spec = must_parse("pipe5-xtime");
  const auto nl = arch::synthesize_variant(spec, core::IpMode::kBoth);
  core::GateIpDriver drv(nl);
  drv.reset();
  drv.load_key(kKey, spec.key_setup_cycles(core::IpMode::kBoth));

  const std::array<std::uint8_t, 16> pt{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  // Admit a block and let it travel a few stages deep.
  drv.set("encdec", true);
  drv.set_din(pt);
  drv.set("wr_data", true);
  drv.clock();
  drv.set("wr_data", false);
  drv.clock();
  drv.clock();

  // Re-key mid-flight. The in-flight block must be flushed, not finished.
  std::array<std::uint8_t, 16> key2 = kKey;
  key2[0] ^= 0xff;
  drv.set_din(key2);
  drv.set("wr_key", true);
  drv.clock();
  drv.set("wr_key", false);
  bool leaked = false;
  for (int i = 0; i < spec.key_setup_cycles(core::IpMode::kBoth) + 2 * spec.block_latency_cycles();
       ++i) {
    drv.clock();
    leaked = leaked || drv.data_ok();
  }
  EXPECT_FALSE(leaked) << "a block keyed under the old schedule emitted after wr_key";

  // The core is healthy under the new key.
  const aes::Aes128 ref2(key2);
  std::array<std::uint8_t, 16> want{};
  ref2.encrypt_block(pt, want);
  const auto r = drv.process(pt, /*encrypt=*/true);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->data, want);
  EXPECT_EQ(r->cycles, spec.block_latency_cycles());
}

// --- the farm: per-worker variant mix ----------------------------------------

TEST(VariantFarm, MixedVariantWorkersServeCorrectTraffic) {
  farm::FarmConfig cfg;
  cfg.workers = 4;
  cfg.engine = engine::EngineKind::kBehavioral;
  cfg.worker_variants = {must_parse("pipe5-xtime"), must_parse("unroll-xtime"),
                         VariantSpec{},  // the paper core
                         must_parse("pipe10-xtime")};
  farm::Farm f(cfg);

  // Every worker advertises what it runs; the default spec keeps the bare
  // kind name (identical to a farm with no variant mix at all).
  const auto st = f.stats();
  ASSERT_EQ(st.per_worker.size(), 4u);
  EXPECT_EQ(st.per_worker[0].engine, "behavioral:pipe5-xtime");
  EXPECT_EQ(st.per_worker[1].engine, "behavioral:unroll-xtime");
  EXPECT_EQ(st.per_worker[2].engine, "behavioral");
  EXPECT_EQ(st.per_worker[3].engine, "behavioral:pipe10-xtime");

  std::mt19937 rng(3);
  farm::Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const aes::Aes128 ref(key);

  std::vector<std::future<farm::Result>> pending;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int i = 0; i < 64; ++i) {
    farm::Request req;
    req.session_id = static_cast<std::uint64_t>(i);  // spread across workers
    req.mode = farm::Mode::kCbc;
    req.encrypt = true;
    req.key = key;
    for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
    req.payload.resize(16 * (1 + i % 3));
    for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
    expect.push_back(
        aes::cbc_encrypt(ref, std::span<const std::uint8_t, 16>(req.iv.data(), 16), req.payload));
    pending.push_back(f.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < pending.size(); ++i)
    EXPECT_EQ(pending[i].get().data, expect[i]) << "request " << i;
}

// A netlist farm with a variant mix synthesizes one shared netlist per
// DISTINCT variant and still answers correctly (small traffic: gate-level
// workers simulate the full netlist per cycle).
TEST(VariantFarm, NetlistVariantMixSharesSynthesis) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.engine = engine::EngineKind::kNetlist;
  cfg.worker_variants = {VariantSpec{}, must_parse("pipe2-xtime")};
  farm::Farm f(cfg);

  const auto st = f.stats();
  ASSERT_EQ(st.per_worker.size(), 2u);
  EXPECT_EQ(st.per_worker[0].engine, "netlist");
  EXPECT_EQ(st.per_worker[1].engine, "netlist:pipe2-xtime");

  std::mt19937 rng(5);
  farm::Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const aes::Aes128 ref(key);
  std::vector<std::future<farm::Result>> pending;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int i = 0; i < 6; ++i) {
    farm::Request req;
    req.session_id = static_cast<std::uint64_t>(i);
    req.mode = farm::Mode::kEcb;
    req.encrypt = true;
    req.key = key;
    req.payload.resize(16);
    for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
    expect.push_back(aes::ecb_encrypt(ref, req.payload));
    pending.push_back(f.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < pending.size(); ++i)
    EXPECT_EQ(pending[i].get().data, expect[i]) << "request " << i;
}

// --- fleet: hot-swap between variants ----------------------------------------

TEST(VariantFleet, SwapBetweenVariantsUnderTraffic) {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.engine = engine::EngineKind::kBehavioral;
  farm::Farm f(cfg);
  fleet::FleetController ctl(f);

  std::mt19937 rng(9);
  farm::Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const aes::Aes128 ref(key);

  auto one_round = [&](int salt) {
    std::vector<std::future<farm::Result>> pending;
    std::vector<std::vector<std::uint8_t>> expect;
    for (int i = 0; i < 16; ++i) {
      farm::Request req;
      req.session_id = static_cast<std::uint64_t>(salt * 100 + i);
      req.mode = farm::Mode::kCtr;
      req.key = key;
      for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
      req.payload.resize(24);  // CTR takes any length
      for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
      expect.push_back(aes::ctr_crypt(
          ref, std::span<const std::uint8_t, 16>(req.iv.data(), 16), req.payload));
      pending.push_back(f.submit(std::move(req)));
    }
    for (std::size_t i = 0; i < pending.size(); ++i)
      EXPECT_EQ(pending[i].get().data, expect[i]) << "salt " << salt << " request " << i;
  };

  one_round(0);
  const auto rep = ctl.swap(0, engine::EngineKind::kBehavioral, must_parse("pipe5-xtime"));
  EXPECT_EQ(rep.to, "behavioral:pipe5-xtime");
  one_round(1);
  EXPECT_EQ(f.stats().per_worker[0].engine, "behavioral:pipe5-xtime");

  // Fleet-wide swap to another variant; then back to the paper core, whose
  // label is the bare kind name again.
  const auto reps = ctl.swap_all(engine::EngineKind::kBehavioral, must_parse("unroll-xtime"));
  ASSERT_EQ(reps.size(), 2u);
  for (const auto& r : reps) EXPECT_EQ(r.to, "behavioral:unroll-xtime");
  one_round(2);
  ctl.swap_all(engine::EngineKind::kBehavioral, VariantSpec{});
  one_round(3);
  for (const auto& w : f.stats().per_worker) EXPECT_EQ(w.engine, "behavioral");
}

TEST(VariantFleet, WireAdminSwapCarriesVariantName) {
  net::ServerConfig cfg;
  cfg.farm.workers = 2;
  cfg.farm.engine = engine::EngineKind::kSoftware;
  net::LoopbackTransport transport;
  net::Server server(transport, "variants", cfg);
  server.start();
  {
    net::Client client(transport, "variants", 1);

    // kind 1 = behavioral, with a variant name appended to the payload.
    const auto swapped = client.fleet_swap(0, 1, "pipe5-xtime");
    EXPECT_NE(swapped.find("behavioral:pipe5-xtime"), std::string::npos) << swapped;

    // The empty variant keeps the paper core: the destination label is the
    // bare kind name (the "from" side still names the variant swapped out).
    const auto plain = client.fleet_swap(0, 1);
    EXPECT_NE(plain.find("-> behavioral,"), std::string::npos) << plain;

    try {
      client.fleet_swap(0, 1, "pipe7-xtime");
      FAIL() << "unknown variant accepted over the wire";
    } catch (const net::WireError& e) {
      EXPECT_EQ(e.code(), net::ErrorCode::kBadPayload);
      EXPECT_NE(std::string(e.what()).find("unknown variant"), std::string::npos);
    }
    client.bye();
  }
  server.stop();
}
