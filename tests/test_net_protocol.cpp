// aesip-wire-v1 robustness: the codec against malformed input, and the
// server against hostile byte streams. The contract under test: any
// corruption is detected (CRC/magic/version/length), a poisoned stream
// stays poisoned, and the server answers abuse with a clean kError frame
// and a closed session — never a crash, never a hang, never silently
// wrong output.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace net = aesip::net;

namespace {

// --- codec ------------------------------------------------------------------------

TEST(WireCrc, KnownVector) {
  // The standard CRC-32 check value: crc("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(net::crc32(bytes), 0xCBF43926u);
}

net::Frame sample_frame() {
  net::Frame f;
  f.op = net::Op::kEncBlocks;
  f.flags = 0x1234;
  f.session_id = 0xdeadbeefcafef00dull;
  f.seq = 77;
  f.payload.resize(49);
  for (std::size_t i = 0; i < f.payload.size(); ++i)
    f.payload[i] = static_cast<std::uint8_t>(i * 7);
  return f;
}

TEST(WireCodec, RoundTripAllFields) {
  const net::Frame f = sample_frame();
  const auto bytes = net::encode_frame(f);
  ASSERT_EQ(bytes.size(), net::kHeaderSize + f.payload.size() + net::kTrailerSize);

  net::FrameDecoder dec;
  dec.feed(bytes);
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.op, f.op);
  EXPECT_EQ(out.flags, f.flags);
  EXPECT_EQ(out.session_id, f.session_id);
  EXPECT_EQ(out.seq, f.seq);
  EXPECT_EQ(out.payload, f.payload);
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireCodec, ByteAtATimeFeed) {
  const net::Frame f = sample_frame();
  const auto bytes = net::encode_frame(f);
  net::FrameDecoder dec;
  net::Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed(std::span<const std::uint8_t>(&bytes[i], 1));
    ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore) << "at byte " << i;
  }
  dec.feed(std::span<const std::uint8_t>(&bytes.back(), 1));
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(WireCodec, ManyFramesOneFeed) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    net::Frame f = sample_frame();
    f.seq = static_cast<std::uint32_t>(i);
    const auto bytes = net::encode_frame(f);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  net::FrameDecoder dec;
  dec.feed(stream);
  net::Frame out;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kFrame);
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore);
}

TEST(WireCodec, BadMagicPoisons) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[0] ^= 0xff;
  net::FrameDecoder dec;
  dec.feed(bytes);
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kBad);
  EXPECT_EQ(dec.error(), net::ErrorCode::kBadMagic);
  // Poisoned: even a pristine frame afterwards is rejected — framing is lost.
  dec.feed(net::encode_frame(sample_frame()));
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kBad);
}

TEST(WireCodec, BadVersionRejected) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[4] = net::kWireVersion + 1;
  net::FrameDecoder dec;
  dec.feed(bytes);
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kBad);
  EXPECT_EQ(dec.error(), net::ErrorCode::kBadVersion);
}

TEST(WireCodec, OversizedRejectedFromHeaderAlone) {
  // A length field over the bound must be rejected as soon as the header
  // is complete — without waiting to buffer the claimed payload.
  net::Frame f = sample_frame();
  f.payload.resize(100);
  auto bytes = net::encode_frame(f);
  net::FrameDecoder dec(/*max_payload=*/64);
  dec.feed(std::span<const std::uint8_t>(bytes.data(), net::kHeaderSize));
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kBad);
  EXPECT_EQ(dec.error(), net::ErrorCode::kOversized);
}

TEST(WireCodec, CrcMismatchOnFlippedPayloadBit) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[net::kHeaderSize + 10] ^= 0x01;
  net::FrameDecoder dec;
  dec.feed(bytes);
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kBad);
  EXPECT_EQ(dec.error(), net::ErrorCode::kBadCrc);
}

TEST(WireCodec, CrcCoversHeaderToo) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[8] ^= 0x80;  // a session_id bit
  net::FrameDecoder dec;
  dec.feed(bytes);
  net::Frame out;
  ASSERT_EQ(dec.next(out), net::FrameDecoder::Status::kBad);
  EXPECT_EQ(dec.error(), net::ErrorCode::kBadCrc);
}

TEST(WireCodec, TruncatedFrameJustWaits) {
  const auto bytes = net::encode_frame(sample_frame());
  net::FrameDecoder dec;
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  net::Frame out;
  EXPECT_EQ(dec.next(out), net::FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.error(), net::ErrorCode::kNone);
}

TEST(WireError, PayloadRoundTrip) {
  const auto p = net::encode_error_payload(net::ErrorCode::kNoKey, "no key installed");
  net::ErrorCode code;
  std::string msg;
  net::decode_error_payload(p, code, msg);
  EXPECT_EQ(code, net::ErrorCode::kNoKey);
  EXPECT_EQ(msg, "no key installed");

  // Garbled short payloads must not throw.
  net::decode_error_payload(std::span<const std::uint8_t>(p.data(), 1), code, msg);
  EXPECT_EQ(code, net::ErrorCode::kInternal);
  EXPECT_TRUE(msg.empty());
}

TEST(WireNames, OpcodesAndErrors) {
  EXPECT_STREQ(net::op_name(net::Op::kEncBlocks), "enc_blocks");
  EXPECT_STREQ(net::op_name(net::Op::kError), "error");
  EXPECT_TRUE(net::is_request_op(net::Op::kHello));
  EXPECT_TRUE(net::is_request_op(net::Op::kCtrStream));
  EXPECT_FALSE(net::is_request_op(net::Op::kResult));
  EXPECT_FALSE(net::is_request_op(net::Op::kError));
  EXPECT_STREQ(net::error_code_name(net::ErrorCode::kWindowExceeded), "window_exceeded");
}

// --- the server under abuse -------------------------------------------------------

// A raw-bytes peer: writes arbitrary streams and reads whatever frames
// come back, bypassing net::Client's discipline entirely.
struct RawPeer {
  std::unique_ptr<net::Conn> conn;
  net::FrameDecoder decoder;
  bool eof = false;

  void write_all(std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const auto r = conn->write_some(bytes.subspan(off));
      if (r.status == net::IoStatus::kOk) {
        off += r.n;
      } else if (r.status == net::IoStatus::kWouldBlock) {
        conn->wait_writable(std::chrono::milliseconds(50));
      } else {
        return;  // server already cut us off — the frames sent so far stand
      }
    }
  }

  void write_frame(const net::Frame& f) { write_all(net::encode_frame(f)); }

  /// Read until a frame pops, EOF, or the deadline. Nullopt on EOF/timeout.
  std::optional<net::Frame> read_frame(std::chrono::milliseconds timeout =
                                           std::chrono::milliseconds(5000)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::uint8_t buf[1024];
    net::Frame f;
    for (;;) {
      if (decoder.next(f) == net::FrameDecoder::Status::kFrame) return f;
      const auto r = conn->read_some(buf);
      if (r.status == net::IoStatus::kOk) {
        decoder.feed(std::span<const std::uint8_t>(buf, r.n));
      } else if (r.status == net::IoStatus::kEof) {
        if (decoder.next(f) == net::FrameDecoder::Status::kFrame) return f;
        eof = true;
        return std::nullopt;
      } else if (r.status == net::IoStatus::kWouldBlock) {
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        conn->wait_readable(std::chrono::milliseconds(10));
      } else {
        eof = true;
        return std::nullopt;
      }
    }
  }

  /// Drain until EOF (the server closed our session), bounded by a deadline.
  bool wait_eof(std::chrono::milliseconds timeout = std::chrono::milliseconds(5000)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::uint8_t buf[1024];
    while (std::chrono::steady_clock::now() < deadline) {
      const auto r = conn->read_some(buf);
      if (r.status == net::IoStatus::kEof || r.status == net::IoStatus::kError) return true;
      if (r.status == net::IoStatus::kWouldBlock)
        conn->wait_readable(std::chrono::milliseconds(10));
    }
    return false;
  }
};

struct AbuseServer {
  net::LoopbackTransport transport;
  net::Server server;

  explicit AbuseServer(net::ServerConfig cfg = make_cfg())
      : transport(), server(transport, "abuse", cfg) {
    server.start();
  }
  ~AbuseServer() { server.stop(); }

  static net::ServerConfig make_cfg() {
    net::ServerConfig cfg;
    cfg.farm.workers = 1;
    cfg.farm.engine = aesip::engine::EngineKind::kSoftware;
    return cfg;
  }

  RawPeer peer() { return RawPeer{transport.connect("abuse"), net::FrameDecoder{}, false}; }
};

net::Frame make_req(net::Op op, std::uint32_t seq, std::vector<std::uint8_t> payload = {}) {
  net::Frame f;
  f.op = op;
  f.session_id = 1;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

net::ErrorCode error_code_of(const net::Frame& f) {
  net::ErrorCode code;
  std::string msg;
  net::decode_error_payload(f.payload, code, msg);
  return code;
}

TEST(ServerAbuse, GarbageBytesGetErrorFrameThenClose) {
  AbuseServer s;
  auto peer = s.peer();
  std::vector<std::uint8_t> garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i)
    garbage[i] = static_cast<std::uint8_t>(0xc3 ^ i);
  peer.write_all(garbage);

  const auto err = peer.read_frame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->op, net::Op::kError);
  EXPECT_EQ(error_code_of(*err), net::ErrorCode::kBadMagic);
  EXPECT_TRUE(peer.wait_eof());
}

TEST(ServerAbuse, CorruptedCrcMidSessionCloses) {
  AbuseServer s;
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  ASSERT_TRUE(peer.read_frame().has_value());  // kHelloOk

  auto bytes = net::encode_frame(make_req(net::Op::kStats, 1));
  bytes[10] ^= 0x40;  // flip a session_id bit in flight
  peer.write_all(bytes);

  const auto err = peer.read_frame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->op, net::Op::kError);
  EXPECT_EQ(error_code_of(*err), net::ErrorCode::kBadCrc);
  EXPECT_TRUE(peer.wait_eof());
}

TEST(ServerAbuse, OversizedFrameRejected) {
  net::ServerConfig cfg = AbuseServer::make_cfg();
  cfg.max_payload = 256;
  AbuseServer s(cfg);
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  const auto hello = peer.read_frame();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(net::get_u32(hello->payload, 0), 256u);  // advertised bound

  peer.write_frame(make_req(net::Op::kCtrStream, 1, std::vector<std::uint8_t>(512)));
  const auto err = peer.read_frame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->op, net::Op::kError);
  EXPECT_EQ(error_code_of(*err), net::ErrorCode::kOversized);
  EXPECT_TRUE(peer.wait_eof());
}

TEST(ServerAbuse, FirstFrameMustBeHello) {
  AbuseServer s;
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kStats, 0));
  const auto err = peer.read_frame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->op, net::Op::kError);
  EXPECT_EQ(error_code_of(*err), net::ErrorCode::kNotHello);
  EXPECT_TRUE(peer.wait_eof());
}

TEST(ServerAbuse, UnknownOpcodeCloses) {
  AbuseServer s;
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  ASSERT_TRUE(peer.read_frame().has_value());

  net::Frame f = make_req(net::Op::kHello, 1);
  f.op = static_cast<net::Op>(0x55);
  peer.write_frame(f);
  const auto err = peer.read_frame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->op, net::Op::kError);
  EXPECT_EQ(error_code_of(*err), net::ErrorCode::kUnknownOpcode);
  EXPECT_TRUE(peer.wait_eof());

  // A server->client opcode arriving at the server is equally unknown.
  auto peer2 = s.peer();
  peer2.write_frame(make_req(net::Op::kHello, 0));
  ASSERT_TRUE(peer2.read_frame().has_value());
  peer2.write_frame(make_req(net::Op::kResult, 1));
  const auto err2 = peer2.read_frame();
  ASSERT_TRUE(err2.has_value());
  EXPECT_EQ(error_code_of(*err2), net::ErrorCode::kUnknownOpcode);
}

TEST(ServerAbuse, DataBeforeKeyIsRecoverable) {
  AbuseServer s;
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  ASSERT_TRUE(peer.read_frame().has_value());

  std::vector<std::uint8_t> payload(17 + 16);  // mode+iv+1 block, but no key yet
  peer.write_frame(make_req(net::Op::kEncBlocks, 1, payload));
  const auto err = peer.read_frame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->op, net::Op::kError);
  EXPECT_EQ(error_code_of(*err), net::ErrorCode::kNoKey);

  // kNoKey is not fatal: install a key and the same frame succeeds.
  peer.write_frame(make_req(net::Op::kSetKey, 2, std::vector<std::uint8_t>(16, 0x11)));
  const auto keyok = peer.read_frame();
  ASSERT_TRUE(keyok.has_value());
  EXPECT_EQ(keyok->op, net::Op::kKeyOk);
  peer.write_frame(make_req(net::Op::kEncBlocks, 3, payload));
  const auto res = peer.read_frame();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->op, net::Op::kResult);
  EXPECT_EQ(res->payload.size(), 16u);
}

TEST(ServerAbuse, MalformedDataPayloadsAreRejectedCleanly) {
  AbuseServer s;
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  ASSERT_TRUE(peer.read_frame().has_value());
  peer.write_frame(make_req(net::Op::kSetKey, 1, std::vector<std::uint8_t>(16, 0x22)));
  ASSERT_TRUE(peer.read_frame().has_value());

  struct Case {
    net::Op op;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Case> cases;
  cases.push_back({net::Op::kSetKey, std::vector<std::uint8_t>(15)});     // short key
  cases.push_back({net::Op::kEncBlocks, std::vector<std::uint8_t>(17)});  // no data
  cases.push_back({net::Op::kEncBlocks, std::vector<std::uint8_t>(17 + 15)});  // ragged
  {
    std::vector<std::uint8_t> bad_mode(17 + 16);
    bad_mode[0] = 2;  // neither ECB nor CBC
    cases.push_back({net::Op::kEncBlocks, std::move(bad_mode)});
  }
  cases.push_back({net::Op::kDecBlocks, std::vector<std::uint8_t>(17 + 7)});
  cases.push_back({net::Op::kCtrStream, std::vector<std::uint8_t>(16)});  // empty stream

  std::uint32_t seq = 2;
  for (const auto& c : cases) {
    peer.write_frame(make_req(c.op, seq, c.payload));
    const auto err = peer.read_frame();
    ASSERT_TRUE(err.has_value()) << "case seq " << seq;
    EXPECT_EQ(err->op, net::Op::kError) << "case seq " << seq;
    EXPECT_EQ(error_code_of(*err), net::ErrorCode::kBadPayload) << "case seq " << seq;
    ++seq;
  }

  // None of those were fatal: the session still works.
  peer.write_frame(make_req(net::Op::kEncBlocks, seq, std::vector<std::uint8_t>(17 + 16)));
  const auto res = peer.read_frame();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->op, net::Op::kResult);
}

TEST(ServerAbuse, KeyLengthsValidatedOnTheWire) {
  AbuseServer s;
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  ASSERT_TRUE(peer.read_frame().has_value());

  // Anything that is not exactly 16/24/32 bytes is kBadPayload — including
  // the empty key and off-by-one lengths around every legal size.
  std::uint32_t seq = 1;
  for (const std::size_t n : {0u, 1u, 15u, 17u, 23u, 25u, 31u, 33u, 64u}) {
    for (const auto op : {net::Op::kSetKey, net::Op::kRekey}) {
      peer.write_frame(make_req(op, seq, std::vector<std::uint8_t>(n, 0x5a)));
      const auto err = peer.read_frame();
      ASSERT_TRUE(err.has_value()) << "len " << n;
      EXPECT_EQ(err->op, net::Op::kError) << "len " << n;
      EXPECT_EQ(error_code_of(*err), net::ErrorCode::kBadPayload) << "len " << n;
      ++seq;
    }
  }

  // All three legal lengths install (and none of the rejections was fatal):
  // a data frame after each 16/24/32-byte key is answered with the matching
  // geometry's bytes.
  for (const std::size_t n : {16u, 24u, 32u}) {
    const std::vector<std::uint8_t> key(n, static_cast<std::uint8_t>(n));
    peer.write_frame(make_req(net::Op::kSetKey, seq, key));
    const auto keyok = peer.read_frame();
    ASSERT_TRUE(keyok.has_value()) << "len " << n;
    EXPECT_EQ(keyok->op, net::Op::kKeyOk) << "len " << n;
    ++seq;

    std::vector<std::uint8_t> payload(17 + 16);  // ECB, one zero block
    peer.write_frame(make_req(net::Op::kEncBlocks, seq, payload));
    const auto res = peer.read_frame();
    ASSERT_TRUE(res.has_value()) << "len " << n;
    ASSERT_EQ(res->op, net::Op::kResult) << "len " << n;
    const auto ref = aesip::aes::Rijndael::for_key(key);
    std::array<std::uint8_t, 16> want{};
    ref.encrypt_block(std::array<std::uint8_t, 16>{}, want);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), res->payload.begin()))
        << "len " << n;
    ++seq;
  }
}

TEST(ServerAbuse, WindowOverrunIsCutOff) {
  net::ServerConfig cfg = AbuseServer::make_cfg();
  cfg.window = 2;
  // Behavioral engine + chunky payloads: each request takes real simulated
  // work, so a burst far past the window is decoded while earlier frames
  // are still in flight.
  cfg.farm.engine = aesip::engine::EngineKind::kBehavioral;
  AbuseServer s(cfg);
  auto peer = s.peer();
  peer.write_frame(make_req(net::Op::kHello, 0));
  const auto hello = peer.read_frame();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(net::get_u32(hello->payload, 4), 2u);  // advertised window
  peer.write_frame(make_req(net::Op::kSetKey, 1, std::vector<std::uint8_t>(16, 0x33)));
  ASSERT_TRUE(peer.read_frame().has_value());

  std::vector<std::uint8_t> payload(17 + 128 * 16);  // 128 blocks each
  for (std::uint32_t seq = 2; seq < 34; ++seq)  // 32 >> window of 2, never reading
    peer.write_frame(make_req(net::Op::kEncBlocks, seq, payload));

  // Among the responses there must be a WINDOW_EXCEEDED error, and the
  // server must close the session after it.
  bool saw_violation = false;
  while (auto f = peer.read_frame(std::chrono::milliseconds(10000))) {
    if (f->op == net::Op::kError &&
        error_code_of(*f) == net::ErrorCode::kWindowExceeded) {
      saw_violation = true;
      break;
    }
    ASSERT_EQ(f->op, net::Op::kResult);  // pre-violation frames still answered
  }
  EXPECT_TRUE(saw_violation);
  EXPECT_TRUE(peer.wait_eof(std::chrono::milliseconds(10000)));
}

TEST(ServerAbuse, AbruptDisconnectLeavesServerServing) {
  AbuseServer s;
  {
    auto peer = s.peer();
    peer.write_frame(make_req(net::Op::kHello, 0));
    ASSERT_TRUE(peer.read_frame().has_value());
    peer.conn->close();  // vanish without kBye
  }
  // The server must keep serving fresh sessions.
  auto peer2 = s.peer();
  peer2.write_frame(make_req(net::Op::kHello, 0));
  const auto hello = peer2.read_frame();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->op, net::Op::kHelloOk);
}

}  // namespace
