// Static timing analysis on hand-analyzable mapped netlists: level
// counting, routing/fanout derating, register path closure, ROM access
// modeling, and rejection of unmapped input.
#include <gtest/gtest.h>

#include "aes/sbox.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"
#include "sta/sta.hpp"
#include "techmap/techmap.hpp"

namespace nlist = aesip::netlist;
namespace sta = aesip::sta;
namespace txm = aesip::techmap;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

// Round-number delay model for hand calculation.
constexpr sta::DelayModel kUnit{
    /*t_lut=*/1.0, /*t_rom=*/5.0, /*t_co=*/1.0, /*t_su=*/1.0,
    /*t_route_base=*/1.0, /*t_route_fanout=*/0.0, /*t_io=*/0.0,
    /*t_route_fanout_cap=*/100.0};

}  // namespace

TEST(Sta, RejectsUnmappedGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output(nl.gate_not(a), "y");
  EXPECT_THROW(sta::analyze(nl, kUnit), std::invalid_argument);
}

TEST(Sta, SingleRegisterToRegisterPath) {
  // q1 -> LUT -> q2:
  // t_co(1) + route(q1)(1) + t_lut(1) + route(lut)(1) + t_su(1) = 5.
  Netlist nl;
  const NetId q1 = nl.new_net();
  const std::array<NetId, 1> in{q1};
  const NetId l = nl.add_lut(0b01, in);  // NOT
  nl.add_dff_with_out(q1, l);
  const auto r = sta::analyze(nl, kUnit);
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 5.0);
  EXPECT_EQ(r.logic_levels, 1);
  EXPECT_DOUBLE_EQ(r.fmax_mhz, 200.0);
}

TEST(Sta, LevelsAccumulateThroughLutChain) {
  Netlist nl;
  const NetId q1 = nl.new_net();
  NetId x = q1;
  for (int i = 0; i < 4; ++i) {
    const std::array<NetId, 1> in{x};
    x = nl.add_lut(0b01, in);
  }
  nl.add_dff_with_out(q1, x);
  const auto r = sta::analyze(nl, kUnit);
  // t_co+route + 4*(t_lut+route) + t_su = 2 + 8 + 1 = 11.
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 11.0);
  EXPECT_EQ(r.logic_levels, 4);
}

TEST(Sta, FanoutDeratesRouting) {
  sta::DelayModel dm = kUnit;
  dm.t_route_fanout = 0.5;
  Netlist nl;
  const NetId q1 = nl.new_net();
  const std::array<NetId, 1> in{q1};
  // Three LUT loads on q1 -> fanout 3 -> route = 1 + 0.5*2 = 2.
  const NetId l1 = nl.add_lut(0b01, in);
  const NetId l2 = nl.add_lut(0b10, in);
  const NetId l3 = nl.add_lut(0b01, in);
  nl.add_dff_with_out(q1, l1);
  (void)nl.add_dff(l2);
  (void)nl.add_dff(l3);
  const auto r = sta::analyze(nl, dm);
  // q1: t_co(1) + route(2) = 3; lut: +1 +route(1) = 5; +t_su = 6.
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 6.0);
}

TEST(Sta, RomAccessIsOneLevelWithRomDelay) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  const Bus out = nl.add_rom(aesip::aes::kSBox, addr, "sbox");
  for (const NetId o : out) (void)nl.add_dff(o);
  const auto r = sta::analyze(nl, kUnit);
  // input: t_io(0)+route(1); rom: +5 +route(1); +su(1) = 8.
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 8.0);
  EXPECT_EQ(r.logic_levels, 1);
}

TEST(Sta, OutputPadPathCounts) {
  sta::DelayModel dm = kUnit;
  dm.t_io = 2.0;
  Netlist nl;
  const NetId a = nl.add_input("a");
  const std::array<NetId, 1> in{a};
  const NetId l = nl.add_lut(0b01, in);
  nl.add_output(l, "y");
  const auto r = sta::analyze(nl, dm);
  // in: 2+1; lut: +1+1; out pad: +2 = 7.
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 7.0);
}

TEST(Sta, CriticalPathTraceIsReported) {
  Netlist nl;
  const NetId q1 = nl.new_net();
  const std::array<NetId, 1> in{q1};
  const NetId l = nl.add_lut(0b01, in);
  nl.add_dff_with_out(q1, l);
  const auto r = sta::analyze(nl, kUnit);
  ASSERT_FALSE(r.path.empty());
  EXPECT_NE(r.path.front().find("register"), std::string::npos);
  EXPECT_NE(r.path.back().find("endpoint"), std::string::npos);
}

TEST(Sta, EmptyDesignHasZeroPath) {
  Netlist nl;
  const auto r = sta::analyze(nl, kUnit);
  EXPECT_DOUBLE_EQ(r.critical_path_ns, 0.0);
}

TEST(Sta, DeeperLogicIsSlower) {
  // A mapped S-box-as-logic must be slower than one LUT level — the effect
  // that makes the Cyclone ByteSub path deeper than the Acex EAB access.
  Netlist logic_nl;
  {
    const Bus addr = logic_nl.add_input_bus("addr", 8);
    Bus out = aesip::netlist::synth_sbox_logic(logic_nl, aesip::aes::kSBox, addr);
    for (const NetId o : out) (void)logic_nl.add_dff(o);
  }
  const auto mapped = txm::map_to_luts(logic_nl);
  const auto r_logic = sta::analyze(mapped.mapped, kUnit);
  EXPECT_GE(r_logic.logic_levels, 5) << "16 leaves + 4 mux levels";

  Netlist rom_nl;
  {
    const Bus addr = rom_nl.add_input_bus("addr", 8);
    Bus out = rom_nl.add_rom(aesip::aes::kSBox, addr, "sbox");
    for (const NetId o : out) (void)rom_nl.add_dff(o);
  }
  const auto r_rom = sta::analyze(rom_nl, kUnit);
  EXPECT_EQ(r_rom.logic_levels, 1);
}
