// The synthesized full-IP netlists: pin counts and memory bits exactly as
// in Table 2, logic-cost orderings the paper reports, and — the strongest
// check — gate-level sequential simulation of all three variants against
// the reference cipher, cycle-exact with the RTL model.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <random>
#include <string>

#include "aes/cipher.hpp"
#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "netlist/eval.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
namespace aes = aesip::aes;
using core::IpMode;
using core::GateIpDriver;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

namespace {

std::array<std::uint8_t, 16> random_block(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> out{};
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

}  // namespace

// --- interface exactness (Table 2 pins / memory rows) -----------------------------

TEST(IpNetlist, PinCountsMatchTable2) {
  EXPECT_EQ(core::synthesize_ip(IpMode::kEncrypt, true).pin_count(), 261);
  EXPECT_EQ(core::synthesize_ip(IpMode::kDecrypt, true).pin_count(), 261);
  EXPECT_EQ(core::synthesize_ip(IpMode::kBoth, true).pin_count(), 262);
}

TEST(IpNetlist, RomBitsMatchTable2OnAcexFlavour) {
  EXPECT_EQ(core::synthesize_ip(IpMode::kEncrypt, true).stats().rom_bits, 16384u);
  EXPECT_EQ(core::synthesize_ip(IpMode::kDecrypt, true).stats().rom_bits, 16384u);
  EXPECT_EQ(core::synthesize_ip(IpMode::kBoth, true).stats().rom_bits, 32768u);
}

TEST(IpNetlist, NoMemoryOnCycloneFlavour) {
  EXPECT_EQ(core::synthesize_ip(IpMode::kEncrypt, false).stats().rom_bits, 0u);
  EXPECT_EQ(core::synthesize_ip(IpMode::kBoth, false).stats().rom_bits, 0u);
}

TEST(IpNetlist, LogicCostOrderingsMatchThePaper) {
  const auto enc = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const auto dec = txm::map_to_luts(core::synthesize_ip(IpMode::kDecrypt, true));
  const auto both = txm::map_to_luts(core::synthesize_ip(IpMode::kBoth, true));
  // Paper Table 2 (Acex): 2114 < 2217 < 3222.
  EXPECT_LT(enc.stats.logic_elements, dec.stats.logic_elements);
  EXPECT_LT(dec.stats.logic_elements, both.stats.logic_elements);
  // Sharing: the combined device is far below the sum of the two.
  EXPECT_LT(both.stats.logic_elements,
            enc.stats.logic_elements + dec.stats.logic_elements);
}

TEST(IpNetlist, CycloneFlavourAddsRoughly240LesPerSbox) {
  const auto rom = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  const auto logic = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, false));
  const double delta =
      static_cast<double>(logic.stats.logic_elements - rom.stats.logic_elements) / 8.0;
  // Paper: (4057-2114)/8 = 243 LEs per S-box moved into logic.
  EXPECT_GT(delta, 150.0);
  EXPECT_LT(delta, 260.0);
}

// --- gate-level functional conformance ------------------------------------------------

TEST(IpNetlistFunctional, EncryptVariantPassesFips197) {
  const Netlist nl = core::synthesize_ip(IpMode::kEncrypt, true);
  GateIpDriver drv(nl);
  const auto key = std::array<std::uint8_t, 16>{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                                0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const auto pt = std::array<std::uint8_t, 16>{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                               0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  drv.load_key(key, false);
  const auto res = drv.process(pt, true);
  ASSERT_TRUE(res.has_value());
  const auto [ct, cycles] = *res;
  const std::array<std::uint8_t, 16> expected{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                              0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(ct, expected);
  EXPECT_EQ(cycles, 50) << "gate-level latency must match the RTL model";
}

TEST(IpNetlistFunctional, DecryptVariantInvertsReference) {
  const Netlist nl = core::synthesize_ip(IpMode::kDecrypt, true);
  GateIpDriver drv(nl);
  const auto key = random_block(1);
  const auto pt = random_block(2);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> ct{};
  ref.encrypt_block(pt, ct);
  drv.load_key(key, true);
  const auto res = drv.process(ct, false);
  ASSERT_TRUE(res.has_value());
  const auto [back, cycles] = *res;
  EXPECT_EQ(back, pt);
  EXPECT_EQ(cycles, 50);
}

TEST(IpNetlistFunctional, BothVariantBothDirections) {
  const Netlist nl = core::synthesize_ip(IpMode::kBoth, true);
  GateIpDriver drv(nl);
  const auto key = random_block(3);
  const auto pt = random_block(4);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> ct{};
  ref.encrypt_block(pt, ct);
  drv.load_key(key, true);
  const auto res1 = drv.process(pt, true);
  ASSERT_TRUE(res1.has_value());
  const auto [got_ct, c1] = *res1;
  EXPECT_EQ(got_ct, ct);
  EXPECT_EQ(c1, 50);
  const auto res2 = drv.process(ct, false);
  ASSERT_TRUE(res2.has_value());
  const auto [got_pt, c2] = *res2;
  EXPECT_EQ(got_pt, pt);
  EXPECT_EQ(c2, 50);
}

TEST(IpNetlistFunctional, LogicSboxFlavourAlsoWorks) {
  const Netlist nl = core::synthesize_ip(IpMode::kEncrypt, false);
  GateIpDriver drv(nl);
  const auto key = random_block(5);
  const auto pt = random_block(6);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.encrypt_block(pt, expected);
  drv.load_key(key, false);
  const auto res = drv.process(pt, true);
  ASSERT_TRUE(res.has_value());
  const auto [ct, cycles] = *res;
  EXPECT_EQ(ct, expected);
  EXPECT_EQ(cycles, 50);
}

TEST(IpNetlistFunctional, MappedEncryptNetlistStillEncrypts) {
  // The strongest flow check: synthesize -> technology-map -> simulate the
  // mapped LUT/FF netlist through the full protocol.
  const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  GateIpDriver drv(mapped.mapped);
  const auto key = random_block(7);
  const auto pt = random_block(8);
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.encrypt_block(pt, expected);
  drv.load_key(key, false);
  const auto res = drv.process(pt, true);
  ASSERT_TRUE(res.has_value());
  const auto [ct, cycles] = *res;
  EXPECT_EQ(ct, expected);
  EXPECT_EQ(cycles, 50);
}

TEST(IpNetlistFunctional, BackToBackBlocksAtFullRate) {
  const Netlist nl = core::synthesize_ip(IpMode::kEncrypt, true);
  GateIpDriver drv(nl);
  const auto key = random_block(9);
  drv.load_key(key, false);
  aes::Aes128 ref(key);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto pt = random_block(100 + i);
    std::array<std::uint8_t, 16> expected{};
    ref.encrypt_block(pt, expected);
    const auto res = drv.process(pt, true);
  ASSERT_TRUE(res.has_value());
  const auto [ct, cycles] = *res;
    EXPECT_EQ(ct, expected) << "block " << i;
    EXPECT_EQ(cycles, 50) << "block " << i;
  }
}
