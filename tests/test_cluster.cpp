// The cluster stack, bottom to top: consistent-hash Ring invariants,
// gossip Director convergence, the aesip-netchan-v1 codec/cookie/Channel
// reliability engine under a seeded packet mangler and a fake clock, the
// UDP transport end to end (handshake, chaos, stale-cookie rejection),
// the multi-threaded epoll server's per-thread fan-in, and multi-node
// sharding: redirect following, pinning, and cross-node session
// migration with zero lost frames.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "cluster/director.hpp"
#include "cluster/ring.hpp"
#include "net/client.hpp"
#include "net/netchan.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"

namespace net = aesip::net;
namespace netchan = aesip::net::netchan;
namespace cluster = aesip::cluster;
namespace farm = aesip::farm;
namespace aes = aesip::aes;

using namespace std::chrono_literals;

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Mixed verified traffic (same shape as test_net.cpp's helper, plus a
/// ClientConfig and a redirect-count out-param for the sharding tests).
/// Returns the number of responses that differed from aes::Aes128.
int run_verified_session(net::Transport& transport, const std::string& address,
                         std::uint64_t sid, int requests, std::uint32_t seed,
                         net::ClientConfig ccfg = {}, std::uint64_t* redirects_out = nullptr) {
  net::Client client(transport, address, sid, ccfg);
  std::mt19937 rng(seed);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  client.set_key(key);
  const aes::Aes128 ref(key);

  int mismatches = 0;
  struct Outstanding {
    std::uint32_t seq;
    std::vector<std::uint8_t> expect;
  };
  std::deque<Outstanding> outstanding;
  const auto collect = [&] {
    auto o = std::move(outstanding.front());
    outstanding.pop_front();
    if (client.wait(o.seq) != o.expect) ++mismatches;
  };

  for (int r = 0; r < requests; ++r) {
    farm::Key128 iv;
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
    const std::span<const std::uint8_t, 16> ivs(iv.data(), 16);
    const int mode = static_cast<int>(rng() % 3);
    std::size_t bytes = (1 + rng() % 6) * aes::kBlock;
    if (mode == 2) bytes -= rng() % aes::kBlock;
    std::vector<std::uint8_t> data(bytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());

    Outstanding o;
    if (mode == 2) {
      o.expect = aes::ctr_crypt(ref, ivs, data);
      o.seq = client.submit_ctr(iv, std::move(data));
    } else if (rng() & 1) {
      o.expect = mode ? aes::cbc_encrypt(ref, ivs, data) : aes::ecb_encrypt(ref, data);
      o.seq = client.submit_enc(mode == 1, iv, std::move(data));
    } else {
      o.expect = mode ? aes::cbc_decrypt(ref, ivs, data) : aes::ecb_decrypt(ref, data);
      o.seq = client.submit_dec(mode == 1, iv, std::move(data));
    }
    outstanding.push_back(std::move(o));
    while (outstanding.size() >= client.window()) collect();
  }
  while (!outstanding.empty()) collect();
  client.drain();
  if (redirects_out) *redirects_out = client.redirects();
  client.bye();
  return mismatches;
}

net::ServerConfig cluster_cfg(const std::string& node_id, std::vector<std::string> seeds,
                              int workers = 1) {
  net::ServerConfig cfg;
  cfg.farm.workers = workers;
  cfg.farm.engine = aesip::engine::EngineKind::kSoftware;
  net::ClusterConfig cc;
  cc.node_id = node_id;
  cc.seeds = std::move(seeds);
  cc.gossip_interval = 20ms;
  cc.suspect_after = 1000ms;
  cfg.cluster = std::move(cc);
  return cfg;
}

/// Poll until `pred()` or `deadline` passes; membership convergence is
/// asynchronous (gossip), so tests wait on the directors, never sleep blind.
template <typename Pred>
bool wait_until(Pred&& pred, std::chrono::milliseconds deadline) {
  const auto end = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < end) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// cluster::Ring
// ---------------------------------------------------------------------------

TEST(ClusterRing, DeterministicAndFullCoverage) {
  cluster::Ring a(64), b(64);
  for (const char* id : {"alpha", "beta", "gamma"}) {
    a.add_node(id);
    b.add_node(id);
  }
  std::map<std::string, int> load;
  for (std::uint64_t sid = 1; sid <= 3000; ++sid) {
    const std::string& owner = a.owner(sid);
    EXPECT_EQ(owner, b.owner(sid)) << "ownership must be a pure function of membership";
    ++load[owner];
  }
  // Every node owns a real share: vnodes smooth the arcs, so no node
  // should fall below a loose 1/10th of fair (fair = 1000 here).
  ASSERT_EQ(load.size(), 3u);
  for (const auto& [id, n] : load) EXPECT_GT(n, 100) << id << " starved";
}

TEST(ClusterRing, MinimalDisruptionOnMembershipChange) {
  cluster::Ring r(64);
  r.add_node("n0");
  r.add_node("n1");
  r.add_node("n2");
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t sid = 1; sid <= 2000; ++sid) before[sid] = r.owner(sid);

  r.remove_node("n1");
  int moved = 0;
  for (const auto& [sid, owner] : before) {
    const std::string& now = r.owner(sid);
    if (owner != "n1") {
      EXPECT_EQ(now, owner) << "removing n1 must not move sid " << sid;
    } else {
      EXPECT_NE(now, "n1");
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // n1 owned something

  // Adding it back restores the original map exactly (same hash points).
  r.add_node("n1");
  for (const auto& [sid, owner] : before) EXPECT_EQ(r.owner(sid), owner);
}

TEST(ClusterRing, EmptyAndSingleNode) {
  cluster::Ring r(8);
  EXPECT_EQ(r.owner(42), "");
  EXPECT_EQ(r.node_count(), 0u);
  r.add_node("solo");
  EXPECT_TRUE(r.contains("solo"));
  for (std::uint64_t sid = 0; sid < 100; ++sid) EXPECT_EQ(r.owner(sid), "solo");
  r.remove_node("solo");
  EXPECT_EQ(r.owner(7), "");
}

// ---------------------------------------------------------------------------
// cluster::Director (pure state machine, fake clock)
// ---------------------------------------------------------------------------

TEST(ClusterDirector, GossipConvergesSuspectsAndDrains) {
  using clk = cluster::Director::clock;
  clk::time_point now = clk::now();

  cluster::DirectorConfig ca{"a", "addr-a", {"addr-b"}, 500ms, 16};
  cluster::DirectorConfig cb{"b", "addr-b", {}, 500ms, 16};
  cluster::Director a(ca, now), b(cb, now);
  EXPECT_EQ(a.alive_count(now), 1u);  // just self

  // One exchange each way: both learn both.
  a.tick(now);
  b.tick(now);
  EXPECT_TRUE(b.merge_view(a.encode_view(), now));
  EXPECT_TRUE(a.merge_view(b.encode_view(), now));
  EXPECT_EQ(a.alive_count(now), 2u);
  EXPECT_EQ(b.alive_count(now), 2u);
  EXPECT_EQ(a.address_of("b"), "addr-b");

  // Merge is idempotent; a garbage blob merges nothing and reports it.
  EXPECT_TRUE(a.merge_view(b.encode_view(), now));
  EXPECT_EQ(a.alive_count(now), 2u);
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe};
  EXPECT_FALSE(a.merge_view(garbage, now));

  // Owners agree across nodes once views agree.
  for (std::uint64_t sid = 1; sid <= 200; ++sid)
    EXPECT_EQ(a.owner(sid, now), b.owner(sid, now));

  // b stops gossiping: past suspect_after its heartbeat stops advancing
  // and it drops out of a's ring — every session re-homes onto a.
  now += 600ms;
  a.tick(now);
  EXPECT_EQ(a.alive_count(now), 1u);
  for (std::uint64_t sid = 1; sid <= 50; ++sid) EXPECT_EQ(a.owner(sid, now), "a");

  // A *draining* node spreads serving=false while its heartbeat still
  // advances: it stays in the view but leaves the ring.
  b.tick(now);
  b.set_self_serving(false);
  EXPECT_FALSE(b.self_serving());
  b.tick(now);
  EXPECT_TRUE(a.merge_view(b.encode_view(), now));
  EXPECT_EQ(a.alive_count(now), 1u);
  bool saw_b = false;
  for (const auto& nv : a.view(now))
    if (nv.id == "b") {
      saw_b = true;
      EXPECT_FALSE(nv.serving);
      EXPECT_FALSE(nv.alive);
    }
  EXPECT_TRUE(saw_b);
}

// ---------------------------------------------------------------------------
// netchan packet codec + cookies
// ---------------------------------------------------------------------------

TEST(Netchan, PacketCodecRoundtrip) {
  netchan::Packet p;
  p.type = netchan::PacketType::kData;
  p.conv = 0xdeadbeefu;
  p.seq = 41;
  p.ack = 39;
  p.ack_bits = 0b1011;
  p.cookie = 0x0123456789abcdefull;
  p.payload = {1, 2, 3, 4, 5, 250, 251, 252};

  const auto bytes = netchan::encode_packet(p);
  EXPECT_EQ(bytes.size(), netchan::kPacketOverhead + p.payload.size());

  netchan::Packet q;
  ASSERT_TRUE(netchan::decode_packet(bytes, q));
  EXPECT_EQ(q.type, p.type);
  EXPECT_EQ(q.conv, p.conv);
  EXPECT_EQ(q.seq, p.seq);
  EXPECT_EQ(q.ack, p.ack);
  EXPECT_EQ(q.ack_bits, p.ack_bits);
  EXPECT_EQ(q.cookie, p.cookie);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Netchan, PacketCodecRejectsEveryCorruption) {
  netchan::Packet p;
  p.type = netchan::PacketType::kData;
  p.conv = 7;
  p.seq = 1;
  p.payload.assign(16, 0xa5);
  const auto good = netchan::encode_packet(p);

  netchan::Packet out;
  // Any single flipped byte — header, payload, or the CRC itself — must
  // fail the CRC (or the magic/length checks before it).
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto bad = good;
    bad[i] ^= 0x40;
    EXPECT_FALSE(netchan::decode_packet(bad, out)) << "flip at byte " << i;
  }
  // Truncation at every length short of the full datagram.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(
        netchan::decode_packet(std::span<const std::uint8_t>(good.data(), len), out))
        << "truncated to " << len;
  }
  // Trailing garbage means payload_len disagrees with the datagram size.
  auto padded = good;
  padded.push_back(0);
  EXPECT_FALSE(netchan::decode_packet(padded, out));
  EXPECT_TRUE(netchan::decode_packet(good, out));  // the original still decodes
}

TEST(Netchan, CookieEpochWindow) {
  const std::string addr = "10.1.2.3:5555";
  const std::uint64_t secret = 0x5eedf00dULL;
  const std::uint64_t epoch = 1000;
  const std::uint64_t c = netchan::make_cookie(addr, secret, epoch);

  EXPECT_EQ(c, netchan::make_cookie(addr, secret, epoch));  // deterministic
  EXPECT_TRUE(netchan::cookie_valid(c, addr, secret, epoch));      // current
  EXPECT_TRUE(netchan::cookie_valid(c, addr, secret, epoch + 1));  // previous
  EXPECT_FALSE(netchan::cookie_valid(c, addr, secret, epoch + 2)) << "stale must fail";
  EXPECT_FALSE(netchan::cookie_valid(c, addr, secret, epoch - 1)) << "future must fail";
  EXPECT_FALSE(netchan::cookie_valid(c, "10.1.2.3:5556", secret, epoch));  // wrong addr
  EXPECT_FALSE(netchan::cookie_valid(c, addr, secret + 1, epoch));         // wrong secret
  EXPECT_FALSE(netchan::cookie_valid(c ^ 1, addr, secret, epoch));         // bit-flipped
}

// ---------------------------------------------------------------------------
// netchan::Channel — the reliability engine, driven by a fake clock
// ---------------------------------------------------------------------------

/// Shuttle every due packet from one channel into the other, optionally
/// through a seeded mangler (drop / duplicate / hold-one-back reorder —
/// the same misbehaviors udp.cpp's chaos Mangler injects at the socket).
struct LossyWire {
  std::mt19937 rng;
  double drop = 0, dup = 0, reorder = 0;
  std::optional<netchan::Packet> held;

  explicit LossyWire(std::uint32_t seed, double dr = 0, double du = 0, double re = 0)
      : rng(seed), drop(dr), dup(du), reorder(re) {}

  double roll() { return std::uniform_real_distribution<double>(0.0, 1.0)(rng); }

  void transfer(netchan::Channel& from, netchan::Channel& to,
                netchan::Channel::clock::time_point now) {
    netchan::Packet p;
    while (from.poll_outgoing(p, now)) {
      if (roll() < drop) continue;
      if (!held && roll() < reorder) {
        held = p;  // swapped with whatever goes out next
        continue;
      }
      const bool twice = roll() < dup;
      to.on_packet(p, now);
      if (twice) to.on_packet(p, now);
      if (held) {
        to.on_packet(*held, now);
        held.reset();
      }
    }
  }
};

TEST(NetchanChannel, LosslessInOrderDelivery) {
  netchan::ChannelConfig cc;
  cc.mtu_payload = 100;
  cc.window = 8;
  netchan::Channel a(cc), b(cc);
  auto now = netchan::Channel::clock::now();
  LossyWire wire(1);  // no loss

  std::mt19937 rng(11);
  std::vector<std::uint8_t> sent(4096);
  for (auto& v : sent) v = static_cast<std::uint8_t>(rng());

  std::vector<std::uint8_t> got;
  std::size_t off = 0;
  std::uint8_t buf[512];
  for (int iter = 0; iter < 1000 && (got.size() < sent.size() || !a.idle()); ++iter) {
    if (off < sent.size())
      off += a.send(std::span<const std::uint8_t>(sent.data() + off, sent.size() - off));
    wire.transfer(a, b, now);
    wire.transfer(b, a, now);
    for (std::size_t n; (n = b.receive(buf)) > 0;) got.insert(got.end(), buf, buf + n);
    now += 1ms;
  }
  EXPECT_EQ(got, sent);
  EXPECT_TRUE(a.idle());
  EXPECT_TRUE(b.recv_drained());
  EXPECT_EQ(a.stats().segs_resent, 0u) << "a lossless wire must never retransmit";
  EXPECT_EQ(b.stats().dups, 0u);
  EXPECT_EQ(b.stats().out_of_order, 0u);
  EXPECT_EQ(a.stats().segs_sent, (sent.size() + cc.mtu_payload - 1) / cc.mtu_payload);
}

TEST(NetchanChannel, MtuBoundarySegmentation) {
  // mtu_payload-1 / exact / +1 bytes must become 1 / 1 / 2 segments: the
  // fragmentation boundary is where an off-by-one would corrupt streams.
  for (const auto& [bytes, segs] :
       std::vector<std::pair<std::size_t, std::uint64_t>>{{63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}) {
    netchan::ChannelConfig cc;
    cc.mtu_payload = 64;
    netchan::Channel ch(cc);
    const auto now = netchan::Channel::clock::now();
    std::vector<std::uint8_t> data(bytes, 0x3c);
    ASSERT_EQ(ch.send(data), bytes);

    std::uint64_t emitted = 0;
    std::size_t payload_total = 0;
    netchan::Packet p;
    while (ch.poll_outgoing(p, now)) {
      ASSERT_EQ(p.type, netchan::PacketType::kData);
      EXPECT_LE(p.payload.size(), cc.mtu_payload);
      ++emitted;
      payload_total += p.payload.size();
    }
    EXPECT_EQ(emitted, segs) << bytes << " bytes";
    EXPECT_EQ(payload_total, bytes) << "no byte lost or invented at the boundary";
    EXPECT_EQ(ch.stats().segs_sent, segs);
  }
}

TEST(NetchanChannel, DuplicateSegmentDeliveredExactlyOnce) {
  netchan::Channel a, b;
  const auto now = netchan::Channel::clock::now();
  const std::vector<std::uint8_t> msg{'o', 'n', 'c', 'e'};
  a.send(msg);
  netchan::Packet p;
  ASSERT_TRUE(a.poll_outgoing(p, now));
  b.on_packet(p, now);
  b.on_packet(p, now);  // the duplicate
  EXPECT_EQ(b.stats().segs_received, 1u);
  EXPECT_EQ(b.stats().dups, 1u);
  std::uint8_t buf[64];
  EXPECT_EQ(b.receive(buf), msg.size());
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf));
  EXPECT_EQ(b.receive(buf), 0u) << "the duplicate must not deliver again";
}

TEST(NetchanChannel, SurvivesSeededLossDupAndReorder) {
  netchan::ChannelConfig cc;
  cc.mtu_payload = 128;
  cc.window = 8;
  cc.rto = 5ms;
  netchan::Channel a(cc), b(cc);
  auto now = netchan::Channel::clock::now();
  LossyWire ab(0xc0ffee, 0.10, 0.10, 0.10);  // a -> b mangled
  LossyWire ba(0xf00d, 0.10, 0.10, 0.10);    // acks mangled too

  std::mt19937 rng(99);
  std::vector<std::uint8_t> sent(16384);
  for (auto& v : sent) v = static_cast<std::uint8_t>(rng());

  std::vector<std::uint8_t> got;
  std::size_t off = 0;
  std::uint8_t buf[1024];
  for (int iter = 0; iter < 50000 && (got.size() < sent.size() || !a.idle()); ++iter) {
    if (off < sent.size())
      off += a.send(std::span<const std::uint8_t>(sent.data() + off, sent.size() - off));
    ab.transfer(a, b, now);
    ba.transfer(b, a, now);
    for (std::size_t n; (n = b.receive(buf)) > 0;) got.insert(got.end(), buf, buf + n);
    now += 1ms;  // fake time: every RTO expiry is exercised, no wall clock
  }
  ASSERT_EQ(got.size(), sent.size()) << "stream stalled under chaos";
  EXPECT_EQ(got, sent) << "bytes must arrive intact and in order";
  EXPECT_TRUE(a.idle());
  EXPECT_FALSE(a.dead());
  // The chaos must actually have exercised the machinery it claims to.
  EXPECT_GT(a.stats().segs_resent, 0u) << "drops should have forced retransmits";
  EXPECT_GT(b.stats().dups, 0u) << "dup injection + retransmit overlap";
  EXPECT_GT(b.stats().out_of_order, 0u) << "reorder should have stashed segments";
}

TEST(NetchanChannel, ResendCapDeclaresPeerDead) {
  netchan::ChannelConfig cc;
  cc.rto = 1ms;
  cc.max_resend = 3;
  netchan::Channel a(cc);
  auto now = netchan::Channel::clock::now();
  const std::vector<std::uint8_t> msg{1, 2, 3};
  a.send(msg);
  netchan::Packet p;
  for (int i = 0; i < 20 && !a.dead(); ++i) {
    while (a.poll_outgoing(p, now)) {
    }  // black hole: nothing ever acked
    now += 2ms;
  }
  EXPECT_TRUE(a.dead()) << "a silent peer must be declared dead at the resend cap";
  EXPECT_GE(a.stats().segs_resent, 3u);
}

// ---------------------------------------------------------------------------
// UDP transport end to end
// ---------------------------------------------------------------------------

TEST(UdpTransport, VerifiedSessionsEndToEnd) {
  net::UdpConfig ucfg;
  ucfg.rto = 10ms;
  auto transport = net::make_udp_transport(ucfg);
  net::ServerConfig scfg;
  scfg.farm.workers = 2;
  scfg.farm.engine = aesip::engine::EngineKind::kSoftware;
  net::Server server(*transport, "127.0.0.1:0", scfg);
  server.start();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 2; ++s)
    threads.emplace_back([&, s] {
      mismatches += run_verified_session(*transport, server.address(),
                                         static_cast<std::uint64_t>(s) + 1, 32,
                                         500 + static_cast<std::uint32_t>(s));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  server.stop();
  const auto st = server.stats();
  EXPECT_EQ(st.connections_accepted, 2u);
  EXPECT_EQ(st.protocol_errors, 0u) << "netchan must hand the codec a clean byte stream";
  EXPECT_EQ(st.responses_sent, st.data_frames);
}

TEST(UdpTransport, ChaosDropDupReorderZeroLoss) {
  // The socket-level mangler (seeded, deterministic) drops/dups/reorders
  // real datagrams — handshake included — and the stream above must still
  // be bit-exact. This is the UDP answer to the loadgen's zero-loss gate.
  net::UdpConfig ucfg;
  ucfg.rto = 5ms;
  ucfg.chaos = net::UdpChaos{.seed = 0xbadca5e, .drop = 0.05, .dup = 0.05, .reorder = 0.05};
  auto transport = net::make_udp_transport(ucfg);
  net::ServerConfig scfg;
  scfg.farm.workers = 2;
  scfg.farm.engine = aesip::engine::EngineKind::kSoftware;
  net::Server server(*transport, "127.0.0.1:0", scfg);
  server.start();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 2; ++s)
    threads.emplace_back([&, s] {
      mismatches += run_verified_session(*transport, server.address(),
                                         static_cast<std::uint64_t>(s) + 1, 24,
                                         700 + static_cast<std::uint32_t>(s));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0) << "chaos may slow the stream, never corrupt it";

  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(UdpTransport, StaleCookieRejectedStateless) {
  // Drive the handshake with a raw socket so we can forge cookies. The
  // server must hand out state for a valid cookie and silently drop a
  // stale one (minted two epochs ago) — without ever allocating.
  net::UdpConfig ucfg;
  ucfg.secret = 0x5eedf00dULL;  // known secret so the test can mint cookies
  auto transport = net::make_udp_transport(ucfg);
  auto listener = transport->listen("127.0.0.1:0");
  const std::string addr = listener->address();
  const int port = std::stoi(addr.substr(addr.rfind(':') + 1));

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa), 0);
  sockaddr_in self{};
  socklen_t slen = sizeof self;
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&self), &slen), 0);
  const std::string self_addr =
      "127.0.0.1:" + std::to_string(ntohs(self.sin_port));  // how the server keys us

  const auto send_packet = [&](const netchan::Packet& p) {
    const auto bytes = netchan::encode_packet(p);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  };
  // The listener only pumps inside wait()/accept(); interleave that with
  // polling our socket.
  const auto recv_packet = [&](netchan::Packet& out) {
    for (int i = 0; i < 500; ++i) {
      listener->wait(1ms);
      pollfd pf{fd, POLLIN, 0};
      if (::poll(&pf, 1, 0) == 1) {
        std::uint8_t buf[2048];
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0 &&
            netchan::decode_packet(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)), out))
          return true;
      }
    }
    return false;
  };

  // Stale cookie: minted with the same formula udp.cpp uses, two epochs
  // back — outside the current-or-previous acceptance window.
  const auto ms_now = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  const std::uint64_t epoch =
      static_cast<std::uint64_t>(ms_now / ucfg.cookie_epoch.count());
  netchan::Packet stale;
  stale.type = netchan::PacketType::kConnect;
  stale.cookie = netchan::make_cookie(self_addr, ucfg.secret, epoch >= 2 ? epoch - 2 : epoch + 7);
  send_packet(stale);
  netchan::Packet reply;
  EXPECT_FALSE(recv_packet(reply)) << "a stale cookie must be dropped silently";
  EXPECT_EQ(listener->accept(), nullptr) << "no state may be allocated for a stale cookie";

  // Forged cookie (right shape, wrong secret): same silent drop.
  netchan::Packet forged;
  forged.type = netchan::PacketType::kConnect;
  forged.cookie = netchan::make_cookie(self_addr, ucfg.secret ^ 0xff, epoch);
  send_packet(forged);
  EXPECT_FALSE(recv_packet(reply));
  EXPECT_EQ(listener->accept(), nullptr);

  // The honest handshake on the very same socket still completes.
  netchan::Packet req;
  req.type = netchan::PacketType::kChallengeReq;
  send_packet(req);
  ASSERT_TRUE(recv_packet(reply));
  ASSERT_EQ(reply.type, netchan::PacketType::kChallenge);
  netchan::Packet conn;
  conn.type = netchan::PacketType::kConnect;
  conn.cookie = reply.cookie;
  send_packet(conn);
  ASSERT_TRUE(recv_packet(reply));
  EXPECT_EQ(reply.type, netchan::PacketType::kAccept);
  std::unique_ptr<net::Conn> accepted;
  for (int i = 0; i < 500 && !accepted; ++i) {
    listener->wait(1ms);
    accepted = listener->accept();
  }
  ASSERT_NE(accepted, nullptr) << "a valid cookie must produce the connection";
  EXPECT_EQ(accepted->peer(), self_addr);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Multi-threaded epoll server
// ---------------------------------------------------------------------------

TEST(EpollServer, PerThreadFanInAccountsForEverything) {
  auto transport = net::make_tcp_transport();
  net::ServerConfig cfg;
  cfg.farm.workers = 2;
  cfg.farm.engine = aesip::engine::EngineKind::kSoftware;
  cfg.threads = 4;  // acceptor + 4 worker loops, round-robin adoption
  net::Server server(*transport, "127.0.0.1:0", cfg);
  server.start();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 8; ++s)
    threads.emplace_back([&, s] {
      mismatches += run_verified_session(*transport, server.address(),
                                         static_cast<std::uint64_t>(s) + 1, 16,
                                         900 + static_cast<std::uint32_t>(s));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  server.stop();
  const auto st = server.stats();
  EXPECT_TRUE(st.poller == "epoll" || st.poller == "poll") << st.poller;
  ASSERT_EQ(st.per_thread.size(), 4u);

  // Per-thread counters must partition the totals exactly: every
  // connection was adopted by exactly one loop, every frame read and
  // every response written on exactly one loop.
  std::uint64_t adopted = 0, frames = 0, responses = 0, bytes_in = 0, bytes_out = 0;
  for (const auto& t : st.per_thread) {
    adopted += t.connections_adopted;
    frames += t.frames_received;
    responses += t.responses_sent;
    bytes_in += t.bytes_in;
    bytes_out += t.bytes_out;
  }
  EXPECT_EQ(adopted, st.connections_accepted);
  EXPECT_EQ(frames, st.frames_received);
  EXPECT_EQ(responses, st.responses_sent + st.errors_sent);
  EXPECT_EQ(bytes_in, st.bytes_in);
  EXPECT_EQ(bytes_out, st.bytes_out);
  // Round-robin adoption: 8 connections over 4 loops = 2 each.
  for (const auto& t : st.per_thread)
    EXPECT_EQ(t.connections_adopted, 2u) << "loop " << t.thread;
  EXPECT_EQ(st.responses_sent, st.data_frames);
  EXPECT_EQ(st.protocol_errors, 0u);
}

// ---------------------------------------------------------------------------
// Multi-node sharding
// ---------------------------------------------------------------------------

TEST(ClusterSharding, ThreeNodesRedirectAndServeBitExact) {
  auto transport = net::make_tcp_transport();

  // Bring up three clustered nodes, each seeding off the earlier ones.
  std::vector<std::unique_ptr<net::Server>> nodes;
  std::vector<std::string> addrs;
  for (int n = 0; n < 3; ++n) {
    auto cfg = cluster_cfg("n" + std::to_string(n), addrs);
    nodes.push_back(std::make_unique<net::Server>(*transport, "127.0.0.1:0", cfg));
    addrs.push_back(nodes.back()->address());
    nodes.back()->start();
  }
  for (const auto& node : nodes)
    ASSERT_TRUE(wait_until(
        [&] {
          return node->director()->alive_count(std::chrono::steady_clock::now()) == 3u;
        },
        5000ms))
        << "gossip membership did not converge";

  // Every session dials a fixed node regardless of owner; the ring plus
  // kRedirect must land it on the right one, bit-exact.
  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> hops{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 6; ++s)
    threads.emplace_back([&, s] {
      std::uint64_t r = 0;
      mismatches += run_verified_session(*transport, addrs[static_cast<std::size_t>(s) % 3],
                                         static_cast<std::uint64_t>(s) + 1, 12,
                                         1100 + static_cast<std::uint32_t>(s), {}, &r);
      hops += r;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // With 6 sessions hashed over 3 nodes and blind dialing, some must have
  // been redirected — and every hop a client followed is one a node sent.
  std::uint64_t sent = 0, served = 0;
  for (auto& node : nodes) {
    node->stop();
    const auto st = node->stats();
    sent += st.redirects_sent;
    served += st.data_frames;
    EXPECT_EQ(st.protocol_errors, 0u);
    EXPECT_GT(st.gossip_rounds, 0u) << st.node_id << " never gossiped";
  }
  EXPECT_GT(hops.load(), 0u);
  EXPECT_EQ(sent, hops.load());
  EXPECT_GT(served, 0u);
}

TEST(ClusterSharding, PinnedClientIsNeverRedirected) {
  auto transport = net::make_tcp_transport();
  std::vector<std::unique_ptr<net::Server>> nodes;
  std::vector<std::string> addrs;
  for (int n = 0; n < 2; ++n) {
    auto cfg = cluster_cfg("n" + std::to_string(n), addrs);
    nodes.push_back(std::make_unique<net::Server>(*transport, "127.0.0.1:0", cfg));
    addrs.push_back(nodes.back()->address());
    nodes.back()->start();
  }
  for (const auto& node : nodes)
    ASSERT_TRUE(wait_until(
        [&] {
          return node->director()->alive_count(std::chrono::steady_clock::now()) == 2u;
        },
        5000ms));

  // Find a session n0 does NOT own; a pinned client talking to n0 must be
  // served there anyway (this is how node-targeted tooling works).
  cluster::Ring ring(64);
  ring.add_node("n0");
  ring.add_node("n1");
  std::uint64_t foreign_sid = 0;
  for (std::uint64_t sid = 1; sid < 1000; ++sid)
    if (ring.owner(sid) == "n1") {
      foreign_sid = sid;
      break;
    }
  ASSERT_NE(foreign_sid, 0u);

  net::ClientConfig pinned;
  pinned.pinned = true;
  std::uint64_t redirects = ~0ull;
  EXPECT_EQ(run_verified_session(*transport, addrs[0], foreign_sid, 8, 1300, pinned,
                                 &redirects),
            0);
  EXPECT_EQ(redirects, 0u) << "kFlagPinned must suppress redirects";
  for (auto& node : nodes) node->stop();
  EXPECT_GT(nodes[0]->stats().data_frames, 0u) << "n0 must have served the pinned session";
  EXPECT_EQ(nodes[0]->stats().redirects_sent, 0u);
}

TEST(ClusterSharding, QuarantineLastWorkerMigratesSessionsZeroLoss) {
  // The migration story end to end: quarantining a node's only farm
  // worker stops it serving; gossip spreads the fact; a live session
  // mid-stream gets kRedirect, replays onto the survivor, and not one
  // frame is lost or corrupted.
  auto transport = net::make_tcp_transport();
  std::vector<std::unique_ptr<net::Server>> nodes;
  std::vector<std::string> addrs;
  for (int n = 0; n < 2; ++n) {
    auto cfg = cluster_cfg("n" + std::to_string(n), addrs, /*workers=*/1);
    nodes.push_back(std::make_unique<net::Server>(*transport, "127.0.0.1:0", cfg));
    addrs.push_back(nodes.back()->address());
    nodes.back()->start();
  }
  for (const auto& node : nodes)
    ASSERT_TRUE(wait_until(
        [&] {
          return node->director()->alive_count(std::chrono::steady_clock::now()) == 2u;
        },
        5000ms));

  // A session n1 owns, dialed directly at n1: no redirect yet.
  cluster::Ring ring(64);
  ring.add_node("n0");
  ring.add_node("n1");
  std::uint64_t sid = 0;
  for (std::uint64_t s = 1; s < 1000; ++s)
    if (ring.owner(s) == "n1") {
      sid = s;
      break;
    }
  ASSERT_NE(sid, 0u);

  net::Client client(*transport, addrs[1], sid);
  std::mt19937 rng(1500);
  farm::Key128 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  client.set_key(key);
  const aes::Aes128 ref(key);

  int mismatches = 0;
  const auto one_request = [&] {
    std::vector<std::uint8_t> data(aes::kBlock * (1 + rng() % 4));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto expect = aes::ecb_encrypt(ref, data);
    farm::Key128 iv{};
    if (client.enc_blocks(false, iv, std::move(data)) != expect) ++mismatches;
  };
  for (int r = 0; r < 8; ++r) one_request();
  EXPECT_EQ(client.redirects(), 0u) << "dialing the owner directly needs no hop";

  // Quarantine n1's only worker through the admin plane (pinned client, so
  // the admin traffic itself is never bounced away from its target).
  {
    net::ClientConfig pinned;
    pinned.pinned = true;
    net::Client admin(*transport, addrs[1], 0xad31ull, pinned);
    admin.fleet_quarantine(0, /*resume=*/false);
    admin.bye();
  }

  // n1 drops out of both rings: immediately out of its own (serving flag
  // is local), out of n0's once gossip delivers the news.
  ASSERT_TRUE(wait_until(
      [&] {
        const auto now = std::chrono::steady_clock::now();
        return !nodes[1]->director()->self_serving() &&
               nodes[0]->director()->alive_count(now) == 1u;
      },
      5000ms))
      << "quarantine did not propagate through gossip";

  // Same client, same session, no manual reconnect: the next frames hit
  // n1, bounce, replay on n0 — and every byte still verifies.
  for (int r = 0; r < 8; ++r) one_request();
  client.drain();
  EXPECT_EQ(mismatches, 0) << "migration corrupted frames";
  EXPECT_GE(client.redirects(), 1u);
  EXPECT_EQ(client.server_address(), addrs[0]) << "the session must land on the survivor";
  client.bye();

  for (auto& node : nodes) node->stop();
  EXPECT_GE(nodes[1]->stats().redirects_sent, 1u);
  EXPECT_GT(nodes[0]->stats().data_frames, 0u) << "the survivor served the migrated tail";
  EXPECT_EQ(nodes[0]->stats().protocol_errors, 0u);
  EXPECT_EQ(nodes[1]->stats().protocol_errors, 0u);
}

// ---------------------------------------------------------------------------
// Client connect backoff + wire gossip error path
// ---------------------------------------------------------------------------

TEST(ClusterClient, ConnectBackoffIsDoublyBoundedAndCarriesTheError) {
  auto transport = net::make_tcp_transport();
  // Grab a port that refuses connections: bind + close, then dial it.
  std::string dead_addr;
  {
    auto probe = transport->listen("127.0.0.1:0");
    dead_addr = probe->address();
    probe->close();
  }

  net::ClientConfig cfg;
  cfg.connect_attempts = 1000;             // attempts alone would spin forever...
  cfg.backoff_initial = 2ms;
  cfg.backoff_max = 20ms;
  cfg.connect_wait_max = 150ms;            // ...so the wall-clock cap must bite
  const auto t0 = std::chrono::steady_clock::now();
  try {
    net::Client client(*transport, dead_addr, 1, cfg);
    FAIL() << "connect to a dead port must throw";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::ErrorCode::kConnectFailed);
    // The message must carry the last underlying failure, not just "failed".
    EXPECT_NE(std::string(e.what()).find("connect"), std::string::npos) << e.what();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed, 2000ms) << "total wait must be capped by connect_wait_max";
}

TEST(ClusterClient, GossipAgainstStandaloneServerIsNotClustered) {
  net::LoopbackTransport transport;
  net::ServerConfig cfg;
  cfg.farm.workers = 1;
  cfg.farm.engine = aesip::engine::EngineKind::kSoftware;
  net::Server server(transport, "svc", cfg);  // no ClusterConfig
  server.start();
  EXPECT_EQ(server.director(), nullptr);

  net::Client client(transport, "svc", 1);
  try {
    client.gossip({1, 2, 3});
    FAIL() << "kGossip at a standalone server must be refused";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::ErrorCode::kNotClustered);
  }
  client.bye();
  server.stop();
}

}  // namespace
