// Netlist construction, the functional evaluator, and the bus builders
// (xor trees, muxes, comparators, counters) the IP synthesis rests on.
#include <gtest/gtest.h>

#include <random>

#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace nlist = aesip::netlist;
using nlist::Bus;
using nlist::Netlist;
using nlist::NetId;

TEST(Netlist, ConstantsAndGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.gate_xor(a, b);
  const NetId n = nl.gate_not(a);
  const NetId o = nl.gate_or(a, b);
  const NetId m = nl.gate_mux(a, b, nl.const1());
  nlist::Evaluator ev(nl);
  for (int av = 0; av < 2; ++av)
    for (int bv = 0; bv < 2; ++bv) {
      ev.set(a, av);
      ev.set(b, bv);
      ev.settle();
      EXPECT_EQ(ev.get(x), av != bv);
      EXPECT_EQ(ev.get(n), !av);
      EXPECT_EQ(ev.get(o), av || bv);
      EXPECT_EQ(ev.get(m), av ? true : bv);
      EXPECT_FALSE(ev.get(nl.const0()));
      EXPECT_TRUE(ev.get(nl.const1()));
    }
}

TEST(Netlist, LutCellEvaluates) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 3);
  // Majority function of 3 inputs: indices 3,5,6,7.
  const NetId maj = nl.add_lut(0b11101000, in);
  nlist::Evaluator ev(nl);
  for (int v = 0; v < 8; ++v) {
    ev.set_bus(in, static_cast<std::uint64_t>(v));
    ev.settle();
    const int ones = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(ev.get(maj), ones >= 2) << v;
  }
}

TEST(Netlist, LutRejectsWideInput) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 5);
  EXPECT_THROW(nl.add_lut(0, in), std::invalid_argument);
}

TEST(Netlist, XorTreeMatchesParity) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 9);
  const NetId x = nl.xor_tree(in);
  nlist::Evaluator ev(nl);
  std::mt19937 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t v = rng() & 0x1ff;
    ev.set_bus(in, v);
    ev.settle();
    EXPECT_EQ(ev.get(x), __builtin_parityll(v) != 0);
  }
}

TEST(Netlist, XorTreeOfNothingIsZero) {
  Netlist nl;
  const NetId x = nl.xor_tree({});
  EXPECT_EQ(x, nl.const0());
}

TEST(Netlist, MuxNSelectsBinaryIndex) {
  Netlist nl;
  const Bus sel = nl.add_input_bus("sel", 2);
  std::vector<Bus> choices;
  for (int i = 0; i < 4; ++i) choices.push_back(nl.add_input_bus("c" + std::to_string(i), 8));
  const Bus out = nl.mux_n(sel, choices);
  nlist::Evaluator ev(nl);
  for (int i = 0; i < 4; ++i)
    ev.set_bus(choices[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(0x10 + i));
  for (int s = 0; s < 4; ++s) {
    ev.set_bus(sel, static_cast<std::uint64_t>(s));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), static_cast<std::uint64_t>(0x10 + s)) << s;
  }
}

TEST(Netlist, MuxNTenWayConstant) {
  // The rcon mux shape: 11 constant choices on a 4-bit select.
  Netlist nl;
  const Bus sel = nl.add_input_bus("sel", 4);
  std::vector<Bus> choices;
  for (int i = 0; i < 11; ++i)
    choices.push_back(nl.constant_bus(static_cast<std::uint64_t>(i * 3 + 1), 8));
  const Bus out = nl.mux_n(sel, choices);
  nlist::Evaluator ev(nl);
  for (int s = 0; s < 11; ++s) {
    ev.set_bus(sel, static_cast<std::uint64_t>(s));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), static_cast<std::uint64_t>(s * 3 + 1)) << s;
  }
}

TEST(Netlist, EqConstComparator) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  const NetId eq10 = nl.eq_const(in, 10);
  const NetId eq0 = nl.eq_const(in, 0);
  nlist::Evaluator ev(nl);
  for (int v = 0; v < 16; ++v) {
    ev.set_bus(in, static_cast<std::uint64_t>(v));
    ev.settle();
    EXPECT_EQ(ev.get(eq10), v == 10) << v;
    EXPECT_EQ(ev.get(eq0), v == 0) << v;
  }
}

TEST(Netlist, IncrementWraps) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 4);
  const Bus out = nl.increment(in);
  nlist::Evaluator ev(nl);
  for (int v = 0; v < 16; ++v) {
    ev.set_bus(in, static_cast<std::uint64_t>(v));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), static_cast<std::uint64_t>((v + 1) & 0xf)) << v;
  }
}

TEST(Netlist, XorConstUsesNotGatesOnlyWhereSet) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 8);
  const auto gates_before = nl.stats().gates;
  const Bus out = nl.xor_const(in, 0x0f);
  EXPECT_EQ(nl.stats().gates - gates_before, 4u) << "only 4 set bits need inverters";
  nlist::Evaluator ev(nl);
  ev.set_bus(in, 0x55);
  ev.settle();
  EXPECT_EQ(ev.get_bus(out), 0x55u ^ 0x0fu);
}

TEST(Netlist, RomMacroReadsTable) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i)
    table[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i * 7 + 3);
  const Bus out = nl.add_rom(table, addr, "rom");
  nlist::Evaluator ev(nl);
  for (int a = 0; a < 256; a += 13) {
    ev.set_bus(addr, static_cast<std::uint64_t>(a));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), table[static_cast<std::size_t>(a)]) << a;
  }
  EXPECT_EQ(nl.stats().roms, 1u);
  EXPECT_EQ(nl.stats().rom_bits, 2048u);
}

TEST(Netlist, RomRequiresEightAddressBits) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 4);
  std::array<std::uint8_t, 256> table{};
  EXPECT_THROW(nl.add_rom(table, addr, "rom"), std::invalid_argument);
}

TEST(Netlist, DffSequentialBehaviour) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_dff(d);
  nlist::Evaluator ev(nl);
  ev.set(d, true);
  ev.settle();
  EXPECT_FALSE(ev.get(q)) << "before any clock the register holds reset value";
  ev.clock();
  EXPECT_TRUE(ev.get(q));
  ev.set(d, false);
  ev.settle();
  EXPECT_TRUE(ev.get(q)) << "q changes only at the clock edge";
  ev.clock();
  EXPECT_FALSE(ev.get(q));
}

TEST(Netlist, DffEnableGates) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId en = nl.add_input("en");
  const NetId q = nl.add_dff(d, en);
  nlist::Evaluator ev(nl);
  ev.set(d, true);
  ev.set(en, false);
  ev.settle();
  ev.clock();
  EXPECT_FALSE(ev.get(q)) << "disabled register must hold";
  ev.set(en, true);
  ev.settle();
  ev.clock();
  EXPECT_TRUE(ev.get(q));
}

TEST(Netlist, DffFeedbackToggles) {
  // q <= not q : a divide-by-two toggler, exercising pre-created Q nets.
  Netlist nl;
  const NetId q = nl.new_net();
  const NetId d = nl.gate_not(q);
  nl.add_dff_with_out(q, d);
  nlist::Evaluator ev(nl);
  ev.settle();
  bool expected = false;
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ev.get(q), expected);
    ev.clock();
    expected = !expected;
  }
}

TEST(Netlist, CounterCircuit) {
  // 4-bit counter from increment + DFFs.
  Netlist nl;
  Bus q;
  for (int i = 0; i < 4; ++i) q.push_back(nl.new_net());
  const Bus d = nl.increment(q);
  for (int i = 0; i < 4; ++i)
    nl.add_dff_with_out(q[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(i)]);
  nlist::Evaluator ev(nl);
  ev.settle();
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(ev.get_bus(q), static_cast<std::uint64_t>(v & 0xf));
    ev.clock();
  }
}

TEST(Netlist, PinCounting) {
  Netlist nl;
  const Bus in = nl.add_input_bus("in", 9);
  nl.add_output_bus(in, "out");
  (void)nl.add_input("extra");
  EXPECT_EQ(nl.pin_count(), 19);
  EXPECT_EQ(nl.inputs().size(), 10u);
  EXPECT_EQ(nl.outputs().size(), 9u);
}

TEST(Netlist, StatsCountKinds) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.gate_xor(a, b);
  (void)nl.gate_and(a, x);
  (void)nl.add_dff(x);
  const std::array<NetId, 2> lut_in{a, b};
  (void)nl.add_lut(0x6, lut_in);
  const auto s = nl.stats();
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.dffs, 1u);
  EXPECT_EQ(s.luts, 1u);
}
