// Modes of operation: NIST SP 800-38A known-answer vectors, PKCS#7
// behaviour (including malformed-padding rejection) and round-trip
// properties on arbitrary message lengths.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "aes/ttable.hpp"

namespace aes = aesip::aes;

namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

// SP 800-38A common material.
const std::string kKey = "2b7e151628aed2a6abf7158809cf4f3c";
const std::string kPlain =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

}  // namespace

TEST(Ecb, Sp800_38aVector) {
  aes::Aes128 c(from_hex(kKey));
  const auto ct = aes::ecb_encrypt(c, from_hex(kPlain));
  EXPECT_EQ(to_hex(ct),
            "3ad77bb40d7a3660a89ecaf32466ef97"
            "f5d3d58503b9699de785895a96fdbaaf"
            "43b1cd7f598ece23881b00e3ed030688"
            "7b0c785e27e8ad3f8223207104725dd4");
  EXPECT_EQ(to_hex(aes::ecb_decrypt(c, ct)), kPlain);
}

TEST(Cbc, Sp800_38aVector) {
  aes::Aes128 c(from_hex(kKey));
  const auto iv_vec = from_hex("000102030405060708090a0b0c0d0e0f");
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  const auto ct = aes::cbc_encrypt(c, iv, from_hex(kPlain));
  EXPECT_EQ(to_hex(ct),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7");
  EXPECT_EQ(to_hex(aes::cbc_decrypt(c, iv, ct)), kPlain);
}

TEST(Ctr, Sp800_38aVector) {
  aes::Aes128 c(from_hex(kKey));
  const auto ctr_vec = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const std::span<const std::uint8_t, 16> ctr(ctr_vec.data(), 16);
  const auto ct = aes::ctr_crypt(c, ctr, from_hex(kPlain));
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
  // CTR decrypts with the same operation.
  EXPECT_EQ(to_hex(aes::ctr_crypt(c, ctr, ct)), kPlain);
}

TEST(Ctr, CounterWrapsAcrossByteBoundary) {
  aes::Aes128 c(from_hex(kKey));
  const auto ctr_vec = from_hex("000000000000000000000000000000ff");
  const std::span<const std::uint8_t, 16> ctr(ctr_vec.data(), 16);
  const auto pt = random_bytes(48, 9);
  const auto ct = aes::ctr_crypt(c, ctr, pt);
  EXPECT_EQ(to_hex(aes::ctr_crypt(c, ctr, ct)), to_hex(pt));
}

TEST(Ctr, HandlesPartialFinalBlock) {
  aes::Aes128 c(from_hex(kKey));
  const auto ctr_vec = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const std::span<const std::uint8_t, 16> ctr(ctr_vec.data(), 16);
  for (const std::size_t n : {1u, 5u, 15u, 17u, 33u}) {
    const auto pt = random_bytes(n, static_cast<std::uint32_t>(n));
    const auto ct = aes::ctr_crypt(c, ctr, pt);
    EXPECT_EQ(ct.size(), n);
    EXPECT_EQ(to_hex(aes::ctr_crypt(c, ctr, ct)), to_hex(pt));
  }
}

TEST(Ecb, RejectsPartialBlocks) {
  aes::Aes128 c(from_hex(kKey));
  EXPECT_THROW(aes::ecb_encrypt(c, random_bytes(17, 3)), std::invalid_argument);
  EXPECT_THROW(aes::ecb_decrypt(c, random_bytes(15, 3)), std::invalid_argument);
}

TEST(Cbc, RejectsPartialBlocks) {
  aes::Aes128 c(from_hex(kKey));
  const auto iv_vec = from_hex("000102030405060708090a0b0c0d0e0f");
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  EXPECT_THROW(aes::cbc_encrypt(c, iv, random_bytes(31, 3)), std::invalid_argument);
}

TEST(Cbc, IvChangesCiphertext) {
  aes::Aes128 c(from_hex(kKey));
  const auto iv1_vec = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto iv2_vec = from_hex("100102030405060708090a0b0c0d0e0f");
  const std::span<const std::uint8_t, 16> iv1(iv1_vec.data(), 16);
  const std::span<const std::uint8_t, 16> iv2(iv2_vec.data(), 16);
  const auto pt = from_hex(kPlain);
  EXPECT_NE(to_hex(aes::cbc_encrypt(c, iv1, pt)), to_hex(aes::cbc_encrypt(c, iv2, pt)));
}

TEST(Cbc, IdenticalBlocksProduceDistinctCiphertext) {
  aes::Aes128 c(from_hex(kKey));
  const auto iv_vec = from_hex("000102030405060708090a0b0c0d0e0f");
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  std::vector<std::uint8_t> pt(32, 0xab);  // two identical blocks
  const auto ct = aes::cbc_encrypt(c, iv, pt);
  EXPECT_NE(to_hex(std::span(ct).subspan(0, 16)), to_hex(std::span(ct).subspan(16, 16)));
}

// --- PKCS#7 -----------------------------------------------------------------------

class Pkcs7Length : public ::testing::TestWithParam<int> {};

TEST_P(Pkcs7Length, RoundTripsEveryLength) {
  const auto data = random_bytes(static_cast<std::size_t>(GetParam()),
                                 static_cast<std::uint32_t>(GetParam()) + 77);
  const auto padded = aes::pkcs7_pad(data);
  EXPECT_EQ(padded.size() % 16, 0u);
  EXPECT_GT(padded.size(), data.size());  // always at least one pad byte
  const auto back = aes::pkcs7_unpad(padded);
  EXPECT_EQ(to_hex(back), to_hex(data));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Pkcs7Length, ::testing::Range(0, 49));

TEST(Pkcs7, RejectsMalformedPadding) {
  EXPECT_THROW(aes::pkcs7_unpad(std::vector<std::uint8_t>{}), std::invalid_argument);
  std::vector<std::uint8_t> bad(16, 0x00);  // pad byte 0 invalid
  EXPECT_THROW(aes::pkcs7_unpad(bad), std::invalid_argument);
  bad.assign(16, 0x11);  // pad byte 17 > block size
  EXPECT_THROW(aes::pkcs7_unpad(bad), std::invalid_argument);
  bad.assign(16, 0x04);
  bad[14] = 0x03;  // inconsistent run
  EXPECT_THROW(aes::pkcs7_unpad(bad), std::invalid_argument);
  bad = random_bytes(15, 4);  // not a block multiple
  EXPECT_THROW(aes::pkcs7_unpad(bad), std::invalid_argument);
}

TEST(Pkcs7, FullPadBlockWhenAligned) {
  const auto data = random_bytes(32, 5);
  const auto padded = aes::pkcs7_pad(data);
  EXPECT_EQ(padded.size(), 48u);
  for (std::size_t i = 32; i < 48; ++i) EXPECT_EQ(padded[i], 16);
}

TEST(Pkcs7, RejectsZeroPadByteEvenWithValidPrefix) {
  // Multi-block message whose earlier bytes are perfectly normal: only the
  // final byte is inspected first, and 0 can never be a pad length.
  auto buf = random_bytes(31, 6);
  buf.push_back(0x00);
  EXPECT_THROW(aes::pkcs7_unpad(buf), std::invalid_argument);
}

TEST(Pkcs7, RejectsEveryPadByteAboveBlockSize) {
  for (int pad = 17; pad <= 255; ++pad) {
    std::vector<std::uint8_t> buf(32, static_cast<std::uint8_t>(pad));
    EXPECT_THROW(aes::pkcs7_unpad(buf), std::invalid_argument) << "pad byte " << pad;
  }
}

TEST(Pkcs7, RejectsInconsistentTailAtEveryPosition) {
  // A declared pad of 6: corrupting any single byte of the run must reject.
  for (std::size_t corrupt = 0; corrupt < 6; ++corrupt) {
    auto buf = random_bytes(10, 7);
    buf.insert(buf.end(), 6, 0x06);
    buf[10 + corrupt] ^= 0x01;
    if (corrupt == 5) {
      // Corrupting the length byte itself turns it into a *different*
      // declared pad (7), whose run then fails the consistency scan.
      EXPECT_THROW(aes::pkcs7_unpad(buf), std::invalid_argument);
    } else {
      EXPECT_THROW(aes::pkcs7_unpad(buf), std::invalid_argument) << "position " << corrupt;
    }
  }
}

TEST(Pkcs7, OnlyFinalBlockIsInterpreted) {
  // Bytes outside the declared pad run are payload, never validated.
  auto buf = random_bytes(28, 8);
  buf.insert(buf.end(), 4, 0x04);
  const auto out = aes::pkcs7_unpad(buf);
  EXPECT_EQ(out.size(), 28u);
  EXPECT_EQ(to_hex(out), to_hex(std::span(buf).subspan(0, 28)));
}

TEST(Pkcs7, WholeBlockOfPaddingUnpadsToEmpty) {
  const std::vector<std::uint8_t> buf(16, 0x10);
  EXPECT_TRUE(aes::pkcs7_unpad(buf).empty());
}

// --- chunked CTR ------------------------------------------------------------------

TEST(CtrCounterAt, MatchesSequentialIncrement) {
  auto iv_vec = random_bytes(16, 9);
  // Force an imminent carry so the ripple path is exercised.
  iv_vec[15] = 0xfd;
  iv_vec[14] = 0xff;
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);

  std::uint8_t counter[16];
  for (int i = 0; i < 16; ++i) counter[i] = iv_vec[static_cast<std::size_t>(i)];
  for (std::uint64_t n = 0; n < 700; ++n) {
    const auto jumped = aes::ctr_counter_at(iv, n);
    EXPECT_EQ(to_hex(jumped), to_hex(std::span<const std::uint8_t>(counter, 16))) << "n=" << n;
    for (int i = 15; i >= 0; --i)
      if (++counter[i] != 0) break;
  }
}

TEST(CtrCounterAt, WrapsTheFullCounterSpace) {
  std::vector<std::uint8_t> iv_vec(16, 0xff);
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  EXPECT_EQ(to_hex(aes::ctr_counter_at(iv, 0)), std::string(32, 'f'));
  EXPECT_EQ(to_hex(aes::ctr_counter_at(iv, 1)), std::string(32, '0'));  // mod 2^128
  const auto two = aes::ctr_counter_at(iv, 2);
  EXPECT_EQ(two[15], 0x01);
}

TEST(CtrCounterAt, ChunkedCtrSplicesToWholeMessage) {
  // The farm's fan-out contract: CTR over byte range [16i, 16j) started at
  // ctr_counter_at(iv, i) equals the same range of one whole-message pass.
  aes::Aes128 cipher(from_hex(kKey));
  const auto iv_vec = random_bytes(16, 10);
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  const auto msg = random_bytes(37 * 16 + 5, 11);  // ragged tail
  const auto whole = aes::ctr_crypt(cipher, iv, msg);

  std::vector<std::uint8_t> spliced;
  const std::size_t chunk_blocks = 5;
  for (std::size_t block = 0; block * 16 < msg.size(); block += chunk_blocks) {
    const std::size_t off = block * 16;
    const std::size_t len = std::min(chunk_blocks * 16, msg.size() - off);
    const auto counter = aes::ctr_counter_at(iv, block);
    const std::span<const std::uint8_t, 16> ctr_span(counter.data(), 16);
    const auto piece =
        aes::ctr_crypt(cipher, ctr_span, std::span(msg).subspan(off, len));
    spliced.insert(spliced.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(to_hex(spliced), to_hex(whole));
}

// --- cross-engine consistency --------------------------------------------------------

TEST(Modes, CbcViaTtableMatchesReference) {
  const auto key = random_bytes(16, 11);
  const auto iv_vec = random_bytes(16, 12);
  const std::span<const std::uint8_t, 16> iv(iv_vec.data(), 16);
  const auto pt = aes::pkcs7_pad(random_bytes(100, 13));
  aes::Aes128 ref(key);
  aes::TTableAes128 fast(key);
  EXPECT_EQ(to_hex(aes::cbc_encrypt(ref, iv, pt)), to_hex(aes::cbc_encrypt(fast, iv, pt)));
}
