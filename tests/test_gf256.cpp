// GF(2^8) algebra: field axioms, known products, xtime, rcon, and the
// affine machinery the S-box derivation rests on.
#include <gtest/gtest.h>

#include "gf/bitmatrix.hpp"
#include "gf/gf256.hpp"
#include "gf/poly.hpp"

namespace gf = aesip::gf;

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(gf::add(0x57, 0x83), 0xd4);
  EXPECT_EQ(gf::add(0xff, 0xff), 0x00);
  EXPECT_EQ(gf::add(0x00, 0x42), 0x42);
}

TEST(Gf256, KnownProductFromFips) {
  // FIPS-197 §4.2: {57} * {83} = {c1}.
  EXPECT_EQ(gf::mul(0x57, 0x83), 0xc1);
  // FIPS-197 §4.2.1: {57} * {13} = {fe}.
  EXPECT_EQ(gf::mul(0x57, 0x13), 0xfe);
}

TEST(Gf256, XtimeChainFromFips) {
  // FIPS-197 §4.2.1: successive xtime of {57}: ae, 47, 8e, 07.
  EXPECT_EQ(gf::xtime(0x57), 0xae);
  EXPECT_EQ(gf::xtime(0xae), 0x47);
  EXPECT_EQ(gf::xtime(0x47), 0x8e);
  EXPECT_EQ(gf::xtime(0x8e), 0x07);
}

TEST(Gf256, MulMatchesSlowMul) {
  for (int a = 0; a < 256; ++a)
    for (int b = 0; b < 256; b += 7)
      EXPECT_EQ(gf::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                gf::mul_slow(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)));
}

TEST(Gf256, MulByXMatchesXtime) {
  for (int a = 0; a < 256; ++a)
    EXPECT_EQ(gf::mul(static_cast<std::uint8_t>(a), 0x02), gf::xtime(static_cast<std::uint8_t>(a)));
}

class Gf256Property : public ::testing::TestWithParam<int> {};

TEST_P(Gf256Property, MulCommutes) {
  const auto a = static_cast<std::uint8_t>(GetParam());
  for (int b = 0; b < 256; ++b)
    EXPECT_EQ(gf::mul(a, static_cast<std::uint8_t>(b)), gf::mul(static_cast<std::uint8_t>(b), a));
}

TEST_P(Gf256Property, MulAssociates) {
  const auto a = static_cast<std::uint8_t>(GetParam());
  for (int b = 3; b < 256; b += 31)
    for (int c = 5; c < 256; c += 29) {
      const auto bb = static_cast<std::uint8_t>(b);
      const auto cc = static_cast<std::uint8_t>(c);
      EXPECT_EQ(gf::mul(gf::mul(a, bb), cc), gf::mul(a, gf::mul(bb, cc)));
    }
}

TEST_P(Gf256Property, MulDistributesOverAdd) {
  const auto a = static_cast<std::uint8_t>(GetParam());
  for (int b = 0; b < 256; b += 13)
    for (int c = 0; c < 256; c += 17) {
      const auto bb = static_cast<std::uint8_t>(b);
      const auto cc = static_cast<std::uint8_t>(c);
      EXPECT_EQ(gf::mul(a, gf::add(bb, cc)), gf::add(gf::mul(a, bb), gf::mul(a, cc)));
    }
}

TEST_P(Gf256Property, InverseInverts) {
  const auto a = static_cast<std::uint8_t>(GetParam());
  if (a == 0) {
    EXPECT_EQ(gf::inverse(a), 0);
  } else {
    EXPECT_EQ(gf::mul(a, gf::inverse(a)), 1);
    EXPECT_EQ(gf::inverse(gf::inverse(a)), a);
  }
}

TEST_P(Gf256Property, DivisionUndoesMultiplication) {
  const auto a = static_cast<std::uint8_t>(GetParam());
  for (int b = 1; b < 256; b += 11) {
    const auto bb = static_cast<std::uint8_t>(b);
    EXPECT_EQ(gf::div(gf::mul(a, bb), bb), a);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBytes, Gf256Property, ::testing::Range(0, 256, 5));

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 23) {
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 12; ++n) {
      EXPECT_EQ(gf::pow(static_cast<std::uint8_t>(a), n), acc);
      acc = gf::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, FermatExponent) {
  // a^255 = 1 for all nonzero a (multiplicative group order 255).
  for (int a = 1; a < 256; ++a)
    EXPECT_EQ(gf::pow(static_cast<std::uint8_t>(a), 255), 1) << a;
}

TEST(Gf256, RconSequence) {
  // The ten round constants AES-128 consumes (FIPS-197 §5.2).
  constexpr std::uint8_t kExpected[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                          0x20, 0x40, 0x80, 0x1b, 0x36};
  for (unsigned i = 1; i <= 10; ++i) EXPECT_EQ(gf::rcon(i), kExpected[i - 1]) << i;
}

TEST(Gf256, Degree) {
  EXPECT_EQ(gf::degree(0x00), -1);
  EXPECT_EQ(gf::degree(0x01), 0);
  EXPECT_EQ(gf::degree(0x80), 7);
  EXPECT_EQ(gf::degree(0x1b), 4);
}

// --- bit-matrix / affine layer ------------------------------------------------

TEST(BitMatrix, IdentityActsTrivially) {
  const auto id = gf::BitMatrix8::identity();
  for (int v = 0; v < 256; ++v)
    EXPECT_EQ(id.apply(static_cast<std::uint8_t>(v)), static_cast<std::uint8_t>(v));
}

TEST(BitMatrix, CirculantRowsRotate) {
  const auto m = gf::BitMatrix8::circulant(0xF1);
  EXPECT_EQ(m.row(0), 0xF1);
  EXPECT_EQ(m.row(1), 0xE3);
  EXPECT_EQ(m.row(7), 0xF8);
}

TEST(BitMatrix, InverseRoundTrips) {
  const auto m = gf::kSBoxAffine.matrix;
  ASSERT_TRUE(m.invertible());
  const auto minv = m.inverse();
  for (int v = 0; v < 256; ++v) {
    const auto x = static_cast<std::uint8_t>(v);
    EXPECT_EQ(minv.apply(m.apply(x)), x);
  }
}

TEST(BitMatrix, MultiplicationMatchesComposition) {
  const auto a = gf::BitMatrix8::circulant(0xF1);
  const auto b = gf::BitMatrix8::circulant(0x5B);
  const auto ab = a * b;
  for (int v = 0; v < 256; ++v) {
    const auto x = static_cast<std::uint8_t>(v);
    EXPECT_EQ(ab.apply(x), a.apply(b.apply(x)));
  }
}

TEST(Affine, InvertedUndoesApply) {
  const auto inv = gf::kSBoxAffine.inverted();
  for (int v = 0; v < 256; ++v) {
    const auto x = static_cast<std::uint8_t>(v);
    EXPECT_EQ(inv.apply(gf::kSBoxAffine.apply(x)), x);
  }
}

// --- column polynomials ---------------------------------------------------------

TEST(ColumnPoly, MixColumnTimesInverseIsOne) {
  EXPECT_TRUE(gf::kMixColumnPoly * gf::kInvMixColumnPoly == gf::ColumnPoly::one());
  EXPECT_TRUE(gf::kInvMixColumnPoly * gf::kMixColumnPoly == gf::ColumnPoly::one());
}

TEST(ColumnPoly, OneIsIdentity) {
  const gf::ColumnPoly p{0x12, 0x34, 0x56, 0x78};
  EXPECT_TRUE(p * gf::ColumnPoly::one() == p);
}

TEST(ColumnPoly, MultiplicationCommutes) {
  const gf::ColumnPoly a{0x01, 0x02, 0x03, 0x04};
  const gf::ColumnPoly b{0xaa, 0xbb, 0xcc, 0xdd};
  EXPECT_TRUE(a * b == b * a);
}

TEST(ColumnPoly, KnownMixColumnExample) {
  // FIPS-197 Appendix B, round 1 MixColumns, first column:
  // [d4, bf, 5d, 30] -> [04, 66, 81, e5].
  const gf::ColumnPoly in{0xd4, 0xbf, 0x5d, 0x30};
  const gf::ColumnPoly out = in * gf::kMixColumnPoly;
  EXPECT_EQ(out[0], 0x04);
  EXPECT_EQ(out[1], 0x66);
  EXPECT_EQ(out[2], 0x81);
  EXPECT_EQ(out[3], 0xe5);
}
