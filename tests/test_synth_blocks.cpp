// Gate-level datapath generators verified against the reference library:
// every synthesized block (xtime, MixColumn, InvMixColumn, ShiftRows,
// S-box-as-ROM, S-box-as-logic, SubWord32) is evaluated bit-for-bit before
// its area or timing is trusted.
#include <gtest/gtest.h>

#include <random>

#include "aes/sbox.hpp"
#include "aes/state.hpp"
#include "aes/transforms.hpp"
#include "gf/gf256.hpp"
#include "gf/poly.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"

namespace nlist = aesip::netlist;
namespace aes = aesip::aes;
namespace gf = aesip::gf;
using nlist::Bus;
using nlist::Netlist;

namespace {

void drive_bytes(nlist::Evaluator& ev, const Bus& bus, std::span<const std::uint8_t> bytes) {
  for (std::size_t k = 0; k < bytes.size(); ++k)
    for (int b = 0; b < 8; ++b) ev.set(bus[8 * k + static_cast<std::size_t>(b)], (bytes[k] >> b) & 1);
}

std::vector<std::uint8_t> read_bytes(const nlist::Evaluator& ev, const Bus& bus) {
  std::vector<std::uint8_t> out(bus.size() / 8);
  for (std::size_t k = 0; k < out.size(); ++k) {
    std::uint8_t v = 0;
    for (int b = 0; b < 8; ++b)
      if (ev.get(bus[8 * k + static_cast<std::size_t>(b)])) v = static_cast<std::uint8_t>(v | (1U << b));
    out[k] = v;
  }
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

}  // namespace

TEST(SynthXtime, MatchesFieldXtime) {
  Netlist nl;
  const Bus in = nl.add_input_bus("a", 8);
  const Bus out = nlist::synth_xtime(nl, in);
  EXPECT_EQ(nl.stats().gates, 3u) << "xtime is 3 XOR gates plus wiring";
  nlist::Evaluator ev(nl);
  for (int v = 0; v < 256; ++v) {
    ev.set_bus(in, static_cast<std::uint64_t>(v));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), gf::xtime(static_cast<std::uint8_t>(v))) << v;
  }
}

class SynthMixColumn : public ::testing::TestWithParam<bool> {};

TEST_P(SynthMixColumn, MatchesReferenceOnRandomColumns) {
  const bool inverse = GetParam();
  Netlist nl;
  std::array<Bus, 4> in;
  for (int i = 0; i < 4; ++i)
    in[static_cast<std::size_t>(i)] = nl.add_input_bus("a" + std::to_string(i), 8);
  const auto out = nlist::synth_mix_column(nl, in, inverse);
  nlist::Evaluator ev(nl);
  for (std::uint32_t seed = 0; seed < 64; ++seed) {
    const auto bytes = random_bytes(4, seed);
    for (int i = 0; i < 4; ++i)
      ev.set_bus(in[static_cast<std::size_t>(i)], bytes[static_cast<std::size_t>(i)]);
    ev.settle();
    const gf::ColumnPoly col{bytes[0], bytes[1], bytes[2], bytes[3]};
    const gf::ColumnPoly expect = col * (inverse ? gf::kInvMixColumnPoly : gf::kMixColumnPoly);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(ev.get_bus(out[static_cast<std::size_t>(i)]), expect[i])
          << "seed " << seed << " byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, SynthMixColumn, ::testing::Bool(),
                         [](const auto& info) { return info.param ? "inverse" : "forward"; });

class SynthMixColumns128 : public ::testing::TestWithParam<bool> {};

TEST_P(SynthMixColumns128, MatchesStateTransform) {
  const bool inverse = GetParam();
  Netlist nl;
  const Bus in = nl.add_input_bus("state", 128);
  const Bus out = nlist::synth_mix_columns128(nl, in, inverse);
  nlist::Evaluator ev(nl);
  for (std::uint32_t seed = 0; seed < 16; ++seed) {
    const auto bytes = random_bytes(16, 100 + seed);
    drive_bytes(ev, in, bytes);
    ev.settle();
    aes::State s(4, bytes);
    if (inverse) aes::inv_mix_columns(s);
    else aes::mix_columns(s);
    std::vector<std::uint8_t> expect(16);
    s.store(expect);
    EXPECT_EQ(read_bytes(ev, out), expect) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, SynthMixColumns128, ::testing::Bool(),
                         [](const auto& info) { return info.param ? "inverse" : "forward"; });

class SynthShiftRows : public ::testing::TestWithParam<bool> {};

TEST_P(SynthShiftRows, IsPureWiring) {
  const bool inverse = GetParam();
  Netlist nl;
  const Bus in = nl.add_input_bus("state", 128);
  const auto gates_before = nl.stats().gates;
  const Bus out = nlist::synth_shift_rows128(in, inverse);
  EXPECT_EQ(nl.stats().gates, gates_before) << "ShiftRows must cost zero gates";
  nlist::Evaluator ev(nl);
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    const auto bytes = random_bytes(16, 200 + seed);
    drive_bytes(ev, in, bytes);
    ev.settle();
    aes::State s(4, bytes);
    if (inverse) aes::inv_shift_rows(s);
    else aes::shift_rows(s);
    std::vector<std::uint8_t> expect(16);
    s.store(expect);
    EXPECT_EQ(read_bytes(ev, out), expect) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, SynthShiftRows, ::testing::Bool(),
                         [](const auto& info) { return info.param ? "inverse" : "forward"; });

TEST(SynthSboxRom, FullSweepForwardTable) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  const Bus out = nlist::synth_sbox_rom(nl, aes::kSBox, addr, "sbox");
  EXPECT_EQ(nl.stats().rom_bits, 2048u) << "one S-box is 2048 bits (paper Section 3)";
  nlist::Evaluator ev(nl);
  for (int a = 0; a < 256; ++a) {
    ev.set_bus(addr, static_cast<std::uint64_t>(a));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), aes::kSBox[static_cast<std::size_t>(a)]) << a;
  }
}

TEST(SynthSboxLogic, FullSweepForwardTable) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  const Bus out = nlist::synth_sbox_logic(nl, aes::kSBox, addr);
  EXPECT_EQ(nl.stats().rom_bits, 0u) << "logic S-box uses no embedded memory";
  EXPECT_LE(nl.stats().luts, 31u * 8u) << "at most 31 LUTs per output bit";
  nlist::Evaluator ev(nl);
  for (int a = 0; a < 256; ++a) {
    ev.set_bus(addr, static_cast<std::uint64_t>(a));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), aes::kSBox[static_cast<std::size_t>(a)]) << a;
  }
}

TEST(SynthSboxLogic, FullSweepInverseTable) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  const Bus out = nlist::synth_sbox_logic(nl, aes::kInvSBox, addr);
  nlist::Evaluator ev(nl);
  for (int a = 0; a < 256; ++a) {
    ev.set_bus(addr, static_cast<std::uint64_t>(a));
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), aes::kInvSBox[static_cast<std::size_t>(a)]) << a;
  }
}

class SynthSubWord : public ::testing::TestWithParam<bool> {};

TEST_P(SynthSubWord, FourParallelSboxes) {
  const bool as_rom = GetParam();
  Netlist nl;
  const Bus in = nl.add_input_bus("w", 32);
  const Bus out = nlist::synth_sub_word32(nl, aes::kSBox, in, as_rom, "bank");
  EXPECT_EQ(nl.stats().roms, as_rom ? 4u : 0u);
  if (as_rom) {
    EXPECT_EQ(nl.stats().rom_bits, 8192u) << "the paper's 8k-bit ByteSub32 bank";
  }
  nlist::Evaluator ev(nl);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint32_t w = rng();
    ev.set_bus(in, w);
    ev.settle();
    EXPECT_EQ(ev.get_bus(out), aes::sub_word(w)) << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Storage, SynthSubWord, ::testing::Bool(),
                         [](const auto& info) { return info.param ? "rom" : "logic"; });

TEST(SynthHelpers, ByteOfAndConcat) {
  Netlist nl;
  const Bus in = nl.add_input_bus("w", 16);
  const Bus b0 = nlist::byte_of(in, 0);
  const Bus b1 = nlist::byte_of(in, 1);
  const Bus cat = nlist::concat(b0, b1);
  EXPECT_EQ(cat.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(cat[static_cast<std::size_t>(i)], in[static_cast<std::size_t>(i)]);
}
