// Lockstep cross-model verification: the cycle-accurate RTL model and the
// synthesized gate-level netlist are driven with identical stimulus and
// compared cycle by cycle — data_ok timing and dout contents must agree at
// every single edge, across random traffic with idle gaps, re-keying and
// direction changes.  This pins the two independent implementations of the
// architecture (hdl-level and gate-level) to each other, on top of each
// being pinned to FIPS-197.
#include <gtest/gtest.h>

#include <random>

#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace hdl = aesip::hdl;
using core::IpMode;

namespace {

/// Drives both models with one stimulus stream and compares observables.
class LockstepHarness {
 public:
  LockstepHarness(IpMode mode, bool mapped)
      : netlist_(mapped
                     ? aesip::techmap::map_to_luts(core::synthesize_ip(mode, true)).mapped
                     : core::synthesize_ip(mode, true)),
        rtl_(sim_, mode),
        gate_(netlist_) {
    rtl_.setup.write(false);
    rtl_.wr_data.write(false);
    rtl_.wr_key.write(false);
  }

  struct Stimulus {
    bool setup = false;
    bool wr_data = false;
    bool wr_key = false;
    bool encdec = true;
    hdl::Word128 din;
  };

  /// Apply one cycle of stimulus to both models; EXPECT observables equal.
  void step(const Stimulus& s) {
    rtl_.setup.write(s.setup);
    rtl_.wr_data.write(s.wr_data);
    rtl_.wr_key.write(s.wr_key);
    rtl_.encdec.write(s.encdec);
    rtl_.din.write(s.din);
    sim_.step();

    gate_.set("setup", s.setup);
    gate_.set("wr_data", s.wr_data);
    gate_.set("wr_key", s.wr_key);
    if (gate_.has_input("encdec")) gate_.set("encdec", s.encdec);
    std::array<std::uint8_t, 16> din_bytes{};
    s.din.store(din_bytes);
    gate_.set_din(din_bytes);
    gate_.clock();

    ++cycle_;
    ASSERT_EQ(rtl_.data_ok.read(), gate_.data_ok()) << "data_ok diverged at cycle " << cycle_;
    if (rtl_.data_ok.read()) {
      std::array<std::uint8_t, 16> rtl_out{};
      rtl_.dout.read().store(rtl_out);
      ASSERT_EQ(rtl_out, gate_.read_dout()) << "dout diverged at cycle " << cycle_;
    }
  }

 private:
  hdl::Simulator sim_;
  aesip::netlist::Netlist netlist_;
  core::RijndaelIp rtl_;
  core::GateIpDriver gate_;
  std::uint64_t cycle_ = 0;
};

hdl::Word128 random_word(std::mt19937& rng) {
  hdl::Word128 w;
  for (auto& b : w.b) b = static_cast<std::uint8_t>(rng());
  return w;
}

void run_random_traffic(IpMode mode, bool mapped, std::uint32_t seed, int cycles) {
  LockstepHarness h(mode, mapped);
  std::mt19937 rng(seed);

  LockstepHarness::Stimulus s;
  s.setup = true;
  h.step(s);
  s.setup = false;
  s.wr_key = true;
  s.din = random_word(rng);
  h.step(s);
  s.wr_key = false;
  // Key setup time for decrypt-capable devices.
  for (int i = 0; i < 41; ++i) h.step(s);

  int results_expected = 0;
  for (int c = 0; c < cycles; ++c) {
    s.wr_data = false;
    s.wr_key = false;
    const int dice = static_cast<int>(rng() % 100);
    if (dice < 4) {
      s.wr_key = true;
      s.din = random_word(rng);
    } else if (dice < 30) {
      s.wr_data = true;
      s.encdec = (rng() & 1) != 0;
      s.din = random_word(rng);
      ++results_expected;
    }
    h.step(s);
  }
  // Drain: let in-flight work finish.
  s.wr_data = false;
  s.wr_key = false;
  for (int c = 0; c < 120; ++c) h.step(s);
  (void)results_expected;
}

}  // namespace

class Lockstep : public ::testing::TestWithParam<int> {};

TEST_P(Lockstep, EncryptUnmappedNetlist) {
  run_random_traffic(IpMode::kEncrypt, /*mapped=*/false,
                     static_cast<std::uint32_t>(GetParam()), 400);
}

TEST_P(Lockstep, EncryptMappedNetlist) {
  run_random_traffic(IpMode::kEncrypt, /*mapped=*/true,
                     static_cast<std::uint32_t>(GetParam()) + 100, 400);
}

TEST_P(Lockstep, DecryptUnmappedNetlist) {
  run_random_traffic(IpMode::kDecrypt, /*mapped=*/false,
                     static_cast<std::uint32_t>(GetParam()) + 200, 400);
}

TEST_P(Lockstep, BothMappedNetlist) {
  run_random_traffic(IpMode::kBoth, /*mapped=*/true,
                     static_cast<std::uint32_t>(GetParam()) + 300, 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lockstep, ::testing::Range(0, 4));

TEST(LockstepDirected, SetupMidBlockResetsBoth) {
  LockstepHarness h(IpMode::kEncrypt, true);
  std::mt19937 rng(99);
  LockstepHarness::Stimulus s;
  s.wr_key = true;
  s.din = random_word(rng);
  h.step(s);
  s.wr_key = false;
  s.wr_data = true;
  s.din = random_word(rng);
  h.step(s);
  s.wr_data = false;
  for (int i = 0; i < 20; ++i) h.step(s);  // mid-computation
  s.setup = true;
  h.step(s);
  s.setup = false;
  for (int i = 0; i < 80; ++i) h.step(s);  // neither model may produce data_ok
}

TEST(LockstepDirected, RekeyMidBlockAbortsBoth) {
  LockstepHarness h(IpMode::kEncrypt, true);
  std::mt19937 rng(7);
  LockstepHarness::Stimulus s;
  s.wr_key = true;
  s.din = random_word(rng);
  h.step(s);
  s.wr_key = false;
  s.wr_data = true;
  s.din = random_word(rng);
  h.step(s);
  s.wr_data = false;
  for (int i = 0; i < 17; ++i) h.step(s);
  s.wr_key = true;  // re-key mid-computation
  s.din = random_word(rng);
  h.step(s);
  s.wr_key = false;
  for (int i = 0; i < 120; ++i) h.step(s);
  // Then a fresh block must agree (and be correct vs either model).
  s.wr_data = true;
  s.din = random_word(rng);
  h.step(s);
  s.wr_data = false;
  for (int i = 0; i < 60; ++i) h.step(s);
}
