# Empty dependencies file for aesip_cli.
# This may be replaced when dependencies are built.
