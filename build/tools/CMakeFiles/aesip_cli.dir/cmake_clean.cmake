file(REMOVE_RECURSE
  "CMakeFiles/aesip_cli.dir/aesip_cli.cpp.o"
  "CMakeFiles/aesip_cli.dir/aesip_cli.cpp.o.d"
  "aesip"
  "aesip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
