file(REMOVE_RECURSE
  "CMakeFiles/secure_link.dir/secure_link.cpp.o"
  "CMakeFiles/secure_link.dir/secure_link.cpp.o.d"
  "secure_link"
  "secure_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
