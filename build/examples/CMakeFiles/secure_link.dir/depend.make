# Empty dependencies file for secure_link.
# This may be replaced when dependencies are built.
