# Empty dependencies file for smartcard_profile.
# This may be replaced when dependencies are built.
