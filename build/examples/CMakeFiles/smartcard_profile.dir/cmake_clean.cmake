file(REMOVE_RECURSE
  "CMakeFiles/smartcard_profile.dir/smartcard_profile.cpp.o"
  "CMakeFiles/smartcard_profile.dir/smartcard_profile.cpp.o.d"
  "smartcard_profile"
  "smartcard_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartcard_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
