# Empty dependencies file for formal_flow.
# This may be replaced when dependencies are built.
