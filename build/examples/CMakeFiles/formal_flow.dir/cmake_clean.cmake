file(REMOVE_RECURSE
  "CMakeFiles/formal_flow.dir/formal_flow.cpp.o"
  "CMakeFiles/formal_flow.dir/formal_flow.cpp.o.d"
  "formal_flow"
  "formal_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formal_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
