file(REMOVE_RECURSE
  "CMakeFiles/bench_place.dir/bench_place.cpp.o"
  "CMakeFiles/bench_place.dir/bench_place.cpp.o.d"
  "bench_place"
  "bench_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
