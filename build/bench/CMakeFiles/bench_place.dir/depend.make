# Empty dependencies file for bench_place.
# This may be replaced when dependencies are built.
