file(REMOVE_RECURSE
  "CMakeFiles/bench_seu.dir/bench_seu.cpp.o"
  "CMakeFiles/bench_seu.dir/bench_seu.cpp.o.d"
  "bench_seu"
  "bench_seu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
