# Empty dependencies file for bench_seu.
# This may be replaced when dependencies are built.
