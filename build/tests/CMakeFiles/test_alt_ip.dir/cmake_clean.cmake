file(REMOVE_RECURSE
  "CMakeFiles/test_alt_ip.dir/test_alt_ip.cpp.o"
  "CMakeFiles/test_alt_ip.dir/test_alt_ip.cpp.o.d"
  "test_alt_ip"
  "test_alt_ip.pdb"
  "test_alt_ip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alt_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
