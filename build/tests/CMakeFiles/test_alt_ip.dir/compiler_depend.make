# Empty compiler generated dependencies file for test_alt_ip.
# This may be replaced when dependencies are built.
