# Empty dependencies file for test_aes_reference.
# This may be replaced when dependencies are built.
