file(REMOVE_RECURSE
  "CMakeFiles/test_aes_reference.dir/test_aes_reference.cpp.o"
  "CMakeFiles/test_aes_reference.dir/test_aes_reference.cpp.o.d"
  "test_aes_reference"
  "test_aes_reference.pdb"
  "test_aes_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aes_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
