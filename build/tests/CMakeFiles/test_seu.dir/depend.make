# Empty dependencies file for test_seu.
# This may be replaced when dependencies are built.
