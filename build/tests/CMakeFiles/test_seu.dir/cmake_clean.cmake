file(REMOVE_RECURSE
  "CMakeFiles/test_seu.dir/test_seu.cpp.o"
  "CMakeFiles/test_seu.dir/test_seu.cpp.o.d"
  "test_seu"
  "test_seu.pdb"
  "test_seu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
