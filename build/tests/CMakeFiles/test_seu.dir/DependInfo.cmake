
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_seu.cpp" "tests/CMakeFiles/test_seu.dir/test_seu.cpp.o" "gcc" "tests/CMakeFiles/test_seu.dir/test_seu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aesip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/seu/CMakeFiles/aesip_seu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/aesip_power.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/aesip_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/aesip_place.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/aesip_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/aesip_report.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/aesip_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/aesip_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/aesip_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aesip_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/aesip_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/aesip_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/aesip_hdl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
