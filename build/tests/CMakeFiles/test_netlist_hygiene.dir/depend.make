# Empty dependencies file for test_netlist_hygiene.
# This may be replaced when dependencies are built.
