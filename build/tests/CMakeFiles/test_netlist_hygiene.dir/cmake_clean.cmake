file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_hygiene.dir/test_netlist_hygiene.cpp.o"
  "CMakeFiles/test_netlist_hygiene.dir/test_netlist_hygiene.cpp.o.d"
  "test_netlist_hygiene"
  "test_netlist_hygiene.pdb"
  "test_netlist_hygiene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_hygiene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
