# Empty dependencies file for test_table2.
# This may be replaced when dependencies are built.
