file(REMOVE_RECURSE
  "CMakeFiles/test_table2.dir/test_table2.cpp.o"
  "CMakeFiles/test_table2.dir/test_table2.cpp.o.d"
  "test_table2"
  "test_table2.pdb"
  "test_table2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
