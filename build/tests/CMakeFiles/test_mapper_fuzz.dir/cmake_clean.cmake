file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_fuzz.dir/test_mapper_fuzz.cpp.o"
  "CMakeFiles/test_mapper_fuzz.dir/test_mapper_fuzz.cpp.o.d"
  "test_mapper_fuzz"
  "test_mapper_fuzz.pdb"
  "test_mapper_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
