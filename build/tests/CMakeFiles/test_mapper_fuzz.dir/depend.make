# Empty dependencies file for test_mapper_fuzz.
# This may be replaced when dependencies are built.
