file(REMOVE_RECURSE
  "CMakeFiles/test_bus_adapter.dir/test_bus_adapter.cpp.o"
  "CMakeFiles/test_bus_adapter.dir/test_bus_adapter.cpp.o.d"
  "test_bus_adapter"
  "test_bus_adapter.pdb"
  "test_bus_adapter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
