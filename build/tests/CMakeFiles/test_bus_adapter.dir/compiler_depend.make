# Empty compiler generated dependencies file for test_bus_adapter.
# This may be replaced when dependencies are built.
