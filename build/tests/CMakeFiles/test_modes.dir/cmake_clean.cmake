file(REMOVE_RECURSE
  "CMakeFiles/test_modes.dir/test_modes.cpp.o"
  "CMakeFiles/test_modes.dir/test_modes.cpp.o.d"
  "test_modes"
  "test_modes.pdb"
  "test_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
