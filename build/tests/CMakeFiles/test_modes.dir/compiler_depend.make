# Empty compiler generated dependencies file for test_modes.
# This may be replaced when dependencies are built.
