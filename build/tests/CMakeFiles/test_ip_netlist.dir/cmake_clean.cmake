file(REMOVE_RECURSE
  "CMakeFiles/test_ip_netlist.dir/test_ip_netlist.cpp.o"
  "CMakeFiles/test_ip_netlist.dir/test_ip_netlist.cpp.o.d"
  "test_ip_netlist"
  "test_ip_netlist.pdb"
  "test_ip_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ip_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
