# Empty dependencies file for test_writer.
# This may be replaced when dependencies are built.
