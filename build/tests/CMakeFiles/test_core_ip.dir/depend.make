# Empty dependencies file for test_core_ip.
# This may be replaced when dependencies are built.
