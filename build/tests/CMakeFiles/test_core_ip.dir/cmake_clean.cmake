file(REMOVE_RECURSE
  "CMakeFiles/test_core_ip.dir/test_core_ip.cpp.o"
  "CMakeFiles/test_core_ip.dir/test_core_ip.cpp.o.d"
  "test_core_ip"
  "test_core_ip.pdb"
  "test_core_ip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
