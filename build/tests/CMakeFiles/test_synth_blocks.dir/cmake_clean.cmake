file(REMOVE_RECURSE
  "CMakeFiles/test_synth_blocks.dir/test_synth_blocks.cpp.o"
  "CMakeFiles/test_synth_blocks.dir/test_synth_blocks.cpp.o.d"
  "test_synth_blocks"
  "test_synth_blocks.pdb"
  "test_synth_blocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
