# Empty dependencies file for test_synth_blocks.
# This may be replaced when dependencies are built.
