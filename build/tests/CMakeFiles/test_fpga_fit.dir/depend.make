# Empty dependencies file for test_fpga_fit.
# This may be replaced when dependencies are built.
