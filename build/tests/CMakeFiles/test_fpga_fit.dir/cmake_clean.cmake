file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_fit.dir/test_fpga_fit.cpp.o"
  "CMakeFiles/test_fpga_fit.dir/test_fpga_fit.cpp.o.d"
  "test_fpga_fit"
  "test_fpga_fit.pdb"
  "test_fpga_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
