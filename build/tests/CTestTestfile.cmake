# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_gf256[1]_include.cmake")
include("/root/repo/build/tests/test_aes_reference[1]_include.cmake")
include("/root/repo/build/tests/test_modes[1]_include.cmake")
include("/root/repo/build/tests/test_hdl[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_synth_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_techmap[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_core_ip[1]_include.cmake")
include("/root/repo/build/tests/test_ip_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_fit[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_table2[1]_include.cmake")
include("/root/repo/build/tests/test_seu[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_bus_adapter[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_lockstep[1]_include.cmake")
include("/root/repo/build/tests/test_writer[1]_include.cmake")
include("/root/repo/build/tests/test_alt_ip[1]_include.cmake")
include("/root/repo/build/tests/test_netlist_hygiene[1]_include.cmake")
include("/root/repo/build/tests/test_composite[1]_include.cmake")
include("/root/repo/build/tests/test_place[1]_include.cmake")
include("/root/repo/build/tests/test_mapper_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_edge[1]_include.cmake")
