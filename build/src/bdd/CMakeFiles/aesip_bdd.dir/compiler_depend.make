# Empty compiler generated dependencies file for aesip_bdd.
# This may be replaced when dependencies are built.
