file(REMOVE_RECURSE
  "libaesip_bdd.a"
)
