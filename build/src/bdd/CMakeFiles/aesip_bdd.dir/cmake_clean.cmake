file(REMOVE_RECURSE
  "CMakeFiles/aesip_bdd.dir/bdd.cpp.o"
  "CMakeFiles/aesip_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/aesip_bdd.dir/netlist_bdd.cpp.o"
  "CMakeFiles/aesip_bdd.dir/netlist_bdd.cpp.o.d"
  "libaesip_bdd.a"
  "libaesip_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
