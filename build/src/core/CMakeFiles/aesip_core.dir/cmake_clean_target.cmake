file(REMOVE_RECURSE
  "libaesip_core.a"
)
