file(REMOVE_RECURSE
  "CMakeFiles/aesip_core.dir/bus_adapter.cpp.o"
  "CMakeFiles/aesip_core.dir/bus_adapter.cpp.o.d"
  "CMakeFiles/aesip_core.dir/gate_driver.cpp.o"
  "CMakeFiles/aesip_core.dir/gate_driver.cpp.o.d"
  "CMakeFiles/aesip_core.dir/ip_synth.cpp.o"
  "CMakeFiles/aesip_core.dir/ip_synth.cpp.o.d"
  "CMakeFiles/aesip_core.dir/rijndael_ip.cpp.o"
  "CMakeFiles/aesip_core.dir/rijndael_ip.cpp.o.d"
  "CMakeFiles/aesip_core.dir/table2.cpp.o"
  "CMakeFiles/aesip_core.dir/table2.cpp.o.d"
  "libaesip_core.a"
  "libaesip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
