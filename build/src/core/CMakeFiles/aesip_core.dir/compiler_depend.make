# Empty compiler generated dependencies file for aesip_core.
# This may be replaced when dependencies are built.
