
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bus_adapter.cpp" "src/core/CMakeFiles/aesip_core.dir/bus_adapter.cpp.o" "gcc" "src/core/CMakeFiles/aesip_core.dir/bus_adapter.cpp.o.d"
  "/root/repo/src/core/gate_driver.cpp" "src/core/CMakeFiles/aesip_core.dir/gate_driver.cpp.o" "gcc" "src/core/CMakeFiles/aesip_core.dir/gate_driver.cpp.o.d"
  "/root/repo/src/core/ip_synth.cpp" "src/core/CMakeFiles/aesip_core.dir/ip_synth.cpp.o" "gcc" "src/core/CMakeFiles/aesip_core.dir/ip_synth.cpp.o.d"
  "/root/repo/src/core/rijndael_ip.cpp" "src/core/CMakeFiles/aesip_core.dir/rijndael_ip.cpp.o" "gcc" "src/core/CMakeFiles/aesip_core.dir/rijndael_ip.cpp.o.d"
  "/root/repo/src/core/table2.cpp" "src/core/CMakeFiles/aesip_core.dir/table2.cpp.o" "gcc" "src/core/CMakeFiles/aesip_core.dir/table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aes/CMakeFiles/aesip_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/aesip_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/aesip_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/aesip_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/aesip_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/aesip_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/aesip_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
