# Empty dependencies file for aesip_power.
# This may be replaced when dependencies are built.
