file(REMOVE_RECURSE
  "libaesip_power.a"
)
