file(REMOVE_RECURSE
  "CMakeFiles/aesip_power.dir/power.cpp.o"
  "CMakeFiles/aesip_power.dir/power.cpp.o.d"
  "libaesip_power.a"
  "libaesip_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
