file(REMOVE_RECURSE
  "CMakeFiles/aesip_hdl.dir/simulator.cpp.o"
  "CMakeFiles/aesip_hdl.dir/simulator.cpp.o.d"
  "CMakeFiles/aesip_hdl.dir/vcd.cpp.o"
  "CMakeFiles/aesip_hdl.dir/vcd.cpp.o.d"
  "CMakeFiles/aesip_hdl.dir/word128.cpp.o"
  "CMakeFiles/aesip_hdl.dir/word128.cpp.o.d"
  "libaesip_hdl.a"
  "libaesip_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
