# Empty dependencies file for aesip_hdl.
# This may be replaced when dependencies are built.
