file(REMOVE_RECURSE
  "libaesip_hdl.a"
)
