# Empty dependencies file for aesip_sta.
# This may be replaced when dependencies are built.
