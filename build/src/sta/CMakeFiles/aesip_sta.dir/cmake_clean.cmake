file(REMOVE_RECURSE
  "CMakeFiles/aesip_sta.dir/sta.cpp.o"
  "CMakeFiles/aesip_sta.dir/sta.cpp.o.d"
  "libaesip_sta.a"
  "libaesip_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
