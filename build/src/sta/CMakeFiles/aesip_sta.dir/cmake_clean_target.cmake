file(REMOVE_RECURSE
  "libaesip_sta.a"
)
