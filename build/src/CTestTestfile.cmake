# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("gf")
subdirs("aes")
subdirs("hdl")
subdirs("netlist")
subdirs("bdd")
subdirs("techmap")
subdirs("sta")
subdirs("place")
subdirs("fpga")
subdirs("core")
subdirs("seu")
subdirs("power")
subdirs("arch")
subdirs("report")
