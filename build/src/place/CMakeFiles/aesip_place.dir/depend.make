# Empty dependencies file for aesip_place.
# This may be replaced when dependencies are built.
