file(REMOVE_RECURSE
  "CMakeFiles/aesip_place.dir/place.cpp.o"
  "CMakeFiles/aesip_place.dir/place.cpp.o.d"
  "libaesip_place.a"
  "libaesip_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
