file(REMOVE_RECURSE
  "libaesip_place.a"
)
