file(REMOVE_RECURSE
  "libaesip_aes.a"
)
