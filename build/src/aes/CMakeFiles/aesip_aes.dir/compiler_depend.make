# Empty compiler generated dependencies file for aesip_aes.
# This may be replaced when dependencies are built.
