file(REMOVE_RECURSE
  "CMakeFiles/aesip_aes.dir/cipher.cpp.o"
  "CMakeFiles/aesip_aes.dir/cipher.cpp.o.d"
  "CMakeFiles/aesip_aes.dir/key_schedule.cpp.o"
  "CMakeFiles/aesip_aes.dir/key_schedule.cpp.o.d"
  "CMakeFiles/aesip_aes.dir/modes.cpp.o"
  "CMakeFiles/aesip_aes.dir/modes.cpp.o.d"
  "CMakeFiles/aesip_aes.dir/state.cpp.o"
  "CMakeFiles/aesip_aes.dir/state.cpp.o.d"
  "CMakeFiles/aesip_aes.dir/transforms.cpp.o"
  "CMakeFiles/aesip_aes.dir/transforms.cpp.o.d"
  "CMakeFiles/aesip_aes.dir/ttable.cpp.o"
  "CMakeFiles/aesip_aes.dir/ttable.cpp.o.d"
  "libaesip_aes.a"
  "libaesip_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
