
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aes/cipher.cpp" "src/aes/CMakeFiles/aesip_aes.dir/cipher.cpp.o" "gcc" "src/aes/CMakeFiles/aesip_aes.dir/cipher.cpp.o.d"
  "/root/repo/src/aes/key_schedule.cpp" "src/aes/CMakeFiles/aesip_aes.dir/key_schedule.cpp.o" "gcc" "src/aes/CMakeFiles/aesip_aes.dir/key_schedule.cpp.o.d"
  "/root/repo/src/aes/modes.cpp" "src/aes/CMakeFiles/aesip_aes.dir/modes.cpp.o" "gcc" "src/aes/CMakeFiles/aesip_aes.dir/modes.cpp.o.d"
  "/root/repo/src/aes/state.cpp" "src/aes/CMakeFiles/aesip_aes.dir/state.cpp.o" "gcc" "src/aes/CMakeFiles/aesip_aes.dir/state.cpp.o.d"
  "/root/repo/src/aes/transforms.cpp" "src/aes/CMakeFiles/aesip_aes.dir/transforms.cpp.o" "gcc" "src/aes/CMakeFiles/aesip_aes.dir/transforms.cpp.o.d"
  "/root/repo/src/aes/ttable.cpp" "src/aes/CMakeFiles/aesip_aes.dir/ttable.cpp.o" "gcc" "src/aes/CMakeFiles/aesip_aes.dir/ttable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/aesip_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
