
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/alt_ip.cpp" "src/arch/CMakeFiles/aesip_arch.dir/alt_ip.cpp.o" "gcc" "src/arch/CMakeFiles/aesip_arch.dir/alt_ip.cpp.o.d"
  "/root/repo/src/arch/baselines.cpp" "src/arch/CMakeFiles/aesip_arch.dir/baselines.cpp.o" "gcc" "src/arch/CMakeFiles/aesip_arch.dir/baselines.cpp.o.d"
  "/root/repo/src/arch/cycle_model.cpp" "src/arch/CMakeFiles/aesip_arch.dir/cycle_model.cpp.o" "gcc" "src/arch/CMakeFiles/aesip_arch.dir/cycle_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aes/CMakeFiles/aesip_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/aesip_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/aesip_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
