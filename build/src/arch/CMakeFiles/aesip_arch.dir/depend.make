# Empty dependencies file for aesip_arch.
# This may be replaced when dependencies are built.
