file(REMOVE_RECURSE
  "CMakeFiles/aesip_arch.dir/alt_ip.cpp.o"
  "CMakeFiles/aesip_arch.dir/alt_ip.cpp.o.d"
  "CMakeFiles/aesip_arch.dir/baselines.cpp.o"
  "CMakeFiles/aesip_arch.dir/baselines.cpp.o.d"
  "CMakeFiles/aesip_arch.dir/cycle_model.cpp.o"
  "CMakeFiles/aesip_arch.dir/cycle_model.cpp.o.d"
  "libaesip_arch.a"
  "libaesip_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
