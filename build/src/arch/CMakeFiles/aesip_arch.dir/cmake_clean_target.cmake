file(REMOVE_RECURSE
  "libaesip_arch.a"
)
