file(REMOVE_RECURSE
  "libaesip_fpga.a"
)
