file(REMOVE_RECURSE
  "CMakeFiles/aesip_fpga.dir/device.cpp.o"
  "CMakeFiles/aesip_fpga.dir/device.cpp.o.d"
  "CMakeFiles/aesip_fpga.dir/fitter.cpp.o"
  "CMakeFiles/aesip_fpga.dir/fitter.cpp.o.d"
  "libaesip_fpga.a"
  "libaesip_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
