# Empty compiler generated dependencies file for aesip_fpga.
# This may be replaced when dependencies are built.
