file(REMOVE_RECURSE
  "libaesip_seu.a"
)
