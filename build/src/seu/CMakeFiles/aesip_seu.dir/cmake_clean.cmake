file(REMOVE_RECURSE
  "CMakeFiles/aesip_seu.dir/campaign.cpp.o"
  "CMakeFiles/aesip_seu.dir/campaign.cpp.o.d"
  "CMakeFiles/aesip_seu.dir/tmr.cpp.o"
  "CMakeFiles/aesip_seu.dir/tmr.cpp.o.d"
  "libaesip_seu.a"
  "libaesip_seu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_seu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
