# Empty compiler generated dependencies file for aesip_seu.
# This may be replaced when dependencies are built.
