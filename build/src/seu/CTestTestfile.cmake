# CMake generated Testfile for 
# Source directory: /root/repo/src/seu
# Build directory: /root/repo/build/src/seu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
