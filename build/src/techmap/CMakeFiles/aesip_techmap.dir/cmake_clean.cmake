file(REMOVE_RECURSE
  "CMakeFiles/aesip_techmap.dir/techmap.cpp.o"
  "CMakeFiles/aesip_techmap.dir/techmap.cpp.o.d"
  "libaesip_techmap.a"
  "libaesip_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
