# Empty compiler generated dependencies file for aesip_techmap.
# This may be replaced when dependencies are built.
