file(REMOVE_RECURSE
  "libaesip_techmap.a"
)
