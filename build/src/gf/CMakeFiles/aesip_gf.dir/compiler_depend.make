# Empty compiler generated dependencies file for aesip_gf.
# This may be replaced when dependencies are built.
