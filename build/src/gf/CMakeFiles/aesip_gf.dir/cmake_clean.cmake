file(REMOVE_RECURSE
  "CMakeFiles/aesip_gf.dir/composite.cpp.o"
  "CMakeFiles/aesip_gf.dir/composite.cpp.o.d"
  "libaesip_gf.a"
  "libaesip_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
