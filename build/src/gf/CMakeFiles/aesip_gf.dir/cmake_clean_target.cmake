file(REMOVE_RECURSE
  "libaesip_gf.a"
)
