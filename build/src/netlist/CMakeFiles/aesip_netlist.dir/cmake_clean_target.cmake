file(REMOVE_RECURSE
  "libaesip_netlist.a"
)
