# Empty compiler generated dependencies file for aesip_netlist.
# This may be replaced when dependencies are built.
