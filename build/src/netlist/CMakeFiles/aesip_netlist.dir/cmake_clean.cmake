file(REMOVE_RECURSE
  "CMakeFiles/aesip_netlist.dir/eval.cpp.o"
  "CMakeFiles/aesip_netlist.dir/eval.cpp.o.d"
  "CMakeFiles/aesip_netlist.dir/netlist.cpp.o"
  "CMakeFiles/aesip_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/aesip_netlist.dir/synth.cpp.o"
  "CMakeFiles/aesip_netlist.dir/synth.cpp.o.d"
  "CMakeFiles/aesip_netlist.dir/writer.cpp.o"
  "CMakeFiles/aesip_netlist.dir/writer.cpp.o.d"
  "libaesip_netlist.a"
  "libaesip_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
