# Empty dependencies file for aesip_report.
# This may be replaced when dependencies are built.
