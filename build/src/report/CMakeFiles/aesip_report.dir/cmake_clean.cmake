file(REMOVE_RECURSE
  "CMakeFiles/aesip_report.dir/table.cpp.o"
  "CMakeFiles/aesip_report.dir/table.cpp.o.d"
  "libaesip_report.a"
  "libaesip_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aesip_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
