file(REMOVE_RECURSE
  "libaesip_report.a"
)
