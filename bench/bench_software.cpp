// Software AES performance — the context the paper's introduction sets up
// ("at backbone communication channels ... it is not possible to lose
// processing speed running cryptography algorithms in general software").
//
// Benchmarks the reference (spec-shaped) cipher, the 32-bit T-table
// engine, the modes of operation, and the key schedule, and prints the
// resulting software throughput next to the IP's hardware numbers.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "aes/ttable.hpp"
#include "core/table2.hpp"

namespace aes = aesip::aes;

namespace {

const std::array<std::uint8_t, 16> kKey{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const std::array<std::uint8_t, 16> kBlock{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                          0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};

void BM_ReferenceEncryptBlock(benchmark::State& state) {
  aes::Aes128 c(kKey);
  std::array<std::uint8_t, 16> out{};
  for (auto _ : state) {
    c.encrypt_block(kBlock, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_ReferenceEncryptBlock);

void BM_ReferenceDecryptBlock(benchmark::State& state) {
  aes::Aes128 c(kKey);
  std::array<std::uint8_t, 16> out{};
  for (auto _ : state) {
    c.decrypt_block(kBlock, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_ReferenceDecryptBlock);

void BM_TTableEncryptBlock(benchmark::State& state) {
  aes::TTableAes128 c(kKey);
  std::array<std::uint8_t, 16> out{};
  for (auto _ : state) {
    c.encrypt_block(kBlock, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_TTableEncryptBlock);

void BM_TTableDecryptBlock(benchmark::State& state) {
  aes::TTableAes128 c(kKey);
  std::array<std::uint8_t, 16> out{};
  for (auto _ : state) {
    c.decrypt_block(kBlock, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_TTableDecryptBlock);

void BM_KeyExpansion(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::expand_key(aes::Geometry::make(128, 128), kKey));
  }
}
BENCHMARK(BM_KeyExpansion);

void BM_CbcEncrypt(benchmark::State& state) {
  aes::TTableAes128 c(kKey);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xab);
  const std::span<const std::uint8_t, 16> iv(kBlock.data(), 16);
  for (auto _ : state) benchmark::DoNotOptimize(aes::cbc_encrypt(c, iv, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CbcEncrypt)->Arg(1024)->Arg(65536);

void BM_CtrCrypt(benchmark::State& state) {
  aes::TTableAes128 c(kKey);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xab);
  const std::span<const std::uint8_t, 16> ctr(kBlock.data(), 16);
  for (auto _ : state) benchmark::DoNotOptimize(aes::ctr_crypt(c, ctr, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CtrCrypt)->Arg(65536);

void BM_RijndaelWideBlock(benchmark::State& state) {
  // Full Rijndael with 256-bit blocks (outside the AES subset).
  std::vector<std::uint8_t> key(32, 0x5a), in(32, 0x3c), out(32);
  auto c = aes::Rijndael::make(256, 256, key);
  for (auto _ : state) {
    c.encrypt_block(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_RijndaelWideBlock);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Software AES vs the hardware IP (paper introduction context) ===\n\n");
  const auto rows = aesip::core::reproduce_table2();
  std::printf("Hardware IP full-rate throughput (reproduced Table 2):\n");
  for (const auto& r : rows)
    std::printf("  %-8s on %-16s : %7.1f Mbps\n", r.paper.system, r.device->name.c_str(),
                r.throughput_mbps);
  std::printf("\nSoftware throughputs follow from the benchmarks below"
              " (bytes_per_second).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
