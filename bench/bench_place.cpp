// Placement study: the layer under the fitter's statistical routing model.
//
// Anneals each Table 2 configuration onto its logic-element grid and
// compares the statistical clock estimate with the placement-backannotated
// one (per-net wirelength delays), plus the annealer's own convergence.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "place/place.hpp"
#include "report/table.hpp"
#include "sta/sta.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace fpga = aesip::fpga;
namespace place = aesip::place;
namespace txm = aesip::techmap;
using aesip::report::Table;
using core::IpMode;

namespace {

void print_place_study() {
  std::cout << "=== Placement (simulated annealing, HPWL objective) ===\n\n";
  Table t({"Variant", "Device", "LEs placed", "Grid", "HPWL random", "HPWL annealed",
           "Improved", "Clk stat (ns)", "Clk placed (ns)"});
  for (const fpga::Device* dev : {&fpga::ep1k100fc484_1(), &fpga::ep1c20f400c6()}) {
    for (const auto mode : {IpMode::kEncrypt, IpMode::kBoth}) {
      const auto mapped =
          txm::map_to_luts(core::synthesize_ip(mode, dev->supports_async_rom));
      place::Options opt;
      opt.stages = 40;
      opt.moves_per_cell = 4;
      const auto p = place::anneal(mapped.mapped, opt);
      std::vector<double> extra(p.net_length.size());
      const double ns_per_unit = dev->supports_async_rom ? 0.030 : 0.018;
      for (std::size_t i = 0; i < extra.size(); ++i)
        extra[i] = ns_per_unit * p.net_length[i];
      const auto stat = aesip::sta::analyze(mapped.mapped, dev->timing);
      const auto placed = aesip::sta::analyze(mapped.mapped, dev->timing, extra);
      t.add_row({mode == IpMode::kEncrypt ? "Encrypt" : "Both", dev->name,
                 std::to_string(p.cell_count),
                 std::to_string(p.grid_width) + "x" + std::to_string(p.grid_height),
                 Table::fixed(p.initial_hpwl, 0), Table::fixed(p.final_hpwl, 0),
                 Table::fixed(100.0 * p.improvement(), 0) + "%",
                 Table::fixed(stat.clock_period_ns, 1),
                 Table::fixed(placed.clock_period_ns, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe statistical model (used for Table 2) and the placement-derived\n"
               "numbers bracket the same clocks — the annealer recovers most of the\n"
               "random-placement wirelength, as a real fitter does.\n\n";
}

void BM_AnnealEncryptIp(benchmark::State& state) {
  static const auto mapped =
      txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, true));
  place::Options opt;
  opt.stages = static_cast<int>(state.range(0));
  opt.moves_per_cell = 4;
  for (auto _ : state) benchmark::DoNotOptimize(place::anneal(mapped.mapped, opt));
}
BENCHMARK(BM_AnnealEncryptIp)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_place_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
