// Power analysis of the architecture — the paper's proposed future work
// ("we propose a power analysis of the architecture. As one of the
// possible applications area mobile systems, this feature is very
// interesting.").
//
// Measures switching activity of the gate-level IPs over a random-block
// workload and reports activity-based power at each variant's Table 2
// clock, with the breakdown (logic / routing / clock tree / embedded
// memory / pads / static) and the mobile-systems figure of merit:
// energy per encrypted bit.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/ip_synth.hpp"
#include "core/table2.hpp"
#include "netlist/eval.hpp"
#include "power/power.hpp"
#include "report/table.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace power = aesip::power;
namespace txm = aesip::techmap;
using aesip::report::Table;

namespace {

void print_power_study() {
  std::cout << "=== Power analysis (the paper's future work, Section 6) ===\n\n";
  Table t({"System", "Device", "Clk(MHz)", "Logic(mW)", "Route(mW)", "ClkTree(mW)",
           "Mem(mW)", "I/O(mW)", "Static(mW)", "Total(mW)", "nJ/block", "pJ/bit"});
  for (const auto& row : core::reproduce_table2()) {
    // Decrypt-only cannot run the encrypt workload; profile enc and both.
    if (row.mode == core::IpMode::kDecrypt) continue;
    const bool rom = row.device->supports_async_rom;
    const auto mapped = txm::map_to_luts(core::synthesize_ip(row.mode, rom));
    const double mhz = 1000.0 / row.fit.timing.clock_period_ns;
    const auto p = power::profile_ip(mapped.mapped, power::params_for(*row.device), mhz);
    t.add_row({row.paper.system, row.device->name, Table::fixed(mhz, 1),
               Table::fixed(p.logic_mw, 1), Table::fixed(p.routing_mw, 1),
               Table::fixed(p.clock_mw, 1), Table::fixed(p.memory_mw, 1),
               Table::fixed(p.io_mw, 1), Table::fixed(p.static_mw, 1),
               Table::fixed(p.total_mw, 1), Table::fixed(p.energy_per_block_nj, 2),
               Table::fixed(p.energy_per_bit_pj, 1)});
  }
  t.print(std::cout);
  std::cout << "\nObservations for the mobile-systems case the paper raises:\n"
            << "  * the 1.5 V Cyclone spends a fraction of the Acex switching energy\n"
            << "    per block despite running faster (V^2 scaling);\n"
            << "  * the parallel 261-pin bus is a visible share of dynamic power —\n"
            << "    a narrow bus adapter also saves energy, not just pins;\n"
            << "  * the combined device burns more than encrypt-only (16 S-boxes,\n"
            << "    wider muxing) — pair with its 22% throughput drop when choosing.\n\n";
}

void BM_ProfileEncryptAcex(benchmark::State& state) {
  static const auto mapped =
      txm::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        power::profile_ip(mapped.mapped, power::acex1k_power(), 71.4, /*blocks=*/2));
}
BENCHMARK(BM_ProfileEncryptAcex)->Unit(benchmark::kMillisecond);

void BM_ActivitySample(benchmark::State& state) {
  static const auto mapped =
      txm::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  aesip::netlist::Evaluator ev(mapped.mapped);
  power::ActivityProbe probe(mapped.mapped, power::acex1k_power());
  ev.settle();
  for (auto _ : state) {
    ev.clock();
    probe.sample(ev.net_values());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActivitySample);

}  // namespace

int main(int argc, char** argv) {
  print_power_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
