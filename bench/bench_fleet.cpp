// Fleet management overheads: what live reconfiguration costs the farm.
//
// Three questions, each with its own section in BENCH_fleet.json:
//
//  * spot-check tax — the cross-check policy re-runs a sampled fraction of
//    completed jobs through the software oracle on the worker thread. At
//    the default-recommended 25% sampling on behavioral workers the tax
//    must stay under 5% of wall throughput (the oracle is a table-driven
//    software AES; the engine it audits is a cycle-accurate simulation, so
//    the audit is cheap relative to the work). Gated, like the farm
//    bench's wall-scaling figure, only on hosts with >= 4 hardware
//    threads — below that, wall-clock deltas measure scheduler pressure,
//    not the policy, and the gate is recorded as skipped with the reason.
//
//  * swap pause — hot-swapping a live worker's engine quiesces only that
//    worker: build the replacement, replay the resident key (the 40-cycle
//    setup from the paper), rebind. The pause histogram is the
//    availability cost of a fleet migration.
//
//  * zero corruption under chaos — SEUs injected into live netlist DFF
//    state mid-traffic, with 100% spot-checking: every corrupted output
//    must be caught, answered from the oracle, and the engine healed.
//    corrupted_frames/lost_frames must be exactly zero (meets_target).
//
// Results go to stdout and BENCH_fleet.json (aesip-bench-v1 envelope;
// validated by tools/check_bench.sh).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "farm/farm.hpp"
#include "fleet/fleet.hpp"
#include "report/json.hpp"

namespace farm = aesip::farm;
namespace fleet = aesip::fleet;

namespace {

constexpr double kClockNs = 14.0;  // the paper's Acex1K Table 2 clock
constexpr int kWorkers = 4;
constexpr std::uint64_t kOverheadBlocks = 8000;
constexpr double kSpotFraction = 0.25;
constexpr double kOverheadTargetPct = 5.0;

farm::Request random_request(std::mt19937& rng, const std::vector<farm::Key128>& keys) {
  farm::Request req;
  const auto pick = std::min(rng() % keys.size(), rng() % keys.size());
  req.session_id = pick;
  req.key = keys[pick];
  for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
  req.mode = static_cast<farm::Mode>(rng() % 3);
  req.encrypt = (rng() & 1) != 0;
  req.payload.resize((1 + rng() % 8) * 16);
  for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
  return req;
}

std::vector<std::uint8_t> oracle(const farm::Request& req) {
  const aesip::aes::Rijndael ref = aesip::aes::Rijndael::for_key(req.key.view());
  const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
  switch (req.mode) {
    case farm::Mode::kEcb:
      return req.encrypt ? aesip::aes::ecb_encrypt(ref, req.payload)
                         : aesip::aes::ecb_decrypt(ref, req.payload);
    case farm::Mode::kCbc:
      return req.encrypt ? aesip::aes::cbc_encrypt(ref, iv, req.payload)
                         : aesip::aes::cbc_decrypt(ref, iv, req.payload);
    case farm::Mode::kCtr:
      return aesip::aes::ctr_crypt(ref, iv, req.payload);
  }
  return {};
}

/// Fixed seeded workload through a behavioral farm at the given spot-check
/// fraction; identical traffic per call so the two rates are comparable.
farm::FarmStats run_spot_point(double fraction) {
  farm::FarmConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_capacity = 128;
  cfg.engine = aesip::engine::EngineKind::kBehavioral;
  cfg.spot_check_fraction = fraction;
  farm::Farm f(cfg);

  std::mt19937 rng(1234);
  std::vector<farm::Key128> keys(16);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());

  std::vector<std::future<farm::Result>> pending;
  std::uint64_t submitted = 0;
  while (submitted < kOverheadBlocks) {
    auto req = random_request(rng, keys);
    submitted += req.payload.size() / 16;
    pending.push_back(f.submit(std::move(req)));
    if (pending.size() > 1024) {
      for (auto& p : pending) p.get();
      pending.clear();
    }
  }
  for (auto& p : pending) p.get();
  return f.stats();
}

struct SwapResults {
  std::uint64_t swaps = 0;
  double mean_setup_cycles = 0;
  farm::FarmStats stats;
};

/// Hot-swaps under live traffic: rotate every worker behavioral -> sw ->
/// behavioral while a verified workload runs, collecting the pause
/// histogram the farm records per swap.
SwapResults run_swap_point() {
  farm::FarmConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_capacity = 128;
  cfg.engine = aesip::engine::EngineKind::kBehavioral;
  farm::Farm f(cfg);

  std::mt19937 rng(99);
  std::vector<farm::Key128> keys(8);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());

  SwapResults out;
  std::uint64_t total_setup = 0;
  std::vector<std::future<farm::Result>> pending;
  std::vector<std::vector<std::uint8_t>> expect;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 64; ++i) {
      auto req = random_request(rng, keys);
      expect.push_back(oracle(req));
      pending.push_back(f.submit(std::move(req)));
    }
    const auto kind = (round & 1) ? aesip::engine::EngineKind::kBehavioral
                                  : aesip::engine::EngineKind::kSoftware;
    for (int w = 0; w < kWorkers; ++w) {
      const auto rep = f.swap_engine(w, kind).get();
      total_setup += rep.setup_cycles;
      ++out.swaps;
    }
  }
  for (std::size_t i = 0; i < pending.size(); ++i)
    if (pending[i].get().data != expect[i])
      std::fprintf(stderr, "bench_fleet: SWAP WORKLOAD MISMATCH at request %zu\n", i);
  out.mean_setup_cycles =
      out.swaps ? static_cast<double>(total_setup) / static_cast<double>(out.swaps) : 0;
  out.stats = f.stats();
  return out;
}

struct ChaosResults {
  std::uint64_t injections = 0;
  std::uint64_t corrupted_frames = 0;  // client-visible wrong bytes (must be 0)
  std::uint64_t lost_frames = 0;       // futures never answered (must be 0)
  std::uint64_t replayed = 0;          // answered from the oracle after a catch
  farm::FarmStats stats;
};

/// The chaos scenario: netlist workers, 100% spot-check, SEUs flipped into
/// live DFF state every few requests. Every response is verified against
/// the oracle — a corrupted frame reaching the client fails the gate.
ChaosResults run_chaos_point() {
  farm::FarmConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.engine = aesip::engine::EngineKind::kNetlist;
  cfg.spot_check_fraction = 1.0;
  farm::Farm f(cfg);
  fleet::ChaosInjector chaos(f, /*seed=*/0x5eed);

  std::mt19937 rng(7);
  std::vector<farm::Key128> keys(8);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());

  ChaosResults out;
  struct Pending {
    std::future<farm::Result> future;
    std::vector<std::uint8_t> expect;
  };
  std::vector<Pending> pending;
  for (int i = 0; i < 96; ++i) {
    auto req = random_request(rng, keys);
    Pending p;
    p.expect = oracle(req);
    p.future = f.submit(std::move(req));
    pending.push_back(std::move(p));
    if (i % 8 == 3) {
      const auto ev = chaos.inject();
      if (ev.injected) ++out.injections;
    }
  }
  for (auto& p : pending) {
    const auto res = p.future.get();
    if (res.data != p.expect) ++out.corrupted_frames;
    if (res.replayed) ++out.replayed;
  }
  out.stats = f.stats();
  return out;
}

void print_and_dump() {
  const unsigned hw = std::thread::hardware_concurrency();

  // --- spot-check overhead ---------------------------------------------------
  std::printf("=== fleet: spot-check overhead (%d behavioral workers, %llu blocks) ===\n",
              kWorkers, static_cast<unsigned long long>(kOverheadBlocks));
  const auto base = run_spot_point(0.0);
  const auto spot = run_spot_point(kSpotFraction);
  const double overhead_pct = std::max(
      0.0, spot.blocks_per_wall_sec() > 0
               ? (base.blocks_per_wall_sec() / spot.blocks_per_wall_sec() - 1.0) * 100.0
               : 0.0);
  const bool overhead_skipped = hw < 4;
  const bool overhead_met = overhead_skipped || overhead_pct < kOverheadTargetPct;
  std::printf("  fraction 0.00: %10.0f blocks/s wall\n", base.blocks_per_wall_sec());
  std::printf("  fraction %.2f: %10.0f blocks/s wall  (%llu spot-checks, %llu mismatches)\n",
              kSpotFraction, spot.blocks_per_wall_sec(),
              static_cast<unsigned long long>(spot.spot_checks),
              static_cast<unsigned long long>(spot.spot_mismatches));
  if (overhead_skipped)
    std::printf("  overhead gate SKIPPED: host has %u hardware thread(s) < 4 workers\n\n", hw);
  else
    std::printf("  overhead: %.2f%% (target < %.1f%%): %s\n\n", overhead_pct,
                kOverheadTargetPct, overhead_met ? "PASS" : "FAIL");

  // --- swap pause ------------------------------------------------------------
  std::printf("=== fleet: hot-swap pause under load ===\n");
  const auto sw = run_swap_point();
  const auto& pause = sw.stats.swap_pause_us;
  std::printf("  %llu swaps: pause us p50 %llu  p90 %llu  max %llu; "
              "mean %.0f key-replay cycles/swap\n\n",
              static_cast<unsigned long long>(sw.swaps),
              static_cast<unsigned long long>(pause.percentile(0.50)),
              static_cast<unsigned long long>(pause.percentile(0.90)),
              static_cast<unsigned long long>(pause.max), sw.mean_setup_cycles);

  // --- chaos / zero corruption -----------------------------------------------
  std::printf("=== fleet: SEU chaos, 100%% spot-check (2 netlist workers) ===\n");
  const auto ch = run_chaos_point();
  std::printf("  %llu injections -> %llu spot-checks, %llu mismatches caught, "
              "%llu replayed, %llu heals\n",
              static_cast<unsigned long long>(ch.injections),
              static_cast<unsigned long long>(ch.stats.spot_checks),
              static_cast<unsigned long long>(ch.stats.spot_mismatches),
              static_cast<unsigned long long>(ch.replayed),
              static_cast<unsigned long long>(ch.stats.heals));
  const bool chaos_met = ch.corrupted_frames == 0 && ch.lost_frames == 0;
  std::printf("  corrupted frames: %llu, lost frames: %llu -> %s\n\n",
              static_cast<unsigned long long>(ch.corrupted_frames),
              static_cast<unsigned long long>(ch.lost_frames),
              chaos_met ? "PASS (zero corruption)" : "FAIL");

  std::ofstream jf("BENCH_fleet.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "fleet", 1);
  j.begin_object();  // config
  j.key("clock_ns").value(kClockNs);
  j.key("workers").value(kWorkers);
  j.key("overhead_blocks").value(kOverheadBlocks);
  j.key("host_hardware_concurrency").value(hw);
  j.end_object();

  j.key("spot_check_overhead").begin_object();
  j.key("fraction").value(kSpotFraction);
  j.key("baseline_blocks_per_sec").value(base.blocks_per_wall_sec());
  j.key("checked_blocks_per_sec").value(spot.blocks_per_wall_sec());
  j.key("spot_checks").value(spot.spot_checks);
  j.key("overhead_pct").value(overhead_pct);
  j.key("target_pct").value(kOverheadTargetPct);
  j.key("skipped").value(overhead_skipped);
  if (overhead_skipped)
    j.key("reason").value("host hardware_concurrency < 4 workers; wall-clock "
                          "overhead is not measurable on this machine");
  j.key("meets_target").value(overhead_met);
  j.end_object();

  j.key("swap").begin_object();
  j.key("swaps").value(sw.swaps);
  j.key("pause_us_p50").value(pause.percentile(0.50));
  j.key("pause_us_p90").value(pause.percentile(0.90));
  j.key("pause_us_max").value(pause.max);
  j.key("mean_key_replay_cycles").value(sw.mean_setup_cycles);
  j.end_object();

  j.key("zero_corruption").begin_object();
  j.key("injections").value(ch.injections);
  j.key("spot_checks").value(ch.stats.spot_checks);
  j.key("spot_mismatches").value(ch.stats.spot_mismatches);
  j.key("replayed_jobs").value(ch.replayed);
  j.key("heals").value(ch.stats.heals);
  j.key("corrupted_frames").value(ch.corrupted_frames);
  j.key("lost_frames").value(ch.lost_frames);
  j.key("meets_target").value(chaos_met);
  j.end_object();
  j.end_object();
  std::printf("wrote BENCH_fleet.json\n\n");
}

void BM_SpotCheckedFarm(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  farm::FarmConfig cfg;
  cfg.workers = kWorkers;
  cfg.engine = aesip::engine::EngineKind::kBehavioral;
  cfg.spot_check_fraction = fraction;
  farm::Farm f(cfg);
  std::mt19937 rng(1);
  std::vector<farm::Key128> keys(8);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    std::vector<std::future<farm::Result>> pending;
    for (int i = 0; i < 64; ++i) pending.push_back(f.submit(random_request(rng, keys)));
    for (auto& p : pending) benchmark::DoNotOptimize(p.get().data);
  }
  state.counters["spot_pct"] = fraction * 100.0;
}
BENCHMARK(BM_SpotCheckedFarm)->Arg(0)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_and_dump();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
