// Service-layer overhead: the wire protocol vs. calling the farm directly.
//
// The net stack (framing, CRC, transport copies, the server event loop)
// sits between clients and the IP farm; this bench measures what it
// costs. The gate: with 4 workers on the behavioral engine — compute
// heavy, the deployment the service layer exists for — pushing the same
// workload through loopback server+clients must reach >= 70% of the
// direct Farm::submit ceiling (`gate.meets_target` in BENCH_net.json).
// Below that, framing is eating the replication win and the protocol
// needs work.
//
// A second sweep runs the sw engine (compute nearly free, so protocol
// overhead is the signal) across sessions x payload size: how concurrency
// and frame size amortize the fixed per-frame cost.
//
// Results go to stdout (table) and BENCH_net.json (aesip-bench-v1
// envelope; schema documented in docs/benchmarks.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "farm/farm.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "report/json.hpp"

namespace farm = aesip::farm;
namespace net = aesip::net;

namespace {

constexpr double kClockNs = 14.0;  // the paper's Acex1K Table 2 clock

farm::Key128 session_key(std::uint64_t sid) {
  farm::Key128 k{};
  for (std::size_t i = 0; i < k.size(); ++i)
    k[i] = static_cast<std::uint8_t>(0xa5 ^ (sid * 29 + i * 13));
  return k;
}

/// The workload one session pushes: `requests` ECB frames of
/// `blocks_per_req` blocks each, deterministic payload bytes.
std::vector<std::uint8_t> request_payload(std::size_t blocks, std::uint32_t salt) {
  std::vector<std::uint8_t> p(blocks * 16);
  std::mt19937 rng(salt);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

/// Ceiling: the same sessions x requests workload submitted straight into
/// a Farm from one thread per session, `window` futures outstanding each —
/// the client pipeline without any wire in the way.
double run_direct(aesip::engine::EngineKind engine, int workers, int sessions,
                  std::uint64_t requests, std::size_t blocks_per_req, std::size_t window) {
  farm::FarmConfig cfg;
  cfg.workers = workers;
  cfg.engine = engine;
  cfg.queue_capacity = 128;
  farm::Farm f(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      const auto key = session_key(static_cast<std::uint64_t>(s) + 1);
      std::deque<std::future<farm::Result>> pending;
      for (std::uint64_t r = 0; r < requests; ++r) {
        farm::Request req;
        req.session_id = static_cast<std::uint64_t>(s) + 1;
        req.key = key;
        req.mode = farm::Mode::kEcb;
        req.payload = request_payload(blocks_per_req, static_cast<std::uint32_t>(r));
        pending.push_back(f.submit(std::move(req)));
        while (pending.size() >= window) {
          pending.front().get();
          pending.pop_front();
        }
      }
      while (!pending.empty()) {
        pending.front().get();
        pending.pop_front();
      }
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The same workload through the whole service stack: loopback transport,
/// wire framing both ways, the server event loop, one net::Client per
/// session pipelining up to the server's window.
double run_loopback(aesip::engine::EngineKind engine, int workers, int sessions,
                    std::uint64_t requests, std::size_t blocks_per_req) {
  net::LoopbackTransport transport(/*max_chunk=*/1 << 16, /*pipe_capacity=*/1 << 20);
  net::ServerConfig cfg;
  cfg.farm.workers = workers;
  cfg.farm.engine = engine;
  cfg.farm.queue_capacity = 128;
  cfg.window = 32;
  net::Server server(transport, "bench", cfg);
  server.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      net::Client client(transport, "bench", static_cast<std::uint64_t>(s) + 1);
      client.set_key(session_key(static_cast<std::uint64_t>(s) + 1));
      const farm::Key128 iv{};
      std::deque<std::uint32_t> pending;
      for (std::uint64_t r = 0; r < requests; ++r) {
        pending.push_back(client.submit_enc(
            /*cbc=*/false, iv, request_payload(blocks_per_req, static_cast<std::uint32_t>(r))));
        while (pending.size() >= client.window()) {
          client.wait(pending.front());
          pending.pop_front();
        }
      }
      while (!pending.empty()) {
        client.wait(pending.front());
        pending.pop_front();
      }
      client.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();
  return secs;
}

void print_and_dump() {
  // --- the gate: behavioral engine, 4 workers --------------------------------
  const int workers = 4;
  const int gate_sessions = 4;
  const std::uint64_t gate_requests = 64;
  const std::size_t gate_blocks = 16;
  const std::uint64_t gate_total_blocks =
      static_cast<std::uint64_t>(gate_sessions) * gate_requests * gate_blocks;

  std::printf("=== net service layer vs direct farm calls ===\n\n");
  std::printf("gate workload: %d sessions x %llu requests x %zu blocks (behavioral, "
              "%d workers)\n",
              gate_sessions, static_cast<unsigned long long>(gate_requests), gate_blocks,
              workers);

  // Warm one run of each, then measure (first run pays thread/core spin-up).
  run_direct(aesip::engine::EngineKind::kBehavioral, workers, gate_sessions, 8, gate_blocks, 32);
  const double direct_secs = run_direct(aesip::engine::EngineKind::kBehavioral, workers,
                                        gate_sessions, gate_requests, gate_blocks, 32);
  const double loop_secs = run_loopback(aesip::engine::EngineKind::kBehavioral, workers,
                                        gate_sessions, gate_requests, gate_blocks);
  const double direct_bps = static_cast<double>(gate_total_blocks) / direct_secs;
  const double loop_bps = static_cast<double>(gate_total_blocks) / loop_secs;
  const double ratio = direct_bps > 0 ? loop_bps / direct_bps : 0.0;
  const bool meets_target = ratio >= 0.70;
  std::printf("  direct farm calls:   %10.0f blocks/s\n", direct_bps);
  std::printf("  loopback wire stack: %10.0f blocks/s\n", loop_bps);
  std::printf("  ratio: %.2f (target >= 0.70) -> %s\n\n", ratio,
              meets_target ? "ok" : "BELOW TARGET");

  // --- sw-engine sweep: protocol overhead vs concurrency and frame size -----
  struct SweepPoint {
    int sessions;
    std::size_t blocks_per_req;
    std::uint64_t total_blocks;
    double secs;
  };
  std::vector<SweepPoint> sweep;
  std::printf("sw-engine loopback sweep (%d workers):\n", workers);
  std::printf("  %-8s  %-10s  %12s\n", "sessions", "blk/frame", "blocks/s");
  for (const int sessions : {1, 2, 4, 8}) {
    for (const std::size_t blocks : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
      // ~4k blocks per point, at least 8 requests per session.
      const std::uint64_t requests =
          std::max<std::uint64_t>(8, 4096 / (static_cast<std::uint64_t>(sessions) * blocks));
      const std::uint64_t total =
          static_cast<std::uint64_t>(sessions) * requests * blocks;
      const double secs = run_loopback(aesip::engine::EngineKind::kSoftware, workers,
                                       sessions, requests, blocks);
      sweep.push_back({sessions, blocks, total, secs});
      std::printf("  %-8d  %-10zu  %12.0f\n", sessions, blocks,
                  static_cast<double>(total) / secs);
    }
  }
  std::printf("\n");

  std::ofstream jf("BENCH_net.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "net", 1);
  j.begin_object();  // config
  j.key("clock_ns").value(kClockNs);
  j.key("workers").value(workers);
  j.key("window").value(32);
  j.key("transport").value("loopback");
  j.key("host_hardware_concurrency").value(std::thread::hardware_concurrency());
  j.end_object();
  j.key("gate").begin_object();
  j.key("engine").value("behavioral");
  j.key("sessions").value(gate_sessions);
  j.key("requests_per_session").value(gate_requests);
  j.key("blocks_per_request").value(gate_blocks);
  j.key("total_blocks").value(gate_total_blocks);
  j.key("direct_blocks_per_sec").value(direct_bps);
  j.key("loopback_blocks_per_sec").value(loop_bps);
  j.key("ratio").value(ratio);
  j.key("target_ratio").value(0.70);
  j.key("meets_target").value(meets_target);
  j.end_object();
  j.key("sweep").begin_array();
  for (const auto& p : sweep) {
    j.begin_object();
    j.key("engine").value("sw");
    j.key("sessions").value(p.sessions);
    j.key("blocks_per_request").value(p.blocks_per_req);
    j.key("total_blocks").value(p.total_blocks);
    j.key("wall_seconds").value(p.secs);
    j.key("blocks_per_sec").value(static_cast<double>(p.total_blocks) / p.secs);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote BENCH_net.json\n\n");
}

/// Codec microbenchmark: encode+decode round trip of one data frame.
void BM_FrameCodec(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  net::Frame f;
  f.op = net::Op::kEncBlocks;
  f.session_id = 7;
  f.payload = request_payload(blocks, 42);
  net::FrameDecoder dec;
  net::Frame out;
  for (auto _ : state) {
    const auto bytes = net::encode_frame(f);
    dec.feed(bytes);
    const auto st = dec.next(out);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks * 16));
}
BENCHMARK(BM_FrameCodec)->Arg(1)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_and_dump();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
