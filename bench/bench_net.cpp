// Service-layer overhead: the wire protocol vs. calling the farm directly.
//
// The net stack (framing, CRC, transport copies, the server event loop)
// sits between clients and the IP farm; this bench measures what it
// costs. The gate: with 4 workers on the behavioral engine — compute
// heavy, the deployment the service layer exists for — pushing the same
// workload through loopback server+clients must reach >= 70% of the
// direct Farm::submit ceiling (`gate.meets_target` in BENCH_net.json).
// Below that, framing is eating the replication win and the protocol
// needs work.
//
// A second sweep runs the sw engine (compute nearly free, so protocol
// overhead is the signal) across sessions x payload size: how concurrency
// and frame size amortize the fixed per-frame cost.
//
// Results go to stdout (table) and BENCH_net.json (aesip-bench-v1
// envelope; schema documented in docs/benchmarks.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "farm/farm.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "report/json.hpp"

namespace farm = aesip::farm;
namespace net = aesip::net;

namespace {

constexpr double kClockNs = 14.0;  // the paper's Acex1K Table 2 clock

farm::Key128 session_key(std::uint64_t sid) {
  farm::Key128 k{};
  for (std::size_t i = 0; i < k.size(); ++i)
    k[i] = static_cast<std::uint8_t>(0xa5 ^ (sid * 29 + i * 13));
  return k;
}

/// The workload one session pushes: `requests` ECB frames of
/// `blocks_per_req` blocks each, deterministic payload bytes.
std::vector<std::uint8_t> request_payload(std::size_t blocks, std::uint32_t salt) {
  std::vector<std::uint8_t> p(blocks * 16);
  std::mt19937 rng(salt);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng());
  return p;
}

/// Ceiling: the same sessions x requests workload submitted straight into
/// a Farm from one thread per session, `window` futures outstanding each —
/// the client pipeline without any wire in the way.
double run_direct(aesip::engine::EngineKind engine, int workers, int sessions,
                  std::uint64_t requests, std::size_t blocks_per_req, std::size_t window) {
  farm::FarmConfig cfg;
  cfg.workers = workers;
  cfg.engine = engine;
  cfg.queue_capacity = 128;
  farm::Farm f(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      const auto key = session_key(static_cast<std::uint64_t>(s) + 1);
      std::deque<std::future<farm::Result>> pending;
      for (std::uint64_t r = 0; r < requests; ++r) {
        farm::Request req;
        req.session_id = static_cast<std::uint64_t>(s) + 1;
        req.key = key;
        req.mode = farm::Mode::kEcb;
        req.payload = request_payload(blocks_per_req, static_cast<std::uint32_t>(r));
        pending.push_back(f.submit(std::move(req)));
        while (pending.size() >= window) {
          pending.front().get();
          pending.pop_front();
        }
      }
      while (!pending.empty()) {
        pending.front().get();
        pending.pop_front();
      }
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The same workload through the whole service stack: loopback transport,
/// wire framing both ways, the server event loop, one net::Client per
/// session pipelining up to the server's window.
double run_loopback(aesip::engine::EngineKind engine, int workers, int sessions,
                    std::uint64_t requests, std::size_t blocks_per_req) {
  net::LoopbackTransport transport(/*max_chunk=*/1 << 16, /*pipe_capacity=*/1 << 20);
  net::ServerConfig cfg;
  cfg.farm.workers = workers;
  cfg.farm.engine = engine;
  cfg.farm.queue_capacity = 128;
  cfg.window = 32;
  net::Server server(transport, "bench", cfg);
  server.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      net::Client client(transport, "bench", static_cast<std::uint64_t>(s) + 1);
      client.set_key(session_key(static_cast<std::uint64_t>(s) + 1));
      const farm::Key128 iv{};
      std::deque<std::uint32_t> pending;
      for (std::uint64_t r = 0; r < requests; ++r) {
        pending.push_back(client.submit_enc(
            /*cbc=*/false, iv, request_payload(blocks_per_req, static_cast<std::uint32_t>(r))));
        while (pending.size() >= client.window()) {
          client.wait(pending.front());
          pending.pop_front();
        }
      }
      while (!pending.empty()) {
        client.wait(pending.front());
        pending.pop_front();
      }
      client.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();
  return secs;
}

// --- v2 sections: epoll scaling, the cluster sweep, UDP vs TCP ---------------

/// The verified workload through real sockets: `sessions` clients against
/// an in-process server (or sharded cluster), every response compared to
/// aes::Aes128, bounded client concurrency so 10k sessions fit any host.
struct NetRun {
  double secs = 0;
  std::uint64_t total_blocks = 0;
  std::uint64_t lost_frames = 0;  ///< missing or bit-inexact responses
  std::uint64_t redirects = 0;
  bool drained = false;  ///< every node stopped with zero in-flight frames
};

NetRun run_sockets(net::Transport& transport, int n_nodes, int server_threads,
                   int sessions, std::uint64_t requests, std::size_t blocks,
                   int concurrency) {
  std::vector<std::unique_ptr<net::Server>> nodes;
  std::vector<std::string> addrs;
  for (int n = 0; n < n_nodes; ++n) {
    net::ServerConfig cfg;
    cfg.farm.workers = 2;
    cfg.farm.engine = aesip::engine::EngineKind::kSoftware;
    cfg.farm.queue_capacity = 128;
    cfg.window = 32;
    cfg.threads = server_threads;
    if (n_nodes > 1) {
      net::ClusterConfig cc;
      cc.node_id = "bench-n" + std::to_string(n);
      cc.seeds = addrs;
      cc.gossip_interval = std::chrono::milliseconds(20);
      cfg.cluster = std::move(cc);
    }
    nodes.push_back(std::make_unique<net::Server>(transport, "127.0.0.1:0", cfg));
    addrs.push_back(nodes.back()->address());
    nodes.back()->start();
  }
  if (n_nodes > 1) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (const auto& node : nodes)
      while (node->director()->alive_count(std::chrono::steady_clock::now()) <
                 static_cast<std::size_t>(n_nodes) &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  NetRun out;
  std::atomic<std::uint64_t> lost{0}, redirects{0};
  std::atomic<int> next_session{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  const int pool = std::min(concurrency, sessions);
  for (int w = 0; w < pool; ++w)
    threads.emplace_back([&] {
      for (int s = next_session.fetch_add(1); s < sessions;
           s = next_session.fetch_add(1)) {
        const auto sid = static_cast<std::uint64_t>(s) + 1;
        try {
          net::Client client(transport, addrs[static_cast<std::size_t>(s) %
                                              addrs.size()],
                             sid);
          const auto key = session_key(sid);
          client.set_key(key);
          const aesip::aes::Aes128 ref(key);
          const auto payload = request_payload(blocks, static_cast<std::uint32_t>(sid));
          const auto expect = aesip::aes::ecb_encrypt(ref, payload);
          const farm::Key128 iv{};
          std::deque<std::uint32_t> pending;
          std::uint64_t bad = 0;
          for (std::uint64_t r = 0; r < requests; ++r) {
            pending.push_back(client.submit_enc(false, iv, payload));
            while (pending.size() >= client.window()) {
              if (client.wait(pending.front()) != expect) ++bad;
              pending.pop_front();
            }
          }
          while (!pending.empty()) {
            if (client.wait(pending.front()) != expect) ++bad;
            pending.pop_front();
          }
          client.drain();
          lost += bad;
          redirects += client.redirects();
          client.bye();
        } catch (const std::exception&) {
          lost += requests;  // the whole session counts as lost frames
        }
      }
    });
  for (auto& t : threads) t.join();
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.total_blocks = static_cast<std::uint64_t>(sessions) * requests * blocks;
  out.lost_frames = lost.load();
  out.redirects = redirects.load();

  out.drained = true;  // graceful: every node answers its in-flight frames
  for (auto& node : nodes) {
    node->stop();
    const auto st = node->stats();
    if (st.in_flight != 0 || st.protocol_errors != 0) out.drained = false;
  }
  return out;
}

void print_and_dump() {
  // --- the gate: behavioral engine, 4 workers --------------------------------
  const int workers = 4;
  const int gate_sessions = 4;
  const std::uint64_t gate_requests = 64;
  const std::size_t gate_blocks = 16;
  const std::uint64_t gate_total_blocks =
      static_cast<std::uint64_t>(gate_sessions) * gate_requests * gate_blocks;

  std::printf("=== net service layer vs direct farm calls ===\n\n");
  std::printf("gate workload: %d sessions x %llu requests x %zu blocks (behavioral, "
              "%d workers)\n",
              gate_sessions, static_cast<unsigned long long>(gate_requests), gate_blocks,
              workers);

  // Warm one run of each, then measure (first run pays thread/core spin-up).
  run_direct(aesip::engine::EngineKind::kBehavioral, workers, gate_sessions, 8, gate_blocks, 32);
  const double direct_secs = run_direct(aesip::engine::EngineKind::kBehavioral, workers,
                                        gate_sessions, gate_requests, gate_blocks, 32);
  const double loop_secs = run_loopback(aesip::engine::EngineKind::kBehavioral, workers,
                                        gate_sessions, gate_requests, gate_blocks);
  const double direct_bps = static_cast<double>(gate_total_blocks) / direct_secs;
  const double loop_bps = static_cast<double>(gate_total_blocks) / loop_secs;
  const double ratio = direct_bps > 0 ? loop_bps / direct_bps : 0.0;
  const bool meets_target = ratio >= 0.70;
  std::printf("  direct farm calls:   %10.0f blocks/s\n", direct_bps);
  std::printf("  loopback wire stack: %10.0f blocks/s\n", loop_bps);
  std::printf("  ratio: %.2f (target >= 0.70) -> %s\n\n", ratio,
              meets_target ? "ok" : "BELOW TARGET");

  // --- sw-engine sweep: protocol overhead vs concurrency and frame size -----
  struct SweepPoint {
    int sessions;
    std::size_t blocks_per_req;
    std::uint64_t total_blocks;
    double secs;
  };
  std::vector<SweepPoint> sweep;
  std::printf("sw-engine loopback sweep (%d workers):\n", workers);
  std::printf("  %-8s  %-10s  %12s\n", "sessions", "blk/frame", "blocks/s");
  for (const int sessions : {1, 2, 4, 8}) {
    for (const std::size_t blocks : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
      // ~4k blocks per point, at least 8 requests per session.
      const std::uint64_t requests =
          std::max<std::uint64_t>(8, 4096 / (static_cast<std::uint64_t>(sessions) * blocks));
      const std::uint64_t total =
          static_cast<std::uint64_t>(sessions) * requests * blocks;
      const double secs = run_loopback(aesip::engine::EngineKind::kSoftware, workers,
                                       sessions, requests, blocks);
      sweep.push_back({sessions, blocks, total, secs});
      std::printf("  %-8d  %-10zu  %12.0f\n", sessions, blocks,
                  static_cast<double>(total) / secs);
    }
  }
  std::printf("\n");

  // --- v2: epoll-worker scaling (TCP, real sockets) --------------------------
  // threads=4 must beat threads=1 by >= 2x — but only hosts with >= 4
  // hardware threads can show wall-clock scaling; below that the section
  // is skipped with a reason (same contract as the farm bench's
  // wall-scaling gate).
  const unsigned hw = std::thread::hardware_concurrency();
  auto tcp = net::make_tcp_transport();
  bool epoll_skipped = true;
  std::string epoll_reason;
  double epoll_1_bps = 0, epoll_4_bps = 0, epoll_ratio = 0;
  bool epoll_meets = false;
  if (hw >= 4) {
    epoll_skipped = false;
    const auto one = run_sockets(*tcp, 1, /*threads=*/1, 8, 64, 8, 8);
    const auto four = run_sockets(*tcp, 1, /*threads=*/4, 8, 64, 8, 8);
    epoll_1_bps = static_cast<double>(one.total_blocks) / one.secs;
    epoll_4_bps = static_cast<double>(four.total_blocks) / four.secs;
    epoll_ratio = epoll_1_bps > 0 ? epoll_4_bps / epoll_1_bps : 0.0;
    epoll_meets = epoll_ratio >= 2.0 && one.lost_frames == 0 && four.lost_frames == 0;
    std::printf("epoll scaling (tcp, sw engine): 1 thread %10.0f blk/s, 4 threads "
                "%10.0f blk/s, ratio %.2f (target >= 2.0) -> %s\n\n",
                epoll_1_bps, epoll_4_bps, epoll_ratio, epoll_meets ? "ok" : "BELOW TARGET");
  } else {
    epoll_reason = "host has " + std::to_string(hw) +
                   " hardware threads; event-loop scaling needs >= 4";
    std::printf("epoll scaling: skipped (%s)\n\n", epoll_reason.c_str());
  }

  // --- v2: cluster sweep, nodes x sessions -----------------------------------
  // The scaling rows (1k/10k sessions, 4 nodes) only run where the host
  // can carry them; every row that runs must drain gracefully with zero
  // lost frames — that pair is the gate, throughput is the observation.
  struct ClusterRow {
    int nodes = 0;
    int sessions = 0;
    bool skipped = false;
    std::string reason;
    NetRun run;
  };
  std::vector<ClusterRow> cluster_rows;
  std::printf("cluster sweep (tcp, sw engine, 16 req x 4 blk per session):\n");
  std::printf("  %-6s  %-9s  %12s  %6s  %8s\n", "nodes", "sessions", "blocks/s", "lost",
              "redirect");
  for (const int n_nodes : {1, 2, 4}) {
    for (const int sessions : {64, 1000, 10000}) {
      ClusterRow row;
      row.nodes = n_nodes;
      row.sessions = sessions;
      if (sessions > 64 && hw < 4) {
        row.skipped = true;
        row.reason = "host has " + std::to_string(hw) +
                     " hardware threads; the " + std::to_string(sessions) +
                     "-session scale row needs >= 4";
        std::printf("  %-6d  %-9d  %12s  (%s)\n", n_nodes, sessions, "skipped",
                    row.reason.c_str());
      } else {
        row.run = run_sockets(*tcp, n_nodes, /*threads=*/1, sessions, 16, 4,
                              /*concurrency=*/64);
        std::printf("  %-6d  %-9d  %12.0f  %6llu  %8llu\n", n_nodes, sessions,
                    static_cast<double>(row.run.total_blocks) / row.run.secs,
                    static_cast<unsigned long long>(row.run.lost_frames),
                    static_cast<unsigned long long>(row.run.redirects));
      }
      cluster_rows.push_back(std::move(row));
    }
  }
  std::printf("\n");

  // --- v2: UDP netchan vs TCP, same verified workload ------------------------
  auto udp = net::make_udp_transport();
  const auto tcp_run = run_sockets(*tcp, 1, 1, 8, 32, 4, 8);
  const auto udp_run = run_sockets(*udp, 1, 1, 8, 32, 4, 8);
  const double tcp_bps = static_cast<double>(tcp_run.total_blocks) / tcp_run.secs;
  const double udp_bps = static_cast<double>(udp_run.total_blocks) / udp_run.secs;
  std::printf("udp vs tcp (8 sessions x 32 req x 4 blk): tcp %10.0f blk/s (lost %llu), "
              "udp %10.0f blk/s (lost %llu)\n\n",
              tcp_bps, static_cast<unsigned long long>(tcp_run.lost_frames), udp_bps,
              static_cast<unsigned long long>(udp_run.lost_frames));

  std::ofstream jf("BENCH_net.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "net", 2);
  j.begin_object();  // config
  j.key("clock_ns").value(kClockNs);
  j.key("workers").value(workers);
  j.key("window").value(32);
  j.key("transport").value("loopback");
  j.key("host_hardware_concurrency").value(std::thread::hardware_concurrency());
  j.end_object();
  j.key("gate").begin_object();
  j.key("engine").value("behavioral");
  j.key("sessions").value(gate_sessions);
  j.key("requests_per_session").value(gate_requests);
  j.key("blocks_per_request").value(gate_blocks);
  j.key("total_blocks").value(gate_total_blocks);
  j.key("direct_blocks_per_sec").value(direct_bps);
  j.key("loopback_blocks_per_sec").value(loop_bps);
  j.key("ratio").value(ratio);
  j.key("target_ratio").value(0.70);
  j.key("meets_target").value(meets_target);
  j.end_object();
  j.key("sweep").begin_array();
  for (const auto& p : sweep) {
    j.begin_object();
    j.key("engine").value("sw");
    j.key("sessions").value(p.sessions);
    j.key("blocks_per_request").value(p.blocks_per_req);
    j.key("total_blocks").value(p.total_blocks);
    j.key("wall_seconds").value(p.secs);
    j.key("blocks_per_sec").value(static_cast<double>(p.total_blocks) / p.secs);
    j.end_object();
  }
  j.end_array();

  // --- v2 payload ------------------------------------------------------------
  j.key("epoll").begin_object();
  if (epoll_skipped) {
    j.key("skipped").value(true);
    j.key("reason").value(epoll_reason);
  } else {
    j.key("threads_1_blocks_per_sec").value(epoll_1_bps);
    j.key("threads_4_blocks_per_sec").value(epoll_4_bps);
    j.key("ratio").value(epoll_ratio);
    j.key("target_ratio").value(2.0);
    j.key("meets_target").value(epoll_meets);
  }
  j.end_object();

  j.key("cluster").begin_array();
  for (const auto& row : cluster_rows) {
    j.begin_object();
    j.key("nodes").value(row.nodes);
    j.key("sessions").value(row.sessions);
    if (row.skipped) {
      j.key("skipped").value(true);
      j.key("reason").value(row.reason);
    } else {
      j.key("total_blocks").value(row.run.total_blocks);
      j.key("wall_seconds").value(row.run.secs);
      j.key("blocks_per_sec").value(static_cast<double>(row.run.total_blocks) / row.run.secs);
      j.key("redirects_followed").value(row.run.redirects);
      j.key("lost_frames").value(row.run.lost_frames);
      j.key("drained").value(row.run.drained);
    }
    j.end_object();
  }
  j.end_array();

  j.key("udp_vs_tcp").begin_object();
  j.key("sessions").value(8);
  j.key("requests_per_session").value(32);
  j.key("blocks_per_request").value(4);
  j.key("tcp_blocks_per_sec").value(tcp_bps);
  j.key("udp_blocks_per_sec").value(udp_bps);
  j.key("tcp_lost_frames").value(tcp_run.lost_frames);
  j.key("udp_lost_frames").value(udp_run.lost_frames);
  j.key("lost_frames").value(tcp_run.lost_frames + udp_run.lost_frames);
  j.key("drained").value(tcp_run.drained && udp_run.drained);
  j.end_object();

  j.end_object();
  std::printf("wrote BENCH_net.json\n\n");
}

/// Codec microbenchmark: encode+decode round trip of one data frame.
void BM_FrameCodec(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  net::Frame f;
  f.op = net::Op::kEncBlocks;
  f.session_id = 7;
  f.payload = request_payload(blocks, 42);
  net::FrameDecoder dec;
  net::Frame out;
  for (auto _ : state) {
    const auto bytes = net::encode_frame(f);
    dec.feed(bytes);
    const auto st = dec.next(out);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks * 16));
}
BENCHMARK(BM_FrameCodec)->Arg(1)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_and_dump();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
