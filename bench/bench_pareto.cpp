// The round-engine variant family swept into an area–throughput Pareto
// front (docs/variants.md).
//
// Every member of arch::VariantSpec::family() — the paper's iterative
// core, the round-unrolled core and the 2/5/10-stage loop-folded
// pipelines, in both MixColumn styles — is pushed through the real flow:
//
//   synthesize  -> techmap::map_to_luts     => logic elements (the paper's
//                                              Table 2 area unit)
//   gate netlist -> GateIpDriver            => measured single-block
//                                              latency and streamed
//                                              cycles/block (multiple
//                                              blocks in flight on the
//                                              pipelined cores)
//
// Nothing is taken from the declared schedule except to CHECK it: each
// variant must be bit-exact against aes::Rijndael and cycle-conformant to
// its own VariantSpec contract (latency, and first-load-edge -> last-ok
// = latency + (B-1) * issue interval when streamed).
//
// Gates (tools/check_bench.sh, `pareto` stem):
//   * >= 3 non-dominated points (the front is a real curve, not a knee),
//   * the paper's iterative core holds the LC minimum,
//   * the best pipelined core streams >= 2x the paper core's blocks/sec,
//   * every row bit-exact and cycle-conformant.
//
// A second sweep drives the paper's iterative core across the three
// Rijndael key sizes (AES-128/192/256): same synthesize -> techmap ->
// gate-netlist flow, keyed with the FIPS-197 Appendix C keys.  Its gates:
// key-setup cycles strictly increasing in key size (the 4*Nr inverse
// schedule: 40/48/56), lone-block latency exactly 5*Nr (50/60/70), and
// every row bit-exact — which also proves the declared setup budget is
// sufficient, since an under-provisioned schedule corrupts the output.
//
// Results go to stdout and BENCH_pareto.json (aesip-bench-v1 envelope).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "aes/cipher.hpp"
#include "arch/variant.hpp"
#include "core/gate_driver.hpp"
#include "engine/engine.hpp"
#include "report/json.hpp"
#include "techmap/techmap.hpp"

namespace arch = aesip::arch;
namespace core = aesip::core;
namespace txm = aesip::techmap;
using aesip::aes::Rijndael;

namespace {

constexpr double kClockNs = 14.0;   // the paper's Acex1K Table 2 clock
constexpr std::size_t kStreamBlocks = 32;

struct VariantRow {
  arch::VariantSpec spec;
  std::string name;
  // Area (techmap, same flow as the Table 2 reproduction).
  std::size_t logic_elements = 0;
  std::size_t luts = 0;
  std::size_t dffs = 0;
  std::size_t roms = 0;
  // Measured schedule (gate-level, Table 1 protocol).
  int latency_cycles = 0;       ///< lone block, load edge -> data_ok
  int stream_cycles = 0;        ///< kStreamBlocks blocks, first load -> last ok
  double issue_cycles = 0;      ///< measured steady-state cycles/block
  double blocks_per_sec = 0;    ///< streamed, at kClockNs
  double mbps = 0;
  // Contract checks.
  bool bit_exact = false;
  bool cycle_conformant = false;
  bool on_front = false;
};

/// Synthesize, map and drive one family member; fills everything but
/// on_front (a cross-row property).
VariantRow measure_variant(const arch::VariantSpec& spec) {
  VariantRow row;
  row.spec = spec;
  row.name = spec.name();

  const auto nl = arch::synthesize_variant(spec, core::IpMode::kBoth);
  const auto mapped = txm::map_to_luts(nl);
  row.logic_elements = mapped.stats.logic_elements;
  row.luts = mapped.stats.luts;
  row.dffs = mapped.stats.dffs;
  row.roms = mapped.stats.roms;

  // FIPS-197 Appendix C key bytes (00 01 02 ... up to the key length) work
  // for every geometry; the plaintext is Appendix C's 00112233...
  std::array<std::uint8_t, 32> key_raw{};
  for (std::size_t i = 0; i < key_raw.size(); ++i) key_raw[i] = static_cast<std::uint8_t>(i);
  const auto key = std::span<const std::uint8_t>(key_raw).first(
      static_cast<std::size_t>(spec.key_bits / 8));
  std::array<std::uint8_t, 16> pt{};
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<std::uint8_t>(0x11 * i);
  const Rijndael ref = Rijndael::for_key(key);
  std::array<std::uint8_t, 16> want{};
  ref.encrypt_block(pt, want);

  core::GateIpDriver drv(nl);
  drv.reset();
  drv.load_key(key, spec.key_setup_cycles(core::IpMode::kBoth));

  // Bit-exactness: FIPS-197 Appendix C both directions, then a random
  // stream checked block for block against the software reference.
  bool exact = true;
  const auto enc = drv.process(pt, /*encrypt=*/true);
  exact = exact && enc && enc->data == want;
  row.latency_cycles = enc ? enc->cycles : -1;
  const auto dec = enc ? drv.process(enc->data, /*encrypt=*/false)
                       : std::optional<core::GateIpDriver::BlockResult>{};
  exact = exact && dec && dec->data == pt;

  std::mt19937 rng(2026);
  std::vector<std::uint8_t> in(16 * kStreamBlocks), out(16 * kStreamBlocks),
      expect(16 * kStreamBlocks);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng());
  for (std::size_t i = 0; i < kStreamBlocks; ++i)
    ref.encrypt_block(std::span(in).subspan(16 * i, 16), std::span(expect).subspan(16 * i, 16));
  const auto sr = drv.stream(in, out, kStreamBlocks, /*encrypt=*/true);
  exact = exact && sr && out == expect;
  row.bit_exact = exact;
  row.stream_cycles = sr ? sr->cycles : -1;

  // The declared-schedule contract: lone-block latency, and the streamed
  // total must be exactly latency + (B-1) * issue interval.
  const int want_latency = spec.block_latency_cycles();
  const int want_stream = want_latency + static_cast<int>(kStreamBlocks - 1) *
                                             spec.issue_interval_cycles();
  row.cycle_conformant = row.latency_cycles == want_latency && row.stream_cycles == want_stream;

  row.issue_cycles = kStreamBlocks > 1 ? static_cast<double>(row.stream_cycles - row.latency_cycles) /
                                             static_cast<double>(kStreamBlocks - 1)
                                       : static_cast<double>(row.latency_cycles);
  row.blocks_per_sec = row.issue_cycles > 0 ? 1e9 / (kClockNs * row.issue_cycles) : 0;
  row.mbps = row.blocks_per_sec * 128.0 / 1e6;
  return row;
}

/// Non-dominated in (minimize LC, maximize blocks/sec).
void mark_pareto_front(std::vector<VariantRow>& rows) {
  for (auto& r : rows) {
    r.on_front = true;
    for (const auto& o : rows) {
      if (&o == &r) continue;
      const bool no_worse = o.logic_elements <= r.logic_elements &&
                            o.blocks_per_sec >= r.blocks_per_sec;
      const bool better = o.logic_elements < r.logic_elements ||
                          o.blocks_per_sec > r.blocks_per_sec;
      if (no_worse && better) {
        r.on_front = false;
        break;
      }
    }
  }
}

void print_and_dump() {
  std::vector<VariantRow> rows;
  for (const auto& spec : arch::VariantSpec::family()) {
    std::printf("measuring %-12s ...\n", spec.name().c_str());
    rows.push_back(measure_variant(spec));
  }
  mark_pareto_front(rows);

  // --- the Table-2-style matrix ---------------------------------------------
  std::printf("\n=== variant family: area vs throughput @ %.0f ns clock ===\n", kClockNs);
  std::printf("  %-13s %6s %6s %5s %8s %8s %9s %10s %5s %5s %s\n", "variant", "LC", "LUT",
              "DFF", "latency", "cy/blk", "blocks/s", "Mbps", "exact", "cycle", "front");
  for (const auto& r : rows)
    std::printf("  %-13s %6zu %6zu %5zu %8d %8.1f %9.0f %10.1f %5s %5s %s\n", r.name.c_str(),
                r.logic_elements, r.luts, r.dffs, r.latency_cycles, r.issue_cycles,
                r.blocks_per_sec, r.mbps, r.bit_exact ? "yes" : "NO",
                r.cycle_conformant ? "yes" : "NO", r.on_front ? "*" : "");

  // --- gates -----------------------------------------------------------------
  const VariantRow* paper = nullptr;
  const VariantRow* best_pipe = nullptr;
  std::size_t front_size = 0;
  bool all_exact = true, all_conformant = true;
  std::size_t min_lc = ~std::size_t{0};
  for (const auto& r : rows) {
    if (r.name == "iter-xtime") paper = &r;
    if (r.spec.round_arch == arch::RoundArch::kPipelined &&
        (!best_pipe || r.blocks_per_sec > best_pipe->blocks_per_sec))
      best_pipe = &r;
    if (r.on_front) ++front_size;
    all_exact = all_exact && r.bit_exact;
    all_conformant = all_conformant && r.cycle_conformant;
    min_lc = std::min(min_lc, r.logic_elements);
  }
  const bool paper_lc_min = paper && paper->logic_elements == min_lc;
  const double pipe_speedup =
      paper && best_pipe && paper->blocks_per_sec > 0
          ? best_pipe->blocks_per_sec / paper->blocks_per_sec
          : 0;
  const bool meets = front_size >= 3 && paper_lc_min && pipe_speedup >= 2.0 && all_exact &&
                     all_conformant;
  std::printf("\n  front size %zu (>= 3), paper LC min: %s, pipelined speedup %.1fx (>= 2), "
              "bit-exact: %s, cycle-conformant: %s -> %s\n\n",
              front_size, paper_lc_min ? "yes" : "NO", pipe_speedup,
              all_exact ? "all" : "NO", all_conformant ? "all" : "NO",
              meets ? "PASS" : "FAIL");

  // --- the key-size sweep: the paper core at AES-128/192/256 ----------------
  std::vector<VariantRow> krows;
  for (const char* nm : {"iter-xtime", "iter-xtime@192", "iter-xtime@256"}) {
    const auto spec = arch::VariantSpec::parse(nm);
    std::printf("measuring %-13s ...\n", nm);
    krows.push_back(measure_variant(*spec));
  }
  std::printf("\n=== key-size sweep: iterative core, AES-128/192/256 ===\n");
  std::printf("  %-14s %4s %3s %6s %9s %8s %8s %10s %5s %5s\n", "variant", "key", "Nr", "LC",
              "key-setup", "latency", "cy/blk", "Mbps", "exact", "cycle");
  for (const auto& r : krows)
    std::printf("  %-14s %4d %3d %6zu %9d %8d %8.1f %10.1f %5s %5s\n", r.name.c_str(),
                r.spec.key_bits, r.spec.nr(), r.logic_elements,
                r.spec.key_setup_cycles(core::IpMode::kBoth), r.latency_cycles, r.issue_cycles,
                r.mbps, r.bit_exact ? "yes" : "NO", r.cycle_conformant ? "yes" : "NO");

  bool ks_monotone = true, ks_latency_5nr = true, ks_exact = true, ks_conformant = true;
  for (std::size_t i = 0; i < krows.size(); ++i) {
    const auto& r = krows[i];
    if (i > 0 && r.spec.key_setup_cycles(core::IpMode::kBoth) <=
                     krows[i - 1].spec.key_setup_cycles(core::IpMode::kBoth))
      ks_monotone = false;
    ks_latency_5nr = ks_latency_5nr && r.latency_cycles == 5 * r.spec.nr();
    ks_exact = ks_exact && r.bit_exact;
    ks_conformant = ks_conformant && r.cycle_conformant;
  }
  const bool ks_meets = ks_monotone && ks_latency_5nr && ks_exact && ks_conformant;
  std::printf("\n  key-setup monotone (40 < 48 < 56): %s, latency = 5*Nr: %s, "
              "bit-exact: %s, cycle-conformant: %s -> %s\n\n",
              ks_monotone ? "yes" : "NO", ks_latency_5nr ? "yes" : "NO",
              ks_exact ? "all" : "NO", ks_conformant ? "all" : "NO",
              ks_meets ? "PASS" : "FAIL");

  std::ofstream jf("BENCH_pareto.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "pareto", 2);
  j.begin_object();  // config
  j.key("clock_ns").value(kClockNs);
  j.key("stream_blocks").value(kStreamBlocks);
  j.key("mode").value("both");
  j.end_object();

  j.key("variants").begin_array();
  for (const auto& r : rows) {
    j.begin_object();
    j.key("variant").value(r.name);
    j.key("stages").value(r.spec.stages());
    j.key("logic_elements").value(r.logic_elements);
    j.key("luts").value(r.luts);
    j.key("dffs").value(r.dffs);
    j.key("roms").value(r.roms);
    j.key("latency_cycles").value(r.latency_cycles);
    j.key("issue_interval_cycles").value(r.issue_cycles);
    j.key("declared_latency_cycles").value(r.spec.block_latency_cycles());
    j.key("declared_issue_cycles").value(r.spec.issue_interval_cycles());
    j.key("blocks_in_flight").value(r.spec.blocks_in_flight());
    j.key("key_setup_cycles").value(r.spec.key_setup_cycles(core::IpMode::kBoth));
    j.key("stream_cycles").value(r.stream_cycles);
    j.key("blocks_per_sec").value(r.blocks_per_sec);
    j.key("mbps").value(r.mbps);
    j.key("bit_exact").value(r.bit_exact);
    j.key("cycle_conformant").value(r.cycle_conformant);
    j.key("on_front").value(r.on_front);
    j.end_object();
  }
  j.end_array();

  j.key("key_sizes").begin_array();
  for (const auto& r : krows) {
    j.begin_object();
    j.key("variant").value(r.name);
    j.key("key_bits").value(r.spec.key_bits);
    j.key("rounds").value(r.spec.nr());
    j.key("logic_elements").value(r.logic_elements);
    j.key("luts").value(r.luts);
    j.key("dffs").value(r.dffs);
    j.key("key_setup_cycles").value(r.spec.key_setup_cycles(core::IpMode::kBoth));
    j.key("latency_cycles").value(r.latency_cycles);
    j.key("declared_latency_cycles").value(r.spec.block_latency_cycles());
    j.key("blocks_per_sec").value(r.blocks_per_sec);
    j.key("mbps").value(r.mbps);
    j.key("bit_exact").value(r.bit_exact);
    j.key("cycle_conformant").value(r.cycle_conformant);
    j.end_object();
  }
  j.end_array();

  j.key("key_size_sweep").begin_object();
  j.key("key_setup_monotone").value(ks_monotone);
  j.key("latency_is_5nr").value(ks_latency_5nr);
  j.key("all_bit_exact").value(ks_exact);
  j.key("all_cycle_conformant").value(ks_conformant);
  j.key("meets_target").value(ks_meets);
  j.end_object();

  j.key("pareto").begin_object();
  j.key("front").begin_array();
  for (const auto& r : rows)
    if (r.on_front) j.value(r.name);
  j.end_array();
  j.key("front_size").value(front_size);
  j.key("paper_lc_is_min").value(paper_lc_min);
  j.key("pipelined_speedup_x").value(pipe_speedup);
  j.key("all_bit_exact").value(all_exact);
  j.key("all_cycle_conformant").value(all_conformant);
  j.key("meets_target").value(meets);
  j.end_object();
  j.end_object();
  std::printf("wrote BENCH_pareto.json\n\n");
}

/// Host-side throughput of the behavioral twins (the farm's default
/// engine): how fast each variant *simulates*, which is what the farm's
/// wall-clock throughput is made of.
void BM_VariantBehavioral(benchmark::State& state) {
  const auto family = arch::VariantSpec::family();
  const auto& spec = family[static_cast<std::size_t>(state.range(0))];
  auto e = aesip::engine::make_engine(aesip::engine::EngineKind::kBehavioral, spec);
  const std::array<std::uint8_t, 16> key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  e->load_key(key);
  std::array<std::uint8_t, 16> block{};
  for (auto _ : state) {
    const auto r = e->process_block(block, true);
    benchmark::DoNotOptimize(r);
    block = r;
  }
  state.SetLabel(spec.name());
  state.counters["sim_cycles_per_block"] =
      static_cast<double>(e->cycles()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_VariantBehavioral)->DenseRange(0, 6)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_and_dump();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
