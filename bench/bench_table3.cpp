// Regenerates the paper's Table 3: comparison against other published
// Altera-FPGA Rijndael implementations.  Cells that are legible in the
// available paper text are printed as "reported"; every row also shows the
// throughput our analytical architecture model predicts for the matching
// configuration, so the comparison's shape (low-cost << this IP <<
// high-performance) is regenerated rather than transcribed.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/baselines.hpp"
#include "core/table2.hpp"
#include "report/table.hpp"

namespace arch = aesip::arch;
namespace core = aesip::core;
using aesip::report::Table;

namespace {

std::string opt_str(const std::optional<int>& v) {
  return v ? std::to_string(*v) : "n/a";
}
std::string opt_str(const std::optional<double>& v) {
  return v ? Table::fixed(*v, 1) : "n/a";
}

void print_table3() {
  std::cout << "=== Table 3: other hardware implementations (reported | modeled) ===\n\n";
  Table t({"Design", "Technology", "Memory(bits)", "LCs", "Thrpt reported(Mbps)",
           "Thrpt modeled(Mbps)", "Model config"});
  for (const auto& d : arch::table3_baselines()) {
    const double modeled = arch::throughput_mbps(d.model_config, d.model_clock_ns);
    std::string reported = "E:" + opt_str(d.throughput_enc_mbps) +
                           " D:" + opt_str(d.throughput_dec_mbps) +
                           " C:" + opt_str(d.throughput_both_mbps);
    t.add_row({d.reference, d.technology, opt_str(d.memory_bits), opt_str(d.logic_cells),
               reported, Table::fixed(modeled, 1),
               d.model_config.name + " @ " + Table::fixed(d.model_clock_ns, 0) + "ns"});
  }
  t.print(std::cout);

  // Context rows: this paper's IP from our reproduced Table 2.
  std::cout << "\nThis paper's IP (reproduced Table 2, for comparison):\n";
  Table t2({"Design", "Technology", "Memory(bits)", "LCs", "Thrpt(Mbps)"});
  for (const auto& r : core::reproduce_table2())
    t2.add_row({std::string("this work, ") + r.paper.system, r.device->name,
                std::to_string(r.fit.memory_bits), std::to_string(r.fit.logic_elements),
                Table::fixed(r.throughput_mbps, 1)});
  t2.print(std::cout);
  std::cout << "\nShape check: the 8-bit low-cost design sits well below this IP; the\n"
               "full-parallel stored-key designs sit well above it — the area/throughput\n"
               "trade the paper positions itself on.\n\n";
}

void BM_ModelThroughput(benchmark::State& state) {
  const auto& rows = arch::table3_baselines();
  for (auto _ : state)
    for (const auto& d : rows)
      benchmark::DoNotOptimize(arch::throughput_mbps(d.model_config, d.model_clock_ns));
}
BENCHMARK(BM_ModelThroughput);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
