// S-box implementation study: the resource axis the whole paper turns on.
//
// A hardware S-box is 2048 bits of asynchronous ROM on Acex (free EABs) but
// must become logic on Cyclone — the effect that doubles the paper's
// Cyclone LC counts.  This bench quantifies the three realizations the
// library synthesizes (ROM macro, Shannon LUT network, composite-field
// datapath) and what the composite option — the natural optimization the
// paper's Cyclone port invites — would do to the Table 2 Cyclone rows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "aes/sbox.hpp"
#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"
#include "report/table.hpp"
#include "sta/sta.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace fpga = aesip::fpga;
namespace nlist = aesip::netlist;
namespace txm = aesip::techmap;
using aesip::report::Table;
using core::IpMode;
using nlist::Bus;
using nlist::Netlist;
using nlist::SboxStyle;

namespace {

struct SboxBuild {
  txm::MapResult mapped;
  int levels;
};

SboxBuild build_single(SboxStyle style) {
  Netlist nl;
  const Bus addr = nl.add_input_bus("addr", 8);
  Bus out;
  switch (style) {
    case SboxStyle::kRom:
      out = nlist::synth_sbox_rom(nl, aesip::aes::kSBox, addr, "s");
      break;
    case SboxStyle::kShannon:
      out = nlist::synth_sbox_logic(nl, aesip::aes::kSBox, addr);
      break;
    case SboxStyle::kComposite:
      out = nlist::synth_sbox_composite(nl, addr, false);
      break;
  }
  nl.add_output_bus(out, "s");
  SboxBuild b{txm::map_to_luts(nl), 0};
  constexpr aesip::sta::DelayModel kUnit{1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  b.levels = aesip::sta::analyze(b.mapped.mapped, kUnit).logic_levels;
  return b;
}

void print_study() {
  std::cout << "=== S-box realizations (per 2048-bit S-box) ===\n\n";
  Table t({"Implementation", "LUTs", "ROM bits", "Logic levels", "Note"});
  const auto rom = build_single(SboxStyle::kRom);
  const auto shannon = build_single(SboxStyle::kShannon);
  const auto comp = build_single(SboxStyle::kComposite);
  t.add_row({"async ROM (Acex EAB)", std::to_string(rom.mapped.stats.luts), "2048",
             std::to_string(rom.levels), "the paper's Acex choice"});
  t.add_row({"Shannon LUT network", std::to_string(shannon.mapped.stats.luts), "0",
             std::to_string(shannon.levels), "the paper's Cyclone fallback"});
  t.add_row({"composite field GF((2^4)^2)", std::to_string(comp.mapped.stats.luts), "0",
             std::to_string(comp.levels), "tower-field optimization"});
  t.print(std::cout);

  std::cout << "\n=== Effect on the Cyclone encrypt IP (8 S-boxes) ===\n\n";
  Table t2({"Flavour", "LCs", "LC%", "Clk (ns)", "Throughput (Mbps)"});
  for (const auto style : {SboxStyle::kShannon, SboxStyle::kComposite}) {
    const auto mapped = txm::map_to_luts(core::synthesize_ip(IpMode::kEncrypt, style));
    const auto fit = fpga::fit(mapped, fpga::ep1c20f400c6());
    t2.add_row({style == SboxStyle::kShannon ? "Shannon (as published)" : "composite field",
                std::to_string(fit.logic_elements), Table::fixed(fit.le_pct, 1),
                Table::fixed(fit.timing.clock_period_ns, 1),
                Table::fixed(fit.throughput_mbps(128, 50), 0)});
  }
  t2.print(std::cout);
  std::cout << "\nThe composite S-box trades logic depth for a ~60% smaller S-box — on the\n"
               "paper's Cyclone port, where the S-boxes are the dominant logic cost, the\n"
               "area saving is roughly a thousand LEs on the encrypt-only device.\n\n";
}

void BM_SynthesizeShannonSbox(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(build_single(SboxStyle::kShannon));
}
BENCHMARK(BM_SynthesizeShannonSbox)->Unit(benchmark::kMicrosecond);

void BM_SynthesizeCompositeSbox(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(build_single(SboxStyle::kComposite));
}
BENCHMARK(BM_SynthesizeCompositeSbox)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
