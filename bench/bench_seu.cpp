// SEU sensitivity of the IP and the cost of TMR hardening — the experiment
// of the authors' companion work (reference [16]) plus the "hardened
// against radiation" follow-up the paper's conclusion announces.
//
// Prints: outcome distribution of single-upset campaigns on the
// unprotected vs TMR-hardened gate-level encrypt IP, and what the
// hardening costs in logic elements and clock period on the Acex part.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "report/table.hpp"
#include "seu/campaign.hpp"
#include "seu/tmr.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace fpga = aesip::fpga;
namespace seu = aesip::seu;
namespace txm = aesip::techmap;
using aesip::report::Table;

namespace {

void print_seu_study() {
  std::cout << "=== Single-event-upset study (reference [16] methodology) ===\n\n";
  const auto mapped = txm::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  const auto tmr = seu::harden_tmr(mapped.mapped);

  constexpr int kRuns = 150;
  const auto plain = seu::run_campaign(mapped.mapped, kRuns, 42);
  const auto hard = seu::run_campaign(tmr.hardened, kRuns, 42);

  Table t({"Design", "Injections", "Masked", "Corrupted block", "Latent (key)", "Persistent", "Hang"});
  auto row = [&](const char* name, const seu::CampaignStats& s) {
    auto pct = [&](std::size_t v) {
      return std::to_string(v) + " (" + Table::fixed(100.0 * v / s.total(), 0) + "%)";
    };
    t.add_row({name, std::to_string(s.total()), pct(s.masked), pct(s.corrupted),
               pct(s.latent), pct(s.persistent), pct(s.hang)});
  };
  row("unprotected IP", plain);
  row("TMR-hardened IP", hard);
  t.print(std::cout);

  std::cout << "\nHardening cost (one voter LUT per flip-flop, state triplicated):\n";
  const auto base_fit = fpga::fit(mapped, fpga::ep1k100fc484_1());
  // Re-derive stats for the hardened netlist through a second mapping pass
  // (it is already LUT/FF-only, so mapping is the identity + packing).
  const auto hard_mapped = txm::map_to_luts(tmr.hardened);
  const auto hard_fit = fpga::fit(hard_mapped, fpga::ep1k100fc484_1());
  std::printf("  logic elements: %zu -> %zu (%.2fx)\n", base_fit.logic_elements,
              hard_fit.logic_elements,
              static_cast<double>(hard_fit.logic_elements) / base_fit.logic_elements);
  std::printf("  clock period:   %.1f ns -> %.1f ns (voter in every state loop)\n",
              base_fit.timing.clock_period_ns, hard_fit.timing.clock_period_ns);
  std::printf("  fits EP1K100:   %s\n\n", hard_fit.fits ? "yes" : "NO");
}

void BM_CampaignRun(benchmark::State& state) {
  static const auto mapped =
      txm::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        seu::run_campaign(mapped.mapped, static_cast<int>(state.range(0)), 1));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CampaignRun)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_TmrTransform(benchmark::State& state) {
  static const auto mapped =
      txm::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state) benchmark::DoNotOptimize(seu::harden_tmr(mapped.mapped));
}
BENCHMARK(BM_TmrTransform)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_seu_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
