// Farm scaling: aggregate throughput vs. worker (core) count.
//
// The paper's economic argument is replication — the core is small enough
// to stamp out many times on one device. This bench quantifies the claim
// at the system level: a fixed synthetic workload is pushed through farms
// of 1, 2, 4, ... workers and throughput is reported in both domains:
//
//  * simulated aggregate — blocks / (makespan cycles x Tclk), the hardware
//    figure. Each worker's core advances its own private cycle counter, so
//    N cores genuinely overlap in simulated time and this scales ~N
//    (minus re-key overhead — the scheduler's affinity hit-rate shows up
//    directly here).
//  * host wall-clock — how fast this process simulates; scales only with
//    real CPUs, and on a single-CPU machine stays flat by construction.
//
// Results go to stdout (table) and BENCH_farm.json (machine-readable, for
// cross-PR trend tracking).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "farm/farm.hpp"
#include "report/json.hpp"

namespace farm = aesip::farm;

namespace {

constexpr double kClockNs = 14.0;       // the paper's Acex1K Table 2 clock
constexpr std::uint64_t kTargetBlocks = 12000;

struct Point {
  int workers = 0;
  farm::FarmStats stats;
};

/// Deterministic mixed workload: 16 session keys with popularity skew,
/// mostly short CBC/ECB requests, every 8th a long CTR stream that fans
/// out. Identical traffic for every worker count (seeded PRNG).
farm::FarmStats run_point(int workers, std::uint64_t target_blocks, bool tracing = false,
                          aesip::engine::EngineKind engine =
                              aesip::engine::EngineKind::kBehavioral) {
  farm::FarmConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 128;
  cfg.max_sessions = 64;
  cfg.tracing = tracing;
  cfg.engine = engine;
  farm::Farm f(cfg);

  std::mt19937 rng(1234);
  std::vector<farm::Key128> keys(16);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());

  std::vector<std::future<farm::Result>> pending;
  std::uint64_t submitted_blocks = 0, requests = 0;
  while (submitted_blocks < target_blocks) {
    farm::Request req;
    const auto pick = std::min(rng() % keys.size(), rng() % keys.size());
    req.session_id = pick;
    req.key = keys[pick];
    for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
    std::size_t blocks;
    if (requests % 8 == 0) {
      req.mode = farm::Mode::kCtr;
      blocks = 128;
    } else {
      req.mode = (rng() & 1) ? farm::Mode::kCbc : farm::Mode::kEcb;
      req.encrypt = (rng() & 1) != 0;
      blocks = 1 + rng() % 8;
    }
    req.payload.resize(blocks * 16);
    for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());
    submitted_blocks += blocks;
    ++requests;
    pending.push_back(f.submit(std::move(req)));
    if (pending.size() > 1024) {
      for (auto& p : pending) p.get();
      pending.clear();
    }
  }
  for (auto& p : pending) p.get();
  return f.stats();
}

std::vector<int> sweep_workers() {
  std::vector<int> sweep{1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) sweep.push_back(hw);
  return sweep;
}

void print_and_dump_scaling() {
  std::printf("=== IP farm scaling (fixed workload, %llu blocks) ===\n\n",
              static_cast<unsigned long long>(kTargetBlocks));
  std::printf("  %-7s  %12s  %14s  %12s  %10s\n", "workers", "sim Mbps", "sim blocks/s",
              "wall blk/s", "key hits");

  std::vector<Point> points;
  for (const int w : sweep_workers()) {
    Point p;
    p.workers = w;
    p.stats = run_point(w, kTargetBlocks);
    points.push_back(std::move(p));
    const auto& s = points.back().stats;
    std::printf("  %-7d  %12.1f  %14.0f  %12.0f  %9.1f%%\n", w, s.sim_mbps(kClockNs),
                s.sim_blocks_per_sec(kClockNs), s.blocks_per_wall_sec(),
                s.key_hit_rate() * 100.0);
  }

  const auto find = [&](int w) -> const farm::FarmStats* {
    for (const auto& p : points)
      if (p.workers == w) return &p.stats;
    return nullptr;
  };
  double scaling_sim = 0, scaling_wall = 0;
  if (const auto *one = find(1), *four = find(4); one && four) {
    scaling_sim = four->sim_blocks_per_sec(kClockNs) / one->sim_blocks_per_sec(kClockNs);
    scaling_wall = four->blocks_per_wall_sec() / one->blocks_per_wall_sec();
    std::printf("\n  1 -> 4 workers: %.2fx simulated aggregate, %.2fx host wall clock\n",
                scaling_sim, scaling_wall);
    std::printf("  (simulated aggregate is the hardware figure: N replicated cores run\n"
                "   concurrently; wall clock tracks host CPUs — this host has %u)\n\n",
                std::thread::hardware_concurrency());
  }

  // Wall-clock scaling is a *host* property: four workers can only beat one
  // when the machine has cores to run them on. The gate therefore applies
  // only when hardware_concurrency covers the 4-worker point; on smaller
  // hosts it is recorded as skipped (with the reason), and
  // tools/check_bench.sh accepts the skip.
  constexpr double kWallScalingTarget = 1.5;  // 1 -> 4 workers
  const unsigned hw = std::thread::hardware_concurrency();
  const bool wall_gate_skipped = hw < 4;
  const bool wall_gate_met = wall_gate_skipped || scaling_wall >= kWallScalingTarget;
  if (wall_gate_skipped)
    std::printf("  wall-scaling gate SKIPPED: host has %u hardware thread(s) < 4 workers\n\n",
                hw);
  else
    std::printf("  wall-scaling gate: %.2fx (target >= %.1fx): %s\n\n", scaling_wall,
                kWallScalingTarget, wall_gate_met ? "PASS" : "FAIL");

  // Observability overhead: the same workload with per-job tracing and the
  // histograms' extra samples on, vs. the plain runs above. Uses the
  // 4-worker point as the baseline (most contended => worst case for the
  // extra atomics on the submit/execute paths).
  constexpr std::uint64_t kTraceBlocks = 6000;
  const auto plain4 = run_point(4, kTraceBlocks, false);
  const auto traced4 = run_point(4, kTraceBlocks, true);
  // Clamped at zero: a negative measurement just means the overhead is below
  // run-to-run noise, and the JSON envelope forbids negative figures.
  const double tracing_overhead_pct = std::max(
      0.0, plain4.blocks_per_wall_sec() > 0
               ? (plain4.blocks_per_wall_sec() / traced4.blocks_per_wall_sec() - 1.0) * 100.0
               : 0.0);
  std::printf("  tracing overhead (4 workers, %llu blocks): %+.2f%% wall time, "
              "%llu events recorded (%llu dropped)\n\n",
              static_cast<unsigned long long>(kTraceBlocks), tracing_overhead_pct,
              static_cast<unsigned long long>(traced4.trace_events),
              static_cast<unsigned long long>(traced4.trace_dropped));

  // Engine sweep: the same workload shape through each CipherEngine kind.
  // The sw and behavioral engines run a real workload. The netlist engine
  // evaluates the synthesized gate network per cycle; with the lane-packed
  // BatchEvaluator behind it (runtime dispatch picks the widest backend
  // the host can run — recorded per row below — plus batched worker
  // dispatch filling the lanes) it now affords a real slice — 1024 blocks,
  // well beyond what the scalar evaluator could cover in the same wall
  // time.
  struct EngineRow {
    const char* name;
    std::uint64_t target;
    farm::FarmStats stats;
  };
  std::vector<EngineRow> engine_rows;
  std::printf("  engine sweep (4 workers):\n");
  for (const auto [kind, target] :
       {std::pair{aesip::engine::EngineKind::kSoftware, kTargetBlocks / 2},
        std::pair{aesip::engine::EngineKind::kBehavioral, kTargetBlocks / 2},
        std::pair{aesip::engine::EngineKind::kNetlist, std::uint64_t{1024}}}) {
    EngineRow row{aesip::engine::kind_name(kind), target,
                  run_point(4, target, false, kind)};
    std::printf("    %-10s  %8llu blocks   %10.0f blocks/s wall   %6.1f cycles/block"
                "   (%s backend, %zu lanes)\n",
                row.name, static_cast<unsigned long long>(row.stats.blocks),
                row.stats.blocks_per_wall_sec(), row.stats.cycles_per_block(),
                row.stats.batch_backend.c_str(), row.stats.batch_lanes);
    engine_rows.push_back(std::move(row));
  }
  std::printf("\n");

  std::ofstream jf("BENCH_farm.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "farm", 4);
  j.begin_object();  // config
  j.key("clock_ns").value(kClockNs);
  j.key("target_blocks").value(kTargetBlocks);
  j.key("host_hardware_concurrency").value(std::thread::hardware_concurrency());
  j.end_object();
  j.key("scaling_1_to_4_sim").value(scaling_sim);
  j.key("scaling_1_to_4_wall").value(scaling_wall);
  j.key("wall_scaling").begin_object();
  j.key("workers_from").value(1);
  j.key("workers_to").value(4);
  j.key("measured").value(scaling_wall);
  j.key("target").value(kWallScalingTarget);
  j.key("hardware_concurrency").value(hw);
  j.key("skipped").value(wall_gate_skipped);
  if (wall_gate_skipped)
    j.key("reason").value("host hardware_concurrency < 4 workers; wall-clock "
                          "scaling is not measurable on this machine");
  j.key("meets_target").value(wall_gate_met);
  j.end_object();
  j.key("engines").begin_array();
  for (const auto& row : engine_rows) {
    const auto& s = row.stats;
    j.begin_object();
    j.key("engine").value(row.name);
    j.key("workers").value(4);
    j.key("batch_backend").value(s.batch_backend);
    j.key("batch_lanes").value(s.batch_lanes);
    j.key("blocks").value(s.blocks);
    j.key("blocks_per_wall_sec").value(s.blocks_per_wall_sec());
    j.key("cycles_per_block").value(s.cycles_per_block());
    j.key("key_hit_rate").value(s.key_hit_rate());
    j.end_object();
  }
  j.end_array();
  j.key("tracing").begin_object();
  j.key("blocks").value(kTraceBlocks);
  j.key("overhead_pct").value(tracing_overhead_pct);
  j.key("trace_events").value(traced4.trace_events);
  j.key("trace_dropped").value(traced4.trace_dropped);
  j.end_object();
  j.key("points").begin_array();
  for (const auto& p : points) {
    const auto& s = p.stats;
    j.begin_object();
    j.key("workers").value(p.workers);
    j.key("blocks").value(s.blocks);
    j.key("requests").value(s.requests);
    j.key("wall_seconds").value(s.wall_seconds);
    j.key("blocks_per_wall_sec").value(s.blocks_per_wall_sec());
    j.key("max_worker_cycles").value(s.max_worker_cycles);
    j.key("cycles_per_block").value(s.cycles_per_block());
    j.key("sim_blocks_per_sec").value(s.sim_blocks_per_sec(kClockNs));
    j.key("sim_mbps").value(s.sim_mbps(kClockNs));
    j.key("key_hit_rate").value(s.key_hit_rate());
    j.key("setup_cycles").value(s.total_setup_cycles);
    j.key("ctr_fanouts").value(s.ctr_fanouts);
    j.key("queue_high_water").value(s.queue_high_water);
    j.key("queue_depth_p99").value(s.queue_depth.percentile(0.99));
    j.key("queue_wait_us_p99").value(s.queue_wait_us.percentile(0.99));
    double util = 0;
    for (const auto& w : s.per_worker) util += w.utilization;
    j.key("mean_utilization")
        .value(s.per_worker.empty() ? 0.0 : util / static_cast<double>(s.per_worker.size()));
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote BENCH_farm.json\n\n");
}

void BM_FarmThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto stats = run_point(workers, 2000);
    benchmark::DoNotOptimize(stats.blocks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
  state.counters["workers"] = workers;
}
BENCHMARK(BM_FarmThroughput)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_and_dump_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
