// Simulation-infrastructure performance: cycles/second of the hdl kernel
// on the full IP, and the gate-level netlist evaluator — the ModelSim
// replacement's own speed, relevant to anyone extending the repository.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>

#include "core/bfm.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "netlist/eval.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;

namespace {

void BM_RtlSimCyclesPerSecond(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecond);

void BM_GateLevelEvaluatorClock(benchmark::State& state) {
  // One clock of the complete mapped encrypt IP (LUT/FF/ROM netlist).
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  aesip::netlist::Evaluator ev(mapped.mapped);
  ev.settle();
  for (auto _ : state) ev.clock();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelEvaluatorClock);

void BM_EvaluatorConstruction(benchmark::State& state) {
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state)
    benchmark::DoNotOptimize(aesip::netlist::Evaluator(mapped.mapped));
}
BENCHMARK(BM_EvaluatorConstruction)->Unit(benchmark::kMicrosecond);

void BM_BlockThroughRtlSim(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) benchmark::DoNotOptimize(bus.process_block(key));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockThroughRtlSim)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Simulation kernel performance (the ModelSim substitute) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
