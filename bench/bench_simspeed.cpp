// Simulation-infrastructure performance: cycles/second of the hdl kernel
// on the full IP, and the gate-level netlist evaluator — the ModelSim
// replacement's own speed, relevant to anyone extending the repository.
//
// Also the profiler-overhead gate: the obs layer's contract is that an
// attached ScopedProfiler costs < 5% on the kernel hot path (docs/obs.md).
// The A/B section below measures plain vs. instrumented ns/cycle on the
// same block workload (min over trials, so scheduler noise only ever
// *overstates* the overhead) and writes BENCH_simspeed.json so the figure
// is trend-tracked across PRs like every other bench.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>

#include "core/bfm.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "netlist/eval.hpp"
#include "obs/profiler.hpp"
#include "report/json.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;

namespace {

/// ns per simulated cycle pushing `blocks` blocks through a kBoth device,
/// with or without a profiler attached. One fresh core per call.
double measure_ns_per_cycle(bool profiled, int blocks) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  std::array<std::uint8_t, 16> block{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(block);
  std::optional<aesip::obs::ScopedProfiler> prof;
  if (profiled) prof.emplace(sim);
  for (int i = 0; i < 8; ++i) block = bus.process_block(block);  // warm up
  const auto c0 = sim.cycle();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < blocks; ++i) block = bus.process_block(block);
  const auto t1 = std::chrono::steady_clock::now();
  const auto cycles = sim.cycle() - c0;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return cycles ? ns / static_cast<double>(cycles) : 0.0;
}

void measure_profiler_overhead() {
  constexpr int kBlocks = 2000;  // ~102k simulated cycles per trial
  constexpr int kTrials = 5;
  double plain = 1e300, profiled = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    plain = std::min(plain, measure_ns_per_cycle(false, kBlocks));
    profiled = std::min(profiled, measure_ns_per_cycle(true, kBlocks));
  }
  const double overhead_pct = plain > 0 ? (profiled - plain) / plain * 100.0 : 0.0;
  std::printf("=== Profiler overhead (ScopedProfiler attached vs. not) ===\n\n");
  std::printf("  uninstrumented  %8.1f ns/cycle   (min of %d trials, %d blocks each)\n",
              plain, kTrials, kBlocks);
  std::printf("  instrumented    %8.1f ns/cycle\n", profiled);
  std::printf("  overhead        %+8.2f %%          (budget: < 5%%)\n\n", overhead_pct);

  std::ofstream jf("BENCH_simspeed.json");
  aesip::report::JsonWriter j(jf);
  j.begin_object();
  j.key("bench").value("simspeed");
  j.key("overhead_blocks").value(kBlocks);
  j.key("overhead_trials").value(kTrials);
  j.key("ns_per_cycle_plain").value(plain);
  j.key("ns_per_cycle_profiled").value(profiled);
  j.key("profiler_overhead_pct").value(overhead_pct);
  j.key("overhead_within_budget").value(overhead_pct < 5.0);
  j.end_object();
  std::printf("wrote BENCH_simspeed.json\n\n");
}

void BM_RtlSimCyclesPerSecond(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecond);

void BM_RtlSimCyclesPerSecondProfiled(benchmark::State& state) {
  // Same kernel loop with a ScopedProfiler attached — the instrumented
  // figure next to the plain one makes the overhead visible in every run.
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  aesip::obs::ScopedProfiler prof(sim);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecondProfiled);

void BM_GateLevelEvaluatorClock(benchmark::State& state) {
  // One clock of the complete mapped encrypt IP (LUT/FF/ROM netlist).
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  aesip::netlist::Evaluator ev(mapped.mapped);
  ev.settle();
  for (auto _ : state) ev.clock();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelEvaluatorClock);

void BM_EvaluatorConstruction(benchmark::State& state) {
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state)
    benchmark::DoNotOptimize(aesip::netlist::Evaluator(mapped.mapped));
}
BENCHMARK(BM_EvaluatorConstruction)->Unit(benchmark::kMicrosecond);

void BM_BlockThroughRtlSim(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) benchmark::DoNotOptimize(bus.process_block(key));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockThroughRtlSim)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  measure_profiler_overhead();
  std::printf("=== Simulation kernel performance (the ModelSim substitute) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
