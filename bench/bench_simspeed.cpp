// Simulation-infrastructure performance: cycles/second of the hdl kernel
// on the full IP, and the gate-level netlist evaluator — the ModelSim
// replacement's own speed, relevant to anyone extending the repository.
//
// Three A/B gates are measured and trend-tracked in BENCH_simspeed.json
// (common aesip-bench-v1 envelope, see docs/benchmarks.md):
//
//  * profiler overhead — an attached ScopedProfiler forfeits the static
//    schedule and pays for its accounting; the honest contract is that the
//    accounting stays under 50% over the delta baseline (docs/obs.md);
//  * static scheduler speedup — Simulator::settle() learns a levelized
//    evaluation order and must beat the delta-loop fallback by >= 1.5x on
//    the block workload, profiler detached (docs/hdl.md);
//  * engine sweep — ns/block through each engine::CipherEngine kind, the
//    cost ladder clients pick from (docs/engine.md).
//
// The profiler figure takes the min over trials, so host noise only ever
// *overstates* the overhead.  The scheduler gate instead uses the median
// of per-trial ratios: each trial measures both legs back to back, so
// frequency ramps and noisy neighbours hit both sides of the ratio and
// cancel, where min-of-each-leg lets one lucky sample skew the quotient.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "aes/cipher.hpp"
#include "core/bfm.hpp"
#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "engine/engine.hpp"
#include "hdl/simulator.hpp"
#include "netlist/batch_backend.hpp"
#include "netlist/batch_eval.hpp"
#include "netlist/eval.hpp"
#include "obs/profiler.hpp"
#include "report/json.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace engine = aesip::engine;
using aesip::hdl::SettleStrategy;

namespace {

constexpr int kBlocks = 2000;  // ~102k simulated cycles per trial
constexpr int kTrials = 5;
// The scheduler A/B gets longer legs: at 2000 blocks a leg lasts ~20 ms,
// short enough for one preemption to move the ratio by tens of percent.
constexpr int kSchedBlocks = 8000;

/// ns per simulated cycle pushing `blocks` blocks through a kBoth device,
/// under the given settle strategy, with or without a profiler attached.
/// One fresh core per call.
double measure_ns_per_cycle(bool profiled, int blocks,
                            SettleStrategy strategy = SettleStrategy::kAuto) {
  aesip::hdl::Simulator sim;
  sim.set_settle_strategy(strategy);
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  std::array<std::uint8_t, 16> block{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(block);
  std::optional<aesip::obs::ScopedProfiler> prof;
  if (profiled) prof.emplace(sim);
  for (int i = 0; i < 160; ++i) block = bus.process_block(block);  // warm up / learn
  const auto c0 = sim.cycle();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < blocks; ++i) block = bus.process_block(block);
  const auto t1 = std::chrono::steady_clock::now();
  const auto cycles = sim.cycle() - c0;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return cycles ? ns / static_cast<double>(cycles) : 0.0;
}

struct EnginePoint {
  const char* name;
  int blocks = 0;
  double ns_per_block = 0;
  double cycles_per_block = 0;
};

/// ns/block and simulated cycles/block through one CipherEngine kind.
/// The netlist engine evaluates the synthesized gate network, so it gets a
/// much smaller block budget than the others.
EnginePoint measure_engine(engine::EngineKind kind, int blocks) {
  const auto e = engine::make_engine(kind, core::IpMode::kBoth);
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  e->load_key(key);
  std::array<std::uint8_t, 16> block{};
  block = e->process_block(block, true);  // warm up
  const auto c0 = e->cycles();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < blocks; ++i) block = e->process_block(block, true);
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  EnginePoint p;
  p.name = engine::kind_name(kind);
  p.blocks = blocks;
  p.ns_per_block = ns / blocks;
  p.cycles_per_block = static_cast<double>(e->cycles() - c0) / blocks;
  return p;
}

// --- bit-parallel netlist evaluation (the netlist_batch gate) ---------------

constexpr int kBatchScalarBlocks = 8;  // scalar gate-level blocks are ~ms each
constexpr int kBatchPasses = 4;        // passes per occupancy point in the sweep

struct LanePoint {
  std::size_t lanes;
  double ns_per_block;
};

struct BackendPoint {
  const char* name;
  bool supported = false;
  std::string reason;             // why the row was skipped, when it was
  std::size_t lanes = 0;
  double ns_per_block = 0;        // full occupancy
  bool bit_exact = true;          // full-lane batch vs. software AES-128
  std::vector<LanePoint> sweep;   // occupancy sweep: 1 / 8 / 64 / full
};

struct NetlistBatchResult {
  double ns_per_block_scalar = 0;  // scalar Evaluator via GateIpDriver
  double ns_per_block_u64 = 0;     // the 64-lane portable baseline
  double ns_per_block_batch = 0;   // the active (widest native) backend
  double speedup_per_block = 0;    // scalar / active
  double speedup_vs_u64 = 0;       // u64 / active: the SIMD widening gate
  const char* backend = "u64";     // the active backend's name
  std::size_t lanes = 64;
  std::size_t tape_ops = 0;
  std::size_t levels = 0;
  std::vector<BackendPoint> backends;
  std::size_t active_index = 0;    // row in `backends` the dispatch resolves to
};

/// Scalar vs. lane-packed evaluation of the same synthesized kBoth IP.
/// Every compiled-in backend gets its own row (occupancy sweep + full-lane
/// figure + bit-exactness against software AES); backends the host cannot
/// run are recorded as skipped with the reason, in the style of the hw<4
/// skips elsewhere.  Two gates ride on the result: the historical >= 20x
/// of the active backend over the scalar interpreter, and the SIMD
/// widening gate — >= 4x of the widest native backend over the unchanged
/// 64-lane u64 path (the pre-widening cost model).
NetlistBatchResult measure_netlist_batch() {
  namespace netlist = aesip::netlist;
  const auto nl = engine::make_ip_netlist(core::IpMode::kBoth);
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  NetlistBatchResult r;

  core::GateIpDriver sd(*nl);
  sd.reset();
  sd.load_key(key, true);
  std::array<std::uint8_t, 16> block{};
  sd.process(block, true);  // warm up
  const auto st0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBatchScalarBlocks; ++i) sd.process(block, true);
  const auto st1 = std::chrono::steady_clock::now();
  r.ns_per_block_scalar =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(st1 - st0).count()) /
      kBatchScalarBlocks;

  const aesip::aes::Aes128 ref(std::span<const std::uint8_t, 16>(key.data(), 16));
  const netlist::BatchBackend active = netlist::detect_backend();
  const netlist::BatchBackend all[] = {netlist::BatchBackend::kU64, netlist::BatchBackend::kNeon,
                                       netlist::BatchBackend::kAvx2,
                                       netlist::BatchBackend::kAvx512,
                                       netlist::BatchBackend::kJit};
  for (const auto b : all) {
    BackendPoint pt;
    pt.name = netlist::backend_name(b);
    pt.supported = netlist::backend_supported(b);
    if (!pt.supported) {
      pt.reason = std::string("backend '") + pt.name + "' is not supported on this host";
      r.backends.push_back(std::move(pt));
      continue;
    }
    netlist::BatchConfig cfg;
    cfg.backend = b;
    core::GateIpBatchDriver bd(*nl, cfg);
    bd.reset();
    bd.load_key(key, true);
    r.tape_ops = bd.evaluator().tape_size();
    r.levels = bd.evaluator().level_count();
    pt.lanes = bd.lanes();
    std::vector<std::uint8_t> in(16 * pt.lanes);
    std::vector<std::uint8_t> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::uint8_t>(i * 37 + 11);
    bd.process_batch(in, out, pt.lanes, true);  // warm up
    std::vector<std::size_t> points{1, 8, 64};
    if (pt.lanes > 64) points.push_back(pt.lanes);
    for (const std::size_t lanes : points) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int p = 0; p < kBatchPasses; ++p) bd.process_batch(in, out, lanes, true);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns_per_block =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
          (static_cast<double>(kBatchPasses) * static_cast<double>(lanes));
      pt.sweep.push_back(LanePoint{lanes, ns_per_block});
      if (lanes == pt.lanes) pt.ns_per_block = ns_per_block;
    }
    for (std::size_t blk = 0; blk < pt.lanes && pt.bit_exact; ++blk) {
      std::array<std::uint8_t, 16> want{};
      ref.encrypt_block(std::span<const std::uint8_t, 16>(in.data() + 16 * blk, 16), want);
      pt.bit_exact = std::equal(want.begin(), want.end(), out.begin() + 16 * blk);
    }
    if (b == netlist::BatchBackend::kU64) r.ns_per_block_u64 = pt.ns_per_block;
    if (b == active) {
      r.active_index = r.backends.size();
      r.backend = pt.name;
      r.lanes = pt.lanes;
      r.ns_per_block_batch = pt.ns_per_block;
    }
    r.backends.push_back(std::move(pt));
  }
  r.speedup_per_block =
      r.ns_per_block_batch > 0 ? r.ns_per_block_scalar / r.ns_per_block_batch : 0.0;
  r.speedup_vs_u64 =
      r.ns_per_block_batch > 0 ? r.ns_per_block_u64 / r.ns_per_block_batch : 0.0;
  return r;
}

void measure_and_dump() {
  // --- static scheduler vs. delta loop (profiler detached) -------------
  double delta_only = 1e300, scheduled = 1e300;
  std::vector<double> ratios;
  for (int t = 0; t < kTrials; ++t) {
    const double d = measure_ns_per_cycle(false, kSchedBlocks, SettleStrategy::kDeltaOnly);
    const double s = measure_ns_per_cycle(false, kSchedBlocks);
    delta_only = std::min(delta_only, d);
    scheduled = std::min(scheduled, s);
    if (s > 0) ratios.push_back(d / s);
  }
  std::sort(ratios.begin(), ratios.end());
  const double sched_speedup = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
  std::printf("=== Static-schedule settle vs. delta loop (hdl kernel hot path) ===\n\n");
  std::printf("  delta loop      %8.1f ns/cycle   (SettleStrategy::kDeltaOnly; min of %d trials, %d blocks each)\n",
              delta_only, kTrials, kSchedBlocks);
  std::printf("  scheduled       %8.1f ns/cycle   (kAuto: learned levelized order)\n", scheduled);
  std::printf("  speedup         %8.2f x           (median of per-trial ratios; target: >= 1.5x)\n\n",
              sched_speedup);

  // --- profiler overhead -----------------------------------------------
  // Profiled settles always run on the delta engine (the per-delta counts
  // are what the profile reports), so the instrumentation overhead is
  // measured against the delta baseline. The cost of forfeiting the static
  // schedule while a profiler is attached is the scheduler speedup above.
  double profiled = 1e300;
  for (int t = 0; t < kTrials; ++t)
    profiled = std::min(profiled, measure_ns_per_cycle(true, kBlocks));
  // Clamped at zero: a negative measurement just means the overhead is below
  // run-to-run noise, and the JSON envelope forbids negative figures.
  const double overhead_pct = std::max(
      0.0, delta_only > 0 ? (profiled - delta_only) / delta_only * 100.0 : 0.0);
  std::printf("=== Profiler overhead (ScopedProfiler attached vs. delta baseline) ===\n\n");
  std::printf("  uninstrumented  %8.1f ns/cycle   (delta engine, no profiler)\n", delta_only);
  std::printf("  instrumented    %8.1f ns/cycle\n", profiled);
  std::printf("  overhead        %+8.2f %%          (budget: < 50%%; docs/obs.md)\n\n", overhead_pct);

  // --- engine sweep ----------------------------------------------------
  std::printf("=== CipherEngine sweep (ns per 16-byte block, kBoth devices) ===\n\n");
  std::vector<EnginePoint> engines;
  engines.push_back(measure_engine(engine::EngineKind::kSoftware, kBlocks));
  engines.push_back(measure_engine(engine::EngineKind::kBehavioral, kBlocks));
  engines.push_back(measure_engine(engine::EngineKind::kNetlist, 16));
  for (const auto& p : engines)
    std::printf("  %-10s  %12.1f ns/block   %6.1f cycles/block   (%d blocks)\n", p.name,
                p.ns_per_block, p.cycles_per_block, p.blocks);
  std::printf("\n");

  // --- bit-parallel netlist batch gate ---------------------------------
  const NetlistBatchResult nb = measure_netlist_batch();
  std::printf("=== Bit-parallel netlist evaluation (lane-packed BatchEvaluator) ===\n\n");
  std::printf("  scalar          %12.1f ns/block   (Evaluator, %d blocks)\n",
              nb.ns_per_block_scalar, kBatchScalarBlocks);
  for (const auto& bp : nb.backends) {
    if (!bp.supported) {
      std::printf("  %-8s      skipped: %s\n", bp.name, bp.reason.c_str());
      continue;
    }
    std::printf("  %-8s %4zu-lane %10.1f ns/block   (%d passes, %s)\n", bp.name, bp.lanes,
                bp.ns_per_block, kBatchPasses, bp.bit_exact ? "bit-exact" : "MISMATCH");
  }
  std::printf("  active          %s (%zu lanes), %zu tape ops in %zu levels\n", nb.backend,
              nb.lanes, nb.tape_ops, nb.levels);
  std::printf("  vs scalar       %12.2f x           (target: >= 20x)\n", nb.speedup_per_block);
  std::printf("  vs u64 lanes    %12.2f x           (the SIMD widening gate; target: >= 4x)\n\n",
              nb.speedup_vs_u64);

  std::ofstream jf("BENCH_simspeed.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "simspeed", 4);
  j.begin_object();  // config
  j.key("blocks").value(kBlocks);
  j.key("trials").value(kTrials);
  j.key("scheduler_blocks").value(kSchedBlocks);
  j.key("netlist_blocks").value(16);
  j.key("netlist_batch_scalar_blocks").value(kBatchScalarBlocks);
  j.key("netlist_batch_passes").value(kBatchPasses);
  j.end_object();
  j.key("scheduler").begin_object();
  j.key("ns_per_cycle_delta").value(delta_only);
  j.key("ns_per_cycle_scheduled").value(scheduled);
  j.key("speedup").value(sched_speedup);
  j.key("meets_target").value(sched_speedup >= 1.5);
  j.end_object();
  j.key("profiler").begin_object();
  j.key("ns_per_cycle_baseline").value(delta_only);
  j.key("ns_per_cycle_profiled").value(profiled);
  j.key("overhead_pct").value(overhead_pct);
  j.key("within_budget").value(overhead_pct < 50.0);
  j.end_object();
  j.key("engines").begin_array();
  for (const auto& p : engines) {
    j.begin_object();
    j.key("engine").value(p.name);
    j.key("blocks").value(p.blocks);
    j.key("ns_per_block").value(p.ns_per_block);
    j.key("cycles_per_block").value(p.cycles_per_block);
    j.end_object();
  }
  j.end_array();
  // Payload v4 (docs/benchmarks.md): the active backend's figures and the
  // historical >= 20x scalar gate keep their v3 keys; new are the resolved
  // backend/lane geometry, the per-backend rows (skip-with-reason where
  // the host cannot run one), and the `simd` sub-gate — widest native
  // backend >= 4x over the unchanged u64 baseline, skipped with a reason
  // when u64 is all the host has.
  j.key("netlist_batch").begin_object();
  j.key("backend").value(nb.backend);
  j.key("lanes").value(nb.lanes);
  j.key("tape_ops").value(nb.tape_ops);
  j.key("levels").value(nb.levels);
  j.key("ns_per_block_scalar").value(nb.ns_per_block_scalar);
  j.key("ns_per_block_batch").value(nb.ns_per_block_batch);
  j.key("speedup_per_block").value(nb.speedup_per_block);
  j.key("target").value(20.0);
  j.key("meets_target").value(nb.speedup_per_block >= 20.0);
  j.key("simd").begin_object();
  if (std::string(nb.backend) == "u64") {
    j.key("skipped").value(true);
    j.key("reason").value("no SIMD backend on this host: the widest native backend is u64");
  } else {
    j.key("baseline_backend").value("u64");
    j.key("ns_per_block_u64").value(nb.ns_per_block_u64);
    j.key("speedup_vs_u64").value(nb.speedup_vs_u64);
    j.key("target").value(4.0);
    j.key("meets_target").value(nb.speedup_vs_u64 >= 4.0);
  }
  j.end_object();
  j.key("backends").begin_array();
  for (const auto& bp : nb.backends) {
    j.begin_object();
    j.key("backend").value(bp.name);
    if (!bp.supported) {
      j.key("skipped").value(true);
      j.key("reason").value(bp.reason);
      j.end_object();
      continue;
    }
    j.key("lanes").value(bp.lanes);
    j.key("ns_per_block").value(bp.ns_per_block);
    j.key("bit_exact").value(bp.bit_exact);
    j.key("occupancy_sweep").begin_array();
    for (const auto& lp : bp.sweep) {
      j.begin_object();
      j.key("lanes").value(lp.lanes);
      j.key("ns_per_block").value(lp.ns_per_block);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.end_object();
  std::printf("wrote BENCH_simspeed.json\n\n");
}

void BM_RtlSimCyclesPerSecond(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecond);

void BM_RtlSimCyclesPerSecondProfiled(benchmark::State& state) {
  // Same kernel loop with a ScopedProfiler attached — the instrumented
  // figure next to the plain one makes the overhead visible in every run.
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  aesip::obs::ScopedProfiler prof(sim);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecondProfiled);

void BM_GateLevelEvaluatorClock(benchmark::State& state) {
  // One clock of the complete mapped encrypt IP (LUT/FF/ROM netlist).
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  aesip::netlist::Evaluator ev(mapped.mapped);
  ev.settle();
  for (auto _ : state) ev.clock();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelEvaluatorClock);

void BM_EvaluatorConstruction(benchmark::State& state) {
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state)
    benchmark::DoNotOptimize(aesip::netlist::Evaluator(mapped.mapped));
}
BENCHMARK(BM_EvaluatorConstruction)->Unit(benchmark::kMicrosecond);

void BM_BlockThroughRtlSim(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) benchmark::DoNotOptimize(bus.process_block(key));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockThroughRtlSim)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  measure_and_dump();
  std::printf("=== Simulation kernel performance (the ModelSim substitute) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
