// Simulation-infrastructure performance: cycles/second of the hdl kernel
// on the full IP, and the gate-level netlist evaluator — the ModelSim
// replacement's own speed, relevant to anyone extending the repository.
//
// Three A/B gates are measured and trend-tracked in BENCH_simspeed.json
// (common aesip-bench-v1 envelope, see docs/benchmarks.md):
//
//  * profiler overhead — an attached ScopedProfiler forfeits the static
//    schedule and pays for its accounting; the honest contract is that the
//    accounting stays under 50% over the delta baseline (docs/obs.md);
//  * static scheduler speedup — Simulator::settle() learns a levelized
//    evaluation order and must beat the delta-loop fallback by >= 1.5x on
//    the block workload, profiler detached (docs/hdl.md);
//  * engine sweep — ns/block through each engine::CipherEngine kind, the
//    cost ladder clients pick from (docs/engine.md).
//
// The profiler figure takes the min over trials, so host noise only ever
// *overstates* the overhead.  The scheduler gate instead uses the median
// of per-trial ratios: each trial measures both legs back to back, so
// frequency ramps and noisy neighbours hit both sides of the ratio and
// cancel, where min-of-each-leg lets one lucky sample skew the quotient.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <vector>

#include "core/bfm.hpp"
#include "core/gate_driver.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "engine/engine.hpp"
#include "hdl/simulator.hpp"
#include "netlist/batch_eval.hpp"
#include "netlist/eval.hpp"
#include "obs/profiler.hpp"
#include "report/json.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace engine = aesip::engine;
using aesip::hdl::SettleStrategy;

namespace {

constexpr int kBlocks = 2000;  // ~102k simulated cycles per trial
constexpr int kTrials = 5;
// The scheduler A/B gets longer legs: at 2000 blocks a leg lasts ~20 ms,
// short enough for one preemption to move the ratio by tens of percent.
constexpr int kSchedBlocks = 8000;

/// ns per simulated cycle pushing `blocks` blocks through a kBoth device,
/// under the given settle strategy, with or without a profiler attached.
/// One fresh core per call.
double measure_ns_per_cycle(bool profiled, int blocks,
                            SettleStrategy strategy = SettleStrategy::kAuto) {
  aesip::hdl::Simulator sim;
  sim.set_settle_strategy(strategy);
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  std::array<std::uint8_t, 16> block{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(block);
  std::optional<aesip::obs::ScopedProfiler> prof;
  if (profiled) prof.emplace(sim);
  for (int i = 0; i < 160; ++i) block = bus.process_block(block);  // warm up / learn
  const auto c0 = sim.cycle();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < blocks; ++i) block = bus.process_block(block);
  const auto t1 = std::chrono::steady_clock::now();
  const auto cycles = sim.cycle() - c0;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return cycles ? ns / static_cast<double>(cycles) : 0.0;
}

struct EnginePoint {
  const char* name;
  int blocks = 0;
  double ns_per_block = 0;
  double cycles_per_block = 0;
};

/// ns/block and simulated cycles/block through one CipherEngine kind.
/// The netlist engine evaluates the synthesized gate network, so it gets a
/// much smaller block budget than the others.
EnginePoint measure_engine(engine::EngineKind kind, int blocks) {
  const auto e = engine::make_engine(kind, core::IpMode::kBoth);
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  e->load_key(key);
  std::array<std::uint8_t, 16> block{};
  block = e->process_block(block, true);  // warm up
  const auto c0 = e->cycles();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < blocks; ++i) block = e->process_block(block, true);
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  EnginePoint p;
  p.name = engine::kind_name(kind);
  p.blocks = blocks;
  p.ns_per_block = ns / blocks;
  p.cycles_per_block = static_cast<double>(e->cycles() - c0) / blocks;
  return p;
}

// --- bit-parallel netlist evaluation (the netlist_batch gate) ---------------

constexpr int kBatchScalarBlocks = 8;  // scalar gate-level blocks are ~ms each
constexpr int kBatchPasses = 4;        // passes per lane point in the sweep

struct LanePoint {
  int lanes;
  double ns_per_block;
};

struct NetlistBatchResult {
  double ns_per_block_scalar = 0;  // scalar Evaluator via GateIpDriver
  double ns_per_block_batch = 0;   // 64 lanes via GateIpBatchDriver
  double speedup_per_block = 0;
  std::vector<LanePoint> sweep;    // lane-occupancy sweep: 1 / 8 / 64
  std::size_t tape_ops = 0;
};

/// Scalar vs. 64-lane evaluation of the same synthesized kBoth IP: the
/// per-block cost of the interpreted Evaluator against the compiled-tape
/// BatchEvaluator at full occupancy, plus partial-occupancy points (a
/// pass costs the same whatever the lane count — occupancy is the whole
/// game, which is why the farm batches its dispatch).
NetlistBatchResult measure_netlist_batch() {
  const auto nl = engine::make_ip_netlist(core::IpMode::kBoth);
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  NetlistBatchResult r;

  core::GateIpDriver sd(*nl);
  sd.reset();
  sd.load_key(key, true);
  std::array<std::uint8_t, 16> block{};
  sd.process(block, true);  // warm up
  const auto st0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBatchScalarBlocks; ++i) sd.process(block, true);
  const auto st1 = std::chrono::steady_clock::now();
  r.ns_per_block_scalar =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(st1 - st0).count()) /
      kBatchScalarBlocks;

  core::GateIpBatchDriver bd(*nl);
  bd.reset();
  bd.load_key(key, true);
  r.tape_ops = bd.evaluator().tape_size();
  std::vector<std::uint8_t> in(16 * core::GateIpBatchDriver::kLanes);
  std::vector<std::uint8_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::uint8_t>(i * 37 + 11);
  bd.process_batch(in, out, core::GateIpBatchDriver::kLanes, true);  // warm up
  for (const int lanes : {1, 8, 64}) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < kBatchPasses; ++p)
      bd.process_batch(in, out, static_cast<std::size_t>(lanes), true);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns_per_block =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
        (static_cast<double>(kBatchPasses) * lanes);
    r.sweep.push_back(LanePoint{lanes, ns_per_block});
    if (lanes == 64) r.ns_per_block_batch = ns_per_block;
  }
  r.speedup_per_block =
      r.ns_per_block_batch > 0 ? r.ns_per_block_scalar / r.ns_per_block_batch : 0.0;
  return r;
}

void measure_and_dump() {
  // --- static scheduler vs. delta loop (profiler detached) -------------
  double delta_only = 1e300, scheduled = 1e300;
  std::vector<double> ratios;
  for (int t = 0; t < kTrials; ++t) {
    const double d = measure_ns_per_cycle(false, kSchedBlocks, SettleStrategy::kDeltaOnly);
    const double s = measure_ns_per_cycle(false, kSchedBlocks);
    delta_only = std::min(delta_only, d);
    scheduled = std::min(scheduled, s);
    if (s > 0) ratios.push_back(d / s);
  }
  std::sort(ratios.begin(), ratios.end());
  const double sched_speedup = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
  std::printf("=== Static-schedule settle vs. delta loop (hdl kernel hot path) ===\n\n");
  std::printf("  delta loop      %8.1f ns/cycle   (SettleStrategy::kDeltaOnly; min of %d trials, %d blocks each)\n",
              delta_only, kTrials, kSchedBlocks);
  std::printf("  scheduled       %8.1f ns/cycle   (kAuto: learned levelized order)\n", scheduled);
  std::printf("  speedup         %8.2f x           (median of per-trial ratios; target: >= 1.5x)\n\n",
              sched_speedup);

  // --- profiler overhead -----------------------------------------------
  // Profiled settles always run on the delta engine (the per-delta counts
  // are what the profile reports), so the instrumentation overhead is
  // measured against the delta baseline. The cost of forfeiting the static
  // schedule while a profiler is attached is the scheduler speedup above.
  double profiled = 1e300;
  for (int t = 0; t < kTrials; ++t)
    profiled = std::min(profiled, measure_ns_per_cycle(true, kBlocks));
  // Clamped at zero: a negative measurement just means the overhead is below
  // run-to-run noise, and the JSON envelope forbids negative figures.
  const double overhead_pct = std::max(
      0.0, delta_only > 0 ? (profiled - delta_only) / delta_only * 100.0 : 0.0);
  std::printf("=== Profiler overhead (ScopedProfiler attached vs. delta baseline) ===\n\n");
  std::printf("  uninstrumented  %8.1f ns/cycle   (delta engine, no profiler)\n", delta_only);
  std::printf("  instrumented    %8.1f ns/cycle\n", profiled);
  std::printf("  overhead        %+8.2f %%          (budget: < 50%%; docs/obs.md)\n\n", overhead_pct);

  // --- engine sweep ----------------------------------------------------
  std::printf("=== CipherEngine sweep (ns per 16-byte block, kBoth devices) ===\n\n");
  std::vector<EnginePoint> engines;
  engines.push_back(measure_engine(engine::EngineKind::kSoftware, kBlocks));
  engines.push_back(measure_engine(engine::EngineKind::kBehavioral, kBlocks));
  engines.push_back(measure_engine(engine::EngineKind::kNetlist, 16));
  for (const auto& p : engines)
    std::printf("  %-10s  %12.1f ns/block   %6.1f cycles/block   (%d blocks)\n", p.name,
                p.ns_per_block, p.cycles_per_block, p.blocks);
  std::printf("\n");

  // --- bit-parallel netlist batch gate ---------------------------------
  const NetlistBatchResult nb = measure_netlist_batch();
  std::printf("=== Bit-parallel netlist evaluation (64-lane BatchEvaluator) ===\n\n");
  std::printf("  scalar          %12.1f ns/block   (Evaluator, %d blocks)\n",
              nb.ns_per_block_scalar, kBatchScalarBlocks);
  for (const auto& lp : nb.sweep)
    std::printf("  batch %2d-lane   %12.1f ns/block   (%d passes, %zu tape ops)\n", lp.lanes,
                lp.ns_per_block, kBatchPasses, nb.tape_ops);
  std::printf("  speedup         %12.2f x           (per block at 64 lanes; target: >= 20x)\n\n",
              nb.speedup_per_block);

  std::ofstream jf("BENCH_simspeed.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "simspeed", 3);
  j.begin_object();  // config
  j.key("blocks").value(kBlocks);
  j.key("trials").value(kTrials);
  j.key("scheduler_blocks").value(kSchedBlocks);
  j.key("netlist_blocks").value(16);
  j.key("netlist_batch_scalar_blocks").value(kBatchScalarBlocks);
  j.key("netlist_batch_passes").value(kBatchPasses);
  j.end_object();
  j.key("scheduler").begin_object();
  j.key("ns_per_cycle_delta").value(delta_only);
  j.key("ns_per_cycle_scheduled").value(scheduled);
  j.key("speedup").value(sched_speedup);
  j.key("meets_target").value(sched_speedup >= 1.5);
  j.end_object();
  j.key("profiler").begin_object();
  j.key("ns_per_cycle_baseline").value(delta_only);
  j.key("ns_per_cycle_profiled").value(profiled);
  j.key("overhead_pct").value(overhead_pct);
  j.key("within_budget").value(overhead_pct < 50.0);
  j.end_object();
  j.key("engines").begin_array();
  for (const auto& p : engines) {
    j.begin_object();
    j.key("engine").value(p.name);
    j.key("blocks").value(p.blocks);
    j.key("ns_per_block").value(p.ns_per_block);
    j.key("cycles_per_block").value(p.cycles_per_block);
    j.end_object();
  }
  j.end_array();
  j.key("netlist_batch").begin_object();
  j.key("lanes").value(64);
  j.key("tape_ops").value(nb.tape_ops);
  j.key("ns_per_block_scalar").value(nb.ns_per_block_scalar);
  j.key("ns_per_block_batch").value(nb.ns_per_block_batch);
  j.key("speedup_per_block").value(nb.speedup_per_block);
  j.key("target").value(20.0);
  j.key("meets_target").value(nb.speedup_per_block >= 20.0);
  j.key("occupancy_sweep").begin_array();
  for (const auto& lp : nb.sweep) {
    j.begin_object();
    j.key("lanes").value(lp.lanes);
    j.key("ns_per_block").value(lp.ns_per_block);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.end_object();
  std::printf("wrote BENCH_simspeed.json\n\n");
}

void BM_RtlSimCyclesPerSecond(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecond);

void BM_RtlSimCyclesPerSecondProfiled(benchmark::State& state) {
  // Same kernel loop with a ScopedProfiler attached — the instrumented
  // figure next to the plain one makes the overhead visible in every run.
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  aesip::obs::ScopedProfiler prof(sim);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtlSimCyclesPerSecondProfiled);

void BM_GateLevelEvaluatorClock(benchmark::State& state) {
  // One clock of the complete mapped encrypt IP (LUT/FF/ROM netlist).
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  aesip::netlist::Evaluator ev(mapped.mapped);
  ev.settle();
  for (auto _ : state) ev.clock();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelEvaluatorClock);

void BM_EvaluatorConstruction(benchmark::State& state) {
  static const auto mapped =
      aesip::techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  for (auto _ : state)
    benchmark::DoNotOptimize(aesip::netlist::Evaluator(mapped.mapped));
}
BENCHMARK(BM_EvaluatorConstruction)->Unit(benchmark::kMicrosecond);

void BM_BlockThroughRtlSim(benchmark::State& state) {
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
  core::BusDriver bus(sim, ip);
  bus.reset();
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  bus.load_key(key);
  for (auto _ : state) benchmark::DoNotOptimize(bus.process_block(key));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockThroughRtlSim)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  measure_and_dump();
  std::printf("=== Simulation kernel performance (the ModelSim substitute) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
