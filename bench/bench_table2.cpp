// Regenerates the paper's Table 2: performance and occupation of the three
// IP variants on the Acex1K and Cyclone parts, printed measured-vs-paper,
// plus google-benchmark timings of the flow stages themselves.
//
// Run directly: prints the table, then benchmarks synthesis / mapping /
// fitting.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "core/table2.hpp"
#include "report/table.hpp"
#include "techmap/techmap.hpp"

namespace core = aesip::core;
namespace fpga = aesip::fpga;
using aesip::report::Table;

namespace {

void print_table2() {
  std::cout << "=== Table 2: Performance and occupation (measured | paper) ===\n\n";
  Table t({"System", "Device", "LCs", "Memory", "Pins", "Latency(ns)", "Clk(ns)",
           "Thrpt(Mbps)"});
  for (const auto& r : core::reproduce_table2()) {
    const auto& p = r.paper;
    t.add_row({
        p.system,
        std::string(p.device) + " (" + r.device->name + ")",
        std::to_string(r.fit.logic_elements) + "/" + Table::fixed(r.fit.le_pct, 0) + "% | " +
            std::to_string(p.lcs) + "/" + std::to_string(p.lc_pct) + "%",
        std::to_string(r.fit.memory_bits) + "/" + Table::fixed(r.fit.memory_pct, 0) + "% | " +
            std::to_string(p.memory_bits) + "/" + std::to_string(p.memory_pct) + "%",
        std::to_string(r.fit.pins) + " | " + std::to_string(p.pins),
        Table::fixed(r.latency_ns, 0) + " | " + Table::fixed(p.latency_ns, 0),
        Table::fixed(r.fit.timing.clock_period_ns, 1) + " | " + Table::fixed(p.clock_ns, 0),
        Table::fixed(r.throughput_mbps, 0) + " | " + Table::fixed(p.throughput_mbps, 0),
    });
  }
  t.print(std::cout);

  // The ratio the paper calls out explicitly.
  const auto rows = core::reproduce_table2();
  for (const bool cyclone : {false, true}) {
    const std::size_t base = cyclone ? 3 : 0;
    const double enc = rows[base].throughput_mbps;
    const double both = rows[base + 2].throughput_mbps;
    std::printf("\n%s: combined device throughput drop vs encrypt-only: %.1f%% "
                "(paper reports ~22%%)\n",
                cyclone ? "Cyclone" : "Acex1K", 100.0 * (enc - both) / enc);
  }
  std::cout << "\nEvery cell satisfies latency = 50 cycles x Tclk and throughput = "
               "128 bits / latency, as in the paper.\n\n";
}

void BM_SynthesizeEncrypt(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(core::synthesize_ip(core::IpMode::kEncrypt, true));
}
BENCHMARK(BM_SynthesizeEncrypt)->Unit(benchmark::kMillisecond);

void BM_MapEncrypt(benchmark::State& state) {
  const auto nl = core::synthesize_ip(core::IpMode::kEncrypt, true);
  for (auto _ : state) benchmark::DoNotOptimize(aesip::techmap::map_to_luts(nl));
}
BENCHMARK(BM_MapEncrypt)->Unit(benchmark::kMillisecond);

void BM_FullFlowCell(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::reproduce_table2_cell(core::IpMode::kEncrypt, fpga::ep1k100fc484_1()));
}
BENCHMARK(BM_FullFlowCell)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
