// Full-rate streaming through the decoupled bus processes (paper Figs 8/9):
// demonstrates that the Data_In / Out processes hide all bus traffic behind
// the Rijndael process, sustaining exactly 50 cycles per block — the
// property that makes throughput = block size / latency in Table 2.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "report/json.hpp"

namespace core = aesip::core;

namespace {

std::vector<std::array<std::uint8_t, 16>> make_blocks(std::size_t n) {
  std::vector<std::array<std::uint8_t, 16>> blocks(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < 16; ++k)
      blocks[i][k] = static_cast<std::uint8_t>(i * 31 + k * 7 + 3);
  return blocks;
}

void print_streaming_profile() {
  std::printf("=== Full-rate streaming (decoupled Data_In/Out processes) ===\n\n");
  const std::array<std::uint8_t, 16> key{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6};
  struct Row {
    std::string variant;
    std::size_t blocks;
    std::uint64_t cycles;
    double cycles_per_block;
  };
  std::vector<Row> rows;
  for (const auto mode : {core::IpMode::kEncrypt, core::IpMode::kDecrypt, core::IpMode::kBoth}) {
    aesip::hdl::Simulator sim;
    core::RijndaelIp ip(sim, mode);
    core::BusDriver bus(sim, ip);
    bus.reset();
    bus.load_key(key);
    const auto blocks = make_blocks(32);
    const bool encrypt = mode != core::IpMode::kDecrypt;
    bus.stream(blocks, encrypt);
    const double cpb = static_cast<double>(bus.last_stream_cycles()) / blocks.size();
    const char* name = mode == core::IpMode::kEncrypt ? "Encrypt"
                       : mode == core::IpMode::kDecrypt ? "Decrypt"
                                                        : "Both";
    std::printf("  %-8s : %zu blocks in %llu cycles = %.2f cycles/block (ideal 50)\n", name,
                blocks.size(), static_cast<unsigned long long>(bus.last_stream_cycles()), cpb);
    rows.push_back({name, blocks.size(), bus.last_stream_cycles(), cpb});
  }
  std::printf("\nAt 50 cycles/block: 14 ns clock -> 182.9 Mbps, 10 ns -> 256 Mbps — the\n"
              "paper's Table 2 throughput column.\n\n");

  // Machine-readable mirror of the table above, for cross-PR trend tracking
  // (common aesip-bench-v1 envelope, validated by tools/check_bench.sh).
  std::ofstream jf("BENCH_stream.json");
  aesip::report::JsonWriter j(jf);
  aesip::report::begin_bench_envelope(j, "stream", 2);
  j.begin_object();  // config
  j.key("blocks_per_variant").value(32);
  j.end_object();
  j.key("ideal_cycles_per_block").value(50);
  j.key("variants").begin_array();
  for (const auto& r : rows) {
    j.begin_object();
    j.key("variant").value(r.variant);
    j.key("blocks").value(r.blocks);
    j.key("cycles").value(r.cycles);
    j.key("cycles_per_block").value(r.cycles_per_block);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote BENCH_stream.json\n\n");
}

void BM_StreamEncrypt(benchmark::State& state) {
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  const auto blocks = make_blocks(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    aesip::hdl::Simulator sim;
    core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
    core::BusDriver bus(sim, ip);
    bus.reset();
    bus.load_key(key);
    benchmark::DoNotOptimize(bus.stream(blocks));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_StreamEncrypt)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SingleBlockLatency(benchmark::State& state) {
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6};
  aesip::hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
  core::BusDriver bus(sim, ip);
  bus.reset();
  bus.load_key(key);
  for (auto _ : state) benchmark::DoNotOptimize(bus.process_block(key));
}
BENCHMARK(BM_SingleBlockLatency)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_streaming_profile();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
