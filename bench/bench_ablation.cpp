// Ablation of the paper's architectural decisions (Sections 4 and 6):
//
//  * mixed 32/128-bit processing: 5 cycles/round vs 12 for all-32-bit —
//    the headline design choice;
//  * datapath-width sweep (8/16/32/mixed/128): cycles, S-box budget, and
//    the key-schedule ceiling that makes a full 128-bit round pointless
//    with on-the-fly keys ("larger architectures do not provide a large
//    increase of performance, as the key generation is slower");
//  * measured cycle counts from the cycle-accurate model, confirming the
//    analytical numbers.
#include <benchmark/benchmark.h>

#include <array>
#include <iostream>

#include "arch/alt_ip.hpp"
#include "arch/cycle_model.hpp"
#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "report/table.hpp"

namespace arch = aesip::arch;
namespace core = aesip::core;
using aesip::report::Table;

namespace {

void print_ablation() {
  std::cout << "=== Ablation: datapath organization (paper Sections 4/6) ===\n\n";
  Table t({"Organization", "ByteSub width", "Linear width", "Cycles/round",
           "Effective (key sched)", "Cycles/block", "S-boxes", "ROM bits",
           "Thrpt @14ns (Mbps)"});
  for (const auto& cfg : {arch::serial8(), arch::serial16(), arch::all32(), arch::paper_mixed(),
                          arch::full128()}) {
    t.add_row({cfg.name, std::to_string(cfg.bytesub_bits), std::to_string(cfg.linear_bits),
               std::to_string(arch::cycles_per_round(cfg)),
               std::to_string(arch::effective_cycles_per_round(cfg)),
               std::to_string(arch::cycles_per_block(cfg)),
               std::to_string(arch::sbox_count(cfg)), std::to_string(arch::rom_bits(cfg)),
               Table::fixed(arch::throughput_mbps(cfg, 14.0), 1)});
  }
  t.print(std::cout);

  std::cout << "\nPaper claims reproduced:\n"
            << "  * mixed 32/128 cuts the round from 12 to 5 cycles (58% fewer)\n"
            << "  * the 4-cycle KStran schedule hides exactly inside the 4 ByteSub\n"
            << "    cycles at 32 bits -- the balance point of the design\n"
            << "  * a fused 128-bit round stalls on the key schedule (1 -> 4 cycles\n"
            << "    effective) unless round keys are precomputed and stored\n"
            << "  * 8/16-bit datapaths pay 2-5x the cycles for the same 8k of S-box\n\n";

  // Measured cycle counts: all three organizations exist as cycle-accurate
  // models and encrypt the same vector.
  const std::array<std::uint8_t, 16> key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  Table m({"Organization (measured)", "Latency (cycles)", "Key setup (cycles)", "S-boxes"});
  {
    aesip::hdl::Simulator sim;
    arch::All32Ip ip(sim);
    core::GenericBusDriver<arch::All32Ip> bus(sim, ip);
    bus.reset();
    const auto setup = bus.load_key(key);
    bus.process_block(key);
    m.add_row({"all-32-bit", std::to_string(bus.last_latency()), std::to_string(setup),
               std::to_string(ip.sbox_count())});
  }
  {
    aesip::hdl::Simulator sim;
    core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
    core::BusDriver bus(sim, ip);
    bus.reset();
    const auto setup = bus.load_key(key);
    bus.process_block(key);
    m.add_row({"mixed-32/128 (paper)", std::to_string(bus.last_latency()),
               std::to_string(setup), std::to_string(ip.sbox_count())});
  }
  {
    aesip::hdl::Simulator sim;
    arch::Full128Ip ip(sim);
    core::GenericBusDriver<arch::Full128Ip> bus(sim, ip);
    bus.reset();
    const auto setup = bus.load_key(key);
    bus.process_block(key);
    m.add_row({"full-128-bit, stored keys", std::to_string(bus.last_latency()),
               std::to_string(setup),
               std::to_string(ip.sbox_count()) + " + 1408b key RAM"});
  }
  m.print(std::cout);
  std::cout << "\nMeasured latencies confirm the analytical model: 120 / 50 / 10 cycles.\n\n";
}

void BM_CycleModelSweep(benchmark::State& state) {
  for (auto _ : state)
    for (const auto& cfg :
         {arch::serial8(), arch::serial16(), arch::all32(), arch::paper_mixed(), arch::full128()})
      benchmark::DoNotOptimize(arch::cycles_per_block(cfg));
}
BENCHMARK(BM_CycleModelSweep);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
