// Secure link: the "Internet banking" scenario from the paper's
// introduction.  A host encrypts a transaction message in CBC mode, with
// every block cipher invocation running through the simulated combined
// encrypt/decrypt IP (the kBoth device) over its real bus protocol; the
// receiving side decrypts through the same device and checks the message.
//
// Demonstrates that the IP model satisfies the BlockCipher128 concept, so
// the aes:: modes of operation treat simulated hardware and software
// ciphers interchangeably.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"

using namespace aesip;

int main() {
  const std::string message =
      "WIRE TRANSFER ORDER #20030312: pay 1,250.00 EUR from account "
      "BR-4471-0032 to DE-9921-5544, reference 'DATE 2003 registration'.";

  const std::array<std::uint8_t, 16> key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::array<std::uint8_t, 16> iv{0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5, 0x96, 0x87,
                                        0x78, 0x69, 0x5a, 0x4b, 0x3c, 0x2d, 0x1e, 0x0f};

  // One combined encrypt/decrypt device serves both directions, as the
  // paper recommends ("the use of the third implementation is better as it
  // is easiest to operate").
  hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  core::BusDriver bus(sim, ip);
  bus.reset();
  std::printf("loading session key (%llu-cycle key setup for the decrypt schedule)\n",
              static_cast<unsigned long long>(bus.load_key(key)));
  core::IpBlockCipher hw(bus);

  // --- sender ----------------------------------------------------------------
  std::vector<std::uint8_t> payload(message.begin(), message.end());
  const auto padded = aes::pkcs7_pad(payload);
  const std::uint64_t c0 = sim.cycle();
  const auto ciphertext = aes::cbc_encrypt(hw, std::span<const std::uint8_t, 16>(iv), padded);
  const std::uint64_t enc_cycles = sim.cycle() - c0;
  std::printf("encrypted %zu bytes (%zu blocks) in %llu device cycles\n", payload.size(),
              ciphertext.size() / 16, static_cast<unsigned long long>(enc_cycles));
  std::printf("ciphertext[0..15]: ");
  for (int i = 0; i < 16; ++i) std::printf("%02x", ciphertext[static_cast<std::size_t>(i)]);
  std::printf("...\n");

  // --- receiver ---------------------------------------------------------------
  const auto decrypted = aes::cbc_decrypt(hw, std::span<const std::uint8_t, 16>(iv), ciphertext);
  const auto unpadded = aes::pkcs7_unpad(decrypted);
  const std::string received(unpadded.begin(), unpadded.end());
  std::printf("receiver recovered: \"%.40s...\"\n", received.c_str());
  std::printf("round trip intact: %s\n", received == message ? "yes" : "NO");

  // --- cross-check against pure software --------------------------------------
  aes::Aes128 sw(key);
  const auto sw_ct = aes::cbc_encrypt(sw, std::span<const std::uint8_t, 16>(iv), padded);
  std::printf("hardware CBC stream == software CBC stream: %s\n",
              sw_ct == ciphertext ? "yes" : "NO");

  // --- a tampering attempt ------------------------------------------------------
  auto tampered = ciphertext;
  tampered[20] ^= 0x80;  // flip a bit in block 1
  const auto garbled = aes::cbc_decrypt(hw, std::span<const std::uint8_t, 16>(iv), tampered);
  std::size_t damaged = 0;
  for (std::size_t i = 0; i < garbled.size(); ++i)
    if (garbled[i] != decrypted[i]) ++damaged;
  std::printf("bit-flip in transit damages %zu plaintext bytes (CBC: a full block plus "
              "one byte) — integrity needs a MAC on top of the IP\n",
              damaged);
  return 0;
}
