// Quickstart: load a key into the simulated IP, encrypt one block, check it
// against the software reference, and run the Acex1K implementation flow.
//
//   $ ./quickstart
//
// This touches each layer of the library once: the cycle-accurate model
// (core::RijndaelIp + core::BusDriver), the golden software cipher
// (aes::Aes128), and the synthesis -> map -> fit -> timing flow
// (core::synthesize_ip, techmap::map_to_luts, fpga::fit).
#include <array>
#include <cstdio>

#include "aes/cipher.hpp"
#include "core/bfm.hpp"
#include "core/ip_synth.hpp"
#include "core/rijndael_ip.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "hdl/simulator.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;

namespace {
void print_hex(const char* label, std::span<const std::uint8_t> bytes) {
  std::printf("%-22s", label);
  for (const std::uint8_t b : bytes) std::printf("%02x", b);
  std::printf("\n");
}
}  // namespace

int main() {
  // FIPS-197 Appendix C.1 test vector.
  const std::array<std::uint8_t, 16> key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                         0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::array<std::uint8_t, 16> plaintext{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                               0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};

  std::printf("== 1. Encrypt one block through the cycle-accurate IP model ==\n");
  hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kEncrypt);
  core::BusDriver bus(sim, ip);
  bus.reset();
  bus.load_key(key);
  const auto ciphertext = bus.process_block(plaintext);
  print_hex("plaintext:", plaintext);
  print_hex("key:", key);
  print_hex("IP ciphertext:", ciphertext);
  std::printf("latency: %llu clock cycles (10 rounds x 5 cycles)\n\n",
              static_cast<unsigned long long>(bus.last_latency()));

  std::printf("== 2. Cross-check against the software reference ==\n");
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> expected{};
  ref.encrypt_block(plaintext, expected);
  print_hex("software ciphertext:", expected);
  std::printf("match: %s\n\n", ciphertext == expected ? "yes" : "NO — bug!");

  std::printf("== 3. Implement the same IP on the paper's Acex1K part ==\n");
  const auto mapped = techmap::map_to_luts(core::synthesize_ip(core::IpMode::kEncrypt, true));
  const auto fit = fpga::fit(mapped, fpga::ep1k100fc484_1());
  std::printf("device:        %s\n", fit.device->name.c_str());
  std::printf("logic cells:   %zu (%.0f%%)\n", fit.logic_elements, fit.le_pct);
  std::printf("memory:        %zu bits (%.0f%%), %d EABs\n", fit.memory_bits, fit.memory_pct,
              fit.memory_blocks);
  std::printf("pins:          %d (%.0f%%)\n", fit.pins, fit.pin_pct);
  std::printf("clock period:  %.1f ns  ->  latency %.0f ns, throughput %.0f Mbps\n",
              fit.timing.clock_period_ns, fit.latency_ns(50), fit.throughput_mbps(128, 50));
  std::printf("(paper reports 2114 LCs / 42%%, 16384 bits / 33%%, 261 pins, 14 ns, 182 Mbps)\n");
  return 0;
}
