// Smart-card profile: the paper's other motivating deployment ("a low cost
// and small design can be used in smart card applications").
//
// Explores which of the three IP variants fit the small members of each
// family, what an 8-bit serial organization would trade (the paper's
// Section 6 remark), and prints a deployment recommendation per device.
#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/cycle_model.hpp"
#include "core/ip_synth.hpp"
#include "core/bus_adapter.hpp"
#include "core/table2.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "report/table.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;
using report::Table;

int main() {
  std::printf("== Fitting the IP variants on small family members ==\n\n");
  Table t({"Device", "LEs", "Variant", "Fits?", "LC use", "Mem use", "Pin use", "Thrpt(Mbps)"});
  const std::vector<const fpga::Device*> small_parts{
      &fpga::ep1k50tc144_1(), &fpga::ep1c6t144c6(), &fpga::ep1c3t100c6()};
  for (const fpga::Device* dev : small_parts) {
    for (const auto mode :
         {core::IpMode::kEncrypt, core::IpMode::kDecrypt, core::IpMode::kBoth}) {
      const char* name = mode == core::IpMode::kEncrypt ? "Encrypt"
                         : mode == core::IpMode::kDecrypt ? "Decrypt"
                                                          : "Both";
      try {
        const auto mapped =
            techmap::map_to_luts(core::synthesize_ip(mode, dev->supports_async_rom));
        const auto fit = fpga::fit(mapped, *dev);
        t.add_row({dev->name, std::to_string(dev->logic_elements), name,
                   fit.fits ? "yes" : "NO",
                   Table::fixed(fit.le_pct, 0) + "%", Table::fixed(fit.memory_pct, 0) + "%",
                   Table::fixed(fit.pin_pct, 0) + "%",
                   fit.fits ? Table::fixed(fit.throughput_mbps(128, 50), 0) : "-"});
      } catch (const fpga::FitError&) {
        t.add_row({dev->name, std::to_string(dev->logic_elements), name, "NO (async ROM)",
                   "-", "-", "-", "-"});
      }
    }
  }
  t.print(std::cout);

  std::printf("\nThe 262-pin parallel bus is the limiter on small packages — a smart-card\n"
              "deployment wraps the core behind the narrow interface the paper suggests\n"
              "(\"a simple interface could be built using 32 or 16 data bus\"):\n\n");
  Table tp({"Interface", "Pins (encrypt)", "Pins (both)", "Full rate?"});
  tp.add_row({"full 128-bit (Table 1)", "261", "262", "yes"});
  for (const int w : {32, 16, 8}) {
    tp.add_row({std::to_string(w) + "-bit adapter",
                std::to_string(core::NarrowBusIp::pin_count(w, core::IpMode::kEncrypt)),
                std::to_string(core::NarrowBusIp::pin_count(w, core::IpMode::kBoth)),
                w >= 16 ? "yes" : "yes (dedicated in/out buses)"});
  }
  tp.print(std::cout);

  std::printf("\n== What an 8-bit serial core would trade (paper Section 6) ==\n\n");
  Table t2({"Organization", "Cycles/block", "S-box ROM", "Thrpt @20ns (Mbps)", "Note"});
  for (const auto& cfg : {arch::serial8(), arch::serial16(), arch::paper_mixed()}) {
    t2.add_row({cfg.name, std::to_string(arch::cycles_per_block(cfg)),
                std::to_string(arch::rom_bits(cfg)) + " bits",
                Table::fixed(arch::throughput_mbps(cfg, 20.0), 1),
                cfg.bytesub_bits < 32 ? "KStran ROM does not shrink" : "paper's choice"});
  }
  t2.print(std::cout);
  std::printf("\n\"A smaller architecture, as 16 or 8, will use many clock cycles and the\n"
              " clock speed will not reverse this problem. Also, the 8k used in KStran\n"
              " will not decrease.\" — reproduced above: the 8-bit core still needs the\n"
              "4 KStran S-boxes, so memory only drops from 16k to 10k bits while the\n"
              "block cost quadruples.\n");
  return 0;
}
