// Waveform dump: trace the bus protocol and the first encryption through
// the IP into a VCD file viewable in GTKWave — the ModelSim-style
// inspection step of the paper's original flow.
//
//   $ ./wave_dump [out.vcd]
#include <cstdio>
#include <fstream>

#include "core/bfm.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "hdl/vcd.hpp"

using namespace aesip;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "aes_ip.vcd";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  hdl::Simulator sim;
  core::RijndaelIp ip(sim, core::IpMode::kBoth);
  hdl::VcdWriter vcd(sim, out, "aes_ip");
  core::BusDriver bus(sim, ip);

  // Configuration period, key load (40-cycle setup on the combined device),
  // one encryption, one decryption of the result.
  bus.reset();
  const std::array<std::uint8_t, 16> key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                         0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::array<std::uint8_t, 16> pt{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                        0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  bus.load_key(key);
  const auto ct = bus.process_block(pt, /*encrypt=*/true);
  const auto back = bus.process_block(ct, /*encrypt=*/false);
  sim.run(5);  // a little idle tail so the last strobe is visible

  std::printf("wrote %s: %llu cycles traced\n", path,
              static_cast<unsigned long long>(sim.cycle()));
  std::printf("  ciphertext: ");
  for (const auto b : ct) std::printf("%02x", b);
  std::printf("\n  decrypted : ");
  for (const auto b : back) std::printf("%02x", b);
  std::printf("  (round trip %s)\n", back == pt ? "ok" : "FAILED");
  std::printf("open with: gtkwave %s\n", path);
  return 0;
}
