// Formal flow: the verification story of the repository in one program.
//
// Synthesizes the encrypt IP, technology-maps it, PROVES the mapping
// correct with the BDD engine (every output and register next-state
// function), exports the mapped design to BLIF and Verilog, re-reads the
// BLIF and proves the round trip loss-free — then shows the same machinery
// catching an injected bug.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bdd/netlist_bdd.hpp"
#include "core/ip_synth.hpp"
#include "netlist/netlist.hpp"
#include "netlist/writer.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;

int main(int argc, char** argv) {
  const char* blif_path = argc > 1 ? argv[1] : "aes_ip_enc.blif";
  const char* verilog_path = argc > 2 ? argv[2] : "aes_ip_enc.v";

  std::printf("== 1. Synthesize and map the encrypt IP ==\n");
  const netlist::Netlist ip = core::synthesize_ip(core::IpMode::kEncrypt, true);
  const auto st = ip.stats();
  std::printf("synthesized: %zu gates, %zu DFFs, %zu S-box ROMs, %d pins\n", st.gates, st.dffs,
              st.roms, ip.pin_count());
  const auto mapped = techmap::map_to_luts(ip);
  std::printf("mapped:      %zu LUTs + %zu FFs -> %zu logic elements (%zu packed, %zu deduped)\n",
              mapped.stats.luts, mapped.stats.dffs, mapped.stats.logic_elements,
              mapped.stats.packed, mapped.stats.deduped_luts);

  std::printf("\n== 2. Prove the mapping correct (BDD equivalence) ==\n");
  const auto proof = bdd::prove_equivalent(ip, mapped.mapped);
  std::printf("synthesized == mapped: %s\n", proof.equivalent ? "PROVEN" : "FAILED");
  if (!proof.equivalent) {
    std::printf("  mismatch: %s\n", proof.mismatch.c_str());
    return 1;
  }

  std::printf("\n== 3. Export for external tools ==\n");
  {
    std::ofstream f(blif_path);
    netlist::write_blif(mapped.mapped, f, "aes_ip_enc");
  }
  {
    std::ofstream f(verilog_path);
    netlist::write_verilog(ip, f, "aes_ip_enc");
  }
  std::printf("wrote %s and %s\n", blif_path, verilog_path);

  std::printf("\n== 4. Prove the BLIF round trip loss-free ==\n");
  std::ifstream back_in(blif_path);
  const netlist::Netlist back = netlist::read_blif(back_in);
  const auto rt = bdd::prove_equivalent(mapped.mapped, back);
  std::printf("mapped == re-parsed BLIF: %s\n", rt.equivalent ? "PROVEN" : "FAILED");

  std::printf("\n== 5. The same machinery catches a bug ==\n");
  // Mutate one LUT mask in a copy of the BLIF text and re-check.
  std::stringstream text;
  netlist::write_blif(mapped.mapped, text, "aes_ip_enc");
  std::string blif = text.str();
  const auto pos = blif.find("10 1\n01 1\n");  // some XOR cover
  if (pos != std::string::npos) blif.replace(pos, 4, "11 1");  // XOR -> AND-ish
  std::istringstream bad_in(blif);
  const netlist::Netlist bad = netlist::read_blif(bad_in);
  const auto caught = bdd::prove_equivalent(mapped.mapped, bad);
  std::printf("single-cover mutation detected: %s (%s)\n",
              caught.equivalent ? "MISSED — bug!" : "yes",
              caught.mismatch.empty() ? "-" : caught.mismatch.c_str());
  return caught.equivalent ? 1 : 0;
}
