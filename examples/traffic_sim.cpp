// traffic_sim — replay a synthetic many-user workload against the IP farm.
//
// The ROADMAP's north star is serving heavy traffic from very many users;
// this example is that scenario in miniature and doubles as a demo of every
// farm mechanism:
//
//   * a population of users with Zipf-flavoured popularity (a few hot
//     sessions dominate, a long tail churns), arriving in waves,
//   * mixed traffic: short CBC "messages", ECB key blobs, and the
//     occasional long CTR "download" that fans out across all cores,
//   * sessions that end mid-run (end_session), forcing the LRU tables to
//     evict and re-key,
//   * continuous verification: every wave picks a random in-flight request
//     and checks it bit-exactly against the software reference.
//
// Run:  ./build/examples/traffic_sim [users] [waves]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <vector>

#include "aes/cipher.hpp"
#include "aes/modes.hpp"
#include "farm/farm.hpp"

namespace aes = aesip::aes;
namespace farm = aesip::farm;

namespace {

struct User {
  farm::Key128 key{};
  std::uint64_t requests = 0;
};

std::vector<std::uint8_t> reference(const farm::Request& req) {
  const aes::Rijndael cipher = aes::Rijndael::for_key(req.key.view());
  const std::span<const std::uint8_t, 16> iv(req.iv.data(), 16);
  switch (req.mode) {
    case farm::Mode::kEcb:
      return req.encrypt ? aes::ecb_encrypt(cipher, req.payload)
                         : aes::ecb_decrypt(cipher, req.payload);
    case farm::Mode::kCbc:
      return req.encrypt ? aes::cbc_encrypt(cipher, iv, req.payload)
                         : aes::cbc_decrypt(cipher, iv, req.payload);
    case farm::Mode::kCtr:
      return aes::ctr_crypt(cipher, iv, req.payload);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const int n_waves = argc > 2 ? std::atoi(argv[2]) : 8;

  farm::FarmConfig cfg;
  cfg.workers = 4;
  cfg.max_sessions = 64;   // far fewer than users: the binding table must evict
  cfg.queue_capacity = 64;
  farm::Farm f(cfg);

  std::printf("traffic_sim: %zu users over %d waves, farm of %d cores "
              "(%zu-session table)\n\n",
              n_users, n_waves, cfg.workers, cfg.max_sessions);

  std::mt19937 rng(2026);
  std::vector<User> users(n_users);
  for (auto& u : users)
    for (auto& b : u.key) b = static_cast<std::uint8_t>(rng());

  std::uint64_t verified = 0, mismatches = 0, total_requests = 0;
  for (int wave = 0; wave < n_waves; ++wave) {
    // Each wave: a burst of requests, popularity-skewed toward low user ids
    // (min-of-three uniform draws ~ a crude Zipf).
    std::vector<std::future<farm::Result>> inflight;
    std::vector<farm::Request> audited;
    std::vector<std::size_t> audited_idx;
    const int burst = 150;
    for (int i = 0; i < burst; ++i) {
      const std::size_t uid = std::min({rng() % n_users, rng() % n_users, rng() % n_users});
      auto& user = users[uid];
      ++user.requests;

      farm::Request req;
      req.session_id = uid;
      req.key = user.key;
      for (auto& b : req.iv) b = static_cast<std::uint8_t>(rng());
      const unsigned kind = rng() % 10;
      if (kind == 0) {  // the rare long download: CTR, fans out
        req.mode = farm::Mode::kCtr;
        req.payload.resize(96 * 16 + rng() % 16);
      } else if (kind < 6) {  // short CBC message
        req.mode = farm::Mode::kCbc;
        req.encrypt = (rng() & 1) != 0;
        req.payload.resize((1 + rng() % 4) * 16);
      } else {  // ECB blob
        req.mode = farm::Mode::kEcb;
        req.encrypt = (rng() & 1) != 0;
        req.payload.resize((1 + rng() % 2) * 16);
      }
      for (auto& b : req.payload) b = static_cast<std::uint8_t>(rng());

      if (rng() % 25 == 0) {  // audit this one bit-exactly
        audited.push_back(req);
        audited_idx.push_back(inflight.size());
      }
      inflight.push_back(f.submit(std::move(req)));
      ++total_requests;
    }

    // A few users disconnect between waves.
    for (int d = 0; d < 5; ++d) f.end_session(rng() % n_users);

    std::vector<farm::Result> results;
    results.reserve(inflight.size());
    for (auto& fut : inflight) results.push_back(fut.get());
    for (std::size_t a = 0; a < audited.size(); ++a) {
      ++verified;
      if (results[audited_idx[a]].data != reference(audited[a])) ++mismatches;
    }

    const auto st = f.stats();
    std::printf("wave %d: %3zu requests in flight, key hit rate %5.1f%%, "
                "%llu evictions, queue high water %zu\n",
                wave, inflight.size(), st.key_hit_rate() * 100.0,
                static_cast<unsigned long long>(st.session_evictions), st.queue_high_water);
  }

  const auto st = f.stats();
  std::printf("\n%s\n", st.report(cfg.clock_ns).c_str());
  std::printf("audited %llu of %llu requests against aes::Aes128: %s\n",
              static_cast<unsigned long long>(verified),
              static_cast<unsigned long long>(total_requests),
              mismatches ? "MISMATCH" : "all bit-exact");

  const auto hottest =
      std::max_element(users.begin(), users.end(),
                       [](const User& a, const User& b) { return a.requests < b.requests; });
  std::printf("hottest user issued %llu requests (skew is what makes the key-slot "
              "LRU pay off)\n",
              static_cast<unsigned long long>(hottest->requests));
  return mismatches ? 1 : 0;
}
