// Design-space exploration: sweep every device in the database against the
// three IP variants and both S-box storage styles, and chart the
// area/performance frontier the paper's mixed 32/128-bit point sits on.
#include <cstdio>
#include <iostream>
#include <string>

#include "arch/cycle_model.hpp"
#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"
#include "report/table.hpp"
#include "techmap/techmap.hpp"

using namespace aesip;
using report::Table;

int main() {
  std::printf("== Implementation sweep: every variant x every device ==\n\n");
  Table t({"Device", "Variant", "S-boxes", "LCs", "LC%", "Mem bits", "Clk(ns)",
           "Latency(ns)", "Thrpt(Mbps)", "Fits"});
  for (const fpga::Device* dev : fpga::all_devices()) {
    for (const auto mode :
         {core::IpMode::kEncrypt, core::IpMode::kDecrypt, core::IpMode::kBoth}) {
      const char* name = mode == core::IpMode::kEncrypt ? "Encrypt"
                         : mode == core::IpMode::kDecrypt ? "Decrypt"
                                                          : "Both";
      const bool rom = dev->supports_async_rom;
      const auto mapped = techmap::map_to_luts(core::synthesize_ip(mode, rom));
      const auto fit = fpga::fit(mapped, *dev);
      t.add_row({dev->name, name, rom ? "EAB ROM" : "logic",
                 std::to_string(fit.logic_elements), Table::fixed(fit.le_pct, 0),
                 std::to_string(fit.memory_bits), Table::fixed(fit.timing.clock_period_ns, 1),
                 Table::fixed(fit.latency_ns(50), 0),
                 Table::fixed(fit.throughput_mbps(128, 50), 0), fit.fits ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  std::printf("\n== Analytical frontier: cycles vs storage across datapath widths ==\n\n");
  Table t2({"Width", "Cycles/block", "S-box bits", "Relative throughput", "Relative ROM"});
  const double base_cycles = arch::cycles_per_block(arch::paper_mixed());
  const double base_bits = arch::rom_bits(arch::paper_mixed());
  for (const auto& cfg : {arch::serial8(), arch::serial16(), arch::all32(), arch::paper_mixed(),
                          arch::full128()}) {
    t2.add_row({cfg.name, std::to_string(arch::cycles_per_block(cfg)),
                std::to_string(arch::rom_bits(cfg)),
                Table::fixed(base_cycles / arch::cycles_per_block(cfg), 2) + "x",
                Table::fixed(arch::rom_bits(cfg) / base_bits, 2) + "x"});
  }
  t2.print(std::cout);
  std::printf("\nThe mixed 32/128 point gets 2.4x the throughput of all-32-bit for the\n"
              "same 16 kbit of S-box ROM, and a fused 128-bit round would need 3x the\n"
              "ROM for at most 1.25x the speed once the key schedule stalls it — the\n"
              "paper's area/performance argument in one table.\n");
  return 0;
}
