// Bit-parallel netlist evaluator: 64-512 independent simulations per pass.
//
// The scalar Evaluator walks the levelized cell list interpreting one cell
// at a time for one set of net values — fine as a correctness oracle, far
// too slow for netlist-backed farm traffic or large fault campaigns.  This
// evaluator applies the classic SIMD-within-a-register trick (Biham's "A
// Fast New DES Implementation in Software"): each net holds a *lane word*
// whose bit L is that net's value in simulation lane L, so one bitwise op
// advances that many independent blocks at once.
//
// The lane word is no longer a fixed uint64_t.  At construction the
// evaluator resolves a BatchBackend (batch_backend.hpp) — AVX-512 (512
// lanes), AVX2 (256), NEON (128), the portable uint64 fallback (64), or
// the experimental JIT lowering — and sizes every net at `stride()`
// consecutive uint64 words (lanes() = 64 * stride()).  Backend selection
// is runtime CPUID dispatch, overridable via AESIP_BATCH_BACKEND or
// BatchConfig::backend; all backends interpret the SAME compiled tape and
// are bit-exact against the scalar oracle (tests/test_netlist_batch.cpp
// runs the conformance suite once per backend).
//
// The netlist is compiled ONCE at construction into a flat tape of
// word-level ops (batch_tape.hpp):
//
//   * NOT/AND2/OR2/XOR2 become single word ops; MUX2 becomes one kMux.
//   * kLut cells are expanded at compile time into their mux/sum-of-products
//     tree by Shannon decomposition over the LUT mask — constant cofactors
//     collapse into AND/ANDN/OR/ORN/NOT/COPY, so a typical 4-LUT costs a
//     handful of word ops and no per-bit truth-table indexing at runtime.
//   * ROM macros (the 256x8 S-box) stay byte lookups via a transposed
//     gather; the vector backends use fast gathers (AVX-512 byte masks /
//     8x8 bit-matrix transposes) while the u64 baseline keeps the original
//     per-lane loop.
//   * DFF state is kept as packed lane words; clock() samples every enabled
//     D (per-lane enable masking), publishes Q, then settles — the same
//     pre-edge semantics as Evaluator::clock().
//
// The tape is additionally sorted into levelization bands (ops within one
// band are mutually independent), so BatchConfig::threads > 1 shards each
// band across a persistent worker pool with a barrier at every cut — one
// wide pass evaluated by several cores.
//
// A combinational cycle is rejected at construction exactly like the scalar
// evaluator.  The scalar evaluator remains the oracle and keeps the
// single-lane SEU flip_dff path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/batch_backend.hpp"
#include "netlist/batch_tape.hpp"
#include "netlist/netlist.hpp"

namespace aesip::netlist::batchdetail {
struct Kernels;
class JitModule;
}  // namespace aesip::netlist::batchdetail

namespace aesip::netlist {

class BatchEvaluator {
 public:
  using Word = std::uint64_t;
  /// Lanes per uint64 word; lanes() is a multiple of this.
  static constexpr std::size_t kBaseLanes = 64;

  /// Compile `nl` and resolve the backend/thread config (throws
  /// std::runtime_error if an explicitly requested backend is unsupported
  /// on this host, or if the netlist has a combinational cycle).
  explicit BatchEvaluator(const Netlist& nl, const BatchConfig& cfg = {});
  ~BatchEvaluator();
  BatchEvaluator(const BatchEvaluator&) = delete;
  BatchEvaluator& operator=(const BatchEvaluator&) = delete;

  // --- width / dispatch introspection -----------------------------------------
  /// The backend this evaluator resolved to (reported by aesip metrics,
  /// FarmStats and BENCH_simspeed).
  BatchBackend backend() const noexcept { return backend_; }
  /// Independent simulation lanes per pass (64 x stride()).
  std::size_t lanes() const noexcept { return stride_ * kBaseLanes; }
  /// uint64 words per net — the backend's vector width.
  std::size_t stride() const noexcept { return stride_; }
  /// Tape-shard workers cooperating on one settle (1 = no pool).
  int shard_threads() const noexcept { return shard_threads_; }

  // --- whole-word access (64 lanes per word index) ----------------------------
  /// Lane word `wi` of net `n`: bit L = the value in lane 64*wi + L.
  Word word(NetId n, std::size_t wi = 0) const { return words_[n * stride_ + wi]; }
  void set_word(NetId n, Word w, std::size_t wi = 0) { words_[n * stride_ + wi] = w; }
  /// Drive net `n` to the same value in every lane.
  void broadcast(NetId n, bool v) {
    for (std::size_t g = 0; g < stride_; ++g) words_[n * stride_ + g] = v ? ~Word{0} : Word{0};
  }
  void broadcast_bus(const Bus& b, std::uint64_t value);

  // --- per-lane access --------------------------------------------------------
  void set(NetId n, std::size_t lane, bool v) {
    Word& w = words_[n * stride_ + lane / kBaseLanes];
    const Word bit = Word{1} << (lane % kBaseLanes);
    w = v ? (w | bit) : (w & ~bit);
  }
  bool get(NetId n, std::size_t lane) const {
    return (words_[n * stride_ + lane / kBaseLanes] >> (lane % kBaseLanes)) & 1U;
  }
  /// Drive a bus (bit 0 = LSB) in one lane from an integer.
  void set_bus(const Bus& b, std::size_t lane, std::uint64_t value);
  std::uint64_t get_bus(const Bus& b, std::size_t lane) const;

  // --- simulation -------------------------------------------------------------
  /// Propagate through the compiled tape (call after changing inputs).
  void settle();
  /// Rising clock edge in every lane: each DFF whose enable is true in a
  /// lane samples its D in that lane; then the network settles.
  void clock();
  /// Clear all flip-flop state to zero in every lane (no settle — mirrors
  /// the scalar evaluator).
  void reset();

  // --- fault injection --------------------------------------------------------
  /// Flip the DFF state at `index` in EVERY lane and republish Q — the
  /// batch twin of Evaluator::flip_dff, for SEU campaigns and live chaos
  /// injection.  The caller settles, exactly like the scalar evaluator.
  void flip_dff(std::size_t index);
  /// Flip one lane only (per-lane SEU injection at any width; lane-0 flips
  /// track the scalar oracle bit for bit while other lanes stay clean).
  void flip_dff_lane(std::size_t index, std::size_t lane);
  /// Flip an arbitrary lane set: bit L of mask[wi] flips lane 64*wi + L.
  /// Words beyond mask.size() are untouched.
  void flip_dff_mask(std::size_t index, std::span<const Word> mask);

  // --- inspection -------------------------------------------------------------
  std::size_t dff_count() const noexcept { return dffs_.size(); }
  /// Word ops in the compiled tape (compile-quality metric for benches).
  std::size_t tape_size() const noexcept { return tape_.size(); }
  /// Net words plus LUT-expansion temporaries (per lane word; the physical
  /// footprint is word_count() * stride()).
  std::size_t word_count() const noexcept { return slots_; }
  /// Levelization bands in the tape — the shard-cut count.
  std::size_t level_count() const noexcept {
    return level_starts_.empty() ? 0 : level_starts_.size() - 1;
  }

 private:
  using Op = batchdetail::Op;
  using OpKind = batchdetail::OpKind;
  using Dff = batchdetail::Dff;
  using RomSpec = batchdetail::RomSpec;
  static constexpr std::uint32_t kNoWord = batchdetail::kNoWord;

  struct Pool;  // persistent shard workers (batch_eval.cpp)

  std::uint32_t new_temp() { return static_cast<std::uint32_t>(slots_++); }
  /// Compile `mask` over inputs[0..arity) into tape ops; writes the result
  /// into `dst` when given (kNoWord = return any word holding the value).
  std::uint32_t compile_lut(std::uint16_t mask, int arity,
                            const std::uint32_t* inputs, std::uint32_t dst);
  std::uint32_t emit(OpKind kind, std::uint32_t dst, std::uint32_t a,
                     std::uint32_t b = 0, std::uint32_t c = 0);
  /// Sort the tape into levelization bands and record the cut offsets.
  void build_levels();
  void publish_dff(std::size_t index);
  void run_levels(int tid);
  void settle_range(std::size_t begin, std::size_t end);
  static void jit_rom_thunk(void* ctx, unsigned rom);

  const Netlist& nl_;
  BatchBackend backend_;
  std::size_t stride_;
  int shard_threads_ = 1;
  std::size_t slots_ = 0;    ///< logical lane-word slots (nets + temps)
  std::vector<Word> words_;  ///< slots_ * stride_ physical words
  std::vector<Op> tape_;
  std::vector<std::uint32_t> level_starts_;  ///< tape offsets of each band
  std::vector<RomSpec> roms_;
  std::vector<Dff> dffs_;
  std::vector<Word> dff_state_;   ///< dffs x stride
  std::vector<Word> dff_sample_;  ///< clock() scratch (no per-call alloc)
  std::uint32_t const0_word_;
  std::uint32_t const1_word_;
  const batchdetail::Kernels* kern_ = nullptr;
  std::unique_ptr<batchdetail::JitModule> jit_;  ///< kJit only
  std::unique_ptr<Pool> pool_;                   ///< shard_threads_ > 1 only
};

}  // namespace aesip::netlist
