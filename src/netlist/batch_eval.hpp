// Bit-parallel netlist evaluator: 64 independent simulations per pass.
//
// The scalar Evaluator walks the levelized cell list interpreting one cell
// at a time for one set of net values — fine as a correctness oracle, far
// too slow for netlist-backed farm traffic or large fault campaigns.  This
// evaluator applies the classic SIMD-within-a-register trick (Biham's "A
// Fast New DES Implementation in Software"): each net holds one uint64_t
// *lane word* whose bit L is that net's value in simulation lane L, so one
// bitwise op advances 64 independent blocks at once.
//
// The netlist is compiled ONCE at construction into a flat tape of
// word-level ops:
//
//   * NOT/AND2/OR2/XOR2 become single word ops; MUX2 becomes two.
//   * kLut cells are expanded at compile time into their mux/sum-of-products
//     tree by Shannon decomposition over the LUT mask — constant cofactors
//     collapse into AND/ANDN/OR/ORN/NOT/COPY, so a typical 4-LUT costs a
//     handful of word ops and no per-bit truth-table indexing at runtime.
//   * ROM macros (the 256x8 S-box) stay byte lookups: a transposed gather
//     reads each lane's 8 address bits out of the address lane words, looks
//     the byte up, and scatters its 8 data bits back into the output words.
//   * DFF state is kept as packed lane words; clock() samples every enabled
//     D (per-lane enable masking), publishes Q, then settles — the same
//     pre-edge semantics as Evaluator::clock().
//
// A combinational cycle is rejected at construction exactly like the scalar
// evaluator.  BatchEvaluator is verified bit-for-bit against Evaluator over
// every synthesized block (tests/test_netlist_batch.cpp); the scalar
// evaluator remains the oracle and keeps the single-lane SEU flip_dff path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace aesip::netlist {

class BatchEvaluator {
 public:
  /// Lanes per pass: one bit per lane in a 64-bit word.
  static constexpr std::size_t kLanes = 64;
  using Word = std::uint64_t;

  explicit BatchEvaluator(const Netlist& nl);

  // --- whole-word access (all 64 lanes at once) ------------------------------
  /// Lane word of net `n`: bit L = the value in lane L.
  Word word(NetId n) const { return words_[n]; }
  void set_word(NetId n, Word w) { words_[n] = w; }
  /// Drive net `n` to the same value in every lane.
  void broadcast(NetId n, bool v) { words_[n] = v ? ~Word{0} : Word{0}; }
  void broadcast_bus(const Bus& b, std::uint64_t value);

  // --- per-lane access --------------------------------------------------------
  void set(NetId n, std::size_t lane, bool v) {
    const Word bit = Word{1} << lane;
    words_[n] = v ? (words_[n] | bit) : (words_[n] & ~bit);
  }
  bool get(NetId n, std::size_t lane) const { return (words_[n] >> lane) & 1U; }
  /// Drive a bus (bit 0 = LSB) in one lane from an integer.
  void set_bus(const Bus& b, std::size_t lane, std::uint64_t value);
  std::uint64_t get_bus(const Bus& b, std::size_t lane) const;

  // --- simulation -------------------------------------------------------------
  /// Propagate through the compiled tape (call after changing inputs).
  void settle();
  /// Rising clock edge in every lane: each DFF whose enable is true in a
  /// lane samples its D in that lane; then the network settles.
  void clock();
  /// Clear all flip-flop state to zero in every lane (no settle — mirrors
  /// the scalar evaluator).
  void reset();

  // --- fault injection --------------------------------------------------------
  /// XOR the DFF state at `index` with `lanes` (bit L set = flip lane L;
  /// default: every lane) and republish Q — the batch twin of
  /// Evaluator::flip_dff, for SEU campaigns and live chaos injection.
  /// The caller settles, exactly like the scalar evaluator.
  void flip_dff(std::size_t index, Word lanes = ~Word{0}) {
    dff_state_[index] ^= lanes;
    words_[dffs_[index].q] = dff_state_[index];
  }

  // --- inspection -------------------------------------------------------------
  std::size_t dff_count() const noexcept { return dffs_.size(); }
  /// Word ops in the compiled tape (compile-quality metric for benches).
  std::size_t tape_size() const noexcept { return tape_.size(); }
  /// Net words plus LUT-expansion temporaries.
  std::size_t word_count() const noexcept { return words_.size(); }

 private:
  // One word-level op.  kMux is (a & c) | (~a & b) — a = select, b = low,
  // c = high, matching kMux2's in0/in1/in2.  kAndn is ~a & b and kOrn is
  // ~a | b: the collapsed Shannon cofactors (hi==0 / lo==1).
  enum class OpKind : std::uint8_t { kCopy, kNot, kAnd, kAndn, kOr, kOrn, kXor, kMux, kRom };
  struct Op {
    OpKind kind;
    std::uint32_t dst;  // word index; for kRom: the rom index
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
  };
  struct Dff {
    std::uint32_t d;       ///< word index of D
    std::uint32_t q;       ///< word index of Q
    std::uint32_t enable;  ///< word index of clock-enable, or kNoWord
  };
  static constexpr std::uint32_t kNoWord = 0xffffffffu;

  std::uint32_t new_temp();
  /// Compile `mask` over inputs[0..arity) into tape ops; writes the result
  /// into `dst` when given (kNoWord = return any word holding the value).
  std::uint32_t compile_lut(std::uint16_t mask, int arity,
                            const std::uint32_t* inputs, std::uint32_t dst);
  std::uint32_t emit(OpKind kind, std::uint32_t dst, std::uint32_t a,
                     std::uint32_t b = 0, std::uint32_t c = 0);

  const Netlist& nl_;
  std::vector<Word> words_;  ///< one per net, then LUT temporaries
  std::vector<Op> tape_;
  std::vector<Dff> dffs_;
  std::vector<Word> dff_state_;
  std::vector<Word> dff_sample_;  ///< clock() scratch (no per-call alloc)
  std::uint32_t const0_word_;
  std::uint32_t const1_word_;
};

}  // namespace aesip::netlist
