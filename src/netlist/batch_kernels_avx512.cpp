// AVX-512 backend: 512 lanes per pass (stride 8).
//
// Compiled with -mavx512f -mavx512bw; runtime availability is CPUID-gated
// by backend_supported() (F for the 512-bit word ops, BW for the byte-mask
// ROM gather).  kMux folds into a single vpternlogq.  The ROM gather is
// where AVX-512 really pays: a lane word IS a __mmask64, so the 8 address
// lane words become 64 packed address bytes in 8 masked byte-adds, and the
// 8 data lane words come back as 8 vptestmb masks — the per-lane loop that
// dominated the 64-lane profile collapses to one table lookup per lane.

#include "netlist/batch_kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace aesip::netlist::batchdetail {

namespace {

struct OpsAvx512 {
  static constexpr std::size_t kStride = 8;
  using V = __m512i;
  static V load(const Word* p) { return _mm512_loadu_si512(p); }
  static void store(Word* p, V v) { _mm512_storeu_si512(p, v); }
  static V vnot(V a) { return _mm512_ternarylogic_epi64(a, a, a, 0x0F); }
  static V vand(V a, V b) { return _mm512_and_si512(a, b); }
  static V vandn(V a, V b) { return _mm512_andnot_si512(a, b); }  // ~a & b
  static V vor(V a, V b) { return _mm512_or_si512(a, b); }
  // ~a | b: ternlog truth table over (a, b, _) — 0 only where a=1, b=0.
  static V vorn(V a, V b) { return _mm512_ternarylogic_epi64(a, b, b, 0xCF); }
  static V vxor(V a, V b) { return _mm512_xor_si512(a, b); }
  // s ? hi : lo — one vpternlogq, imm 0xCA over (s, hi, lo).
  static V vmux(V s, V lo, V hi) { return _mm512_ternarylogic_epi64(s, hi, lo, 0xCA); }

  static void rom(const RomSpec& r, Word* w) {
    constexpr std::size_t S = kStride;
    for (std::size_t g = 0; g < S; ++g) {
      // Build the 64 address bytes of lane group g: address bit i's lane
      // word is exactly the byte-lane mask for adding 1 << i.
      __m512i acc = _mm512_setzero_si512();
      for (int i = 0; i < 8; ++i) {
        const __mmask64 m = static_cast<__mmask64>(w[std::size_t{r.addr[i]} * S + g]);
        acc = _mm512_mask_add_epi8(acc, m, acc, _mm512_set1_epi8(static_cast<char>(1 << i)));
      }
      alignas(64) std::uint8_t buf[64];
      _mm512_store_si512(buf, acc);
      for (int j = 0; j < 64; ++j) buf[j] = r.table[buf[j]];
      const __m512i data = _mm512_load_si512(buf);
      for (int i = 0; i < 8; ++i)
        w[std::size_t{r.out[i]} * S + g] = static_cast<Word>(
            _mm512_test_epi8_mask(data, _mm512_set1_epi8(static_cast<char>(1 << i))));
    }
  }
};

#include "netlist/batch_kernels.inl"

const Kernels kAvx512Kernels{OpsAvx512::kStride, &settle_range<OpsAvx512>,
                             &clock_dffs_t<OpsAvx512>};

void rom_gather_avx512_impl(const RomSpec& r, Word* w, std::size_t) {
  OpsAvx512::rom(r, w);  // stride is fixed at 8 by the policy
}

}  // namespace

const Kernels* kernels_avx512() { return &kAvx512Kernels; }

RomGatherFn rom_gather_avx512() { return &rom_gather_avx512_impl; }

}  // namespace aesip::netlist::batchdetail

#else  // not x86-64: backend not compiled in

namespace aesip::netlist::batchdetail {
const Kernels* kernels_avx512() { return nullptr; }
RomGatherFn rom_gather_avx512() { return nullptr; }
}  // namespace aesip::netlist::batchdetail

#endif
