// Portable uint64 backend (64 lanes) + the shared ROM gather helpers.
//
// This is the pre-widening cost model preserved verbatim: one word per
// net, the per-lane bit-by-bit ROM gather.  It is the fallback on hosts
// with no vector unit and the baseline BENCH_simspeed's ≥4x gate divides
// by, so it deliberately does NOT use the transpose-based ROM fast path.

#include "netlist/batch_kernels.hpp"

namespace aesip::netlist::batchdetail {

void rom_gather_u64(const RomSpec& r, Word* w, std::size_t stride) {
  for (std::size_t g = 0; g < stride; ++g) {
    Word a[8];
    Word o[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 8; ++i) a[i] = w[std::size_t{r.addr[i]} * stride + g];
    for (std::size_t lane = 0; lane < 64; ++lane) {
      std::size_t addr = 0;
      for (int i = 0; i < 8; ++i) addr |= ((a[i] >> lane) & 1U) << i;
      const std::uint8_t data = r.table[addr];
      for (int i = 0; i < 8; ++i) o[i] |= Word{(data >> i) & 1U} << lane;
    }
    for (int i = 0; i < 8; ++i) w[std::size_t{r.out[i]} * stride + g] = o[i];
  }
}

namespace {

/// 8x8 bit-matrix transpose of a uint64 (Hacker's Delight): bit (8r + c)
/// swaps with bit (8c + r).
inline std::uint64_t transpose8(std::uint64_t x) {
  std::uint64_t t;
  t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

}  // namespace

void rom_gather_transpose(const RomSpec& r, Word* w, std::size_t stride) {
  for (std::size_t g = 0; g < stride; ++g) {
    Word a[8];
    Word o[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 8; ++i) a[i] = w[std::size_t{r.addr[i]} * stride + g];
    for (int blk = 0; blk < 8; ++blk) {  // 8 lanes per transpose block
      // Row i of t = address bit i across lanes blk*8..blk*8+7; after the
      // transpose, byte j of t = lane (blk*8+j)'s address.
      std::uint64_t t = 0;
      for (int i = 0; i < 8; ++i) t |= ((a[i] >> (8 * blk)) & 0xFFu) << (8 * i);
      t = transpose8(t);
      std::uint64_t u = 0;
      for (int j = 0; j < 8; ++j)
        u |= std::uint64_t{r.table[(t >> (8 * j)) & 0xFFu]} << (8 * j);
      u = transpose8(u);  // back: byte i = data bit i across the 8 lanes
      for (int i = 0; i < 8; ++i) o[i] |= ((u >> (8 * i)) & 0xFFu) << (8 * blk);
    }
    for (int i = 0; i < 8; ++i) w[std::size_t{r.out[i]} * stride + g] = o[i];
  }
}

void clock_dffs_generic(const Dff* dffs, std::size_t n, Word* w, Word* state, Word* sample,
                        std::size_t stride) {
  for (std::size_t i = 0; i < n; ++i) {
    const Dff& f = dffs[i];
    for (std::size_t g = 0; g < stride; ++g) {
      const Word d = w[std::size_t{f.d} * stride + g];
      if (f.enable == kNoWord) {
        sample[i * stride + g] = d;
      } else {
        const Word en = w[std::size_t{f.enable} * stride + g];
        sample[i * stride + g] = (en & d) | (~en & state[i * stride + g]);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Dff& f = dffs[i];
    for (std::size_t g = 0; g < stride; ++g) {
      const Word v = sample[i * stride + g];
      state[i * stride + g] = v;
      w[std::size_t{f.q} * stride + g] = v;
    }
  }
}

namespace {

struct OpsU64 {
  static constexpr std::size_t kStride = 1;
  using V = Word;
  static V load(const Word* p) { return *p; }
  static void store(Word* p, V v) { *p = v; }
  static V vnot(V a) { return ~a; }
  static V vand(V a, V b) { return a & b; }
  static V vandn(V a, V b) { return ~a & b; }
  static V vor(V a, V b) { return a | b; }
  static V vorn(V a, V b) { return ~a | b; }
  static V vxor(V a, V b) { return a ^ b; }
  static V vmux(V s, V lo, V hi) { return (s & hi) | (~s & lo); }
  static void rom(const RomSpec& r, Word* w) { rom_gather_u64(r, w, kStride); }
};

#include "netlist/batch_kernels.inl"

const Kernels kU64Kernels{OpsU64::kStride, &settle_range<OpsU64>, &clock_dffs_t<OpsU64>};

}  // namespace

const Kernels* kernels_u64() { return &kU64Kernels; }

}  // namespace aesip::netlist::batchdetail
