#include "netlist/batch_backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "netlist/batch_jit.hpp"
#include "netlist/batch_kernels.hpp"

namespace aesip::netlist {

const char* backend_name(BatchBackend b) noexcept {
  switch (b) {
    case BatchBackend::kU64: return "u64";
    case BatchBackend::kNeon: return "neon";
    case BatchBackend::kAvx2: return "avx2";
    case BatchBackend::kAvx512: return "avx512";
    case BatchBackend::kJit: return "jit";
  }
  return "?";
}

std::optional<BatchBackend> backend_from_name(std::string_view name) noexcept {
  if (name == "u64") return BatchBackend::kU64;
  if (name == "neon") return BatchBackend::kNeon;
  if (name == "avx2") return BatchBackend::kAvx2;
  if (name == "avx512") return BatchBackend::kAvx512;
  if (name == "jit") return BatchBackend::kJit;
  return std::nullopt;
}

std::size_t backend_lanes(BatchBackend b) noexcept {
  switch (b) {
    case BatchBackend::kU64: return 64;
    case BatchBackend::kNeon: return 128;
    case BatchBackend::kAvx2: return 256;
    case BatchBackend::kAvx512: return 512;
    case BatchBackend::kJit: return 512;
  }
  return 64;
}

namespace {

// __builtin_cpu_supports demands literal arguments, hence one helper per
// feature rather than a string-parameter wrapper.
#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }
bool cpu_has_avx512() {
  // F for the 512-bit word ops, BW for the byte-granular ROM gather.
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
}
#else
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512() { return false; }
#endif

}  // namespace

bool backend_supported(BatchBackend b) {
  switch (b) {
    case BatchBackend::kU64:
      return true;
    case BatchBackend::kNeon:
      return batchdetail::kernels_neon() != nullptr;  // baseline ISA on aarch64
    case BatchBackend::kAvx2:
      return batchdetail::kernels_avx2() != nullptr && cpu_has_avx2();
    case BatchBackend::kAvx512:
      return batchdetail::kernels_avx512() != nullptr && cpu_has_avx512();
    case BatchBackend::kJit:
      return batchdetail::jit_toolchain_available();
  }
  return false;
}

BatchBackend detect_backend() {
  if (backend_supported(BatchBackend::kAvx512)) return BatchBackend::kAvx512;
  if (backend_supported(BatchBackend::kAvx2)) return BatchBackend::kAvx2;
  if (backend_supported(BatchBackend::kNeon)) return BatchBackend::kNeon;
  return BatchBackend::kU64;
}

std::optional<BatchBackend> env_forced_backend() {
  const char* env = std::getenv("AESIP_BATCH_BACKEND");
  if (!env || !*env) return std::nullopt;
  return backend_from_name(env);
}

BatchBackend resolve_backend(const BatchConfig& cfg) {
  std::optional<BatchBackend> forced = cfg.backend;
  if (!forced) forced = env_forced_backend();
  if (!forced) return detect_backend();
  if (!backend_supported(*forced))
    throw std::runtime_error(std::string("netlist batch backend '") + backend_name(*forced) +
                             "' is not supported on this host");
  return *forced;
}

int resolve_shard_threads(const BatchConfig& cfg) {
  int threads = cfg.threads;
  if (threads == 0) {
    if (const char* env = std::getenv("AESIP_BATCH_THREADS"); env && *env)
      threads = std::atoi(env);
  }
  return std::clamp(threads, 1, 64);
}

}  // namespace aesip::netlist
