// Netlist interchange: structural Verilog and BLIF writers, BLIF reader.
//
// The synthesized IP can leave this repository: write_verilog emits a
// self-contained structural module (assign network, clocked always blocks,
// ROM functions) for simulation or synthesis in standard tools, and
// write_blif emits the academic interchange format (ABC, SIS, VTR...).
// read_blif brings a BLIF model back as a Netlist; the round trip is
// verified *formally* in the test suite (write -> read -> BDD equivalence
// against the original).
//
// BLIF has no clock-enable on latches, so enabled flip-flops are exported
// as an explicit hold mux in front of a plain latch — semantically
// identical, which is exactly what the BDD next-state comparison checks.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace aesip::netlist {

/// Emit structural Verilog-2001. If the netlist contains flip-flops and no
/// input named "clk", a clk port is added.
void write_verilog(const Netlist& nl, std::ostream& os, const std::string& module_name);

/// Emit BLIF (.model/.inputs/.outputs/.names/.latch).
void write_blif(const Netlist& nl, std::ostream& os, const std::string& model_name);

/// Parse a BLIF model produced by write_blif (or any single-model BLIF
/// using .names/.latch with 0/1/- covers). .names wider than 4 inputs are
/// decomposed into mux trees of LUT cells.  Throws std::runtime_error on
/// malformed input.
Netlist read_blif(std::istream& is);

}  // namespace aesip::netlist
