// Templated kernel bodies, instantiated once per backend TU.
//
// The policy `O` supplies the vector type V (covering exactly O::kStride
// 64-bit words), load/store, the bitwise ops, and the backend's ROM
// gather.  Each tape op compiles to one load/op/store group; kMux is the
// only three-input op (AVX-512 folds it into a single vpternlogq).
//
// Included (not compiled standalone) by batch_kernels_{u64,neon,avx2,
// avx512}.cpp AFTER the policy definition, inside
// aesip::netlist::batchdetail.

template <class O>
void settle_range(const Op* ops, std::size_t begin, std::size_t end, Word* w,
                  const RomSpec* roms) {
  constexpr std::size_t S = O::kStride;
  for (std::size_t i = begin; i < end; ++i) {
    const Op& op = ops[i];
    if (op.kind == OpKind::kRom) {
      O::rom(roms[op.dst], w);
      continue;
    }
    Word* d = w + std::size_t{op.dst} * S;
    const Word* a = w + std::size_t{op.a} * S;
    const Word* b = w + std::size_t{op.b} * S;
    switch (op.kind) {
      case OpKind::kCopy:
        O::store(d, O::load(a));
        break;
      case OpKind::kNot:
        O::store(d, O::vnot(O::load(a)));
        break;
      case OpKind::kAnd:
        O::store(d, O::vand(O::load(a), O::load(b)));
        break;
      case OpKind::kAndn:  // ~a & b
        O::store(d, O::vandn(O::load(a), O::load(b)));
        break;
      case OpKind::kOr:
        O::store(d, O::vor(O::load(a), O::load(b)));
        break;
      case OpKind::kOrn:  // ~a | b
        O::store(d, O::vorn(O::load(a), O::load(b)));
        break;
      case OpKind::kXor:
        O::store(d, O::vxor(O::load(a), O::load(b)));
        break;
      case OpKind::kMux: {  // (a & c) | (~a & b)
        const Word* c = w + std::size_t{op.c} * S;
        O::store(d, O::vmux(O::load(a), O::load(b), O::load(c)));
        break;
      }
      case OpKind::kRom:
        break;  // handled above
    }
  }
}

template <class O>
void clock_dffs_t(const Dff* dffs, std::size_t n, Word* w, Word* state, Word* sample) {
  constexpr std::size_t S = O::kStride;
  for (std::size_t i = 0; i < n; ++i) {
    const Dff& f = dffs[i];
    const Word* d = w + std::size_t{f.d} * S;
    Word* smp = sample + i * S;
    if (f.enable == kNoWord) {
      O::store(smp, O::load(d));
    } else {
      const Word* en = w + std::size_t{f.enable} * S;
      const Word* st = state + i * S;
      // en ? d : state — the same bit-select as kMux.
      O::store(smp, O::vmux(O::load(en), O::load(st), O::load(d)));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Dff& f = dffs[i];
    Word* st = state + i * S;
    Word* q = w + std::size_t{f.q} * S;
    const auto v = O::load(sample + i * S);
    O::store(st, v);
    O::store(q, v);
  }
}
