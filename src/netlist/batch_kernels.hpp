// Per-backend settle/clock kernels over the shared batch tape.
//
// Each native backend lives in its own translation unit compiled with the
// matching ISA flags (batch_kernels_u64.cpp always; _avx2/_avx512 on
// x86-64 with -mavx2 / -mavx512f -mavx512bw; _neon on aarch64).  A TU
// whose ISA is not compiled in returns nullptr from its kernels_*()
// accessor, so dispatch stays a plain runtime table with no weak-symbol
// tricks.  The kernel's vector covers exactly `stride` 64-bit words, so
// every tape op is one vector instruction; kernels take an op RANGE so the
// levelization-cut shard pool can split one settle across workers.
#pragma once

#include <cstddef>

#include "netlist/batch_tape.hpp"

namespace aesip::netlist::batchdetail {

struct Kernels {
  std::size_t stride;  ///< 64-bit words per net (lanes = 64 * stride)
  /// Interpret ops [begin, end) of the tape (any topologically closed
  /// range — a full settle or one shard of one level).
  void (*settle)(const Op* ops, std::size_t begin, std::size_t end, Word* w,
                 const RomSpec* roms);
  /// Sample every enabled D (pre-edge, per-lane enable masking), then
  /// publish Q — Evaluator::clock() semantics, lanes wide.  The caller
  /// settles afterwards.
  void (*clock_dffs)(const Dff* dffs, std::size_t n, Word* w, Word* state, Word* sample);
};

const Kernels* kernels_u64();
const Kernels* kernels_neon();    // nullptr unless built for aarch64
const Kernels* kernels_avx2();    // nullptr unless built for x86-64
const Kernels* kernels_avx512();  // nullptr unless built for x86-64

/// The original per-lane ROM gather (bit-by-bit transposed lookup) — the
/// 64-lane baseline path, kept byte-identical so BENCH_simspeed's ≥4x gate
/// measures against the pre-widening cost model.
void rom_gather_u64(const RomSpec& r, Word* w, std::size_t stride);

/// Fast portable gather: 8x8 bit-matrix transposes turn the 8 address lane
/// words into packed address bytes (and data bytes back into lane words),
/// so the per-lane work collapses to one table lookup.  Used by the NEON
/// and AVX2 backends and the JIT's ROM callback on non-AVX-512 hosts.
void rom_gather_transpose(const RomSpec& r, Word* w, std::size_t stride);

using RomGatherFn = void (*)(const RomSpec& r, Word* w, std::size_t stride);

/// The AVX-512 byte-mask ROM gather (requires stride == 8); nullptr when
/// the AVX-512 TU is not compiled in.  Runtime CPU support is the
/// caller's check — this is the JIT backend's ROM callback fast path.
RomGatherFn rom_gather_avx512();

/// Stride-generic uint64 DFF clock (the JIT backend's clock path — its
/// stride has no dedicated interpreter kernel).
void clock_dffs_generic(const Dff* dffs, std::size_t n, Word* w, Word* state, Word* sample,
                        std::size_t stride);

}  // namespace aesip::netlist::batchdetail
