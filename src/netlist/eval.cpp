#include "netlist/eval.hpp"

#include <stdexcept>

namespace aesip::netlist {

namespace {

/// Node in the scheduling graph: cells and ROM macros unified.
struct Node {
  bool is_rom;
  std::size_t index;
};

}  // namespace

Evaluator::Evaluator(const Netlist& nl) : nl_(nl), values_(nl.net_count(), 0) {
  // Build producer map: which node drives each net (combinational only).
  const auto& cells = nl.cells();
  const auto& roms = nl.roms();
  std::vector<Node> nodes;
  nodes.reserve(cells.size() + roms.size());
  std::vector<std::int32_t> producer(nl.net_count(), -1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (c.kind == CellKind::kDff) {
      dff_cells_.push_back(i);
      continue;  // Q is a state source, not a combinational product
    }
    if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
    producer[c.out] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{false, i});
  }
  for (std::size_t i = 0; i < roms.size(); ++i) {
    for (const NetId o : roms[i].out) producer[o] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{true, i});
  }
  dff_state_.assign(dff_cells_.size(), 0);

  // Kahn topological sort over combinational dependencies.
  std::vector<int> pending(nodes.size(), 0);
  std::vector<std::vector<std::int32_t>> consumers(nodes.size());
  auto each_fanin = [&](const Node& n, auto&& fn) {
    if (n.is_rom) {
      for (const NetId a : roms[n.index].addr) fn(a);
    } else {
      const Cell& c = cells[n.index];
      for (int k = 0; k < c.fanin_count(); ++k)
        if (c.in[static_cast<std::size_t>(k)] != kNoNet) fn(c.in[static_cast<std::size_t>(k)]);
    }
  };
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    each_fanin(nodes[ni], [&](NetId fanin) {
      const std::int32_t p = producer[fanin];
      if (p >= 0) {
        ++pending[ni];
        consumers[static_cast<std::size_t>(p)].push_back(static_cast<std::int32_t>(ni));
      }
    });
  }
  std::vector<std::int32_t> ready;
  for (std::size_t ni = 0; ni < nodes.size(); ++ni)
    if (pending[ni] == 0) ready.push_back(static_cast<std::int32_t>(ni));
  order_.reserve(nodes.size());
  while (!ready.empty()) {
    const std::int32_t ni = ready.back();
    ready.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(ni)];
    order_.push_back(Step{n.is_rom, n.index});
    for (const std::int32_t consumer : consumers[static_cast<std::size_t>(ni)])
      if (--pending[static_cast<std::size_t>(consumer)] == 0) ready.push_back(consumer);
  }
  if (order_.size() != nodes.size())
    throw std::runtime_error("netlist::Evaluator: combinational cycle detected");

  // Constants are fixed for the evaluator's lifetime.
  values_[nl.const1()] = 1;
  reset();
}

void Evaluator::set_bus(const Bus& b, std::uint64_t value) {
  for (std::size_t i = 0; i < b.size(); ++i) set(b[i], (value >> i) & 1U);
}

std::uint64_t Evaluator::get_bus(const Bus& b) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < b.size(); ++i)
    if (get(b[i])) v |= std::uint64_t{1} << i;
  return v;
}

void Evaluator::settle() {
  const auto& cells = nl_.cells();
  const auto& roms = nl_.roms();
  for (const Step& s : order_) {
    if (s.is_rom) {
      const Rom& r = roms[s.index];
      std::size_t addr = 0;
      for (int i = 0; i < 8; ++i)
        if (values_[r.addr[static_cast<std::size_t>(i)]]) addr |= std::size_t{1} << i;
      const std::uint8_t data = r.table[addr];
      for (int i = 0; i < 8; ++i)
        values_[r.out[static_cast<std::size_t>(i)]] = (data >> i) & 1U;
      continue;
    }
    const Cell& c = cells[s.index];
    std::uint8_t v = 0;
    switch (c.kind) {
      case CellKind::kNot:
        v = values_[c.in[0]] ^ 1U;
        break;
      case CellKind::kAnd2:
        v = values_[c.in[0]] & values_[c.in[1]];
        break;
      case CellKind::kOr2:
        v = values_[c.in[0]] | values_[c.in[1]];
        break;
      case CellKind::kXor2:
        v = values_[c.in[0]] ^ values_[c.in[1]];
        break;
      case CellKind::kMux2:
        v = values_[c.in[0]] ? values_[c.in[2]] : values_[c.in[1]];
        break;
      case CellKind::kLut: {
        std::uint16_t idx = 0;
        for (int k = 0; k < c.lut_arity; ++k)
          if (values_[c.in[static_cast<std::size_t>(k)]]) idx |= static_cast<std::uint16_t>(1U << k);
        v = (c.lut_mask >> idx) & 1U;
        break;
      }
      default:
        continue;
    }
    values_[c.out] = v;
  }
}

void Evaluator::clock() {
  const auto& cells = nl_.cells();
  // Sample every enabled D first (pre-edge values), then publish.
  std::vector<std::uint8_t> sampled(dff_cells_.size());
  for (std::size_t i = 0; i < dff_cells_.size(); ++i) {
    const Cell& c = cells[dff_cells_[i]];
    const bool enabled = c.in[1] == kNoNet || values_[c.in[1]] != 0;
    sampled[i] = enabled ? values_[c.in[0]] : dff_state_[i];
  }
  dff_state_ = std::move(sampled);
  for (std::size_t i = 0; i < dff_cells_.size(); ++i)
    values_[nl_.cells()[dff_cells_[i]].out] = dff_state_[i];
  settle();
}

void Evaluator::flip_dff(std::size_t index) {
  dff_state_[index] ^= 1U;
  values_[nl_.cells()[dff_cells_[index]].out] = dff_state_[index];
}

void Evaluator::reset() {
  dff_state_.assign(dff_cells_.size(), 0);
  for (std::size_t i = 0; i < dff_cells_.size(); ++i)
    values_[nl_.cells()[dff_cells_[i]].out] = 0;
}

}  // namespace aesip::netlist
