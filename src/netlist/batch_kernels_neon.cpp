// NEON backend: 128 lanes per pass (stride 2), aarch64 only.
//
// AdvSIMD is baseline on aarch64, so no special compile flags and no
// CPUID question — backend_supported(kNeon) is simply "built for
// aarch64".  vbslq_u64 is the bit-select kMux wants; the ROM gather uses
// the portable transpose path.

#include "netlist/batch_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace aesip::netlist::batchdetail {

namespace {

struct OpsNeon {
  static constexpr std::size_t kStride = 2;
  using V = uint64x2_t;
  static V load(const Word* p) { return vld1q_u64(p); }
  static void store(Word* p, V v) { vst1q_u64(p, v); }
  static V vnot(V a) { return vreinterpretq_u64_u8(vmvnq_u8(vreinterpretq_u8_u64(a))); }
  static V vand(V a, V b) { return vandq_u64(a, b); }
  static V vandn(V a, V b) { return vbicq_u64(b, a); }  // b & ~a
  static V vor(V a, V b) { return vorrq_u64(a, b); }
  static V vorn(V a, V b) { return vornq_u64(b, a); }  // b | ~a
  static V vxor(V a, V b) { return veorq_u64(a, b); }
  static V vmux(V s, V lo, V hi) { return vbslq_u64(s, hi, lo); }  // s ? hi : lo
  static void rom(const RomSpec& r, Word* w) { rom_gather_transpose(r, w, kStride); }
};

#include "netlist/batch_kernels.inl"

const Kernels kNeonKernels{OpsNeon::kStride, &settle_range<OpsNeon>, &clock_dffs_t<OpsNeon>};

}  // namespace

const Kernels* kernels_neon() { return &kNeonKernels; }

}  // namespace aesip::netlist::batchdetail

#else  // not aarch64: backend not compiled in

namespace aesip::netlist::batchdetail {
const Kernels* kernels_neon() { return nullptr; }
}  // namespace aesip::netlist::batchdetail

#endif
