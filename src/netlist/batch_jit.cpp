#include "netlist/batch_jit.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>
#define AESIP_JIT_POSIX 1
#else
#define AESIP_JIT_POSIX 0
#endif

namespace aesip::netlist::batchdetail {

namespace {

#if AESIP_JIT_POSIX

/// Scratch directory + generated files, removed on scope exit (the .so
/// stays mapped after dlopen, so unlinking it is safe).
struct TempDir {
  std::string path;
  std::vector<std::string> files;
  ~TempDir() {
    for (const auto& f : files) ::unlink(f.c_str());
    if (!path.empty()) ::rmdir(path.c_str());
  }
};

bool make_temp_dir(TempDir& dir) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base && *base ? base : "/tmp") + "/aesip-jit-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (!::mkdtemp(buf.data())) return false;
  dir.path.assign(buf.data());
  return true;
}

bool write_file(TempDir& dir, const std::string& name, const std::string& text) {
  const std::string full = dir.path + "/" + name;
  std::FILE* f = std::fopen(full.c_str(), "w");
  if (!f) return false;
  dir.files.push_back(full);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

/// Compile `src` in `dir` to jit.so; on failure, return false with the
/// compiler's stderr in `error`.
bool compile_so(TempDir& dir, const std::string& error_tag, std::string& error) {
  const char* cxx = std::getenv("AESIP_JIT_CXX");
  if (!cxx || !*cxx) cxx = "c++";
  const std::string err_file = dir.path + "/cc.err";
  dir.files.push_back(err_file);
  dir.files.push_back(dir.path + "/jit.so");
  const std::string cmd = std::string(cxx) + " -O1 -march=native -fPIC -shared -o " + dir.path +
                          "/jit.so " + dir.path + "/jit.cpp 2> " + err_file;
  const int rc = std::system(cmd.c_str());
  if (rc == 0) return true;
  std::string diag;
  if (std::FILE* f = std::fopen(err_file.c_str(), "r")) {
    char line[512];
    for (int i = 0; i < 4 && std::fgets(line, sizeof line, f); ++i) diag += line;
    std::fclose(f);
  }
  error = error_tag + ": compiler exited " + std::to_string(rc) +
          (diag.empty() ? std::string() : (" — " + diag));
  return false;
}

std::string lower_tape(const std::vector<Op>& tape, std::size_t stride) {
  std::ostringstream out;
  out << "// generated straight-line settle for the aesip batch tape\n"
         "typedef unsigned long long u64;\n"
         "typedef u64 V __attribute__((vector_size("
      << 8 * stride
      << "), may_alias, aligned(8)));\n"
         "#define W(i) (*(V*)(w + "
      << stride
      << "ull * (i)))\n"
         "extern \"C\" void aesip_jit_settle(u64* w, void* ctx,\n"
         "                                   void (*rom_fn)(void* ctx, unsigned rom)) {\n";
  for (const Op& op : tape) {
    switch (op.kind) {
      case OpKind::kCopy:
        out << "  W(" << op.dst << ") = W(" << op.a << ");\n";
        break;
      case OpKind::kNot:
        out << "  W(" << op.dst << ") = ~W(" << op.a << ");\n";
        break;
      case OpKind::kAnd:
        out << "  W(" << op.dst << ") = W(" << op.a << ") & W(" << op.b << ");\n";
        break;
      case OpKind::kAndn:
        out << "  W(" << op.dst << ") = ~W(" << op.a << ") & W(" << op.b << ");\n";
        break;
      case OpKind::kOr:
        out << "  W(" << op.dst << ") = W(" << op.a << ") | W(" << op.b << ");\n";
        break;
      case OpKind::kOrn:
        out << "  W(" << op.dst << ") = ~W(" << op.a << ") | W(" << op.b << ");\n";
        break;
      case OpKind::kXor:
        out << "  W(" << op.dst << ") = W(" << op.a << ") ^ W(" << op.b << ");\n";
        break;
      case OpKind::kMux:
        out << "  W(" << op.dst << ") = (W(" << op.a << ") & W(" << op.c << ")) | (~W(" << op.a
            << ") & W(" << op.b << "));\n";
        break;
      case OpKind::kRom:
        out << "  rom_fn(ctx, " << op.dst << "u);\n";
        break;
    }
  }
  out << "}\n";
  return out.str();
}

#endif  // AESIP_JIT_POSIX

}  // namespace

JitModule::~JitModule() {
#if AESIP_JIT_POSIX
  if (handle_) ::dlclose(handle_);
#endif
}

std::unique_ptr<JitModule> jit_compile(const std::vector<Op>& tape, std::size_t stride) {
  std::unique_ptr<JitModule> mod(new JitModule);
#if AESIP_JIT_POSIX
  TempDir dir;
  if (!make_temp_dir(dir)) {
    mod->error_ = "jit: mkdtemp failed";
    return mod;
  }
  if (!write_file(dir, "jit.cpp", lower_tape(tape, stride))) {
    mod->error_ = "jit: cannot write generated source";
    return mod;
  }
  if (!compile_so(dir, "jit", mod->error_)) return mod;
  void* handle = ::dlopen((dir.path + "/jit.so").c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* e = ::dlerror();
    mod->error_ = std::string("jit: dlopen failed") + (e ? std::string(": ") + e : "");
    return mod;
  }
  mod->handle_ = handle;
  mod->settle_ = reinterpret_cast<JitModule::SettleFn>(::dlsym(handle, "aesip_jit_settle"));
  if (!mod->settle_) mod->error_ = "jit: aesip_jit_settle not found in compiled module";
#else
  mod->error_ = "jit: unsupported platform (no dlopen)";
#endif
  return mod;
}

bool jit_toolchain_available() {
#if AESIP_JIT_POSIX
  static std::once_flag once;
  static bool available = false;
  std::call_once(once, [] {
    // Probe with a one-op tape: the full toolchain round trip, cached.
    std::vector<Op> tape{Op{OpKind::kCopy, 0, 1, 0, 0}};
    available = jit_compile(tape, 8)->ok();
  });
  return available;
#else
  return false;
#endif
}

}  // namespace aesip::netlist::batchdetail
