// Synthesis generators: gate-level realizations of the Rijndael datapath.
//
// Each generator emits the gates a synthesis tool would infer for the
// corresponding RTL block, derived from the same GF(2^8) algebra as the
// reference library (xtime = shift + conditional reduction, MixColumn =
// xtime/XOR network, ShiftRow = pure wiring, S-box = 2048-bit ROM or a
// Shannon-decomposed LUT network when the target has no asynchronous
// memory — the Cyclone case in the paper).
#pragma once

#include <array>
#include <cstdint>

#include "netlist/netlist.hpp"

namespace aesip::netlist {

/// Slice byte `k` (bits 8k..8k+7) out of a wider bus.
Bus byte_of(const Bus& bus, int k);

/// Concatenate buses (b follows a at higher bit positions).
Bus concat(const Bus& a, const Bus& b);

/// Multiply a byte by x in GF(2^8): 3 XOR gates + wiring.
Bus synth_xtime(Netlist& nl, const Bus& a);

/// One MixColumn (or InvMixColumn) column: four input bytes -> four output
/// bytes.  Forward uses the shared-term t = a0^a1^a2^a3 form; inverse uses
/// shared x2/x4/x8 partial products.
std::array<Bus, 4> synth_mix_column(Netlist& nl, const std::array<Bus, 4>& a, bool inverse);

/// Full 128-bit MixColumns block (four column instances).
Bus synth_mix_columns128(Netlist& nl, const Bus& state, bool inverse);

/// How the MixColumn GF(2^8) constant multipliers are realized (the two
/// architectures compared by Arrag et al., PAPERS.md).
enum class MixColStyle {
  kXtime,  ///< shared-term xtime/XOR network (the paper's RTL inference)
  kLut,    ///< per-coefficient 256-entry lookup networks + XOR combine
};

/// Multiply a byte by a GF(2^8) constant through a Shannon-decomposed
/// 256-entry lookup network (the table-lookup MixColumn architecture).
Bus synth_gf_mul_lut(Netlist& nl, std::uint8_t coef, const Bus& a);

/// One MixColumn (or InvMixColumn) column in the table-lookup architecture:
/// each output byte XOR-combines four constant-multiplier lookups — no
/// shared xtime terms, so area is traded for a flat two-level structure.
std::array<Bus, 4> synth_mix_column_lut(Netlist& nl, const std::array<Bus, 4>& a, bool inverse);

/// Style-selected 128-bit MixColumns.
Bus synth_mix_columns128(Netlist& nl, const Bus& state, bool inverse, MixColStyle style);

/// ShiftRows on a 128-bit bus: pure permutation, zero gates.
Bus synth_shift_rows128(const Bus& state, bool inverse);

/// One S-box as an asynchronous ROM macro (2048 bits of embedded memory).
Bus synth_sbox_rom(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& addr,
                   std::string name);

/// One S-box as logic: Shannon decomposition over the high address nibble —
/// 16 LUT4 leaves + a 15-LUT 2:1 mux tree per output bit (31 LUTs/output
/// worst case; structural dedup in techmap shrinks uniform leaves and
/// shared subtrees).  This is what Quartus does on Cyclone, where M4K
/// blocks cannot implement the paper's asynchronous ROM.
Bus synth_sbox_logic(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& addr);

/// One S-box through the composite-field (tower GF((2^4)^2)) datapath:
/// input isomorphism matrix, GF(16) square/scale/multiply gates, a
/// 4-LUT-per-bit GF(16) inverse, two output multipliers and the merged
/// output/affine matrix.  The classic low-area alternative to the Shannon
/// network — roughly a third of its LUTs, at more logic depth.  `inverse`
/// selects the inverse S-box (affine applied on the input side).
Bus synth_sbox_composite(Netlist& nl, const Bus& addr, bool inverse);

/// How an S-box bank is realized.
enum class SboxStyle {
  kRom,        ///< asynchronous 2048-bit ROM (the Acex EAB flavour)
  kShannon,    ///< Shannon-decomposed LUT network (the Cyclone flavour)
  kComposite,  ///< tower-field datapath (the low-area optimization)
};

/// Four parallel S-boxes over a 32-bit word (the paper's ByteSub32 slice or
/// the KStran SubWord stage). `as_rom` selects ROM macros vs Shannon logic.
Bus synth_sub_word32(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& word,
                     bool as_rom, const std::string& name);

/// Style-selected variant; `inverse_table` tells the composite datapath
/// which direction it implements (ROM/Shannon read it off `table`).
Bus synth_sub_word32(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& word,
                     SboxStyle style, bool inverse_table, const std::string& name);

/// The truth-table mask of a 2:1 mux LUT with input order (lo, hi, sel).
inline constexpr std::uint16_t kMuxLutMask = 0xCA;

}  // namespace aesip::netlist
