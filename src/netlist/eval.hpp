// Netlist evaluator: functional simulation of a gate-level netlist.
//
// Used to prove every synthesis generator correct — a synthesized block is
// evaluated against the reference library over randomized sweeps before its
// LC count or timing is believed.  Combinational cells (gates, LUTs, async
// ROM macros) are levelized once; DFFs are state elements advanced by
// clock().  A combinational cycle is rejected at construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace aesip::netlist {

class Evaluator {
 public:
  explicit Evaluator(const Netlist& nl);

  void set(NetId n, bool v) { values_[n] = v ? 1 : 0; }
  bool get(NetId n) const { return values_[n] != 0; }

  /// Drive a bus (bit 0 = LSB) from an integer.
  void set_bus(const Bus& b, std::uint64_t value);
  std::uint64_t get_bus(const Bus& b) const;

  /// Propagate through all combinational cells (call after changing inputs).
  void settle();

  /// Rising clock edge: every DFF whose enable is true (or absent) samples
  /// its D input; then the network settles.
  void clock();

  /// Clear all flip-flop state to zero.
  void reset();

  // --- fault injection (SEU emulation) ---------------------------------------
  /// Number of flip-flops (injection sites).
  std::size_t dff_count() const noexcept { return dff_cells_.size(); }
  /// Invert the stored state of flip-flop `index` — a single-event upset.
  /// The caller settles afterwards so the flip propagates combinationally.
  void flip_dff(std::size_t index);

  /// Read-only view of every net's current value (activity probes for the
  /// power estimator; index = NetId).
  std::span<const std::uint8_t> net_values() const noexcept {
    return std::span<const std::uint8_t>(values_.data(), values_.size());
  }

 private:
  const Netlist& nl_;
  std::vector<std::uint8_t> values_;         // one per net
  std::vector<std::size_t> comb_order_;      // cell indices, topological
  std::vector<std::size_t> rom_position_;    // interleave ROMs in the order
  struct Step {
    bool is_rom;
    std::size_t index;  // cell index or rom index
  };
  std::vector<Step> order_;
  std::vector<std::size_t> dff_cells_;
  std::vector<std::uint8_t> dff_state_;
};

}  // namespace aesip::netlist
