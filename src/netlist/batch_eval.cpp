#include "netlist/batch_eval.hpp"

#include <stdexcept>

namespace aesip::netlist {

namespace {

/// Node in the scheduling graph: cells and ROM macros unified (same shape
/// as the scalar evaluator's — the two levelizations must agree on what is
/// combinational).
struct Node {
  bool is_rom;
  std::size_t index;
};

}  // namespace

BatchEvaluator::BatchEvaluator(const Netlist& nl)
    : nl_(nl),
      words_(nl.net_count(), 0),
      const0_word_(nl.const0()),
      const1_word_(nl.const1()) {
  const auto& cells = nl.cells();
  const auto& roms = nl.roms();

  // Same producer map + Kahn sort as the scalar Evaluator: DFF outputs are
  // state sources, constants are fixed, everything else is scheduled.
  std::vector<Node> nodes;
  nodes.reserve(cells.size() + roms.size());
  std::vector<std::int32_t> producer(nl.net_count(), -1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (c.kind == CellKind::kDff) {
      dffs_.push_back(Dff{c.in[0], c.out, c.in[1] == kNoNet ? kNoWord : c.in[1]});
      continue;
    }
    if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
    producer[c.out] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{false, i});
  }
  for (std::size_t i = 0; i < roms.size(); ++i) {
    for (const NetId o : roms[i].out) producer[o] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{true, i});
  }
  dff_state_.assign(dffs_.size(), 0);
  dff_sample_.assign(dffs_.size(), 0);

  std::vector<int> pending(nodes.size(), 0);
  std::vector<std::vector<std::int32_t>> consumers(nodes.size());
  auto each_fanin = [&](const Node& n, auto&& fn) {
    if (n.is_rom) {
      for (const NetId a : roms[n.index].addr) fn(a);
    } else {
      const Cell& c = cells[n.index];
      for (int k = 0; k < c.fanin_count(); ++k)
        if (c.in[static_cast<std::size_t>(k)] != kNoNet) fn(c.in[static_cast<std::size_t>(k)]);
    }
  };
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    each_fanin(nodes[ni], [&](NetId fanin) {
      const std::int32_t p = producer[fanin];
      if (p >= 0) {
        ++pending[ni];
        consumers[static_cast<std::size_t>(p)].push_back(static_cast<std::int32_t>(ni));
      }
    });
  }
  std::vector<std::int32_t> ready;
  for (std::size_t ni = 0; ni < nodes.size(); ++ni)
    if (pending[ni] == 0) ready.push_back(static_cast<std::int32_t>(ni));

  // Compile each node in topological order straight onto the tape.
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const std::int32_t ni = ready.back();
    ready.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(ni)];
    ++scheduled;
    if (n.is_rom) {
      emit(OpKind::kRom, static_cast<std::uint32_t>(n.index), 0);
    } else {
      const Cell& c = cells[n.index];
      switch (c.kind) {
        case CellKind::kNot:
          emit(OpKind::kNot, c.out, c.in[0]);
          break;
        case CellKind::kAnd2:
          emit(OpKind::kAnd, c.out, c.in[0], c.in[1]);
          break;
        case CellKind::kOr2:
          emit(OpKind::kOr, c.out, c.in[0], c.in[1]);
          break;
        case CellKind::kXor2:
          emit(OpKind::kXor, c.out, c.in[0], c.in[1]);
          break;
        case CellKind::kMux2:
          emit(OpKind::kMux, c.out, c.in[0], c.in[1], c.in[2]);
          break;
        case CellKind::kLut: {
          std::uint32_t ins[4] = {0, 0, 0, 0};
          for (int k = 0; k < c.lut_arity; ++k) ins[k] = c.in[static_cast<std::size_t>(k)];
          compile_lut(c.lut_mask, c.lut_arity, ins, c.out);
          break;
        }
        default:
          break;
      }
    }
    for (const std::int32_t consumer : consumers[static_cast<std::size_t>(ni)])
      if (--pending[static_cast<std::size_t>(consumer)] == 0) ready.push_back(consumer);
  }
  if (scheduled != nodes.size())
    throw std::runtime_error("netlist::BatchEvaluator: combinational cycle detected");

  words_[const1_word_] = ~Word{0};
  reset();
}

std::uint32_t BatchEvaluator::new_temp() {
  words_.push_back(0);
  return static_cast<std::uint32_t>(words_.size() - 1);
}

std::uint32_t BatchEvaluator::emit(OpKind kind, std::uint32_t dst, std::uint32_t a,
                                   std::uint32_t b, std::uint32_t c) {
  tape_.push_back(Op{kind, dst, a, b, c});
  return dst;
}

// Shannon decomposition over the highest input: split the truth table into
// the select=0 and select=1 cofactors and recurse.  Constant cofactors
// collapse the mux into single-word gates, so LUT evaluation costs a few
// word ops per cell instead of a per-lane table index.
std::uint32_t BatchEvaluator::compile_lut(std::uint16_t mask, int arity,
                                          const std::uint32_t* inputs, std::uint32_t dst) {
  const std::uint32_t width = 1u << arity;  // truth-table entries
  const std::uint16_t all = static_cast<std::uint16_t>((width >= 16 ? 0x10000u : (1u << width)) - 1);
  const std::uint16_t m = static_cast<std::uint16_t>(mask & all);
  if (m == 0) return dst == kNoWord ? const0_word_ : emit(OpKind::kCopy, dst, const0_word_);
  if (m == all) return dst == kNoWord ? const1_word_ : emit(OpKind::kCopy, dst, const1_word_);

  const std::uint32_t half = width >> 1;  // arity >= 1 here (m not constant)
  const std::uint16_t lo_m = static_cast<std::uint16_t>(m & ((1u << half) - 1));
  const std::uint16_t hi_m = static_cast<std::uint16_t>(m >> half);
  if (lo_m == hi_m) return compile_lut(lo_m, arity - 1, inputs, dst);

  const std::uint32_t sel = inputs[arity - 1];
  const std::uint32_t lo = compile_lut(lo_m, arity - 1, inputs, kNoWord);
  const std::uint32_t hi = compile_lut(hi_m, arity - 1, inputs, kNoWord);
  const bool lo0 = lo == const0_word_, lo1 = lo == const1_word_;
  const bool hi0 = hi == const0_word_, hi1 = hi == const1_word_;

  if (lo0 && hi1) return dst == kNoWord ? sel : emit(OpKind::kCopy, dst, sel);
  const std::uint32_t d = dst == kNoWord ? new_temp() : dst;
  if (lo1 && hi0) return emit(OpKind::kNot, d, sel);
  if (lo0) return emit(OpKind::kAnd, d, sel, hi);
  if (hi0) return emit(OpKind::kAndn, d, sel, lo);  // ~sel & lo
  if (lo1) return emit(OpKind::kOrn, d, sel, hi);   // ~sel | hi
  if (hi1) return emit(OpKind::kOr, d, sel, lo);
  return emit(OpKind::kMux, d, sel, lo, hi);
}

void BatchEvaluator::set_bus(const Bus& b, std::size_t lane, std::uint64_t value) {
  for (std::size_t i = 0; i < b.size(); ++i) set(b[i], lane, (value >> i) & 1U);
}

std::uint64_t BatchEvaluator::get_bus(const Bus& b, std::size_t lane) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < b.size(); ++i)
    if (get(b[i], lane)) v |= std::uint64_t{1} << i;
  return v;
}

void BatchEvaluator::broadcast_bus(const Bus& b, std::uint64_t value) {
  for (std::size_t i = 0; i < b.size(); ++i) broadcast(b[i], (value >> i) & 1U);
}

void BatchEvaluator::settle() {
  Word* const w = words_.data();
  const auto& roms = nl_.roms();
  for (const Op& op : tape_) {
    switch (op.kind) {
      case OpKind::kCopy:
        w[op.dst] = w[op.a];
        break;
      case OpKind::kNot:
        w[op.dst] = ~w[op.a];
        break;
      case OpKind::kAnd:
        w[op.dst] = w[op.a] & w[op.b];
        break;
      case OpKind::kAndn:
        w[op.dst] = ~w[op.a] & w[op.b];
        break;
      case OpKind::kOr:
        w[op.dst] = w[op.a] | w[op.b];
        break;
      case OpKind::kOrn:
        w[op.dst] = ~w[op.a] | w[op.b];
        break;
      case OpKind::kXor:
        w[op.dst] = w[op.a] ^ w[op.b];
        break;
      case OpKind::kMux:
        w[op.dst] = (w[op.a] & w[op.c]) | (~w[op.a] & w[op.b]);
        break;
      case OpKind::kRom: {
        // Transposed gather: pull each lane's 8 address bits out of the
        // address lane words, look the byte up, scatter its bits back.
        const Rom& r = roms[op.dst];
        Word a[8];
        Word o[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        for (int i = 0; i < 8; ++i) a[i] = w[r.addr[static_cast<std::size_t>(i)]];
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          std::size_t addr = 0;
          for (int i = 0; i < 8; ++i) addr |= ((a[i] >> lane) & 1U) << i;
          const std::uint8_t data = r.table[addr];
          for (int i = 0; i < 8; ++i) o[i] |= Word{(data >> i) & 1U} << lane;
        }
        for (int i = 0; i < 8; ++i) w[r.out[static_cast<std::size_t>(i)]] = o[i];
        break;
      }
    }
  }
}

void BatchEvaluator::clock() {
  // Sample every enabled D first (pre-edge values in every lane), then
  // publish, then settle — Evaluator::clock() semantics, 64 lanes wide.
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    const Dff& f = dffs_[i];
    const Word d = words_[f.d];
    if (f.enable == kNoWord) {
      dff_sample_[i] = d;
    } else {
      const Word en = words_[f.enable];
      dff_sample_[i] = (en & d) | (~en & dff_state_[i]);
    }
  }
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    dff_state_[i] = dff_sample_[i];
    words_[dffs_[i].q] = dff_state_[i];
  }
  settle();
}

void BatchEvaluator::reset() {
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    dff_state_[i] = 0;
    words_[dffs_[i].q] = 0;
  }
}

}  // namespace aesip::netlist
