#include "netlist/batch_eval.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "netlist/batch_jit.hpp"
#include "netlist/batch_kernels.hpp"

namespace aesip::netlist {

namespace {

/// Node in the scheduling graph: cells and ROM macros unified (same shape
/// as the scalar evaluator's — the two levelizations must agree on what is
/// combinational).
struct Node {
  bool is_rom;
  std::size_t index;
};

const batchdetail::Kernels* kernels_for(BatchBackend b) {
  switch (b) {
    case BatchBackend::kU64: return batchdetail::kernels_u64();
    case BatchBackend::kNeon: return batchdetail::kernels_neon();
    case BatchBackend::kAvx2: return batchdetail::kernels_avx2();
    case BatchBackend::kAvx512: return batchdetail::kernels_avx512();
    case BatchBackend::kJit: return nullptr;  // settles through the module
  }
  return nullptr;
}

}  // namespace

/// Persistent shard workers.  One settle is a lockstep walk over the
/// levelization bands: every participant (main thread included) processes
/// its contiguous chunk of the band, then meets the others at the barrier
/// before the next band may read this band's outputs.  The pool is parked
/// on the same barrier between settles.
struct BatchEvaluator::Pool {
  explicit Pool(int nthreads) : gate(nthreads) {}
  std::barrier<> gate;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
};

BatchEvaluator::BatchEvaluator(const Netlist& nl, const BatchConfig& cfg)
    : nl_(nl),
      backend_(resolve_backend(cfg)),
      stride_(backend_lanes(backend_) / kBaseLanes),
      slots_(nl.net_count()),
      const0_word_(nl.const0()),
      const1_word_(nl.const1()) {
  const auto& cells = nl.cells();
  const auto& netlist_roms = nl.roms();

  // Same producer map + Kahn sort as the scalar Evaluator: DFF outputs are
  // state sources, constants are fixed, everything else is scheduled.
  std::vector<Node> nodes;
  nodes.reserve(cells.size() + netlist_roms.size());
  std::vector<std::int32_t> producer(nl.net_count(), -1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (c.kind == CellKind::kDff) {
      dffs_.push_back(Dff{c.in[0], c.out, c.in[1] == kNoNet ? kNoWord : c.in[1]});
      continue;
    }
    if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
    producer[c.out] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{false, i});
  }
  for (std::size_t i = 0; i < netlist_roms.size(); ++i) {
    for (const NetId o : netlist_roms[i].out) producer[o] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{true, i});
    RomSpec spec{};
    for (int k = 0; k < 8; ++k) {
      spec.addr[k] = netlist_roms[i].addr[static_cast<std::size_t>(k)];
      spec.out[k] = netlist_roms[i].out[static_cast<std::size_t>(k)];
    }
    spec.table = netlist_roms[i].table.data();
    roms_.push_back(spec);
  }

  std::vector<int> pending(nodes.size(), 0);
  std::vector<std::vector<std::int32_t>> consumers(nodes.size());
  auto each_fanin = [&](const Node& n, auto&& fn) {
    if (n.is_rom) {
      for (const NetId a : netlist_roms[n.index].addr) fn(a);
    } else {
      const Cell& c = cells[n.index];
      for (int k = 0; k < c.fanin_count(); ++k)
        if (c.in[static_cast<std::size_t>(k)] != kNoNet) fn(c.in[static_cast<std::size_t>(k)]);
    }
  };
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    each_fanin(nodes[ni], [&](NetId fanin) {
      const std::int32_t p = producer[fanin];
      if (p >= 0) {
        ++pending[ni];
        consumers[static_cast<std::size_t>(p)].push_back(static_cast<std::int32_t>(ni));
      }
    });
  }
  std::vector<std::int32_t> ready;
  for (std::size_t ni = 0; ni < nodes.size(); ++ni)
    if (pending[ni] == 0) ready.push_back(static_cast<std::int32_t>(ni));

  // Compile each node in topological order straight onto the tape.
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const std::int32_t ni = ready.back();
    ready.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(ni)];
    ++scheduled;
    if (n.is_rom) {
      emit(OpKind::kRom, static_cast<std::uint32_t>(n.index), 0);
    } else {
      const Cell& c = cells[n.index];
      switch (c.kind) {
        case CellKind::kNot:
          emit(OpKind::kNot, c.out, c.in[0]);
          break;
        case CellKind::kAnd2:
          emit(OpKind::kAnd, c.out, c.in[0], c.in[1]);
          break;
        case CellKind::kOr2:
          emit(OpKind::kOr, c.out, c.in[0], c.in[1]);
          break;
        case CellKind::kXor2:
          emit(OpKind::kXor, c.out, c.in[0], c.in[1]);
          break;
        case CellKind::kMux2:
          emit(OpKind::kMux, c.out, c.in[0], c.in[1], c.in[2]);
          break;
        case CellKind::kLut: {
          std::uint32_t ins[4] = {0, 0, 0, 0};
          for (int k = 0; k < c.lut_arity; ++k) ins[k] = c.in[static_cast<std::size_t>(k)];
          compile_lut(c.lut_mask, c.lut_arity, ins, c.out);
          break;
        }
        default:
          break;
      }
    }
    for (const std::int32_t consumer : consumers[static_cast<std::size_t>(ni)])
      if (--pending[static_cast<std::size_t>(consumer)] == 0) ready.push_back(consumer);
  }
  if (scheduled != nodes.size())
    throw std::runtime_error("netlist::BatchEvaluator: combinational cycle detected");

  build_levels();

  // Backend hookup.  The slot count is final only now (LUT temporaries),
  // so physical storage allocates here.
  words_.assign(slots_ * stride_, 0);
  dff_state_.assign(dffs_.size() * stride_, 0);
  dff_sample_.assign(dffs_.size() * stride_, 0);
  if (backend_ == BatchBackend::kJit) {
    jit_ = batchdetail::jit_compile(tape_, stride_);
    if (!jit_->ok())
      throw std::runtime_error("netlist::BatchEvaluator: " + jit_->error());
  } else {
    kern_ = kernels_for(backend_);
    if (!kern_)  // resolve_backend() already vetted support; belt and braces
      throw std::runtime_error("netlist::BatchEvaluator: backend kernels missing");
  }

  // The shard pool applies to the interpreted backends only (the JIT
  // settle is one straight-line function).
  shard_threads_ = backend_ == BatchBackend::kJit ? 1 : resolve_shard_threads(cfg);
  if (shard_threads_ > 1 && !tape_.empty()) {
    pool_ = std::make_unique<Pool>(shard_threads_);
    for (int tid = 1; tid < shard_threads_; ++tid)
      pool_->workers.emplace_back([this, tid] {
        for (;;) {
          pool_->gate.arrive_and_wait();  // settle begins (or shutdown)
          if (pool_->stop.load(std::memory_order_acquire)) return;
          run_levels(tid);
          pool_->gate.arrive_and_wait();  // settle complete
        }
      });
  } else {
    shard_threads_ = 1;
  }

  broadcast(const1_word_, true);
  reset();
}

BatchEvaluator::~BatchEvaluator() {
  if (pool_) {
    pool_->stop.store(true, std::memory_order_release);
    pool_->gate.arrive_and_wait();  // release parked workers into the stop check
    for (auto& t : pool_->workers) t.join();
  }
}

std::uint32_t BatchEvaluator::emit(OpKind kind, std::uint32_t dst, std::uint32_t a,
                                   std::uint32_t b, std::uint32_t c) {
  tape_.push_back(Op{kind, dst, a, b, c});
  return dst;
}

// Shannon decomposition over the highest input: split the truth table into
// the select=0 and select=1 cofactors and recurse.  Constant cofactors
// collapse the mux into single-word gates, so LUT evaluation costs a few
// word ops per cell instead of a per-lane table index.
std::uint32_t BatchEvaluator::compile_lut(std::uint16_t mask, int arity,
                                          const std::uint32_t* inputs, std::uint32_t dst) {
  const std::uint32_t width = 1u << arity;  // truth-table entries
  const std::uint16_t all = static_cast<std::uint16_t>((width >= 16 ? 0x10000u : (1u << width)) - 1);
  const std::uint16_t m = static_cast<std::uint16_t>(mask & all);
  if (m == 0) return dst == kNoWord ? const0_word_ : emit(OpKind::kCopy, dst, const0_word_);
  if (m == all) return dst == kNoWord ? const1_word_ : emit(OpKind::kCopy, dst, const1_word_);

  const std::uint32_t half = width >> 1;  // arity >= 1 here (m not constant)
  const std::uint16_t lo_m = static_cast<std::uint16_t>(m & ((1u << half) - 1));
  const std::uint16_t hi_m = static_cast<std::uint16_t>(m >> half);
  if (lo_m == hi_m) return compile_lut(lo_m, arity - 1, inputs, dst);

  const std::uint32_t sel = inputs[arity - 1];
  const std::uint32_t lo = compile_lut(lo_m, arity - 1, inputs, kNoWord);
  const std::uint32_t hi = compile_lut(hi_m, arity - 1, inputs, kNoWord);
  const bool lo0 = lo == const0_word_, lo1 = lo == const1_word_;
  const bool hi0 = hi == const0_word_, hi1 = hi == const1_word_;

  if (lo0 && hi1) return dst == kNoWord ? sel : emit(OpKind::kCopy, dst, sel);
  const std::uint32_t d = dst == kNoWord ? new_temp() : dst;
  if (lo1 && hi0) return emit(OpKind::kNot, d, sel);
  if (lo0) return emit(OpKind::kAnd, d, sel, hi);
  if (hi0) return emit(OpKind::kAndn, d, sel, lo);  // ~sel & lo
  if (lo1) return emit(OpKind::kOrn, d, sel, hi);   // ~sel | hi
  if (hi1) return emit(OpKind::kOr, d, sel, lo);
  return emit(OpKind::kMux, d, sel, lo, hi);
}

// Longest-path level per op over the word-slot dependency graph, then a
// stable sort into level bands.  Any level order is a valid topological
// order (an op's operands are produced at strictly lower levels), and ops
// within one band are mutually independent — the shard-cut rule: a worker
// may evaluate any chunk of a band concurrently with the others, as long
// as every worker passes the barrier before the next band starts.
void BatchEvaluator::build_levels() {
  std::vector<std::uint32_t> slot_level(slots_, 0);
  std::vector<std::uint32_t> op_level(tape_.size(), 0);
  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < tape_.size(); ++i) {
    const Op& op = tape_[i];
    std::uint32_t lvl = 0;
    if (op.kind == OpKind::kRom) {
      for (const std::uint32_t a : roms_[op.dst].addr) lvl = std::max(lvl, slot_level[a]);
      ++lvl;
      for (const std::uint32_t o : roms_[op.dst].out) slot_level[o] = lvl;
    } else {
      lvl = slot_level[op.a];
      if (op.kind != OpKind::kCopy && op.kind != OpKind::kNot)
        lvl = std::max(lvl, slot_level[op.b]);
      if (op.kind == OpKind::kMux) lvl = std::max(lvl, slot_level[op.c]);
      ++lvl;
      slot_level[op.dst] = lvl;
    }
    op_level[i] = lvl;
    max_level = std::max(max_level, lvl);
  }

  std::vector<std::uint32_t> order(tape_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return op_level[x] < op_level[y];
  });
  std::vector<Op> sorted;
  sorted.reserve(tape_.size());
  for (const std::uint32_t i : order) sorted.push_back(tape_[i]);
  tape_ = std::move(sorted);

  level_starts_.assign(max_level + 1, 0);  // levels are 1-based when any op exists
  for (const std::uint32_t i : order) ++level_starts_[op_level[i] - 1];
  std::uint32_t off = 0;
  for (auto& s : level_starts_) {
    const std::uint32_t n = s;
    s = off;
    off += n;
  }
  level_starts_.push_back(off);
}

void BatchEvaluator::set_bus(const Bus& b, std::size_t lane, std::uint64_t value) {
  for (std::size_t i = 0; i < b.size(); ++i) set(b[i], lane, (value >> i) & 1U);
}

std::uint64_t BatchEvaluator::get_bus(const Bus& b, std::size_t lane) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < b.size(); ++i)
    if (get(b[i], lane)) v |= std::uint64_t{1} << i;
  return v;
}

void BatchEvaluator::broadcast_bus(const Bus& b, std::uint64_t value) {
  for (std::size_t i = 0; i < b.size(); ++i) broadcast(b[i], (value >> i) & 1U);
}

void BatchEvaluator::settle_range(std::size_t begin, std::size_t end) {
  kern_->settle(tape_.data(), begin, end, words_.data(), roms_.data());
}

void BatchEvaluator::run_levels(int tid) {
  const std::size_t T = static_cast<std::size_t>(shard_threads_);
  for (std::size_t l = 0; l + 1 < level_starts_.size(); ++l) {
    const std::size_t s = level_starts_[l];
    const std::size_t e = level_starts_[l + 1];
    const std::size_t per = (e - s + T - 1) / T;
    const std::size_t b = std::min(s + static_cast<std::size_t>(tid) * per, e);
    const std::size_t f = std::min(b + per, e);
    if (b < f) settle_range(b, f);
    pool_->gate.arrive_and_wait();
  }
}

void BatchEvaluator::jit_rom_thunk(void* ctx, unsigned rom) {
  auto* self = static_cast<BatchEvaluator*>(ctx);
  const RomSpec& r = self->roms_[rom];
  // The JIT stride matches the AVX-512 kernels'; reuse their byte-mask
  // gather when the host has it, the portable transpose path otherwise.
  static const batchdetail::RomGatherFn wide =
      backend_supported(BatchBackend::kAvx512) ? batchdetail::rom_gather_avx512() : nullptr;
  if (wide)
    wide(r, self->words_.data(), self->stride_);
  else
    batchdetail::rom_gather_transpose(r, self->words_.data(), self->stride_);
}

void BatchEvaluator::settle() {
  if (jit_) {
    jit_->settle()(words_.data(), this, &BatchEvaluator::jit_rom_thunk);
    return;
  }
  if (pool_) {
    pool_->gate.arrive_and_wait();  // release the parked workers
    run_levels(0);
    pool_->gate.arrive_and_wait();  // all bands complete
    return;
  }
  settle_range(0, tape_.size());
}

void BatchEvaluator::clock() {
  // Sample every enabled D first (pre-edge values in every lane), then
  // publish, then settle — Evaluator::clock() semantics, lanes() wide.
  if (kern_)
    kern_->clock_dffs(dffs_.data(), dffs_.size(), words_.data(), dff_state_.data(),
                      dff_sample_.data());
  else
    batchdetail::clock_dffs_generic(dffs_.data(), dffs_.size(), words_.data(),
                                    dff_state_.data(), dff_sample_.data(), stride_);
  settle();
}

void BatchEvaluator::reset() {
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    for (std::size_t g = 0; g < stride_; ++g) dff_state_[i * stride_ + g] = 0;
    publish_dff(i);
  }
}

void BatchEvaluator::publish_dff(std::size_t index) {
  for (std::size_t g = 0; g < stride_; ++g)
    words_[dffs_[index].q * stride_ + g] = dff_state_[index * stride_ + g];
}

void BatchEvaluator::flip_dff(std::size_t index) {
  for (std::size_t g = 0; g < stride_; ++g) dff_state_[index * stride_ + g] ^= ~Word{0};
  publish_dff(index);
}

void BatchEvaluator::flip_dff_lane(std::size_t index, std::size_t lane) {
  dff_state_[index * stride_ + lane / kBaseLanes] ^= Word{1} << (lane % kBaseLanes);
  publish_dff(index);
}

void BatchEvaluator::flip_dff_mask(std::size_t index, std::span<const Word> mask) {
  const std::size_t n = std::min(mask.size(), stride_);
  for (std::size_t g = 0; g < n; ++g) dff_state_[index * stride_ + g] ^= mask[g];
  publish_dff(index);
}

}  // namespace aesip::netlist
