// Shared tape representation for the bit-parallel batch evaluator.
//
// BatchEvaluator compiles the netlist once into this flat, SSA-like op
// tape; the per-backend settle kernels (batch_kernels_*.cpp — uint64,
// NEON, AVX2, AVX-512) and the experimental JIT lowering all interpret the
// SAME tape, so every backend is bit-for-bit comparable against the scalar
// Evaluator oracle.  Operands are *word-slot* indices: slot s of an
// evaluator with stride S (64-bit words per net) lives at w[s * S .. s * S
// + S) — the kernel's vector width is exactly S words, so one op is one
// vector instruction on the native backends.
#pragma once

#include <cstdint>

namespace aesip::netlist::batchdetail {

using Word = std::uint64_t;

/// One word-level op.  kMux is (a & c) | (~a & b) — a = select, b = low,
/// c = high, matching kMux2's in0/in1/in2.  kAndn is ~a & b and kOrn is
/// ~a | b: the collapsed Shannon cofactors (hi==0 / lo==1).
enum class OpKind : std::uint8_t { kCopy, kNot, kAnd, kAndn, kOr, kOrn, kXor, kMux, kRom };

struct Op {
  OpKind kind;
  std::uint32_t dst;  // word slot; for kRom: the rom index
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

struct Dff {
  std::uint32_t d;       ///< word slot of D
  std::uint32_t q;       ///< word slot of Q
  std::uint32_t enable;  ///< word slot of clock-enable, or kNoWord
};

static constexpr std::uint32_t kNoWord = 0xffffffffu;

/// A 256x8 ROM macro resolved to word slots (address/data bit i = slot i).
/// `table` points into the owning Netlist's Rom::table — the netlist must
/// outlive the evaluator, which it already does by contract.
struct RomSpec {
  std::uint32_t addr[8];
  std::uint32_t out[8];
  const std::uint8_t* table;
};

}  // namespace aesip::netlist::batchdetail
