// AVX2 backend: 256 lanes per pass (stride 4).
//
// Compiled with -mavx2 (see src/netlist/CMakeLists.txt); whether the HOST
// can run it is a runtime CPUID question answered by backend_supported(),
// never assumed here.  Word ops are straight ymm bitwise instructions; the
// ROM gather uses the portable 8x8 bit-matrix transpose path (one table
// lookup per lane instead of 16 bit probes).

#include "netlist/batch_kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace aesip::netlist::batchdetail {

namespace {

struct OpsAvx2 {
  static constexpr std::size_t kStride = 4;
  using V = __m256i;
  static V load(const Word* p) { return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)); }
  static void store(Word* p, V v) { _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v); }
  static V ones() { return _mm256_set1_epi64x(-1); }
  static V vnot(V a) { return _mm256_xor_si256(a, ones()); }
  static V vand(V a, V b) { return _mm256_and_si256(a, b); }
  static V vandn(V a, V b) { return _mm256_andnot_si256(a, b); }  // ~a & b
  static V vor(V a, V b) { return _mm256_or_si256(a, b); }
  static V vorn(V a, V b) { return _mm256_or_si256(vnot(a), b); }  // ~a | b
  static V vxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V vmux(V s, V lo, V hi) {
    return _mm256_or_si256(_mm256_and_si256(s, hi), _mm256_andnot_si256(s, lo));
  }
  static void rom(const RomSpec& r, Word* w) { rom_gather_transpose(r, w, kStride); }
};

#include "netlist/batch_kernels.inl"

const Kernels kAvx2Kernels{OpsAvx2::kStride, &settle_range<OpsAvx2>, &clock_dffs_t<OpsAvx2>};

}  // namespace

const Kernels* kernels_avx2() { return &kAvx2Kernels; }

}  // namespace aesip::netlist::batchdetail

#else  // not x86-64: backend not compiled in

namespace aesip::netlist::batchdetail {
const Kernels* kernels_avx2() { return nullptr; }
}  // namespace aesip::netlist::batchdetail

#endif
