// Experimental kJit backend: lower the compiled tape to straight-line C++.
//
// The tape is SSA-like, so lowering is mechanical: every word op becomes
// one GCC-vector-extension statement over an 8-word (512-lane) value, the
// host compiler's -march=native picks the actual ISA, and the interpreter
// dispatch disappears entirely.  The generated translation unit is built
// ONCE at evaluator construction with the system toolchain and dlopen()ed;
// ROM ops stay as callbacks into the evaluator (the gather already has a
// vectorized implementation — no point compiling 256-byte tables inline).
//
// Everything degrades gracefully: no toolchain / no dlopen / compile error
// => jit_compile() returns a module whose error() explains why, and
// backend_supported(BatchBackend::kJit) is false (the ctest matrix skips
// with that reason).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/batch_tape.hpp"

namespace aesip::netlist::batchdetail {

class JitModule {
 public:
  /// rom_fn(ctx, rom_index) is invoked in tape position for every kRom op.
  using SettleFn = void (*)(std::uint64_t* w, void* ctx, void (*rom_fn)(void* ctx, unsigned rom));

  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  bool ok() const noexcept { return settle_ != nullptr; }
  const std::string& error() const noexcept { return error_; }
  SettleFn settle() const noexcept { return settle_; }

 private:
  friend std::unique_ptr<JitModule> jit_compile(const std::vector<Op>& tape, std::size_t stride);
  JitModule() = default;

  SettleFn settle_ = nullptr;
  void* handle_ = nullptr;  // dlopen handle
  std::string error_;
};

/// Lower `tape` (operand slots scaled by `stride` words) to C++, compile,
/// and load.  Never throws on toolchain failure — check ok()/error().
std::unique_ptr<JitModule> jit_compile(const std::vector<Op>& tape, std::size_t stride);

/// Cached probe: can this process compile + dlopen a trivial module?
bool jit_toolchain_available();

}  // namespace aesip::netlist::batchdetail
