// Runtime-dispatched lane-word backends for netlist::BatchEvaluator.
//
// The batch evaluator's lane word is no longer a fixed uint64_t: at
// construction it picks the widest vector unit the host offers — AVX-512
// (512 lanes per pass), AVX2 (256), NEON (128) — and falls back to the
// portable 64-lane uint64 path, which doubles as the oracle-adjacent
// baseline the BENCH_simspeed ≥4x gate measures against.  An experimental
// kJit backend lowers the compiled tape to straight-line C++ built once at
// startup (batch_jit.hpp).
//
// Selection order, resolved once per evaluator:
//   1. BatchConfig::backend, when set (tests force specific backends);
//   2. the AESIP_BATCH_BACKEND environment variable
//      (u64 | neon | avx2 | avx512 | jit) — the override knob the
//      backend-forcing ctest matrix uses;
//   3. detect_backend(): the widest *native* backend the CPU supports
//      (CPUID via __builtin_cpu_supports; never jit).
// Forcing an unsupported backend throws — the test matrix probes
// backend_supported() first and skips with a reason instead.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace aesip::netlist {

enum class BatchBackend : std::uint8_t { kU64, kNeon, kAvx2, kAvx512, kJit };

/// Per-evaluator knobs (engine constructors pass this through; default is
/// full auto-detection).
struct BatchConfig {
  /// Backend override; nullopt = env var, then widest native.
  std::optional<BatchBackend> backend{};
  /// Tape-shard worker threads for one settle pass (levelization-cut
  /// sharding).  0 = AESIP_BATCH_THREADS env var, else 1 (no pool).
  int threads = 0;
};

/// Stable lowercase name ("u64", "neon", "avx2", "avx512", "jit") — the
/// spelling AESIP_BATCH_BACKEND accepts and bench/metrics JSON reports.
const char* backend_name(BatchBackend b) noexcept;
std::optional<BatchBackend> backend_from_name(std::string_view name) noexcept;

/// Simulation lanes per pass on `b`: 64 x its word stride.
std::size_t backend_lanes(BatchBackend b) noexcept;

/// True when this host can run `b`: compiled in AND the CPU advertises the
/// feature (AVX2 / AVX-512F+BW), or, for kJit, a working C++ toolchain was
/// probed (cached).  kU64 is always supported.
bool backend_supported(BatchBackend b);

/// Widest supported NATIVE backend (never kJit), ignoring overrides.
BatchBackend detect_backend();

/// The AESIP_BATCH_BACKEND override, if set to a recognized name.
std::optional<BatchBackend> env_forced_backend();

/// Resolve a config to the backend an evaluator will run: override > env >
/// detect.  Throws std::runtime_error when an explicit request names an
/// unsupported backend.
BatchBackend resolve_backend(const BatchConfig& cfg);

/// Resolve BatchConfig::threads (env fallback), clamped to [1, 64].
int resolve_shard_threads(const BatchConfig& cfg);

}  // namespace aesip::netlist
