// Gate-level netlist: the synthesis target of the reproduction flow.
//
// The paper's LC/memory numbers come from Leonardo Spectrum + Quartus II.
// We replace that flow with: RTL-structure generators emit primitive gates
// (NOT/AND2/OR2/XOR2/MUX2), flip-flops, pre-mapped LUT cells and 256x8 ROM
// macros into this netlist; techmap covers the gates into 4-input LUTs;
// sta levelizes the mapped result; fpga fits it onto a device model.
//
// Nets are dense integer ids.  Every net has at most one driver.  A
// combinational/sequential evaluator is included so each synthesized block
// can be verified bit-for-bit against the reference library before its
// area/timing is trusted.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace aesip::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

enum class CellKind : std::uint8_t {
  kConst0,
  kConst1,
  kNot,
  kAnd2,
  kOr2,
  kXor2,
  kMux2,  ///< in0 = select, out = sel ? in2 : in1
  kLut,   ///< pre-mapped: <=4 inputs, 16-bit truth table
  kDff,   ///< in0 = D; out = Q. Optional in1 = clock-enable (kNoNet if always).
};

struct Cell {
  CellKind kind;
  std::array<NetId, 4> in{kNoNet, kNoNet, kNoNet, kNoNet};
  NetId out = kNoNet;
  std::uint16_t lut_mask = 0;  ///< kLut only: truth table over in[0..n)
  std::uint8_t lut_arity = 0;  ///< kLut only

  int fanin_count() const noexcept;
};

/// 256-entry byte ROM macro (one hardware S-box: 2048 bits).
struct Rom {
  std::array<NetId, 8> addr{};  ///< addr[0] = LSB
  std::array<NetId, 8> out{};   ///< out[0] = LSB of the stored byte
  std::array<std::uint8_t, 256> table{};
  std::string name;
};

/// A bus is an ordered list of nets, bit 0 first.
using Bus = std::vector<NetId>;

class Netlist {
 public:
  Netlist();

  // --- construction -------------------------------------------------------
  NetId new_net();
  NetId const0() const noexcept { return const0_; }
  NetId const1() const noexcept { return const1_; }

  /// Primary input/output (each costs a device pin).
  NetId add_input(std::string name);
  void add_output(NetId n, std::string name);
  Bus add_input_bus(const std::string& name, int width);
  void add_output_bus(const Bus& b, const std::string& name);

  NetId gate_not(NetId a);
  NetId gate_and(NetId a, NetId b);
  NetId gate_or(NetId a, NetId b);
  NetId gate_xor(NetId a, NetId b);
  /// sel ? hi : lo
  NetId gate_mux(NetId sel, NetId lo, NetId hi);
  NetId add_lut(std::uint16_t mask, std::span<const NetId> inputs);
  /// LUT driving a pre-allocated net (transformation passes that stitch
  /// feedback or out-of-order cones). The builder API is otherwise acyclic
  /// by construction; a pass that miswires a combinational loop through
  /// this is caught by the evaluators' cycle rejection.
  void add_lut_with_out(NetId out, std::uint16_t mask, std::span<const NetId> inputs);
  /// D flip-flop; `enable` == kNoNet means always-enabled.
  NetId add_dff(NetId d, NetId enable = kNoNet);
  /// D flip-flop driving a pre-allocated net (used for feedback paths and
  /// by the technology mapper, which must create Q nets before D cones).
  void add_dff_with_out(NetId out, NetId d, NetId enable = kNoNet);
  /// ROM macro; returns the 8 output nets.
  Bus add_rom(const std::array<std::uint8_t, 256>& table, const Bus& addr, std::string name);

  // --- bus helpers ---------------------------------------------------------
  /// XOR of all nets (balanced tree); empty input yields const0.
  NetId xor_tree(std::span<const NetId> nets);
  Bus xor_bus(const Bus& a, const Bus& b);
  Bus mux_bus(NetId sel, const Bus& lo, const Bus& hi);
  /// N-way mux from a binary select bus (recursively built from mux2).
  Bus mux_n(const Bus& select, std::span<const Bus> choices);
  Bus constant_bus(std::uint64_t value, int width);
  /// a XOR constant: free bits where the constant is 0, NOT gates where 1.
  Bus xor_const(const Bus& a, std::uint64_t value);
  /// Equality comparator against a constant (AND tree over bit tests).
  NetId eq_const(const Bus& a, std::uint64_t value);
  /// value + 1 (ripple half-adder chain), wrapping.
  Bus increment(const Bus& a);
  /// Registered bus.
  Bus dff_bus(const Bus& d, NetId enable = kNoNet);

  // --- inspection ----------------------------------------------------------
  std::size_t net_count() const noexcept { return net_names_.size(); }
  const std::vector<Cell>& cells() const noexcept { return cells_; }
  const std::vector<Rom>& roms() const noexcept { return roms_; }

  struct PortBit {
    std::string name;
    NetId net;
  };
  const std::vector<PortBit>& inputs() const noexcept { return inputs_; }
  const std::vector<PortBit>& outputs() const noexcept { return outputs_; }

  /// Pin count = primary input bits + primary output bits.
  int pin_count() const noexcept {
    return static_cast<int>(inputs_.size() + outputs_.size());
  }

  struct Stats {
    std::size_t gates = 0;  ///< primitive logic gates (pre-mapping)
    std::size_t luts = 0;   ///< pre-mapped LUT cells
    std::size_t dffs = 0;
    std::size_t roms = 0;
    std::size_t rom_bits = 0;
  };
  Stats stats() const noexcept;

  /// Driving cell index of a net, or -1 for inputs/constants/ROM outputs.
  const std::vector<std::int32_t>& driver() const noexcept { return driver_; }

  /// Structural well-formedness check: every cell/ROM/output fanin refers
  /// to an existing net, every used net has a driver (cell, ROM, primary
  /// input — or a flip-flop output), no net is driven twice, and port
  /// names are unique.  Returns a list of human-readable problems (empty =
  /// valid).  Run by tests after every construction/transformation path.
  std::vector<std::string> validate() const;

 private:
  NetId add_cell(CellKind kind, NetId a, NetId b = kNoNet, NetId c = kNoNet);

  std::vector<Cell> cells_;
  std::vector<Rom> roms_;
  std::vector<std::string> net_names_;  // sized = net count (names unused, reserved)
  std::vector<std::int32_t> driver_;
  std::vector<PortBit> inputs_;
  std::vector<PortBit> outputs_;
  NetId const0_;
  NetId const1_;
};

}  // namespace aesip::netlist
