#include "netlist/synth.hpp"

#include "gf/bitmatrix.hpp"
#include "gf/composite.hpp"
#include "gf/gf256.hpp"

#include <cassert>
#include <stdexcept>

namespace aesip::netlist {

Bus byte_of(const Bus& bus, int k) {
  Bus out;
  out.reserve(8);
  for (int b = 0; b < 8; ++b) out.push_back(bus[static_cast<std::size_t>(8 * k + b)]);
  return out;
}

Bus concat(const Bus& a, const Bus& b) {
  Bus out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bus synth_xtime(Netlist& nl, const Bus& a) {
  assert(a.size() == 8);
  const NetId msb = a[7];
  // out = (a << 1) ^ (msb ? 0x1b : 0); 0x1b has bits 0,1,3,4.
  Bus out(8, kNoNet);
  out[0] = msb;
  out[1] = nl.gate_xor(a[0], msb);
  out[2] = a[1];
  out[3] = nl.gate_xor(a[2], msb);
  out[4] = nl.gate_xor(a[3], msb);
  out[5] = a[4];
  out[6] = a[5];
  out[7] = a[6];
  return out;
}

namespace {

/// Bytewise XOR of several byte-buses via balanced trees.
Bus xor_bytes(Netlist& nl, std::span<const Bus> terms) {
  Bus out;
  out.reserve(8);
  std::vector<NetId> bits(terms.size());
  for (int b = 0; b < 8; ++b) {
    for (std::size_t t = 0; t < terms.size(); ++t) bits[t] = terms[t][static_cast<std::size_t>(b)];
    out.push_back(nl.xor_tree(bits));
  }
  return out;
}

}  // namespace

std::array<Bus, 4> synth_mix_column(Netlist& nl, const std::array<Bus, 4>& a, bool inverse) {
  std::array<Bus, 4> out;
  if (!inverse) {
    // b_i = a_i ^ t ^ xtime(a_i ^ a_{i+1}),  t = a0^a1^a2^a3.
    const Bus t01 = nl.xor_bus(a[0], a[1]);
    const Bus t23 = nl.xor_bus(a[2], a[3]);
    const Bus t = nl.xor_bus(t01, t23);
    for (int i = 0; i < 4; ++i) {
      const Bus pair = nl.xor_bus(a[static_cast<std::size_t>(i)],
                                  a[static_cast<std::size_t>((i + 1) & 3)]);
      const Bus xt = synth_xtime(nl, pair);
      const std::array<Bus, 3> terms{a[static_cast<std::size_t>(i)], t, xt};
      out[static_cast<std::size_t>(i)] = xor_bytes(nl, terms);
    }
    return out;
  }
  // Inverse: shared doubling chains, 0e = 8^4^2, 0b = 8^2^1, 0d = 8^4^1,
  // 09 = 8^1; row i of the inverse matrix is {0e,0b,0d,09} rotated right i.
  std::array<Bus, 4> x2, x4, x8;
  for (int i = 0; i < 4; ++i) {
    x2[static_cast<std::size_t>(i)] = synth_xtime(nl, a[static_cast<std::size_t>(i)]);
    x4[static_cast<std::size_t>(i)] = synth_xtime(nl, x2[static_cast<std::size_t>(i)]);
    x8[static_cast<std::size_t>(i)] = synth_xtime(nl, x4[static_cast<std::size_t>(i)]);
  }
  auto mul_by = [&](std::uint8_t coef, int i) -> Bus {
    std::vector<Bus> terms;
    if (coef & 0x8) terms.push_back(x8[static_cast<std::size_t>(i)]);
    if (coef & 0x4) terms.push_back(x4[static_cast<std::size_t>(i)]);
    if (coef & 0x2) terms.push_back(x2[static_cast<std::size_t>(i)]);
    if (coef & 0x1) terms.push_back(a[static_cast<std::size_t>(i)]);
    return xor_bytes(nl, terms);
  };
  constexpr std::uint8_t kInv[4] = {0x0e, 0x0b, 0x0d, 0x09};
  for (int i = 0; i < 4; ++i) {
    std::array<Bus, 4> terms;
    for (int j = 0; j < 4; ++j)
      terms[static_cast<std::size_t>(j)] = mul_by(kInv[(j - i) & 3], j);
    out[static_cast<std::size_t>(i)] =
        xor_bytes(nl, std::span<const Bus>(terms.data(), terms.size()));
  }
  return out;
}

Bus synth_mix_columns128(Netlist& nl, const Bus& state, bool inverse) {
  assert(state.size() == 128);
  Bus out;
  out.reserve(128);
  for (int c = 0; c < 4; ++c) {
    const std::array<Bus, 4> col{byte_of(state, 4 * c), byte_of(state, 4 * c + 1),
                                 byte_of(state, 4 * c + 2), byte_of(state, 4 * c + 3)};
    const std::array<Bus, 4> mixed = synth_mix_column(nl, col, inverse);
    for (const Bus& byte : mixed) out.insert(out.end(), byte.begin(), byte.end());
  }
  return out;
}

Bus synth_gf_mul_lut(Netlist& nl, std::uint8_t coef, const Bus& a) {
  assert(a.size() == 8);
  std::array<std::uint8_t, 256> table{};
  for (int v = 0; v < 256; ++v)
    table[static_cast<std::size_t>(v)] = gf::mul(coef, static_cast<std::uint8_t>(v));
  return synth_sbox_logic(nl, table, a);
}

std::array<Bus, 4> synth_mix_column_lut(Netlist& nl, const std::array<Bus, 4>& a, bool inverse) {
  // Row i of the coefficient matrix is the base row rotated right by i; a
  // coefficient of 1 passes the byte through without a lookup network.
  constexpr std::uint8_t kFwd[4] = {0x02, 0x03, 0x01, 0x01};
  constexpr std::uint8_t kInv[4] = {0x0e, 0x0b, 0x0d, 0x09};
  const std::uint8_t* row = inverse ? kInv : kFwd;
  std::array<Bus, 4> out;
  for (int i = 0; i < 4; ++i) {
    std::array<Bus, 4> terms;
    for (int j = 0; j < 4; ++j) {
      const std::uint8_t coef = row[(j - i) & 3];
      const Bus& src = a[static_cast<std::size_t>(j)];
      terms[static_cast<std::size_t>(j)] =
          coef == 0x01 ? src : synth_gf_mul_lut(nl, coef, src);
    }
    out[static_cast<std::size_t>(i)] =
        xor_bytes(nl, std::span<const Bus>(terms.data(), terms.size()));
  }
  return out;
}

Bus synth_mix_columns128(Netlist& nl, const Bus& state, bool inverse, MixColStyle style) {
  if (style == MixColStyle::kXtime) return synth_mix_columns128(nl, state, inverse);
  assert(state.size() == 128);
  Bus out;
  out.reserve(128);
  for (int c = 0; c < 4; ++c) {
    const std::array<Bus, 4> col{byte_of(state, 4 * c), byte_of(state, 4 * c + 1),
                                 byte_of(state, 4 * c + 2), byte_of(state, 4 * c + 3)};
    const std::array<Bus, 4> mixed = synth_mix_column_lut(nl, col, inverse);
    for (const Bus& byte : mixed) out.insert(out.end(), byte.begin(), byte.end());
  }
  return out;
}

Bus synth_shift_rows128(const Bus& state, bool inverse) {
  assert(state.size() == 128);
  Bus out(128, kNoNet);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) {
      const int src_c = inverse ? (c + 4 - r) & 3 : (c + r) & 3;
      for (int b = 0; b < 8; ++b)
        out[static_cast<std::size_t>(8 * (4 * c + r) + b)] =
            state[static_cast<std::size_t>(8 * (4 * src_c + r) + b)];
    }
  return out;
}

Bus synth_sbox_rom(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& addr,
                   std::string name) {
  return nl.add_rom(table, addr, std::move(name));
}

Bus synth_sbox_logic(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& addr) {
  assert(addr.size() == 8);
  const Bus lo(addr.begin(), addr.begin() + 4);
  Bus out;
  out.reserve(8);
  for (int bit = 0; bit < 8; ++bit) {
    // 16 leaves over the low nibble, one per value of the high nibble.
    std::vector<NetId> leaves;
    leaves.reserve(16);
    for (int h = 0; h < 16; ++h) {
      std::uint16_t mask = 0;
      for (int l = 0; l < 16; ++l)
        if ((table[static_cast<std::size_t>((h << 4) | l)] >> bit) & 1U)
          mask = static_cast<std::uint16_t>(mask | (1U << l));
      if (mask == 0x0000) {
        leaves.push_back(nl.const0());
      } else if (mask == 0xffff) {
        leaves.push_back(nl.const1());
      } else {
        leaves.push_back(nl.add_lut(mask, lo));
      }
    }
    // 2:1 mux tree over the high nibble, one LUT per mux.
    for (int level = 0; level < 4; ++level) {
      const NetId sel = addr[static_cast<std::size_t>(4 + level)];
      std::vector<NetId> next;
      next.reserve(leaves.size() / 2);
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
        const std::array<NetId, 3> ins{leaves[i], leaves[i + 1], sel};
        next.push_back(nl.add_lut(kMuxLutMask, ins));
      }
      leaves = std::move(next);
    }
    out.push_back(leaves[0]);
  }
  return out;
}

namespace {

/// Apply an n-output GF(2) matrix (rows of gf::BitMatrix8) as XOR trees.
Bus apply_matrix(Netlist& nl, const gf::BitMatrix8& m, const Bus& in, int out_bits) {
  Bus out;
  out.reserve(static_cast<std::size_t>(out_bits));
  for (int i = 0; i < out_bits; ++i) {
    std::vector<NetId> terms;
    for (std::size_t j = 0; j < in.size(); ++j)
      if (m.at(i, static_cast<int>(j))) terms.push_back(in[j]);
    out.push_back(nl.xor_tree(terms));
  }
  return out;
}

/// GF(16) multiplier (y^4 + y + 1): 16 partial-product ANDs reduced into
/// four XOR trees.
Bus synth_mul4(Netlist& nl, const Bus& a, const Bus& b) {
  std::array<std::vector<NetId>, 7> m;  // coefficients of the raw product
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      m[static_cast<std::size_t>(i + j)].push_back(
          nl.gate_and(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(j)]));
  auto tree = [&](std::initializer_list<int> ks) {
    std::vector<NetId> terms;
    for (const int k : ks)
      for (const NetId n : m[static_cast<std::size_t>(k)]) terms.push_back(n);
    return nl.xor_tree(terms);
  };
  // Reduction by y^4 = y+1, y^5 = y^2+y, y^6 = y^3+y^2.
  Bus c(4);
  c[0] = tree({0, 4});
  c[1] = tree({1, 4, 5});
  c[2] = tree({2, 5, 6});
  c[3] = tree({3, 6});
  return c;
}

/// GF(16) inverse as four 4-input LUTs.
Bus synth_inv4(Netlist& nl, const Bus& d) {
  Bus out;
  for (int bit = 0; bit < 4; ++bit) {
    std::uint16_t mask = 0;
    for (int v = 0; v < 16; ++v)
      if ((gf::gf16::inverse(static_cast<std::uint8_t>(v)) >> bit) & 1U)
        mask = static_cast<std::uint16_t>(mask | (1U << v));
    out.push_back(nl.add_lut(mask, d));
  }
  return out;
}

}  // namespace

Bus synth_sbox_composite(Netlist& nl, const Bus& addr, bool inverse) {
  assert(addr.size() == 8);
  const gf::CompositeField& cf = gf::composite_field();

  // Input linear layer.  Forward S-box: map to the tower.  Inverse S-box:
  // undo the affine first — t = Tc * Ainv * (x ^ 0x63).
  Bus t;
  if (!inverse) {
    t = apply_matrix(nl, cf.to_matrix(), addr, 8);
  } else {
    const gf::BitMatrix8 ainv = gf::kSBoxAffine.matrix.inverse();
    const gf::BitMatrix8 min = cf.to_matrix() * ainv;
    t = apply_matrix(nl, min, nl.xor_const(addr, 0x63), 8);
  }

  const Bus al(t.begin(), t.begin() + 4);
  const Bus ah(t.begin() + 4, t.end());

  // d = lambda*ah^2 + ah*al + al^2; the squarings and the lambda scale are
  // GF(2)-linear, so they synthesize as matrices.
  const gf::BitMatrix8 sq = gf::gf16::square_matrix();
  const gf::BitMatrix8 sq_scaled = gf::gf16::mul_matrix(cf.lambda()) * sq;
  const Bus sa = apply_matrix(nl, sq_scaled, ah, 4);
  const Bus sb = apply_matrix(nl, sq, al, 4);
  const Bus p = synth_mul4(nl, ah, al);
  const Bus d = nl.xor_bus(nl.xor_bus(sa, p), sb);

  const Bus dinv = synth_inv4(nl, d);
  const Bus rh = synth_mul4(nl, ah, dinv);
  const Bus rl = synth_mul4(nl, nl.xor_bus(ah, al), dinv);
  const Bus v = concat(rl, rh);  // tower representation of the inverse

  // Output linear layer.  Forward: y = A * Tc^-1 * v + 0x63; inverse
  // S-box: y = Tc^-1 * v.
  if (!inverse) {
    const gf::BitMatrix8 mout = gf::kSBoxAffine.matrix * cf.from_matrix();
    return nl.xor_const(apply_matrix(nl, mout, v, 8), 0x63);
  }
  return apply_matrix(nl, cf.from_matrix(), v, 8);
}

Bus synth_sub_word32(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& word,
                     bool as_rom, const std::string& name) {
  return synth_sub_word32(nl, table, word, as_rom ? SboxStyle::kRom : SboxStyle::kShannon,
                          /*inverse_table=*/false, name);
}

Bus synth_sub_word32(Netlist& nl, const std::array<std::uint8_t, 256>& table, const Bus& word,
                     SboxStyle style, bool inverse_table, const std::string& name) {
  assert(word.size() == 32);
  Bus out;
  out.reserve(32);
  for (int k = 0; k < 4; ++k) {
    const Bus addr = byte_of(word, k);
    Bus sub;
    switch (style) {
      case SboxStyle::kRom:
        sub = synth_sbox_rom(nl, table, addr, name + ".sbox" + std::to_string(k));
        break;
      case SboxStyle::kShannon:
        sub = synth_sbox_logic(nl, table, addr);
        break;
      case SboxStyle::kComposite:
        sub = synth_sbox_composite(nl, addr, inverse_table);
        break;
    }
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

}  // namespace aesip::netlist
