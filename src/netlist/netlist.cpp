#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace aesip::netlist {

int Cell::fanin_count() const noexcept {
  switch (kind) {
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0;
    case CellKind::kNot:
      return 1;
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
      return 2;
    case CellKind::kMux2:
      return 3;
    case CellKind::kLut:
      return lut_arity;
    case CellKind::kDff:
      return in[1] == kNoNet ? 1 : 2;
  }
  return 0;
}

Netlist::Netlist() {
  const0_ = new_net();
  const1_ = new_net();
  Cell c0{CellKind::kConst0, {}, const0_, 0, 0};
  Cell c1{CellKind::kConst1, {}, const1_, 0, 0};
  driver_[const0_] = static_cast<std::int32_t>(cells_.size());
  cells_.push_back(c0);
  driver_[const1_] = static_cast<std::int32_t>(cells_.size());
  cells_.push_back(c1);
}

NetId Netlist::new_net() {
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.emplace_back();
  driver_.push_back(-1);
  return id;
}

NetId Netlist::add_input(std::string name) {
  const NetId id = new_net();
  inputs_.push_back(PortBit{std::move(name), id});
  return id;
}

void Netlist::add_output(NetId n, std::string name) {
  outputs_.push_back(PortBit{std::move(name), n});
}

Bus Netlist::add_input_bus(const std::string& name, int width) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) b.push_back(add_input(name + "[" + std::to_string(i) + "]"));
  return b;
}

void Netlist::add_output_bus(const Bus& b, const std::string& name) {
  for (std::size_t i = 0; i < b.size(); ++i)
    add_output(b[i], name + "[" + std::to_string(i) + "]");
}

NetId Netlist::add_cell(CellKind kind, NetId a, NetId b, NetId c) {
  const NetId out = new_net();
  Cell cell{kind, {a, b, c, kNoNet}, out, 0, 0};
  driver_[out] = static_cast<std::int32_t>(cells_.size());
  cells_.push_back(cell);
  return out;
}

NetId Netlist::gate_not(NetId a) { return add_cell(CellKind::kNot, a); }
NetId Netlist::gate_and(NetId a, NetId b) { return add_cell(CellKind::kAnd2, a, b); }
NetId Netlist::gate_or(NetId a, NetId b) { return add_cell(CellKind::kOr2, a, b); }
NetId Netlist::gate_xor(NetId a, NetId b) { return add_cell(CellKind::kXor2, a, b); }
NetId Netlist::gate_mux(NetId sel, NetId lo, NetId hi) {
  return add_cell(CellKind::kMux2, sel, lo, hi);
}

NetId Netlist::add_lut(std::uint16_t mask, std::span<const NetId> inputs) {
  if (inputs.size() > 4) throw std::invalid_argument("netlist: LUT arity > 4");
  const NetId out = new_net();
  add_lut_with_out(out, mask, inputs);
  return out;
}

void Netlist::add_lut_with_out(NetId out, std::uint16_t mask, std::span<const NetId> inputs) {
  if (inputs.size() > 4) throw std::invalid_argument("netlist: LUT arity > 4");
  Cell cell{CellKind::kLut, {kNoNet, kNoNet, kNoNet, kNoNet}, out, mask,
            static_cast<std::uint8_t>(inputs.size())};
  for (std::size_t i = 0; i < inputs.size(); ++i) cell.in[i] = inputs[i];
  driver_[out] = static_cast<std::int32_t>(cells_.size());
  cells_.push_back(cell);
}

NetId Netlist::add_dff(NetId d, NetId enable) {
  return add_cell(CellKind::kDff, d, enable);
}

void Netlist::add_dff_with_out(NetId out, NetId d, NetId enable) {
  Cell cell{CellKind::kDff, {d, enable, kNoNet, kNoNet}, out, 0, 0};
  driver_[out] = static_cast<std::int32_t>(cells_.size());
  cells_.push_back(cell);
}

Bus Netlist::add_rom(const std::array<std::uint8_t, 256>& table, const Bus& addr,
                     std::string name) {
  if (addr.size() != 8) throw std::invalid_argument("netlist: ROM address must be 8 bits");
  Rom rom;
  rom.table = table;
  rom.name = std::move(name);
  Bus out;
  for (int i = 0; i < 8; ++i) {
    rom.addr[static_cast<std::size_t>(i)] = addr[static_cast<std::size_t>(i)];
    const NetId o = new_net();
    rom.out[static_cast<std::size_t>(i)] = o;
    out.push_back(o);
  }
  roms_.push_back(std::move(rom));
  return out;
}

NetId Netlist::xor_tree(std::span<const NetId> nets) {
  if (nets.empty()) return const0();
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(gate_xor(level[i], level[i + 1]));
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Bus Netlist::xor_bus(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(gate_xor(a[i], b[i]));
  return out;
}

Bus Netlist::mux_bus(NetId sel, const Bus& lo, const Bus& hi) {
  assert(lo.size() == hi.size());
  Bus out;
  out.reserve(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) out.push_back(gate_mux(sel, lo[i], hi[i]));
  return out;
}

Bus Netlist::mux_n(const Bus& select, std::span<const Bus> choices) {
  if (choices.empty()) throw std::invalid_argument("netlist: mux_n with no choices");
  if (choices.size() == 1) return choices[0];
  if (select.empty()) throw std::invalid_argument("netlist: mux_n select too narrow");
  // Split on the top select bit at its binary weight; selects beyond the
  // number of choices are undefined (as in synthesized RTL case statements).
  const Bus lower_sel(select.begin(), select.end() - 1);
  const std::size_t half = std::size_t{1} << lower_sel.size();
  if (choices.size() <= half) return mux_n(lower_sel, choices);
  const Bus lo = mux_n(lower_sel, choices.subspan(0, half));
  const Bus hi = mux_n(lower_sel, choices.subspan(half));
  return mux_bus(select.back(), lo, hi);
}

Bus Netlist::constant_bus(std::uint64_t value, int width) {
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    out.push_back(((value >> i) & 1U) ? const1() : const0());
  return out;
}

Bus Netlist::xor_const(const Bus& a, std::uint64_t value) {
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(((value >> i) & 1U) ? gate_not(a[i]) : a[i]);
  return out;
}

NetId Netlist::eq_const(const Bus& a, std::uint64_t value) {
  std::vector<NetId> terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    terms.push_back(((value >> i) & 1U) ? a[i] : gate_not(a[i]));
  // AND tree
  while (terms.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2)
      next.push_back(gate_and(terms[i], terms[i + 1]));
    if (terms.size() % 2 != 0) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.empty() ? const1() : terms[0];
}

Bus Netlist::increment(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  NetId carry = const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate_xor(a[i], carry));
    if (i + 1 < a.size()) carry = gate_and(a[i], carry);
  }
  return out;
}

Bus Netlist::dff_bus(const Bus& d, NetId enable) {
  Bus q;
  q.reserve(d.size());
  for (const NetId n : d) q.push_back(add_dff(n, enable));
  return q;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  const NetId n = static_cast<NetId>(net_count());

  // Driver bookkeeping: driver_ covers cells; ROM outputs and inputs are
  // driver -1.  Detect nets claimed by both a cell and a ROM, or by two
  // ROMs, and dangling fanins.
  std::vector<std::uint8_t> driven(net_count(), 0);
  for (const Cell& c : cells_) {
    if (c.out >= n) {
      problems.push_back("cell output net out of range");
      continue;
    }
    if (driven[c.out]) problems.push_back("net " + std::to_string(c.out) + " driven twice");
    driven[c.out] = 1;
    for (int k = 0; k < c.fanin_count(); ++k) {
      const NetId f = c.in[static_cast<std::size_t>(k)];
      if (f != kNoNet && f >= n)
        problems.push_back("cell fanin net " + std::to_string(f) + " out of range");
    }
  }
  for (const Rom& rom : roms_) {
    for (const NetId a : rom.addr)
      if (a >= n) problems.push_back("ROM address net out of range");
    for (const NetId o : rom.out) {
      if (o >= n) {
        problems.push_back("ROM output net out of range");
        continue;
      }
      if (driven[o]) problems.push_back("net " + std::to_string(o) + " driven twice (ROM)");
      driven[o] = 1;
    }
  }
  std::vector<std::uint8_t> is_input(net_count(), 0);
  for (const auto& pi : inputs_) {
    if (pi.net >= n) {
      problems.push_back("input port net out of range");
      continue;
    }
    if (driven[pi.net])
      problems.push_back("primary input '" + pi.name + "' is also cell-driven");
    is_input[pi.net] = 1;
  }

  // Every used net must have some driver.
  auto check_use = [&](NetId f, const std::string& what) {
    if (f == kNoNet || f >= n) return;
    if (!driven[f] && !is_input[f])
      problems.push_back(what + " reads undriven net " + std::to_string(f));
  };
  for (const Cell& c : cells_)
    for (int k = 0; k < c.fanin_count(); ++k)
      check_use(c.in[static_cast<std::size_t>(k)], "cell");
  for (const Rom& rom : roms_)
    for (const NetId a : rom.addr) check_use(a, "ROM");
  for (const auto& po : outputs_) check_use(po.net, "output '" + po.name + "'");

  // Unique port names.
  std::vector<std::string> names;
  for (const auto& pi : inputs_) names.push_back("in:" + pi.name);
  for (const auto& po : outputs_) names.push_back("out:" + po.name);
  std::sort(names.begin(), names.end());
  for (std::size_t i = 1; i < names.size(); ++i)
    if (names[i] == names[i - 1]) problems.push_back("duplicate port " + names[i]);

  return problems;
}

Netlist::Stats Netlist::stats() const noexcept {
  Stats s;
  for (const Cell& c : cells_) {
    switch (c.kind) {
      case CellKind::kNot:
      case CellKind::kAnd2:
      case CellKind::kOr2:
      case CellKind::kXor2:
      case CellKind::kMux2:
        ++s.gates;
        break;
      case CellKind::kLut:
        ++s.luts;
        break;
      case CellKind::kDff:
        ++s.dffs;
        break;
      default:
        break;
    }
  }
  s.roms = roms_.size();
  s.rom_bits = roms_.size() * 2048;
  return s;
}

}  // namespace aesip::netlist
