#include "core/ip_synth.hpp"

#include <stdexcept>
#include <vector>

#include "aes/sbox.hpp"
#include "gf/gf256.hpp"
#include "netlist/synth.hpp"

namespace aesip::core {

using netlist::Bus;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

namespace {

/// RotWord on a 32-bit bus: byte k of the result is byte (k+1) mod 4 of the
/// input — pure wiring.
Bus rot_word_bus(const Bus& w) {
  Bus out;
  out.reserve(32);
  for (int k = 0; k < 4; ++k) {
    const Bus b = netlist::byte_of(w, (k + 1) & 3);
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

Bus column_of(const Bus& state, int c) {
  return Bus(state.begin() + 32 * c, state.begin() + 32 * (c + 1));
}

Bus splice_column(const Bus& state, int c, const Bus& col) {
  Bus out = state;
  for (int b = 0; b < 32; ++b)
    out[static_cast<std::size_t>(32 * c + b)] = col[static_cast<std::size_t>(b)];
  return out;
}

/// Round-constant byte as a function of the 4-bit round counter.  Forward
/// schedule uses rcon(round); the on-the-fly inverse schedule needs
/// rcon(11 - round).  Constant folding collapses the mux to a few LUTs.
/// (Nk = 4 only — wider keys walk the xtime chain in a register instead,
/// because their boundary index is no longer a function of the round.)
Bus rcon_bus(Netlist& nl, const Bus& round, bool inverse) {
  std::vector<Bus> choices;
  choices.push_back(nl.constant_bus(0, 8));  // round 0 unused
  for (unsigned r = 1; r <= 10; ++r)
    choices.push_back(nl.constant_bus(gf::rcon(inverse ? 11 - r : r), 8));
  return nl.mux_n(round, choices);
}

/// KStran output column: rk_col0 ^ SubWord(RotWord(addr_word)) ^ rcon.
Bus synth_kstran(Netlist& nl, const Bus& addr_word, const Bus& rk_col0, const Bus& rcon_byte,
                 netlist::SboxStyle style, const std::string& name) {
  const Bus rotated = rot_word_bus(addr_word);
  const Bus sub =
      netlist::synth_sub_word32(nl, aes::kSBox, rotated, style, /*inverse_table=*/false, name);
  Bus col0 = nl.xor_bus(rk_col0, sub);
  for (int b = 0; b < 8; ++b)
    col0[static_cast<std::size_t>(b)] =
        nl.gate_xor(col0[static_cast<std::size_t>(b)], rcon_byte[static_cast<std::size_t>(b)]);
  return col0;
}

/// GF(2^8) xtime on an 8-bit bus: rcon(i+1) = xtime(rcon(i)), so the rcon
/// register advances along the chain instead of muxing constants.
Bus xtime_bus(Netlist& nl, const Bus& a) {
  Bus o(8, kNoNet);
  o[0] = a[7];
  o[1] = nl.gate_xor(a[0], a[7]);
  o[2] = a[1];
  o[3] = nl.gate_xor(a[2], a[7]);
  o[4] = nl.gate_xor(a[3], a[7]);
  o[5] = a[4];
  o[6] = a[5];
  o[7] = a[6];
  return o;
}

/// Inverse of xtime_bus: steps the decrypt-side rcon register backwards.
Bus inv_xtime_bus(Netlist& nl, const Bus& a) {
  Bus o(8, kNoNet);
  o[0] = nl.gate_xor(a[1], a[0]);
  o[1] = a[2];
  o[2] = nl.gate_xor(a[3], a[0]);
  o[3] = nl.gate_xor(a[4], a[0]);
  o[4] = a[5];
  o[5] = a[6];
  o[6] = a[7];
  o[7] = a[0];
  return o;
}

/// 3-bit decrement (borrow ripple) for the inverse window-position counter.
Bus dec3_bus(Netlist& nl, const Bus& a) {
  Bus o(3, kNoNet);
  const NetId n0 = nl.gate_not(a[0]);
  o[0] = n0;
  o[1] = nl.gate_xor(a[1], n0);
  o[2] = nl.gate_xor(a[2], nl.gate_and(n0, nl.gate_not(a[1])));
  return o;
}

Bus pre_allocated_bus(Netlist& nl, int width) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) b.push_back(nl.new_net());
  return b;
}

}  // namespace

Netlist synthesize_ip(IpMode mode, bool sbox_as_rom) {
  return synthesize_ip(mode, sbox_as_rom ? netlist::SboxStyle::kRom
                                         : netlist::SboxStyle::kShannon);
}

Netlist synthesize_ip(IpMode mode, netlist::SboxStyle style) {
  return synthesize_ip(mode, style, netlist::MixColStyle::kXtime);
}

Netlist synthesize_ip(IpMode mode, netlist::SboxStyle style, netlist::MixColStyle mixcol,
                      int key_bits) {
  if (key_bits != 128 && key_bits != 192 && key_bits != 256)
    throw std::invalid_argument("synthesize_ip: key_bits must be 128, 192 or 256");
  const int nk = key_bits / 32;
  const int nr = nk + 6;  // max(Nk, Nb) + 6 with Nb fixed at 4

  Netlist nl;
  const bool has_enc = mode != IpMode::kDecrypt;
  const bool has_dec = mode != IpMode::kEncrypt;

  // ===== pins (paper Table 1; clk counts, giving 261/262) ====================
  (void)nl.add_input("clk");  // netlist clocking is implicit; the pin is real
  const NetId setup_pin = nl.add_input("setup");
  const NetId wr_data = nl.add_input("wr_data");
  const NetId wr_key = nl.add_input("wr_key");
  const Bus din = nl.add_input_bus("din", 128);
  const NetId encdec = mode == IpMode::kBoth ? nl.add_input("encdec") : kNoNet;

  // Multi-beat key loads (Nk > 4): beat 0 carries key words 0..3, beat 1
  // words 4..Nk-1 in the low din lanes.  key_beat_q tracks which beat is
  // next; wr_key_last marks the completing beat — the one that arms the
  // key (and, on decrypt-capable devices, starts the setup pass).
  NetId key_beat_q = nl.const0();
  NetId wr_key_last = wr_key;
  if (nk > 4) {
    key_beat_q = nl.new_net();
    NetId beat_d = nl.gate_mux(wr_key, key_beat_q, nl.gate_not(key_beat_q));
    beat_d = nl.gate_and(beat_d, nl.gate_not(setup_pin));
    nl.add_dff_with_out(key_beat_q, beat_d);
    wr_key_last = nl.gate_and(wr_key, key_beat_q);
  }

  // ===== bus-side registers (Data_In / Key_In processes) =====================
  const Bus data_in_reg = nl.dff_bus(din, wr_data);
  const Bus key_reg = nk == 4
                          ? nl.dff_bus(din, wr_key)
                          : nl.dff_bus(din, nl.gate_and(wr_key, nl.gate_not(key_beat_q)));
  Bus key_hi;  // key words 4..Nk-1 (Nk > 4 only)
  if (nk > 4)
    key_hi = nl.dff_bus(Bus(din.begin(), din.begin() + 32 * (nk - 4)),
                        nl.gate_and(wr_key, key_beat_q));

  // ===== control FSM ==========================================================
  // phase: 0 idle, 1 sub (4 ByteSub cycles), 2 mix (the 128-bit cycle),
  // 3 key setup.  Encrypt rounds run sub->mix, decrypt rounds mix->sub.
  const Bus phase_q = pre_allocated_bus(nl, 2);
  const Bus round_q = pre_allocated_bus(nl, 4);
  const Bus sub_q = pre_allocated_bus(nl, 2);
  const NetId pending_q = nl.new_net();
  const NetId key_valid_q = nl.new_net();
  const NetId dec_q = mode == IpMode::kEncrypt ? nl.const0()
                      : mode == IpMode::kDecrypt ? nl.const1()
                                                 : nl.new_net();

  // Registered decodes: phase/counter decodes are re-registered from the
  // next-state vectors (FSM output encoding, as synthesis tools apply), so
  // the datapath mux selects come straight off registers instead of through
  // comparator LUTs.  Values are identical to combinational decodes every
  // cycle; boot values of the masked decodes (sub_is) are don't-care.
  const NetId is_sub = nl.new_net();
  const NetId is_mix = nl.new_net();
  const NetId is_setup = has_dec ? nl.new_net() : nl.const0();
  const NetId sub_last = nl.new_net();
  const NetId round_last = nl.new_net();
  const NetId first_round = nl.new_net();
  const NetId not_idle = nl.new_net();  // inverted so the reset state reads idle
  const NetId is_idle = nl.gate_not(not_idle);
  std::array<NetId, 4> sub_is{};
  for (int v = 0; v < 4; ++v) sub_is[static_cast<std::size_t>(v)] = nl.new_net();

  // finish: encrypt at the last 128-bit cycle, decrypt at the last IByteSub.
  const NetId enc_finish = nl.gate_and(nl.gate_and(is_mix, round_last), nl.gate_not(dec_q));
  const NetId dec_finish =
      has_dec ? nl.gate_and(nl.gate_and(is_sub, nl.gate_and(sub_last, round_last)), dec_q)
              : nl.const0();
  const NetId finish = nl.gate_or(enc_finish, dec_finish);

  // start: idle-or-finishing with a block available (wr_data counts this
  // cycle — the Data_In process forwards it combinationally at start).
  const NetId block_avail = nl.gate_or(pending_q, wr_data);
  const NetId start = nl.gate_and(nl.gate_and(nl.gate_or(is_idle, finish), block_avail),
                                  nl.gate_and(key_valid_q, nl.gate_not(wr_key)));

  // Direction sampled at start (kBoth); constant otherwise.
  NetId dec_next = dec_q;
  if (mode == IpMode::kBoth) {
    dec_next = nl.gate_mux(start, dec_q, nl.gate_not(encdec));
    nl.add_dff_with_out(dec_q, dec_next);
  }

  // --- counters ---------------------------------------------------------------
  const NetId advancing = nl.gate_or(is_sub, is_setup);
  const Bus sub_inc = nl.increment(sub_q);
  Bus sub_d = nl.mux_bus(nl.gate_and(advancing, nl.gate_not(sub_last)), nl.constant_bus(0, 2),
                         sub_inc);

  const Bus round_inc = nl.increment(round_q);
  // Encrypt advances the round at mix; decrypt and key setup at sub_last.
  const NetId round_adv = nl.gate_or(
      nl.gate_and(is_mix, nl.gate_and(nl.gate_not(dec_q), nl.gate_not(round_last))),
      nl.gate_and(nl.gate_and(advancing, sub_last),
                  nl.gate_and(nl.gate_or(dec_q, is_setup), nl.gate_not(round_last))));
  Bus round_d = nl.mux_bus(round_adv, round_q, round_inc);
  round_d = nl.mux_bus(nl.gate_or(start, wr_key), round_d, nl.constant_bus(1, 4));

  // --- phase transitions --------------------------------------------------------
  const Bus kIdleV = nl.constant_bus(0, 2);
  const Bus kSubV = nl.constant_bus(1, 2);
  const Bus kMixV = nl.constant_bus(2, 2);
  const Bus kSetupV = nl.constant_bus(3, 2);
  const NetId setup_done = nl.gate_and(is_setup, nl.gate_and(sub_last, round_last));

  Bus phase_d = phase_q;
  // sub -> mix (unless this was the decrypt finish).
  phase_d = nl.mux_bus(nl.gate_and(nl.gate_and(is_sub, sub_last), nl.gate_not(dec_finish)),
                       phase_d, kMixV);
  // mix -> sub (encrypt: unless finishing; decrypt: always).
  phase_d = nl.mux_bus(nl.gate_and(is_mix, nl.gate_not(enc_finish)), phase_d, kSubV);
  phase_d = nl.mux_bus(nl.gate_and(finish, nl.gate_not(start)), phase_d, kIdleV);
  phase_d = nl.mux_bus(setup_done, phase_d, kIdleV);
  // start: encrypt begins with ByteSub, decrypt with the 128-bit cycle.
  const Bus start_phase = nl.mux_bus(dec_next, kSubV, kMixV);
  phase_d = nl.mux_bus(start, phase_d, start_phase);
  // A key write aborts any in-flight block: decrypt-capable devices enter
  // key setup once the last beat lands, encrypt-only devices (and partial
  // multi-beat loads) return to idle.
  Bus key_phase = has_dec ? kSetupV : kIdleV;
  if (nk > 4 && has_dec) key_phase = nl.mux_bus(key_beat_q, kIdleV, kSetupV);
  phase_d = nl.mux_bus(wr_key, phase_d, key_phase);
  phase_d = nl.mux_bus(setup_pin, phase_d, kIdleV);
  sub_d = nl.mux_bus(nl.gate_or(start, nl.gate_or(wr_key, setup_pin)), sub_d,
                     nl.constant_bus(0, 2));

  // --- flags ---------------------------------------------------------------------
  NetId pending_d = nl.gate_and(block_avail, nl.gate_not(start));
  pending_d = nl.gate_and(pending_d, nl.gate_not(nl.gate_or(setup_pin, wr_key)));
  NetId key_valid_d;
  if (has_dec)
    key_valid_d = nl.gate_or(setup_done, nl.gate_and(key_valid_q, nl.gate_not(wr_key)));
  else if (nk == 4)
    key_valid_d = nl.gate_or(wr_key, key_valid_q);
  else  // encrypt-only multi-beat: valid only once the last beat lands
    key_valid_d = nl.gate_mux(wr_key, key_valid_q, key_beat_q);
  key_valid_d = nl.gate_and(key_valid_d, nl.gate_not(setup_pin));

  for (std::size_t i = 0; i < 2; ++i) nl.add_dff_with_out(phase_q[i], phase_d[i]);
  for (std::size_t i = 0; i < 4; ++i) nl.add_dff_with_out(round_q[i], round_d[i]);
  for (std::size_t i = 0; i < 2; ++i) nl.add_dff_with_out(sub_q[i], sub_d[i]);
  nl.add_dff_with_out(pending_q, pending_d);
  nl.add_dff_with_out(key_valid_q, key_valid_d);
  // Registered decode outputs (see above).
  nl.add_dff_with_out(is_sub, nl.eq_const(phase_d, 1));
  nl.add_dff_with_out(is_mix, nl.eq_const(phase_d, 2));
  if (has_dec) nl.add_dff_with_out(is_setup, nl.eq_const(phase_d, 3));
  nl.add_dff_with_out(not_idle, nl.gate_not(nl.eq_const(phase_d, 0)));
  nl.add_dff_with_out(sub_last, nl.eq_const(sub_d, 3));
  nl.add_dff_with_out(round_last, nl.eq_const(round_d, static_cast<std::uint64_t>(nr)));
  nl.add_dff_with_out(first_round, nl.eq_const(round_d, 1));
  for (int v = 0; v < 4; ++v)
    nl.add_dff_with_out(sub_is[static_cast<std::size_t>(v)],
                        nl.eq_const(sub_d, static_cast<std::uint64_t>(v)));

  // ===== key datapath ==========================================================
  // Handles the state datapath consumes, produced by the key-size branch:
  Bus enc_mix_key;    // round key of the encrypt 128-bit cycle
  Bus dec_mix_key;    // round key operand of the decrypt 128-bit cycle
  Bus load_key_sel;   // initial AddRoundKey operand (folded into the load path)
  Bus dec_final_key;  // final decrypt AddRoundKey operand (key words 0..3)

  if (nk == 4) {
    // ---- the paper's AES-128 organization: round_key / next_key pair --------
    const Bus round_key = pre_allocated_bus(nl, 128);
    const Bus next_key = pre_allocated_bus(nl, 128);
    const Bus dec_base_key = has_dec ? pre_allocated_bus(nl, 128) : Bus{};

    // KStran units.  Encrypt-only: one forward bank.  Decrypt-only: one bank
    // shared between key setup (forward addressing/rcon) and the inverse
    // schedule.  Both: two banks, one per direction's key path (the paper's
    // 16-S-box configuration).
    Bus fwd_col0, inv_col0;
    const Bus fwd_addr_word = column_of(round_key, 3);
    const Bus inv_addr_word = column_of(next_key, 3);
    const Bus rcon_fwd = rcon_bus(nl, round_q, false);
    if (mode == IpMode::kEncrypt) {
      fwd_col0 = synth_kstran(nl, fwd_addr_word, column_of(round_key, 0), rcon_fwd, style,
                              "kstran");
    } else if (mode == IpMode::kDecrypt) {
      const Bus rcon_inv = rcon_bus(nl, round_q, true);
      const Bus addr = nl.mux_bus(is_setup, inv_addr_word, fwd_addr_word);
      const Bus rcon = nl.mux_bus(is_setup, rcon_inv, rcon_fwd);
      const Bus shared = synth_kstran(nl, addr, column_of(round_key, 0), rcon, style, "kstran");
      fwd_col0 = shared;
      inv_col0 = shared;
    } else {
      const Bus rcon_inv = rcon_bus(nl, round_q, true);
      fwd_col0 = synth_kstran(nl, fwd_addr_word, column_of(round_key, 0), rcon_fwd, style,
                              "kstran_enc");
      inv_col0 = synth_kstran(nl, inv_addr_word, column_of(round_key, 0), rcon_inv, style,
                              "kstran_dec");
    }

    // Staging D values.
    std::array<Bus, 4> fwd_d, inv_d;
    fwd_d[0] = fwd_col0;
    for (int c = 1; c < 4; ++c)
      fwd_d[static_cast<std::size_t>(c)] =
          nl.xor_bus(column_of(next_key, c - 1), column_of(round_key, c));
    if (has_dec) {
      inv_d[0] = inv_col0;
      for (int c = 1; c < 4; ++c)
        inv_d[static_cast<std::size_t>(c)] =
            nl.xor_bus(column_of(round_key, c), column_of(round_key, c - 1));
    }

    // next_key registers with per-column enables.
    const NetId fwd_staging = nl.gate_or(is_setup, nl.gate_and(is_sub, nl.gate_not(dec_q)));
    const NetId inv_staging = has_dec ? nl.gate_and(is_sub, dec_q) : nl.const0();
    for (int col = 0; col < 4; ++col) {
      Bus d = fwd_d[static_cast<std::size_t>(col)];
      NetId en = nl.gate_and(fwd_staging, sub_is[static_cast<std::size_t>(col)]);
      if (has_dec) {
        d = nl.mux_bus(inv_staging, d, inv_d[static_cast<std::size_t>(col)]);
        en = nl.gate_or(en, nl.gate_and(inv_staging, sub_is[static_cast<std::size_t>(3 - col)]));
      }
      const Bus q = column_of(next_key, col);
      for (int b = 0; b < 32; ++b)
        nl.add_dff_with_out(q[static_cast<std::size_t>(b)], d[static_cast<std::size_t>(b)], en);
    }

    // Fully-staged views (the column written this cycle spliced in), used by
    // the same-edge consumers round_key and dec_base_key.
    const Bus staged_fwd = splice_column(next_key, 3, fwd_d[3]);
    const Bus staged_inv = has_dec ? splice_column(next_key, 0, inv_d[0]) : Bus{};

    // round_key register.
    {
      Bus start_val = key_reg;
      if (mode == IpMode::kDecrypt) start_val = dec_base_key;
      else if (mode == IpMode::kBoth) start_val = nl.mux_bus(dec_next, key_reg, dec_base_key);

      Bus d = next_key;  // encrypt mix cycle
      NetId en = nl.gate_or(start, nl.gate_and(is_mix, nl.gate_not(dec_q)));
      if (has_dec) {
        d = nl.mux_bus(nl.gate_and(is_setup, sub_last), d, staged_fwd);
        d = nl.mux_bus(nl.gate_and(inv_staging, sub_last), d, staged_inv);
        en = nl.gate_or(en, nl.gate_and(nl.gate_or(is_setup, inv_staging), sub_last));
      }
      d = nl.mux_bus(start, d, start_val);
      if (has_dec) {
        d = nl.mux_bus(wr_key, d, din);  // key setup seeds from the bus
        en = nl.gate_or(en, wr_key);
      }
      for (int b = 0; b < 128; ++b)
        nl.add_dff_with_out(round_key[static_cast<std::size_t>(b)],
                            d[static_cast<std::size_t>(b)], en);
    }

    if (has_dec) {
      for (int b = 0; b < 128; ++b)
        nl.add_dff_with_out(dec_base_key[static_cast<std::size_t>(b)],
                            staged_fwd[static_cast<std::size_t>(b)], setup_done);
    }

    enc_mix_key = next_key;
    dec_mix_key = round_key;
    dec_final_key = key_reg;
    load_key_sel = key_reg;
    if (mode == IpMode::kDecrypt) load_key_sel = dec_base_key;
    else if (mode == IpMode::kBoth) load_key_sel = nl.mux_bus(dec_next, key_reg, dec_base_key);
  } else {
    // ---- sliding-window schedule (Nk = 6/8) ---------------------------------
    // W[0..Nk-1] holds the last Nk schedule words.  Each generating cycle
    // computes one word w[i] = w[i-Nk] ^ t(w[i-1]) and shifts the window up
    // (encrypt rounds and key setup), or recovers w[m] = w[m+Nk] ^ t(w[m+Nk-1])
    // and shifts it down (decrypt rounds).  The encrypt round key is the
    // window bottom (W[0..3]), the decrypt round key the window top.  kpos/p
    // track the schedule index mod Nk; the rcon registers walk the GF(2^8)
    // xtime chain instead of muxing round-indexed constants, because for
    // Nk > 4 the boundary index is no longer a function of the round.
    std::vector<Bus> kw(static_cast<std::size_t>(nk));  // registered key words
    for (int c = 0; c < 4; ++c) kw[static_cast<std::size_t>(c)] = column_of(key_reg, c);
    for (int c = 4; c < nk; ++c)
      kw[static_cast<std::size_t>(c)] =
          Bus(key_hi.begin() + 32 * (c - 4), key_hi.begin() + 32 * (c - 3));

    std::vector<Bus> W(static_cast<std::size_t>(nk));
    for (auto& w : W) w = pre_allocated_bus(nl, 32);
    std::vector<Bus> dec_base;  // final window captured by key setup
    if (has_dec) {
      dec_base.resize(static_cast<std::size_t>(nk));
      for (auto& w : dec_base) w = pre_allocated_bus(nl, 32);
    }

    const Bus kpos_q = pre_allocated_bus(nl, 3);
    const Bus rcon_f_q = pre_allocated_bus(nl, 8);
    const NetId kpos0 = nl.eq_const(kpos_q, 0);
    const NetId kpos_top = nl.eq_const(kpos_q, static_cast<std::uint64_t>(nk - 1));

    // Generation enables.  The setup pass is 4*Nr cycles but only S - Nk
    // words are real; the trailing cycles (2 for Nk=6, 4 for Nk=8) are
    // padding, and generation is gated off so the window freezes on
    // w[S-Nk..S-1] — the decrypt base.
    const NetId fwd_gen_block =
        mode == IpMode::kDecrypt ? nl.const0() : nl.gate_and(is_sub, nl.gate_not(dec_q));
    NetId fwd_gen = fwd_gen_block;
    if (has_dec) {
      const NetId gen_stop = nk == 6 ? nl.gate_and(round_last, sub_q[1]) : round_last;
      fwd_gen = nl.gate_or(fwd_gen_block, nl.gate_and(is_setup, nl.gate_not(gen_stop)));
    }
    const NetId inv_gen = has_dec ? nl.gate_and(is_sub, dec_q) : nl.const0();

    Bus p_q, rcon_i_q;
    NetId p0 = kNoNet;
    if (has_dec) {
      p_q = pre_allocated_bus(nl, 3);
      rcon_i_q = pre_allocated_bus(nl, 8);
      p0 = nl.eq_const(p_q, 0);
    }

    // KStran bank(s): always the forward S-box; rotated at Nk boundaries.
    const Bus fwd_last = W[static_cast<std::size_t>(nk - 1)];
    const Bus fwd_addr = nl.mux_bus(kpos0, fwd_last, rot_word_bus(fwd_last));
    Bus inv_last, inv_addr;
    if (has_dec) {
      inv_last = W[static_cast<std::size_t>(nk - 2)];
      inv_addr = nl.mux_bus(p0, inv_last, rot_word_bus(inv_last));
    }
    Bus sub_f, sub_i;
    if (mode == IpMode::kEncrypt) {
      sub_f = netlist::synth_sub_word32(nl, aes::kSBox, fwd_addr, style,
                                        /*inverse_table=*/false, "kstran");
    } else if (mode == IpMode::kDecrypt) {
      const Bus addr = nl.mux_bus(is_setup, inv_addr, fwd_addr);
      sub_f = netlist::synth_sub_word32(nl, aes::kSBox, addr, style,
                                        /*inverse_table=*/false, "kstran");
      sub_i = sub_f;
    } else {
      sub_f = netlist::synth_sub_word32(nl, aes::kSBox, fwd_addr, style,
                                        /*inverse_table=*/false, "kstran_enc");
      sub_i = netlist::synth_sub_word32(nl, aes::kSBox, inv_addr, style,
                                        /*inverse_table=*/false, "kstran_dec");
    }

    // t(prev): KStran (rotate+sub+rcon) at boundaries, SubWord alone at
    // position 4 when Nk=8, the raw word otherwise.
    auto rcon_xor = [&nl](const Bus& word, const Bus& rcon) {
      Bus out = word;
      for (int b = 0; b < 8; ++b)
        out[static_cast<std::size_t>(b)] = nl.gate_xor(word[static_cast<std::size_t>(b)],
                                                       rcon[static_cast<std::size_t>(b)]);
      return out;
    };
    Bus t_f = nk == 8 ? nl.mux_bus(nl.eq_const(kpos_q, 4), fwd_last, sub_f) : fwd_last;
    t_f = nl.mux_bus(kpos0, t_f, rcon_xor(sub_f, rcon_f_q));
    const Bus new_f = nl.xor_bus(W[0], t_f);
    Bus new_i;
    if (has_dec) {
      Bus t_i = nk == 8 ? nl.mux_bus(nl.eq_const(p_q, 4), inv_last, sub_i) : inv_last;
      t_i = nl.mux_bus(p0, t_i, rcon_xor(sub_i, rcon_i_q));
      new_i = nl.xor_bus(W[static_cast<std::size_t>(nk - 1)], t_i);
    }

    // Seed strobes: the forward generator restarts at every encrypt block
    // start and at the last key beat (setup); the inverse at decrypt starts.
    const NetId start_enc =
        mode == IpMode::kDecrypt ? nl.const0()
        : mode == IpMode::kBoth  ? nl.gate_and(start, nl.gate_not(dec_next))
                                 : start;
    const NetId start_dec = !has_dec            ? nl.const0()
                            : mode == IpMode::kBoth ? nl.gate_and(start, dec_next)
                                                    : start;
    const NetId seed_f = has_dec ? nl.gate_or(start_enc, wr_key_last) : start_enc;

    // Window registers: shift up (forward), shift down (inverse), reseed at
    // block start, and — on decrypt-capable devices — at the last key beat
    // (words 4..Nk-1 forwarded from din, which the Key_In register is
    // capturing on the same edge).
    NetId w_en = nl.gate_or(fwd_gen, start);
    if (has_dec) w_en = nl.gate_or(w_en, nl.gate_or(inv_gen, wr_key_last));
    for (int c = 0; c < nk; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      Bus d = c < nk - 1 ? W[ci + 1] : new_f;
      if (has_dec) {
        const Bus id = c > 0 ? W[ci - 1] : new_i;
        d = nl.mux_bus(inv_gen, d, id);
      }
      Bus sv = kw[ci];
      if (mode == IpMode::kDecrypt) sv = dec_base[ci];
      else if (mode == IpMode::kBoth) sv = nl.mux_bus(dec_next, kw[ci], dec_base[ci]);
      d = nl.mux_bus(start, d, sv);
      if (has_dec) {
        const Bus seed_word = c < 4 ? kw[ci] : column_of(din, c - 4);
        d = nl.mux_bus(wr_key_last, d, seed_word);
      }
      for (int b = 0; b < 32; ++b)
        nl.add_dff_with_out(W[ci][static_cast<std::size_t>(b)],
                            d[static_cast<std::size_t>(b)], w_en);
    }

    // Forward position counter and rcon register.
    {
      const Bus wrap = nl.mux_bus(kpos_top, nl.increment(kpos_q), nl.constant_bus(0, 3));
      Bus d = nl.mux_bus(fwd_gen, kpos_q, wrap);
      d = nl.mux_bus(seed_f, d, nl.constant_bus(0, 3));
      for (int b = 0; b < 3; ++b)
        nl.add_dff_with_out(kpos_q[static_cast<std::size_t>(b)], d[static_cast<std::size_t>(b)]);
      Bus rd = nl.mux_bus(nl.gate_and(fwd_gen, kpos0), rcon_f_q, xtime_bus(nl, rcon_f_q));
      rd = nl.mux_bus(seed_f, rd, nl.constant_bus(1, 8));
      for (int b = 0; b < 8; ++b)
        nl.add_dff_with_out(rcon_f_q[static_cast<std::size_t>(b)],
                            rd[static_cast<std::size_t>(b)]);
    }
    if (has_dec) {
      // Inverse position counter (counts down, wrapping to Nk-1) and rcon
      // register (walks the xtime chain backwards from the last boundary,
      // rcon(8) for Nk=6 / rcon(7) for Nk=8).
      const Bus wrap =
          nl.mux_bus(p0, dec3_bus(nl, p_q), nl.constant_bus(static_cast<std::uint64_t>(nk - 1), 3));
      Bus d = nl.mux_bus(inv_gen, p_q, wrap);
      d = nl.mux_bus(start_dec, d, nl.constant_bus(3, 3));
      for (int b = 0; b < 3; ++b)
        nl.add_dff_with_out(p_q[static_cast<std::size_t>(b)], d[static_cast<std::size_t>(b)]);
      const int sched = 4 * (nr + 1);
      const std::uint64_t rci0 = gf::rcon(static_cast<unsigned>((sched - nk - 1) / nk + 1));
      Bus rd = nl.mux_bus(nl.gate_and(inv_gen, p0), rcon_i_q, inv_xtime_bus(nl, rcon_i_q));
      rd = nl.mux_bus(start_dec, rd, nl.constant_bus(rci0, 8));
      for (int b = 0; b < 8; ++b)
        nl.add_dff_with_out(rcon_i_q[static_cast<std::size_t>(b)],
                            rd[static_cast<std::size_t>(b)]);
      // Final-window capture: generation idles through the setup padding
      // cycles, so W holds exactly w[S-Nk..S-1] at setup_done.
      for (int c = 0; c < nk; ++c)
        for (int b = 0; b < 32; ++b)
          nl.add_dff_with_out(dec_base[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)],
                              W[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)],
                              setup_done);
    }

    auto concat4 = [](const std::vector<Bus>& ws, int from) {
      Bus out;
      out.reserve(128);
      for (int c = from; c < from + 4; ++c)
        out.insert(out.end(), ws[static_cast<std::size_t>(c)].begin(),
                   ws[static_cast<std::size_t>(c)].end());
      return out;
    };
    enc_mix_key = concat4(W, 0);
    dec_mix_key = concat4(W, nk - 4);
    dec_final_key = key_reg;  // key words 0..3
    load_key_sel = key_reg;
    if (has_dec) {
      const Bus dec_top = concat4(dec_base, nk - 4);  // K_Nr
      load_key_sel =
          mode == IpMode::kDecrypt ? dec_top : nl.mux_bus(dec_next, key_reg, dec_top);
    }
  }

  // ===== state datapath =========================================================
  const Bus state = pre_allocated_bus(nl, 128);

  // Initial AddRoundKey folded into the load path; the Data_In register is
  // forwarded when the block arrives on the starting cycle itself.
  const Bus data_src = nl.mux_bus(wr_data, data_in_reg, din);
  const Bus init_state = nl.xor_bus(data_src, load_key_sel);

  // ByteSub slice: 4:1 column mux feeding the data S-box bank(s).
  const std::array<Bus, 4> cols{column_of(state, 0), column_of(state, 1), column_of(state, 2),
                                column_of(state, 3)};
  const Bus bs_addr = nl.mux_n(sub_q, cols);
  Bus sub_out;
  {
    Bus bs_out, ibs_out;
    if (has_enc)
      bs_out = netlist::synth_sub_word32(nl, aes::kSBox, bs_addr, style,
                                         /*inverse_table=*/false, "bytesub");
    if (has_dec)
      ibs_out = netlist::synth_sub_word32(nl, aes::kInvSBox, bs_addr, style,
                                          /*inverse_table=*/true, "inv_bytesub");
    if (has_enc && has_dec) sub_out = nl.mux_bus(dec_q, bs_out, ibs_out);
    else sub_out = has_enc ? bs_out : ibs_out;
  }

  // 128-bit cycle.
  Bus mix_result_enc, mix_result_dec;
  if (has_enc) {
    const Bus sr = netlist::synth_shift_rows128(state, false);
    const Bus mc = netlist::synth_mix_columns128(nl, sr, false, mixcol);
    const Bus pre = nl.mux_bus(round_last, mc, sr);  // last round skips MixColumn
    mix_result_enc = nl.xor_bus(pre, enc_mix_key);
  }
  if (has_dec) {
    const Bus ak = nl.xor_bus(state, dec_mix_key);
    const Bus imc = netlist::synth_mix_columns128(nl, ak, true, mixcol);
    const Bus pre = nl.mux_bus(first_round, imc, state);  // round 1 skips IMixColumn
    mix_result_dec = netlist::synth_shift_rows128(pre, true);
  }
  Bus mix_result;
  if (has_enc && has_dec) mix_result = nl.mux_bus(dec_q, mix_result_enc, mix_result_dec);
  else mix_result = has_enc ? mix_result_enc : mix_result_dec;

  // State register: load / ByteSub column writeback / 128-bit result.
  for (int col = 0; col < 4; ++col) {
    Bus d = nl.mux_bus(is_mix, sub_out, column_of(mix_result, col));
    d = nl.mux_bus(start, d, column_of(init_state, col));
    const NetId en = nl.gate_or(
        start, nl.gate_or(is_mix, nl.gate_and(is_sub, sub_is[static_cast<std::size_t>(col)])));
    const Bus q = column_of(state, col);
    for (int b = 0; b < 32; ++b)
      nl.add_dff_with_out(q[static_cast<std::size_t>(b)], d[static_cast<std::size_t>(b)], en);
  }

  // ===== Out process ============================================================
  // Encrypt result = last 128-bit cycle; decrypt result = state with the
  // final IByteSub column spliced, XOR key words 0..3 (final AddRoundKey
  // folded into the output path).
  Bus result = mix_result;
  if (has_dec) {
    Bus dec_final = splice_column(state, 3, sub_out);
    dec_final = nl.xor_bus(dec_final, dec_final_key);
    result = has_enc ? nl.mux_bus(dec_q, mix_result, dec_final) : dec_final;
  }
  // A simultaneous key write or setup pulse aborts the block even on its
  // completion cycle (the Key_In process takes precedence, as in the
  // cycle-accurate model): the result is not emitted.
  const NetId emit = nl.gate_and(finish, nl.gate_not(nl.gate_or(wr_key, setup_pin)));
  const Bus out_reg = nl.dff_bus(result, emit);
  const NetId data_ok = nl.add_dff(emit);

  nl.add_output(data_ok, "data_ok");
  nl.add_output_bus(out_reg, "dout");
  return nl;
}

}  // namespace aesip::core
