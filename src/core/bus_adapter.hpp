// Narrow-bus adapter: the paper's answer to its own 261-pin interface.
//
// "If the implementations require only the Rijndael core, a simple
//  interface could be built using 32 or 16 data bus.  Lower bus sizes
//  could not be sufficient to provide or to take the data from device in
//  full rate operation."  (Section 4)
//
// NarrowBusIp wraps the full-width core behind a W-bit data bus
// (W in {8, 16, 32}): a block or key is written as 128/W consecutive word
// writes (least-significant word first), and each result is streamed out
// as 128/W consecutive words flagged by ndata_ok.  Loading and draining
// overlap the core's 50-cycle computation, so the adapter sustains full
// rate whenever 2 x (128/W) + adapter handshake fits in 50 cycles — true
// for 32 and 16 bits, and quantified for 8 bits by the tests (the paper's
// "lower bus sizes" caveat).
#pragma once

#include <cstdint>
#include <array>
#include <span>
#include <vector>
#include <memory>

#include "core/rijndael_ip.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/word128.hpp"

namespace aesip::core {

class NarrowBusIp final : public hdl::Module {
 public:
  /// `width_bits` in {8, 16, 32}. Instantiates its own inner RijndaelIp.
  NarrowBusIp(hdl::Simulator& sim, IpMode mode, int width_bits);

  // --- narrow bus interface ---------------------------------------------------
  hdl::Signal<bool> nsetup;
  hdl::Signal<bool> nwr_data;  ///< ndin holds the next data word
  hdl::Signal<bool> nwr_key;   ///< ndin holds the next key word
  hdl::Signal<bool> nencdec;
  hdl::Signal<std::uint32_t> ndin;   ///< low `width` bits used
  hdl::Signal<std::uint32_t> ndout;  ///< result words, LSW first
  hdl::Signal<bool> ndata_ok;        ///< high while a result word is on ndout

  int width_bits() const noexcept { return width_; }
  int words_per_block() const noexcept { return 128 / width_; }
  const RijndaelIp& inner() const noexcept { return *ip_; }

  /// Pins of the narrow interface (clk + setup + strobes + buses [+encdec]),
  /// the number the paper's remark is about.
  static constexpr int pin_count(int width_bits, IpMode mode) noexcept {
    return 1 + 1 + 1 + 1 + width_bits + width_bits + 1 + (mode == IpMode::kBoth ? 1 : 0);
  }

  void evaluate() override;
  void tick() override;

 private:
  int width_;
  std::unique_ptr<RijndaelIp> ip_;

  // assembly/disassembly registers
  hdl::Word128 in_shift_;
  int in_count_ = 0;
  bool in_is_key_ = false;
  hdl::Word128 out_shift_;
  int out_remaining_ = 0;
};

/// Test-bench master for the narrow interface: word-serial key/block
/// writes, result collection from the ndata_ok burst, and full-rate
/// streaming (the harness behind the "full rate at 16/32 bits" claim).
class NarrowBusDriver {
 public:
  NarrowBusDriver(hdl::Simulator& sim, NarrowBusIp& nb) : sim_(sim), nb_(nb) {}

  void reset();
  /// Word-serial key write; waits for key-ready (incl. decrypt setup).
  std::uint64_t load_key(std::span<const std::uint8_t> key);
  /// One block, blocking; returns the reassembled 16-byte result.
  std::array<std::uint8_t, 16> process_block(std::span<const std::uint8_t> block,
                                             bool encrypt = true);
  /// Cycles from the last data word to the first result word.
  std::uint64_t last_latency() const noexcept { return last_latency_; }

  /// Back-to-back blocks; returns results in order.
  std::vector<std::array<std::uint8_t, 16>> stream(
      std::span<const std::array<std::uint8_t, 16>> blocks, bool encrypt = true);
  std::uint64_t last_stream_cycles() const noexcept { return last_stream_cycles_; }

 private:
  void write_words(std::span<const std::uint8_t> value, bool is_key);

  hdl::Simulator& sim_;
  NarrowBusIp& nb_;
  std::uint64_t last_latency_ = 0;
  std::uint64_t last_stream_cycles_ = 0;
};

}  // namespace aesip::core
