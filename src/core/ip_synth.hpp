// Structural synthesis of the three IP variants into a gate-level netlist.
//
// This is the "Leonardo Spectrum" step of the reproduction flow: the same
// architecture the hdl-level RijndaelIp model executes — mixed 32/128-bit
// datapath, on-the-fly KStran key schedule, decoupled Data_In/Key_In/Out
// registers, the Table 1 pin interface (including clk: 261 pins, 262 with
// enc/dec) — emitted as registers, XOR networks, muxes and S-box
// ROMs/LUT-networks, ready for techmap + sta + fpga fitting.
//
// `sbox_as_rom` selects the Acex1K flavour (asynchronous EAB ROMs) or the
// Cyclone flavour (Shannon-decomposed logic S-boxes), reproducing the
// paper's "Cyclone embedded memory does not support asynchronous ROM"
// effect.  The datapath blocks inside are functionally verified against
// the reference library by the test suite (netlist evaluator); the control
// skeleton is structural, mirroring the verified cycle-accurate model.
#pragma once

#include "core/rijndael_ip.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"

namespace aesip::core {

/// Build the full-IP netlist for `mode`, with S-boxes as asynchronous ROM
/// macros (`sbox_as_rom` = true) or as Shannon logic-cell networks.
netlist::Netlist synthesize_ip(IpMode mode, bool sbox_as_rom);

/// Style-selected variant: kRom (Acex), kShannon (the paper's Cyclone
/// implementation) or kComposite (the tower-field optimization that shrinks
/// the Cyclone S-box cost — see test_composite / EXPERIMENTS.md).
netlist::Netlist synthesize_ip(IpMode mode, netlist::SboxStyle style);

/// Fully style-selected variant: S-box realization plus the MixColumn
/// architecture (shared-term xtime network vs table-lookup multipliers —
/// the `arch::VariantSpec` knob threaded down to the iterative core), and
/// the Rijndael key size (128/192/256).  The Nk=4 netlist keeps the paper's
/// exact register organization; wider keys realize the same on-the-fly
/// schedule as a sliding window of the last Nk schedule words, loaded over
/// ceil(Nk/4) consecutive wr_key beats of the 128-bit din.
netlist::Netlist synthesize_ip(IpMode mode, netlist::SboxStyle style,
                               netlist::MixColStyle mixcol, int key_bits = 128);

/// Expected pin count of a variant (paper Table 2: 261, or 262 with
/// enc/dec).  Key size does not change the pin count: wider keys re-use the
/// 128-bit din bus over multiple wr_key beats.
constexpr int expected_pins(IpMode mode) noexcept {
  return mode == IpMode::kBoth ? 262 : 261;
}

/// Expected S-box ROM bits (paper Table 2: 16384 single-direction, 32768 both).
constexpr int expected_rom_bits(IpMode mode) noexcept {
  return mode == IpMode::kBoth ? 32768 : 16384;
}

}  // namespace aesip::core
