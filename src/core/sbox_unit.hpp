// A bank of four S-boxes processing one 32-bit word per cycle.
//
// This is the unit the paper's area argument revolves around: a single
// S-box is a 2048-bit asynchronous ROM, so processing 128 bits in parallel
// needs 16 of them (32768 bits) while the mixed 32/128 architecture needs
// only 4 for the data path (8192 bits) plus 4 inside KStran.  One
// SubWord32Unit models one such bank: a combinational process that looks
// up all four bytes of the address word in the same cycle.
#pragma once

#include <array>
#include <cstdint>

#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"

namespace aesip::core {

class SubWord32Unit final : public hdl::Module {
 public:
  /// Number of physical S-boxes (2048-bit ROMs) in the bank.
  static constexpr int kSBoxes = 4;

  SubWord32Unit(hdl::Simulator& sim, std::string name,
                const std::array<std::uint8_t, 256>& table)
      : hdl::Module(name),
        addr(sim, name + ".addr", 32),
        data(sim, name + ".data", 32),
        table_(table) {
    sim.add_module(*this);
  }

  hdl::Signal<std::uint32_t> addr;
  hdl::Signal<std::uint32_t> data;

  void evaluate() override {
    const std::uint32_t a = addr.read();
    std::uint32_t d = 0;
    for (int k = 0; k < 4; ++k)
      d |= static_cast<std::uint32_t>(table_[(a >> (8 * k)) & 0xff]) << (8 * k);
    data.write(d);
  }

 private:
  const std::array<std::uint8_t, 256>& table_;
};

}  // namespace aesip::core
