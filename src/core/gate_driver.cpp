#include "core/gate_driver.hpp"

#include <stdexcept>

namespace aesip::core {

GateIpDriver::GateIpDriver(const netlist::Netlist& nl) : ev_(nl) {
  for (const auto& pi : nl.inputs()) by_name_[pi.name] = pi.net;
  for (const auto& po : nl.outputs()) out_by_name_[po.name] = po.net;
  for (int i = 0; i < 128; ++i) {
    din_.push_back(by_name_.at("din[" + std::to_string(i) + "]"));
    dout_.push_back(out_by_name_.at("dout[" + std::to_string(i) + "]"));
  }
  set("setup", false);
  set("wr_data", false);
  set("wr_key", false);
  if (has_input("encdec")) set("encdec", true);
  ev_.settle();
}

void GateIpDriver::set_din(std::span<const std::uint8_t> block) {
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b)
      ev_.set(din_[static_cast<std::size_t>(8 * k + b)],
              (block[static_cast<std::size_t>(k)] >> b) & 1);
}

std::array<std::uint8_t, 16> GateIpDriver::read_dout() const {
  std::array<std::uint8_t, 16> out{};
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b)
      if (ev_.get(dout_[static_cast<std::size_t>(8 * k + b)]))
        out[static_cast<std::size_t>(k)] |= static_cast<std::uint8_t>(1U << b);
  return out;
}

void GateIpDriver::clock() {
  ev_.settle();
  ev_.clock();
  ++cycles_;
}

void GateIpDriver::reset() {
  set("setup", true);
  clock();
  set("setup", false);
  clock();
}

void GateIpDriver::load_key(std::span<const std::uint8_t> key, bool needs_setup) {
  set_din(key);
  set("wr_key", true);
  clock();
  set("wr_key", false);
  if (needs_setup)
    for (int i = 0; i < 40; ++i) clock();
}

std::optional<GateIpDriver::BlockResult> GateIpDriver::process(
    std::span<const std::uint8_t> block, bool encrypt, int watchdog_cycles) {
  if (has_input("encdec")) set("encdec", encrypt);
  set_din(block);
  set("wr_data", true);
  clock();  // the load edge
  set("wr_data", false);
  for (int i = 1; i <= watchdog_cycles; ++i) {
    clock();
    if (data_ok()) return BlockResult{read_dout(), i};
  }
  return std::nullopt;
}

// --- GateIpBatchDriver -------------------------------------------------------

GateIpBatchDriver::GateIpBatchDriver(const netlist::Netlist& nl) : ev_(nl) {
  for (const auto& pi : nl.inputs()) by_name_[pi.name] = pi.net;
  for (const auto& po : nl.outputs()) out_by_name_[po.name] = po.net;
  for (int i = 0; i < 128; ++i) {
    din_.push_back(by_name_.at("din[" + std::to_string(i) + "]"));
    dout_.push_back(out_by_name_.at("dout[" + std::to_string(i) + "]"));
  }
  set_broadcast("setup", false);
  set_broadcast("wr_data", false);
  set_broadcast("wr_key", false);
  if (has_input("encdec")) set_broadcast("encdec", true);
  ev_.settle();
}

void GateIpBatchDriver::set_din_lanes(std::span<const std::uint8_t> in, std::size_t n) {
  using Word = netlist::BatchEvaluator::Word;
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b) {
      Word w = 0;
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        // Inactive lanes replicate lane 0 so every lane clocks real data.
        const std::size_t src = lane < n ? lane : 0;
        w |= Word{(in[16 * src + static_cast<std::size_t>(k)] >> b) & 1U} << lane;
      }
      ev_.set_word(din_[static_cast<std::size_t>(8 * k + b)], w);
    }
}

void GateIpBatchDriver::read_dout_lanes(std::span<std::uint8_t> out, std::size_t n) const {
  for (std::size_t i = 0; i < 16 * n; ++i) out[i] = 0;
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b) {
      const auto w = ev_.word(dout_[static_cast<std::size_t>(8 * k + b)]);
      for (std::size_t lane = 0; lane < n; ++lane)
        if ((w >> lane) & 1U)
          out[16 * lane + static_cast<std::size_t>(k)] |= static_cast<std::uint8_t>(1U << b);
    }
}

void GateIpBatchDriver::clock(std::uint64_t weight) {
  ev_.settle();
  ev_.clock();
  cycles_ += weight;
}

void GateIpBatchDriver::reset() {
  set_broadcast("setup", true);
  clock();
  set_broadcast("setup", false);
  clock();
}

void GateIpBatchDriver::load_key(std::span<const std::uint8_t> key, bool needs_setup) {
  set_din_lanes(key, 1);  // replicate the key into every lane
  set_broadcast("wr_key", true);
  clock();
  set_broadcast("wr_key", false);
  if (needs_setup)
    for (int i = 0; i < 40; ++i) clock();
}

std::optional<GateIpBatchDriver::BatchResult> GateIpBatchDriver::process_batch(
    std::span<const std::uint8_t> in, std::span<std::uint8_t> out, std::size_t n, bool encrypt,
    int watchdog_cycles) {
  if (n < 1 || n > kLanes)
    throw std::invalid_argument("GateIpBatchDriver: batch size must be 1..64");
  if (in.size() < 16 * n || out.size() < 16 * n)
    throw std::invalid_argument("GateIpBatchDriver: need 16 bytes per lane");
  if (has_input("encdec")) set_broadcast("encdec", encrypt);
  set_din_lanes(in, n);
  set_broadcast("wr_data", true);
  clock(n);  // the load edge, n blocks wide
  set_broadcast("wr_data", false);
  for (int i = 1; i <= watchdog_cycles; ++i) {
    clock(n);
    if (data_ok()) {
      read_dout_lanes(out, n);
      return BatchResult{i};
    }
  }
  return std::nullopt;
}

}  // namespace aesip::core
