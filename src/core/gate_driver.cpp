#include "core/gate_driver.hpp"

#include <algorithm>
#include <stdexcept>

namespace aesip::core {

GateIpDriver::GateIpDriver(const netlist::Netlist& nl) : ev_(nl) {
  for (const auto& pi : nl.inputs()) by_name_[pi.name] = pi.net;
  for (const auto& po : nl.outputs()) out_by_name_[po.name] = po.net;
  for (int i = 0; i < 128; ++i) {
    din_.push_back(by_name_.at("din[" + std::to_string(i) + "]"));
    dout_.push_back(out_by_name_.at("dout[" + std::to_string(i) + "]"));
  }
  set("setup", false);
  set("wr_data", false);
  set("wr_key", false);
  if (has_input("encdec")) set("encdec", true);
  ev_.settle();
}

void GateIpDriver::set_din(std::span<const std::uint8_t> block) {
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b)
      ev_.set(din_[static_cast<std::size_t>(8 * k + b)],
              (block[static_cast<std::size_t>(k)] >> b) & 1);
}

std::array<std::uint8_t, 16> GateIpDriver::read_dout() const {
  std::array<std::uint8_t, 16> out{};
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b)
      if (ev_.get(dout_[static_cast<std::size_t>(8 * k + b)]))
        out[static_cast<std::size_t>(k)] |= static_cast<std::uint8_t>(1U << b);
  return out;
}

void GateIpDriver::clock() {
  ev_.settle();
  ev_.clock();
  ++cycles_;
}

void GateIpDriver::reset() {
  set("setup", true);
  clock();
  set("setup", false);
  clock();
}

void GateIpDriver::load_key(std::span<const std::uint8_t> key, bool needs_setup) {
  // The iterative inverse-schedule pass costs 4 generation cycles per round
  // (4*Nr = 40/48/56), with Nr inferred from the key length.
  const int nr = static_cast<int>(key.size()) / 4 + 6;
  load_key(key, needs_setup ? 4 * nr : 0);
}

void GateIpDriver::load_key(std::span<const std::uint8_t> key, int setup_cycles) {
  // Keys wider than the 128-bit din ride consecutive wr_key beats
  // (words 0..3, then words 4..Nk-1 in the low lanes).
  for (std::size_t off = 0; off < key.size(); off += 16) {
    std::array<std::uint8_t, 16> beat{};
    const std::size_t n = std::min<std::size_t>(16, key.size() - off);
    for (std::size_t i = 0; i < n; ++i) beat[i] = key[off + i];
    set_din(beat);
    set("wr_key", true);
    clock();
    set("wr_key", false);
  }
  for (int i = 0; i < setup_cycles; ++i) clock();
}

std::optional<GateIpDriver::BlockResult> GateIpDriver::process(
    std::span<const std::uint8_t> block, bool encrypt, int watchdog_cycles) {
  if (has_input("encdec")) set("encdec", encrypt);
  set_din(block);
  set("wr_data", true);
  clock();  // the load edge
  set("wr_data", false);
  for (int i = 1; i <= watchdog_cycles; ++i) {
    clock();
    if (data_ok()) return BlockResult{read_dout(), i};
  }
  return std::nullopt;
}

std::optional<GateIpDriver::StreamResult> GateIpDriver::stream(std::span<const std::uint8_t> in,
                                                               std::span<std::uint8_t> out,
                                                               std::size_t blocks, bool encrypt,
                                                               int watchdog_cycles) {
  if (in.size() < 16 * blocks || out.size() < 16 * blocks)
    throw std::invalid_argument("GateIpDriver: need 16 bytes per block");
  if (blocks == 0) return StreamResult{0};
  if (has_input("encdec")) set("encdec", encrypt);
  const bool has_ready = out_by_name_.count("in_ready") != 0;
  const netlist::NetId ready_net = has_ready ? out_by_name_.at("in_ready") : netlist::kNoNet;

  std::size_t next = 0;      // blocks written onto the bus
  std::size_t admitted = 0;  // blocks the core has captured out of Data_In
  std::size_t done = 0;      // data_ok strobes collected
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  bool first_fed = false;
  std::uint64_t guard = 0;

  while (done < blocks) {
    bool feed = next < blocks;
    if (feed) {
      if (has_ready) {
        ev_.settle();
        feed = ev_.get(ready_net);
      } else {
        feed = next == admitted;  // the paper core's single pending slot
      }
    }
    bool fed_idle = false;
    if (feed) {
      set_din(in.subspan(16 * next, 16));
      set("wr_data", true);
      fed_idle = !has_ready && admitted == done;  // idle core admits on the load edge
      ++next;
    } else {
      set("wr_data", false);
    }
    const bool was_first = feed && !first_fed;
    first_fed = first_fed || feed;
    clock();
    set("wr_data", false);
    if (was_first) first = cycles_;
    if (fed_idle) ++admitted;
    if (data_ok()) {
      const auto block = read_dout();
      for (int k = 0; k < 16; ++k) out[16 * done + static_cast<std::size_t>(k)] =
          block[static_cast<std::size_t>(k)];
      ++done;
      last = cycles_;
      if (admitted < next) ++admitted;  // the finish edge admits a pending block
    }
    if (++guard > static_cast<std::uint64_t>(watchdog_cycles) * blocks) return std::nullopt;
  }
  return StreamResult{static_cast<int>(last - first)};
}

// --- GateIpBatchDriver -------------------------------------------------------

GateIpBatchDriver::GateIpBatchDriver(const netlist::Netlist& nl, const netlist::BatchConfig& cfg)
    : ev_(nl, cfg) {
  for (const auto& pi : nl.inputs()) by_name_[pi.name] = pi.net;
  for (const auto& po : nl.outputs()) out_by_name_[po.name] = po.net;
  for (int i = 0; i < 128; ++i) {
    din_.push_back(by_name_.at("din[" + std::to_string(i) + "]"));
    dout_.push_back(out_by_name_.at("dout[" + std::to_string(i) + "]"));
  }
  set_broadcast("setup", false);
  set_broadcast("wr_data", false);
  set_broadcast("wr_key", false);
  if (has_input("encdec")) set_broadcast("encdec", true);
  ev_.settle();
}

void GateIpBatchDriver::set_din_lanes(std::span<const std::uint8_t> in, std::size_t n) {
  using Word = netlist::BatchEvaluator::Word;
  constexpr std::size_t kWordLanes = netlist::BatchEvaluator::kBaseLanes;
  const std::size_t stride = ev_.stride();
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b) {
      for (std::size_t g = 0; g < stride; ++g) {
        Word w = 0;
        for (std::size_t l = 0; l < kWordLanes; ++l) {
          // Inactive lanes replicate lane 0 so every lane clocks real data.
          const std::size_t lane = g * kWordLanes + l;
          const std::size_t src = lane < n ? lane : 0;
          w |= Word{(in[16 * src + static_cast<std::size_t>(k)] >> b) & 1U} << l;
        }
        ev_.set_word(din_[static_cast<std::size_t>(8 * k + b)], w, g);
      }
    }
}

void GateIpBatchDriver::read_dout_lanes(std::span<std::uint8_t> out, std::size_t n) const {
  constexpr std::size_t kWordLanes = netlist::BatchEvaluator::kBaseLanes;
  for (std::size_t i = 0; i < 16 * n; ++i) out[i] = 0;
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b) {
      for (std::size_t g = 0; g * kWordLanes < n; ++g) {
        const auto w = ev_.word(dout_[static_cast<std::size_t>(8 * k + b)], g);
        const std::size_t top = std::min(n - g * kWordLanes, kWordLanes);
        for (std::size_t l = 0; l < top; ++l)
          if ((w >> l) & 1U)
            out[16 * (g * kWordLanes + l) + static_cast<std::size_t>(k)] |=
                static_cast<std::uint8_t>(1U << b);
      }
    }
}

void GateIpBatchDriver::clock(std::uint64_t weight) {
  ev_.settle();
  ev_.clock();
  cycles_ += weight;
}

void GateIpBatchDriver::reset() {
  set_broadcast("setup", true);
  clock();
  set_broadcast("setup", false);
  clock();
}

void GateIpBatchDriver::load_key(std::span<const std::uint8_t> key, bool needs_setup) {
  const int nr = static_cast<int>(key.size()) / 4 + 6;
  load_key(key, needs_setup ? 4 * nr : 0);
}

void GateIpBatchDriver::load_key(std::span<const std::uint8_t> key, int setup_cycles) {
  // Multi-beat like the scalar driver; each beat replicates into every lane.
  for (std::size_t off = 0; off < key.size(); off += 16) {
    std::array<std::uint8_t, 16> beat{};
    const std::size_t n = std::min<std::size_t>(16, key.size() - off);
    for (std::size_t i = 0; i < n; ++i) beat[i] = key[off + i];
    set_din_lanes(beat, 1);
    set_broadcast("wr_key", true);
    clock();
    set_broadcast("wr_key", false);
  }
  for (int i = 0; i < setup_cycles; ++i) clock();
}

std::optional<GateIpBatchDriver::BatchResult> GateIpBatchDriver::process_batch(
    std::span<const std::uint8_t> in, std::span<std::uint8_t> out, std::size_t n, bool encrypt,
    int watchdog_cycles) {
  if (n < 1 || n > lanes())
    throw std::invalid_argument("GateIpBatchDriver: batch size must be 1.." +
                                std::to_string(lanes()));
  if (in.size() < 16 * n || out.size() < 16 * n)
    throw std::invalid_argument("GateIpBatchDriver: need 16 bytes per lane");
  if (has_input("encdec")) set_broadcast("encdec", encrypt);
  set_din_lanes(in, n);
  set_broadcast("wr_data", true);
  clock(n);  // the load edge, n blocks wide
  set_broadcast("wr_data", false);
  for (int i = 1; i <= watchdog_cycles; ++i) {
    clock(n);
    if (data_ok()) {
      read_dout_lanes(out, n);
      return BatchResult{i};
    }
  }
  return std::nullopt;
}

}  // namespace aesip::core
