#include "core/gate_driver.hpp"

namespace aesip::core {

GateIpDriver::GateIpDriver(const netlist::Netlist& nl) : ev_(nl) {
  for (const auto& pi : nl.inputs()) by_name_[pi.name] = pi.net;
  for (const auto& po : nl.outputs()) out_by_name_[po.name] = po.net;
  for (int i = 0; i < 128; ++i) {
    din_.push_back(by_name_.at("din[" + std::to_string(i) + "]"));
    dout_.push_back(out_by_name_.at("dout[" + std::to_string(i) + "]"));
  }
  set("setup", false);
  set("wr_data", false);
  set("wr_key", false);
  if (has_input("encdec")) set("encdec", true);
  ev_.settle();
}

void GateIpDriver::set_din(std::span<const std::uint8_t> block) {
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b)
      ev_.set(din_[static_cast<std::size_t>(8 * k + b)],
              (block[static_cast<std::size_t>(k)] >> b) & 1);
}

std::array<std::uint8_t, 16> GateIpDriver::read_dout() const {
  std::array<std::uint8_t, 16> out{};
  for (int k = 0; k < 16; ++k)
    for (int b = 0; b < 8; ++b)
      if (ev_.get(dout_[static_cast<std::size_t>(8 * k + b)]))
        out[static_cast<std::size_t>(k)] |= static_cast<std::uint8_t>(1U << b);
  return out;
}

void GateIpDriver::clock() {
  ev_.settle();
  ev_.clock();
  ++cycles_;
}

void GateIpDriver::reset() {
  set("setup", true);
  clock();
  set("setup", false);
  clock();
}

void GateIpDriver::load_key(std::span<const std::uint8_t> key, bool needs_setup) {
  set_din(key);
  set("wr_key", true);
  clock();
  set("wr_key", false);
  if (needs_setup)
    for (int i = 0; i < 40; ++i) clock();
}

std::optional<GateIpDriver::BlockResult> GateIpDriver::process(
    std::span<const std::uint8_t> block, bool encrypt, int watchdog_cycles) {
  if (has_input("encdec")) set("encdec", encrypt);
  set_din(block);
  set("wr_data", true);
  clock();  // the load edge
  set("wr_data", false);
  for (int i = 1; i <= watchdog_cycles; ++i) {
    clock();
    if (data_ok()) return BlockResult{read_dout(), i};
  }
  return std::nullopt;
}

}  // namespace aesip::core
