#include "core/table2.hpp"

#include "techmap/techmap.hpp"

namespace aesip::core {

const std::vector<PaperTable2Cell>& paper_table2() {
  static const std::vector<PaperTable2Cell> cells{
      {"Encrypt", "Acex1K", 2114, 42, 16384, 33, 261, 78, 700.0, 14.0, 182.0},
      {"Decrypt", "Acex1K", 2217, 44, 16384, 33, 261, 78, 750.0, 15.0, 170.0},
      {"Both", "Acex1K", 3222, 64, 32768, 66, 262, 78, 850.0, 17.0, 150.0},
      {"Encrypt", "Cyclone", 4057, 20, 0, 0, 261, 87, 500.0, 10.0, 256.0},
      {"Decrypt", "Cyclone", 4211, 20, 0, 0, 261, 87, 550.0, 11.0, 232.0},
      {"Both", "Cyclone", 7034, 35, 0, 0, 262, 87, 650.0, 13.0, 197.0},
  };
  return cells;
}

Table2Row reproduce_table2_cell(IpMode mode, const fpga::Device& device) {
  // The paper's flow decision: EABs implement the S-boxes as asynchronous
  // ROM on Acex; Cyclone M4Ks cannot, so the S-boxes become logic.
  const bool sbox_as_rom = device.supports_async_rom;
  const auto mapped = techmap::map_to_luts(synthesize_ip(mode, sbox_as_rom));
  Table2Row row{};
  row.mode = mode;
  row.device = &device;
  row.fit = fpga::fit(mapped, device);
  row.cycles_per_block = RijndaelIp::kCyclesPerBlock;
  row.latency_ns = row.fit.latency_ns(row.cycles_per_block);
  row.throughput_mbps = row.fit.throughput_mbps(128, row.cycles_per_block);

  const int paper_index = (device.family == fpga::Family::kCyclone ? 3 : 0) +
                          (mode == IpMode::kEncrypt ? 0 : mode == IpMode::kDecrypt ? 1 : 2);
  row.paper = paper_table2()[static_cast<std::size_t>(paper_index)];
  return row;
}

std::vector<Table2Row> reproduce_table2() {
  std::vector<Table2Row> rows;
  for (const fpga::Device* dev : {&fpga::ep1k100fc484_1(), &fpga::ep1c20f400c6()})
    for (const IpMode mode : {IpMode::kEncrypt, IpMode::kDecrypt, IpMode::kBoth})
      rows.push_back(reproduce_table2_cell(mode, *dev));
  return rows;
}

}  // namespace aesip::core
