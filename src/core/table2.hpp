// End-to-end reproduction of the paper's Table 2.
//
// For each of the six cells ({Encrypt, Decrypt, Both} x {Acex1K EP1K100,
// Cyclone EP1C20}) this runs the whole flow: synthesize the IP netlist
// (ROM S-boxes on Acex, logic S-boxes on Cyclone — the async-ROM rule),
// technology-map it, fit it on the device model, run static timing, and
// derive latency (50 cycles x Tclk) and full-rate throughput
// (128 bits / latency).  The paper's reported values ride along so tests
// and benches can print measured-vs-paper side by side.
#pragma once

#include <vector>

#include "core/ip_synth.hpp"
#include "fpga/device.hpp"
#include "fpga/fitter.hpp"

namespace aesip::core {

/// One reported cell of the paper's Table 2.
struct PaperTable2Cell {
  const char* system;      ///< "Encrypt" / "Decrypt" / "Both"
  const char* device;      ///< "Acex1K" / "Cyclone"
  int lcs;
  int lc_pct;
  int memory_bits;
  int memory_pct;
  int pins;
  int pin_pct;
  double latency_ns;
  double clock_ns;
  double throughput_mbps;
};

/// The 6 cells exactly as printed in the paper.
const std::vector<PaperTable2Cell>& paper_table2();

/// One reproduced cell: our flow's numbers next to the paper's.
struct Table2Row {
  IpMode mode;
  const fpga::Device* device;
  fpga::FitReport fit;
  int cycles_per_block;      ///< always 50 (verified by the IP tests)
  double latency_ns;         ///< cycles x clock period
  double throughput_mbps;    ///< 128 / latency
  PaperTable2Cell paper;     ///< the corresponding reported cell
};

/// Run the full flow for all six cells (order: Acex E/D/C, Cyclone E/D/C).
std::vector<Table2Row> reproduce_table2();

/// Run one cell.
Table2Row reproduce_table2_cell(IpMode mode, const fpga::Device& device);

}  // namespace aesip::core
