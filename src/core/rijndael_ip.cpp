#include "core/rijndael_ip.hpp"

#include "aes/sbox.hpp"
#include "aes/state.hpp"
#include "aes/transforms.hpp"
#include "gf/gf256.hpp"

namespace aesip::core {

namespace {

/// 128-bit single-cycle combinational blocks (ShiftRow / MixColumn of the
/// paper's Section 4).  Functionally identical to the reference library by
/// construction; their gate structure lives in core/ip_synth.cpp.
hdl::Word128 shift_rows128(const hdl::Word128& w, bool inverse) {
  aes::State s(4, w.b);
  if (inverse) aes::inv_shift_rows(s);
  else aes::shift_rows(s);
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

hdl::Word128 mix_columns128(const hdl::Word128& w, bool inverse) {
  aes::State s(4, w.b);
  if (inverse) aes::inv_mix_columns(s);
  else aes::mix_columns(s);
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

std::uint32_t rot_word(std::uint32_t w) noexcept { return (w >> 8) | (w << 24); }

}  // namespace

RijndaelIp::RijndaelIp(hdl::Simulator& sim, IpMode mode)
    : hdl::Module("rijndael_ip"),
      setup(sim, "setup", 1),
      wr_data(sim, "wr_data", 1),
      wr_key(sim, "wr_key", 1),
      encdec(sim, "encdec", 1, true),
      din(sim, "din", 128),
      dout(sim, "dout", 128),
      data_ok(sim, "data_ok", 1),
      dbg_round(sim, "dbg_round", 8),
      dbg_phase(sim, "dbg_phase", 8),
      mode_(mode) {
  if (mode_ == IpMode::kEncrypt || mode_ == IpMode::kBoth)
    bytesub_ = std::make_unique<SubWord32Unit>(sim, "bytesub", aes::kSBox);
  if (mode_ == IpMode::kDecrypt || mode_ == IpMode::kBoth)
    inv_bytesub_ = std::make_unique<SubWord32Unit>(sim, "inv_bytesub", aes::kInvSBox);
  kstran_enc_ = std::make_unique<SubWord32Unit>(sim, "kstran", aes::kSBox);
  if (mode_ == IpMode::kBoth)
    kstran_dec_ = std::make_unique<SubWord32Unit>(sim, "kstran_dec", aes::kSBox);
  sim.add_module(*this);
}

int RijndaelIp::sbox_count() const noexcept {
  int banks = 0;
  if (bytesub_) ++banks;
  if (inv_bytesub_) ++banks;
  if (kstran_enc_) ++banks;
  if (kstran_dec_) ++banks;
  return banks * SubWord32Unit::kSBoxes;
}

void RijndaelIp::evaluate() {
  // Drive S-box bank addresses from the current registers.  All drives are
  // pure functions of register state, so the network settles in one delta.
  if (bytesub_) bytesub_->addr.write(state_.column(sub_));
  if (inv_bytesub_) inv_bytesub_->addr.write(state_.column(sub_));

  const std::uint32_t fwd_addr = rot_word(round_key_.column(3));   // KStran forward
  const std::uint32_t inv_addr = rot_word(next_key_.column(3));    // inverse schedule
  if (mode_ == IpMode::kBoth) {
    kstran_enc_->addr.write(fwd_addr);
    kstran_dec_->addr.write(inv_addr);
  } else if (mode_ == IpMode::kDecrypt) {
    // One shared KStran bank: forward during key setup, inverse-schedule
    // addressing while decrypting.
    kstran_enc_->addr.write(phase_ == Phase::kKeySetup ? fwd_addr : inv_addr);
  } else {
    kstran_enc_->addr.write(fwd_addr);
  }

  dbg_round.write(static_cast<std::uint8_t>(round_));
  dbg_phase.write(static_cast<std::uint8_t>(phase_));
}

void RijndaelIp::stage_forward_key(int sub, int round, std::uint32_t kstran_data) {
  std::uint32_t col;
  if (sub == 0) {
    col = round_key_.column(0) ^ kstran_data ^ gf::rcon(static_cast<unsigned>(round));
  } else {
    col = next_key_.column(sub - 1) ^ round_key_.column(sub);
  }
  next_key_.set_column(sub, col);
}

void RijndaelIp::start_block() {
  data_pending_ = false;
  block_is_decrypt_ = mode_ == IpMode::kDecrypt || (mode_ == IpMode::kBoth && !encdec.read());
  round_ = 1;
  sub_ = 0;
  if (!block_is_decrypt_) {
    // Initial AddRoundKey folds into the load path.
    state_ = data_in_reg_ ^ key_reg_;
    round_key_ = key_reg_;
    phase_ = Phase::kSub;
  } else {
    // Decryption starts from the round-10 key derived during key setup.
    state_ = data_in_reg_ ^ dec_base_key_;
    round_key_ = dec_base_key_;
    phase_ = Phase::kMix;
  }
}

void RijndaelIp::finish_block(const hdl::Word128& result) {
  // Out process: register the result; data_ok strobes for one cycle.
  dout.write(result);
  data_ok.write(true);
  ++blocks_done_;
  ++(block_is_decrypt_ ? counters_.blocks_dec : counters_.blocks_enc);
  if (data_pending_ && key_valid_) start_block();
  else phase_ = Phase::kIdle;
}

void RijndaelIp::tick() {
  data_ok.write(false);

  if (setup.read()) {
    // Configuration period: synchronous reset of every process.
    ++counters_.setup_resets;
    phase_ = Phase::kIdle;
    data_pending_ = false;
    key_valid_ = false;
    round_ = 0;
    sub_ = 0;
    dout.write(hdl::Word128{});
    return;
  }

  // --- Key_In / Data_In processes ------------------------------------------
  if (wr_key.read()) {
    ++counters_.key_writes;
    key_reg_ = din.read();
    data_pending_ = false;  // a key change invalidates any staged block
    if (mode_ == IpMode::kEncrypt) {
      // Forward round keys are generated on the fly; no setup needed.
      key_valid_ = true;
      phase_ = Phase::kIdle;
    } else {
      // Derive the round-10 key: 10 rounds x 4 KStran cycles.
      key_valid_ = false;
      round_key_ = din.read();
      round_ = 1;
      sub_ = 0;
      phase_ = Phase::kKeySetup;
    }
    return;
  }
  if (wr_data.read()) {
    ++counters_.data_writes;
    data_in_reg_ = din.read();
    data_pending_ = true;
  }

  // --- Rijndael process ------------------------------------------------------
  // Phase occupancy: the edge is attributed to the phase being executed,
  // so a finished block has banked exactly 40 ByteSub32 + 10 SR/MC/AK
  // edges — the live form of the 5-cycle-round / 50-cycle-block claim.
  switch (phase_) {
    case Phase::kIdle:
      ++counters_.idle_cycles;
      if (data_pending_ && key_valid_) start_block();
      break;

    case Phase::kKeySetup: {
      ++counters_.key_setup_cycles;
      stage_forward_key(sub_, round_, kstran_enc_->data.read());
      if (sub_ < 3) {
        ++sub_;
      } else {
        round_key_ = next_key_;
        if (round_ < kRounds) {
          ++round_;
          sub_ = 0;
        } else {
          dec_base_key_ = next_key_;
          key_valid_ = true;
          phase_ = Phase::kIdle;
        }
      }
      break;
    }

    case Phase::kSub: {
      ++counters_.bytesub_cycles;
      if (!block_is_decrypt_) {
        // ByteSub32 slice + forward key schedule staging.
        state_.set_column(sub_, bytesub_->data.read());
        stage_forward_key(sub_, round_, kstran_enc_->data.read());
        if (sub_ < 3) ++sub_;
        else phase_ = Phase::kMix;
      } else {
        // IByteSub32 slice + inverse key schedule staging:
        // from K_{r+1} (in round_key_) recover K_r into next_key_.
        state_.set_column(sub_, inv_bytesub_->data.read());
        const int inv_round = kRounds + 1 - round_;  // rcon index of K_{r+1}
        switch (sub_) {
          case 0:
            next_key_.set_column(3, round_key_.column(3) ^ round_key_.column(2));
            break;
          case 1:
            next_key_.set_column(2, round_key_.column(2) ^ round_key_.column(1));
            break;
          case 2:
            next_key_.set_column(1, round_key_.column(1) ^ round_key_.column(0));
            break;
          case 3: {
            const std::uint32_t kdata =
                (mode_ == IpMode::kBoth ? kstran_dec_ : kstran_enc_)->data.read();
            next_key_.set_column(
                0, round_key_.column(0) ^ kdata ^ gf::rcon(static_cast<unsigned>(inv_round)));
            break;
          }
          default:
            break;
        }
        if (sub_ < 3) {
          ++sub_;
        } else if (round_ < kRounds) {
          ++counters_.rounds_done;
          round_key_ = next_key_;
          ++round_;
          sub_ = 0;
          phase_ = Phase::kMix;
        } else {
          // Final AddRoundKey (the original key) folds into the output path.
          ++counters_.rounds_done;
          finish_block(state_ ^ key_reg_);
        }
      }
      break;
    }

    case Phase::kMix: {
      ++counters_.mix_cycles;
      if (!block_is_decrypt_) {
        ++counters_.rounds_done;
        const hdl::Word128 sr = shift_rows128(state_, false);
        const hdl::Word128 pre = round_ < kRounds ? mix_columns128(sr, false) : sr;
        const hdl::Word128 ns = pre ^ next_key_;
        if (round_ < kRounds) {
          state_ = ns;
          round_key_ = next_key_;
          ++round_;
          sub_ = 0;
          phase_ = Phase::kSub;
        } else {
          finish_block(ns);
        }
      } else {
        if (round_ == 1) {
          state_ = shift_rows128(state_, true);
        } else {
          state_ = shift_rows128(mix_columns128(state_ ^ round_key_, true), true);
        }
        sub_ = 0;
        phase_ = Phase::kSub;
      }
      break;
    }
  }
}

}  // namespace aesip::core
