#include "core/rijndael_ip.hpp"

#include <stdexcept>

#include "aes/sbox.hpp"
#include "aes/state.hpp"
#include "aes/transforms.hpp"
#include "gf/gf256.hpp"

namespace aesip::core {

namespace {

/// 128-bit single-cycle combinational blocks (ShiftRow / MixColumn of the
/// paper's Section 4).  Functionally identical to the reference library by
/// construction; their gate structure lives in core/ip_synth.cpp.
hdl::Word128 shift_rows128(const hdl::Word128& w, bool inverse) {
  aes::State s(4, w.b);
  if (inverse) aes::inv_shift_rows(s);
  else aes::shift_rows(s);
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

hdl::Word128 mix_columns128(const hdl::Word128& w, bool inverse) {
  aes::State s(4, w.b);
  if (inverse) aes::inv_mix_columns(s);
  else aes::mix_columns(s);
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

std::uint32_t rot_word(std::uint32_t w) noexcept { return (w >> 8) | (w << 24); }

/// i mod nk with a mathematical (non-negative) result — decryption runs the
/// recovery index a few words below zero on the wider keys.
int mod_nk(int i, int nk) noexcept { return ((i % nk) + nk) % nk; }

}  // namespace

RijndaelIp::RijndaelIp(hdl::Simulator& sim, IpMode mode, int key_bits)
    : hdl::Module("rijndael_ip"),
      setup(sim, "setup", 1),
      wr_data(sim, "wr_data", 1),
      wr_key(sim, "wr_key", 1),
      encdec(sim, "encdec", 1, true),
      din(sim, "din", 128),
      dout(sim, "dout", 128),
      data_ok(sim, "data_ok", 1),
      dbg_round(sim, "dbg_round", 8),
      dbg_phase(sim, "dbg_phase", 8),
      mode_(mode),
      nk_(key_bits / 32),
      nr_(key_bits / 32 + 6),
      sched_words_(4 * (key_bits / 32 + 7)) {
  if (key_bits != 128 && key_bits != 192 && key_bits != 256)
    throw std::invalid_argument("RijndaelIp: key_bits must be 128, 192 or 256");
  if (mode_ == IpMode::kEncrypt || mode_ == IpMode::kBoth)
    bytesub_ = std::make_unique<SubWord32Unit>(sim, "bytesub", aes::kSBox);
  if (mode_ == IpMode::kDecrypt || mode_ == IpMode::kBoth)
    inv_bytesub_ = std::make_unique<SubWord32Unit>(sim, "inv_bytesub", aes::kInvSBox);
  kstran_enc_ = std::make_unique<SubWord32Unit>(sim, "kstran", aes::kSBox);
  if (mode_ == IpMode::kBoth)
    kstran_dec_ = std::make_unique<SubWord32Unit>(sim, "kstran_dec", aes::kSBox);
  sim.add_module(*this);
}

int RijndaelIp::sbox_count() const noexcept {
  int banks = 0;
  if (bytesub_) ++banks;
  if (inv_bytesub_) ++banks;
  if (kstran_enc_) ++banks;
  if (kstran_dec_) ++banks;
  return banks * SubWord32Unit::kSBoxes;
}

hdl::Word128 RijndaelIp::window_bottom4() const noexcept {
  hdl::Word128 w;
  for (int c = 0; c < 4; ++c) w.set_column(c, window_[static_cast<std::size_t>(c)]);
  return w;
}

hdl::Word128 RijndaelIp::window_top4() const noexcept {
  hdl::Word128 w;
  for (int c = 0; c < 4; ++c)
    w.set_column(c, window_[static_cast<std::size_t>(nk_ - 4 + c)]);
  return w;
}

void RijndaelIp::evaluate() {
  // Drive S-box bank addresses from the current registers.  All drives are
  // pure functions of register state, so the network settles in one delta.
  if (bytesub_) bytesub_->addr.write(state_.column(sub_));
  if (inv_bytesub_) inv_bytesub_->addr.write(state_.column(sub_));

  // KStran forward: generating word gen_i_ transforms w[gen_i_-1] = W[Nk-1]
  // (RotWord only at an Nk boundary; the Nk=8 mid-block SubWord is the
  // un-rotated lookup).  Inverse: recovering word rec_m_ transforms the
  // already-recovered w[rec_m_+Nk-1]'s predecessor W[Nk-2].
  const std::uint32_t fwd_last = window_[static_cast<std::size_t>(nk_ - 1)];
  const std::uint32_t fwd_addr = gen_i_ % nk_ == 0 ? rot_word(fwd_last) : fwd_last;
  const std::uint32_t inv_last = window_[static_cast<std::size_t>(nk_ - 2 >= 0 ? nk_ - 2 : 0)];
  const std::uint32_t inv_addr = mod_nk(rec_m_, nk_) == 0 ? rot_word(inv_last) : inv_last;
  if (mode_ == IpMode::kBoth) {
    kstran_enc_->addr.write(fwd_addr);
    kstran_dec_->addr.write(inv_addr);
  } else if (mode_ == IpMode::kDecrypt) {
    // One shared KStran bank: forward during key setup, inverse-schedule
    // addressing while decrypting.
    kstran_enc_->addr.write(phase_ == Phase::kKeySetup ? fwd_addr : inv_addr);
  } else {
    kstran_enc_->addr.write(fwd_addr);
  }

  dbg_round.write(static_cast<std::uint8_t>(round_));
  dbg_phase.write(static_cast<std::uint8_t>(phase_));
}

void RijndaelIp::generate_forward(std::uint32_t sbox_data) {
  std::uint32_t t = window_[static_cast<std::size_t>(nk_ - 1)];
  if (gen_i_ % nk_ == 0) {
    t = sbox_data ^ gf::rcon(static_cast<unsigned>(gen_i_ / nk_));
  } else if (nk_ > 6 && gen_i_ % nk_ == 4) {
    t = sbox_data;  // the 256-bit schedule's extra SubWord (no rotate, no rcon)
  }
  const std::uint32_t nw = window_[0] ^ t;
  for (int c = 0; c + 1 < nk_; ++c)
    window_[static_cast<std::size_t>(c)] = window_[static_cast<std::size_t>(c + 1)];
  window_[static_cast<std::size_t>(nk_ - 1)] = nw;
  ++gen_i_;
}

void RijndaelIp::generate_inverse(std::uint32_t sbox_data) {
  std::uint32_t t = window_[static_cast<std::size_t>(nk_ - 2)];
  const int pos = mod_nk(rec_m_, nk_);
  if (pos == 0 && rec_m_ >= 0) {
    t = sbox_data ^ gf::rcon(static_cast<unsigned>(rec_m_ / nk_ + 1));
  } else if (nk_ > 6 && pos == 4) {
    t = sbox_data;
  }
  const std::uint32_t nw = window_[static_cast<std::size_t>(nk_ - 1)] ^ t;
  for (int c = nk_ - 1; c > 0; --c)
    window_[static_cast<std::size_t>(c)] = window_[static_cast<std::size_t>(c - 1)];
  window_[0] = nw;
  --rec_m_;
}

void RijndaelIp::start_block() {
  data_pending_ = false;
  block_is_decrypt_ = mode_ == IpMode::kDecrypt || (mode_ == IpMode::kBoth && !encdec.read());
  round_ = 1;
  sub_ = 0;
  if (!block_is_decrypt_) {
    // Initial AddRoundKey folds into the load path; the window restarts
    // from the registered key words.
    hdl::Word128 k0;
    for (int c = 0; c < 4; ++c) k0.set_column(c, key_words_[static_cast<std::size_t>(c)]);
    state_ = data_in_reg_ ^ k0;
    for (int c = 0; c < nk_; ++c)
      window_[static_cast<std::size_t>(c)] = key_words_[static_cast<std::size_t>(c)];
    gen_i_ = nk_;
    phase_ = Phase::kSub;
  } else {
    // Decryption starts from the final-round window derived during key
    // setup and recovers the schedule backwards.
    window_ = dec_base_;
    rec_m_ = sched_words_ - nk_ - 1;
    state_ = data_in_reg_ ^ window_top4();
    phase_ = Phase::kMix;
  }
}

void RijndaelIp::finish_block(const hdl::Word128& result) {
  // Out process: register the result; data_ok strobes for one cycle.
  dout.write(result);
  data_ok.write(true);
  ++blocks_done_;
  ++(block_is_decrypt_ ? counters_.blocks_dec : counters_.blocks_enc);
  if (data_pending_ && key_valid_) start_block();
  else phase_ = Phase::kIdle;
}

void RijndaelIp::tick() {
  data_ok.write(false);

  if (setup.read()) {
    // Configuration period: synchronous reset of every process.
    ++counters_.setup_resets;
    phase_ = Phase::kIdle;
    data_pending_ = false;
    key_valid_ = false;
    key_beat_ = 0;
    round_ = 0;
    sub_ = 0;
    dout.write(hdl::Word128{});
    return;
  }

  // --- Key_In / Data_In processes ------------------------------------------
  if (wr_key.read()) {
    ++counters_.key_writes;
    data_pending_ = false;  // a key change invalidates any staged block
    const hdl::Word128 d = din.read();
    if (key_beat_ == 0) {
      for (int c = 0; c < 4; ++c) key_words_[static_cast<std::size_t>(c)] = d.column(c);
      if (key_beats() > 1) {
        // More key words ride the next wr_key beat; nothing runs yet.
        key_valid_ = false;
        key_beat_ = 1;
        phase_ = Phase::kIdle;
        return;
      }
    } else {
      for (int c = 4; c < nk_; ++c)
        key_words_[static_cast<std::size_t>(c)] = d.column(c - 4);
      key_beat_ = 0;
    }
    if (mode_ == IpMode::kEncrypt) {
      // Forward round keys are generated on the fly; no setup needed.
      key_valid_ = true;
      phase_ = Phase::kIdle;
    } else {
      // Derive the final-round window: Nr rounds x 4 generation cycles
      // (the last (4*Nr) - (S - Nk) cycles of the wider keys are padding —
      // the FSM shape is shared across geometries).
      key_valid_ = false;
      for (int c = 0; c < nk_; ++c)
        window_[static_cast<std::size_t>(c)] = key_words_[static_cast<std::size_t>(c)];
      gen_i_ = nk_;
      round_ = 1;
      sub_ = 0;
      phase_ = Phase::kKeySetup;
    }
    return;
  }
  if (wr_data.read()) {
    ++counters_.data_writes;
    data_in_reg_ = din.read();
    data_pending_ = true;
  }

  // --- Rijndael process ------------------------------------------------------
  // Phase occupancy: the edge is attributed to the phase being executed,
  // so a finished block has banked exactly 4*Nr ByteSub32 + Nr SR/MC/AK
  // edges — the live form of the 5-cycle-round / 5*Nr-cycle-block claim.
  switch (phase_) {
    case Phase::kIdle:
      ++counters_.idle_cycles;
      if (data_pending_ && key_valid_) start_block();
      break;

    case Phase::kKeySetup: {
      ++counters_.key_setup_cycles;
      if (gen_i_ < sched_words_) generate_forward(kstran_enc_->data.read());
      if (sub_ < 3) {
        ++sub_;
      } else if (round_ < nr_) {
        ++round_;
        sub_ = 0;
      } else {
        dec_base_ = window_;
        key_valid_ = true;
        phase_ = Phase::kIdle;
      }
      break;
    }

    case Phase::kSub: {
      ++counters_.bytesub_cycles;
      if (!block_is_decrypt_) {
        // ByteSub32 slice + forward key schedule generation (one word per
        // cycle keeps the window bottom at the current round key).
        state_.set_column(sub_, bytesub_->data.read());
        generate_forward(kstran_enc_->data.read());
        if (sub_ < 3) ++sub_;
        else phase_ = Phase::kMix;
      } else {
        // IByteSub32 slice + inverse key schedule recovery: one schedule
        // word per cycle, window sliding down.
        state_.set_column(sub_, inv_bytesub_->data.read());
        generate_inverse((mode_ == IpMode::kBoth ? kstran_dec_ : kstran_enc_)->data.read());
        if (sub_ < 3) {
          ++sub_;
        } else if (round_ < nr_) {
          ++counters_.rounds_done;
          ++round_;
          sub_ = 0;
          phase_ = Phase::kMix;
        } else {
          // Final AddRoundKey (the original key) folds into the output path.
          ++counters_.rounds_done;
          hdl::Word128 k0;
          for (int c = 0; c < 4; ++c)
            k0.set_column(c, key_words_[static_cast<std::size_t>(c)]);
          finish_block(state_ ^ k0);
        }
      }
      break;
    }

    case Phase::kMix: {
      ++counters_.mix_cycles;
      if (!block_is_decrypt_) {
        ++counters_.rounds_done;
        const hdl::Word128 sr = shift_rows128(state_, false);
        const hdl::Word128 pre = round_ < nr_ ? mix_columns128(sr, false) : sr;
        const hdl::Word128 ns = pre ^ window_bottom4();
        if (round_ < nr_) {
          state_ = ns;
          ++round_;
          sub_ = 0;
          phase_ = Phase::kSub;
        } else {
          finish_block(ns);
        }
      } else {
        if (round_ == 1) {
          state_ = shift_rows128(state_, true);
        } else {
          state_ = shift_rows128(mix_columns128(state_ ^ window_top4(), true), true);
        }
        sub_ = 0;
        phase_ = Phase::kSub;
      }
      break;
    }
  }
}

}  // namespace aesip::core
