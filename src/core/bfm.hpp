// Bus functional model: drives an IP's Table 1 interface like the host
// system the paper envisions (a bus master feeding a memory-mapped core).
//
// Provides blocking single-block operations (latency measurement), a
// full-rate streaming mode that keeps the Data_In process fed while the
// Rijndael process is busy (throughput measurement — this is the overlap
// the paper's decoupled processes exist for), and a BlockCipher128 adapter
// so the aes:: modes of operation can run their traffic through the
// simulated hardware.
//
// GenericBusDriver works against any core exposing the Table 1 signals
// (setup/wr_data/wr_key/encdec/din/dout/data_ok) plus key_ready() and
// data_pending() — the paper's IP, and the comparison architectures in
// arch::, so one harness measures them all.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/rijndael_ip.hpp"
#include "hdl/simulator.hpp"
#include "hdl/word128.hpp"

namespace aesip::core {

/// Bus-master-side cycle accounting: where a client's simulated cycles go
/// once the Table 1 handshake is in the loop (load edges, key setup
/// passes, compute waits). Complements RijndaelIp::counters(), which
/// attributes the same cycles from inside the core's FSM.
struct BusCounters {
  std::uint64_t resets = 0;          ///< reset() calls (2 cycles each)
  std::uint64_t key_loads = 0;       ///< keys pushed over the bus
  std::uint64_t key_setup_cycles = 0;///< cycles waiting for key_ready
  std::uint64_t rekey_hits = 0;      ///< rekey() calls satisfied for free
  std::uint64_t blocks = 0;          ///< process_block() completions
  std::uint64_t load_cycles = 0;     ///< wr_data bus-transfer edges
  std::uint64_t compute_cycles = 0;  ///< load edge -> data_ok waits, summed
  std::uint64_t stream_blocks = 0;   ///< blocks moved by stream()
  std::uint64_t stream_cycles = 0;   ///< stream() first-load -> last-ok, summed
};

template <typename Ip>
class GenericBusDriver {
 public:
  GenericBusDriver(hdl::Simulator& sim, Ip& ip) : sim_(sim), ip_(ip) {}

  /// Pulse `setup` for one cycle (configuration period).
  void reset() {
    ++counters_.resets;
    ip_.setup.write(true);
    step();
    ip_.setup.write(false);
    step();
    has_resident_key_ = false;
  }

  /// Write a 16/24/32-byte cipher key and wait until the core reports
  /// key-ready.  Keys wider than the 128-bit din ride consecutive wr_key
  /// beats (words 0..3, then words 4..Nk-1 in the low lanes — the bus
  /// transfer the multi-beat Key_In process expects).  Returns the number
  /// of cycles the key setup took after the last beat.
  std::uint64_t load_key(std::span<const std::uint8_t> key) {
    if (key.size() != 16 && key.size() != 24 && key.size() != 32)
      throw std::invalid_argument("bfm: key must be 16, 24 or 32 bytes");
    for (std::size_t off = 0; off < key.size(); off += 16) {
      std::array<std::uint8_t, 16> beat{};
      const std::size_t n = std::min<std::size_t>(16, key.size() - off);
      std::copy_n(key.begin() + static_cast<std::ptrdiff_t>(off), n, beat.begin());
      ip_.din.write(hdl::Word128::from_bytes(beat));
      ip_.wr_key.write(true);
      step();
      ip_.wr_key.write(false);
    }
    std::uint64_t cycles = 0;
    while (!ip_.key_ready()) {
      step();
      if (++cycles > kWatchdog) throw std::runtime_error("bfm: key setup never completed");
    }
    resident_key_len_ = key.size();
    std::copy(key.begin(), key.end(), resident_key_.begin());
    has_resident_key_ = true;
    ++counters_.key_loads;
    counters_.key_setup_cycles += cycles;
    return cycles;
  }

  /// True when `key` is already resident in the core's Key_In register and
  /// the schedule is ready — i.e. a rekey() for it would cost zero cycles.
  bool key_resident(std::span<const std::uint8_t> key) const noexcept {
    return has_resident_key_ && key.size() == resident_key_len_ && ip_.key_ready() &&
           std::equal(key.begin(), key.end(), resident_key_.begin());
  }

  /// Fast-path key load: skips the bus write and the decrypt key-setup pass
  /// entirely when `key` is already resident (the session-affinity hit the
  /// farm scheduler exists to create — the paper's on-the-fly schedule makes
  /// re-keying cost cycles but key *reuse* free). Returns setup cycles spent
  /// (0 on a hit).
  std::uint64_t rekey(std::span<const std::uint8_t> key) {
    if (key_resident(key)) {
      ++counters_.rekey_hits;
      return 0;
    }
    return load_key(key);
  }

  /// Process one block and wait for data_ok. `encrypt` selects the
  /// direction on a combined device (ignored otherwise).
  std::array<std::uint8_t, 16> process_block(std::span<const std::uint8_t> block,
                                             bool encrypt = true) {
    ip_.encdec.write(encrypt);
    ip_.din.write(hdl::Word128::from_bytes(block));
    ip_.wr_data.write(true);
    step();
    ip_.wr_data.write(false);
    // Latency is counted from the load edge (the cycle the Rijndael process
    // captures the block), matching the paper's 50-cycle / 700 ns figure;
    // the preceding bus-transfer cycle is not Rijndael processing.
    const std::uint64_t start = sim_.cycle();
    while (!ip_.data_ok.read()) {
      step();
      if (sim_.cycle() - start > kWatchdog)
        throw std::runtime_error("bfm: block never completed");
    }
    last_latency_ = sim_.cycle() - start;
    ++counters_.blocks;
    ++counters_.load_cycles;
    counters_.compute_cycles += last_latency_;
    std::array<std::uint8_t, 16> out{};
    ip_.dout.read().store(out);
    return out;
  }

  /// Cycles from the load edge to data_ok of the last process_block.
  std::uint64_t last_latency() const noexcept { return last_latency_; }

  /// Stream blocks at full rate (back-to-back, Data_In kept fed).
  std::vector<std::array<std::uint8_t, 16>> stream(
      std::span<const std::array<std::uint8_t, 16>> blocks, bool encrypt = true) {
    std::vector<std::array<std::uint8_t, 16>> results;
    results.reserve(blocks.size());
    if (blocks.empty()) return results;

    ip_.encdec.write(encrypt);
    std::size_t next = 0;
    bool first_fed = false;
    std::uint64_t first_cycle = 0;
    std::uint64_t guard = 0;

    while (results.size() < blocks.size()) {
      bool feeding_first = false;
      if (next < blocks.size() && !ip_.data_pending()) {
        ip_.din.write(hdl::Word128::from_bytes(blocks[next]));
        ip_.wr_data.write(true);
        feeding_first = !first_fed;
        first_fed = true;
        ++next;
      } else {
        ip_.wr_data.write(false);
      }
      step();
      ip_.wr_data.write(false);
      if (feeding_first) first_cycle = sim_.cycle();  // the first load edge
      if (ip_.data_ok.read()) {
        std::array<std::uint8_t, 16> out{};
        ip_.dout.read().store(out);
        results.push_back(out);
      }
      if (++guard > kWatchdog * blocks.size())
        throw std::runtime_error("bfm: stream stalled");
    }
    last_stream_cycles_ = sim_.cycle() - first_cycle;
    counters_.stream_blocks += blocks.size();
    counters_.stream_cycles += last_stream_cycles_;
    return results;
  }

  /// Cycles from the first load edge to the last data_ok of stream().
  std::uint64_t last_stream_cycles() const noexcept { return last_stream_cycles_; }

  /// Bus-side cycle accounting since construction / reset_counters().
  const BusCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = BusCounters{}; }

 private:
  static constexpr std::uint64_t kWatchdog = 10000;

  void step() { sim_.step(); }

  hdl::Simulator& sim_;
  Ip& ip_;
  std::uint64_t last_latency_ = 0;
  std::uint64_t last_stream_cycles_ = 0;
  std::array<std::uint8_t, 32> resident_key_{};
  std::size_t resident_key_len_ = 0;
  bool has_resident_key_ = false;
  BusCounters counters_;
};

/// The paper's IP behind the generic driver.
using BusDriver = GenericBusDriver<RijndaelIp>;

/// BlockCipher128-concept adapter: lets aes::cbc_encrypt & co. run through
/// the simulated IP.  Both directions require a kBoth device (or the
/// matching single-direction device for one-way use).
class IpBlockCipher {
 public:
  IpBlockCipher(BusDriver& driver) : driver_(&driver) {}

  void encrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
    const auto r = driver_->process_block(in, /*encrypt=*/true);
    for (std::size_t i = 0; i < 16; ++i) out[i] = r[i];
  }
  void decrypt_block(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) const {
    const auto r = driver_->process_block(in, /*encrypt=*/false);
    for (std::size_t i = 0; i < 16; ++i) out[i] = r[i];
  }

 private:
  BusDriver* driver_;
};

}  // namespace aesip::core
