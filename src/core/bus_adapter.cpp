#include "core/bus_adapter.hpp"

#include <stdexcept>

namespace aesip::core {

namespace {

std::uint32_t get_word(const hdl::Word128& w, int index, int width) {
  std::uint32_t v = 0;
  const int byte0 = index * width / 8;
  for (int b = 0; b < width / 8; ++b)
    v |= static_cast<std::uint32_t>(w.b[static_cast<std::size_t>(byte0 + b)]) << (8 * b);
  return v;
}

void set_word(hdl::Word128& w, int index, int width, std::uint32_t v) {
  const int byte0 = index * width / 8;
  for (int b = 0; b < width / 8; ++b)
    w.b[static_cast<std::size_t>(byte0 + b)] = static_cast<std::uint8_t>(v >> (8 * b));
}

}  // namespace

NarrowBusIp::NarrowBusIp(hdl::Simulator& sim, IpMode mode, int width_bits)
    : hdl::Module("narrow_bus_ip"),
      nsetup(sim, "nsetup", 1),
      nwr_data(sim, "nwr_data", 1),
      nwr_key(sim, "nwr_key", 1),
      nencdec(sim, "nencdec", 1, true),
      ndin(sim, "ndin", width_bits),
      ndout(sim, "ndout", width_bits),
      ndata_ok(sim, "ndata_ok", 1),
      width_(width_bits) {
  if (width_bits != 8 && width_bits != 16 && width_bits != 32)
    throw std::invalid_argument("NarrowBusIp: width must be 8, 16 or 32");
  ip_ = std::make_unique<RijndaelIp>(sim, mode);
  sim.add_module(*this);
}

void NarrowBusIp::evaluate() {
  // Combinationally forwarded controls.
  ip_->setup.write(nsetup.read());
  ip_->encdec.write(nencdec.read());
}

void NarrowBusIp::tick() {
  // --- inbound word assembly ---------------------------------------------------
  bool fire_data = false;
  bool fire_key = false;
  if (nsetup.read()) {
    in_count_ = 0;
    out_remaining_ = 0;
  } else if (nwr_data.read() || nwr_key.read()) {
    const bool is_key = nwr_key.read();
    if (in_count_ > 0 && is_key != in_is_key_) in_count_ = 0;  // restart on type switch
    in_is_key_ = is_key;
    set_word(in_shift_, in_count_, width_, ndin.read());
    if (++in_count_ == words_per_block()) {
      in_count_ = 0;
      fire_data = !is_key;
      fire_key = is_key;
    }
  }
  if (fire_data || fire_key) ip_->din.write(in_shift_);
  ip_->wr_data.write(fire_data);
  ip_->wr_key.write(fire_key);

  // --- outbound word streaming --------------------------------------------------
  if (ip_->data_ok.read()) {
    out_shift_ = ip_->dout.read();
    out_remaining_ = words_per_block();
  }
  if (out_remaining_ > 0) {
    ndout.write(get_word(out_shift_, words_per_block() - out_remaining_, width_));
    ndata_ok.write(true);
    --out_remaining_;
  } else {
    ndata_ok.write(false);
  }
}

// ===== NarrowBusDriver =========================================================

namespace {
constexpr std::uint64_t kWatchdog = 10000;
}

void NarrowBusDriver::reset() {
  nb_.nsetup.write(true);
  sim_.step();
  nb_.nsetup.write(false);
  sim_.step();
}

void NarrowBusDriver::write_words(std::span<const std::uint8_t> value, bool is_key) {
  const int w = nb_.width_bits() / 8;
  for (int i = 0; i < nb_.words_per_block(); ++i) {
    std::uint32_t word = 0;
    for (int b = 0; b < w; ++b)
      word |= static_cast<std::uint32_t>(value[static_cast<std::size_t>(i * w + b)]) << (8 * b);
    nb_.ndin.write(word);
    nb_.nwr_data.write(!is_key);
    nb_.nwr_key.write(is_key);
    sim_.step();
  }
  nb_.nwr_data.write(false);
  nb_.nwr_key.write(false);
}

std::uint64_t NarrowBusDriver::load_key(std::span<const std::uint8_t> key) {
  write_words(key, /*is_key=*/true);
  std::uint64_t cycles = 0;
  while (!nb_.inner().key_ready()) {
    sim_.step();
    if (++cycles > kWatchdog)
      throw std::runtime_error("narrow bfm: key setup never completed");
  }
  return cycles;
}

std::array<std::uint8_t, 16> NarrowBusDriver::process_block(std::span<const std::uint8_t> block,
                                                            bool encrypt) {
  nb_.nencdec.write(encrypt);
  write_words(block, /*is_key=*/false);
  const std::uint64_t start = sim_.cycle();

  // Wait for the result burst and reassemble it.
  std::array<std::uint8_t, 16> out{};
  while (!nb_.ndata_ok.read()) {
    sim_.step();
    if (sim_.cycle() - start > kWatchdog)
      throw std::runtime_error("narrow bfm: block never completed");
  }
  last_latency_ = sim_.cycle() - start;
  const int w = nb_.width_bits() / 8;
  for (int i = 0; i < nb_.words_per_block(); ++i) {
    if (!nb_.ndata_ok.read()) throw std::runtime_error("narrow bfm: result burst broke up");
    const std::uint32_t word = nb_.ndout.read();
    for (int b = 0; b < w; ++b)
      out[static_cast<std::size_t>(i * w + b)] = static_cast<std::uint8_t>(word >> (8 * b));
    sim_.step();
  }
  return out;
}

std::vector<std::array<std::uint8_t, 16>> NarrowBusDriver::stream(
    std::span<const std::array<std::uint8_t, 16>> blocks, bool encrypt) {
  std::vector<std::array<std::uint8_t, 16>> results;
  if (blocks.empty()) return results;
  nb_.nencdec.write(encrypt);

  const int w = nb_.width_bits() / 8;
  std::size_t feed_block = 0;
  int feed_word = 0;
  bool first_fired = false;
  std::uint64_t first_fire_cycle = 0;
  std::array<std::uint8_t, 16> partial{};
  int collect_word = 0;
  std::uint64_t guard = 0;

  while (results.size() < blocks.size()) {
    // Feed the next word whenever the core has room for a staged block.
    if (feed_block < blocks.size() && !nb_.inner().data_pending()) {
      std::uint32_t word = 0;
      for (int b = 0; b < w; ++b)
        word |= static_cast<std::uint32_t>(
                    blocks[feed_block][static_cast<std::size_t>(feed_word * w + b)])
                << (8 * b);
      nb_.ndin.write(word);
      nb_.nwr_data.write(true);
      if (++feed_word == nb_.words_per_block()) {
        feed_word = 0;
        ++feed_block;
        if (!first_fired) {
          first_fired = true;
          first_fire_cycle = sim_.cycle() + 1;  // the word that fires the core
        }
      }
    } else {
      nb_.nwr_data.write(false);
    }
    sim_.step();
    nb_.nwr_data.write(false);

    if (nb_.ndata_ok.read()) {
      const std::uint32_t word = nb_.ndout.read();
      for (int b = 0; b < w; ++b)
        partial[static_cast<std::size_t>(collect_word * w + b)] =
            static_cast<std::uint8_t>(word >> (8 * b));
      if (++collect_word == nb_.words_per_block()) {
        collect_word = 0;
        results.push_back(partial);
      }
    }
    if (++guard > kWatchdog * blocks.size())
      throw std::runtime_error("narrow bfm: stream stalled");
  }
  last_stream_cycles_ = sim_.cycle() - first_fire_cycle;
  return results;
}

}  // namespace aesip::core
