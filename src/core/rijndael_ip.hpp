// The paper's soft IP: cycle-accurate model of the low-area AES-128 core.
//
// One class generates all three products of the paper (encrypt-only,
// decrypt-only, encrypt+decrypt) from the same methodology, exactly as the
// paper describes.  The architecture is the mixed 32/128-bit organization
// of Section 4:
//
//   * ByteSub / IByteSub run 32 bits per cycle through one 4-S-box bank
//     (4 cycles per round),
//   * ShiftRow + MixColumn + AddKey run as one 128-bit cycle,
//   * 5 cycles per round, 50 cycles per block — every Table 2 entry
//     satisfies latency = 50 x Tclk,
//   * round keys are generated on the fly by the KStran unit (4 more
//     S-boxes) during the four ByteSub cycles; nothing is precomputed or
//     stored,
//   * the initial AddRoundKey folds into the block-load path and (for
//     decryption) the final AddRoundKey folds into the output path, which
//     is how the initial XOR costs no extra cycle,
//   * Data_In / Key_In / Out are independent clocked processes (paper
//     Figs. 8/9): a new block and the previous result ride the bus while
//     the Rijndael process is busy, so full-rate throughput equals
//     block_size / latency.
//
// Decryption needs round keys in reverse order, so a key load is followed
// by a key-setup pass of 4*Nr cycles (Nr rounds x 4 KStran cycles — the
// paper's 40 for AES-128) that derives the final round key; during
// decryption the schedule then runs backwards on the fly.  Encrypt-only
// devices skip the setup entirely.
//
// Key-size generality: the core is built for one Rijndael geometry
// (key_bits = 128/192/256; the block stays 128-bit, so Nk = 4/6/8 and
// Nr = Nk+6).  The on-the-fly schedule generalizes as a *sliding window*
// of the last Nk schedule words: each ByteSub cycle generates (encrypt,
// setup) or recovers (decrypt) exactly one schedule word
//     w[i] = w[i-Nk] ^ t(w[i-1])      t = KStran at Nk boundaries,
//                                     SubWord at i%8==4 when Nk=8,
// so the encrypt round key is always the window bottom (w[4r..4r+3]) and
// the decrypt round key the window top.  For Nk=4 the window degenerates
// bit-for-bit into the original round_key/next_key register pair.  Keys
// wider than the 128-bit din load as ceil(Nk/4) consecutive wr_key beats
// (words 0..3, then words 4..Nk-1 in the low lanes).
//
// Interface (paper Table 1): clk/setup/wr_data/wr_key/din/enc-dec inputs,
// data_ok/dout outputs.  data_ok is modeled as a one-cycle completion
// strobe: it pulses on the cycle dout latches a fresh result (the paper
// does not pin these semantics down; see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "core/sbox_unit.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/word128.hpp"

namespace aesip::core {

/// Which of the paper's three devices to instantiate.
enum class IpMode { kEncrypt, kDecrypt, kBoth };

/// Live occupancy counters of the IP's clocked processes — the paper's
/// cycle budget (4x ByteSub32 + 1x SR/MC/AK = 5 per round, 5*Nr per block,
/// 4*Nr per decrypt key setup) kept as running totals instead of one-shot
/// test assertions. Counting is unconditional: each tick costs one
/// indexed increment, cheap enough to leave on (bench_simspeed measures
/// the instrumented kernel end to end).
struct IpCounters {
  // One slot per FSM phase, indexed by the phase the Rijndael process
  // executed that edge.
  std::uint64_t idle_cycles = 0;       ///< nothing staged (incl. block-start edges)
  std::uint64_t key_setup_cycles = 0;  ///< final-round-key derivation (decrypt devices)
  std::uint64_t bytesub_cycles = 0;    ///< ByteSub32 / IByteSub32 slices (4 per round)
  std::uint64_t mix_cycles = 0;        ///< 128-bit SR/MC/AK (or AK/IMC/ISR) cycles

  // Bus-side processes (paper Figs. 8/9).
  std::uint64_t setup_resets = 0;  ///< edges spent in the configuration period
  std::uint64_t key_writes = 0;    ///< wr_key load edges
  std::uint64_t data_writes = 0;   ///< wr_data load edges

  // Work completed.
  std::uint64_t rounds_done = 0;  ///< cipher rounds finished (Nr per block)
  std::uint64_t blocks_enc = 0;
  std::uint64_t blocks_dec = 0;

  std::uint64_t blocks() const noexcept { return blocks_enc + blocks_dec; }
  /// Cycles the Rijndael process spent computing (excludes idle/setup).
  std::uint64_t round_cycles() const noexcept { return bytesub_cycles + mix_cycles; }
  /// Paper invariant: exactly 5 (4 ByteSub32 + 1 SR/MC/AK) on any workload.
  double cycles_per_round() const noexcept {
    return rounds_done ? static_cast<double>(round_cycles()) / static_cast<double>(rounds_done)
                       : 0.0;
  }
  /// Paper invariant: exactly 5*Nr (50 for AES-128) on any workload of
  /// completed blocks.
  double cycles_per_block() const noexcept {
    return blocks() ? static_cast<double>(round_cycles()) / static_cast<double>(blocks()) : 0.0;
  }
};

class RijndaelIp final : public hdl::Module {
 public:
  // The paper's AES-128 instance figures (kept for the Table 2 harness and
  // historical call sites; the general contracts are 5*Nr, 4*Nr — use the
  // instance accessors below for anything geometry-dependent).
  static constexpr int kRounds = 10;
  static constexpr int kCyclesPerRound = 5;           // 4x ByteSub32 + 1x SR/MC/AK
  static constexpr int kCyclesPerBlock = 50;          // 10 rounds x 5
  static constexpr int kKeySetupCycles = 40;          // decrypt/both only
  static constexpr int kCyclesPerRoundAll32 = 12;     // the paper's all-32-bit baseline

  /// Build the core for one geometry (key_bits = 128, 192 or 256).
  RijndaelIp(hdl::Simulator& sim, IpMode mode, int key_bits = 128);

  // --- bus interface (paper Table 1) ---------------------------------------
  hdl::Signal<bool> setup;     ///< synchronous reset / configuration period
  hdl::Signal<bool> wr_data;   ///< din holds a block to encrypt/decrypt
  hdl::Signal<bool> wr_key;    ///< din holds a new cipher key
  hdl::Signal<bool> encdec;    ///< 1 = encrypt, 0 = decrypt (kBoth only)
  hdl::Signal<hdl::Word128> din;
  hdl::Signal<hdl::Word128> dout;
  hdl::Signal<bool> data_ok;   ///< one-cycle strobe: dout just latched

  // --- debug/trace signals (not pins; excluded from area model) ------------
  hdl::Signal<std::uint8_t> dbg_round;
  hdl::Signal<std::uint8_t> dbg_phase;

  // --- status for tests and benches ----------------------------------------
  IpMode mode() const noexcept { return mode_; }
  int key_bits() const noexcept { return 32 * nk_; }
  int nk() const noexcept { return nk_; }              ///< key words (4/6/8)
  int rounds() const noexcept { return nr_; }          ///< Nr (10/12/14)
  int key_beats() const noexcept { return nk_ > 4 ? 2 : 1; }  ///< wr_key beats per load
  int cycles_per_block() const noexcept { return 5 * nr_; }
  int key_setup_cycles() const noexcept {
    return mode_ == IpMode::kEncrypt ? 0 : 4 * nr_;
  }
  bool busy() const noexcept { return phase_ != Phase::kIdle; }
  bool key_ready() const noexcept { return key_valid_; }
  /// True while a staged block waits in the Data_In register.
  bool data_pending() const noexcept { return data_pending_; }
  std::uint64_t blocks_done() const noexcept { return blocks_done_; }
  /// Physical S-boxes instantiated (8 for single-direction, 16 for both).
  int sbox_count() const noexcept;

  /// Per-phase cycle counters since construction / reset_counters().
  const IpCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = IpCounters{}; }

  void evaluate() override;
  void tick() override;

 private:
  enum class Phase : std::uint8_t { kIdle, kKeySetup, kSub, kMix };

  void start_block();
  void finish_block(const hdl::Word128& result);
  /// Generate schedule word gen_i_ into the window (encrypt rounds and key
  /// setup); `sbox_data` is the KStran bank output for this cycle.
  void generate_forward(std::uint32_t sbox_data);
  /// Recover schedule word rec_m_ into the window (decrypt rounds).
  void generate_inverse(std::uint32_t sbox_data);
  /// The 128-bit window views the datapath consumes.
  hdl::Word128 window_bottom4() const noexcept;  ///< encrypt round key w[4r..4r+3]
  hdl::Word128 window_top4() const noexcept;     ///< decrypt round key

  IpMode mode_;
  int nk_;             ///< key words (4/6/8)
  int nr_;             ///< rounds (10/12/14)
  int sched_words_;    ///< Nb*(Nr+1) = 44/52/60

  // S-box banks. Single-direction devices have a data bank + a KStran bank
  // (8 S-boxes = 16384 bits); the combined device has separate encrypt and
  // decrypt data paths, each with its own KStran bank (16 = 32768 bits).
  std::unique_ptr<SubWord32Unit> bytesub_;      // forward data bank
  std::unique_ptr<SubWord32Unit> inv_bytesub_;  // inverse data bank
  std::unique_ptr<SubWord32Unit> kstran_enc_;   // forward KStran bank
  std::unique_ptr<SubWord32Unit> kstran_dec_;   // KStran bank of the decrypt path

  // Bus-side registers (Data_In / Key_In / Out processes).
  hdl::Word128 data_in_reg_;
  std::array<std::uint32_t, 8> key_words_{};  // registered key, one word per Nk
  int key_beat_ = 0;                          // next wr_key beat (multi-beat loads)
  bool data_pending_ = false;
  bool key_valid_ = false;

  // Rijndael process registers.
  hdl::Word128 state_;
  std::array<std::uint32_t, 8> window_{};    // sliding window W[0..Nk-1]
  std::array<std::uint32_t, 8> dec_base_{};  // final window derived by key setup
  int gen_i_ = 0;   // next schedule index to generate (forward)
  int rec_m_ = 0;   // next schedule index to recover (inverse, counts down)
  Phase phase_ = Phase::kIdle;
  int round_ = 0;
  int sub_ = 0;
  bool block_is_decrypt_ = false;

  std::uint64_t blocks_done_ = 0;
  IpCounters counters_;
};

}  // namespace aesip::core
