// Gate-level bus driver: runs the Table 1 protocol against a synthesized
// IP netlist (pre- or post-mapping) through the netlist evaluator.
//
// The gate-level twin of core::BusDriver.  Used by the conformance tests,
// the SEU fault-injection campaigns and the power-estimation runs — all of
// which need to poke a *netlist*, not the RTL model.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace aesip::core {

class GateIpDriver {
 public:
  /// Binds to a synthesized IP netlist (must expose the Table 1 ports).
  /// The netlist must outlive the driver.
  explicit GateIpDriver(const netlist::Netlist& nl);

  // --- raw port access -------------------------------------------------------
  netlist::NetId input(const std::string& name) const { return by_name_.at(name); }
  bool has_input(const std::string& name) const { return by_name_.count(name) != 0; }
  void set(const std::string& name, bool v) { ev_.set(input(name), v); }
  void set_din(std::span<const std::uint8_t> block);
  std::array<std::uint8_t, 16> read_dout() const;
  bool data_ok() const { return ev_.get(out_by_name_.at("data_ok")); }

  /// One clock edge (settles first).
  void clock();
  std::uint64_t cycles() const noexcept { return cycles_; }

  /// Direct evaluator access (fault injection, activity probes).
  netlist::Evaluator& evaluator() noexcept { return ev_; }

  // --- protocol helpers --------------------------------------------------------
  /// Pulse `setup` for one cycle.
  void reset();
  /// Write a key; runs the 40 extra key-setup cycles when `needs_setup`.
  void load_key(std::span<const std::uint8_t> key, bool needs_setup);

  struct BlockResult {
    std::array<std::uint8_t, 16> data;
    int cycles;  ///< load edge -> data_ok
  };
  /// Process one block; nullopt if data_ok never rises (watchdog), which a
  /// fault-injection campaign classifies as a hang.
  std::optional<BlockResult> process(std::span<const std::uint8_t> block, bool encrypt,
                                     int watchdog_cycles = 200);

 private:
  netlist::Evaluator ev_;
  std::map<std::string, netlist::NetId> by_name_;
  std::map<std::string, netlist::NetId> out_by_name_;
  netlist::Bus din_;
  netlist::Bus dout_;
  std::uint64_t cycles_ = 0;
};

}  // namespace aesip::core
