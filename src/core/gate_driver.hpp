// Gate-level bus driver: runs the Table 1 protocol against a synthesized
// IP netlist (pre- or post-mapping) through the netlist evaluator.
//
// The gate-level twin of core::BusDriver.  Used by the conformance tests,
// the SEU fault-injection campaigns and the power-estimation runs — all of
// which need to poke a *netlist*, not the RTL model.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "netlist/batch_eval.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace aesip::core {

class GateIpDriver {
 public:
  /// Binds to a synthesized IP netlist (must expose the Table 1 ports).
  /// The netlist must outlive the driver.
  explicit GateIpDriver(const netlist::Netlist& nl);

  // --- raw port access -------------------------------------------------------
  netlist::NetId input(const std::string& name) const { return by_name_.at(name); }
  bool has_input(const std::string& name) const { return by_name_.count(name) != 0; }
  void set(const std::string& name, bool v) { ev_.set(input(name), v); }
  void set_din(std::span<const std::uint8_t> block);
  std::array<std::uint8_t, 16> read_dout() const;
  bool data_ok() const { return ev_.get(out_by_name_.at("data_ok")); }

  /// One clock edge (settles first).
  void clock();
  std::uint64_t cycles() const noexcept { return cycles_; }

  /// Direct evaluator access (fault injection, activity probes).
  netlist::Evaluator& evaluator() noexcept { return ev_; }
  const netlist::Evaluator& evaluator() const noexcept { return ev_; }

  // --- protocol helpers --------------------------------------------------------
  /// Pulse `setup` for one cycle.
  void reset();
  /// Write a key (16/24/32 bytes, multi-beat when wider than din); runs
  /// the 4*Nr extra key-setup cycles when `needs_setup`.
  void load_key(std::span<const std::uint8_t> key, bool needs_setup);
  /// Write a key and run an explicit number of key-setup clocks (the
  /// variant family declares its own schedule — 10 expansion cycles for
  /// the stored-key cores, 40 for the paper's inverse-schedule pass).
  void load_key(std::span<const std::uint8_t> key, int setup_cycles);

  struct BlockResult {
    std::array<std::uint8_t, 16> data;
    int cycles;  ///< load edge -> data_ok
  };
  /// Process one block; nullopt if data_ok never rises (watchdog), which a
  /// fault-injection campaign classifies as a hang.
  std::optional<BlockResult> process(std::span<const std::uint8_t> block, bool encrypt,
                                     int watchdog_cycles = 200);

  struct StreamResult {
    int cycles;  ///< first load edge -> last data_ok
  };
  /// Stream blocks back to back through one device, keeping the Data_In
  /// register fed: the throughput measurement for cores with multiple
  /// blocks in flight.  Uses the `in_ready` admission output when the
  /// netlist has one (the variant family); otherwise feeds a new block the
  /// cycle after each admission slot frees (writes may lead completions by
  /// at most one — the paper core's single pending register).  `out` gets
  /// 16 bytes per input block; nullopt on watchdog.
  std::optional<StreamResult> stream(std::span<const std::uint8_t> in,
                                     std::span<std::uint8_t> out, std::size_t blocks,
                                     bool encrypt, int watchdog_cycles = 200);

 private:
  netlist::Evaluator ev_;
  std::map<std::string, netlist::NetId> by_name_;
  std::map<std::string, netlist::NetId> out_by_name_;
  netlist::Bus din_;
  netlist::Bus dout_;
  std::uint64_t cycles_ = 0;
};

/// Bit-parallel twin of GateIpDriver: the same Table 1 protocol against the
/// same netlist, but through netlist::BatchEvaluator — lanes() independent
/// blocks per pass, one per lane (64 on the portable uint64 backend, up to
/// 512 on AVX-512; see netlist/batch_backend.hpp for the runtime
/// dispatch).  Control inputs (setup/wr_*/encdec) are broadcast to every
/// lane, so the FSM state is identical across lanes and data_ok can be
/// sampled from lane 0.  The din/dout buses carry per-lane block data (the
/// lane packing transpose lives in set_din_lanes / read_dout_lanes).
///
/// Cycle accounting: each simulated clock during a process_batch() pass
/// advances cycles() by the number of ACTIVE lanes, so a full sequence of
/// 1-lane batches reports exactly the cycle totals the scalar GateIpDriver
/// (and the behavioral model) would — cycles() stays "simulated device
/// cycles of useful work", independent of how wide the evaluation ran.
/// Reset and key-load clocks are device-global (one shared key schedule) and
/// count once.
class GateIpBatchDriver {
 public:
  /// Binds to a synthesized IP netlist (must expose the Table 1 ports).
  /// The netlist must outlive the driver.  `cfg` forces a batch backend /
  /// shard-thread count; the default auto-detects the widest one.
  explicit GateIpBatchDriver(const netlist::Netlist& nl, const netlist::BatchConfig& cfg = {});

  /// Blocks per pass — the resolved backend's lane count.
  std::size_t lanes() const noexcept { return ev_.lanes(); }

  bool has_input(const std::string& name) const { return by_name_.count(name) != 0; }
  /// Drive a control input to the same value in every lane.
  void set_broadcast(const std::string& name, bool v) { ev_.broadcast(by_name_.at(name), v); }
  /// Pack `n` 16-byte blocks (in[16*L..16*L+15] = lane L) onto din.
  void set_din_lanes(std::span<const std::uint8_t> in, std::size_t n);
  /// Unpack `n` lanes of dout into 16-byte blocks.
  void read_dout_lanes(std::span<std::uint8_t> out, std::size_t n) const;
  bool data_ok() const { return ev_.get(out_by_name_.at("data_ok"), 0); }

  /// One clock edge in every lane (settles first); `weight` is the number
  /// of device cycles it represents (= active lanes).
  void clock(std::uint64_t weight = 1);
  std::uint64_t cycles() const noexcept { return cycles_; }

  /// Direct evaluator access (lane probes, tape stats, fault injection).
  netlist::BatchEvaluator& evaluator() noexcept { return ev_; }
  const netlist::BatchEvaluator& evaluator() const noexcept { return ev_; }

  /// Pulse `setup` for one cycle (device-global: weight 1 per clock).
  void reset();
  /// Write a key to every lane (multi-beat when wider than din); runs the
  /// 4*Nr extra key-setup cycles when `needs_setup` (device-global: one
  /// shared key schedule).
  void load_key(std::span<const std::uint8_t> key, bool needs_setup);
  /// Write a key and run an explicit number of key-setup clocks (the
  /// variant family's declared schedule).
  void load_key(std::span<const std::uint8_t> key, int setup_cycles);

  struct BatchResult {
    int cycles;  ///< per-lane latency, load edge -> data_ok (same in every lane)
  };
  /// Process `n` (1..lanes()) blocks in one pass, one per lane: `in` holds
  /// 16*n input bytes, `out` receives 16*n result bytes.  Inactive lanes
  /// ride along with replicated lane-0 data.  nullopt if data_ok never
  /// rises (watchdog) — a gate-level hang, as in GateIpDriver::process.
  std::optional<BatchResult> process_batch(std::span<const std::uint8_t> in,
                                           std::span<std::uint8_t> out, std::size_t n,
                                           bool encrypt, int watchdog_cycles = 200);

 private:
  netlist::BatchEvaluator ev_;
  std::map<std::string, netlist::NetId> by_name_;
  std::map<std::string, netlist::NetId> out_by_name_;
  netlist::Bus din_;
  netlist::Bus dout_;
  std::uint64_t cycles_ = 0;
};

}  // namespace aesip::core
