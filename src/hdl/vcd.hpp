// Minimal VCD (value change dump) writer.
//
// Emits a standard four-state-free dump of every registered signal so the
// simulated IP can be inspected in GTKWave & co — the ModelSim-replacement
// piece of the reproduction flow.  One timestep per clock cycle.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace aesip::hdl {

class Simulator;
class SignalBase;

class VcdWriter {
 public:
  /// Binds to `sim`'s current signal set and writes the header immediately.
  /// `out` must outlive the writer.
  VcdWriter(Simulator& sim, std::ostream& out, std::string top_name = "aes_ip");

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Dump all signals whose value changed since the previous sample.
  /// Called by Simulator::step(); may also be called manually after
  /// settle() to capture a mid-cycle view.
  void sample(std::uint64_t time);

 private:
  struct Entry {
    SignalBase* signal;
    std::string id;
    std::string last_hex;
  };

  std::ostream& out_;
  std::vector<Entry> entries_;
};

}  // namespace aesip::hdl
