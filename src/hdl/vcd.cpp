#include "hdl/vcd.hpp"

#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"

namespace aesip::hdl {

namespace {

/// Short printable identifier for signal index i ('!'..'~', then 2 chars…).
std::string vcd_id(std::size_t i) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + i % 94));
    i /= 94;
  } while (i != 0);
  return id;
}

/// Hex string -> VCD binary digits (no leading-zero trimming; harmless).
std::string hex_to_bin(const std::string& hex) {
  std::string out;
  out.reserve(hex.size() * 4);
  for (char c : hex) {
    const int v = (c >= 'a') ? c - 'a' + 10 : c - '0';
    for (int bit = 3; bit >= 0; --bit) out.push_back((v >> bit) & 1 ? '1' : '0');
  }
  return out;
}

}  // namespace

VcdWriter::VcdWriter(Simulator& sim, std::ostream& out, std::string top_name) : out_(out) {
  out_ << "$timescale 1ns $end\n$scope module " << top_name << " $end\n";
  std::size_t i = 0;
  for (SignalBase* s : sim.signals()) {
    Entry e{s, vcd_id(i++), ""};
    out_ << "$var wire " << s->bits() << " " << e.id << " " << s->name() << " $end\n";
    entries_.push_back(std::move(e));
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  sim.set_vcd(this);
  sample(0);
}

void VcdWriter::sample(std::uint64_t time) {
  bool header_written = false;
  for (Entry& e : entries_) {
    std::string hex = e.signal->trace_hex();
    if (hex == e.last_hex) continue;
    if (!header_written) {
      out_ << '#' << time << '\n';
      header_written = true;
    }
    if (e.signal->bits() == 1) {
      out_ << (hex == "1" ? '1' : '0') << e.id << '\n';
    } else {
      out_ << 'b' << hex_to_bin(hex) << ' ' << e.id << '\n';
    }
    e.last_hex = std::move(hex);
  }
}

}  // namespace aesip::hdl
