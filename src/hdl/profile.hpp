// Raw profiling counters for the simulation kernel.
//
// SimProfile is the passive data sink the Simulator fills while a profiler
// is attached (see obs::ScopedProfiler for the RAII front end and the
// reporting/JSON layer). The split keeps the dependency direction clean:
// hdl knows only how to *count* — per-module evaluate()/tick() calls,
// per-signal changed-commits ("activity"), delta-loop iterations and
// coarse wall time — while src/obs owns analysis and rendering.
//
// Counting only happens on the instrumented code paths inside
// Simulator::settle()/step(), selected by a single pointer test per call;
// with no profiler attached the kernel runs the original branch-light
// loops. Wall time is sampled once every kWallSampleEvery steps (not every
// step) so the clock read itself stays out of the per-cycle budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aesip::hdl {

struct ModuleProfile {
  std::string name;
  std::uint64_t evals = 0;  ///< evaluate() calls (one per delta iteration)
  std::uint64_t ticks = 0;  ///< tick() calls (one per clock cycle)
};

struct SignalProfile {
  std::string name;
  int bits = 0;
  std::uint64_t activity = 0;  ///< commits that changed the value (toggles)
};

struct SimProfile {
  /// Steps between wall-clock samples; wall_ns covers whole multiples of
  /// this window, so ns_per_cycle() is exact only once steps >> the window.
  static constexpr std::uint64_t kWallSampleEvery = 16;

  std::uint64_t steps = 0;    ///< step() calls while attached
  std::uint64_t settles = 0;  ///< settle() calls (2 per step + manual ones)
  std::uint64_t deltas = 0;   ///< total delta iterations across all settles
  std::uint64_t max_deltas = 0;  ///< worst single settle (cycle-depth alarm)
  std::uint64_t wall_ns = 0;     ///< sampled wall time spent inside step()

  std::vector<ModuleProfile> modules;
  std::vector<SignalProfile> signals;

  double ns_per_cycle() const {
    // Only full sample windows are covered by wall_ns; scale by the steps
    // those windows actually contained.
    const std::uint64_t sampled = steps - steps % kWallSampleEvery;
    return sampled ? static_cast<double>(wall_ns) / static_cast<double>(sampled) : 0.0;
  }
  double deltas_per_settle() const {
    return settles ? static_cast<double>(deltas) / static_cast<double>(settles) : 0.0;
  }
  std::uint64_t total_evals() const {
    std::uint64_t n = 0;
    for (const auto& m : modules) n += m.evals;
    return n;
  }
  std::uint64_t total_activity() const {
    std::uint64_t n = 0;
    for (const auto& s : signals) n += s.activity;
    return n;
  }
};

}  // namespace aesip::hdl
