// 128-bit bus value for the RTL model.
//
// The IP's `din`/`dout` buses and the state/key registers are 128 bits
// wide.  Bytes are kept in FIPS order (byte 0 = first byte on the wire =
// state(0,0)); 32-bit "columns" follow State::column_word packing, so the
// RTL model and the reference library exchange values without reshuffling.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace aesip::hdl {

struct Word128 {
  std::array<std::uint8_t, 16> b{};

  static Word128 from_bytes(std::span<const std::uint8_t> s) noexcept {
    Word128 w;
    for (std::size_t i = 0; i < 16; ++i) w.b[i] = s[i];
    return w;
  }

  /// Parse exactly 32 hex digits (test convenience).
  static Word128 from_hex(std::string_view hex);

  void store(std::span<std::uint8_t> out) const noexcept {
    for (std::size_t i = 0; i < 16; ++i) out[i] = b[i];
  }

  /// Column c (bytes 4c..4c+3) as a word, byte 4c in the low 8 bits.
  std::uint32_t column(int c) const noexcept {
    const std::size_t o = static_cast<std::size_t>(4 * c);
    return static_cast<std::uint32_t>(b[o]) | (static_cast<std::uint32_t>(b[o + 1]) << 8) |
           (static_cast<std::uint32_t>(b[o + 2]) << 16) |
           (static_cast<std::uint32_t>(b[o + 3]) << 24);
  }
  void set_column(int c, std::uint32_t w) noexcept {
    const std::size_t o = static_cast<std::size_t>(4 * c);
    b[o] = static_cast<std::uint8_t>(w);
    b[o + 1] = static_cast<std::uint8_t>(w >> 8);
    b[o + 2] = static_cast<std::uint8_t>(w >> 16);
    b[o + 3] = static_cast<std::uint8_t>(w >> 24);
  }

  friend Word128 operator^(const Word128& x, const Word128& y) noexcept {
    Word128 r;
    for (std::size_t i = 0; i < 16; ++i) r.b[i] = static_cast<std::uint8_t>(x.b[i] ^ y.b[i]);
    return r;
  }

  bool operator==(const Word128&) const noexcept = default;

  std::string to_hex() const;
};

}  // namespace aesip::hdl
