// Module: a hardware process in the simulation kernel.
//
// evaluate() models a combinational process (called repeatedly until the
// signal network settles); tick() models a clocked process (called once per
// rising edge, before any of that edge's signal commits, so every register
// samples pre-edge values — standard synchronous semantics).
#pragma once

#include <string>

namespace aesip::hdl {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Combinational behaviour; must be idempotent given stable inputs.
  virtual void evaluate() {}

  /// Rising-edge behaviour (register updates).
  virtual void tick() {}

 private:
  std::string name_;
};

}  // namespace aesip::hdl
