#include "hdl/simulator.hpp"

#include <stdexcept>

#include "hdl/vcd.hpp"

namespace aesip::hdl {

SignalBase::SignalBase(Simulator& sim, std::string name, int bits)
    : name_(std::move(name)), bits_(bits) {
  sim.add_signal(*this);
}

namespace detail {
namespace {
std::string hex_of(std::uint64_t v, int digits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}
}  // namespace

std::string to_trace_hex(bool v) { return v ? "1" : "0"; }
std::string to_trace_hex(std::uint8_t v) { return hex_of(v, 2); }
std::string to_trace_hex(std::uint32_t v) { return hex_of(v, 8); }
std::string to_trace_hex(std::uint64_t v) { return hex_of(v, 16); }
}  // namespace detail

void Simulator::settle() {
  for (int delta = 0; delta < kMaxDeltas; ++delta) {
    for (Module* m : modules_) m->evaluate();
    bool changed = false;
    for (SignalBase* s : signals_)
      changed = s->commit() || changed;
    if (!changed) return;
  }
  throw std::runtime_error("hdl::Simulator: combinational network did not settle");
}

void Simulator::step() {
  settle();
  for (Module* m : modules_) m->tick();
  for (SignalBase* s : signals_) s->commit();
  settle();
  ++cycle_;
  if (vcd_) vcd_->sample(cycle_);
}

}  // namespace aesip::hdl
