#include "hdl/simulator.hpp"

#include <chrono>
#include <stdexcept>

#include "hdl/profile.hpp"
#include "hdl/vcd.hpp"

namespace aesip::hdl {

SignalBase::SignalBase(Simulator& sim, std::string name, int bits)
    : name_(std::move(name)), bits_(bits) {
  sim.add_signal(*this);
}

namespace detail {
namespace {
std::string hex_of(std::uint64_t v, int digits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}
}  // namespace

std::string to_trace_hex(bool v) { return v ? "1" : "0"; }
std::string to_trace_hex(std::uint8_t v) { return hex_of(v, 2); }
std::string to_trace_hex(std::uint32_t v) { return hex_of(v, 8); }
std::string to_trace_hex(std::uint64_t v) { return hex_of(v, 16); }
}  // namespace detail

void Simulator::settle() {
  if (prof_) {
    settle_profiled();
    return;
  }
  for (int delta = 0; delta < kMaxDeltas; ++delta) {
    for (Module* m : modules_) m->evaluate();
    bool changed = false;
    for (SignalBase* s : signals_)
      changed = s->commit() || changed;
    if (!changed) return;
  }
  throw std::runtime_error("hdl::Simulator: combinational network did not settle");
}

void Simulator::step() {
  if (prof_) {
    step_profiled();
    return;
  }
  settle();
  for (Module* m : modules_) m->tick();
  for (SignalBase* s : signals_) s->commit();
  settle();
  ++cycle_;
  if (vcd_) vcd_->sample(cycle_);
}

// --- profiled paths ----------------------------------------------------------------
//
// Exact mirrors of settle()/step() with counting folded into the existing
// loops. Only entities bound at attach time are counted (the index bound
// guards against modules/signals registered afterwards).

namespace {
std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void Simulator::attach_profiler(SimProfile* p) {
  if (!p) {
    prof_ = nullptr;
    return;
  }
  // (Re)bind the per-entity tables; an identically shaped sink keeps its
  // counts so a profiler can be detached and re-attached to accumulate.
  if (p->modules.size() != modules_.size()) {
    p->modules.clear();
    p->modules.reserve(modules_.size());
    for (const Module* m : modules_) p->modules.push_back({m->name(), 0, 0});
  }
  if (p->signals.size() != signals_.size()) {
    p->signals.clear();
    p->signals.reserve(signals_.size());
    for (const SignalBase* s : signals_) p->signals.push_back({s->name(), s->bits(), 0});
  }
  prof_ = p;
  synced_deltas_ = p->deltas;
  synced_steps_ = p->steps;
  last_wall_ns_ = wall_now_ns();
}

void Simulator::sync_profile() const noexcept {
  if (!prof_) return;
  SimProfile& p = *prof_;
  const std::uint64_t d = p.deltas - synced_deltas_;
  const std::uint64_t t = p.steps - synced_steps_;
  if (d == 0 && t == 0) return;
  const std::size_t nm = p.modules.size() < modules_.size() ? p.modules.size() : modules_.size();
  for (std::size_t i = 0; i < nm; ++i) {
    p.modules[i].evals += d;
    p.modules[i].ticks += t;
  }
  synced_deltas_ = p.deltas;
  synced_steps_ = p.steps;
}

void Simulator::settle_profiled() {
  SimProfile& p = *prof_;
  ++p.settles;
  // Hoisted table pointers: commit() is an opaque virtual call, so an
  // indexed loop over the member vectors would reload size/data every
  // iteration; locals keep the profiled loop as tight as the plain one.
  SignalBase* const* const sigs = signals_.data();
  const std::size_t nsig = signals_.size();
  SignalProfile* const sprof = p.signals.data();
  const std::size_t ncount = p.signals.size() < nsig ? p.signals.size() : nsig;
  int delta = 0;
  bool settled = false;
  for (; delta < kMaxDeltas; ++delta) {
    for (Module* m : modules_) m->evaluate();
    bool changed = false;
    for (std::size_t i = 0; i < ncount; ++i) {
      const bool c = sigs[i]->commit();
      sprof[i].activity += static_cast<std::uint64_t>(c);  // branchless
      changed |= c;
    }
    for (std::size_t i = ncount; i < nsig; ++i) changed |= sigs[i]->commit();
    if (!changed) { settled = true; ++delta; break; }
  }
  const std::uint64_t done = static_cast<std::uint64_t>(delta);
  p.deltas += done;  // per-module evals derive from this in sync_profile()
  if (done > p.max_deltas) p.max_deltas = done;
  if (!settled)
    throw std::runtime_error("hdl::Simulator: combinational network did not settle");
}

void Simulator::step_profiled() {
  SimProfile& p = *prof_;
  settle_profiled();
  for (Module* m : modules_) m->tick();
  {
    SignalBase* const* const sigs = signals_.data();
    const std::size_t nsig = signals_.size();
    SignalProfile* const sprof = p.signals.data();
    const std::size_t ncount = p.signals.size() < nsig ? p.signals.size() : nsig;
    for (std::size_t i = 0; i < ncount; ++i)
      sprof[i].activity += static_cast<std::uint64_t>(sigs[i]->commit());
    for (std::size_t i = ncount; i < nsig; ++i) sigs[i]->commit();
  }
  settle_profiled();
  ++cycle_;
  if (vcd_) vcd_->sample(cycle_);
  ++p.steps;  // per-module ticks derive from this in sync_profile()
  if (p.steps % SimProfile::kWallSampleEvery == 0) {
    const std::uint64_t now = wall_now_ns();
    p.wall_ns += now - last_wall_ns_;
    last_wall_ns_ = now;
  }
}

}  // namespace aesip::hdl
