#include "hdl/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <climits>
#include <stdexcept>

#include "hdl/profile.hpp"
#include "hdl/vcd.hpp"

namespace aesip::hdl {

SignalBase::SignalBase(Simulator& sim, std::string name, int bits)
    : name_(std::move(name)), bits_(bits) {
  sim.add_signal(*this);
}

namespace detail {
namespace {
std::string hex_of(std::uint64_t v, int digits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}
}  // namespace

std::string to_trace_hex(bool v) { return v ? "1" : "0"; }
std::string to_trace_hex(std::uint8_t v) { return hex_of(v, 2); }
std::string to_trace_hex(std::uint32_t v) { return hex_of(v, 8); }
std::string to_trace_hex(std::uint64_t v) { return hex_of(v, 16); }
}  // namespace detail

// --- schedule learning -------------------------------------------------------
//
// While learning, every Signal read()/write() reports here.  Only accesses
// made *inside a combinational evaluate()* matter for the schedule —
// settle_delta() brackets each evaluate with the module's index; accesses
// from tick() or testbench code see cur_ == -1 and are ignored.

class Simulator::Recorder final : public DepRecorder {
 public:
  explicit Recorder(Simulator& sim) : sim_(sim) {}

  void note_read(const SignalBase& s) override { note(sim_.read_seen_, s); }
  void note_write(const SignalBase& s) override { note(sim_.write_seen_, s); }

  int cur_ = -1;  ///< index of the module currently evaluating, or -1

 private:
  void note(std::vector<std::vector<std::uint8_t>>& seen, const SignalBase& s) {
    if (cur_ < 0) return;
    auto& row = seen[static_cast<std::size_t>(cur_)];
    const std::size_t i = s.sim_index();
    if (row.size() <= i) row.resize(sim_.signals_.size(), 0);
    row[i] = 1;
  }

  Simulator& sim_;
};

Simulator::Simulator() = default;

Simulator::~Simulator() {
  // Do NOT stop_learning() here: that walks signals_ to clear recorder
  // pointers, but registered signals are caller-owned and in the usual
  // declaration order (Simulator first, model after) they are already
  // destroyed when this runs. Dropping the recorder is enough — a signal
  // is never legally used after its simulator is gone.
  rec_.reset();
}

void Simulator::add_module(Module& m) {
  modules_.push_back(&m);
  read_seen_.emplace_back();
  write_seen_.emplace_back();
  if (schedule_valid_) drop_schedule(/*count_rebuild=*/false);
}

void Simulator::add_signal(SignalBase& s) {
  s.index_ = signals_.size();
  signals_.push_back(&s);
  if (rec_) s.set_recorder(rec_.get());
  if (schedule_valid_) drop_schedule(/*count_rebuild=*/false);
}

void Simulator::start_learning() {
  rec_ = std::make_unique<Recorder>(*this);
  learn_count_ = 0;
  for (auto& row : read_seen_) row.assign(signals_.size(), 0);
  for (auto& row : write_seen_) row.assign(signals_.size(), 0);
  for (SignalBase* s : signals_) s->set_recorder(rec_.get());
}

void Simulator::stop_learning() noexcept {
  if (!rec_) return;
  for (SignalBase* s : signals_) s->set_recorder(nullptr);
  rec_.reset();
}

void Simulator::drop_schedule(bool count_rebuild) {
  schedule_valid_ = false;
  sstats_.schedule_built = false;
  stop_learning();
  if (count_rebuild) {
    ++sstats_.rebuilds;
    if (sstats_.rebuilds >= kMaxRebuilds) sstats_.schedule_disabled = true;
  }
}

// Levelize the modules by the learned evaluate-phase dependencies: an edge
// A→B exists when A writes a signal B reads.  Longest-path levels over a
// Kahn traversal; any cycle, self-loop or multiply-written signal makes the
// model unschedulable (the delta loop remains correct for those).
void Simulator::build_schedule() {
  stop_learning();
  const std::size_t nm = modules_.size();
  const std::size_t ns = signals_.size();

  std::vector<int> writer(ns, -1);
  for (std::size_t m = 0; m < nm; ++m) {
    const auto& w = write_seen_[m];
    for (std::size_t s = 0; s < w.size() && s < ns; ++s) {
      if (!w[s]) continue;
      if (writer[s] >= 0 && writer[s] != static_cast<int>(m)) {
        sstats_.schedule_disabled = true;  // multiple drivers: order-dependent
        return;
      }
      writer[s] = static_cast<int>(m);
    }
  }

  // adjacency + in-degrees over module indices
  std::vector<std::vector<std::uint32_t>> succ(nm);
  std::vector<int> indeg(nm, 0);
  for (std::size_t m = 0; m < nm; ++m) {
    const auto& r = read_seen_[m];
    for (std::size_t s = 0; s < r.size() && s < ns; ++s) {
      if (!r[s] || writer[s] < 0) continue;
      if (writer[s] == static_cast<int>(m)) {
        sstats_.schedule_disabled = true;  // reads its own output: feedback
        return;
      }
      succ[static_cast<std::size_t>(writer[s])].push_back(static_cast<std::uint32_t>(m));
      ++indeg[m];
    }
  }

  std::vector<int> level(nm, 0);
  std::vector<std::uint32_t> queue;
  for (std::size_t m = 0; m < nm; ++m)
    if (indeg[m] == 0) queue.push_back(static_cast<std::uint32_t>(m));
  std::size_t head = 0;
  int max_level = 0;
  while (head < queue.size()) {
    const std::uint32_t m = queue[head++];
    for (std::uint32_t s : succ[m]) {
      if (level[m] + 1 > level[s]) level[s] = level[m] + 1;
      if (level[s] > max_level) max_level = level[s];
      if (--indeg[s] == 0) queue.push_back(s);
    }
  }
  if (queue.size() != nm) {
    sstats_.schedule_disabled = true;  // combinational cycle across modules
    return;
  }

  const std::size_t nlevels = static_cast<std::size_t>(max_level) + 1;
  sched_order_.clear();
  level_end_.assign(nlevels, 0);
  level_writes_.assign(nlevels, {});
  for (std::size_t L = 0; L < nlevels; ++L) {
    for (std::size_t m = 0; m < nm; ++m) {
      if (level[m] != static_cast<int>(L)) continue;
      sched_order_.push_back(static_cast<std::uint32_t>(m));
      const auto& w = write_seen_[m];
      for (std::size_t s = 0; s < w.size() && s < ns; ++s)
        if (w[s]) level_writes_[L].push_back(static_cast<std::uint32_t>(s));
    }
    level_end_[L] = static_cast<std::uint32_t>(sched_order_.size());
  }

  sig_readers_.assign(ns, {});
  min_reader_level_.assign(ns, INT_MAX);
  for (std::size_t m = 0; m < nm; ++m) {
    const auto& r = read_seen_[m];
    for (std::size_t s = 0; s < r.size() && s < ns; ++s) {
      if (!r[s]) continue;
      sig_readers_[s].push_back(static_cast<std::uint32_t>(m));
      min_reader_level_[s] = std::min(min_reader_level_[s], level[m]);
    }
  }

  module_dirty_.assign(nm, 0);
  tick_dirty_ = true;  // first scheduled pass evaluates everything once
  sched_nmodules_ = nm;
  sched_nsignals_ = ns;
  schedule_valid_ = true;
  sstats_.schedule_built = true;
  sstats_.levels = static_cast<int>(nlevels);
}

// One ordered pass over the levelized schedule.  Returns false when a
// commit contradicts the learned sets (a signal changed after — or at —
// the level of its earliest reader, or a signal outside every learned
// write set changed), in which case the caller must re-settle with the
// delta loop.
bool Simulator::try_settle_scheduled(bool pre_committed) {
  SignalBase* const* const sigs = signals_.data();
  const std::size_t ns = sched_nsignals_;
  const bool all = tick_dirty_;

  // Pending writes from the testbench or from tick() become visible first;
  // their readers are marked for re-evaluation.  The dirty() pre-check
  // turns the common no-pending case into a plain load per signal, and
  // when everything evaluates anyway (post-edge) the marking is skipped
  // entirely — walking reader lists would be pure waste.  When step() has
  // already committed the post-edge writes (pre_committed) nothing can be
  // pending, so the sweep itself is skipped too.
  bool any = false;
  if (all) {
    if (!pre_committed)
      for (std::size_t i = 0; i < ns; ++i)
        if (sigs[i]->dirty()) any = sigs[i]->commit() || any;
  } else {
    for (std::size_t i = 0; i < ns; ++i) {
      if (sigs[i]->dirty() && sigs[i]->commit()) {
        any = true;
        for (std::uint32_t r : sig_readers_[i]) module_dirty_[r] = 1;
      }
    }
  }

  // Module dirty flags are always consumed within a settle, so with no
  // register movement and no pending writes the network is still settled.
  if (!all && !any) return true;
  std::size_t mi = 0;
  for (std::size_t L = 0; L < level_end_.size(); ++L) {
    for (; mi < level_end_[L]; ++mi) {
      const std::uint32_t m = sched_order_[mi];
      if (all || module_dirty_[m]) {
        modules_[m]->evaluate();
        module_dirty_[m] = 0;
      }
    }
    for (std::uint32_t si : level_writes_[L]) {
      if (!sigs[si]->dirty() || !sigs[si]->commit()) continue;
      if (min_reader_level_[si] <= static_cast<int>(L)) return false;  // stale read
      if (!all)
        for (std::uint32_t r : sig_readers_[si]) module_dirty_[r] = 1;
    }
  }

  // Verification sweep: a change here is a write outside the learned sets.
  for (std::size_t i = 0; i < ns; ++i)
    if (sigs[i]->dirty() && sigs[i]->commit()) return false;

  tick_dirty_ = false;
  return true;
}

void Simulator::settle() {
  const bool pre_committed = post_edge_committed_;
  post_edge_committed_ = false;
  // Profiled runs always take the delta loop (see file comment in
  // simulator.hpp); the accounting lives inside settle_delta() itself.
  if (prof_ || strategy_ == SettleStrategy::kDeltaOnly || sstats_.schedule_disabled) {
    settle_delta();
    return;
  }
  if (schedule_valid_ &&
      (modules_.size() != sched_nmodules_ || signals_.size() != sched_nsignals_))
    drop_schedule(/*count_rebuild=*/false);

  if (schedule_valid_) {
    if (try_settle_scheduled(pre_committed)) {
      ++sstats_.scheduled_settles;
      return;
    }
    // Learned sets were incomplete: re-settle correctly, then re-learn.
    ++sstats_.fallbacks;
    settle_delta();
    std::fill(module_dirty_.begin(), module_dirty_.end(), 0);
    tick_dirty_ = true;
    drop_schedule(/*count_rebuild=*/true);
    return;
  }

  // Learning: run the delta loop with the recorder attached, bracketing
  // each evaluate() with the module's identity.
  if (!rec_) start_learning();
  Recorder& rec = *rec_;
  ++sstats_.learn_settles;
  for (int delta = 0; delta < kMaxDeltas; ++delta) {
    for (std::size_t m = 0; m < modules_.size(); ++m) {
      rec.cur_ = static_cast<int>(m);
      modules_[m]->evaluate();
    }
    rec.cur_ = -1;
    bool changed = false;
    for (SignalBase* s : signals_) changed = s->commit() || changed;
    if (!changed) {
      if (++learn_count_ >= kLearnSettles) build_schedule();
      return;
    }
  }
  rec.cur_ = -1;
  throw_unsettled();
}

void Simulator::settle_delta() {
  ++sstats_.delta_settles;
  // Profiler accounting shares this loop rather than living in a separate
  // instrumented copy: two out-of-line copies of the same loop measure
  // differently through code layout alone, which poisons the overhead A/B.
  // With no profiler attached ncount is 0 and the extra compare per changed
  // signal is the entire cost.
  SimProfile* const p = prof_;
  if (p) ++p->settles;
  SignalBase* const* const sigs = signals_.data();
  const std::size_t nsig = signals_.size();
  std::uint64_t* const act = p ? activity_.data() : nullptr;
  const std::size_t ncount = p ? activity_.size() : 0;
  int delta = 0;
  bool settled = false;
  for (; delta < kMaxDeltas; ++delta) {
    for (Module* m : modules_) m->evaluate();
    bool changed = false;
    // A clean signal cannot move; the dirty() pre-check skips the virtual
    // commit() for the (common) untouched majority.
    for (std::size_t i = 0; i < nsig; ++i) {
      if (!sigs[i]->dirty()) continue;
      const bool c = sigs[i]->commit();
      changed |= c;
      if (c && i < ncount) ++act[i];
    }
    if (!changed) { settled = true; ++delta; break; }
  }
  if (p) {
    const auto done = static_cast<std::uint64_t>(delta);
    p->deltas += done;  // per-module evals derive from this in sync_profile()
    if (done > p->max_deltas) p->max_deltas = done;
  }
  if (!settled) throw_unsettled();
}

// The delta budget is exhausted: identify the culprits before throwing.
// One more module-by-module pass; a module whose evaluate() still moves
// signals is part of the non-converging set.
void Simulator::throw_unsettled() {
  std::string names;
  for (Module* m : modules_) {
    m->evaluate();
    bool changed = false;
    for (SignalBase* s : signals_) changed = s->commit() || changed;
    if (changed) {
      if (!names.empty()) names += ", ";
      names += m->name();
    }
  }
  if (names.empty()) names = "<unidentified>";
  throw std::runtime_error(
      "hdl::Simulator: combinational network did not settle after " +
      std::to_string(kMaxDeltas) +
      " deltas; modules still driving changes: " + names);
}

namespace {
std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void Simulator::step() {
  settle();
  for (Module* m : modules_) m->tick();
  tick_dirty_ = true;
  // Post-edge commit; with a profiler attached (ncount > 0) register
  // movement counts toward per-signal activity. Only entities bound at
  // attach time are counted (the index bound guards against signals
  // registered afterwards).
  SimProfile* const p = prof_;
  SignalBase* const* const sigs = signals_.data();
  const std::size_t nsig = signals_.size();
  std::uint64_t* const act = p ? activity_.data() : nullptr;
  const std::size_t ncount = p ? activity_.size() : 0;
  for (std::size_t i = 0; i < nsig; ++i) {
    if (!sigs[i]->dirty()) continue;
    const bool c = sigs[i]->commit();
    if (c && i < ncount) ++act[i];
  }
  post_edge_committed_ = true;  // nothing can be pending for the settle below
  settle();
  ++cycle_;
  if (vcd_) vcd_->sample(cycle_);
  if (p) {
    ++p->steps;  // per-module ticks derive from this in sync_profile()
    if (p->steps % SimProfile::kWallSampleEvery == 0) {
      const std::uint64_t now = wall_now_ns();
      p->wall_ns += now - last_wall_ns_;
      last_wall_ns_ = now;
    }
  }
}

void Simulator::attach_profiler(SimProfile* p) {
  if (!p) {
    prof_ = nullptr;
    return;
  }
  // (Re)bind the per-entity tables; an identically shaped sink keeps its
  // counts so a profiler can be detached and re-attached to accumulate.
  if (p->modules.size() != modules_.size()) {
    p->modules.clear();
    p->modules.reserve(modules_.size());
    for (const Module* m : modules_) p->modules.push_back({m->name(), 0, 0});
  }
  if (p->signals.size() != signals_.size()) {
    p->signals.clear();
    p->signals.reserve(signals_.size());
    for (const SignalBase* s : signals_) p->signals.push_back({s->name(), s->bits(), 0});
  }
  prof_ = p;
  synced_deltas_ = p->deltas;
  synced_steps_ = p->steps;
  activity_.assign(p->signals.size() < signals_.size() ? p->signals.size()
                                                       : signals_.size(),
                   0);
  last_wall_ns_ = wall_now_ns();
  // Registers may have moved since the last scheduled settle ran; make the
  // first post-detach scheduled pass re-evaluate everything.
  tick_dirty_ = true;
}

void Simulator::sync_profile() const noexcept {
  if (!prof_) return;
  SimProfile& p = *prof_;
  const std::uint64_t d = p.deltas - synced_deltas_;
  const std::uint64_t t = p.steps - synced_steps_;
  if (d == 0 && t == 0) return;
  const std::size_t na =
      activity_.size() < p.signals.size() ? activity_.size() : p.signals.size();
  for (std::size_t i = 0; i < na; ++i) {
    p.signals[i].activity += activity_[i];
    activity_[i] = 0;
  }
  const std::size_t nm = p.modules.size() < modules_.size() ? p.modules.size() : modules_.size();
  for (std::size_t i = 0; i < nm; ++i) {
    p.modules[i].evals += d;
    p.modules[i].ticks += t;
  }
  synced_deltas_ = p.deltas;
  synced_steps_ = p.steps;
}

}  // namespace aesip::hdl
