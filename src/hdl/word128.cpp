#include "hdl/word128.hpp"

#include <stdexcept>

namespace aesip::hdl {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("Word128::from_hex: bad hex digit");
}
}  // namespace

Word128 Word128::from_hex(std::string_view hex) {
  if (hex.size() != 32) throw std::invalid_argument("Word128::from_hex: need 32 digits");
  Word128 w;
  for (std::size_t i = 0; i < 16; ++i)
    w.b[i] = static_cast<std::uint8_t>((hex_digit(hex[2 * i]) << 4) | hex_digit(hex[2 * i + 1]));
  return w;
}

std::string Word128::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace aesip::hdl
