// Signals: the wires of the simulation kernel.
//
// The kernel uses two-phase (read-current / write-next) semantics.  During
// a delta iteration every combinational process reads committed values and
// writes proposed values; the simulator then commits all signals at once
// and repeats until the network is stable.  This gives the same
// evaluation-order independence a VHDL simulator provides — the property
// the paper relies on when it says the Data_In / Rijndael / Out "processes"
// execute independently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace aesip::hdl {

class Simulator;

class SignalBase {
 public:
  SignalBase(Simulator& sim, std::string name, int bits);
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const noexcept { return name_; }
  int bits() const noexcept { return bits_; }

  /// Move the proposed value into the committed slot; true if it changed.
  virtual bool commit() noexcept = 0;

  /// Committed value rendered as hex, for VCD tracing.
  virtual std::string trace_hex() const = 0;

 private:
  std::string name_;
  int bits_;
};

namespace detail {
std::string to_trace_hex(bool v);
std::string to_trace_hex(std::uint8_t v);
std::string to_trace_hex(std::uint32_t v);
std::string to_trace_hex(std::uint64_t v);
}  // namespace detail

/// A typed signal. T needs operator== and (for tracing) a hex rendering;
/// bool, uint8/32/64 and Word128 are supported out of the box.
template <typename T>
class Signal final : public SignalBase {
 public:
  Signal(Simulator& sim, std::string name, int bits, T initial = T{})
      : SignalBase(sim, std::move(name), bits), cur_(initial), next_(initial) {}

  /// Committed value (what every process sees this delta).
  const T& read() const noexcept { return cur_; }

  /// Propose a value for the next delta.
  void write(const T& v) noexcept { next_ = v; }

  /// Set both phases at once — initialization/reset only.
  void force(const T& v) noexcept { cur_ = v; next_ = v; }

  bool commit() noexcept override {
    if (next_ == cur_) return false;
    cur_ = next_;
    return true;
  }

  std::string trace_hex() const override {
    if constexpr (requires(const T& t) { t.to_hex(); })
      return cur_.to_hex();
    else
      return detail::to_trace_hex(cur_);
  }

 private:
  T cur_;
  T next_;
};

}  // namespace aesip::hdl
