// Signals: the wires of the simulation kernel.
//
// The kernel uses two-phase (read-current / write-next) semantics.  During
// a delta iteration every combinational process reads committed values and
// writes proposed values; the simulator then commits all signals at once
// and repeats until the network is stable.  This gives the same
// evaluation-order independence a VHDL simulator provides — the property
// the paper relies on when it says the Data_In / Rijndael / Out "processes"
// execute independently.
//
// Signals optionally carry a DepRecorder hook.  While the simulator is
// learning a static evaluation schedule (see simulator.hpp) every read()
// and write() reports to the recorder, which builds the per-module signal
// read/write sets the scheduler levelizes.  Outside the learning window the
// pointer is null and the hook is a single predictable branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace aesip::hdl {

class Simulator;
class SignalBase;

/// Observer for signal accesses during schedule learning.  note_read /
/// note_write fire on every Signal<T>::read()/write() while attached; the
/// simulator's recorder ignores accesses made outside a combinational
/// evaluate() (i.e. from tick() or from testbench code).
class DepRecorder {
 public:
  virtual ~DepRecorder() = default;
  virtual void note_read(const SignalBase& s) = 0;
  virtual void note_write(const SignalBase& s) = 0;
};

class SignalBase {
 public:
  SignalBase(Simulator& sim, std::string name, int bits);
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const noexcept { return name_; }
  int bits() const noexcept { return bits_; }

  /// Position in the owning simulator's signal table (registration order).
  std::size_t sim_index() const noexcept { return index_; }

  /// Attach/detach the learning recorder (null detaches).  Owned by the
  /// simulator; only meaningful during its schedule-learning window.
  void set_recorder(DepRecorder* rec) noexcept { rec_ = rec; }

  /// True when a write() has been proposed since the last commit().  A
  /// non-virtual flag so the static scheduler can sweep for pending writes
  /// with plain loads instead of virtual compare-commits; commit() clears
  /// it whether or not the value changed.
  bool dirty() const noexcept { return dirty_; }

  /// Move the proposed value into the committed slot; true if it changed.
  virtual bool commit() noexcept = 0;

  /// Committed value rendered as hex, for VCD tracing.
  virtual std::string trace_hex() const = 0;

 protected:
  DepRecorder* rec_ = nullptr;
  bool dirty_ = false;

 private:
  friend class Simulator;
  std::string name_;
  int bits_;
  std::size_t index_ = 0;
};

namespace detail {
std::string to_trace_hex(bool v);
std::string to_trace_hex(std::uint8_t v);
std::string to_trace_hex(std::uint32_t v);
std::string to_trace_hex(std::uint64_t v);
}  // namespace detail

/// A typed signal. T needs operator== and (for tracing) a hex rendering;
/// bool, uint8/32/64 and Word128 are supported out of the box.
template <typename T>
class Signal final : public SignalBase {
 public:
  Signal(Simulator& sim, std::string name, int bits, T initial = T{})
      : SignalBase(sim, std::move(name), bits), cur_(initial), next_(initial) {}

  /// Committed value (what every process sees this delta).
  const T& read() const noexcept {
    if (rec_) rec_->note_read(*this);
    return cur_;
  }

  /// Propose a value for the next delta.
  void write(const T& v) noexcept {
    if (rec_) rec_->note_write(*this);
    next_ = v;
    dirty_ = true;
  }

  /// Set both phases at once — initialization/reset only.
  void force(const T& v) noexcept {
    cur_ = v;
    next_ = v;
    dirty_ = false;
  }

  bool commit() noexcept override {
    dirty_ = false;
    if (next_ == cur_) return false;
    cur_ = next_;
    return true;
  }

  std::string trace_hex() const override {
    if constexpr (requires(const T& t) { t.to_hex(); })
      return cur_.to_hex();
    else
      return detail::to_trace_hex(cur_);
  }

 private:
  T cur_;
  T next_;
};

}  // namespace aesip::hdl
