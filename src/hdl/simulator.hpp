// The synchronous simulation kernel.
//
// One step() is a full clock cycle:
//   1. settle combinational logic (delta loop: evaluate all, commit all,
//      repeat until no signal changes),
//   2. rising edge: tick() every module — registers sample pre-edge values,
//   3. settle again so post-edge combinational outputs are visible.
//
// A delta-loop that does not converge within kMaxDeltas indicates a
// combinational cycle in the model and raises an error instead of hanging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/module.hpp"
#include "hdl/signal.hpp"

namespace aesip::hdl {

class VcdWriter;
struct SimProfile;

class Simulator {
 public:
  static constexpr int kMaxDeltas = 64;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Modules and signals register themselves; lifetime is the caller's
  /// responsibility and must cover the simulator's use.
  void add_module(Module& m) { modules_.push_back(&m); }
  void add_signal(SignalBase& s) { signals_.push_back(&s); }

  /// Attach a VCD trace sink (optional; may be null to detach).
  void set_vcd(VcdWriter* vcd) noexcept { vcd_ = vcd; }

  /// Attach a profile sink: per-module eval/tick counts, per-signal
  /// activity, delta statistics and sampled wall time accumulate into `p`
  /// until detach. The sink's module/signal tables are (re)bound to the
  /// current module/signal sets; signals or modules registered *after*
  /// attach are simulated normally but not counted. Prefer the RAII
  /// obs::ScopedProfiler over calling these directly.
  void attach_profiler(SimProfile* p);
  void detach_profiler() noexcept {
    sync_profile();
    prof_ = nullptr;
  }
  SimProfile* profiler() const noexcept { return prof_; }

  /// Flush deferred per-module counters into the attached profile (the hot
  /// path counts only global deltas/steps; every module is evaluated once
  /// per delta and ticked once per step, so per-module figures are derived
  /// here). Called by detach and by obs::ScopedProfiler before any read;
  /// harmless no-op when nothing is attached.
  void sync_profile() const noexcept;

  /// Settle the combinational network without advancing the clock —
  /// used after forcing inputs mid-cycle. Throws std::runtime_error on a
  /// non-converging (cyclic) network.
  void settle();

  /// Advance one full clock cycle.
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  std::uint64_t cycle() const noexcept { return cycle_; }

  const std::vector<SignalBase*>& signals() const noexcept { return signals_; }

 private:
  void settle_profiled();
  void step_profiled();

  std::vector<Module*> modules_;
  std::vector<SignalBase*> signals_;
  VcdWriter* vcd_ = nullptr;
  SimProfile* prof_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::uint64_t last_wall_ns_ = 0;  ///< previous wall sample (profiled runs)
  // sync_profile() bookkeeping: the deltas/steps already attributed to the
  // per-module tables. Mutable so reads through const accessors can flush.
  mutable std::uint64_t synced_deltas_ = 0;
  mutable std::uint64_t synced_steps_ = 0;
};

}  // namespace aesip::hdl
