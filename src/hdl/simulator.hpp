// The synchronous simulation kernel.
//
// One step() is a full clock cycle:
//   1. settle combinational logic (evaluate, commit, repeat until no signal
//      changes),
//   2. rising edge: tick() every module — registers sample pre-edge values,
//   3. settle again so post-edge combinational outputs are visible.
//
// settle() has two interchangeable execution strategies:
//
//   * the *delta loop* — evaluate every module, commit every signal, repeat
//     until nothing changes.  Always correct, including for combinational
//     feedback the model resolves over several deltas.
//   * the *static schedule* — the kernel spends its first kLearnSettles
//     settles recording which signals each module's evaluate() reads and
//     writes (see DepRecorder in signal.hpp), levelizes the modules by
//     those observed dependencies, and thereafter settles in ONE ordered
//     pass: commit pending writes, then per level evaluate only modules
//     whose inputs changed (after a tick() everything is considered
//     changed) and commit only that level's learned write set.  A final
//     verification sweep commits every signal; any late change means the
//     learned sets were incomplete, so the pass is abandoned, the delta
//     loop re-settles the network, and the schedule is re-learned (up to
//     kMaxRebuilds times before scheduling is disabled for good).  Models
//     with learned combinational cycles, multiple writers per signal or a
//     module that reads its own output never get a schedule and stay on
//     the delta loop.
//
// Profiled runs (attach_profiler) always use the delta loop so SimProfile's
// per-delta statistics keep their meaning; the schedule serves the
// profiler-detached hot path.  The accounting lives *inside* the one delta
// loop behind `if (prof_)` checks — a separate instrumented copy of the
// loop measurably distorts A/B comparisons through code-layout effects
// alone, so both profiled and unprofiled settles execute the same code.
// A delta loop that does not converge within kMaxDeltas indicates a
// combinational cycle in the model and raises an error naming the modules
// still driving changes instead of hanging.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hdl/module.hpp"
#include "hdl/signal.hpp"

namespace aesip::hdl {

class VcdWriter;
struct SimProfile;

/// How settle() executes.  kAuto learns and uses the static schedule where
/// possible; kDeltaOnly forces the classic delta loop (A/B baseline,
/// debugging).
enum class SettleStrategy { kAuto, kDeltaOnly };

/// Observability into the static scheduler, for tests and benches.
struct SchedulerStats {
  std::uint64_t learn_settles = 0;      ///< settles spent recording deps
  std::uint64_t scheduled_settles = 0;  ///< settles completed by the schedule
  std::uint64_t delta_settles = 0;      ///< settles served by the delta loop
  std::uint64_t fallbacks = 0;          ///< scheduled passes abandoned mid-flight
  std::uint64_t rebuilds = 0;           ///< schedule rebuilds after a fallback
  int levels = 0;                       ///< depth of the levelized schedule
  bool schedule_built = false;          ///< a schedule is currently active
  bool schedule_disabled = false;       ///< model proved unschedulable
};

class Simulator {
 public:
  static constexpr int kMaxDeltas = 64;
  /// Settles spent learning read/write sets before building the schedule.
  /// 128 settles = 64 cycles — covers a full key setup (40 cycles) and the
  /// better part of a block so every FSM phase contributes observations.
  static constexpr int kLearnSettles = 128;
  /// Schedule rebuilds tolerated before scheduling is disabled for good.
  static constexpr int kMaxRebuilds = 4;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Modules and signals register themselves; lifetime is the caller's
  /// responsibility and must cover the simulator's use.
  void add_module(Module& m);
  void add_signal(SignalBase& s);

  /// Attach a VCD trace sink (optional; may be null to detach).
  void set_vcd(VcdWriter* vcd) noexcept { vcd_ = vcd; }

  /// Attach a profile sink: per-module eval/tick counts, per-signal
  /// activity, delta statistics and sampled wall time accumulate into `p`
  /// until detach. The sink's module/signal tables are (re)bound to the
  /// current module/signal sets; signals or modules registered *after*
  /// attach are simulated normally but not counted. Prefer the RAII
  /// obs::ScopedProfiler over calling these directly.  While a profiler is
  /// attached settle() always runs the delta loop (see file comment).
  void attach_profiler(SimProfile* p);
  void detach_profiler() noexcept {
    sync_profile();
    prof_ = nullptr;
    // Profiled settles ran the delta loop; the scheduled path's dirty flags
    // are stale, so the next scheduled pass must evaluate everything once.
    tick_dirty_ = true;
  }
  SimProfile* profiler() const noexcept { return prof_; }

  /// Flush deferred per-module counters into the attached profile (the hot
  /// path counts only global deltas/steps; every module is evaluated once
  /// per delta and ticked once per step, so per-module figures are derived
  /// here). Called by detach and by obs::ScopedProfiler before any read;
  /// harmless no-op when nothing is attached.
  void sync_profile() const noexcept;

  /// Choose the settle strategy.  Switching to kDeltaOnly keeps any learned
  /// schedule around; switching back to kAuto resumes using it.
  void set_settle_strategy(SettleStrategy s) noexcept { strategy_ = s; }
  SettleStrategy settle_strategy() const noexcept { return strategy_; }
  const SchedulerStats& scheduler_stats() const noexcept { return sstats_; }

  /// Settle the combinational network without advancing the clock —
  /// used after forcing inputs mid-cycle. Throws std::runtime_error on a
  /// non-converging (cyclic) network, naming the offending modules.
  void settle();

  /// Advance one full clock cycle.
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  std::uint64_t cycle() const noexcept { return cycle_; }

  const std::vector<SignalBase*>& signals() const noexcept { return signals_; }

 private:
  class Recorder;

  void settle_delta();
  [[noreturn]] void throw_unsettled();

  void start_learning();
  void stop_learning() noexcept;
  void build_schedule();
  void drop_schedule(bool count_rebuild);
  bool try_settle_scheduled(bool pre_committed);

  std::vector<Module*> modules_;
  std::vector<SignalBase*> signals_;
  VcdWriter* vcd_ = nullptr;
  SimProfile* prof_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::uint64_t last_wall_ns_ = 0;  ///< previous wall sample (profiled runs)
  // sync_profile() bookkeeping: the deltas/steps already attributed to the
  // per-module tables. Mutable so reads through const accessors can flush.
  mutable std::uint64_t synced_deltas_ = 0;
  mutable std::uint64_t synced_steps_ = 0;
  // Per-signal activity staging for profiled runs: a dense counter array
  // (one cache line covers eight signals) the hot loops bump instead of the
  // string-bearing SignalProfile records; sync_profile() drains it.
  mutable std::vector<std::uint64_t> activity_;

  // --- static schedule state -------------------------------------------------
  SettleStrategy strategy_ = SettleStrategy::kAuto;
  SchedulerStats sstats_;
  std::unique_ptr<Recorder> rec_;  ///< non-null only while learning
  int learn_count_ = 0;
  // Learned access sets: [module][signal] presence bitmaps, grown on demand.
  std::vector<std::vector<std::uint8_t>> read_seen_;
  std::vector<std::vector<std::uint8_t>> write_seen_;
  // Compiled schedule (valid iff schedule_valid_ and the module/signal
  // tables still have the sizes captured at build time).
  bool schedule_valid_ = false;
  std::size_t sched_nmodules_ = 0;
  std::size_t sched_nsignals_ = 0;
  std::vector<std::uint32_t> sched_order_;      ///< module indices, level-major
  std::vector<std::uint32_t> level_end_;        ///< exclusive end per level
  std::vector<std::vector<std::uint32_t>> level_writes_;  ///< signals to commit per level
  std::vector<std::vector<std::uint32_t>> sig_readers_;   ///< reader modules per signal
  std::vector<int> min_reader_level_;           ///< INT_MAX when never read
  std::vector<std::uint8_t> module_dirty_;
  bool tick_dirty_ = true;  ///< registers changed: evaluate everything once
  // step() commits all pending writes itself right after the clock edge; the
  // settle it then issues can skip the redundant pending-write sweep.  Set
  // only by step(), consumed (and cleared) by the very next settle().
  bool post_edge_committed_ = false;
};

}  // namespace aesip::hdl
