// The synchronous simulation kernel.
//
// One step() is a full clock cycle:
//   1. settle combinational logic (delta loop: evaluate all, commit all,
//      repeat until no signal changes),
//   2. rising edge: tick() every module — registers sample pre-edge values,
//   3. settle again so post-edge combinational outputs are visible.
//
// A delta-loop that does not converge within kMaxDeltas indicates a
// combinational cycle in the model and raises an error instead of hanging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/module.hpp"
#include "hdl/signal.hpp"

namespace aesip::hdl {

class VcdWriter;

class Simulator {
 public:
  static constexpr int kMaxDeltas = 64;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Modules and signals register themselves; lifetime is the caller's
  /// responsibility and must cover the simulator's use.
  void add_module(Module& m) { modules_.push_back(&m); }
  void add_signal(SignalBase& s) { signals_.push_back(&s); }

  /// Attach a VCD trace sink (optional; may be null to detach).
  void set_vcd(VcdWriter* vcd) noexcept { vcd_ = vcd; }

  /// Settle the combinational network without advancing the clock —
  /// used after forcing inputs mid-cycle. Throws std::runtime_error on a
  /// non-converging (cyclic) network.
  void settle();

  /// Advance one full clock cycle.
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  std::uint64_t cycle() const noexcept { return cycle_; }

  const std::vector<SignalBase*>& signals() const noexcept { return signals_; }

 private:
  std::vector<Module*> modules_;
  std::vector<SignalBase*> signals_;
  VcdWriter* vcd_ = nullptr;
  std::uint64_t cycle_ = 0;
};

}  // namespace aesip::hdl
