// Levelized static timing analysis over a technology-mapped netlist.
//
// Replaces the Quartus timing analyzer in the reproduction flow.  The model
// is the standard FPGA one: every logic element contributes a fixed LUT
// delay, every net contributes a routing delay that grows with fanout,
// asynchronous ROM macros contribute their access time, and register paths
// close with clock-to-out + setup.  The per-family constants live in the
// fpga device database; two of them (base cell and routing delay) are
// calibrated against the paper's reported clock periods — see
// EXPERIMENTS.md for the calibration note.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace aesip::sta {

/// Delay parameters, all in nanoseconds.
struct DelayModel {
  double t_lut;           ///< LUT logic + LE output
  double t_rom;           ///< asynchronous embedded-ROM access
  double t_co;            ///< register clock-to-output
  double t_su;            ///< register setup
  double t_route_base;    ///< routing delay of any net
  double t_route_fanout;  ///< additional routing delay per extra fanout
  double t_io;            ///< pad delay applied to primary inputs/outputs
  /// Ceiling on the per-net fanout contribution: synthesis replicates
  /// drivers / promotes nets to low-skew lines beyond this, so routing
  /// delay does not grow without bound on wide control fans.
  double t_route_fanout_cap;
};

struct TimingReport {
  double critical_path_ns = 0.0;  ///< worst register-bounded path incl. su/co
  double clock_period_ns = 0.0;   ///< = critical path (no margin added)
  double fmax_mhz = 0.0;
  int logic_levels = 0;           ///< LUT/ROM cells on the critical path
  std::vector<std::string> path;  ///< human-readable critical path trace
};

/// Analyze a mapped netlist (kLut/kDff cells + ROM macros only).
/// Throws std::invalid_argument if unmapped primitive gates remain.
TimingReport analyze(const netlist::Netlist& mapped, const DelayModel& dm);

/// Placed-timing variant: `extra_route_ns` adds a per-net routing delay
/// (indexed by NetId — e.g. wirelength-derived values from place::anneal),
/// replacing the statistical fanout derate with placement-aware numbers.
TimingReport analyze(const netlist::Netlist& mapped, const DelayModel& dm,
                     std::span<const double> extra_route_ns);

}  // namespace aesip::sta
