#include "sta/sta.hpp"

#include <algorithm>
#include <stdexcept>

namespace aesip::sta {

using netlist::Cell;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

namespace {

struct NetTiming {
  double arrival = 0.0;   ///< valid-at-consumer-pin time
  int levels = 0;         ///< logic cells traversed so far
  NetId from = kNoNet;    ///< critical fanin for path reconstruction
  const char* via = "";   ///< what produced this net
};

}  // namespace

TimingReport analyze(const Netlist& mapped, const DelayModel& dm) {
  return analyze(mapped, dm, {});
}

TimingReport analyze(const Netlist& mapped, const DelayModel& dm,
                     std::span<const double> extra_route_ns) {
  const auto& cells = mapped.cells();

  // Fanout counts drive the routing model.
  std::vector<int> fanout(mapped.net_count(), 0);
  for (const Cell& c : cells)
    for (int k = 0; k < c.fanin_count(); ++k)
      if (c.in[static_cast<std::size_t>(k)] != kNoNet) ++fanout[c.in[static_cast<std::size_t>(k)]];
  for (const auto& rom : mapped.roms())
    for (const NetId a : rom.addr) ++fanout[a];
  for (const auto& po : mapped.outputs()) ++fanout[po.net];

  auto route = [&](NetId n) {
    const double extra = n < extra_route_ns.size() ? extra_route_ns[n] : 0.0;
    return dm.t_route_base + extra +
           std::min(dm.t_route_fanout * std::max(0, fanout[n] - 1), dm.t_route_fanout_cap);
  };

  std::vector<NetTiming> t(mapped.net_count());

  // Sources: primary inputs and register outputs.
  for (const auto& pi : mapped.inputs()) {
    t[pi.net].arrival = dm.t_io + route(pi.net);
    t[pi.net].via = "input";
  }
  for (const Cell& c : cells) {
    if (c.kind != CellKind::kDff) continue;
    t[c.out].arrival = dm.t_co + route(c.out);
    t[c.out].via = "register";
  }

  // Combinational cells in topological order (= output-net order; the
  // mapper constructs nets that way).
  struct Item {
    NetId order_net;
    bool is_rom;
    std::size_t index;
  };
  std::vector<Item> items;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (c.kind == CellKind::kLut) items.push_back({c.out, false, ci});
    else if (c.kind != CellKind::kDff && c.kind != CellKind::kConst0 &&
             c.kind != CellKind::kConst1)
      throw std::invalid_argument("sta: netlist contains unmapped primitive gates");
  }
  for (std::size_t ri = 0; ri < mapped.roms().size(); ++ri)
    items.push_back({mapped.roms()[ri].out[0], true, ri});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.order_net < b.order_net; });

  for (const Item& item : items) {
    double worst = 0.0;
    int worst_levels = 0;
    NetId worst_from = kNoNet;
    auto consider = [&](NetId fanin) {
      if (fanin == kNoNet) return;
      if (t[fanin].arrival > worst ||
          (t[fanin].arrival == worst && worst_from == kNoNet)) {
        worst = t[fanin].arrival;
        worst_levels = t[fanin].levels;
        worst_from = fanin;
      }
    };
    if (item.is_rom) {
      const auto& rom = mapped.roms()[item.index];
      for (const NetId a : rom.addr) consider(a);
      for (const NetId o : rom.out) {
        t[o].arrival = worst + dm.t_rom + route(o);
        t[o].levels = worst_levels + 1;
        t[o].from = worst_from;
        t[o].via = "rom";
      }
    } else {
      const Cell& c = cells[item.index];
      for (int k = 0; k < c.lut_arity; ++k) consider(c.in[static_cast<std::size_t>(k)]);
      t[c.out].arrival = worst + dm.t_lut + route(c.out);
      t[c.out].levels = worst_levels + 1;
      t[c.out].from = worst_from;
      t[c.out].via = "lut";
    }
  }

  // Close register paths (D + setup) and output paths (pad delay).
  TimingReport report;
  NetId endpoint = kNoNet;
  double endpoint_arrival = 0.0;
  const char* endpoint_kind = "";
  for (const Cell& c : cells) {
    if (c.kind != CellKind::kDff) continue;
    for (int k = 0; k < c.fanin_count(); ++k) {
      const NetId n = c.in[static_cast<std::size_t>(k)];
      if (n == kNoNet) continue;
      const double path = t[n].arrival + dm.t_su;
      if (path > report.critical_path_ns) {
        report.critical_path_ns = path;
        report.logic_levels = t[n].levels;
        endpoint = n;
        endpoint_arrival = t[n].arrival;
        endpoint_kind = "register D";
      }
    }
  }
  for (const auto& po : mapped.outputs()) {
    const double path = t[po.net].arrival + dm.t_io;
    if (path > report.critical_path_ns) {
      report.critical_path_ns = path;
      report.logic_levels = t[po.net].levels;
      endpoint = po.net;
      endpoint_arrival = t[po.net].arrival;
      endpoint_kind = "output pad";
    }
  }
  (void)endpoint_arrival;

  report.clock_period_ns = report.critical_path_ns;
  report.fmax_mhz =
      report.clock_period_ns > 0.0 ? 1000.0 / report.clock_period_ns : 0.0;

  // Reconstruct the critical path for the report.
  std::vector<std::string> path;
  for (NetId n = endpoint; n != kNoNet; n = t[n].from)
    path.push_back(std::string(t[n].via) + " -> net " + std::to_string(n) + " @ " +
                   std::to_string(t[n].arrival) + " ns");
  std::reverse(path.begin(), path.end());
  if (endpoint != kNoNet)
    path.push_back(std::string("endpoint: ") + endpoint_kind);
  report.path = std::move(path);
  return report;
}

}  // namespace aesip::sta
