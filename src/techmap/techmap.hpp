// Technology mapping onto 4-input-LUT logic elements.
//
// Models the Quartus flow the paper's LC numbers come from.  An Altera
// logic element (LE/LC) on both Acex1K and Cyclone is one 4-input LUT plus
// one flip-flop with clock enable; mapping therefore:
//
//  1. covers the primitive-gate network with 4-feasible cones
//     (greedy fanout-1 tree absorption in topological order),
//  2. folds constants and drops don't-care inputs from every LUT,
//  3. deduplicates structurally identical LUTs (this is what shrinks the
//     Shannon-decomposed S-box below its 31-LUTs-per-output worst case),
//  4. packs a flip-flop into the LE of the LUT that feeds it when that LUT
//     has no other fanout.
//
// The result is a new Netlist containing only kLut, kDff and ROM cells —
// suitable for sta:: levelized timing and fpga:: fitting — plus the LE
// accounting.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace aesip::techmap {

struct MapStats {
  std::size_t luts = 0;            ///< mapped 4-LUTs
  std::size_t dffs = 0;            ///< flip-flops
  std::size_t packed = 0;          ///< LUT+FF pairs sharing one LE
  std::size_t logic_elements = 0;  ///< luts + dffs - packed
  std::size_t roms = 0;            ///< memory-block S-boxes
  std::size_t rom_bits = 0;
  std::size_t deduped_luts = 0;    ///< LUTs removed by structural hashing
  std::size_t folded_const = 0;    ///< LUTs that folded to a constant
  int pins = 0;
};

struct MapResult {
  netlist::Netlist mapped;
  MapStats stats;
};

/// Map `design` onto 4-LUT logic elements. Port names are preserved, so
/// tests can drive the original and the mapped netlist identically and
/// compare outputs (combinational equivalence checking).
MapResult map_to_luts(const netlist::Netlist& design);

// --- LUT truth-table helpers (exposed for tests) ---------------------------

// --- dead-logic sweep --------------------------------------------------------

struct SweepStats {
  std::size_t removed_luts = 0;
  std::size_t removed_dffs = 0;
  std::size_t removed_roms = 0;
};

struct SweepResult {
  netlist::Netlist swept;
  SweepStats stats;
};

/// Remove logic with no transitive path to any primary output: backward
/// reachability from the outputs, through flip-flop D/enable pins, keeping
/// a ROM alive if any of its outputs is.  An optional post-pass a real
/// flow runs after mapping; note it may drop flip-flops, so run formal
/// equivalence against the *swept* baseline, not across the sweep.
SweepResult sweep_unused(const netlist::Netlist& mapped);

// --- LUT truth-table helpers (exposed for tests) ---------------------------

/// Restrict `mask` (over `arity` vars) by fixing variable `var` to `value`;
/// the result is a mask over arity-1 variables (var removed, higher
/// variables shifted down).
std::uint16_t lut_restrict(std::uint16_t mask, int arity, int var, bool value) noexcept;

/// True if the LUT function depends on variable `var`.
bool lut_depends(std::uint16_t mask, int arity, int var) noexcept;

}  // namespace aesip::techmap
