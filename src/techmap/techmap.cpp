#include "techmap/techmap.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace aesip::techmap {

using netlist::Cell;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

namespace {

bool is_comb_gate(CellKind k) noexcept {
  return k == CellKind::kNot || k == CellKind::kAnd2 || k == CellKind::kOr2 ||
         k == CellKind::kXor2 || k == CellKind::kMux2;
}

/// Evaluate a primitive gate from its input bits.
bool eval_gate(const Cell& c, bool a, bool b, bool s) noexcept {
  switch (c.kind) {
    case CellKind::kNot:
      return !a;
    case CellKind::kAnd2:
      return a && b;
    case CellKind::kOr2:
      return a || b;
    case CellKind::kXor2:
      return a != b;
    case CellKind::kMux2:
      return a ? s : b;  // in0 = sel, in1 = lo, in2 = hi
    default:
      return false;
  }
}

struct ConeInfo {
  std::vector<NetId> leaves;  // <= 4, sorted insertion order
  bool computed = false;
};

}  // namespace

SweepResult sweep_unused(const Netlist& mapped) {
  SweepResult result;
  const auto& cells = mapped.cells();
  const auto& roms = mapped.roms();
  const auto& driver = mapped.driver();

  // ROM index driving each net (driver() only covers cells).
  std::vector<std::int32_t> rom_of(mapped.net_count(), -1);
  for (std::size_t ri = 0; ri < roms.size(); ++ri)
    for (const NetId o : roms[ri].out) rom_of[o] = static_cast<std::int32_t>(ri);

  // Backward reachability over nets.
  std::vector<std::uint8_t> live(mapped.net_count(), 0);
  std::vector<NetId> work;
  auto mark = [&](NetId n) {
    if (n == kNoNet || live[n]) return;
    live[n] = 1;
    work.push_back(n);
  };
  for (const auto& po : mapped.outputs()) mark(po.net);
  while (!work.empty()) {
    const NetId n = work.back();
    work.pop_back();
    if (const std::int32_t d = driver[n]; d >= 0) {
      const Cell& c = cells[static_cast<std::size_t>(d)];
      for (int k = 0; k < c.fanin_count(); ++k) mark(c.in[static_cast<std::size_t>(k)]);
    } else if (const std::int32_t ri = rom_of[n]; ri >= 0) {
      for (const NetId a : roms[static_cast<std::size_t>(ri)].addr) mark(a);
    }
  }

  // Rebuild, preserving order, skipping dead logic.
  Netlist& out = result.swept;
  std::vector<NetId> netmap(mapped.net_count(), kNoNet);
  netmap[mapped.const0()] = out.const0();
  netmap[mapped.const1()] = out.const1();
  for (const auto& pi : mapped.inputs()) netmap[pi.net] = out.add_input(pi.name);
  for (const Cell& c : cells)
    if (c.kind == CellKind::kDff) {
      if (live[c.out]) netmap[c.out] = out.new_net();
      else ++result.stats.removed_dffs;
    }

  struct Item {
    NetId order_net;
    bool is_rom;
    std::size_t index;
  };
  std::vector<Item> items;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (c.kind == CellKind::kLut) items.push_back({c.out, false, ci});
    else if (c.kind != CellKind::kDff && c.kind != CellKind::kConst0 &&
             c.kind != CellKind::kConst1)
      throw std::invalid_argument("sweep: netlist contains unmapped primitive gates");
  }
  for (std::size_t ri = 0; ri < roms.size(); ++ri)
    items.push_back({roms[ri].out[0], true, ri});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.order_net < b.order_net; });

  for (const Item& item : items) {
    if (item.is_rom) {
      const auto& rom = roms[item.index];
      bool any_live = false;
      for (const NetId o : rom.out) any_live = any_live || live[o];
      if (!any_live) {
        ++result.stats.removed_roms;
        continue;
      }
      netlist::Bus addr;
      for (const NetId a : rom.addr) addr.push_back(netmap[a]);
      const netlist::Bus outs = out.add_rom(rom.table, addr, rom.name);
      for (int i = 0; i < 8; ++i)
        netmap[rom.out[static_cast<std::size_t>(i)]] = outs[static_cast<std::size_t>(i)];
      continue;
    }
    const Cell& c = cells[item.index];
    if (!live[c.out]) {
      ++result.stats.removed_luts;
      continue;
    }
    std::vector<NetId> ins;
    for (int k = 0; k < c.lut_arity; ++k) ins.push_back(netmap[c.in[static_cast<std::size_t>(k)]]);
    netmap[c.out] = out.add_lut(c.lut_mask, ins);
  }

  for (const Cell& c : cells) {
    if (c.kind != CellKind::kDff || !live[c.out]) continue;
    const NetId en = c.in[1] == kNoNet ? kNoNet : netmap[c.in[1]];
    out.add_dff_with_out(netmap[c.out], netmap[c.in[0]], en);
  }
  for (const auto& po : mapped.outputs()) out.add_output(netmap[po.net], po.name);
  return result;
}

std::uint16_t lut_restrict(std::uint16_t mask, int arity, int var, bool value) noexcept {
  std::uint16_t out = 0;
  const int out_bits = 1 << (arity - 1);
  for (int idx2 = 0; idx2 < out_bits; ++idx2) {
    const int low = idx2 & ((1 << var) - 1);
    const int high = idx2 >> var;
    const int idx = low | ((value ? 1 : 0) << var) | (high << (var + 1));
    if ((mask >> idx) & 1U) out = static_cast<std::uint16_t>(out | (1U << idx2));
  }
  return out;
}

bool lut_depends(std::uint16_t mask, int arity, int var) noexcept {
  return lut_restrict(mask, arity, var, false) != lut_restrict(mask, arity, var, true);
}

MapResult map_to_luts(const Netlist& nl) {
  MapResult result;
  Netlist& m = result.mapped;
  MapStats& st = result.stats;

  const auto& cells = nl.cells();
  const auto& driver = nl.driver();

  // ---- fanout counts in the source netlist --------------------------------
  std::vector<int> fanout(nl.net_count(), 0);
  auto bump = [&](NetId n) {
    if (n != kNoNet) ++fanout[n];
  };
  for (const Cell& c : cells)
    for (int k = 0; k < c.fanin_count(); ++k) bump(c.in[static_cast<std::size_t>(k)]);
  for (const auto& rom : nl.roms())
    for (const NetId a : rom.addr) bump(a);
  for (const auto& po : nl.outputs()) bump(po.net);

  // ---- greedy cone covering ------------------------------------------------
  std::vector<ConeInfo> cone(cells.size());
  std::vector<char> absorbed(cells.size(), 0);

  auto is_const = [&](NetId n) { return n == nl.const0() || n == nl.const1(); };

  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (!is_comb_gate(c.kind)) continue;
    ConeInfo& info = cone[ci];
    info.computed = true;
    auto add_leaf = [&](NetId n) {
      if (std::find(info.leaves.begin(), info.leaves.end(), n) == info.leaves.end())
        info.leaves.push_back(n);
    };
    // Start from the direct fanins (at most 3 leaves), then repeatedly
    // substitute an absorbable leaf (fanout-1 gate) by its own cone leaves
    // while the total support stays within 4 inputs.  The fixpoint handles
    // overlapping supports naturally — e.g. a constant-mux tree whose every
    // level selects on the same counter bits collapses into a single LUT,
    // exactly as a synthesis tool flattens it.
    for (int k = 0; k < c.fanin_count(); ++k) {
      const NetId f = c.in[static_cast<std::size_t>(k)];
      if (!is_const(f)) add_leaf(f);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t li = 0; li < info.leaves.size(); ++li) {
        const NetId f = info.leaves[li];
        const std::int32_t d = driver[f];
        const bool absorbable = d >= 0 &&
                                is_comb_gate(cells[static_cast<std::size_t>(d)].kind) &&
                                fanout[f] == 1 && cone[static_cast<std::size_t>(d)].computed;
        if (!absorbable) continue;
        std::vector<NetId> merged;
        merged.reserve(4);
        for (const NetId other : info.leaves)
          if (other != f) merged.push_back(other);
        for (const NetId leaf : cone[static_cast<std::size_t>(d)].leaves)
          if (std::find(merged.begin(), merged.end(), leaf) == merged.end())
            merged.push_back(leaf);
        if (merged.size() <= 4) {
          info.leaves = std::move(merged);
          absorbed[static_cast<std::size_t>(d)] = 1;
          changed = true;
          break;
        }
      }
    }
    if (info.leaves.size() > 4)
      throw std::runtime_error("techmap: cone wider than 4 inputs");  // unreachable
  }

  // ---- cone truth-table evaluation ----------------------------------------
  // Recursive evaluation over absorbed gates only.
  auto eval_cone = [&](NetId root_out, const std::vector<NetId>& leaves,
                       std::uint16_t assignment) {
    auto rec = [&](auto&& self, NetId n) -> bool {
      if (n == nl.const0()) return false;
      if (n == nl.const1()) return true;
      for (std::size_t li = 0; li < leaves.size(); ++li)
        if (leaves[li] == n) return (assignment >> li) & 1U;
      const std::int32_t d = driver[n];
      const Cell& g = cells[static_cast<std::size_t>(d)];
      const bool a = self(self, g.in[0]);
      const bool b = g.fanin_count() > 1 ? self(self, g.in[1]) : false;
      const bool s = g.fanin_count() > 2 ? self(self, g.in[2]) : false;
      return eval_gate(g, a, b, s);
    };
    return rec(rec, root_out);
  };

  // ---- build the mapped netlist in net-creation (topological) order -------
  std::vector<NetId> netmap(nl.net_count(), kNoNet);
  netmap[nl.const0()] = m.const0();
  netmap[nl.const1()] = m.const1();
  for (const auto& pi : nl.inputs()) netmap[pi.net] = m.add_input(pi.name);
  for (const Cell& c : cells)
    if (c.kind == CellKind::kDff) netmap[c.out] = m.new_net();

  // Structural-hash dedup table: (arity, mask, inputs) -> mapped output net.
  std::map<std::array<std::uint32_t, 6>, NetId> dedup;

  auto add_mapped_lut = [&](std::uint16_t mask, std::vector<NetId> ins) -> NetId {
    // Fold constant inputs.
    for (int v = static_cast<int>(ins.size()) - 1; v >= 0; --v) {
      if (ins[static_cast<std::size_t>(v)] == m.const0() ||
          ins[static_cast<std::size_t>(v)] == m.const1()) {
        mask = lut_restrict(mask, static_cast<int>(ins.size()), v,
                            ins[static_cast<std::size_t>(v)] == m.const1());
        ins.erase(ins.begin() + v);
      }
    }
    // Drop don't-care inputs.
    for (int v = static_cast<int>(ins.size()) - 1; v >= 0; --v) {
      if (!lut_depends(mask, static_cast<int>(ins.size()), v)) {
        mask = lut_restrict(mask, static_cast<int>(ins.size()), v, false);
        ins.erase(ins.begin() + v);
      }
    }
    if (ins.empty()) {
      ++st.folded_const;
      return (mask & 1U) ? m.const1() : m.const0();
    }
    // Buffer elimination: a 1-input identity LUT is just a wire.
    if (ins.size() == 1 && mask == 0b10) {
      ++st.folded_const;
      return ins[0];
    }
    std::array<std::uint32_t, 6> key{};
    key[0] = mask;
    key[1] = static_cast<std::uint32_t>(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) key[2 + i] = ins[i];
    if (const auto it = dedup.find(key); it != dedup.end()) {
      ++st.deduped_luts;
      return it->second;
    }
    const NetId out = m.add_lut(mask, ins);
    dedup.emplace(key, out);
    return out;
  };

  // Work items sorted by output net id == creation order == topological.
  struct Item {
    NetId order_net;
    enum Kind { kRoot, kPassLut, kRomItem } kind;
    std::size_t index;
  };
  std::vector<Item> items;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (is_comb_gate(c.kind) && !absorbed[ci]) items.push_back({c.out, Item::kRoot, ci});
    else if (c.kind == CellKind::kLut) items.push_back({c.out, Item::kPassLut, ci});
  }
  for (std::size_t ri = 0; ri < nl.roms().size(); ++ri)
    items.push_back({nl.roms()[ri].out[0], Item::kRomItem, ri});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.order_net < b.order_net; });

  for (const Item& item : items) {
    if (item.kind == Item::kRomItem) {
      const auto& rom = nl.roms()[item.index];
      netlist::Bus addr;
      for (const NetId a : rom.addr) addr.push_back(netmap[a]);
      const netlist::Bus outs = m.add_rom(rom.table, addr, rom.name);
      for (int i = 0; i < 8; ++i)
        netmap[rom.out[static_cast<std::size_t>(i)]] = outs[static_cast<std::size_t>(i)];
      continue;
    }
    const Cell& c = cells[item.index];
    if (item.kind == Item::kPassLut) {
      std::vector<NetId> ins;
      for (int k = 0; k < c.lut_arity; ++k) ins.push_back(netmap[c.in[static_cast<std::size_t>(k)]]);
      netmap[c.out] = add_mapped_lut(c.lut_mask, std::move(ins));
      continue;
    }
    // Root gate: compute the cone truth table over its leaves.
    const ConeInfo& info = cone[item.index];
    const int arity = static_cast<int>(info.leaves.size());
    std::uint16_t mask = 0;
    for (std::uint16_t idx = 0; idx < (1U << arity); ++idx)
      if (eval_cone(c.out, info.leaves, idx)) mask = static_cast<std::uint16_t>(mask | (1U << idx));
    std::vector<NetId> ins;
    for (const NetId leaf : info.leaves) ins.push_back(netmap[leaf]);
    netmap[c.out] = add_mapped_lut(mask, std::move(ins));
  }

  // ---- sequential cells and ports ------------------------------------------
  for (const Cell& c : cells) {
    if (c.kind != CellKind::kDff) continue;
    const NetId en = c.in[1] == kNoNet ? kNoNet : netmap[c.in[1]];
    m.add_dff_with_out(netmap[c.out], netmap[c.in[0]], en);
  }
  for (const auto& po : nl.outputs()) m.add_output(netmap[po.net], po.name);

  // ---- LE accounting --------------------------------------------------------
  const auto mstats = m.stats();
  st.luts = mstats.luts;
  st.dffs = mstats.dffs;
  st.roms = mstats.roms;
  st.rom_bits = mstats.rom_bits;
  st.pins = m.pin_count();

  std::vector<int> mfanout(m.net_count(), 0);
  for (const Cell& c : m.cells())
    for (int k = 0; k < c.fanin_count(); ++k)
      if (c.in[static_cast<std::size_t>(k)] != kNoNet) ++mfanout[c.in[static_cast<std::size_t>(k)]];
  for (const auto& rom : m.roms())
    for (const NetId a : rom.addr) ++mfanout[a];
  for (const auto& po : m.outputs()) ++mfanout[po.net];

  for (const Cell& c : m.cells()) {
    if (c.kind != CellKind::kDff) continue;
    const std::int32_t d = m.driver()[c.in[0]];
    if (d >= 0 && m.cells()[static_cast<std::size_t>(d)].kind == CellKind::kLut &&
        mfanout[c.in[0]] == 1)
      ++st.packed;
  }
  st.logic_elements = st.luts + st.dffs - st.packed;
  return result;
}

}  // namespace aesip::techmap
