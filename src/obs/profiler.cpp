#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "report/json.hpp"

namespace aesip::obs {

namespace {

/// Signals ranked by activity, most active first (stable on ties).
std::vector<const hdl::SignalProfile*> ranked_signals(const hdl::SimProfile& p) {
  std::vector<const hdl::SignalProfile*> v;
  v.reserve(p.signals.size());
  for (const auto& s : p.signals) v.push_back(&s);
  std::stable_sort(v.begin(), v.end(),
                   [](const auto* a, const auto* b) { return a->activity > b->activity; });
  return v;
}

}  // namespace

std::string ScopedProfiler::report(std::size_t top_signals) const {
  const hdl::SimProfile& p = profile();
  char line[160];
  std::string out;
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };
  add("simulator: %llu cycles, %.1f ns/cycle (sampled), %.2f deltas/settle (max %llu)\n",
      static_cast<unsigned long long>(p.steps), p.ns_per_cycle(), p.deltas_per_settle(),
      static_cast<unsigned long long>(p.max_deltas));
  add("  %llu module evals, %llu signal toggles over %llu settles\n",
      static_cast<unsigned long long>(p.total_evals()),
      static_cast<unsigned long long>(p.total_activity()),
      static_cast<unsigned long long>(p.settles));
  for (const auto& m : p.modules)
    add("  module %-12s %10llu evals  %10llu ticks\n", m.name.c_str(),
        static_cast<unsigned long long>(m.evals), static_cast<unsigned long long>(m.ticks));
  const auto ranked = ranked_signals(p);
  const std::size_t n = std::min(top_signals, ranked.size());
  if (n) add("  top signals by activity (changed commits):\n");
  for (std::size_t i = 0; i < n; ++i)
    add("    %-16s (%3d bits) %10llu toggles\n", ranked[i]->name.c_str(), ranked[i]->bits,
        static_cast<unsigned long long>(ranked[i]->activity));
  return out;
}

void ScopedProfiler::write_json_fields(report::JsonWriter& j) const {
  const hdl::SimProfile& p = profile();
  j.key("cycles").value(p.steps);
  j.key("settles").value(p.settles);
  j.key("deltas").value(p.deltas);
  j.key("max_deltas_per_settle").value(p.max_deltas);
  j.key("deltas_per_settle").value(p.deltas_per_settle());
  j.key("wall_ns").value(p.wall_ns);
  j.key("ns_per_cycle").value(p.ns_per_cycle());
  j.key("module_evals").value(p.total_evals());
  j.key("signal_toggles").value(p.total_activity());
  j.key("modules").begin_array();
  for (const auto& m : p.modules) {
    j.begin_object();
    j.key("name").value(m.name);
    j.key("evals").value(m.evals);
    j.key("ticks").value(m.ticks);
    j.end_object();
  }
  j.end_array();
  j.key("signals").begin_array();
  for (const auto* s : ranked_signals(p)) {
    j.begin_object();
    j.key("name").value(s->name);
    j.key("bits").value(s->bits);
    j.key("toggles").value(s->activity);
    j.end_object();
  }
  j.end_array();
}

void ScopedProfiler::write_json(std::ostream& os) const {
  report::JsonWriter j(os);
  j.begin_object();
  write_json_fields(j);
  j.end_object();
}

}  // namespace aesip::obs
