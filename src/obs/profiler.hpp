// ScopedProfiler: the RAII front end over the hdl kernel's profile hooks.
//
// Construction attaches a SimProfile sink to the simulator; destruction
// detaches it, restoring the kernel's branch-light uninstrumented path.
// While attached, the kernel counts per-module evaluate()/tick() calls,
// per-signal changed-commits (the activity/toggle figure the power model
// reasons about), delta-loop statistics, and sampled wall time per cycle.
//
//   hdl::Simulator sim;
//   core::RijndaelIp ip(sim, core::IpMode::kBoth);
//   ...
//   {
//     obs::ScopedProfiler prof(sim);
//     run_workload();
//     std::cout << prof.report();          // text table
//     prof.write_json(file);               // machine-readable
//   }                                      // detached again here
//
// The profile outlives nothing: it is owned by the ScopedProfiler, and
// profile() hands out a const view. For accumulating across several
// attach/detach windows, construct with an external SimProfile.
#pragma once

#include <ostream>
#include <string>

#include "hdl/profile.hpp"
#include "hdl/simulator.hpp"

namespace aesip::report {
class JsonWriter;
}

namespace aesip::obs {

class ScopedProfiler {
 public:
  /// Attach to `sim` with an internally owned profile.
  explicit ScopedProfiler(hdl::Simulator& sim) : sim_(&sim), external_(nullptr) {
    sim_->attach_profiler(&owned_);
  }

  /// Attach with a caller-owned sink (accumulates across windows).
  ScopedProfiler(hdl::Simulator& sim, hdl::SimProfile& profile)
      : sim_(&sim), external_(&profile) {
    sim_->attach_profiler(external_);
  }

  ~ScopedProfiler() { sim_->detach_profiler(); }

  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

  const hdl::SimProfile& profile() const noexcept {
    sim_->sync_profile();  // flush deferred per-module counters
    return external_ ? *external_ : owned_;
  }

  /// Human-readable summary: kernel rates, per-module eval/tick counts,
  /// and the `top_signals` most active signals.
  std::string report(std::size_t top_signals = 8) const;

  /// JSON object with the same content (stable keys; see docs/benchmarks.md).
  void write_json(std::ostream& os) const;

  /// Emit into an already-open writer (for embedding in a larger document).
  void write_json_fields(report::JsonWriter& j) const;

 private:
  hdl::Simulator* sim_;
  hdl::SimProfile* external_;
  hdl::SimProfile owned_;
};

}  // namespace aesip::obs
