// Lock-free log2-bucketed histogram — the farm's distribution primitive.
//
// record() is wait-free (a handful of relaxed atomic increments plus a CAS
// loop for the max), so any thread can record on its hot path and stats()
// can snapshot mid-run without stopping traffic. Buckets are powers of
// two: bucket 0 holds exactly 0, bucket i (i >= 1) holds [2^(i-1), 2^i).
// That gives ~2x resolution over the full uint64 range in 65 counters —
// the right trade for latency/queue-depth distributions, where orders of
// magnitude matter and 1% precision does not.
//
// Percentiles come from the snapshot and are upper bounds of the bucket
// the target rank lands in (clamped to the observed max), i.e. p99 never
// under-reports. Totals are exact: count/sum/max carry no approximation,
// which is what the accounting tests check against request counts.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace aesip::obs {

/// Plain-value copy of a Histogram, safe to serialize and compare.
struct HistogramSnapshot {
  static constexpr int kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Inclusive upper bound of bucket `b` (0, 1, 3, 7, ...).
  static constexpr std::uint64_t bucket_upper(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Fold another snapshot into this one — counts, sums and buckets add,
  /// max takes the larger. Exact (log2 buckets align by construction), so
  /// per-node/per-thread distributions aggregate without losing shape;
  /// the cluster fleet roll-up leans on this.
  void merge(const HistogramSnapshot& other) noexcept {
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
    for (int b = 0; b < kBuckets; ++b)
      buckets[static_cast<std::size_t>(b)] += other.buckets[static_cast<std::size_t>(b)];
  }

  /// Value at quantile `p` in [0,1]: the upper bound of the bucket holding
  /// the rank, clamped to the observed max.
  std::uint64_t percentile(double p) const {
    if (count == 0) return 0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    const std::uint64_t rank =
        static_cast<std::uint64_t>(p * static_cast<double>(count - 1)) + 1;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += buckets[static_cast<std::size_t>(b)];
      if (cum >= rank) return bucket_upper(b) < max ? bucket_upper(b) : max;
    }
    return max;
  }
};

class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  static constexpr int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : 64 - std::countl_zero(v);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }

  /// Point-in-time copy; buckets may lag count by in-flight records but
  /// a quiesced histogram snapshots exactly.
  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b)
      s.buckets[static_cast<std::size_t>(b)] =
          buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace aesip::obs
