// Event tracer: bounded per-track rings, dumpable as a Chrome trace.
//
// One ring per track (the farm uses one track per worker thread). Each
// ring is single-producer: only the owning thread records into it, so a
// record is one array store plus one release-store of the count — no CAS,
// no locks, and a full ring simply overwrites its oldest events (the
// bound is the memory budget; dropped() reports how much history was
// lost). Readers snapshot after the producers quiesce — the intended use
// is "run traffic, then dump" — and get the surviving events in order.
//
// write_chrome_trace() emits the Chrome trace_event JSON format
// (complete "X" events with microsecond timestamps); load the file at
// chrome://tracing or https://ui.perfetto.dev to see the farm timeline:
// which worker ran which request when, where re-keys landed, how fan-out
// chunks interleave.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

namespace aesip::obs {

struct TraceEvent {
  std::uint64_t ts_us = 0;   ///< start, microseconds since trace epoch
  std::uint32_t dur_us = 0;  ///< duration, microseconds
  std::uint16_t name = 0;    ///< index into the name table passed at dump time
  std::uint16_t track = 0;   ///< ring index (rendered as the Chrome tid)
  std::uint64_t arg = 0;     ///< one free payload (e.g. blocks processed)
  std::uint64_t arg2 = 0;    ///< second payload (e.g. setup cycles)
};

class Tracer {
 public:
  /// `tracks` rings of `capacity` events each.
  Tracer(std::size_t tracks, std::size_t capacity);

  /// Record one event on `track`. Single producer per track; wait-free.
  void record(std::size_t track, const TraceEvent& e) noexcept {
    Ring& r = rings_[track];
    const std::uint64_t n = r.n.load(std::memory_order_relaxed);
    r.events[static_cast<std::size_t>(n % capacity_)] = e;
    r.n.store(n + 1, std::memory_order_release);
  }

  std::size_t tracks() const noexcept { return rings_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Events ever recorded / overwritten by ring wrap, across all tracks.
  std::uint64_t recorded() const noexcept;
  std::uint64_t dropped() const noexcept;

  /// Surviving events of one track, oldest first.
  std::vector<TraceEvent> events(std::size_t track) const;

  /// Dump every track as Chrome trace_event JSON. `names` maps
  /// TraceEvent::name indices to strings; out-of-range indices render as
  /// "event". `process_name` labels the single pid.
  void write_chrome_trace(std::ostream& os, std::span<const char* const> names,
                          const char* process_name = "aesip") const;

 private:
  struct alignas(64) Ring {  // padded: producers on different cores
    std::vector<TraceEvent> events;
    std::atomic<std::uint64_t> n{0};
  };

  std::size_t capacity_;
  std::vector<Ring> rings_;
};

}  // namespace aesip::obs
