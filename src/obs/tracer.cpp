#include "obs/tracer.hpp"

#include "report/json.hpp"

namespace aesip::obs {

Tracer::Tracer(std::size_t tracks, std::size_t capacity)
    : capacity_(capacity ? capacity : 1), rings_(tracks ? tracks : 1) {
  for (auto& r : rings_) r.events.resize(capacity_);
}

std::uint64_t Tracer::recorded() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r.n.load(std::memory_order_acquire);
  return n;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t d = 0;
  for (const auto& r : rings_) {
    const std::uint64_t n = r.n.load(std::memory_order_acquire);
    if (n > capacity_) d += n - capacity_;
  }
  return d;
}

std::vector<TraceEvent> Tracer::events(std::size_t track) const {
  std::vector<TraceEvent> out;
  if (track >= rings_.size()) return out;
  const Ring& r = rings_[track];
  const std::uint64_t n = r.n.load(std::memory_order_acquire);
  const std::uint64_t kept = n < capacity_ ? n : capacity_;
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = n - kept; i < n; ++i)
    out.push_back(r.events[static_cast<std::size_t>(i % capacity_)]);
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os, std::span<const char* const> names,
                                const char* process_name) const {
  report::JsonWriter j(os);
  j.begin_object();
  j.key("displayTimeUnit").value("ms");
  j.key("traceEvents").begin_array();

  // Process/thread metadata so the viewer shows labelled tracks.
  j.begin_object();
  j.key("name").value("process_name");
  j.key("ph").value("M");
  j.key("pid").value(0);
  j.key("tid").value(0);
  j.key("args").begin_object();
  j.key("name").value(process_name);
  j.end_object();
  j.end_object();

  for (std::size_t t = 0; t < rings_.size(); ++t) {
    for (const TraceEvent& e : events(t)) {
      j.begin_object();
      j.key("name").value(e.name < names.size() ? names[e.name] : "event");
      j.key("cat").value("aesip");
      j.key("ph").value("X");
      j.key("ts").value(e.ts_us);
      j.key("dur").value(static_cast<std::uint64_t>(e.dur_us));
      j.key("pid").value(0);
      j.key("tid").value(static_cast<std::uint64_t>(e.track));
      j.key("args").begin_object();
      j.key("arg").value(e.arg);
      j.key("arg2").value(e.arg2);
      j.end_object();
      j.end_object();
    }
  }
  j.end_array();
  j.end_object();
}

}  // namespace aesip::obs
