#include "seu/live.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "aes/cipher.hpp"
#include "core/gate_driver.hpp"

namespace aesip::seu {

const char* standby_effect_name(StandbyEffect e) noexcept {
  switch (e) {
    case StandbyEffect::kMasked:
      return "masked";
    case StandbyEffect::kCorrupting:
      return "corrupting";
    case StandbyEffect::kHang:
      return "hang";
  }
  return "?";
}

StandbyEffect classify_standby_upset(const netlist::Netlist& ip_netlist, std::size_t dff,
                                     const std::array<std::uint8_t, 16>& key,
                                     const std::array<std::uint8_t, 16>& block) {
  aes::Aes128 ref(key);
  std::array<std::uint8_t, 16> golden{};
  ref.encrypt_block(block, golden);

  core::GateIpDriver drv(ip_netlist);
  drv.reset();
  // Decrypt-capable netlists expose encdec and need the 40-cycle setup pass
  // (same rule NetlistEngine applies).
  drv.load_key(key, /*needs_setup=*/drv.has_input("encdec"));

  // The upset: flip the register while the core idles between blocks.
  drv.evaluator().flip_dff(dff);
  drv.evaluator().settle();

  // Two follow-up blocks: the first catches upsets in state read at block
  // start, the second catches ones that only surface after a full block
  // cycled through (e.g. half-rewritten round state).
  for (int i = 0; i < 2; ++i) {
    const auto r = drv.process(block, /*encrypt=*/true);
    if (!r) return StandbyEffect::kHang;
    if (r->data != golden) return StandbyEffect::kCorrupting;
  }
  return StandbyEffect::kMasked;
}

std::vector<std::size_t> find_standby_sites(const netlist::Netlist& ip_netlist,
                                            StandbyEffect effect, std::size_t count,
                                            std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::array<std::uint8_t, 16> key{}, block{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  for (auto& b : block) b = static_cast<std::uint8_t>(rng());

  // One scratch driver just to learn the DFF count.
  const std::size_t n_dffs = core::GateIpDriver(ip_netlist).evaluator().dff_count();
  std::vector<std::size_t> order(n_dffs);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<std::size_t> sites;
  for (const std::size_t dff : order) {
    if (sites.size() >= count) break;
    if (classify_standby_upset(ip_netlist, dff, key, block) == effect) sites.push_back(dff);
  }
  return sites;
}

}  // namespace aesip::seu
