// Triple modular redundancy: the radiation-hardening transform.
//
// The authors' companion work ("Testing a Rijndael VHDL Description to
// Single Event Upsets", SIM 2002 — reference [16] of the paper) studies
// SEU sensitivity of this IP, and the paper's conclusion announces "an
// effort to produce a VHDL IP version hardened against radiation".  This
// module implements the standard hardening: every flip-flop is triplicated
// and its consumers read a majority vote of the three replicas.  Because
// each replica's D input is computed from *voted* state, a single upset is
// outvoted immediately and the wrong replica is rewritten at the next
// clock edge — the design self-heals, which the test suite demonstrates by
// exhaustive single-fault injection.
//
// Applies to mapped netlists (kLut / kDff / ROM cells); run after
// techmap::map_to_luts, the point where a rad-hard flow inserts voters.
#pragma once

#include "netlist/netlist.hpp"

namespace aesip::seu {

struct TmrStats {
  std::size_t original_dffs = 0;
  std::size_t voters = 0;  ///< one majority LUT per original flip-flop
};

struct TmrResult {
  netlist::Netlist hardened;
  TmrStats stats;
};

/// Majority-of-three truth table (inputs a,b,c): 0xE8.
inline constexpr std::uint16_t kMajorityMask = 0xE8;

/// Triplicate every flip-flop of `mapped` and route consumers through
/// majority voters.  Ports, LUTs and ROM macros are preserved; throws
/// std::invalid_argument if unmapped primitive gates remain.
TmrResult harden_tmr(const netlist::Netlist& mapped);

}  // namespace aesip::seu
