#include "seu/tmr.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace aesip::seu {

using netlist::Cell;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

TmrResult harden_tmr(const Netlist& mapped) {
  TmrResult result;
  Netlist& out = result.hardened;

  const auto& cells = mapped.cells();
  std::vector<NetId> netmap(mapped.net_count(), kNoNet);
  netmap[mapped.const0()] = out.const0();
  netmap[mapped.const1()] = out.const1();
  for (const auto& pi : mapped.inputs()) netmap[pi.net] = out.add_input(pi.name);

  // Triplicated state: three replica Q nets per source flip-flop, plus one
  // majority voter whose output stands in for the original Q everywhere.
  struct Replica {
    std::size_t cell_index;
    std::array<NetId, 3> q;
  };
  std::vector<Replica> replicas;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (c.kind != CellKind::kDff) continue;
    Replica r{ci, {out.new_net(), out.new_net(), out.new_net()}};
    const std::array<NetId, 3> ins{r.q[0], r.q[1], r.q[2]};
    netmap[c.out] = out.add_lut(kMajorityMask, ins);
    replicas.push_back(r);
    ++result.stats.original_dffs;
    ++result.stats.voters;
  }

  // Combinational cells in creation (topological) order.
  struct Item {
    NetId order_net;
    bool is_rom;
    std::size_t index;
  };
  std::vector<Item> items;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (c.kind == CellKind::kLut) items.push_back({c.out, false, ci});
    else if (c.kind != CellKind::kDff && c.kind != CellKind::kConst0 &&
             c.kind != CellKind::kConst1)
      throw std::invalid_argument("tmr: netlist contains unmapped primitive gates");
  }
  for (std::size_t ri = 0; ri < mapped.roms().size(); ++ri)
    items.push_back({mapped.roms()[ri].out[0], true, ri});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.order_net < b.order_net; });

  for (const Item& item : items) {
    if (item.is_rom) {
      const auto& rom = mapped.roms()[item.index];
      netlist::Bus addr;
      for (const NetId a : rom.addr) addr.push_back(netmap[a]);
      const netlist::Bus outs = out.add_rom(rom.table, addr, rom.name);
      for (int i = 0; i < 8; ++i)
        netmap[rom.out[static_cast<std::size_t>(i)]] = outs[static_cast<std::size_t>(i)];
      continue;
    }
    const Cell& c = cells[item.index];
    std::vector<NetId> ins;
    for (int k = 0; k < c.lut_arity; ++k) ins.push_back(netmap[c.in[static_cast<std::size_t>(k)]]);
    netmap[c.out] = out.add_lut(c.lut_mask, ins);
  }

  // Replica flip-flops: all three sample the same (voted-state-derived) D.
  for (const Replica& r : replicas) {
    const Cell& c = cells[r.cell_index];
    const NetId d = netmap[c.in[0]];
    const NetId en = c.in[1] == kNoNet ? kNoNet : netmap[c.in[1]];
    for (const NetId q : r.q) out.add_dff_with_out(q, d, en);
  }

  for (const auto& po : mapped.outputs()) out.add_output(netmap[po.net], po.name);
  return result;
}

}  // namespace aesip::seu
