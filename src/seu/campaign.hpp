// Single-event-upset fault-injection campaigns on the gate-level IP.
//
// Reproduces the methodology of the authors' companion paper (reference
// [16]: inject bit flips into the design's registers during operation and
// classify what reaches the outputs).  Each injection run:
//
//   1. loads a key and computes the golden result in software,
//   2. starts a block through the full bus protocol,
//   3. flips one randomly chosen flip-flop at one randomly chosen cycle of
//      the 50-cycle computation,
//   4. runs a follow-up block and classifies the outcome:
//        masked      — both the hit block and the follow-up are correct;
//        corrupted   — the hit block is wrong, the follow-up is clean
//                      (the upset washed out of the round state);
//        latent      — the hit block is *correct* but the follow-up is
//                      wrong: the upset lodged in standby state (typically
//                      the Key_In register, which encrypt-only devices
//                      read only at block start) and corrupts traffic
//                      until the key is rewritten;
//        persistent  — both blocks wrong (key/control state corrupted);
//        hang        — data_ok never rises (the FSM was knocked off its
//                      one-hot walk).
//
// Campaigns run on any synthesized IP netlist, so the same harness
// measures the unprotected core and the TMR-hardened one.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace aesip::seu {

enum class Outcome : std::uint8_t { kMasked, kCorrupted, kLatent, kPersistent, kHang };

struct Injection {
  std::size_t dff;       ///< flip-flop index hit
  int cycle;             ///< cycle within the block (0..49) of the hit
  Outcome outcome;
};

struct CampaignStats {
  std::size_t masked = 0;
  std::size_t corrupted = 0;
  std::size_t latent = 0;
  std::size_t persistent = 0;
  std::size_t hang = 0;
  std::vector<Injection> injections;

  std::size_t total() const noexcept {
    return masked + corrupted + latent + persistent + hang;
  }
  double silent_fraction() const noexcept {
    return total() ? static_cast<double>(masked) / static_cast<double>(total()) : 0.0;
  }
};

/// Run `runs` independent single-upset injections against `ip_netlist`
/// (a synthesized encrypt-capable IP, pre- or post-mapping/TMR).
/// Deterministic for a given seed.
CampaignStats run_campaign(const netlist::Netlist& ip_netlist, int runs, std::uint32_t seed);

const char* outcome_name(Outcome o) noexcept;

}  // namespace aesip::seu
