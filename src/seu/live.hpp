// Standby-upset classification: which flip-flops matter while the core is
// idle between blocks?
//
// The campaign machinery (campaign.hpp) injects *during* a block's 50-cycle
// computation. The fleet's chaos harness (fleet::ChaosInjector) instead
// flips state in a live engine *between* jobs — the standby scenario: the
// device sits keyed and idle, a particle hits, and the question is whether
// the next blocks come out wrong. Many DFFs are round-state that the next
// block's load overwrites (masked); upsets in the key register or the FSM
// one-hot walk corrupt every following block until re-key/reset.
//
// classify_standby_upset answers the question for one site by replaying it
// on a scratch scalar evaluator; find_standby_sites scans for sites with a
// wanted effect so chaos tests can choose *provably corrupting* injections
// (an injection the spot-check policy must then catch).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace aesip::seu {

/// What a standby (between-blocks) upset at one DFF does to later traffic.
enum class StandbyEffect : std::uint8_t {
  kMasked,      ///< subsequent blocks still correct (state is rewritten)
  kCorrupting,  ///< at least one of the next blocks comes out wrong
  kHang,        ///< data_ok never rises again (FSM knocked off its walk)
};

const char* standby_effect_name(StandbyEffect e) noexcept;

/// Classify the standby upset at `dff`: on a scratch evaluator over
/// `ip_netlist`, reset, load `key` (with key setup when the netlist is
/// decrypt-capable), flip the DFF while idle, then encrypt two blocks and
/// compare against the software reference. Deterministic.
StandbyEffect classify_standby_upset(const netlist::Netlist& ip_netlist, std::size_t dff,
                                     const std::array<std::uint8_t, 16>& key,
                                     const std::array<std::uint8_t, 16>& block);

/// Scan for up to `count` DFF sites whose standby upset has `effect`,
/// probing sites in a seed-shuffled order with a seed-derived key/block.
/// Returns fewer than `count` only when the whole netlist has fewer such
/// sites. Deterministic for a given seed.
std::vector<std::size_t> find_standby_sites(const netlist::Netlist& ip_netlist,
                                            StandbyEffect effect, std::size_t count,
                                            std::uint32_t seed);

}  // namespace aesip::seu
