#include "seu/campaign.hpp"

#include <random>

#include "aes/cipher.hpp"
#include "core/gate_driver.hpp"

namespace aesip::seu {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::kMasked:
      return "masked";
    case Outcome::kCorrupted:
      return "corrupted";
    case Outcome::kLatent:
      return "latent";
    case Outcome::kPersistent:
      return "persistent";
    case Outcome::kHang:
      return "hang";
  }
  return "?";
}

CampaignStats run_campaign(const netlist::Netlist& ip_netlist, int runs, std::uint32_t seed) {
  std::mt19937 rng(seed);
  CampaignStats stats;

  for (int run = 0; run < runs; ++run) {
    std::array<std::uint8_t, 16> key{}, block{}, check{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng());
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    for (auto& b : check) b = static_cast<std::uint8_t>(rng());
    aes::Aes128 ref(key);
    std::array<std::uint8_t, 16> golden{}, golden_check{};
    ref.encrypt_block(block, golden);
    ref.encrypt_block(check, golden_check);

    core::GateIpDriver drv(ip_netlist);
    drv.reset();
    drv.load_key(key, /*needs_setup=*/false);

    // Start the block, flip one register at a random point of the
    // 50-cycle computation.
    const int inject_cycle = static_cast<int>(rng() % 50);
    const std::size_t dff =
        static_cast<std::size_t>(rng() % drv.evaluator().dff_count());

    drv.set_din(block);
    drv.set("wr_data", true);
    drv.clock();  // load edge
    drv.set("wr_data", false);

    Outcome outcome = Outcome::kHang;
    bool got_result = false;
    std::array<std::uint8_t, 16> result{};
    for (int cycle = 1; cycle <= 200; ++cycle) {
      if (cycle - 1 == inject_cycle) {
        drv.evaluator().flip_dff(dff);
        drv.evaluator().settle();
      }
      drv.clock();
      if (drv.data_ok()) {
        result = drv.read_dout();
        got_result = true;
        break;
      }
    }

    if (got_result) {
      // Always run a follow-up block: upsets in standby state (e.g. the
      // Key_In register) leave the hit block intact but poison later ones.
      const auto next = drv.process(check, /*encrypt=*/true);
      const bool hit_ok = result == golden;
      const bool next_ok = next && next->data == golden_check;
      if (!next) outcome = Outcome::kHang;
      else if (hit_ok && next_ok) outcome = Outcome::kMasked;
      else if (hit_ok) outcome = Outcome::kLatent;
      else if (next_ok) outcome = Outcome::kCorrupted;
      else outcome = Outcome::kPersistent;
    }

    switch (outcome) {
      case Outcome::kMasked:
        ++stats.masked;
        break;
      case Outcome::kCorrupted:
        ++stats.corrupted;
        break;
      case Outcome::kLatent:
        ++stats.latent;
        break;
      case Outcome::kPersistent:
        ++stats.persistent;
        break;
      case Outcome::kHang:
        ++stats.hang;
        break;
    }
    stats.injections.push_back(Injection{dff, inject_cycle, outcome});
  }
  return stats;
}

}  // namespace aesip::seu
