#include "place/place.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace aesip::place {

using netlist::Cell;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

namespace {

struct Pin {
  bool fixed;
  int cell = -1;  ///< placeable LE index when !fixed
  GridPosition pos{};
};

}  // namespace

Placement anneal(const Netlist& mapped, const Options& options) {
  const auto& cells = mapped.cells();

  // ---- form logic elements (same packing rule as the techmap accounting) --
  std::vector<int> fanout(mapped.net_count(), 0);
  for (const Cell& c : cells)
    for (int k = 0; k < c.fanin_count(); ++k)
      if (c.in[static_cast<std::size_t>(k)] != kNoNet) ++fanout[c.in[static_cast<std::size_t>(k)]];
  for (const auto& rom : mapped.roms())
    for (const NetId a : rom.addr) ++fanout[a];
  for (const auto& po : mapped.outputs()) ++fanout[po.net];

  // le_of_net: which LE drives each net.
  std::vector<int> le_of_net(mapped.net_count(), -1);
  std::vector<std::vector<NetId>> le_inputs;   // nets each LE reads
  int le_count = 0;

  std::vector<int> lut_le(cells.size(), -1);
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    if (c.kind == CellKind::kLut) {
      lut_le[ci] = le_count;
      le_of_net[c.out] = le_count;
      std::vector<NetId> ins;
      for (int k = 0; k < c.lut_arity; ++k) ins.push_back(c.in[static_cast<std::size_t>(k)]);
      le_inputs.push_back(std::move(ins));
      ++le_count;
    } else if (c.kind != CellKind::kDff && c.kind != CellKind::kConst0 &&
               c.kind != CellKind::kConst1) {
      throw std::invalid_argument("place: netlist contains unmapped primitive gates");
    }
  }
  for (const Cell& c : cells) {
    if (c.kind != CellKind::kDff) continue;
    const std::int32_t d = mapped.driver()[c.in[0]];
    const bool packs = d >= 0 && cells[static_cast<std::size_t>(d)].kind == CellKind::kLut &&
                       fanout[c.in[0]] == 1;
    if (packs) {
      le_of_net[c.out] = lut_le[static_cast<std::size_t>(d)];
      if (c.in[1] != kNoNet)
        le_inputs[static_cast<std::size_t>(lut_le[static_cast<std::size_t>(d)])].push_back(
            c.in[1]);
    } else {
      le_of_net[c.out] = le_count;
      std::vector<NetId> ins{c.in[0]};
      if (c.in[1] != kNoNet) ins.push_back(c.in[1]);
      le_inputs.push_back(std::move(ins));
      ++le_count;
    }
  }

  // ---- grid and fixed pins --------------------------------------------------
  Placement result;
  result.cell_count = static_cast<std::size_t>(le_count);
  const int side = std::max(
      2, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(le_count) /
                                              std::max(0.05, options.target_fill)))));
  result.grid_width = side;
  result.grid_height = side;

  // Per-net pins.
  std::vector<std::vector<Pin>> net_pins(mapped.net_count());
  auto add_cell_pin = [&](NetId n, int le) {
    if (n == kNoNet || le < 0) return;
    net_pins[n].push_back(Pin{false, le, {}});
  };
  for (NetId n = 0; n < mapped.net_count(); ++n) add_cell_pin(n, le_of_net[n]);
  for (int le = 0; le < le_count; ++le)
    for (const NetId n : le_inputs[static_cast<std::size_t>(le)]) add_cell_pin(n, le);

  // ROM macros: a dedicated memory column on the right edge (the Acex EAB
  // column), evenly spread.
  const auto& roms = mapped.roms();
  for (std::size_t ri = 0; ri < roms.size(); ++ri) {
    const GridPosition pos{side, roms.empty() ? 0
                                              : static_cast<int>(ri * static_cast<std::size_t>(side) /
                                                                 std::max<std::size_t>(1, roms.size()))};
    for (const NetId a : roms[ri].addr) net_pins[a].push_back(Pin{true, -1, pos});
    for (const NetId o : roms[ri].out) net_pins[o].push_back(Pin{true, -1, pos});
  }
  // I/O pads around the perimeter.
  {
    const std::size_t total = mapped.inputs().size() + mapped.outputs().size();
    std::size_t index = 0;
    auto pad_pos = [&](std::size_t i) {
      const double frac = static_cast<double>(i) / std::max<std::size_t>(1, total);
      const double along = frac * 4.0;
      const int s = static_cast<int>(along);  // side 0..3
      const int offset = static_cast<int>((along - s) * side);
      switch (s) {
        case 0: return GridPosition{offset, -1};
        case 1: return GridPosition{side, offset};
        case 2: return GridPosition{side - offset, side};
        default: return GridPosition{-1, side - offset};
      }
    };
    for (const auto& pi : mapped.inputs())
      net_pins[pi.net].push_back(Pin{true, -1, pad_pos(index++)});
    for (const auto& po : mapped.outputs())
      net_pins[po.net].push_back(Pin{true, -1, pad_pos(index++)});
  }

  // Interesting nets: at least two pins and at least one placeable pin.
  std::vector<NetId> nets;
  std::vector<std::vector<NetId>> nets_of_le(static_cast<std::size_t>(le_count));
  for (NetId n = 0; n < mapped.net_count(); ++n) {
    if (net_pins[n].size() < 2) continue;
    bool placeable = false;
    for (const Pin& p : net_pins[n]) placeable = placeable || !p.fixed;
    if (!placeable) continue;
    nets.push_back(n);
    for (const Pin& p : net_pins[n])
      if (!p.fixed) nets_of_le[static_cast<std::size_t>(p.cell)].push_back(n);
  }
  for (auto& v : nets_of_le) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // ---- initial placement ------------------------------------------------------
  std::mt19937 rng(options.seed);
  const int slots = side * side;
  std::vector<int> slot_of_cell(static_cast<std::size_t>(le_count));
  std::vector<int> cell_of_slot(static_cast<std::size_t>(slots), -1);
  {
    std::vector<int> order(static_cast<std::size_t>(slots));
    for (int i = 0; i < slots; ++i) order[static_cast<std::size_t>(i)] = i;
    std::shuffle(order.begin(), order.end(), rng);
    for (int le = 0; le < le_count; ++le) {
      slot_of_cell[static_cast<std::size_t>(le)] = order[static_cast<std::size_t>(le)];
      cell_of_slot[static_cast<std::size_t>(order[static_cast<std::size_t>(le)])] = le;
    }
  }
  auto pos_of_cell = [&](int le) {
    const int s = slot_of_cell[static_cast<std::size_t>(le)];
    return GridPosition{s % side, s / side};
  };

  auto net_hpwl = [&](NetId n) {
    int min_x = 1 << 30, max_x = -(1 << 30), min_y = 1 << 30, max_y = -(1 << 30);
    for (const Pin& p : net_pins[n]) {
      const GridPosition pos = p.fixed ? p.pos : pos_of_cell(p.cell);
      min_x = std::min(min_x, pos.x);
      max_x = std::max(max_x, pos.x);
      min_y = std::min(min_y, pos.y);
      max_y = std::max(max_y, pos.y);
    }
    return static_cast<double>((max_x - min_x) + (max_y - min_y));
  };

  double hpwl = 0.0;
  for (const NetId n : nets) hpwl += net_hpwl(n);
  result.initial_hpwl = hpwl;

  // ---- simulated annealing -------------------------------------------------------
  if (le_count > 0) {
    double temp = options.initial_temp_scale * hpwl / static_cast<double>(le_count);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    for (int stage = 0; stage < options.stages; ++stage) {
      const int moves = options.moves_per_cell * le_count;
      for (int mv = 0; mv < moves; ++mv) {
        const int cell = static_cast<int>(rng() % static_cast<std::uint32_t>(le_count));
        const int target = static_cast<int>(rng() % static_cast<std::uint32_t>(slots));
        const int old_slot = slot_of_cell[static_cast<std::size_t>(cell)];
        if (target == old_slot) continue;
        const int other = cell_of_slot[static_cast<std::size_t>(target)];

        // Affected nets: union of both cells' nets.
        double before = 0.0;
        for (const NetId n : nets_of_le[static_cast<std::size_t>(cell)]) before += net_hpwl(n);
        if (other >= 0)
          for (const NetId n : nets_of_le[static_cast<std::size_t>(other)])
            if (std::find(nets_of_le[static_cast<std::size_t>(cell)].begin(),
                          nets_of_le[static_cast<std::size_t>(cell)].end(),
                          n) == nets_of_le[static_cast<std::size_t>(cell)].end())
              before += net_hpwl(n);

        // Apply.
        slot_of_cell[static_cast<std::size_t>(cell)] = target;
        cell_of_slot[static_cast<std::size_t>(target)] = cell;
        cell_of_slot[static_cast<std::size_t>(old_slot)] = other;
        if (other >= 0) slot_of_cell[static_cast<std::size_t>(other)] = old_slot;

        double after = 0.0;
        for (const NetId n : nets_of_le[static_cast<std::size_t>(cell)]) after += net_hpwl(n);
        if (other >= 0)
          for (const NetId n : nets_of_le[static_cast<std::size_t>(other)])
            if (std::find(nets_of_le[static_cast<std::size_t>(cell)].begin(),
                          nets_of_le[static_cast<std::size_t>(cell)].end(),
                          n) == nets_of_le[static_cast<std::size_t>(cell)].end())
              after += net_hpwl(n);

        const double delta = after - before;
        if (delta <= 0.0 || uniform(rng) < std::exp(-delta / std::max(1e-9, temp))) {
          hpwl += delta;  // accept
        } else {
          // Revert.
          slot_of_cell[static_cast<std::size_t>(cell)] = old_slot;
          cell_of_slot[static_cast<std::size_t>(old_slot)] = cell;
          cell_of_slot[static_cast<std::size_t>(target)] = other;
          if (other >= 0) slot_of_cell[static_cast<std::size_t>(other)] = target;
        }
      }
      temp *= options.cooling;
    }
  }

  // Recompute exactly (incremental updates accumulate float error).
  hpwl = 0.0;
  result.net_length.assign(mapped.net_count(), 0.0);
  for (const NetId n : nets) {
    const double len = net_hpwl(n);
    result.net_length[n] = len;
    hpwl += len;
  }
  result.final_hpwl = hpwl;
  return result;
}

}  // namespace aesip::place
