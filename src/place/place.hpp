// Placement: simulated-annealing placement of a mapped design on a 2-D
// logic-element grid.
//
// The fitter's utilization derate is a coarse stand-in for what place &
// route really does; this module provides the finer model: every logic
// element (a LUT, an unpacked flip-flop, or a packed pair) gets a grid
// slot, I/O pins sit on the perimeter, and a half-perimeter-wirelength
// (HPWL) annealer shortens the nets — the VPR-style core of an FPGA
// fitter.  The resulting per-net wirelengths can back-annotate the static
// timing analysis (sta::analyze accepts per-net extra routing delays), so
// clock estimates reflect actual placements rather than fanout statistics
// alone.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace aesip::place {

struct GridPosition {
  int x = 0;
  int y = 0;
};

struct Options {
  std::uint32_t seed = 1;
  double target_fill = 0.5;   ///< fraction of grid slots occupied
  int stages = 60;            ///< annealing temperature stages
  int moves_per_cell = 8;     ///< proposed moves per cell per stage
  double initial_temp_scale = 0.05;  ///< T0 as a fraction of initial HPWL
  double cooling = 0.9;
};

struct Placement {
  int grid_width = 0;
  int grid_height = 0;
  std::size_t cell_count = 0;      ///< placeable logic elements
  double initial_hpwl = 0.0;
  double final_hpwl = 0.0;
  /// Per-net half-perimeter wirelength in grid units (indexed by NetId of
  /// the mapped netlist; nets without placeable pins have length 0).
  std::vector<double> net_length;

  double improvement() const noexcept {
    return initial_hpwl > 0.0 ? 1.0 - final_hpwl / initial_hpwl : 0.0;
  }
};

/// Place a mapped netlist (kLut/kDff cells + ROM macros).  Logic elements
/// are formed exactly as the techmap LE accounting does (a flip-flop packs
/// with its fanout-1 driving LUT); I/O bits take perimeter positions, ROM
/// macros a dedicated column.  Deterministic for a given seed.
Placement anneal(const netlist::Netlist& mapped, const Options& options = {});

}  // namespace aesip::place
