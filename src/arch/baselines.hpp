// Literature baselines of the paper's Table 3 plus our model's predictions
// for the corresponding architectural configurations.
//
// Table 3 in the paper is a survey of other Altera-FPGA Rijndael
// implementations: [13] Mroczkowski (Flex10KA), [14] Zigiotto/d'Amore
// low-cost (Acex1K), [1] Panato et al. high-performance (Apex20K) and
// [15] the Altera Hammercores processor (Apex20KE).  We record the cells
// that are legible in the available paper text (the scan garbled several)
// and mark the rest unavailable; next to the recorded values the bench
// prints what our analytical model predicts for a matching configuration,
// so the comparison's *shape* (low-cost << paper IP << high-performance)
// is regenerated rather than transcribed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/cycle_model.hpp"

namespace aesip::arch {

struct LiteratureDesign {
  std::string reference;   ///< citation tag, e.g. "[14] Zigiotto/d'Amore"
  std::string technology;  ///< device family reported in Table 3
  std::optional<int> memory_bits;
  std::optional<int> logic_cells;
  std::optional<double> throughput_enc_mbps;   ///< E column
  std::optional<double> throughput_dec_mbps;   ///< D column
  std::optional<double> throughput_both_mbps;  ///< C column

  /// The closest configuration of our analytical model.
  DatapathConfig model_config;
  /// Representative clock period for the design's family/era (ns), used to
  /// turn the model's cycle count into a throughput prediction.
  double model_clock_ns;
};

/// The four rows of the paper's Table 3.
const std::vector<LiteratureDesign>& table3_baselines();

}  // namespace aesip::arch
