#include "arch/variant.hpp"

#include <cassert>
#include <map>
#include <mutex>
#include <stdexcept>

#include "aes/sbox.hpp"
#include "aes/state.hpp"
#include "aes/transforms.hpp"
#include "core/ip_synth.hpp"
#include "gf/gf256.hpp"

namespace aesip::arch {

using netlist::Bus;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;

// ===== VariantSpec ============================================================

std::string VariantSpec::name() const {
  std::string out;
  switch (round_arch) {
    case RoundArch::kIterative: out = "iter"; break;
    case RoundArch::kUnrolled: out = "unroll"; break;
    case RoundArch::kPipelined: out = "pipe" + std::to_string(pipeline_stages); break;
  }
  out += mixcol == netlist::MixColStyle::kXtime ? "-xtime" : "-lut";
  if (key_bits != 128) out += "@" + std::to_string(key_bits);
  return out;
}

std::optional<VariantSpec> VariantSpec::parse(std::string_view text) {
  VariantSpec spec;
  // Optional "@192"/"@256" key-size suffix on any name ("@128" is accepted
  // and means the bare default).
  const auto at = text.rfind('@');
  if (at != std::string_view::npos) {
    const std::string_view bits = text.substr(at + 1);
    if (bits == "128") spec.key_bits = 128;
    else if (bits == "192") spec.key_bits = 192;
    else if (bits == "256") spec.key_bits = 256;
    else return std::nullopt;
    text = text.substr(0, at);
  }
  if (text == "paper") return spec.valid() ? std::optional<VariantSpec>(spec) : std::nullopt;
  const auto dash = text.rfind('-');
  if (dash == std::string_view::npos) return std::nullopt;
  const std::string_view arch = text.substr(0, dash);
  const std::string_view mix = text.substr(dash + 1);
  if (mix == "xtime") spec.mixcol = netlist::MixColStyle::kXtime;
  else if (mix == "lut") spec.mixcol = netlist::MixColStyle::kLut;
  else return std::nullopt;
  if (arch == "iter") {
    spec.round_arch = RoundArch::kIterative;
  } else if (arch == "unroll") {
    spec.round_arch = RoundArch::kUnrolled;
  } else if (arch.substr(0, 4) == "pipe") {
    spec.round_arch = RoundArch::kPipelined;
    const std::string_view n = arch.substr(4);
    if (n.empty() || n.size() > 2) return std::nullopt;
    int stages = 0;
    for (char c : n) {
      if (c < '0' || c > '9') return std::nullopt;
      stages = stages * 10 + (c - '0');
    }
    if (stages < 2) return std::nullopt;
    spec.pipeline_stages = stages;
  } else {
    return std::nullopt;
  }
  // Reject unrealizable combinations (e.g. pipe5@192: 5 does not divide 12).
  if (!spec.valid()) return std::nullopt;
  return spec;
}

std::vector<VariantSpec> VariantSpec::family() {
  std::vector<VariantSpec> out;
  const auto add = [&out](RoundArch arch, int stages, netlist::MixColStyle mix) {
    VariantSpec s;
    s.round_arch = arch;
    s.pipeline_stages = stages;
    s.mixcol = mix;
    out.push_back(s);
  };
  // The Pareto candidates (docs/variants.md): area and throughput both grow
  // with the stage count, so the xtime column is the expected front; the
  // lut column repeats two schedules at strictly higher LC (dominated).
  add(RoundArch::kIterative, 1, netlist::MixColStyle::kXtime);
  add(RoundArch::kUnrolled, 1, netlist::MixColStyle::kXtime);
  add(RoundArch::kPipelined, 2, netlist::MixColStyle::kXtime);
  add(RoundArch::kPipelined, 5, netlist::MixColStyle::kXtime);
  add(RoundArch::kPipelined, 10, netlist::MixColStyle::kXtime);
  add(RoundArch::kIterative, 1, netlist::MixColStyle::kLut);
  add(RoundArch::kUnrolled, 1, netlist::MixColStyle::kLut);
  return out;
}

bool operator==(const VariantSpec& a, const VariantSpec& b) noexcept {
  return a.round_arch == b.round_arch && a.stages() == b.stages() &&
         a.mixcol == b.mixcol && a.sbox == b.sbox && a.key_bits == b.key_bits;
}

const char* intern_label(const std::string& text) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<std::string>> interned;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = interned[text];
  if (!slot) slot = std::make_unique<std::string>(text);
  return slot->c_str();
}

const char* variant_label(const VariantSpec& spec) { return intern_label(spec.name()); }

// ===== gate-level generator ===================================================

namespace {

Bus column_of(const Bus& state, int c) {
  return Bus(state.begin() + 32 * c, state.begin() + 32 * (c + 1));
}

Bus pre_allocated_bus(Netlist& nl, int width) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) b.push_back(nl.new_net());
  return b;
}

/// Full-width SubBytes: 16 S-boxes as four SubWord32 banks.
Bus sub_bytes128_nl(Netlist& nl, const Bus& state, const std::array<std::uint8_t, 256>& table,
                    netlist::SboxStyle style, bool inverse, const std::string& name) {
  Bus out;
  out.reserve(128);
  for (int c = 0; c < 4; ++c) {
    const Bus word = netlist::synth_sub_word32(nl, table, column_of(state, c), style, inverse,
                                               name + "_c" + std::to_string(c));
    out.insert(out.end(), word.begin(), word.end());
  }
  return out;
}

/// RotWord on a 32-bit bus (pure wiring).
Bus rot_word_bus(const Bus& w) {
  Bus out;
  out.reserve(32);
  for (int k = 0; k < 4; ++k) {
    const Bus b = netlist::byte_of(w, (k + 1) & 3);
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

/// rcon byte as a function of the 4-bit expansion counter.
Bus rcon_bus(Netlist& nl, const Bus& round) {
  std::vector<Bus> choices;
  choices.push_back(nl.constant_bus(0, 8));
  for (unsigned r = 1; r <= 10; ++r) choices.push_back(nl.constant_bus(gf::rcon(r), 8));
  return nl.mux_n(round, choices);
}

/// GF(2^8) xtime on an 8-bit bus (rcon chain register advance).
Bus xtime_bus(Netlist& nl, const Bus& a) {
  Bus o(8, kNoNet);
  o[0] = a[7];
  o[1] = nl.gate_xor(a[0], a[7]);
  o[2] = a[1];
  o[3] = nl.gate_xor(a[2], a[7]);
  o[4] = nl.gate_xor(a[3], a[7]);
  o[5] = a[4];
  o[6] = a[5];
  o[7] = a[6];
  return o;
}

}  // namespace

Netlist synthesize_variant(const VariantSpec& spec, core::IpMode mode) {
  if (!spec.valid()) throw std::invalid_argument("variant: unrealizable spec " + spec.name());
  if (spec.is_iterative())
    return core::synthesize_ip(mode, spec.sbox, spec.mixcol, spec.key_bits);
  const int N = spec.stages();
  const int R = spec.rounds_per_stage();
  const int nk = spec.nk();
  const int nr = spec.nr();
  const int S = spec.schedule_words();
  const int E = spec.key_setup_cycles(mode);  // expansion pass length
  if (N * R != nr) throw std::invalid_argument("variant: stage count must divide Nr");
  const bool has_enc = mode != core::IpMode::kDecrypt;
  const bool has_dec = mode != core::IpMode::kEncrypt;
  const netlist::SboxStyle style = spec.sbox;

  Netlist nl;

  // ===== pins: Table 1 plus the in_ready admission output ====================
  (void)nl.add_input("clk");
  const NetId setup_pin = nl.add_input("setup");
  const NetId wr_data = nl.add_input("wr_data");
  const NetId wr_key = nl.add_input("wr_key");
  const Bus din = nl.add_input_bus("din", 128);
  const NetId encdec = mode == core::IpMode::kBoth ? nl.add_input("encdec") : kNoNet;
  const NetId flushing = nl.gate_or(wr_key, setup_pin);

  // Multi-beat key loads (Nk > 4), as in the iterative core: beat 0 carries
  // key words 0..3, beat 1 words 4..Nk-1 in the low din lanes.
  NetId key_beat_q = nl.const0();
  NetId wr_key_last = wr_key;
  if (nk > 4) {
    key_beat_q = nl.new_net();
    NetId beat_d = nl.gate_mux(wr_key, key_beat_q, nl.gate_not(key_beat_q));
    beat_d = nl.gate_and(beat_d, nl.gate_not(setup_pin));
    nl.add_dff_with_out(key_beat_q, beat_d);
    wr_key_last = nl.gate_and(wr_key, key_beat_q);
  }

  // ===== bus-side registers ==================================================
  const Bus data_in_reg = nl.dff_bus(din, wr_data);

  // ===== key store + expansion FSM ===========================================
  // wr_key seeds the key words and the expansion window; each of the next E
  // = ceil((S-Nk)/4) edges computes four schedule words into the key RAM.
  // A wr_key also flushes every in-flight block (the schedule is global
  // state).
  const Bus kr_q = pre_allocated_bus(nl, 4);
  const NetId expanding_q = nl.new_net();
  const NetId key_valid_q = nl.new_net();
  const NetId kr_last = nl.eq_const(kr_q, static_cast<std::uint64_t>(E));

  // K[r] views round key r; filled per-word for Nk > 4, per-round for Nk=4.
  std::vector<Bus> K(static_cast<std::size_t>(nr + 1));

  if (nk == 4) {
    // ---- the AES-128 organization: 128-bit chain register, one round key
    // per expansion cycle, round-indexed rcon constants -----------------------
    const Bus kexp = pre_allocated_bus(nl, 128);
    Bus knext;
    {
      const Bus rotated = rot_word_bus(column_of(kexp, 3));
      const Bus sub = netlist::synth_sub_word32(nl, aes::kSBox, rotated, style,
                                                /*inverse_table=*/false, "kexp_subword");
      Bus col0 = nl.xor_bus(column_of(kexp, 0), sub);
      const Bus rcon = rcon_bus(nl, kr_q);
      for (int b = 0; b < 8; ++b)
        col0[static_cast<std::size_t>(b)] =
            nl.gate_xor(col0[static_cast<std::size_t>(b)], rcon[static_cast<std::size_t>(b)]);
      knext = col0;
      Bus prev = col0;
      for (int c = 1; c < 4; ++c) {
        prev = nl.xor_bus(prev, column_of(kexp, c));
        knext.insert(knext.end(), prev.begin(), prev.end());
      }
    }

    K[0] = nl.dff_bus(din, wr_key);
    for (int r = 1; r <= 10; ++r) {
      const NetId wr_r =
          nl.gate_and(expanding_q, nl.eq_const(kr_q, static_cast<std::uint64_t>(r)));
      K[static_cast<std::size_t>(r)] = nl.dff_bus(knext, wr_r);
    }
    const Bus kexp_d = nl.mux_bus(wr_key, knext, din);
    const NetId kexp_en = nl.gate_or(wr_key, expanding_q);
    for (int b = 0; b < 128; ++b)
      nl.add_dff_with_out(kexp[static_cast<std::size_t>(b)], kexp_d[static_cast<std::size_t>(b)],
                          kexp_en);
  } else {
    // ---- word-granular schedule RAM (Nk = 6/8) ------------------------------
    // Expansion cycle g (kr = g+1) generates schedule words Nk+4g..Nk+4g+3
    // through a sliding window W of the last Nk words.  Lane l's feedback
    // term is W[l] (= w[4g+l]); the chain term is the XOR-prefix of the
    // window, and at most one lane per cycle applies the KStran/SubWord
    // transform (4 consecutive words cross at most one Nk boundary), so a
    // single shared SubWord bank suffices — same S-box budget as Nk=4.
    std::vector<Bus> kw(static_cast<std::size_t>(S));  // schedule word RAM
    for (int c = 0; c < 4; ++c)
      kw[static_cast<std::size_t>(c)] =
          nl.dff_bus(column_of(din, c), nl.gate_and(wr_key, nl.gate_not(key_beat_q)));
    for (int c = 4; c < nk; ++c)
      kw[static_cast<std::size_t>(c)] = nl.dff_bus(column_of(din, c - 4), wr_key_last);

    std::vector<Bus> W(static_cast<std::size_t>(nk));
    for (auto& w : W) w = pre_allocated_bus(nl, 32);
    const Bus rcon_q = pre_allocated_bus(nl, 8);

    std::vector<NetId> kr_is(static_cast<std::size_t>(E));
    for (int g = 0; g < E; ++g)
      kr_is[static_cast<std::size_t>(g)] =
          nl.eq_const(kr_q, static_cast<std::uint64_t>(g + 1));

    // Per-lane transform selects: lane l of cycle g generates word
    // j = Nk+4g+l; KStran at j%Nk==0, SubWord alone at j%8==4 when Nk=8.
    std::array<NetId, 4> boundary_l{}, sel_l{};
    NetId any_b = nl.const0();
    for (int l = 0; l < 4; ++l) {
      NetId b = nl.const0();
      NetId sw = nl.const0();
      for (int g = 0; g < E; ++g) {
        const int j = nk + 4 * g + l;
        if (j >= S) continue;  // overflow lanes of the last group
        if (j % nk == 0) b = nl.gate_or(b, kr_is[static_cast<std::size_t>(g)]);
        if (nk == 8 && j % 8 == 4) sw = nl.gate_or(sw, kr_is[static_cast<std::size_t>(g)]);
      }
      boundary_l[static_cast<std::size_t>(l)] = b;
      sel_l[static_cast<std::size_t>(l)] = nl.gate_or(b, sw);
      any_b = nl.gate_or(any_b, b);
    }

    // The transform lane's chain input is a pure XOR-prefix of the window
    // (the lanes before it carry no transform that cycle), so the shared
    // bank's address never forms a combinational loop.
    std::array<Bus, 4> prefix;
    prefix[0] = W[static_cast<std::size_t>(nk - 1)];
    for (int l = 1; l < 4; ++l)
      prefix[static_cast<std::size_t>(l)] =
          nl.xor_bus(prefix[static_cast<std::size_t>(l - 1)], W[static_cast<std::size_t>(l - 1)]);
    Bus raw = prefix[0];
    for (int l = 1; l < 4; ++l)
      raw = nl.mux_bus(sel_l[static_cast<std::size_t>(l)], raw,
                       prefix[static_cast<std::size_t>(l)]);
    const Bus addr = nl.mux_bus(any_b, raw, rot_word_bus(raw));
    const Bus sub = netlist::synth_sub_word32(nl, aes::kSBox, addr, style,
                                              /*inverse_table=*/false, "kexp_subword");
    Bus sub_rcon = sub;
    for (int b = 0; b < 8; ++b)
      sub_rcon[static_cast<std::size_t>(b)] = nl.gate_xor(
          sub[static_cast<std::size_t>(b)], rcon_q[static_cast<std::size_t>(b)]);
    const Bus tr = nl.mux_bus(any_b, sub, sub_rcon);

    std::array<Bus, 4> lane_out;
    Bus prev = W[static_cast<std::size_t>(nk - 1)];
    for (int l = 0; l < 4; ++l) {
      const Bus t = nl.mux_bus(sel_l[static_cast<std::size_t>(l)], prev, tr);
      lane_out[static_cast<std::size_t>(l)] = nl.xor_bus(W[static_cast<std::size_t>(l)], t);
      prev = lane_out[static_cast<std::size_t>(l)];
    }

    // Schedule RAM writes: word j lands on expansion cycle (j-Nk)/4.
    for (int j = nk; j < S; ++j) {
      const int g = (j - nk) / 4;
      const NetId en = nl.gate_and(expanding_q, kr_is[static_cast<std::size_t>(g)]);
      kw[static_cast<std::size_t>(j)] =
          nl.dff_bus(lane_out[static_cast<std::size_t>((j - nk) % 4)], en);
    }

    // Window registers: seeded with the key words on the completing beat
    // (words 4..Nk-1 forwarded from din), shifted by 4 each expansion cycle.
    const NetId w_en = nl.gate_or(wr_key_last, expanding_q);
    for (int c = 0; c < nk; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      Bus d = c < nk - 4 ? W[ci + 4] : lane_out[static_cast<std::size_t>(c - (nk - 4))];
      const Bus seed = c < 4 ? kw[ci] : column_of(din, c - 4);
      d = nl.mux_bus(wr_key_last, d, seed);
      for (int b = 0; b < 32; ++b)
        nl.add_dff_with_out(W[ci][static_cast<std::size_t>(b)],
                            d[static_cast<std::size_t>(b)], w_en);
    }

    // rcon chain register: seeded to rcon(1), advanced by xtime on every
    // boundary-bearing expansion cycle.
    Bus rcon_d = nl.mux_bus(nl.gate_and(expanding_q, any_b), rcon_q, xtime_bus(nl, rcon_q));
    rcon_d = nl.mux_bus(wr_key_last, rcon_d, nl.constant_bus(1, 8));
    for (int b = 0; b < 8; ++b)
      nl.add_dff_with_out(rcon_q[static_cast<std::size_t>(b)],
                          rcon_d[static_cast<std::size_t>(b)]);

    for (int r = 0; r <= nr; ++r) {
      Bus view;
      view.reserve(128);
      for (int c = 0; c < 4; ++c) {
        const Bus& w = kw[static_cast<std::size_t>(4 * r + c)];
        view.insert(view.end(), w.begin(), w.end());
      }
      K[static_cast<std::size_t>(r)] = view;
    }
  }

  {
    Bus kr_d = nl.mux_bus(expanding_q, kr_q, nl.increment(kr_q));
    kr_d = nl.mux_bus(wr_key, kr_d, nl.constant_bus(1, 4));
    for (int b = 0; b < 4; ++b)
      nl.add_dff_with_out(kr_q[static_cast<std::size_t>(b)], kr_d[static_cast<std::size_t>(b)]);
    // Expansion runs from the completing key beat; a fresh beat 0 aborts any
    // expansion in flight (the schedule is being replaced).
    const NetId expanding_d =
        nk == 4 ? nl.gate_and(nl.gate_or(wr_key, nl.gate_and(expanding_q, nl.gate_not(kr_last))),
                              nl.gate_not(setup_pin))
                : nl.gate_and(nl.gate_or(wr_key_last,
                                         nl.gate_and(expanding_q,
                                                     nl.gate_and(nl.gate_not(kr_last),
                                                                 nl.gate_not(wr_key)))),
                              nl.gate_not(setup_pin));
    nl.add_dff_with_out(expanding_q, expanding_d);
    const NetId key_valid_d =
        nl.gate_and(nl.gate_or(nl.gate_and(expanding_q, kr_last), key_valid_q),
                    nl.gate_not(flushing));
    nl.add_dff_with_out(key_valid_q, key_valid_d);
  }

  // ===== pipeline control =====================================================
  // sub_q counts the rounds each stage has iterated in the current pass;
  // the pipeline shifts (and a block may be admitted) on the boundary
  // cycle sub == R-1. When the pipeline is empty sub_q parks at R-1, so an
  // idle core admits on the load edge itself.
  int sel_w = 1;
  while ((1 << sel_w) < R) ++sel_w;
  const Bus sub_q = R > 1 ? pre_allocated_bus(nl, sel_w) : Bus{};
  const NetId boundary =
      R > 1 ? nl.eq_const(sub_q, static_cast<std::uint64_t>(R - 1)) : nl.const1();

  const NetId pending_q = nl.new_net();
  const NetId block_avail = nl.gate_or(pending_q, wr_data);
  const NetId admit = nl.gate_and(nl.gate_and(boundary, block_avail),
                                  nl.gate_and(key_valid_q, nl.gate_not(flushing)));

  std::vector<NetId> v_q(static_cast<std::size_t>(N));
  std::vector<NetId> v_d(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) v_q[static_cast<std::size_t>(i)] = nl.new_net();
  for (int i = 0; i < N; ++i) {
    const NetId shifted = i == 0 ? admit : v_q[static_cast<std::size_t>(i - 1)];
    const NetId held = nl.gate_mux(boundary, v_q[static_cast<std::size_t>(i)], shifted);
    v_d[static_cast<std::size_t>(i)] = nl.gate_and(held, nl.gate_not(flushing));
    nl.add_dff_with_out(v_q[static_cast<std::size_t>(i)], v_d[static_cast<std::size_t>(i)]);
  }

  // Per-stage direction bits (kBoth), sampled at admission and carried
  // along with the block so encrypt and decrypt traffic can share the pipe.
  const NetId dec_in = mode == core::IpMode::kBoth ? nl.gate_not(encdec)
                       : mode == core::IpMode::kDecrypt ? nl.const1()
                                                        : nl.const0();
  std::vector<NetId> d_qv(static_cast<std::size_t>(N), dec_in);
  if (mode == core::IpMode::kBoth) {
    for (int i = 0; i < N; ++i) d_qv[static_cast<std::size_t>(i)] = nl.new_net();
    nl.add_dff_with_out(d_qv[0], dec_in, admit);
    for (int i = 1; i < N; ++i)
      nl.add_dff_with_out(d_qv[static_cast<std::size_t>(i)],
                          d_qv[static_cast<std::size_t>(i - 1)], boundary);
  }

  if (R > 1) {
    NetId any_next = nl.const0();
    for (const NetId v : v_d) any_next = nl.gate_or(any_next, v);
    const Bus advance = nl.mux_bus(boundary, nl.increment(sub_q), nl.constant_bus(0, sel_w));
    const Bus sub_d = nl.mux_bus(any_next,
                                 nl.constant_bus(static_cast<std::uint64_t>(R - 1), sel_w),
                                 advance);
    for (int b = 0; b < sel_w; ++b)
      nl.add_dff_with_out(sub_q[static_cast<std::size_t>(b)], sub_d[static_cast<std::size_t>(b)]);
  }

  const NetId pending_d =
      nl.gate_and(nl.gate_and(block_avail, nl.gate_not(admit)), nl.gate_not(flushing));
  nl.add_dff_with_out(pending_q, pending_d);

  // ===== datapath =============================================================
  // Initial AddRoundKey folds into admission (K0 encrypt / K10 decrypt);
  // the Data_In register is forwarded on the load edge itself.
  const Bus data_src = nl.mux_bus(wr_data, data_in_reg, din);
  Bus init_state;
  {
    Bus init_enc, init_dec;
    if (has_enc) init_enc = nl.xor_bus(data_src, K[0]);
    if (has_dec) init_dec = nl.xor_bus(data_src, K[static_cast<std::size_t>(nr)]);
    if (has_enc && has_dec) init_state = nl.mux_bus(dec_in, init_enc, init_dec);
    else init_state = has_enc ? init_enc : init_dec;
  }

  // Stage i at sub s executes global round f = i*R + s + 1 (1-based, over
  // the whole cipher); the top stage's boundary cycle is f == Nr, the only
  // step that skips (I)MixColumn. Encrypt: SB -> SR -> MC -> AddK[f].
  // Decrypt (the equivalent InvCipher step): ISR -> ISB -> AddK[Nr-f] -> IMC.
  Bus shift_in = init_state;
  Bus top_out;
  for (int i = 0; i < N; ++i) {
    const Bus S = pre_allocated_bus(nl, 128);
    const std::string sn = "s" + std::to_string(i);
    const NetId last_sel = i == N - 1 ? boundary : nl.const0();

    Bus k_enc, k_dec;
    if (has_enc) {
      if (R == 1) {
        k_enc = K[static_cast<std::size_t>(i + 1)];
      } else {
        std::vector<Bus> choices;
        for (int s = 0; s < R; ++s) choices.push_back(K[static_cast<std::size_t>(i * R + s + 1)]);
        k_enc = nl.mux_n(sub_q, choices);
      }
    }
    if (has_dec) {
      if (R == 1) {
        k_dec = K[static_cast<std::size_t>(nr - 1 - i)];
      } else {
        std::vector<Bus> choices;
        for (int s = 0; s < R; ++s)
          choices.push_back(K[static_cast<std::size_t>(nr - 1 - i * R - s)]);
        k_dec = nl.mux_n(sub_q, choices);
      }
    }

    Bus out_enc, out_dec;
    if (has_enc) {
      const Bus sb = sub_bytes128_nl(nl, S, aes::kSBox, style, false, "sb_" + sn);
      const Bus sr = netlist::synth_shift_rows128(sb, false);
      const Bus mc = netlist::synth_mix_columns128(nl, sr, false, spec.mixcol);
      const Bus pre = nl.mux_bus(last_sel, mc, sr);
      out_enc = nl.xor_bus(pre, k_enc);
    }
    if (has_dec) {
      const Bus isr = netlist::synth_shift_rows128(S, true);
      const Bus isb = sub_bytes128_nl(nl, isr, aes::kInvSBox, style, true, "isb_" + sn);
      const Bus ak = nl.xor_bus(isb, k_dec);
      const Bus imc = netlist::synth_mix_columns128(nl, ak, true, spec.mixcol);
      out_dec = nl.mux_bus(last_sel, imc, ak);
    }
    Bus out;
    if (has_enc && has_dec)
      out = nl.mux_bus(d_qv[static_cast<std::size_t>(i)], out_enc, out_dec);
    else out = has_enc ? out_enc : out_dec;

    // Shift in the previous stage's completed block on boundary cycles,
    // iterate in place otherwise.
    const Bus d = nl.mux_bus(boundary, out, shift_in);
    const NetId shift_en = i == 0 ? admit : v_q[static_cast<std::size_t>(i - 1)];
    const NetId en = nl.gate_or(nl.gate_and(boundary, shift_en),
                                nl.gate_and(nl.gate_not(boundary),
                                            v_q[static_cast<std::size_t>(i)]));
    for (int b = 0; b < 128; ++b)
      nl.add_dff_with_out(S[static_cast<std::size_t>(b)], d[static_cast<std::size_t>(b)], en);

    shift_in = out;
    if (i == N - 1) top_out = out;
  }

  // ===== Out process ==========================================================
  const NetId emit =
      nl.gate_and(nl.gate_and(boundary, v_q[static_cast<std::size_t>(N - 1)]),
                  nl.gate_not(flushing));
  const Bus out_reg = nl.dff_bus(top_out, emit);
  const NetId data_ok = nl.add_dff(emit);

  nl.add_output(data_ok, "data_ok");
  nl.add_output_bus(out_reg, "dout");
  nl.add_output(nl.gate_not(pending_q), "in_ready");
  return nl;
}

// ===== behavioral twin ========================================================

namespace {

hdl::Word128 word_from_state(const aes::State& s) {
  hdl::Word128 out;
  s.store(out.b);
  return out;
}

}  // namespace

VariantIp::VariantIp(hdl::Simulator& sim, const VariantSpec& spec, core::IpMode mode)
    : hdl::Module("variant_ip"),
      setup(sim, "setup", 1),
      wr_data(sim, "wr_data", 1),
      wr_key(sim, "wr_key", 1),
      encdec(sim, "encdec", 1, true),
      data_ok(sim, "data_ok", 1),
      din(sim, "din", 128),
      dout(sim, "dout", 128),
      spec_(spec),
      mode_(mode),
      stages_n_(spec.stages()),
      rounds_per_stage_(spec.rounds_per_stage()) {
  if (spec.is_iterative())
    throw std::invalid_argument("VariantIp models the non-iterative family; "
                                "the iterative core is core::RijndaelIp");
  if (!spec.valid()) throw std::invalid_argument("VariantIp: unrealizable spec " + spec.name());
  kwords_.resize(static_cast<std::size_t>(spec.schedule_words()));
  stage_.resize(static_cast<std::size_t>(stages_n_));
  sub_ = rounds_per_stage_ - 1;  // empty pipeline parks on the boundary
  sim.add_module(*this);
}

bool VariantIp::busy() const noexcept {
  if (expanding_) return true;
  for (const Stage& s : stage_)
    if (s.valid) return true;
  return false;
}

hdl::Word128 VariantIp::round_step(const hdl::Word128& in, bool decrypt, int step) const {
  const int nr = spec_.nr();
  aes::State s(4, in.b);
  if (!decrypt) {
    aes::sub_bytes(s);
    aes::shift_rows(s);
    if (step < nr) aes::mix_columns(s);
    aes::add_round_key(s, round_key(step).b);
  } else {
    aes::inv_shift_rows(s);
    aes::inv_sub_bytes(s);
    aes::add_round_key(s, round_key(nr - step).b);
    if (step < nr) aes::inv_mix_columns(s);
  }
  return word_from_state(s);
}

hdl::Word128 VariantIp::round_key(int r) const {
  hdl::Word128 out;
  for (int c = 0; c < 4; ++c)
    out.set_column(c, kwords_[static_cast<std::size_t>(4 * r + c)]);
  return out;
}

void VariantIp::flush_pipeline() noexcept {
  for (Stage& s : stage_) s.valid = false;
  pending_ = false;
  sub_ = rounds_per_stage_ - 1;
}

void VariantIp::tick() {
  data_ok.write(false);
  if (setup.read()) {
    ++counters_.setup_resets;
    flush_pipeline();
    key_valid_ = false;
    expanding_ = false;
    key_beat_ = 0;
    return;
  }
  if (wr_key.read()) {
    // The hazard rule: a key write flushes every in-flight block and
    // (re)starts the expansion into the key RAM once the last beat lands
    // (keys wider than din ride ceil(Nk/4) consecutive wr_key beats).
    ++counters_.key_writes;
    flush_pipeline();
    key_valid_ = false;
    expanding_ = false;
    const int nk = spec_.nk();
    const hdl::Word128 v = din.read();
    if (key_beat_ == 0) {
      for (int c = 0; c < 4; ++c) kwords_[static_cast<std::size_t>(c)] = v.column(c);
      if (nk > 4) {
        key_beat_ = 1;
        return;
      }
    } else {
      for (int c = 4; c < nk; ++c) kwords_[static_cast<std::size_t>(c)] = v.column(c - 4);
      key_beat_ = 0;
    }
    kw_done_ = nk;
    expanding_ = true;
    return;
  }
  if (wr_data.read()) {
    data_in_reg_ = din.read();
    pending_ = true;
    ++counters_.data_writes;
  }

  if (expanding_) {
    // One expansion cycle = four schedule words (word-granular for Nk > 4:
    // groups of four straddle the Nk-boundary transforms).
    ++counters_.key_setup_cycles;
    const int nk = spec_.nk();
    const int S = spec_.schedule_words();
    for (int j = 0; j < 4 && kw_done_ < S; ++j, ++kw_done_) {
      std::uint32_t t = kwords_[static_cast<std::size_t>(kw_done_ - 1)];
      if (kw_done_ % nk == 0)
        t = aes::sub_word(aes::rot_word(t)) ^ gf::rcon(static_cast<unsigned>(kw_done_ / nk));
      else if (nk > 6 && kw_done_ % nk == 4)
        t = aes::sub_word(t);
      kwords_[static_cast<std::size_t>(kw_done_)] =
          kwords_[static_cast<std::size_t>(kw_done_ - nk)] ^ t;
    }
    if (kw_done_ >= S) {
      expanding_ = false;
      key_valid_ = true;
    }
    return;
  }

  const int n = stages_n_;
  const int r = rounds_per_stage_;
  const bool boundary = sub_ == r - 1;

  // Every valid stage executes one round slice this edge.
  std::vector<hdl::Word128> out(static_cast<std::size_t>(n));
  int work = 0;
  for (int i = 0; i < n; ++i) {
    Stage& s = stage_[static_cast<std::size_t>(i)];
    if (!s.valid) continue;
    out[static_cast<std::size_t>(i)] = round_step(s.data, s.decrypt, i * r + sub_ + 1);
    ++work;
  }
  counters_.mix_cycles += static_cast<std::uint64_t>(work);
  counters_.rounds_done += static_cast<std::uint64_t>(work);
  if (work == 0) ++counters_.idle_cycles;

  if (!boundary) {
    for (int i = 0; i < n; ++i) {
      Stage& s = stage_[static_cast<std::size_t>(i)];
      if (s.valid) s.data = out[static_cast<std::size_t>(i)];
    }
    ++sub_;
    return;
  }

  // Boundary: emit the top stage, shift the pipe, admit a waiting block.
  const Stage& top = stage_[static_cast<std::size_t>(n - 1)];
  if (top.valid) {
    dout.write(out[static_cast<std::size_t>(n - 1)]);
    data_ok.write(true);
    if (top.decrypt) ++counters_.blocks_dec;
    else ++counters_.blocks_enc;
  }
  for (int i = n - 1; i >= 1; --i) {
    const Stage& below = stage_[static_cast<std::size_t>(i - 1)];
    Stage& s = stage_[static_cast<std::size_t>(i)];
    s.valid = below.valid;
    s.decrypt = below.decrypt;
    if (below.valid) s.data = out[static_cast<std::size_t>(i - 1)];
  }
  Stage& first = stage_[0];
  if (pending_ && key_valid_) {
    const bool dec = mode_ == core::IpMode::kDecrypt ||
                     (mode_ == core::IpMode::kBoth && !encdec.read());
    first.valid = true;
    first.decrypt = dec;
    first.data = data_in_reg_ ^ round_key(dec ? spec_.nr() : 0);
    pending_ = false;
  } else {
    first.valid = false;
  }
  bool any = false;
  for (const Stage& s : stage_) any = any || s.valid;
  sub_ = any ? 0 : r - 1;
}

}  // namespace aesip::arch
