// The generated round-engine family: one VariantSpec names a point on the
// area–throughput Pareto curve, and every point has two cycle-exact
// realizations — a gate-level netlist (synthesize_variant) and a
// behavioral hdl::Module twin (VariantIp) — so the whole family runs
// behind the same Table 1 bus protocol, the same drivers, and the same
// CipherEngine/farm/fleet plumbing as the paper's core.
//
// The family axes (docs/variants.md):
//
//  * RoundArch::kIterative — the paper's mixed 32/128-bit datapath:
//    4-cycle ByteSub32 + one 128-bit SR/MC/AK cycle = 5 cycles/round,
//    50 cycles/block, on-the-fly KStran schedule (40-cycle decrypt key
//    setup). The low-area extreme; realized by core::synthesize_ip /
//    core::RijndaelIp with the MixColumn style threaded through.
//
//  * RoundArch::kUnrolled — one full 128-bit round per clock: 10
//    cycles/block, stored round keys (11x128 key RAM filled by a
//    10-cycle expansion pass after wr_key).
//
//  * RoundArch::kPipelined — the unrolled datapath loop-folded into N
//    stages (N in {2, 5, 10}); each stage iterates R = 10/N rounds, so N
//    blocks are in flight and a new block is admitted every R cycles.
//    Block latency stays 10 cycles; streamed throughput approaches R
//    cycles/block. Grounded in the pipelined decomposition of Elkabbany
//    et al. (PAPERS.md).
//
// crossed with the MixColumn architecture (netlist::MixColStyle): the
// shared-term xtime network the paper's RTL infers vs the table-lookup
// constant multipliers of Arrag et al. — behaviorally identical, very
// different LC counts.
//
// Non-iterative variants keep the Table 1 pins and add one output,
// `in_ready` (= the Data_In register is free), because a core with
// multiple blocks in flight needs explicit admission flow control where
// the paper's single-block core could rely on data_ok. A wr_key or setup
// pulse flushes every in-flight block (the hazard rule: the key schedule
// is global state, so no block started under the old key may emit).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/rijndael_ip.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/word128.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"

namespace aesip::arch {

/// How the rounds are scheduled onto hardware.
enum class RoundArch {
  kIterative,  ///< the paper's 5-cycles/round core
  kUnrolled,   ///< one full round per clock, 10 cycles/block
  kPipelined,  ///< N-stage loop-folded pipeline, N blocks in flight
};

/// One point in the generated family, with its declared schedule.  The
/// declared figures are contracts: conformance tests hold every
/// realization (netlist and behavioral) to them cycle for cycle.
struct VariantSpec {
  RoundArch round_arch = RoundArch::kIterative;
  int pipeline_stages = 1;  ///< kPipelined only: 2, 5 or 10 (must divide 10)
  netlist::MixColStyle mixcol = netlist::MixColStyle::kXtime;
  netlist::SboxStyle sbox = netlist::SboxStyle::kRom;

  bool is_iterative() const noexcept { return round_arch == RoundArch::kIterative; }

  /// Physical pipeline stages (1 unless kPipelined).
  int stages() const noexcept {
    return round_arch == RoundArch::kPipelined ? pipeline_stages : 1;
  }
  /// Rounds each stage iterates before the pipeline shifts (non-iterative).
  int rounds_per_stage() const noexcept { return 10 / stages(); }

  // --- the declared schedule -------------------------------------------------
  /// Load edge -> data_ok for a lone block.
  int block_latency_cycles() const noexcept { return is_iterative() ? 50 : 10; }
  /// Steady-state cycles between admissions when streamed.
  int issue_interval_cycles() const noexcept {
    return is_iterative() ? 50 : rounds_per_stage();
  }
  /// Blocks concurrently in flight at full occupancy.
  int blocks_in_flight() const noexcept { return stages(); }
  /// wr_key edge -> key_ready.  The iterative core pays the paper's
  /// 40-cycle inverse-schedule pass only when decrypt-capable; the stored
  /// key RAM of the other variants always costs one 10-cycle expansion.
  int key_setup_cycles(core::IpMode mode) const noexcept {
    if (is_iterative()) return mode == core::IpMode::kEncrypt ? 0 : 40;
    return 10;
  }
  /// Datapath cycles attributed per round (5 for the 32-bit slice walk,
  /// 1 for a full-width round).
  double cycles_per_round() const noexcept { return is_iterative() ? 5.0 : 1.0; }

  /// Canonical name, e.g. "iter-xtime", "unroll-lut", "pipe5-xtime".
  std::string name() const;
  /// Inverse of name(); also accepts "paper" for the iterative default.
  static std::optional<VariantSpec> parse(std::string_view text);
  /// The bench/test roster: the Pareto candidates documented in
  /// docs/variants.md (5 xtime points + 2 dominated lut points).
  static std::vector<VariantSpec> family();
};

bool operator==(const VariantSpec& a, const VariantSpec& b) noexcept;

/// Intern an arbitrary label into a static-duration string (farm worker
/// labels outlive the farm that created them).
const char* intern_label(const std::string& text);
/// Intern `spec.name()`.
const char* variant_label(const VariantSpec& spec);

/// Gate-level realization of a non-iterative variant (iterative specs
/// delegate to core::synthesize_ip with the MixColumn style threaded).
/// Table 1 pins plus `in_ready`; DFF boot state (all zero) reads as idle
/// after one setup pulse, exactly like the iterative netlist.
netlist::Netlist synthesize_variant(const VariantSpec& spec, core::IpMode mode);

/// Cycle-exact behavioral twin of the non-iterative netlists: same pins,
/// same per-edge transition function, same declared schedule, usable
/// behind core::GenericBusDriver. Maintains core::IpCounters with the
/// stage-occupancy attribution (1 cycle per round slice) so the obs layer
/// reads it like any other core.
class VariantIp final : public hdl::Module {
 public:
  hdl::Signal<bool> setup;
  hdl::Signal<bool> wr_data;
  hdl::Signal<bool> wr_key;
  hdl::Signal<bool> encdec;  ///< 1 = encrypt (kBoth; ignored otherwise)
  hdl::Signal<bool> data_ok;
  hdl::Signal<hdl::Word128> din;
  hdl::Signal<hdl::Word128> dout;

  VariantIp(hdl::Simulator& sim, const VariantSpec& spec, core::IpMode mode);

  bool key_ready() const noexcept { return key_valid_; }
  bool data_pending() const noexcept { return pending_; }
  bool busy() const noexcept;

  const VariantSpec& spec() const noexcept { return spec_; }
  core::IpMode mode() const noexcept { return mode_; }
  const core::IpCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = core::IpCounters{}; }

  void evaluate() override {}
  void tick() override;

 private:
  struct Stage {
    hdl::Word128 data;
    bool valid = false;
    bool decrypt = false;
  };

  hdl::Word128 round_step(const hdl::Word128& in, bool decrypt, int step) const;
  void flush_pipeline() noexcept;

  VariantSpec spec_;
  core::IpMode mode_;
  int stages_n_;
  int rounds_per_stage_;

  std::array<hdl::Word128, 11> round_keys_{};
  hdl::Word128 kexp_{};       ///< expansion chain register
  int kr_ = 0;                ///< expansion round counter, 1..10
  bool expanding_ = false;
  bool key_valid_ = false;

  std::vector<Stage> stage_;  ///< stage_[0] is the admission stage
  int sub_ = 0;               ///< rounds completed in the current pass
  hdl::Word128 data_in_reg_{};
  bool pending_ = false;

  core::IpCounters counters_{};
};

}  // namespace aesip::arch
