// The generated round-engine family: one VariantSpec names a point on the
// area–throughput Pareto curve, and every point has two cycle-exact
// realizations — a gate-level netlist (synthesize_variant) and a
// behavioral hdl::Module twin (VariantIp) — so the whole family runs
// behind the same Table 1 bus protocol, the same drivers, and the same
// CipherEngine/farm/fleet plumbing as the paper's core.
//
// The family axes (docs/variants.md):
//
//  * RoundArch::kIterative — the paper's mixed 32/128-bit datapath:
//    4-cycle ByteSub32 + one 128-bit SR/MC/AK cycle = 5 cycles/round,
//    50 cycles/block, on-the-fly KStran schedule (40-cycle decrypt key
//    setup). The low-area extreme; realized by core::synthesize_ip /
//    core::RijndaelIp with the MixColumn style threaded through.
//
//  * RoundArch::kUnrolled — one full 128-bit round per clock: Nr
//    cycles/block, stored round keys ((Nr+1)x128 key RAM filled by a
//    ceil((S-Nk)/4)-cycle expansion pass after wr_key: 10/12/13 cycles
//    for 128/192/256-bit keys).
//
//  * RoundArch::kPipelined — the unrolled datapath loop-folded into N
//    stages (N must divide Nr); each stage iterates R = Nr/N rounds, so N
//    blocks are in flight and a new block is admitted every R cycles.
//    Block latency stays Nr cycles; streamed throughput approaches R
//    cycles/block. Grounded in the pipelined decomposition of Elkabbany
//    et al. (PAPERS.md).
//
// crossed with the MixColumn architecture (netlist::MixColStyle): the
// shared-term xtime network the paper's RTL infers vs the table-lookup
// constant multipliers of Arrag et al. — behaviorally identical, very
// different LC counts.
//
// Non-iterative variants keep the Table 1 pins and add one output,
// `in_ready` (= the Data_In register is free), because a core with
// multiple blocks in flight needs explicit admission flow control where
// the paper's single-block core could rely on data_ok. A wr_key or setup
// pulse flushes every in-flight block (the hazard rule: the key schedule
// is global state, so no block started under the old key may emit).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "aes/key_schedule.hpp"
#include "core/rijndael_ip.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/simulator.hpp"
#include "hdl/word128.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"

namespace aesip::arch {

/// How the rounds are scheduled onto hardware.
enum class RoundArch {
  kIterative,  ///< the paper's 5-cycles/round core
  kUnrolled,   ///< one full round per clock, 10 cycles/block
  kPipelined,  ///< N-stage loop-folded pipeline, N blocks in flight
};

/// One point in the generated family, with its declared schedule.  The
/// declared figures are contracts: conformance tests hold every
/// realization (netlist and behavioral) to them cycle for cycle.
struct VariantSpec {
  RoundArch round_arch = RoundArch::kIterative;
  int pipeline_stages = 1;  ///< kPipelined only: any N >= 2 that divides Nr
  netlist::MixColStyle mixcol = netlist::MixColStyle::kXtime;
  netlist::SboxStyle sbox = netlist::SboxStyle::kRom;
  int key_bits = 128;  ///< Rijndael key size: 128, 192 or 256 (Nb is always 4)

  bool is_iterative() const noexcept { return round_arch == RoundArch::kIterative; }

  // --- the geometry ----------------------------------------------------------
  /// Key words Nk = key_bits/32 (4, 6 or 8).
  int nk() const noexcept { return key_bits / 32; }
  /// Rounds Nr = max(Nb, Nk) + 6 = Nk + 6 for the 128-bit block.
  int nr() const noexcept { return (nk() > 4 ? nk() : 4) + 6; }
  /// Schedule words S = Nb*(Nr+1) (44 / 52 / 60).
  int schedule_words() const noexcept { return 4 * (nr() + 1); }
  aes::Geometry geometry() const noexcept { return aes::Geometry::make(128, key_bits); }

  /// Physical pipeline stages (1 unless kPipelined).
  int stages() const noexcept {
    return round_arch == RoundArch::kPipelined ? pipeline_stages : 1;
  }
  /// Is the spec realizable?  Pipeline stages must divide Nr (pipe5 exists
  /// for Nr=10, not Nr=12); key_bits must be 128/192/256.
  bool valid() const noexcept {
    if (key_bits != 128 && key_bits != 192 && key_bits != 256) return false;
    return nr() % stages() == 0;
  }
  /// Rounds each stage iterates before the pipeline shifts (non-iterative).
  int rounds_per_stage() const noexcept { return nr() / stages(); }

  // --- the declared schedule (everything derived from Nr, nothing literal) ---
  /// Load edge -> data_ok for a lone block: the paper core walks 4 ByteSub32
  /// cycles + 1 SR/MC/AK cycle per round (5*Nr); full-width variants pay one
  /// cycle per round (Nr).
  int block_latency_cycles() const noexcept { return is_iterative() ? 5 * nr() : nr(); }
  /// Steady-state cycles between admissions when streamed.
  int issue_interval_cycles() const noexcept {
    return is_iterative() ? 5 * nr() : rounds_per_stage();
  }
  /// Blocks concurrently in flight at full occupancy.
  int blocks_in_flight() const noexcept { return stages(); }
  /// wr_key edge -> key_ready.  The iterative core pays the on-the-fly
  /// inverse-schedule pass (4 generation cycles per round = 4*Nr) only when
  /// decrypt-capable; the stored key RAM of the other variants always costs
  /// one expansion pass of ceil((S - Nk)/4) cycles (10/12/13).
  int key_setup_cycles(core::IpMode mode) const noexcept {
    if (is_iterative()) return mode == core::IpMode::kEncrypt ? 0 : 4 * nr();
    return (schedule_words() - nk() + 3) / 4;
  }
  /// Datapath cycles attributed per round (5 for the 32-bit slice walk,
  /// 1 for a full-width round).
  double cycles_per_round() const noexcept { return is_iterative() ? 5.0 : 1.0; }

  /// Canonical name, e.g. "iter-xtime", "unroll-lut", "pipe5-xtime"; wider
  /// keys append the size: "iter-xtime@192".  128-bit names stay bare.
  std::string name() const;
  /// Inverse of name(); also accepts "paper" for the iterative default and
  /// an optional "@192"/"@256" key-size suffix on any name.
  static std::optional<VariantSpec> parse(std::string_view text);
  /// The bench/test roster: the Pareto candidates documented in
  /// docs/variants.md (5 xtime points + 2 dominated lut points).
  static std::vector<VariantSpec> family();
};

bool operator==(const VariantSpec& a, const VariantSpec& b) noexcept;

/// Intern an arbitrary label into a static-duration string (farm worker
/// labels outlive the farm that created them).
const char* intern_label(const std::string& text);
/// Intern `spec.name()`.
const char* variant_label(const VariantSpec& spec);

/// Gate-level realization of a non-iterative variant (iterative specs
/// delegate to core::synthesize_ip with the MixColumn style threaded).
/// Table 1 pins plus `in_ready`; DFF boot state (all zero) reads as idle
/// after one setup pulse, exactly like the iterative netlist.
netlist::Netlist synthesize_variant(const VariantSpec& spec, core::IpMode mode);

/// Cycle-exact behavioral twin of the non-iterative netlists: same pins,
/// same per-edge transition function, same declared schedule, usable
/// behind core::GenericBusDriver. Maintains core::IpCounters with the
/// stage-occupancy attribution (1 cycle per round slice) so the obs layer
/// reads it like any other core.
class VariantIp final : public hdl::Module {
 public:
  hdl::Signal<bool> setup;
  hdl::Signal<bool> wr_data;
  hdl::Signal<bool> wr_key;
  hdl::Signal<bool> encdec;  ///< 1 = encrypt (kBoth; ignored otherwise)
  hdl::Signal<bool> data_ok;
  hdl::Signal<hdl::Word128> din;
  hdl::Signal<hdl::Word128> dout;

  VariantIp(hdl::Simulator& sim, const VariantSpec& spec, core::IpMode mode);

  bool key_ready() const noexcept { return key_valid_; }
  bool data_pending() const noexcept { return pending_; }
  bool busy() const noexcept;

  const VariantSpec& spec() const noexcept { return spec_; }
  core::IpMode mode() const noexcept { return mode_; }
  const core::IpCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = core::IpCounters{}; }

  void evaluate() override {}
  void tick() override;

 private:
  struct Stage {
    hdl::Word128 data;
    bool valid = false;
    bool decrypt = false;
  };

  hdl::Word128 round_step(const hdl::Word128& in, bool decrypt, int step) const;
  /// Stored round key r (schedule words 4r..4r+3).
  hdl::Word128 round_key(int r) const;
  void flush_pipeline() noexcept;

  VariantSpec spec_;
  core::IpMode mode_;
  int stages_n_;
  int rounds_per_stage_;

  std::vector<std::uint32_t> kwords_;  ///< the stored schedule (S words)
  int kw_done_ = 0;                    ///< schedule words generated so far
  int key_beat_ = 0;                   ///< next wr_key beat (multi-beat loads)
  bool expanding_ = false;
  bool key_valid_ = false;

  std::vector<Stage> stage_;  ///< stage_[0] is the admission stage
  int sub_ = 0;               ///< rounds completed in the current pass
  hdl::Word128 data_in_reg_{};
  bool pending_ = false;

  core::IpCounters counters_{};
};

}  // namespace aesip::arch
